package wise

import (
	"path/filepath"
	"testing"

	"wise/internal/matrix"
)

// smallCorpus is a fast corpus for API tests.
func smallCorpus() CorpusConfig {
	return CorpusConfig{
		Seed:      1,
		RowScales: []float64{9, 11},
		Degrees:   []float64{4, 16},
		MaxNNZ:    1 << 20,
		SciCount:  6,
	}
}

var cachedFW *Framework

func trained(t testing.TB) *Framework {
	t.Helper()
	if cachedFW == nil {
		fw, err := Train(GenerateCorpus(smallCorpus()), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cachedFW = fw
	}
	return cachedFW
}

func TestPublicAPITrainSelectMultiply(t *testing.T) {
	fw := trained(t)
	m := matrix.Fig1Example()
	sel := fw.Select(m)
	if err := sel.Method.Validate(); err != nil {
		t.Fatalf("selected invalid method: %v", err)
	}
	x := matrix.Iota(m.Cols)
	want := make([]float64, m.Rows)
	m.SpMV(want, x)
	got := make([]float64, m.Rows)
	fw.Multiply(got, x, m)
	if matrix.MaxAbsDiff(want, got) > 1e-9 {
		t.Error("public Multiply incorrect")
	}
}

func TestPublicAPIPrepareReuse(t *testing.T) {
	fw := trained(t)
	m := matrix.Fig1Example()
	_, format := fw.Prepare(m)
	x := matrix.Iota(m.Cols)
	want := make([]float64, m.Rows)
	m.SpMV(want, x)
	got := make([]float64, m.Rows)
	for iter := 0; iter < 3; iter++ { // iterative use, same format
		format.SpMV(got, x)
		if matrix.MaxAbsDiff(want, got) > 1e-9 {
			t.Fatal("prepared format wrong")
		}
	}
}

func TestPublicAPISaveLoad(t *testing.T) {
	fw := trained(t)
	path := filepath.Join(t.TempDir(), "wise.json")
	if err := fw.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path, ScaledMachine())
	if err != nil {
		t.Fatal(err)
	}
	m := matrix.Fig1Example()
	if back.Select(m).Method != fw.Select(m).Method {
		t.Error("loaded framework selects differently")
	}
}

func TestPublicAPIEvaluate(t *testing.T) {
	fw := trained(t)
	res, err := fw.Evaluate(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanOracleSpeedup < res.MeanWISESpeedup {
		t.Error("oracle below WISE")
	}
}

func TestPublicAPIModelSpace(t *testing.T) {
	if n := len(ModelSpace(PaperMachine())); n != 29 {
		t.Errorf("model space = %d, want 29", n)
	}
}

func TestPublicAPIMatrixMarketRoundTrip(t *testing.T) {
	m := matrix.Fig1Example()
	path := filepath.Join(t.TempDir(), "m.mtx")
	if err := WriteMatrixMarket(path, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(path)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back) {
		t.Error("round trip changed matrix")
	}
}

func TestPublicAPIBuildFormat(t *testing.T) {
	m := matrix.Fig1Example()
	for _, method := range ModelSpace(ScaledMachine()) {
		f := BuildFormat(m, method, ScaledMachine())
		x := matrix.Ones(m.Cols)
		y := make([]float64, m.Rows)
		f.SpMVParallel(y, x, 2)
	}
}

func TestPublicAPIFeatures(t *testing.T) {
	f := ExtractFeatures(matrix.Fig1Example())
	if f.Get("nnz") != 17 {
		t.Error("feature extraction broken through public API")
	}
}

func TestPublicAPIEstimator(t *testing.T) {
	e := NewEstimator(ScaledMachine())
	m := matrix.Fig1Example()
	if c := e.CSRCycles(m, Dyn); c <= 0 {
		t.Error("estimator broken through public API")
	}
}

func TestCOOBuilder(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(1, 1, 2)
	m := c.ToCSR()
	if m.NNZ() != 2 {
		t.Error("COO builder broken")
	}
}

func TestPublicAPIExtend(t *testing.T) {
	// Extend must add the 30th model and leave existing predictions intact.
	fw, err := Train(GenerateCorpus(smallCorpus()), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := matrix.Fig1Example()
	before := fw.Select(m)
	ext := ExtensionMethods(ScaledMachine())
	if len(ext) == 0 {
		t.Fatal("no extension methods")
	}
	if err := fw.Extend(ext[0]); err != nil {
		t.Fatal(err)
	}
	after := fw.Select(m)
	if len(after.Classes) != len(before.Classes)+1 {
		t.Fatalf("classes = %d, want %d", len(after.Classes), len(before.Classes)+1)
	}
	for i := range before.Classes {
		if after.Classes[i] != before.Classes[i] {
			t.Fatal("existing model prediction changed")
		}
	}
	// Duplicate extension rejected.
	if err := fw.Extend(ext[0]); err == nil {
		t.Error("duplicate extension accepted")
	}
}

func TestLoadedFrameworkCannotExtend(t *testing.T) {
	fw := trained(t)
	path := filepath.Join(t.TempDir(), "m.json")
	if err := fw.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, ScaledMachine())
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Extend(ExtensionMethods(ScaledMachine())[0]); err == nil {
		t.Error("loaded framework extended without a corpus")
	}
}
