package wise

// One testing.B benchmark per table and figure of the paper's evaluation
// (see DESIGN.md section 4 for the experiment index), plus wall-clock
// benchmarks of the real Go SpMV kernels and the ablation benches DESIGN.md
// calls out. The figure benchmarks drive internal/experiments and report the
// headline quantity of each figure as a custom metric, so `go test -bench .`
// regenerates every result. Run cmd/wise-bench for the full printed tables.

import (
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"wise/internal/costmodel"
	"wise/internal/experiments"
	"wise/internal/gen"
	"wise/internal/kernels"
	"wise/internal/machine"
	"wise/internal/matrix"
	"wise/internal/solvers"
)

var (
	benchCtxOnce sync.Once
	benchCtx     *experiments.Context
)

// benchContext labels a moderate corpus once and shares it across all
// figure benchmarks.
func benchContext(b *testing.B) *experiments.Context {
	b.Helper()
	benchCtxOnce.Do(func() {
		cfg := experiments.ContextConfig{
			Corpus: gen.CorpusConfig{
				Seed:      1,
				RowScales: []float64{10, 11, 12, 13},
				Degrees:   []float64{4, 16, 64},
				MaxNNZ:    1 << 21,
				SciCount:  24,
			},
		}
		benchCtx = experiments.NewContext(cfg)
	})
	return benchCtx
}

func benchTable(b *testing.B, run func(ctx *experiments.Context) *experiments.Table) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := run(ctx)
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", tab.ID)
		}
	}
}

func BenchmarkFig01FormatsExample(b *testing.B) {
	benchTable(b, experiments.Fig1Formats)
}

func BenchmarkFig02VectorizedSpeedups(b *testing.B) {
	benchTable(b, experiments.Fig2)
}

func BenchmarkFig03SchedulingPolicies(b *testing.B) {
	benchTable(b, experiments.Fig3)
}

func BenchmarkFig04FastestMethodHistogram(b *testing.B) {
	benchTable(b, experiments.Fig4)
}

func BenchmarkFig05SkewSweep(b *testing.B) {
	ctx := benchContext(b)
	cfg := experiments.SweepConfig{
		RowScales: []float64{10, 12, 14},
		Degrees:   []float64{4, 16, 64},
		MaxNNZ:    1 << 21,
		Seed:      7,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tab := experiments.Fig5(ctx, cfg); len(tab.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig06LocalitySweep(b *testing.B) {
	ctx := benchContext(b)
	cfg := experiments.SweepConfig{
		RowScales: []float64{10, 12, 14},
		Degrees:   []float64{4, 16, 64},
		MaxNNZ:    1 << 21,
		Seed:      7,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tab := experiments.Fig6(ctx, cfg); len(tab.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig07SciencePRatio(b *testing.B) {
	benchTable(b, experiments.Fig7)
}

func BenchmarkFig10ConfusionMatrices(b *testing.B) {
	benchTable(b, experiments.Fig10)
}

func BenchmarkFig11RandomPRatio(b *testing.B) {
	benchTable(b, experiments.Fig11)
}

func BenchmarkFig12DegreeDistribution(b *testing.B) {
	benchTable(b, experiments.Fig12)
}

func BenchmarkFig13SpeedupOverMKL(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := experiments.Fig13(ctx)
		if len(tab.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkSec64InspectorExecutor(b *testing.B) {
	benchTable(b, experiments.Sec64)
}

func BenchmarkTable04TreeParameterGrid(b *testing.B) {
	benchTable(b, experiments.Table4)
}

// Ablation benches called out in DESIGN.md.

func BenchmarkAblationFeatureSets(b *testing.B) {
	benchTable(b, experiments.AblationFeatureSets)
}

func BenchmarkAblationClasses(b *testing.B) {
	benchTable(b, experiments.AblationClasses)
}

func BenchmarkAblationTieBreak(b *testing.B) {
	benchTable(b, experiments.AblationTieBreak)
}

func BenchmarkAblationFlatMemory(b *testing.B) {
	ctx := benchContext(b)
	probe := gen.CorpusConfig{
		Seed:      42,
		RowScales: []float64{10, 12},
		Degrees:   []float64{8, 32},
		MaxNNZ:    1 << 20,
		SciCount:  6,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tab := experiments.AblationFlatMemory(ctx, probe); len(tab.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// Wall-clock benchmarks of the real Go kernels: one per method family, on a
// mid-size medium-skew matrix. These measure this host's actual SpMV
// throughput (ns/op and bytes of matrix data touched per op), complementing
// the cost-model numbers above.

func benchMatrix() *matrix.CSR {
	rng := rand.New(rand.NewSource(3))
	m := gen.RMATRows(rng, 1<<14, 16, gen.MedSkew)
	return gen.CapRowDegree(rng, m, m.NNZ()/500)
}

func BenchmarkKernels(b *testing.B) {
	m := benchMatrix()
	x := matrix.Iota(m.Cols)
	y := make([]float64, m.Rows)
	mach := machine.Scaled()
	for _, method := range kernels.ModelSpace(mach) {
		format := kernels.Build(m, method, mach.RowBlock)
		b.Run(method.String(), func(b *testing.B) {
			b.SetBytes(int64(m.NNZ()) * 12)
			for i := 0; i < b.N; i++ {
				format.SpMVParallel(y, x, 0)
			}
		})
	}
}

// BenchmarkFormatConversion measures the real preprocessing (format build)
// cost of each method family.
func BenchmarkFormatConversion(b *testing.B) {
	m := benchMatrix()
	mach := machine.Scaled()
	for _, method := range []kernels.Method{
		{Kind: kernels.SELLPACK, C: 8, Sched: kernels.Dyn},
		{Kind: kernels.SellCSigma, C: 8, Sigma: mach.SigmaValues()[1], Sched: kernels.Dyn},
		{Kind: kernels.SellCR, C: 8, Sched: kernels.Dyn},
		{Kind: kernels.LAV1Seg, C: 8, Sched: kernels.Dyn},
		{Kind: kernels.LAV, C: 8, T: 0.7, Sched: kernels.Dyn},
	} {
		b.Run(method.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kernels.BuildSRVPack(m, method)
			}
		})
	}
}

// BenchmarkFeatureExtraction measures the real Table 2 feature pass.
func BenchmarkFeatureExtraction(b *testing.B) {
	m := benchMatrix()
	b.SetBytes(int64(m.NNZ()) * 12)
	for i := 0; i < b.N; i++ {
		ExtractFeatures(m)
	}
}

// BenchmarkWorkerScaling measures real parallel scaling of the CSR kernel.
func BenchmarkWorkerScaling(b *testing.B) {
	m := benchMatrix()
	x := matrix.Iota(m.Cols)
	y := make([]float64, m.Rows)
	for _, workers := range []int{1, 2, 4, 8} {
		f := kernels.BuildCSRFormat(m, kernels.Dyn, 64)
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.SpMVParallel(y, x, workers)
			}
		})
	}
}

// BenchmarkSolverCG measures a full conjugate-gradient solve through a
// WISE-style format — the iterative workload the paper motivates with.
func BenchmarkSolverCG(b *testing.B) {
	clone := gen.Stencil2D(64, 64, false).AddToDiagonal(1)
	format := kernels.BuildSRVPack(clone, kernels.Method{Kind: kernels.SellCSigma, C: 8, Sigma: 64, Sched: kernels.StCont})
	bvec := matrix.Ones(clone.Rows)
	for i := 0; i < b.N; i++ {
		x := make([]float64, clone.Rows)
		if _, err := solvers.CG(solvers.FromFormat(format, 0), bvec, x, 1e-8, 2000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionSegCSR measures the wall-clock of the Section 7
// extension method next to plain CSR on the same matrix.
func BenchmarkExtensionSegCSR(b *testing.B) {
	m := benchMatrix()
	x := matrix.Iota(m.Cols)
	y := make([]float64, m.Rows)
	for _, method := range append(kernels.ExtensionMethods(machine.Scaled().LLCDoubles()),
		kernels.Method{Kind: kernels.CSR, Sched: kernels.Dyn}) {
		format := kernels.Build(m, method, 64)
		b.Run(method.String(), func(b *testing.B) {
			b.SetBytes(int64(m.NNZ()) * 12)
			for i := 0; i < b.N; i++ {
				format.SpMVParallel(y, x, 0)
			}
		})
	}
}

// BenchmarkCostModel measures the estimator itself: one full 29-method
// labeling of a mid-size matrix (the dominant cost of wise-train).
func BenchmarkCostModel(b *testing.B) {
	m := benchMatrix()
	e := costmodel.New(machine.Scaled())
	space := kernels.ModelSpace(machine.Scaled())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, method := range space {
			e.MethodCycles(m, method)
		}
	}
}

// BenchmarkCacheSim measures raw simulator throughput.
func BenchmarkCacheSim(b *testing.B) {
	cs := costmodel.NewCacheSim(machine.Scaled())
	rng := rand.New(rand.NewSource(1))
	addrs := make([]int64, 1<<16)
	for i := range addrs {
		addrs[i] = int64(rng.Intn(1 << 20))
	}
	b.SetBytes(int64(len(addrs)))
	for i := 0; i < b.N; i++ {
		for _, a := range addrs {
			cs.Access(a)
		}
	}
}

func BenchmarkAblationModelFamily(b *testing.B) {
	benchTable(b, experiments.AblationModelFamily)
}
