// wise-bench regenerates every table and figure of the paper's evaluation
// (see DESIGN.md for the per-experiment index), printing each as an aligned
// text table and optionally writing them to a results directory.
//
//	wise-bench                      # all experiments, default scaled corpus
//	wise-bench -exp fig13           # one experiment
//	wise-bench -full -outdir results
//	wise-bench -small               # CI-size smoke corpus (-medium in between)
//	wise-bench -v -metrics m.json   # live progress + per-stage metrics
//	wise-bench -checkpoint run.ckpt # resumable labeling (RESILIENCE.md)
//
// It is also the performance-trajectory harness (BENCHMARKS.md):
//
//	wise-bench -suite S -o BENCH_1.json      # run a preset, persist the point
//	wise-bench -list                         # presets, sizes, expected runtime
//	wise-bench -compare old.json new.json    # diff two points; exit 1 on regression
//
// The expensive labeling pass (cache-simulating cost model, 29 methods per
// matrix) can be cached across runs with -save-labels/-load-labels. The
// observability flags (-v, -metrics, -cpuprofile, -memprofile) are shared
// by every wise CLI and documented in OBSERVABILITY.md; -v reports live
// labeling/evaluation progress with ETA, and -metrics writes a JSON
// snapshot with the corpus {gen, label} spans and one span per experiment.
//
// Fault tolerance (RESILIENCE.md): -checkpoint makes labeling resumable;
// SIGINT/SIGTERM flushes completed labels and exits with status 130.
// Exit codes: 0 success, 1 I/O or pipeline failure, 2 usage error, 130
// interrupted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"wise/internal/bench"
	"wise/internal/experiments"
	"wise/internal/gen"
	"wise/internal/obs"
	"wise/internal/perf"
	"wise/internal/resilience"
	"wise/internal/resilience/faultinject"
)

// Exit codes, shared by the wise CLIs and documented in RESILIENCE.md.
const (
	exitOK          = 0
	exitIO          = 1
	exitUsage       = 2
	exitInterrupted = 130
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp        = flag.String("exp", "all", "experiment: all, fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig10, fig11, fig12, fig13, ie, table4, importance, ablations")
		full       = flag.Bool("full", false, "use the full paper-shaped corpus (much slower)")
		small      = flag.Bool("small", false, "use a small smoke corpus (fast, for CI)")
		medium     = flag.Bool("medium", false, "use the medium corpus (~500 matrices)")
		outdir     = flag.String("outdir", "", "also write each table to <outdir>/<id>.txt")
		workers    = flag.Int("workers", 0, "labeling workers (0 = GOMAXPROCS)")
		seed       = flag.Int64("seed", 1, "corpus seed")
		saveLabels = flag.String("save-labels", "", "after labeling, save the labeled corpus to this gzipped JSON file")
		loadLabels = flag.String("load-labels", "", "skip labeling and reuse a corpus saved with -save-labels")
		checkpoint = flag.String("checkpoint", "", "labeling checkpoint file for resumable runs (see RESILIENCE.md)")

		suite     = flag.String("suite", "", "run the benchmark suite with this preset (S, M, L, paper; see BENCHMARKS.md)")
		out       = flag.String("o", "", "with -suite: write the BENCH_<n>.json report here")
		list      = flag.Bool("list", false, "print the benchmark presets (matrix counts, expected runtime) and exit")
		compare   = flag.Bool("compare", false, "compare two BENCH_*.json files (old new); exit 1 on regression")
		threshold = flag.Float64("threshold", 0.20, "with -compare: relative median slowdown that counts as a regression")
		timeScale = flag.Float64("time-scale", 1, "with -suite: multiply per-benchmark time budgets (0.1 = 10x faster smoke run)")
	)
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	// -compare is the only mode taking positional arguments (old.json new.json).
	if !*compare && flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "wise-bench: unexpected argument %q (wise-bench takes only flags)\n", flag.Arg(0))
		return exitUsage
	}
	if err := faultinject.ConfigureFromEnv(os.Getenv); err != nil {
		fmt.Fprintf(os.Stderr, "wise-bench: %v\n", err)
		return exitUsage
	}
	finishObs := obsFlags.MustStart()
	defer func() {
		if err := finishObs(); err != nil {
			fmt.Fprintf(os.Stderr, "wise-bench: %v\n", err)
		}
	}()

	sigCtx, stop := resilience.SignalContext(context.Background())
	defer stop()

	// Harness modes (BENCHMARKS.md) run before the experiment pipeline.
	// "-suite -list" and "-suite list" both reach the preset listing: flag
	// parsing binds "-list" as -suite's value in the first spelling.
	if *list || *suite == "list" || *suite == "-list" {
		fmt.Print(bench.ListPresets())
		return exitOK
	}
	if *compare {
		return runCompare(flag.Args(), *threshold)
	}
	if *suite != "" {
		return runSuiteMode(sigCtx, *suite, *out, *seed, *timeScale, *workers)
	}

	ccfg := experiments.DefaultContextConfig()
	if *full {
		ccfg.Corpus = gen.FullCorpusConfig()
	}
	if *medium {
		ccfg.Corpus = gen.MediumCorpusConfig()
	}
	if *small {
		ccfg = experiments.SmokeContextConfig()
	}
	ccfg.Corpus.Seed = *seed
	ccfg.Workers = *workers
	ccfg.Checkpoint = *checkpoint

	needsCorpus := *exp != "fig5" && *exp != "fig6"
	t0 := time.Now()
	var ctx *experiments.Context
	switch {
	case *loadLabels != "":
		labels, err := perf.LoadLabels(*loadLabels)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wise-bench: -load-labels %s: %v\n", *loadLabels, err)
			return exitIO
		}
		ctx = experiments.NewContextFromLabels(labels)
		fmt.Fprintf(os.Stderr, "loaded %d labeled matrices from %s\n\n", len(ctx.Labels), *loadLabels)
	case needsCorpus || *exp == "all":
		fmt.Fprintf(os.Stderr, "labeling corpus (this runs the cache-simulating cost model on 29 methods per matrix)...\n")
		var err error
		ctx, err = experiments.NewContextCtx(sigCtx, ccfg)
		if ctx != nil && ctx.Resumed > 0 {
			fmt.Fprintf(os.Stderr, "resumed %d already-labeled matrices from %s\n", ctx.Resumed, *checkpoint)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "wise-bench: %v\n", err)
			if errors.Is(err, perf.ErrInterrupted) {
				return exitInterrupted
			}
			return exitIO
		}
		reportQuarantine(ctx.Quarantined)
		fmt.Fprintf(os.Stderr, "labeled %d matrices in %v\n\n", len(ctx.Labels), time.Since(t0).Round(time.Second))
	default:
		// Sweeps only need the estimator, not the corpus: use a tiny context.
		ctx = experiments.NewContext(experiments.SmokeContextConfig())
	}
	if *saveLabels != "" {
		if err := perf.SaveLabels(*saveLabels, ctx.Labels); err != nil {
			fmt.Fprintf(os.Stderr, "wise-bench: -save-labels %s: %v\n", *saveLabels, err)
			return exitIO
		}
		fmt.Fprintf(os.Stderr, "saved labels to %s\n", *saveLabels)
	}

	sweepCfg := experiments.DefaultSweepConfig()

	// Each experiment is one named builder so the driver loop can time it as
	// an obs span and report progress; ids match the -exp selectors and the
	// emitted table ids.
	type expBuild struct {
		id    string
		build func() *experiments.Table
	}
	one := func(id string, build func() *experiments.Table) []expBuild {
		return []expBuild{{id: id, build: build}}
	}
	ablations := func() []expBuild {
		return []expBuild{
			{"ablation-features", func() *experiments.Table { return experiments.AblationFeatureSets(ctx) }},
			{"ablation-classes", func() *experiments.Table { return experiments.AblationClasses(ctx) }},
			{"ablation-tiebreak", func() *experiments.Table { return experiments.AblationTieBreak(ctx) }},
			{"ablation-forest", func() *experiments.Table { return experiments.AblationModelFamily(ctx) }},
			{"ablation-flatmem", func() *experiments.Table { return experiments.AblationFlatMemory(ctx, smallProbe(*seed)) }},
		}
	}

	var builds []expBuild
	switch *exp {
	case "all":
		builds = []expBuild{
			{"fig1", func() *experiments.Table { return experiments.Fig1Formats(ctx) }},
			{"fig2", func() *experiments.Table { return experiments.Fig2(ctx) }},
			{"fig3", func() *experiments.Table { return experiments.Fig3(ctx) }},
			{"fig4", func() *experiments.Table { return experiments.Fig4(ctx) }},
			{"fig7", func() *experiments.Table { return experiments.Fig7(ctx) }},
			{"fig10", func() *experiments.Table { return experiments.Fig10(ctx) }},
			{"fig11", func() *experiments.Table { return experiments.Fig11(ctx) }},
			{"fig12", func() *experiments.Table { return experiments.Fig12(ctx) }},
			{"fig13", func() *experiments.Table { return experiments.Fig13(ctx) }},
			{"sec6.4", func() *experiments.Table { return experiments.Sec64(ctx) }},
			{"table4", func() *experiments.Table { return experiments.Table4(ctx) }},
			{"importance", func() *experiments.Table { return experiments.FeatureImportance(ctx) }},
			{"fig5", func() *experiments.Table { return experiments.Fig5(ctx, sweepCfg) }},
			{"fig6", func() *experiments.Table { return experiments.Fig6(ctx, sweepCfg) }},
		}
		builds = append(builds, ablations()...)
	case "fig1":
		builds = one("fig1", func() *experiments.Table { return experiments.Fig1Formats(ctx) })
	case "fig2":
		builds = one("fig2", func() *experiments.Table { return experiments.Fig2(ctx) })
	case "fig3":
		builds = one("fig3", func() *experiments.Table { return experiments.Fig3(ctx) })
	case "fig4":
		builds = one("fig4", func() *experiments.Table { return experiments.Fig4(ctx) })
	case "fig5":
		builds = one("fig5", func() *experiments.Table { return experiments.Fig5(ctx, sweepCfg) })
	case "fig6":
		builds = one("fig6", func() *experiments.Table { return experiments.Fig6(ctx, sweepCfg) })
	case "fig7":
		builds = one("fig7", func() *experiments.Table { return experiments.Fig7(ctx) })
	case "fig10":
		builds = one("fig10", func() *experiments.Table { return experiments.Fig10(ctx) })
	case "fig11":
		builds = one("fig11", func() *experiments.Table { return experiments.Fig11(ctx) })
	case "fig12":
		builds = one("fig12", func() *experiments.Table { return experiments.Fig12(ctx) })
	case "fig13":
		builds = one("fig13", func() *experiments.Table { return experiments.Fig13(ctx) })
	case "ie", "sec6.4":
		builds = one("sec6.4", func() *experiments.Table { return experiments.Sec64(ctx) })
	case "table4":
		builds = one("table4", func() *experiments.Table { return experiments.Table4(ctx) })
	case "importance":
		builds = one("importance", func() *experiments.Table { return experiments.FeatureImportance(ctx) })
	case "ablations":
		builds = ablations()
	default:
		fmt.Fprintf(os.Stderr, "wise-bench: unknown experiment %q for -exp\n", *exp)
		return exitUsage
	}

	expSpan := obs.Begin("experiments")
	progress := obs.StartProgress("experiments", len(builds))
	var tables []*experiments.Table
	for _, b := range builds {
		sp := expSpan.Child(b.id)
		tables = append(tables, b.build())
		obs.Verbosef("experiment %s done in %v", b.id, sp.End().Round(time.Millisecond))
		progress.Add(1)
	}
	progress.Finish()
	expSpan.End()

	for _, tab := range tables {
		fmt.Println(tab.String())
		if *outdir != "" {
			if err := os.MkdirAll(*outdir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "wise-bench: creating -outdir %s: %v\n", *outdir, err)
				return exitIO
			}
			name := strings.ReplaceAll(tab.ID, ".", "_") + ".txt"
			path := filepath.Join(*outdir, name)
			if err := resilience.AtomicWriteFile(path, []byte(tab.String()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "wise-bench: writing %s: %v\n", path, err)
				return exitIO
			}
		}
	}
	fmt.Fprintf(os.Stderr, "total: %v\n", time.Since(t0).Round(time.Second))
	return exitOK
}

// reportQuarantine prints the matrices withheld from the run (panic or
// deadline during labeling); counts also land in the metrics snapshot as
// perf.matrices_quarantined.
func reportQuarantine(qs []perf.QuarantinedMatrix) {
	if len(qs) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "wise-bench: %d matrices quarantined during labeling:\n", len(qs))
	for _, q := range qs {
		fmt.Fprintf(os.Stderr, "  %-24s class=%-3s %s\n", q.Name, q.Class, q.Err)
	}
}

// runSuiteMode runs the preset benchmark suite (BENCHMARKS.md): print the
// report, optionally persist it as a BENCH_<n>.json trajectory point.
func runSuiteMode(ctx context.Context, preset, out string, seed int64, timeScale float64, workers int) int {
	if _, ok := bench.LookupPreset(preset); !ok {
		fmt.Fprintf(os.Stderr, "wise-bench: unknown preset %q for -suite (have %s; -list shows details)\n",
			preset, strings.Join(bench.PresetNames(), ", "))
		return exitUsage
	}
	t0 := time.Now()
	rep, err := bench.RunSuite(ctx, bench.SuiteConfig{
		Preset:    preset,
		Seed:      seed,
		TimeScale: timeScale,
		Workers:   workers,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "wise-bench: %v\n", err)
		if errors.Is(err, context.Canceled) {
			return exitInterrupted
		}
		return exitIO
	}
	fmt.Println(rep.String())
	if out != "" {
		if err := rep.WriteFile(out); err != nil {
			fmt.Fprintf(os.Stderr, "wise-bench: -o %s: %v\n", out, err)
			return exitIO
		}
		fmt.Fprintf(os.Stderr, "wrote %d benchmark results to %s\n", len(rep.Results), out)
	}
	fmt.Fprintf(os.Stderr, "suite %s: %d benchmarks in %v\n", preset, len(rep.Results), time.Since(t0).Round(time.Millisecond))
	return exitOK
}

// runCompare diffs two BENCH_*.json trajectory points. Exit codes: 0 no
// regression, 1 regression beyond the threshold, 2 usage or schema-version
// mismatch (the error names the offending file).
func runCompare(args []string, threshold float64) int {
	if len(args) != 2 {
		fmt.Fprintf(os.Stderr, "wise-bench: -compare takes exactly two files (old.json new.json), got %d\n", len(args))
		return exitUsage
	}
	oldR, err := bench.ReadReport(args[0])
	if err != nil {
		return compareReadError(err)
	}
	newR, err := bench.ReadReport(args[1])
	if err != nil {
		return compareReadError(err)
	}
	cmp, err := bench.Compare(oldR, newR, bench.CompareOptions{Threshold: threshold})
	if err != nil {
		fmt.Fprintf(os.Stderr, "wise-bench: %v\n", err)
		return exitUsage
	}
	fmt.Print(cmp.String())
	if cmp.Regressed > 0 {
		fmt.Fprintf(os.Stderr, "wise-bench: %d benchmark(s) regressed beyond ±%.0f%% (%s -> %s)\n",
			cmp.Regressed, threshold*100, args[0], args[1])
		return exitIO
	}
	return exitOK
}

// compareReadError maps a report-read failure to the exit-code contract:
// schema mismatches are usage errors (2, the file names the version), other
// read failures are I/O (1).
func compareReadError(err error) int {
	fmt.Fprintf(os.Stderr, "wise-bench: %v\n", err)
	if errors.Is(err, bench.ErrSchema) {
		return exitUsage
	}
	return exitIO
}

func smallProbe(seed int64) gen.CorpusConfig {
	return gen.CorpusConfig{
		Seed:      seed + 100,
		RowScales: []float64{10, 12, 14},
		Degrees:   []float64{8, 32},
		MaxNNZ:    1 << 21,
		SciCount:  8,
	}
}
