// wise-bench regenerates every table and figure of the paper's evaluation
// (see DESIGN.md for the per-experiment index), printing each as an aligned
// text table and optionally writing them to a results directory.
//
//	wise-bench                      # all experiments, default scaled corpus
//	wise-bench -exp fig13           # one experiment
//	wise-bench -full -outdir results
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"wise/internal/experiments"
	"wise/internal/gen"
	"wise/internal/perf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wise-bench: ")
	var (
		exp        = flag.String("exp", "all", "experiment: all, fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig10, fig11, fig12, fig13, ie, table4, importance, ablations")
		full       = flag.Bool("full", false, "use the full paper-shaped corpus (much slower)")
		small      = flag.Bool("small", false, "use a small smoke corpus (fast, for CI)")
		medium     = flag.Bool("medium", false, "use the medium corpus (~500 matrices)")
		outdir     = flag.String("outdir", "", "also write each table to <outdir>/<id>.txt")
		workers    = flag.Int("workers", 0, "labeling workers (0 = GOMAXPROCS)")
		seed       = flag.Int64("seed", 1, "corpus seed")
		saveLabels = flag.String("save-labels", "", "after labeling, save the labeled corpus to this gzipped JSON file")
		loadLabels = flag.String("load-labels", "", "skip labeling and reuse a corpus saved with -save-labels")
	)
	flag.Parse()

	ccfg := experiments.DefaultContextConfig()
	if *full {
		ccfg.Corpus = gen.FullCorpusConfig()
	}
	if *medium {
		ccfg.Corpus = gen.MediumCorpusConfig()
	}
	if *small {
		ccfg = experiments.SmokeContextConfig()
	}
	ccfg.Corpus.Seed = *seed
	ccfg.Workers = *workers

	needsCorpus := *exp != "fig5" && *exp != "fig6"
	t0 := time.Now()
	var ctx *experiments.Context
	switch {
	case *loadLabels != "":
		labels, err := perf.LoadLabels(*loadLabels)
		if err != nil {
			log.Fatal(err)
		}
		ctx = experiments.NewContextFromLabels(labels)
		fmt.Fprintf(os.Stderr, "loaded %d labeled matrices from %s\n\n", len(ctx.Labels), *loadLabels)
	case needsCorpus || *exp == "all":
		fmt.Fprintf(os.Stderr, "labeling corpus (this runs the cache-simulating cost model on 29 methods per matrix)...\n")
		ctx = experiments.NewContext(ccfg)
		fmt.Fprintf(os.Stderr, "labeled %d matrices in %v\n\n", len(ctx.Labels), time.Since(t0).Round(time.Second))
	default:
		// Sweeps only need the estimator, not the corpus: use a tiny context.
		ctx = experiments.NewContext(experiments.SmokeContextConfig())
	}
	if *saveLabels != "" {
		if err := perf.SaveLabels(*saveLabels, ctx.Labels); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "saved labels to %s\n", *saveLabels)
	}

	sweepCfg := experiments.DefaultSweepConfig()
	var tables []*experiments.Table
	switch *exp {
	case "all":
		tables = experiments.AllStandard(ctx)
		tables = append(tables, experiments.Fig5(ctx, sweepCfg), experiments.Fig6(ctx, sweepCfg))
		tables = append(tables,
			experiments.AblationFeatureSets(ctx),
			experiments.AblationClasses(ctx),
			experiments.AblationTieBreak(ctx),
			experiments.AblationModelFamily(ctx),
			experiments.AblationFlatMemory(ctx, smallProbe(*seed)),
		)
	case "fig1":
		tables = append(tables, experiments.Fig1Formats(ctx))
	case "fig2":
		tables = append(tables, experiments.Fig2(ctx))
	case "fig3":
		tables = append(tables, experiments.Fig3(ctx))
	case "fig4":
		tables = append(tables, experiments.Fig4(ctx))
	case "fig5":
		tables = append(tables, experiments.Fig5(ctx, sweepCfg))
	case "fig6":
		tables = append(tables, experiments.Fig6(ctx, sweepCfg))
	case "fig7":
		tables = append(tables, experiments.Fig7(ctx))
	case "fig10":
		tables = append(tables, experiments.Fig10(ctx))
	case "fig11":
		tables = append(tables, experiments.Fig11(ctx))
	case "fig12":
		tables = append(tables, experiments.Fig12(ctx))
	case "fig13":
		tables = append(tables, experiments.Fig13(ctx))
	case "ie", "sec6.4":
		tables = append(tables, experiments.Sec64(ctx))
	case "table4":
		tables = append(tables, experiments.Table4(ctx))
	case "importance":
		tables = append(tables, experiments.FeatureImportance(ctx))
	case "ablations":
		tables = append(tables,
			experiments.AblationFeatureSets(ctx),
			experiments.AblationClasses(ctx),
			experiments.AblationTieBreak(ctx),
			experiments.AblationModelFamily(ctx),
			experiments.AblationFlatMemory(ctx, smallProbe(*seed)),
		)
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}

	for _, tab := range tables {
		fmt.Println(tab.String())
		if *outdir != "" {
			if err := os.MkdirAll(*outdir, 0o755); err != nil {
				log.Fatal(err)
			}
			name := strings.ReplaceAll(tab.ID, ".", "_") + ".txt"
			if err := os.WriteFile(filepath.Join(*outdir, name), []byte(tab.String()), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "total: %v\n", time.Since(t0).Round(time.Second))
}

func smallProbe(seed int64) gen.CorpusConfig {
	return gen.CorpusConfig{
		Seed:      seed + 100,
		RowScales: []float64{10, 12, 14},
		Degrees:   []float64{8, 32},
		MaxNNZ:    1 << 21,
		SciCount:  8,
	}
}
