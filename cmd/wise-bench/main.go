// wise-bench regenerates every table and figure of the paper's evaluation
// (see DESIGN.md for the per-experiment index), printing each as an aligned
// text table and optionally writing them to a results directory.
//
//	wise-bench                      # all experiments, default scaled corpus
//	wise-bench -exp fig13           # one experiment
//	wise-bench -full -outdir results
//	wise-bench -small               # CI-size smoke corpus (-medium in between)
//	wise-bench -v -metrics m.json   # live progress + per-stage metrics
//	wise-bench -checkpoint run.ckpt # resumable labeling (RESILIENCE.md)
//
// The expensive labeling pass (cache-simulating cost model, 29 methods per
// matrix) can be cached across runs with -save-labels/-load-labels. The
// observability flags (-v, -metrics, -cpuprofile, -memprofile) are shared
// by every wise CLI and documented in OBSERVABILITY.md; -v reports live
// labeling/evaluation progress with ETA, and -metrics writes a JSON
// snapshot with the corpus {gen, label} spans and one span per experiment.
//
// Fault tolerance (RESILIENCE.md): -checkpoint makes labeling resumable;
// SIGINT/SIGTERM flushes completed labels and exits with status 130.
// Exit codes: 0 success, 1 I/O or pipeline failure, 2 usage error, 130
// interrupted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"wise/internal/experiments"
	"wise/internal/gen"
	"wise/internal/obs"
	"wise/internal/perf"
	"wise/internal/resilience"
	"wise/internal/resilience/faultinject"
)

// Exit codes, shared by the wise CLIs and documented in RESILIENCE.md.
const (
	exitOK          = 0
	exitIO          = 1
	exitUsage       = 2
	exitInterrupted = 130
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp        = flag.String("exp", "all", "experiment: all, fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig10, fig11, fig12, fig13, ie, table4, importance, ablations")
		full       = flag.Bool("full", false, "use the full paper-shaped corpus (much slower)")
		small      = flag.Bool("small", false, "use a small smoke corpus (fast, for CI)")
		medium     = flag.Bool("medium", false, "use the medium corpus (~500 matrices)")
		outdir     = flag.String("outdir", "", "also write each table to <outdir>/<id>.txt")
		workers    = flag.Int("workers", 0, "labeling workers (0 = GOMAXPROCS)")
		seed       = flag.Int64("seed", 1, "corpus seed")
		saveLabels = flag.String("save-labels", "", "after labeling, save the labeled corpus to this gzipped JSON file")
		loadLabels = flag.String("load-labels", "", "skip labeling and reuse a corpus saved with -save-labels")
		checkpoint = flag.String("checkpoint", "", "labeling checkpoint file for resumable runs (see RESILIENCE.md)")
	)
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "wise-bench: unexpected argument %q (wise-bench takes only flags)\n", flag.Arg(0))
		return exitUsage
	}
	if err := faultinject.ConfigureFromEnv(os.Getenv); err != nil {
		fmt.Fprintf(os.Stderr, "wise-bench: %v\n", err)
		return exitUsage
	}
	finishObs := obsFlags.MustStart()
	defer func() {
		if err := finishObs(); err != nil {
			fmt.Fprintf(os.Stderr, "wise-bench: %v\n", err)
		}
	}()

	sigCtx, stop := resilience.SignalContext(context.Background())
	defer stop()

	ccfg := experiments.DefaultContextConfig()
	if *full {
		ccfg.Corpus = gen.FullCorpusConfig()
	}
	if *medium {
		ccfg.Corpus = gen.MediumCorpusConfig()
	}
	if *small {
		ccfg = experiments.SmokeContextConfig()
	}
	ccfg.Corpus.Seed = *seed
	ccfg.Workers = *workers
	ccfg.Checkpoint = *checkpoint

	needsCorpus := *exp != "fig5" && *exp != "fig6"
	t0 := time.Now()
	var ctx *experiments.Context
	switch {
	case *loadLabels != "":
		labels, err := perf.LoadLabels(*loadLabels)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wise-bench: -load-labels %s: %v\n", *loadLabels, err)
			return exitIO
		}
		ctx = experiments.NewContextFromLabels(labels)
		fmt.Fprintf(os.Stderr, "loaded %d labeled matrices from %s\n\n", len(ctx.Labels), *loadLabels)
	case needsCorpus || *exp == "all":
		fmt.Fprintf(os.Stderr, "labeling corpus (this runs the cache-simulating cost model on 29 methods per matrix)...\n")
		var err error
		ctx, err = experiments.NewContextCtx(sigCtx, ccfg)
		if ctx != nil && ctx.Resumed > 0 {
			fmt.Fprintf(os.Stderr, "resumed %d already-labeled matrices from %s\n", ctx.Resumed, *checkpoint)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "wise-bench: %v\n", err)
			if errors.Is(err, perf.ErrInterrupted) {
				return exitInterrupted
			}
			return exitIO
		}
		reportQuarantine(ctx.Quarantined)
		fmt.Fprintf(os.Stderr, "labeled %d matrices in %v\n\n", len(ctx.Labels), time.Since(t0).Round(time.Second))
	default:
		// Sweeps only need the estimator, not the corpus: use a tiny context.
		ctx = experiments.NewContext(experiments.SmokeContextConfig())
	}
	if *saveLabels != "" {
		if err := perf.SaveLabels(*saveLabels, ctx.Labels); err != nil {
			fmt.Fprintf(os.Stderr, "wise-bench: -save-labels %s: %v\n", *saveLabels, err)
			return exitIO
		}
		fmt.Fprintf(os.Stderr, "saved labels to %s\n", *saveLabels)
	}

	sweepCfg := experiments.DefaultSweepConfig()

	// Each experiment is one named builder so the driver loop can time it as
	// an obs span and report progress; ids match the -exp selectors and the
	// emitted table ids.
	type expBuild struct {
		id    string
		build func() *experiments.Table
	}
	one := func(id string, build func() *experiments.Table) []expBuild {
		return []expBuild{{id: id, build: build}}
	}
	ablations := func() []expBuild {
		return []expBuild{
			{"ablation-features", func() *experiments.Table { return experiments.AblationFeatureSets(ctx) }},
			{"ablation-classes", func() *experiments.Table { return experiments.AblationClasses(ctx) }},
			{"ablation-tiebreak", func() *experiments.Table { return experiments.AblationTieBreak(ctx) }},
			{"ablation-forest", func() *experiments.Table { return experiments.AblationModelFamily(ctx) }},
			{"ablation-flatmem", func() *experiments.Table { return experiments.AblationFlatMemory(ctx, smallProbe(*seed)) }},
		}
	}

	var builds []expBuild
	switch *exp {
	case "all":
		builds = []expBuild{
			{"fig1", func() *experiments.Table { return experiments.Fig1Formats(ctx) }},
			{"fig2", func() *experiments.Table { return experiments.Fig2(ctx) }},
			{"fig3", func() *experiments.Table { return experiments.Fig3(ctx) }},
			{"fig4", func() *experiments.Table { return experiments.Fig4(ctx) }},
			{"fig7", func() *experiments.Table { return experiments.Fig7(ctx) }},
			{"fig10", func() *experiments.Table { return experiments.Fig10(ctx) }},
			{"fig11", func() *experiments.Table { return experiments.Fig11(ctx) }},
			{"fig12", func() *experiments.Table { return experiments.Fig12(ctx) }},
			{"fig13", func() *experiments.Table { return experiments.Fig13(ctx) }},
			{"sec6.4", func() *experiments.Table { return experiments.Sec64(ctx) }},
			{"table4", func() *experiments.Table { return experiments.Table4(ctx) }},
			{"importance", func() *experiments.Table { return experiments.FeatureImportance(ctx) }},
			{"fig5", func() *experiments.Table { return experiments.Fig5(ctx, sweepCfg) }},
			{"fig6", func() *experiments.Table { return experiments.Fig6(ctx, sweepCfg) }},
		}
		builds = append(builds, ablations()...)
	case "fig1":
		builds = one("fig1", func() *experiments.Table { return experiments.Fig1Formats(ctx) })
	case "fig2":
		builds = one("fig2", func() *experiments.Table { return experiments.Fig2(ctx) })
	case "fig3":
		builds = one("fig3", func() *experiments.Table { return experiments.Fig3(ctx) })
	case "fig4":
		builds = one("fig4", func() *experiments.Table { return experiments.Fig4(ctx) })
	case "fig5":
		builds = one("fig5", func() *experiments.Table { return experiments.Fig5(ctx, sweepCfg) })
	case "fig6":
		builds = one("fig6", func() *experiments.Table { return experiments.Fig6(ctx, sweepCfg) })
	case "fig7":
		builds = one("fig7", func() *experiments.Table { return experiments.Fig7(ctx) })
	case "fig10":
		builds = one("fig10", func() *experiments.Table { return experiments.Fig10(ctx) })
	case "fig11":
		builds = one("fig11", func() *experiments.Table { return experiments.Fig11(ctx) })
	case "fig12":
		builds = one("fig12", func() *experiments.Table { return experiments.Fig12(ctx) })
	case "fig13":
		builds = one("fig13", func() *experiments.Table { return experiments.Fig13(ctx) })
	case "ie", "sec6.4":
		builds = one("sec6.4", func() *experiments.Table { return experiments.Sec64(ctx) })
	case "table4":
		builds = one("table4", func() *experiments.Table { return experiments.Table4(ctx) })
	case "importance":
		builds = one("importance", func() *experiments.Table { return experiments.FeatureImportance(ctx) })
	case "ablations":
		builds = ablations()
	default:
		fmt.Fprintf(os.Stderr, "wise-bench: unknown experiment %q for -exp\n", *exp)
		return exitUsage
	}

	expSpan := obs.Begin("experiments")
	progress := obs.StartProgress("experiments", len(builds))
	var tables []*experiments.Table
	for _, b := range builds {
		sp := expSpan.Child(b.id)
		tables = append(tables, b.build())
		obs.Verbosef("experiment %s done in %v", b.id, sp.End().Round(time.Millisecond))
		progress.Add(1)
	}
	progress.Finish()
	expSpan.End()

	for _, tab := range tables {
		fmt.Println(tab.String())
		if *outdir != "" {
			if err := os.MkdirAll(*outdir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "wise-bench: creating -outdir %s: %v\n", *outdir, err)
				return exitIO
			}
			name := strings.ReplaceAll(tab.ID, ".", "_") + ".txt"
			path := filepath.Join(*outdir, name)
			if err := resilience.AtomicWriteFile(path, []byte(tab.String()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "wise-bench: writing %s: %v\n", path, err)
				return exitIO
			}
		}
	}
	fmt.Fprintf(os.Stderr, "total: %v\n", time.Since(t0).Round(time.Second))
	return exitOK
}

// reportQuarantine prints the matrices withheld from the run (panic or
// deadline during labeling); counts also land in the metrics snapshot as
// perf.matrices_quarantined.
func reportQuarantine(qs []perf.QuarantinedMatrix) {
	if len(qs) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "wise-bench: %d matrices quarantined during labeling:\n", len(qs))
	for _, q := range qs {
		fmt.Fprintf(os.Stderr, "  %-24s class=%-3s %s\n", q.Name, q.Class, q.Err)
	}
}

func smallProbe(seed int64) gen.CorpusConfig {
	return gen.CorpusConfig{
		Seed:      seed + 100,
		RowScales: []float64{10, 12, 14},
		Degrees:   []float64{8, 32},
		MaxNNZ:    1 << 21,
		SciCount:  8,
	}
}
