// wise-gen generates sparse matrices in MatrixMarket format: single
// matrices from any generator family, or a whole training corpus.
//
// Examples:
//
//	wise-gen -kind rmat -class HS -rows 4096 -degree 16 -out hs.mtx
//	wise-gen -kind rgg -rows 8192 -degree 8 -out rgg.mtx
//	wise-gen -kind stencil2d -rows 4096 -out stencil.mtx
//	wise-gen -kind corpus -outdir corpus/          # full default corpus
//
// Corpus mode accepts -small (CI-size) and -full (paper-shaped). The
// shared observability flags (-v, -metrics, -cpuprofile, -memprofile) are
// documented in OBSERVABILITY.md. Matrix files are written atomically
// (RESILIENCE.md). Exit codes: 0 success, 1 I/O failure, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"wise/internal/gen"
	"wise/internal/matrix"
	"wise/internal/obs"
	"wise/internal/resilience/faultinject"
)

// Exit codes, shared by the wise CLIs and documented in RESILIENCE.md.
const (
	exitOK    = 0
	exitIO    = 1
	exitUsage = 2
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		kind   = flag.String("kind", "rmat", "generator: rmat, rgg, banded, stencil2d, stencil3d, fem, powerlaw, uniform, corpus")
		class  = flag.String("class", "HS", "RMAT class: HS, MS, LS, LL, ML, HL")
		rows   = flag.Int("rows", 4096, "number of rows (and columns)")
		degree = flag.Float64("degree", 16, "average nonzeros per row")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("out", "", "output .mtx file (single matrix; default stdout)")
		outdir = flag.String("outdir", "corpus", "output directory (corpus mode)")
		full   = flag.Bool("full", false, "corpus mode: use the full paper-shaped corpus")
		small  = flag.Bool("small", false, "corpus mode: use a small smoke corpus (fast, for CI)")
	)
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "wise-gen: unexpected argument %q (wise-gen takes only flags)\n", flag.Arg(0))
		return exitUsage
	}
	if err := faultinject.ConfigureFromEnv(os.Getenv); err != nil {
		fmt.Fprintf(os.Stderr, "wise-gen: %v\n", err)
		return exitUsage
	}
	finishObs := obsFlags.MustStart()
	defer func() {
		if err := finishObs(); err != nil {
			fmt.Fprintf(os.Stderr, "wise-gen: %v\n", err)
		}
	}()
	rng := rand.New(rand.NewSource(*seed))

	if *kind == "corpus" {
		cfg := gen.DefaultCorpusConfig()
		if *full {
			cfg = gen.FullCorpusConfig()
		}
		if *small {
			cfg = gen.CorpusConfig{
				RowScales: []float64{8, 9},
				Degrees:   []float64{4},
				MaxNNZ:    1 << 20,
				SciCount:  4,
			}
		}
		cfg.Seed = *seed
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "wise-gen: creating -outdir %s: %v\n", *outdir, err)
			return exitIO
		}
		corpus := gen.Corpus(cfg)
		for _, l := range corpus {
			path := filepath.Join(*outdir, l.Name+".mtx")
			if err := matrix.WriteFile(path, l.M); err != nil {
				fmt.Fprintf(os.Stderr, "wise-gen: writing %s: %v\n", path, err)
				return exitIO
			}
		}
		fmt.Printf("wrote %d matrices to %s\n", len(corpus), *outdir)
		return exitOK
	}

	var m *matrix.CSR
	switch *kind {
	case "rmat":
		params, ok := gen.RMATClassParams[gen.Class(*class)]
		if !ok {
			fmt.Fprintf(os.Stderr, "wise-gen: unknown RMAT class %q for -class\n", *class)
			return exitUsage
		}
		m = gen.RMATRows(rng, *rows, *degree, params)
	case "rgg":
		m = gen.RGG(rng, *rows, *degree)
	case "banded":
		w := int(*degree) / 2
		offsets := make([]int, 0, 2*w+1)
		for o := -w; o <= w; o++ {
			offsets = append(offsets, o)
		}
		m = gen.Banded(rng, *rows, offsets)
	case "stencil2d":
		g := int(math.Sqrt(float64(*rows)))
		m = gen.Stencil2D(g, g, false)
	case "stencil3d":
		g := int(math.Cbrt(float64(*rows)))
		m = gen.Stencil3D(g, g, g)
	case "fem":
		m = gen.FEMLike(rng, *rows, 8, int(*degree)/4)
	case "powerlaw":
		m = gen.PowerLawRows(rng, *rows, 2.1, *rows/4)
	case "uniform":
		m = gen.Uniform(rng, *rows, *degree)
	default:
		fmt.Fprintf(os.Stderr, "wise-gen: unknown generator %q for -kind\n", *kind)
		return exitUsage
	}

	if *out == "" {
		if err := matrix.WriteMatrixMarket(os.Stdout, m); err != nil {
			fmt.Fprintf(os.Stderr, "wise-gen: writing to stdout: %v\n", err)
			return exitIO
		}
		return exitOK
	}
	if err := matrix.WriteFile(*out, m); err != nil {
		fmt.Fprintf(os.Stderr, "wise-gen: writing -out %s: %v\n", *out, err)
		return exitIO
	}
	fmt.Printf("wrote %s: %d x %d, %d nonzeros\n", *out, m.Rows, m.Cols, m.NNZ())
	return exitOK
}
