// wise-lint runs the repo-invariant static analyzer suite (internal/lint)
// over the module: determinism, floateq, spanhygiene, goroutinesafety, and
// errdrop. It prints findings as file:line:col: [analyzer] message, exits 1
// when any finding survives suppression, and 2 on load errors. See
// LINTING.md for the analyzer catalogue and the //lint:ignore syntax.
//
// Usage:
//
//	wise-lint [-json file] [packages ...]
//
// Package patterns are directory-based: "./..." (or no arguments) lints the
// whole module; "./internal/ml" or "./internal/..." restricts the report to
// the matching packages. The whole module is always loaded and type-checked
// so cross-package analysis stays sound.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"wise/internal/lint"
	"wise/internal/resilience"
)

func main() {
	jsonPath := flag.String("json", "", "also write findings as JSON to this file (- for stdout)")
	list := flag.Bool("analyzers", false, "list the analyzer suite and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	mod, err := lint.LoadModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "wise-lint:", err)
		os.Exit(2)
	}

	// Directory arguments under a testdata/ tree are analyzer fixtures:
	// they sit outside the module walk and are loaded individually. All
	// other arguments filter the module-wide report.
	var patterns []string
	var findings []lint.Finding
	for _, arg := range flag.Args() {
		if st, err := os.Stat(arg); err == nil && st.IsDir() && underTestdata(arg) {
			pkg, err := mod.LoadFixture(arg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wise-lint:", err)
				os.Exit(2)
			}
			findings = append(findings, lint.RunPackage(mod, pkg, lint.All())...)
			continue
		}
		patterns = append(patterns, arg)
	}
	if len(patterns) > 0 || len(flag.Args()) == 0 {
		findings = append(findings, filterByPatterns(lint.Run(mod, lint.All()), mod.Root, patterns)...)
	}

	// With -json -, stdout carries only the JSON so it pipes cleanly; the
	// human-readable lines move to stderr.
	human := os.Stdout
	if *jsonPath == "-" {
		human = os.Stderr
	}
	for _, f := range findings {
		//lint:ignore errdrop human only ever aliases os.Stdout or os.Stderr
		fmt.Fprintln(human, relFinding(mod.Root, f))
	}
	if *jsonPath != "" {
		rel := make([]lint.Finding, len(findings))
		for i, f := range findings {
			rel[i] = f
			if r, err := filepath.Rel(mod.Root, f.File); err == nil {
				rel[i].File = r
			}
		}
		var buf bytes.Buffer
		if err := lint.WriteJSON(&buf, rel); err != nil {
			fmt.Fprintln(os.Stderr, "wise-lint:", err)
			os.Exit(2)
		}
		if *jsonPath == "-" {
			fmt.Print(buf.String())
		} else if err := resilience.AtomicWriteFile(*jsonPath, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "wise-lint:", err)
			os.Exit(2)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "wise-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// underTestdata reports whether any element of the path is "testdata".
func underTestdata(path string) bool {
	abs, err := filepath.Abs(path)
	if err != nil {
		return false
	}
	for _, seg := range strings.Split(filepath.ToSlash(abs), "/") {
		if seg == "testdata" {
			return true
		}
	}
	return false
}

// relFinding renders a finding with a root-relative path.
func relFinding(root string, f lint.Finding) string {
	if r, err := filepath.Rel(root, f.File); err == nil {
		f.File = r
	}
	return f.String()
}

// filterByPatterns keeps findings under the directories named by go-style
// package patterns. Empty args and "./..." mean everything.
func filterByPatterns(fs []lint.Finding, root string, patterns []string) []lint.Finding {
	var dirs []string // absolute dir prefixes; nil means keep all
	for _, p := range patterns {
		if p == "./..." || p == "..." || p == "all" {
			return fs
		}
		rec := false
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			p, rec = rest, true
		}
		abs, err := filepath.Abs(p)
		if err != nil {
			continue
		}
		if rec {
			dirs = append(dirs, abs+string(filepath.Separator))
		}
		dirs = append(dirs, abs)
	}
	if len(patterns) == 0 || len(dirs) == 0 {
		return fs
	}
	var out []lint.Finding
	for _, f := range fs {
		dir := filepath.Dir(f.File)
		for _, d := range dirs {
			if dir == strings.TrimSuffix(d, string(filepath.Separator)) ||
				(strings.HasSuffix(d, string(filepath.Separator)) && strings.HasPrefix(dir+string(filepath.Separator), d)) {
				out = append(out, f)
				break
			}
		}
	}
	return out
}
