// wise-lint runs the repo-invariant static analyzer suite (internal/lint)
// over the module. It prints findings as file:line:col: [analyzer] message,
// exits 1 when any finding survives suppression, and 2 on load or usage
// errors. See LINTING.md for the analyzer catalogue, the //lint:ignore
// syntax, and the v2 dataflow engine.
//
// Usage:
//
//	wise-lint [-json file] [-sarif file] [-fix] [-analyzers a,b] [-budget d] [-cache dir] [-jobs n] [packages ...]
//
// Package patterns are directory-based: "./..." (or no arguments) lints the
// whole module; "./internal/ml" or "./internal/..." restricts the report to
// the matching packages. A pattern that names no directory is a usage error.
// The whole module is always loaded and type-checked so cross-package
// analysis stays sound.
//
// -sarif writes the findings as a SARIF 2.1.0 log for CI code-scanning
// upload. -fix applies the suggested fixes (capacity hints, context
// threading, defer-hoisted unlocks), rewriting only files in which every
// finding has a fix. -analyzers runs a comma-separated subset of the suite;
// an unknown name is a usage error (exit 2) so a typo cannot pass CI
// vacuously. -budget fails the run (exit 1) when linting takes longer than
// the given duration; the measured wall-clock time and the budget are
// recorded in the SARIF run properties either way, and a blown budget still
// emits the partial report gathered so far.
//
// -cache DIR enables the v4 incremental engine's on-disk fact cache: each
// package×tier result is keyed by content hashes of everything it can depend
// on, so an unchanged tree re-lints without parsing a single file (see
// LINTING.md). -jobs N parallelizes parsing, type-checking, and analysis
// (0, the default, means GOMAXPROCS); output is byte-identical at any job
// count. Both flags are validated up front: a non-positive explicit -jobs or
// a -cache path that is not a directory is a usage error (exit 2).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"wise/internal/lint"
	"wise/internal/resilience"
)

func main() {
	jsonPath := flag.String("json", "", "also write findings as JSON to this file (- for stdout)")
	sarifPath := flag.String("sarif", "", "also write findings as SARIF 2.1.0 to this file (- for stdout)")
	fix := flag.Bool("fix", false, "apply suggested fixes; only files where every finding has a fix are rewritten")
	list := flag.Bool("list", false, "list the analyzer suite and exit")
	subset := flag.String("analyzers", "", "comma-separated analyzer subset to run (default: the full suite)")
	budget := flag.Duration("budget", 0, "fail if linting takes longer than this (0 = no budget)")
	cacheDir := flag.String("cache", "", "fact-cache directory for incremental runs (default: no cache)")
	jobs := flag.Int("jobs", 0, "parallel parse/check/analysis jobs (0 = GOMAXPROCS)")
	flag.Parse()

	jobsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "jobs" {
			jobsSet = true
		}
	})
	if jobsSet && *jobs < 1 {
		fmt.Fprintf(os.Stderr, "wise-lint: invalid -jobs %d: want a positive job count\n", *jobs)
		os.Exit(2)
	}
	if *cacheDir != "" {
		if st, err := os.Stat(*cacheDir); err == nil && !st.IsDir() {
			fmt.Fprintf(os.Stderr, "wise-lint: invalid -cache %q: not a directory\n", *cacheDir)
			os.Exit(2)
		}
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	// Resolve the analyzer subset before the (expensive) module load so a
	// typo'd -analyzers flag fails fast with a usage error.
	analyzers, err := lint.Select(*subset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wise-lint:", err)
		os.Exit(2)
	}

	// Directory arguments under a testdata/ tree are analyzer fixtures:
	// they sit outside the module walk and are loaded individually. All
	// other arguments filter the module-wide report and must name a real
	// directory — a typo'd pattern silently matching nothing would let CI
	// pass vacuously.
	var patterns, fixtureDirs []string
	for _, arg := range flag.Args() {
		if st, err := os.Stat(arg); err == nil && st.IsDir() && underTestdata(arg) {
			fixtureDirs = append(fixtureDirs, arg)
			continue
		}
		if err := validatePattern(arg); err != nil {
			fmt.Fprintln(os.Stderr, "wise-lint:", err)
			os.Exit(2)
		}
		patterns = append(patterns, arg)
	}

	start := time.Now()
	var findings []lint.Finding
	var root string
	budgetExceeded := false
	props := map[string]any{}

	if *fix || len(fixtureDirs) > 0 {
		// Classic path: -fix needs live AST positions and fixtures sit
		// outside the module walk, so neither goes through the fact cache.
		mod, err := lint.LoadModuleJobs(".", *jobs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wise-lint:", err)
			os.Exit(2)
		}
		root = mod.Root
		for _, dir := range fixtureDirs {
			pkg, err := mod.LoadFixture(dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wise-lint:", err)
				os.Exit(2)
			}
			findings = append(findings, lint.RunPackage(mod, pkg, analyzers)...)
		}
		if len(patterns) > 0 || len(flag.Args()) == 0 {
			findings = append(findings, filterByPatterns(lint.Run(mod, analyzers), root, patterns)...)
		}
		if *fix {
			os.Exit(applyFixes(mod, findings))
		}
	} else {
		// Engine path: incremental, parallel, cacheable (LINTING.md v4).
		engineFindings, stats, err := lint.RunEngine(analyzers, lint.EngineOptions{
			CacheDir: *cacheDir,
			Jobs:     *jobs,
			Budget:   *budget,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "wise-lint:", err)
			os.Exit(2)
		}
		root = stats.Root
		findings = filterByPatterns(engineFindings, root, patterns)
		budgetExceeded = stats.BudgetExceeded
		if *cacheDir != "" {
			props["cacheHits"] = stats.CacheHits
			props["cacheMisses"] = stats.CacheMisses
			props["fullyCached"] = stats.FullyCached
		}
	}
	elapsed := time.Since(start)

	// With -json - or -sarif -, stdout carries only the machine-readable
	// log so it pipes cleanly; the human-readable lines move to stderr.
	human := os.Stdout
	if *jsonPath == "-" || *sarifPath == "-" {
		human = os.Stderr
	}
	for _, f := range findings {
		//lint:ignore errdrop human only ever aliases os.Stdout or os.Stderr
		fmt.Fprintln(human, relFinding(root, f))
	}
	if *jsonPath != "" || *sarifPath != "" {
		rel := make([]lint.Finding, len(findings))
		for i, f := range findings {
			rel[i] = f
			if r, err := filepath.Rel(root, f.File); err == nil {
				rel[i].File = r
			}
		}
		if *jsonPath != "" {
			var buf bytes.Buffer
			if err := lint.WriteJSON(&buf, rel); err != nil {
				fmt.Fprintln(os.Stderr, "wise-lint:", err)
				os.Exit(2)
			}
			writeReport(*jsonPath, buf.Bytes())
		}
		if *sarifPath != "" {
			props["wallClockSeconds"] = elapsed.Seconds()
			if *budget > 0 {
				props["budgetSeconds"] = budget.Seconds()
			}
			var buf bytes.Buffer
			if err := lint.WriteSARIF(&buf, analyzers, rel, props); err != nil {
				fmt.Fprintln(os.Stderr, "wise-lint:", err)
				os.Exit(2)
			}
			writeReport(*sarifPath, buf.Bytes())
		}
	}
	code := 0
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "wise-lint: %d finding(s)\n", len(findings))
		code = 1
	}
	if budgetExceeded {
		fmt.Fprintf(os.Stderr, "wise-lint: -budget of %v blown mid-run; the report above is partial (remaining analyses were cancelled)\n", *budget)
		code = 1
	} else if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(os.Stderr, "wise-lint: run took %v, over the -budget of %v\n", elapsed.Round(time.Millisecond), *budget)
		code = 1
	}
	os.Exit(code)
}

// writeReport writes a machine-readable report to path, with "-" meaning
// stdout. File writes go through the resilience layer so a crashed run never
// leaves a truncated log for CI to upload.
func writeReport(path string, data []byte) {
	if path == "-" {
		fmt.Print(string(data))
		return
	}
	if err := resilience.AtomicWriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "wise-lint:", err)
		os.Exit(2)
	}
}

// validatePattern rejects package patterns that name no directory on disk.
// The module-wide tokens are always valid; anything else must resolve (after
// stripping a /... suffix) to an existing directory.
func validatePattern(p string) error {
	if p == "./..." || p == "..." || p == "all" {
		return nil
	}
	dir := strings.TrimSuffix(p, "/...")
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return fmt.Errorf("unknown package pattern %q: %s is not a directory in this module", p, dir)
	}
	return nil
}

// applyFixes rewrites the files whose findings all carry mechanical fixes and
// reports what was applied or skipped. Returns the process exit code: 0 when
// every finding was fixed, 1 when any file was refused.
func applyFixes(mod *lint.Module, findings []lint.Finding) int {
	write := func(path string, data []byte) error {
		return resilience.AtomicWriteFile(path, data, 0o644)
	}
	results, err := lint.ApplyFixes(mod.Fset, findings, write)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wise-lint:", err)
		return 2
	}
	code := 0
	for _, r := range results {
		file := r.File
		if rel, err := filepath.Rel(mod.Root, file); err == nil {
			file = rel
		}
		if len(r.Skipped) > 0 {
			code = 1
			fmt.Fprintf(os.Stderr, "wise-lint: %s: %d finding(s) have no mechanical fix; file left untouched\n", file, len(r.Skipped))
			for _, s := range r.Skipped {
				fmt.Fprintln(os.Stderr, "  "+s)
			}
			continue
		}
		fmt.Printf("wise-lint: %s: applied %d fix(es)\n", file, r.Applied)
	}
	return code
}

// underTestdata reports whether any element of the path is "testdata".
func underTestdata(path string) bool {
	abs, err := filepath.Abs(path)
	if err != nil {
		return false
	}
	for _, seg := range strings.Split(filepath.ToSlash(abs), "/") {
		if seg == "testdata" {
			return true
		}
	}
	return false
}

// relFinding renders a finding with a root-relative path.
func relFinding(root string, f lint.Finding) string {
	if r, err := filepath.Rel(root, f.File); err == nil {
		f.File = r
	}
	return f.String()
}

// filterByPatterns keeps findings under the directories named by go-style
// package patterns. Empty args and "./..." mean everything.
func filterByPatterns(fs []lint.Finding, root string, patterns []string) []lint.Finding {
	var dirs []string // absolute dir prefixes; nil means keep all
	for _, p := range patterns {
		if p == "./..." || p == "..." || p == "all" {
			return fs
		}
		rec := false
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			p, rec = rest, true
		}
		abs, err := filepath.Abs(p)
		if err != nil {
			continue
		}
		if rec {
			dirs = append(dirs, abs+string(filepath.Separator))
		}
		dirs = append(dirs, abs)
	}
	if len(patterns) == 0 || len(dirs) == 0 {
		return fs
	}
	var out []lint.Finding
	for _, f := range fs {
		dir := filepath.Dir(f.File)
		for _, d := range dirs {
			if dir == strings.TrimSuffix(d, string(filepath.Separator)) ||
				(strings.HasSuffix(d, string(filepath.Separator)) && strings.HasPrefix(dir+string(filepath.Separator), d)) {
				out = append(out, f)
				break
			}
		}
	}
	return out
}
