package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles wise-lint once per test binary into a temp dir and
// returns the executable path plus the module root to run it from.
func buildCLI(t *testing.T) (string, string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	exe := filepath.Join(t.TempDir(), "wise-lint")
	cmd := exec.Command("go", "build", "-o", exe, "./cmd/wise-lint")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building wise-lint: %v\n%s", err, out)
	}
	return exe, root
}

// runCLI executes the built binary from the module root and returns its
// combined output and exit code.
func runCLI(t *testing.T, exe, root string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(exe, args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	var ee *exec.ExitError
	if ok := errorsAs(err, &ee); !ok {
		t.Fatalf("running %v: %v\n%s", args, err, out)
	}
	return string(out), ee.ExitCode()
}

func errorsAs(err error, target **exec.ExitError) bool {
	ee, ok := err.(*exec.ExitError)
	if ok {
		*target = ee
	}
	return ok
}

// TestCLIUsageErrors pins the exit-2 contract: every malformed flag fails
// fast with a message naming the flag, before any analysis runs.
func TestCLIUsageErrors(t *testing.T) {
	exe, root := buildCLI(t)
	regularFile := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(regularFile, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		args    []string
		wantMsg string
	}{
		{"jobs zero", []string{"-jobs", "0", "./..."}, "invalid -jobs"},
		{"jobs negative", []string{"-jobs", "-3", "./..."}, "invalid -jobs"},
		{"cache is a file", []string{"-cache", regularFile, "./..."}, "invalid -cache"},
		{"unknown analyzer", []string{"-analyzers", "nosuchanalyzer", "./..."}, "unknown analyzer"},
		{"unknown pattern", []string{"./no/such/dir"}, "unknown package pattern"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, code := runCLI(t, exe, root, tc.args...)
			if code != 2 {
				t.Errorf("%v: exit %d, want 2\n%s", tc.args, code, out)
			}
			if !strings.Contains(out, tc.wantMsg) {
				t.Errorf("%v: output %q should contain %q", tc.args, out, tc.wantMsg)
			}
		})
	}
}

// TestCLIEngineCleanRun exercises the engine path end to end on the real
// tree: cold populate, then a warm run that must also exit 0.
func TestCLIEngineCleanRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree CLI run skipped in -short")
	}
	exe, root := buildCLI(t)
	cacheDir := t.TempDir()
	for _, label := range []string{"cold", "warm"} {
		out, code := runCLI(t, exe, root, "-cache", cacheDir, "-jobs", "8", "./...")
		if code != 0 {
			t.Fatalf("%s run: exit %d, want 0\n%s", label, code, out)
		}
	}
}

// TestCLIBudgetPartialSARIF blows an absurdly small budget and checks the
// contract from LINTING.md: exit 1, a "partial" notice, and a SARIF log that
// still carries wallClockSeconds and budgetSeconds.
func TestCLIBudgetPartialSARIF(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree CLI run skipped in -short")
	}
	exe, root := buildCLI(t)
	sarifPath := filepath.Join(t.TempDir(), "lint.sarif")
	out, code := runCLI(t, exe, root, "-budget", "1ns", "-sarif", sarifPath, "./...")
	if code != 1 {
		t.Fatalf("blown budget: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "partial") {
		t.Errorf("blown-budget output should mention the partial report, got:\n%s", out)
	}
	data, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatalf("partial SARIF was not written: %v", err)
	}
	var doc struct {
		Runs []struct {
			Properties map[string]any `json:"properties"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("partial SARIF is not valid JSON: %v", err)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("want 1 SARIF run, got %d", len(doc.Runs))
	}
	props := doc.Runs[0].Properties
	if _, ok := props["wallClockSeconds"]; !ok {
		t.Error("partial SARIF should record wallClockSeconds")
	}
	if _, ok := props["budgetSeconds"]; !ok {
		t.Error("partial SARIF should record budgetSeconds")
	}
}
