// wise-predict loads trained models, reads a MatrixMarket matrix, predicts
// the speedup class of every {method, parameter} pair, prints the selection,
// and optionally verifies it by running SpMV with the chosen format.
//
//	wise-predict -models models.json matrix.mtx
//	wise-predict -models models.json -run matrix.mtx
//
// The shared observability flags (-v, -metrics, -cpuprofile, -memprofile)
// are documented in OBSERVABILITY.md; -metrics records the inference-side
// counters (core.selections, kernels.spmv_calls, format builds).
//
// Exit codes (RESILIENCE.md): 0 success, 1 I/O failure (unreadable or
// corrupt model/matrix file, named in the error) or -timeout overrun,
// 2 usage error, 130 interrupted by SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"wise/internal/core"
	"wise/internal/features"
	"wise/internal/kernels"
	"wise/internal/machine"
	"wise/internal/matrix"
	"wise/internal/obs"
	"wise/internal/resilience"
	"wise/internal/resilience/faultinject"
)

// Exit codes, shared by the wise CLIs and documented in RESILIENCE.md.
const (
	exitOK          = 0
	exitIO          = 1
	exitUsage       = 2
	exitInterrupted = 130 // SIGINT/SIGTERM during prediction (128+SIGINT)
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		models  = flag.String("models", "models.json", "trained model file from wise-train")
		runSel  = flag.Bool("run", false, "run SpMV with the selected method and verify against CSR")
		explain = flag.Bool("explain", false, "print the decision path of the selected method's model")
		timeout = flag.Duration("timeout", 0, "abort prediction after this long (0 = no deadline)")
	)
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "wise-predict: usage: wise-predict [-models file] [-run] matrix.mtx")
		return exitUsage
	}
	if err := faultinject.ConfigureFromEnv(os.Getenv); err != nil {
		fmt.Fprintf(os.Stderr, "wise-predict: %v\n", err)
		return exitUsage
	}
	finishObs := obsFlags.MustStart()
	defer func() {
		if err := finishObs(); err != nil {
			fmt.Fprintf(os.Stderr, "wise-predict: %v\n", err)
		}
	}()

	w, err := core.Load(*models, machine.Scaled())
	if err != nil {
		fmt.Fprintf(os.Stderr, "wise-predict: loading -models %s: %v\n", *models, err)
		return exitIO
	}
	m, err := matrix.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "wise-predict: reading matrix %s: %v\n", flag.Arg(0), err)
		return exitIO
	}
	fmt.Printf("matrix: %d x %d, %d nonzeros\n", m.Rows, m.Cols, m.NNZ())

	ctx, stop := resilience.SignalContext(context.Background())
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	sel, err := w.SelectCtx(ctx, m)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "wise-predict: prediction exceeded -timeout %s: %v\n", *timeout, err)
			return exitIO
		}
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "wise-predict: interrupted")
			return exitInterrupted
		}
		fmt.Fprintf(os.Stderr, "wise-predict: %v\n", err)
		return exitIO
	}
	fmt.Println("predicted speedup classes (C0 slowest .. C6 fastest):")
	for i, model := range w.Models {
		marker := " "
		if i == sel.Index {
			marker = "*"
		}
		fmt.Printf(" %s C%d  %s\n", marker, sel.Classes[i], model.Method)
	}
	fmt.Printf("selected: %s (predicted class C%d)\n", sel.Method, sel.PredictedClass)

	if *explain {
		feats := features.Extract(m, w.FeatureCfg)
		tree := w.Models[sel.Index].Tree
		fmt.Printf("decision path of the %s model:\n", sel.Method)
		for _, step := range tree.DecisionPath(feats.Values) {
			name := fmt.Sprintf("feature[%d]", step.Feature)
			if step.Feature < len(feats.Names) {
				name = feats.Names[step.Feature]
			}
			op := "<="
			if !step.WentLeft {
				op = "> "
			}
			fmt.Printf("  %-18s = %-12.6g %s %.6g\n", name, step.Value, op, step.Threshold)
		}
	}

	if *runSel {
		format := kernels.Build(m, sel.Method, machine.Scaled().RowBlock)
		x := matrix.Ones(m.Cols)
		y := make([]float64, m.Rows)
		format.SpMVParallel(y, x, 0)
		want := make([]float64, m.Rows)
		m.SpMV(want, x)
		fmt.Printf("SpMV executed; max |y - y_ref| = %g\n", matrix.MaxAbsDiff(y, want))
	}
	return exitOK
}
