// wise-serve runs the fault-tolerant inference server (internal/serve):
// POST a MatrixMarket matrix to /predict and get the selected SpMV method
// as JSON. The server bounds concurrent work (429 + Retry-After when
// saturated), degrades to the CSR fallback instead of failing when the
// predictor errors or overruns the request deadline, trips a circuit
// breaker under repeated predictor failures, and hot-reloads the model
// file on SIGHUP or change (mtime, size, or envelope checksum) with
// rollback on a corrupt file.
//
//	wise-serve -models models.json -addr 127.0.0.1:8080
//	curl -sS --data-binary @matrix.mtx http://127.0.0.1:8080/predict
//
// Stateful serving (RESILIENCE.md "Stateful serving"): POST the matrix once
// to /matrix and reuse its content fingerprint — warm requests skip parse,
// feature extraction, and format conversion entirely. /spmv executes the
// product with the predicted kernel, by fingerprint or with an inline body:
//
//	fp=$(curl -sS --data-binary @matrix.mtx http://127.0.0.1:8080/matrix | jq -r .fingerprint)
//	curl -sS "http://127.0.0.1:8080/predict?fp=$fp"
//	curl -sS -d "{\"fingerprint\":\"$fp\",\"iterations\":8}" http://127.0.0.1:8080/spmv
//
// Prepared sessions live in a byte-budgeted LRU (-session-bytes); with
// -session-spill they are persisted as checksummed envelopes and rehydrated
// after a restart (corrupt files are quarantined, never served). When the
// budget is saturated the server answers statelessly, marked degraded —
// never a refusal.
//
// With -registry the model lives in a crash-safe generation registry
// (internal/registry), and -shadow-rate enables the self-healing loop
// (RESILIENCE.md "Self-healing serving"): sampled requests are re-executed
// off the request path against the CSR baseline, a drift detector watches
// the prediction-mismatch rate (-drift-window, -drift-min, -drift-trip),
// and a drift trip retrains over the accumulated shadow labels, promotes
// the candidate through a canary gate, and auto-rolls-back a promoted
// generation that regresses during probation:
//
//	wise-serve -models models.json -registry /var/lib/wise -shadow-rate 0.1
//
// /healthz, /readyz, and /metricz expose liveness, readiness, and the obs
// metric snapshot. The shared observability flags (-v, -metrics,
// -cpuprofile, -memprofile) are documented in OBSERVABILITY.md.
//
// The server's mutex-guarded state (the circuit breaker's automaton) is
// annotated `// guarded by mu` and enforced statically by wise-lint's v3
// concurrency analyzers (LINTING.md), in addition to the race-detector
// gates in scripts/check.sh.
//
// Exit codes (RESILIENCE.md): 0 never in normal operation (the server runs
// until signalled), 1 startup or listener failure naming the offending
// flag, 2 usage error, 130 after SIGINT/SIGTERM once in-flight requests
// have drained.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"wise/internal/machine"
	"wise/internal/obs"
	"wise/internal/resilience"
	"wise/internal/resilience/faultinject"
	"wise/internal/serve"
)

// Exit codes, shared by the wise CLIs and documented in RESILIENCE.md.
const (
	exitOK          = 0
	exitIO          = 1
	exitUsage       = 2
	exitInterrupted = 130 // SIGINT/SIGTERM after drain (128+SIGINT)
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		models      = flag.String("models", "models.json", "trained model file from wise-train; reloaded on SIGHUP or mtime change")
		timeout     = flag.Duration("timeout", 2*time.Second, "per-request prediction deadline before degrading to the CSR fallback")
		maxInflight = flag.Int("max-inflight", 0, "max concurrent predictions (0 = 2x GOMAXPROCS)")
		maxQueue    = flag.Int("queue", 0, "max requests waiting for a slot (0 = same as -max-inflight)")
		queueWait   = flag.Duration("queue-wait", 100*time.Millisecond, "max time a request waits in the queue before shedding with 429")
		maxBody     = flag.Int64("max-body", 64<<20, "request body cap in bytes")
		drain       = flag.Duration("drain", 5*time.Second, "shutdown budget for in-flight requests after SIGINT/SIGTERM")
		reloadPoll  = flag.Duration("reload-poll", 2*time.Second, "model-file change poll interval (negative disables polling)")
		brkThresh   = flag.Int("breaker-threshold", 5, "consecutive predictor failures that trip the circuit breaker")
		brkCooldown = flag.Duration("breaker-cooldown", 5*time.Second, "how long the tripped breaker stays open before probing")

		sessionBytes = flag.Int64("session-bytes", 256<<20, "prepared-session cache budget in bytes; least-recently-used sessions are evicted past it")
		sessionSpill = flag.String("session-spill", "", "session spill directory; prepared sessions survive restarts via checksummed envelopes (empty = in-memory only)")

		registryDir = flag.String("registry", "", "model registry directory; enables crash-safe generations with canary-gated promotion (empty = serve -models directly)")
		shadowRate  = flag.Float64("shadow-rate", 0, "fraction of requests shadow-measured against the CSR baseline, 0..1 (0 disables the self-healing loop)")
		shadowWork  = flag.Int("shadow-workers", 1, "shadow measurement worker goroutines")
		driftWindow = flag.Int("drift-window", 64, "shadow samples in the drift-detection window")
		driftMin    = flag.Int("drift-min", 16, "minimum shadow samples before drift may trip")
		driftTrip   = flag.Float64("drift-trip", 0.5, "prediction-mismatch rate that trips drift and triggers retrain, (0,1]")
	)
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "wise-serve: usage: wise-serve [-addr host:port] [-models file] (no positional arguments)")
		return exitUsage
	}
	if err := faultinject.ConfigureFromEnv(os.Getenv); err != nil {
		fmt.Fprintf(os.Stderr, "wise-serve: %v\n", err)
		return exitUsage
	}
	// Feedback-loop flags are validated before any IO: a nonsensical rate or
	// threshold is a usage error (exit 2) naming the flag, per RESILIENCE.md.
	switch {
	case *sessionBytes <= 0:
		fmt.Fprintf(os.Stderr, "wise-serve: -session-bytes %d must be positive\n", *sessionBytes)
		return exitUsage
	case *shadowRate < 0 || *shadowRate > 1:
		fmt.Fprintf(os.Stderr, "wise-serve: -shadow-rate %v out of range [0, 1]\n", *shadowRate)
		return exitUsage
	case *shadowWork <= 0:
		fmt.Fprintf(os.Stderr, "wise-serve: -shadow-workers %d must be positive\n", *shadowWork)
		return exitUsage
	case *driftWindow <= 0:
		fmt.Fprintf(os.Stderr, "wise-serve: -drift-window %d must be positive\n", *driftWindow)
		return exitUsage
	case *driftMin <= 0 || *driftMin > *driftWindow:
		fmt.Fprintf(os.Stderr, "wise-serve: -drift-min %d must be in 1..-drift-window (%d)\n", *driftMin, *driftWindow)
		return exitUsage
	case *driftTrip <= 0 || *driftTrip > 1:
		fmt.Fprintf(os.Stderr, "wise-serve: -drift-trip %v out of range (0, 1]\n", *driftTrip)
		return exitUsage
	}
	if *sessionSpill != "" {
		// Fail before binding the listener so a bad spill path names its flag.
		if err := os.MkdirAll(*sessionSpill, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "wise-serve: creating -session-spill %s: %v\n", *sessionSpill, err)
			return exitIO
		}
	}
	finishObs := obsFlags.MustStart()
	defer func() {
		if err := finishObs(); err != nil {
			fmt.Fprintf(os.Stderr, "wise-serve: %v\n", err)
		}
	}()

	s, err := serve.New(serve.Config{
		ModelPath:        *models,
		Mach:             machine.Scaled(),
		MaxInFlight:      *maxInflight,
		MaxQueue:         *maxQueue,
		QueueWait:        *queueWait,
		RequestTimeout:   *timeout,
		MaxBodyBytes:     *maxBody,
		BreakerThreshold: *brkThresh,
		BreakerCooldown:  *brkCooldown,
		ReloadPoll:       *reloadPoll,
		DrainTimeout:     *drain,
		SessionBytes:     *sessionBytes,
		SessionSpillDir:  *sessionSpill,
		RegistryDir:      *registryDir,
		ShadowRate:       *shadowRate,
		ShadowWorkers:    *shadowWork,
		DriftWindow:      *driftWindow,
		DriftMinSamples:  *driftMin,
		DriftTrip:        *driftTrip,
	})
	if err != nil {
		if *registryDir != "" {
			fmt.Fprintf(os.Stderr, "wise-serve: opening -registry %s with -models %s: %v\n", *registryDir, *models, err)
			return exitIO
		}
		fmt.Fprintf(os.Stderr, "wise-serve: loading -models %s: %v\n", *models, err)
		return exitIO
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wise-serve: listening on -addr %s: %v\n", *addr, err)
		return exitIO
	}
	// The resolved address (not the flag) so port 0 is usable by scripts.
	fmt.Printf("wise-serve: listening on http://%s (%d models from %s)\n",
		ln.Addr(), s.ModelCount(), *models)

	ctx, stop := resilience.SignalContext(context.Background())
	defer stop()
	err = s.Serve(ctx, ln)
	if errors.Is(err, context.Canceled) {
		fmt.Println("wise-serve: drained, shutting down")
		return exitInterrupted
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "wise-serve: %v\n", err)
		return exitIO
	}
	return exitOK
}
