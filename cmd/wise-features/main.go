// wise-features prints the WISE feature vector (paper Table 2) of a
// MatrixMarket file, one "name value" pair per line.
//
//	wise-features matrix.mtx
//	wise-features -k 2048 matrix.mtx   # paper-scale tiling
package main

import (
	"flag"
	"fmt"
	"log"

	"wise/internal/features"
	"wise/internal/matrix"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wise-features: ")
	k := flag.Int("k", features.DefaultConfig().K, "tiling factor K (paper uses 2048)")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: wise-features [-k K] matrix.mtx")
	}
	m, err := matrix.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	f := features.Extract(m, features.Config{K: *k})
	for i, name := range f.Names {
		fmt.Printf("%-18s %g\n", name, f.Values[i])
	}
}
