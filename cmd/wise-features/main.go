// wise-features prints the WISE feature vector (paper Table 2) of a
// MatrixMarket file, one "name value" pair per line.
//
//	wise-features matrix.mtx
//	wise-features -k 2048 matrix.mtx   # paper-scale tiling
//
// The shared observability flags (-v, -metrics, -cpuprofile, -memprofile)
// are documented in OBSERVABILITY.md; -cpuprofile is the easy way to
// profile the feature-extraction pass on a big matrix.
//
// Exit codes (RESILIENCE.md): 0 success, 1 I/O failure (unreadable
// matrix, named in the error), 2 usage error.
package main

import (
	"flag"
	"fmt"
	"os"

	"wise/internal/features"
	"wise/internal/matrix"
	"wise/internal/obs"
	"wise/internal/resilience/faultinject"
)

// Exit codes, shared by the wise CLIs and documented in RESILIENCE.md.
const (
	exitOK    = 0
	exitIO    = 1
	exitUsage = 2
)

func main() {
	os.Exit(run())
}

func run() int {
	k := flag.Int("k", features.DefaultConfig().K, "tiling factor K (paper uses 2048)")
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "wise-features: usage: wise-features [-k K] matrix.mtx")
		return exitUsage
	}
	if err := faultinject.ConfigureFromEnv(os.Getenv); err != nil {
		fmt.Fprintf(os.Stderr, "wise-features: %v\n", err)
		return exitUsage
	}
	finishObs := obsFlags.MustStart()
	defer func() {
		if err := finishObs(); err != nil {
			fmt.Fprintf(os.Stderr, "wise-features: %v\n", err)
		}
	}()
	m, err := matrix.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "wise-features: reading matrix %s: %v\n", flag.Arg(0), err)
		return exitIO
	}
	f := features.Extract(m, features.Config{K: *k})
	for i, name := range f.Names {
		fmt.Printf("%-18s %g\n", name, f.Values[i])
	}
	return exitOK
}
