// wise-features prints the WISE feature vector (paper Table 2) of a
// MatrixMarket file, one "name value" pair per line.
//
//	wise-features matrix.mtx
//	wise-features -k 2048 matrix.mtx   # paper-scale tiling
//
// The shared observability flags (-v, -metrics, -cpuprofile, -memprofile)
// are documented in OBSERVABILITY.md; -cpuprofile is the easy way to
// profile the feature-extraction pass on a big matrix.
package main

import (
	"flag"
	"fmt"
	"log"

	"wise/internal/features"
	"wise/internal/matrix"
	"wise/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wise-features: ")
	k := flag.Int("k", features.DefaultConfig().K, "tiling factor K (paper uses 2048)")
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	finishObs := obsFlags.MustStart()
	defer func() {
		if err := finishObs(); err != nil {
			log.Print(err)
		}
	}()
	if flag.NArg() != 1 {
		log.Fatal("usage: wise-features [-k K] matrix.mtx")
	}
	m, err := matrix.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	f := features.Extract(m, features.Config{K: *k})
	for i, name := range f.Names {
		fmt.Printf("%-18s %g\n", name, f.Values[i])
	}
}
