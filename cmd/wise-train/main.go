// wise-train generates the training corpus, labels it with the cost model,
// trains the 29 per-{method, parameter} decision trees, evaluates them with
// k-fold cross-validation, and saves the models as JSON.
//
//	wise-train -out models.json
//	wise-train -full -folds 10 -out models.json
//	wise-train -small -v                      # live progress with ETA
//	wise-train -metrics m.json                # per-stage spans + counters
//	wise-train -cpuprofile cpu.pb.gz          # pprof capture
//
// Corpus scale: default is the scaled corpus; -small is a CI-size smoke
// corpus; -full is the paper-shaped corpus (slower). The observability
// flags (-v, -metrics, -cpuprofile, -memprofile) are shared by every wise
// CLI and documented in OBSERVABILITY.md; the metrics snapshot contains the
// stage spans corpus, label, train, cv and save under the wise-train root.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"wise/internal/core"
	"wise/internal/costmodel"
	"wise/internal/features"
	"wise/internal/gen"
	"wise/internal/kernels"
	"wise/internal/machine"
	"wise/internal/ml"
	"wise/internal/obs"
	"wise/internal/perf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wise-train: ")
	var (
		out     = flag.String("out", "models.json", "output model file")
		full    = flag.Bool("full", false, "use the full paper-shaped corpus (slower)")
		small   = flag.Bool("small", false, "use a small smoke corpus (fast, for CI)")
		folds   = flag.Int("folds", 10, "cross-validation folds")
		seed    = flag.Int64("seed", 1, "corpus and fold seed")
		depth   = flag.Int("depth", 15, "decision tree max depth D")
		ccp     = flag.Float64("ccp", 0.005, "minimal cost-complexity pruning alpha")
		workers = flag.Int("workers", 0, "labeling workers (0 = GOMAXPROCS)")
	)
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	finishObs := obsFlags.MustStart()
	defer func() {
		if err := finishObs(); err != nil {
			log.Print(err)
		}
	}()

	corpusCfg := gen.DefaultCorpusConfig()
	if *full {
		corpusCfg = gen.FullCorpusConfig()
	}
	if *small {
		corpusCfg = gen.CorpusConfig{
			RowScales: []float64{9, 11, 13},
			Degrees:   []float64{4, 16},
			MaxNNZ:    1 << 21,
			SciCount:  10,
		}
	}
	corpusCfg.Seed = *seed
	mach := machine.Scaled()
	treeCfg := ml.TreeConfig{MaxDepth: *depth, MinSamplesLeaf: 1, CCPAlpha: *ccp}

	root := obs.Begin("wise-train")
	defer root.End()

	span := root.Child("corpus")
	corpus := gen.Corpus(corpusCfg)
	fmt.Printf("generated %d matrices in %v\n", len(corpus), span.End().Round(time.Millisecond))

	span = root.Child("label")
	labels := perf.LabelCorpus(perf.LabelConfig{
		Estimator: costmodel.New(mach),
		Space:     kernels.ModelSpace(mach),
		Features:  features.DefaultConfig(),
		Workers:   *workers,
	}, corpus)
	fmt.Printf("labeled corpus (29 methods x %d matrices) in %v\n", len(labels), span.End().Round(time.Millisecond))

	span = root.Child("train")
	w, err := core.Train(labels, treeCfg, features.DefaultConfig(), mach)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d models in %v\n", len(w.Models), span.End().Round(time.Millisecond))

	span = root.Child("cv")
	res, err := core.Evaluate(labels, treeCfg, *folds, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evaluated (%d-fold CV) in %v\n", *folds, span.End().Round(time.Millisecond))
	fmt.Printf("  mean speedup over MKL baseline: WISE %.2fx, oracle %.2fx, IE %.2fx\n",
		res.MeanWISESpeedup, res.MeanOracleSpeedup, res.MeanIESpeedup)
	fmt.Printf("  mean preprocessing: WISE %.2f, IE %.2f baseline iterations\n",
		res.MeanWISEPrepIters, res.MeanIEPrepIters)

	span = root.Child("save")
	if err := w.Save(*out); err != nil {
		log.Fatal(err)
	}
	span.End()
	fmt.Printf("saved models to %s\n", *out)

	// Feature introspection: which Table 2 features carry the signal.
	names := labels[0].Features.Names
	mean := make([]float64, len(names))
	for _, model := range w.Models {
		for i, v := range model.Tree.FeatureImportance(len(names)) {
			mean[i] += v / float64(len(w.Models))
		}
	}
	order := make([]int, len(names))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return mean[order[a]] > mean[order[b]] })
	fmt.Println("top features by mean Gini importance:")
	for _, i := range order[:5] {
		fmt.Printf("  %-18s %.4f\n", names[i], mean[i])
	}
}
