// wise-train generates the training corpus, labels it with the cost model,
// trains the 29 per-{method, parameter} decision trees, evaluates them with
// k-fold cross-validation, and saves the models as JSON.
//
//	wise-train -out models.json
//	wise-train -full -folds 10 -out models.json
//	wise-train -small -v                      # live progress with ETA
//	wise-train -checkpoint run.ckpt           # resumable labeling
//	wise-train -metrics m.json                # per-stage spans + counters
//	wise-train -cpuprofile cpu.pb.gz          # pprof capture
//
// Corpus scale: default is the scaled corpus; -small is a CI-size smoke
// corpus; -full is the paper-shaped corpus (slower). The observability
// flags (-v, -metrics, -cpuprofile, -memprofile) are shared by every wise
// CLI and documented in OBSERVABILITY.md; the metrics snapshot contains the
// stage spans corpus, label, train, cv and save under the wise-train root.
//
// Fault tolerance (RESILIENCE.md): -checkpoint makes labeling resumable —
// SIGINT/SIGTERM flushes completed labels and exits with status 130, and a
// rerun with the same flags resumes from the checkpoint, producing
// byte-identical models to an uninterrupted run. Exit codes: 0 success,
// 1 I/O or pipeline failure, 2 usage error, 130 interrupted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"wise/internal/core"
	"wise/internal/costmodel"
	"wise/internal/features"
	"wise/internal/gen"
	"wise/internal/kernels"
	"wise/internal/machine"
	"wise/internal/ml"
	"wise/internal/obs"
	"wise/internal/perf"
	"wise/internal/resilience"
	"wise/internal/resilience/faultinject"
)

// Exit codes, shared by the wise CLIs and documented in RESILIENCE.md.
const (
	exitOK          = 0
	exitIO          = 1   // I/O or pipeline failure
	exitUsage       = 2   // bad flags or arguments (flag package also uses 2)
	exitInterrupted = 130 // SIGINT/SIGTERM after checkpoint flush (128+SIGINT)
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		out        = flag.String("out", "models.json", "output model file")
		full       = flag.Bool("full", false, "use the full paper-shaped corpus (slower)")
		small      = flag.Bool("small", false, "use a small smoke corpus (fast, for CI)")
		folds      = flag.Int("folds", 10, "cross-validation folds")
		seed       = flag.Int64("seed", 1, "corpus and fold seed")
		depth      = flag.Int("depth", 15, "decision tree max depth D")
		ccp        = flag.Float64("ccp", 0.005, "minimal cost-complexity pruning alpha")
		workers    = flag.Int("workers", 0, "labeling workers (0 = GOMAXPROCS)")
		checkpoint = flag.String("checkpoint", "", "labeling checkpoint file for resumable runs (see RESILIENCE.md)")
	)
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "wise-train: unexpected argument %q (wise-train takes only flags)\n", flag.Arg(0))
		return exitUsage
	}
	if err := faultinject.ConfigureFromEnv(os.Getenv); err != nil {
		fmt.Fprintf(os.Stderr, "wise-train: %v\n", err)
		return exitUsage
	}
	finishObs := obsFlags.MustStart()
	defer func() {
		if err := finishObs(); err != nil {
			fmt.Fprintf(os.Stderr, "wise-train: %v\n", err)
		}
	}()

	ctx, stop := resilience.SignalContext(context.Background())
	defer stop()

	corpusCfg := gen.DefaultCorpusConfig()
	if *full {
		corpusCfg = gen.FullCorpusConfig()
	}
	if *small {
		corpusCfg = gen.CorpusConfig{
			RowScales: []float64{9, 11, 13},
			Degrees:   []float64{4, 16},
			MaxNNZ:    1 << 21,
			SciCount:  10,
		}
	}
	corpusCfg.Seed = *seed
	mach := machine.Scaled()
	treeCfg := ml.TreeConfig{MaxDepth: *depth, MinSamplesLeaf: 1, CCPAlpha: *ccp}

	root := obs.Begin("wise-train")
	defer root.End()

	span := root.Child("corpus")
	corpus := gen.Corpus(corpusCfg)
	fmt.Printf("generated %d matrices in %v\n", len(corpus), span.End().Round(time.Millisecond))

	span = root.Child("label")
	labelRun, err := perf.LabelCorpusRun(ctx, perf.LabelConfig{
		Estimator:  costmodel.New(mach),
		Space:      kernels.ModelSpace(mach),
		Features:   features.DefaultConfig(),
		Workers:    *workers,
		Checkpoint: *checkpoint,
	}, corpus)
	span.End()
	if labelRun.Resumed > 0 {
		fmt.Printf("resumed %d already-labeled matrices from %s\n", labelRun.Resumed, *checkpoint)
	}
	reportQuarantine(labelRun.Quarantined)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wise-train: %v\n", err)
		if errors.Is(err, perf.ErrInterrupted) {
			return exitInterrupted
		}
		return exitIO
	}
	labels := labelRun.Labels
	fmt.Printf("labeled corpus (29 methods x %d matrices)\n", len(labels))

	span = root.Child("train")
	w, err := core.Train(labels, treeCfg, features.DefaultConfig(), mach)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wise-train: %v\n", err)
		return exitIO
	}
	fmt.Printf("trained %d models in %v\n", len(w.Models), span.End().Round(time.Millisecond))

	span = root.Child("cv")
	res, err := core.EvaluateCtx(ctx, labels, treeCfg, *folds, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wise-train: %v\n", err)
		if errors.Is(err, context.Canceled) {
			return exitInterrupted
		}
		return exitIO
	}
	fmt.Printf("evaluated (%d-fold CV) in %v\n", *folds, span.End().Round(time.Millisecond))
	fmt.Printf("  mean speedup over MKL baseline: WISE %.2fx, oracle %.2fx, IE %.2fx\n",
		res.MeanWISESpeedup, res.MeanOracleSpeedup, res.MeanIESpeedup)
	fmt.Printf("  mean preprocessing: WISE %.2f, IE %.2f baseline iterations\n",
		res.MeanWISEPrepIters, res.MeanIEPrepIters)

	span = root.Child("save")
	if err := w.Save(*out); err != nil {
		fmt.Fprintf(os.Stderr, "wise-train: saving models to %s: %v\n", *out, err)
		return exitIO
	}
	span.End()
	fmt.Printf("saved models to %s\n", *out)

	// Feature introspection: which Table 2 features carry the signal.
	names := labels[0].Features.Names
	mean := make([]float64, len(names))
	for _, model := range w.Models {
		for i, v := range model.Tree.FeatureImportance(len(names)) {
			mean[i] += v / float64(len(w.Models))
		}
	}
	order := make([]int, len(names))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return mean[order[a]] > mean[order[b]] })
	fmt.Println("top features by mean Gini importance:")
	for _, i := range order[:5] {
		fmt.Printf("  %-18s %.4f\n", names[i], mean[i])
	}
	return exitOK
}

// reportQuarantine prints the matrices withheld from the run (panic or
// deadline during labeling); counts also land in the metrics snapshot as
// perf.matrices_quarantined.
func reportQuarantine(qs []perf.QuarantinedMatrix) {
	if len(qs) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "wise-train: %d matrices quarantined during labeling:\n", len(qs))
	for _, q := range qs {
		fmt.Fprintf(os.Stderr, "  %-24s class=%-3s %s\n", q.Name, q.Class, q.Err)
	}
}
