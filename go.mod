module wise

go 1.22
