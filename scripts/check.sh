#!/bin/sh
# Pre-PR gate: vet, lint, build, race-test the whole module, and smoke-run
# the S benchmark preset. Run from the repo root: ./scripts/check.sh
#
# With -bench-gate, the smoke run is additionally compared against the
# newest committed results/BENCH_*.json and the script fails on any
# regression beyond the comparator's noise threshold (BENCHMARKS.md).
set -eux

bench_gate=0
if [ "${1:-}" = "-bench-gate" ]; then
    bench_gate=1
fi

go vet ./...
mkdir -p results
# The 120s budget keeps the interprocedural pass (call graph + lock
# dataflow, LINTING.md) from quietly making the pre-PR gate unusable; the
# measured wall-clock lands in the SARIF run properties for CI to audit.
# -cache .lintcache makes repeat local runs incremental (v4 engine): only
# packages whose import cone changed since the last run are re-analyzed.
go run ./cmd/wise-lint -budget 120s -cache .lintcache -jobs "$(nproc 2>/dev/null || echo 4)" -sarif results/lint.sarif ./...
go build ./...
# Focused race gate over the concurrency-heavy packages (worker pools,
# checkpoint collector, fault injection, model registry, session store)
# before the full module run.
go test -race ./internal/perf ./internal/ml ./internal/resilience/... ./internal/serve ./internal/registry ./internal/session
go test -race ./...

# Benchmark smoke: the S preset must run to completion and produce a valid
# BENCH file. The result is discarded unless -bench-gate asked for the
# regression comparison — wall-clock on a loaded dev machine is not a gate
# by default.
bench_out=$(mktemp /tmp/BENCH_check.XXXXXX.json)
go run ./cmd/wise-bench -suite S -o "$bench_out"
if [ "$bench_gate" = 1 ]; then
    baseline=$(ls results/BENCH_*.json 2>/dev/null | sort -V | tail -1)
    if [ -z "$baseline" ]; then
        echo "check.sh: -bench-gate set but no results/BENCH_*.json baseline exists" >&2
        exit 2
    fi
    go run ./cmd/wise-bench -compare "$baseline" "$bench_out"
fi
rm -f "$bench_out"
