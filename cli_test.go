package wise

// End-to-end integration tests of the six CLI tools: each binary is built
// once into a shared temp dir and exercised the way a user would chain them
// (generate -> features -> train -> predict -> bench -> serve).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

var (
	cliOnce sync.Once
	cliDir  string
	cliErr  error
)

// buildCLIs compiles every cmd/ binary once per test run.
func buildCLIs(t *testing.T) string {
	t.Helper()
	cliOnce.Do(func() {
		dir, err := os.MkdirTemp("", "wise-cli")
		if err != nil {
			cliErr = err
			return
		}
		cliDir = dir
		for _, tool := range []string{"wise-gen", "wise-features", "wise-train", "wise-predict", "wise-bench", "wise-serve", "wise-lint"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
			cmd.Dir = "."
			if out, err := cmd.CombinedOutput(); err != nil {
				cliErr = err
				t.Logf("building %s: %s", tool, out)
				return
			}
		}
	})
	if cliErr != nil {
		t.Fatalf("building CLIs: %v", cliErr)
	}
	return cliDir
}

func runCLI(t *testing.T, name string, args ...string) string {
	t.Helper()
	dir := buildCLIs(t)
	cmd := exec.Command(filepath.Join(dir, name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

// runCLIExit runs a CLI expecting a specific exit code (possibly nonzero),
// with extra environment variables (e.g. WISE_FAULTS, see RESILIENCE.md).
func runCLIExit(t *testing.T, env []string, name string, args ...string) (string, int) {
	t.Helper()
	dir := buildCLIs(t)
	cmd := exec.Command(filepath.Join(dir, name), args...)
	cmd.Env = append(os.Environ(), env...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out), exitErr.ExitCode()
}

func TestCLIGenSingleMatrix(t *testing.T) {
	tmp := t.TempDir()
	mtx := filepath.Join(tmp, "m.mtx")
	out := runCLI(t, "wise-gen", "-kind", "rmat", "-class", "MS", "-rows", "512", "-degree", "8", "-out", mtx)
	if !strings.Contains(out, "512 x 512") {
		t.Errorf("unexpected output: %s", out)
	}
	m, err := ReadMatrixMarket(mtx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 512 {
		t.Errorf("rows = %d", m.Rows)
	}
}

func TestCLIGenKinds(t *testing.T) {
	tmp := t.TempDir()
	for _, kind := range []string{"rgg", "banded", "stencil2d", "stencil3d", "fem", "powerlaw", "uniform"} {
		mtx := filepath.Join(tmp, kind+".mtx")
		runCLI(t, "wise-gen", "-kind", kind, "-rows", "400", "-degree", "6", "-out", mtx)
		m, err := ReadMatrixMarket(mtx)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if m.NNZ() == 0 {
			t.Errorf("%s: empty matrix", kind)
		}
	}
}

func TestCLIGenCorpus(t *testing.T) {
	tmp := t.TempDir()
	dir := filepath.Join(tmp, "corpus")
	out := runCLI(t, "wise-gen", "-kind", "corpus", "-small", "-outdir", dir)
	if !strings.Contains(out, "wrote") {
		t.Errorf("corpus output: %s", out)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 10 { // 4 sci + 7 classes * 2 scales
		t.Errorf("corpus dir has %d files", len(files))
	}
	// Every file must parse back.
	m, err := ReadMatrixMarket(filepath.Join(dir, files[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() == 0 {
		t.Error("empty corpus matrix")
	}
	// Unknown kinds fail.
	cmd := exec.Command(filepath.Join(buildCLIs(t), "wise-gen"), "-kind", "nonsense", "-out", filepath.Join(tmp, "x.mtx"))
	if badOut, err := cmd.CombinedOutput(); err == nil {
		t.Errorf("unknown kind accepted: %s", badOut)
	}
}

func TestCLIFeatures(t *testing.T) {
	tmp := t.TempDir()
	mtx := filepath.Join(tmp, "m.mtx")
	runCLI(t, "wise-gen", "-kind", "banded", "-rows", "300", "-degree", "3", "-out", mtx)
	out := runCLI(t, "wise-features", mtx)
	for _, want := range []string{"n_rows", "gini_R", "p_T", "potReuseC"} {
		if !strings.Contains(out, want) {
			t.Errorf("features output missing %s", want)
		}
	}
	if !strings.Contains(out, "n_rows             300") {
		t.Errorf("n_rows value wrong:\n%s", out)
	}
}

func TestCLITrainPredictRoundTrip(t *testing.T) {
	tmp := t.TempDir()
	models := filepath.Join(tmp, "models.json")

	// Train on a small corpus: override via seed only; the default corpus is
	// moderate but acceptable for one integration test. Use fewer folds.
	out := runCLI(t, "wise-train", "-small", "-out", models, "-folds", "5")
	if !strings.Contains(out, "mean speedup over MKL baseline") {
		t.Errorf("train output missing summary:\n%s", out)
	}
	if _, err := os.Stat(models); err != nil {
		t.Fatal(err)
	}

	mtx := filepath.Join(tmp, "m.mtx")
	runCLI(t, "wise-gen", "-kind", "rmat", "-class", "HS", "-rows", "2048", "-degree", "16", "-out", mtx)
	pout := runCLI(t, "wise-predict", "-models", models, "-run", mtx)
	if !strings.Contains(pout, "selected:") {
		t.Errorf("predict output missing selection:\n%s", pout)
	}
	if !strings.Contains(pout, "max |y - y_ref| = 0") {
		t.Errorf("predicted method did not verify:\n%s", pout)
	}
}

func TestCLIBenchSingleExperiment(t *testing.T) {
	out := runCLI(t, "wise-bench", "-small", "-exp", "fig4")
	if !strings.Contains(out, "fig4") || !strings.Contains(out, "Sell-c-sigma") {
		t.Errorf("bench fig4 output unexpected:\n%s", out)
	}
}

func TestCLIBenchLabelCache(t *testing.T) {
	tmp := t.TempDir()
	cache := filepath.Join(tmp, "labels.json.gz")
	out1 := runCLI(t, "wise-bench", "-small", "-exp", "fig4", "-save-labels", cache)
	if _, err := os.Stat(cache); err != nil {
		t.Fatal(err)
	}
	out2 := runCLI(t, "wise-bench", "-exp", "fig4", "-load-labels", cache)
	// The fig4 table must be identical from fresh labels and from the cache.
	extract := func(s string) string {
		i := strings.Index(s, "== fig4")
		if i < 0 {
			t.Fatalf("no fig4 table in output:\n%s", s)
		}
		s = s[i:]
		// Drop the timing footer (stderr), which legitimately differs.
		if j := strings.Index(s, "total:"); j >= 0 {
			s = s[:j]
		}
		return s
	}
	if extract(out1) != extract(out2) {
		t.Errorf("cached labels changed the result:\n%s\nvs\n%s", extract(out1), extract(out2))
	}
}

func TestCLIPredictExplain(t *testing.T) {
	tmp := t.TempDir()
	models := filepath.Join(tmp, "models.json")
	runCLI(t, "wise-train", "-small", "-out", models, "-folds", "5")
	mtx := filepath.Join(tmp, "m.mtx")
	runCLI(t, "wise-gen", "-kind", "banded", "-rows", "1024", "-degree", "5", "-out", mtx)
	out := runCLI(t, "wise-predict", "-models", models, "-explain", mtx)
	if !strings.Contains(out, "decision path") {
		t.Errorf("explain output missing path:\n%s", out)
	}
}

// Exit codes are part of the CLI contract (RESILIENCE.md): 2 for usage
// errors, 1 for I/O failures, and the error must name the offending
// flag or file.
func TestCLIExitCodes(t *testing.T) {
	tmp := t.TempDir()
	cases := []struct {
		name     string
		tool     string
		args     []string
		env      []string
		wantCode int
		wantMsg  string
	}{
		{"predict no matrix", "wise-predict", nil, nil, 2, "usage"},
		{"predict missing models", "wise-predict", []string{"-models", filepath.Join(tmp, "nope.json"), filepath.Join(tmp, "nope.mtx")}, nil, 1, "-models"},
		{"features missing matrix", "wise-features", []string{filepath.Join(tmp, "nope.mtx")}, nil, 1, "nope.mtx"},
		{"train stray arg", "wise-train", []string{"stray"}, nil, 2, "unexpected argument"},
		{"bench unknown experiment", "wise-bench", []string{"-small", "-exp", "nonsense"}, nil, 2, "unknown experiment"},
		{"gen unknown kind", "wise-gen", []string{"-kind", "nonsense"}, nil, 2, "unknown generator"},
		{"bad fault spec", "wise-train", []string{"-small"}, []string{"WISE_FAULTS=not-a-spec"}, 2, "WISE_FAULTS"},
		{"serve stray arg", "wise-serve", []string{"stray"}, nil, 2, "usage"},
		{"serve missing models", "wise-serve", []string{"-models", filepath.Join(tmp, "nope.json")}, nil, 1, "-models"},
		{"serve session bytes", "wise-serve", []string{"-session-bytes", "-1"}, nil, 2, "-session-bytes"},
		{"serve shadow rate range", "wise-serve", []string{"-shadow-rate", "1.5"}, nil, 2, "-shadow-rate"},
		{"serve shadow workers", "wise-serve", []string{"-shadow-workers", "0"}, nil, 2, "-shadow-workers"},
		{"serve drift window", "wise-serve", []string{"-drift-window", "-1"}, nil, 2, "-drift-window"},
		{"serve drift min over window", "wise-serve", []string{"-drift-window", "8", "-drift-min", "9"}, nil, 2, "-drift-min"},
		{"serve drift trip range", "wise-serve", []string{"-drift-trip", "0"}, nil, 2, "-drift-trip"},
		{"serve registry missing models", "wise-serve", []string{"-registry", filepath.Join(tmp, "reg"), "-models", filepath.Join(tmp, "nope.json")}, nil, 1, "-registry"},
		{"suite unknown preset", "wise-bench", []string{"-suite", "XL"}, nil, 2, "-suite"},
		{"compare one file", "wise-bench", []string{"-compare", filepath.Join(tmp, "only.json")}, nil, 2, "-compare"},
		{"compare missing file", "wise-bench", []string{"-compare", filepath.Join(tmp, "nope1.json"), filepath.Join(tmp, "nope2.json")}, nil, 1, "nope1.json"},
		{"lint unknown analyzer", "wise-lint", []string{"-analyzers", "foo,determinism"}, nil, 2, `unknown analyzer "foo"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, code := runCLIExit(t, tc.env, tc.tool, tc.args...)
			if code != tc.wantCode {
				t.Errorf("exit code = %d, want %d\n%s", code, tc.wantCode, out)
			}
			if !strings.Contains(out, tc.wantMsg) {
				t.Errorf("output missing %q:\n%s", tc.wantMsg, out)
			}
		})
	}
}

// TestCLITrainInterruptResume is the end-to-end kill-and-resume guarantee:
// a wise-train run interrupted mid-labeling (via deterministic fault
// injection, the same code path as SIGINT) exits 130 with a checkpoint,
// and rerunning the same command resumes and produces models byte-identical
// to a never-interrupted run.
func TestCLITrainInterruptResume(t *testing.T) {
	tmp := t.TempDir()
	reference := filepath.Join(tmp, "reference.json")
	resumed := filepath.Join(tmp, "resumed.json")
	ckpt := filepath.Join(tmp, "labels.ckpt")

	runCLI(t, "wise-train", "-small", "-folds", "2", "-out", reference)

	out, code := runCLIExit(t,
		[]string{"WISE_FAULTS=perf.label.interrupt:error:after=3"},
		"wise-train", "-small", "-folds", "2", "-out", resumed, "-checkpoint", ckpt)
	if code != 130 {
		t.Fatalf("interrupted run exit code = %d, want 130\n%s", code, out)
	}
	if !strings.Contains(out, "checkpoint saved") {
		t.Errorf("interrupted run did not report the checkpoint:\n%s", out)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint after interrupt: %v", err)
	}
	if _, err := os.Stat(resumed); err == nil {
		t.Fatal("interrupted run still wrote models")
	}

	out2 := runCLI(t, "wise-train", "-small", "-folds", "2", "-out", resumed, "-checkpoint", ckpt)
	if !strings.Contains(out2, "resumed") {
		t.Errorf("resume run did not report resumed matrices:\n%s", out2)
	}

	ref, err := os.ReadFile(reference)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, got) {
		t.Errorf("resumed models differ from uninterrupted run (%d vs %d bytes)", len(got), len(ref))
	}
}

// TestCLIServeLifecycle boots wise-serve on an ephemeral port, answers a
// real prediction over HTTP, then sends SIGTERM: the server must drain and
// exit 130 (the interrupted-after-cleanup contract shared by all wise
// CLIs). A bad -addr must fail startup with exit 1 naming the flag.
func TestCLIServeLifecycle(t *testing.T) {
	tmp := t.TempDir()
	models := filepath.Join(tmp, "models.json")
	runCLI(t, "wise-train", "-small", "-folds", "2", "-out", models)
	mtx := filepath.Join(tmp, "m.mtx")
	runCLI(t, "wise-gen", "-kind", "banded", "-rows", "512", "-degree", "4", "-out", mtx)

	out, code := runCLIExit(t, nil, "wise-serve", "-models", models, "-addr", "not-an-addr")
	if code != 1 || !strings.Contains(out, "-addr") {
		t.Fatalf("bad -addr: exit %d, want 1 naming the flag\n%s", code, out)
	}

	dir := buildCLIs(t)
	cmd := exec.Command(filepath.Join(dir, "wise-serve"), "-models", models, "-addr", "127.0.0.1:0",
		"-session-spill", filepath.Join(tmp, "spill"))
	var errBuf bytes.Buffer
	cmd.Stderr = &errBuf
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() // no-op once Wait has reaped a clean exit

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line from wise-serve; stderr:\n%s", errBuf.String())
	}
	line := sc.Text()
	var url string
	for _, f := range strings.Fields(line) {
		if strings.HasPrefix(f, "http://") {
			url = f
		}
	}
	if url == "" {
		t.Fatalf("startup line has no listen URL: %q", line)
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained after the banner

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status = %d", resp.StatusCode)
	}
	body, err := os.ReadFile(mtx)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(url+"/predict", "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /predict: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"method"`) {
		t.Fatalf("/predict: status %d body %s", resp.StatusCode, data)
	}

	// Stateful round-trip: upload once, execute warm by fingerprint.
	resp, err = http.Post(url+"/matrix", "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /matrix: %v", err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var stored struct {
		Fingerprint string `json:"fingerprint"`
		Stored      bool   `json:"stored"`
	}
	if err := json.Unmarshal(data, &stored); err != nil || resp.StatusCode != http.StatusOK || !stored.Stored {
		t.Fatalf("/matrix: status %d body %s err %v", resp.StatusCode, data, err)
	}
	resp, err = http.Post(url+"/spmv", "application/json",
		strings.NewReader(fmt.Sprintf(`{"fingerprint":%q,"iterations":2}`, stored.Fingerprint)))
	if err != nil {
		t.Fatalf("POST /spmv: %v", err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"warm":true`) {
		t.Fatalf("/spmv by fingerprint: status %d body %s, want warm execution", resp.StatusCode, data)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) || exitErr.ExitCode() != 130 {
			t.Fatalf("after SIGTERM: %v (stderr: %s), want exit 130", err, errBuf.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("wise-serve did not exit after SIGTERM")
	}
}

// A panic while labeling one matrix must quarantine that matrix, not
// abort the run.
func TestCLITrainQuarantine(t *testing.T) {
	tmp := t.TempDir()
	models := filepath.Join(tmp, "models.json")
	out, code := runCLIExit(t,
		[]string{"WISE_FAULTS=perf.label.matrix:panic:after=2"},
		"wise-train", "-small", "-folds", "2", "-out", models)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "quarantined during labeling") {
		t.Errorf("quarantine not reported:\n%s", out)
	}
	if _, err := os.Stat(models); err != nil {
		t.Errorf("quarantine aborted the run: %v", err)
	}
}

// TestCLIBenchSuiteTrajectory is the BENCHMARKS.md workflow end to end:
// list presets, run the S suite into a BENCH file, self-compare (exit 0),
// compare against an injected regression (exit 1), and against a future
// schema version (exit 2, naming the file).
func TestCLIBenchSuiteTrajectory(t *testing.T) {
	tmp := t.TempDir()

	out := runCLI(t, "wise-bench", "-suite", "-list")
	for _, want := range []string{"preset", "S", "M", "L", "paper", "benchmarks"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list missing %q:\n%s", want, out)
		}
	}

	bench1 := filepath.Join(tmp, "BENCH_1.json")
	out = runCLI(t, "wise-bench", "-suite", "S", "-time-scale", "0.02", "-o", bench1)
	if !strings.Contains(out, "bench suite S") {
		t.Errorf("suite run missing report header:\n%s", out)
	}
	raw, err := os.ReadFile(bench1)
	if err != nil {
		t.Fatalf("suite did not write %s: %v", bench1, err)
	}
	var rep map[string]any
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("BENCH file is not JSON: %v", err)
	}
	if rep["schema"] != float64(1) || rep["preset"] != "S" {
		t.Errorf("BENCH header wrong: schema=%v preset=%v", rep["schema"], rep["preset"])
	}
	env, ok := rep["env"].(map[string]any)
	if !ok || env["go_version"] == "" || env["gomaxprocs"] == nil {
		t.Errorf("BENCH env block missing: %v", rep["env"])
	}

	out, code := runCLIExit(t, nil, "wise-bench", "-compare", bench1, bench1)
	if code != 0 {
		t.Fatalf("self-compare exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "0 regressed") {
		t.Errorf("self-compare not clean:\n%s", out)
	}

	// Inject a 10x regression into the first result and expect the gate to trip.
	results := rep["results"].([]any)
	first := results[0].(map[string]any)
	first["ns_median"] = first["ns_median"].(float64) * 10
	tampered, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	bench2 := filepath.Join(tmp, "BENCH_2.json")
	if err := os.WriteFile(bench2, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	out, code = runCLIExit(t, nil, "wise-bench", "-compare", bench1, bench2)
	if code != 1 {
		t.Fatalf("regression compare exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "regressed") || !strings.Contains(out, first["name"].(string)) {
		t.Errorf("regression not named:\n%s", out)
	}

	// A future schema version is a usage error that names the file.
	rep["schema"] = float64(99)
	future, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	bench99 := filepath.Join(tmp, "BENCH_99.json")
	if err := os.WriteFile(bench99, future, 0o644); err != nil {
		t.Fatal(err)
	}
	out, code = runCLIExit(t, nil, "wise-bench", "-compare", bench1, bench99)
	if code != 2 {
		t.Fatalf("schema-mismatch compare exit = %d, want 2\n%s", code, out)
	}
	if !strings.Contains(out, "BENCH_99.json") || !strings.Contains(out, "schema") {
		t.Errorf("schema error does not name the file:\n%s", out)
	}
}
