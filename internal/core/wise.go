// Package core implements the WISE framework itself (paper Section 4): a
// per-{method, parameter} set of decision-tree performance models over the
// Table 2 feature set, the method-selection heuristic with
// preprocessing-cost tie-breaking, and the end-to-end pipeline
// (extract features -> predict speedup classes -> select -> transform ->
// run SpMV).
package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"wise/internal/features"
	"wise/internal/kernels"
	"wise/internal/machine"
	"wise/internal/matrix"
	"wise/internal/ml"
	"wise/internal/obs"
	"wise/internal/perf"
	"wise/internal/resilience"
)

// Observability instruments (documented in OBSERVABILITY.md).
var (
	selections    = obs.NewCounter("core.selections")
	modelsTrained = obs.NewCounter("core.models_trained")
)

// Model pairs one {method, parameter} combination with its trained
// performance predictor.
type Model struct {
	Method kernels.Method
	Tree   *ml.Tree
}

// WISE is a trained framework instance.
type WISE struct {
	Mach       machine.Machine
	FeatureCfg features.Config
	Models     []Model
}

// Space returns the methods covered by the models, in model order.
func (w *WISE) Space() []kernels.Method {
	out := make([]kernels.Method, len(w.Models))
	for i, m := range w.Models {
		out[i] = m.Method
	}
	return out
}

// Train fits one decision tree per method on a labeled corpus. The i-th
// model predicts the speedup class of space method i from the matrix
// features.
func Train(labels []perf.MatrixLabels, treeCfg ml.TreeConfig, featCfg features.Config, mach machine.Machine) (*WISE, error) {
	if len(labels) == 0 {
		return nil, fmt.Errorf("core: empty training corpus")
	}
	space := labels[0].Methods
	w := &WISE{Mach: mach, FeatureCfg: featCfg}
	X := make([][]float64, len(labels))
	names := labels[0].Features.Names
	for i, l := range labels {
		X[i] = l.Features.Values
	}
	for mi, method := range space {
		y := make([]int, len(labels))
		for i, l := range labels {
			y[i] = l.Classes[mi]
		}
		tree, err := ml.Fit(ml.Dataset{
			X: X, Y: y,
			NumClasses:   perf.NumClasses,
			FeatureNames: names,
		}, treeCfg)
		if err != nil {
			return nil, fmt.Errorf("core: training model for %s: %w", method, err)
		}
		w.Models = append(w.Models, Model{Method: method, Tree: tree})
		modelsTrained.Inc()
	}
	return w, nil
}

// Extend adds a performance model for one new {method, parameter} pair to a
// trained framework — the paper's Section 7 extensibility property: because
// each model predicts its own method's speedup class independently, the
// existing 29 models are untouched. labels must contain classes for the new
// method (see perf.ExtendLabels).
func (w *WISE) Extend(labels []perf.MatrixLabels, method kernels.Method, treeCfg ml.TreeConfig) error {
	if len(labels) == 0 {
		return fmt.Errorf("core: empty corpus for extension")
	}
	for _, existing := range w.Models {
		if existing.Method == method {
			return fmt.Errorf("core: model for %s already exists", method)
		}
	}
	mi := -1
	for i, m := range labels[0].Methods {
		if m == method {
			mi = i
		}
	}
	if mi == -1 {
		return fmt.Errorf("core: labels carry no classes for %s", method)
	}
	X := make([][]float64, len(labels))
	y := make([]int, len(labels))
	for i, l := range labels {
		X[i] = l.Features.Values
		y[i] = l.Classes[mi]
	}
	tree, err := ml.Fit(ml.Dataset{
		X: X, Y: y,
		NumClasses:   perf.NumClasses,
		FeatureNames: labels[0].Features.Names,
	}, treeCfg)
	if err != nil {
		return fmt.Errorf("core: training extension model for %s: %w", method, err)
	}
	w.Models = append(w.Models, Model{Method: method, Tree: tree})
	return nil
}

// PredictClasses runs every performance model on a feature vector, returning
// the predicted speedup class per method (aligned with Space()).
func (w *WISE) PredictClasses(f features.Features) []int {
	out := make([]int, len(w.Models))
	for i, m := range w.Models {
		out[i] = m.Tree.Predict(f.Values)
	}
	return out
}

// SelectFromClasses applies the paper's Section 4.4 heuristic to predicted
// classes: pick the method with the highest predicted speedup class; break
// ties by preprocessing cost (CSR < SELLPACK < Sell-c-sigma < Sell-c-R <
// LAV-1Seg < LAV), then by smaller parameter values. Returns the index into
// space.
func SelectFromClasses(space []kernels.Method, classes []int) int {
	best := 0
	for i := 1; i < len(space); i++ {
		switch {
		case classes[i] > classes[best]:
			best = i
		case classes[i] == classes[best] &&
			space[i].PreprocessRank() < space[best].PreprocessRank():
			best = i
		}
	}
	return best
}

// Selection is the outcome of WISE's method choice for one matrix.
type Selection struct {
	Method         kernels.Method
	Index          int   // index into Space()
	PredictedClass int   // C0-C6
	Classes        []int // all per-method predictions
}

// Select extracts features from the matrix and picks the best method.
func (w *WISE) Select(m *matrix.CSR) Selection {
	f := features.Extract(m, w.FeatureCfg)
	return w.SelectFromFeatures(f)
}

// SelectCtx is Select with cancellation threaded through feature extraction
// — the shared deadline-aware entry point of wise-serve requests and
// wise-predict -timeout. On cancellation or deadline overrun it returns the
// context's error (unwrappable to context.Canceled / DeadlineExceeded) and
// an empty Selection; callers degrade to their CSR fallback.
func (w *WISE) SelectCtx(ctx context.Context, m *matrix.CSR) (Selection, error) {
	f, err := features.ExtractCtx(ctx, m, w.FeatureCfg)
	if err != nil {
		return Selection{}, err
	}
	if err := ctx.Err(); err != nil {
		return Selection{}, fmt.Errorf("core: select: %w", err)
	}
	return w.SelectFromFeatures(f), nil
}

// SelectFromFeatures picks the best method for precomputed features.
func (w *WISE) SelectFromFeatures(f features.Features) Selection {
	selections.Inc()
	classes := w.PredictClasses(f)
	idx := SelectFromClasses(w.Space(), classes)
	return Selection{
		Method:         w.Models[idx].Method,
		Index:          idx,
		PredictedClass: classes[idx],
		Classes:        classes,
	}
}

// Prepare selects a method for the matrix and builds its executable format —
// steps 1-4 of Figure 8. The returned Format runs step 5 (SpMV) any number
// of times.
func (w *WISE) Prepare(m *matrix.CSR) (Selection, kernels.Format) {
	sel := w.Select(m)
	return sel, kernels.Build(m, sel.Method, w.Mach.RowBlock)
}

// Multiply is the one-shot convenience wrapper: select, transform, and run
// y = A*x with the chosen method.
func (w *WISE) Multiply(y, x []float64, m *matrix.CSR) Selection {
	sel, format := w.Prepare(m)
	format.SpMVParallel(y, x, kernels.DefaultWorkers())
	return sel
}

// persisted is the JSON form of a trained WISE instance.
type persisted struct {
	MachineName string            `json:"machine"`
	FeatureK    int               `json:"feature_k"`
	Methods     []persistedMethod `json:"methods"`
	Trees       []json.RawMessage `json:"trees"`
}

type persistedMethod struct {
	Kind  int     `json:"kind"`
	Sched int     `json:"sched"`
	C     int     `json:"c"`
	Sigma int     `json:"sigma"`
	T     float64 `json:"t"`
}

// ModelsArtifactKind tags model files in their resilience envelope. The
// model registry (internal/registry) uses the same kind, so generation files
// and standalone wise-train outputs are interchangeable artifacts.
const ModelsArtifactKind = "wise-models"

// MarshalPayload serializes the trained models to the deterministic JSON
// payload that Save seals inside a resilience envelope. The registry
// content-addresses generations by the sha256 of exactly these bytes.
func (w *WISE) MarshalPayload() ([]byte, error) {
	p := persisted{MachineName: w.Mach.Name, FeatureK: w.FeatureCfg.K}
	for _, m := range w.Models {
		p.Methods = append(p.Methods, persistedMethod{
			Kind: int(m.Method.Kind), Sched: int(m.Method.Sched),
			C: m.Method.C, Sigma: m.Method.Sigma, T: m.Method.T,
		})
		raw, err := m.Tree.Marshal()
		if err != nil {
			return nil, err
		}
		p.Trees = append(p.Trees, raw)
	}
	return json.MarshalIndent(p, "", " ")
}

// Save atomically writes the trained models to path as JSON inside a
// checksummed resilience envelope, so a truncated or corrupted file is
// rejected at load instead of silently mis-parsing. The output is
// deterministic in the models.
func (w *WISE) Save(path string) error {
	data, err := w.MarshalPayload()
	if err != nil {
		return err
	}
	if err := resilience.WriteArtifact(path, ModelsArtifactKind, 1, data); err != nil {
		return fmt.Errorf("core: saving models to %s: %w", path, err)
	}
	return nil
}

// LoadPayload parses and validates a models payload (the JSON inside the
// envelope). Errors do not name the source; file-level loaders (Load, the
// registry) wrap them with the offending path.
func LoadPayload(data []byte, mach machine.Machine) (*WISE, error) {
	var p persisted
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("parsing models: %w", err)
	}
	if len(p.Methods) != len(p.Trees) {
		return nil, fmt.Errorf("%d methods vs %d trees", len(p.Methods), len(p.Trees))
	}
	if len(p.Methods) == 0 {
		return nil, fmt.Errorf("no models in file")
	}
	w := &WISE{Mach: mach, FeatureCfg: features.Config{K: p.FeatureK}}
	for i, pm := range p.Methods {
		tree, err := ml.UnmarshalTree(p.Trees[i])
		if err != nil {
			return nil, fmt.Errorf("tree %d: %w", i, err)
		}
		method := kernels.Method{
			Kind: kernels.Kind(pm.Kind), Sched: kernels.Sched(pm.Sched),
			C: pm.C, Sigma: pm.Sigma, T: pm.T,
		}
		if err := method.Validate(); err != nil {
			return nil, fmt.Errorf("model %d: %w", i, err)
		}
		w.Models = append(w.Models, Model{Method: method, Tree: tree})
	}
	return w, nil
}

// Load reads models saved with Save. The machine must be supplied by the
// caller (only its name is persisted; cache geometry is code, not data).
// Enveloped files are checksum-verified; raw JSON files from before the
// envelope era load through the legacy path.
func Load(path string, mach machine.Machine) (*WISE, error) {
	// Every failure branch names path: Load errors surface verbatim in CLI
	// and server startup messages, and the exit-code contract (RESILIENCE.md)
	// requires the offending file in the error.
	env, raw, err := resilience.ReadArtifact(path, ModelsArtifactKind)
	data := env.Payload
	if err != nil {
		if !errors.Is(err, resilience.ErrNotEnveloped) {
			return nil, fmt.Errorf("core: loading models %s: %w", path, err)
		}
		data = raw // legacy pre-envelope models.json: raw JSON
	}
	w, err := LoadPayload(data, mach)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", path, err)
	}
	return w, nil
}
