package core

import (
	"testing"

	"wise/internal/costmodel"
	"wise/internal/features"
	"wise/internal/gen"
	"wise/internal/kernels"
	"wise/internal/machine"
	"wise/internal/matrix"
	"wise/internal/ml"
	"wise/internal/perf"
)

func TestExtendAddsModelWithoutChangingExisting(t *testing.T) {
	labels := getLabels(t)
	w, err := Train(labels, ml.DefaultTreeConfig(), features.DefaultConfig(), machine.Scaled())
	if err != nil {
		t.Fatal(err)
	}

	// Snapshot existing predictions.
	f := features.Extract(matrix.Fig1Example(), features.DefaultConfig())
	before := w.PredictClasses(f)

	// Extend labels with the SegCSR method and add its model.
	corpus := gen.Corpus(gen.CorpusConfig{
		Seed:      1,
		RowScales: []float64{9, 11, 13},
		Degrees:   []float64{4, 16},
		MaxNNZ:    1 << 21,
		SciCount:  8,
	})
	method := kernels.ExtensionMethods(machine.Scaled().LLCDoubles())[0]
	cfg := perf.LabelConfig{
		Estimator: costmodel.New(machine.Scaled()),
		Space:     kernels.ModelSpace(machine.Scaled()),
		Features:  features.DefaultConfig(),
	}
	extended := perf.ExtendLabels(cfg, corpus, labels, method)
	if len(extended[0].Methods) != 30 {
		t.Fatalf("extended method count = %d, want 30", len(extended[0].Methods))
	}
	// Original labels untouched.
	if len(labels[0].Methods) != 29 {
		t.Fatal("ExtendLabels mutated its input")
	}

	if err := w.Extend(extended, method, ml.DefaultTreeConfig()); err != nil {
		t.Fatal(err)
	}
	if len(w.Models) != 30 {
		t.Fatalf("model count = %d, want 30", len(w.Models))
	}

	// Existing models must predict exactly as before (Section 7 claim).
	after := w.PredictClasses(f)
	for i := range before {
		if after[i] != before[i] {
			t.Fatalf("existing model %d changed prediction after extension", i)
		}
	}
	if len(after) != 30 {
		t.Error("new model not consulted")
	}

	// Selection still works end to end and may now pick the new method.
	sel := w.Select(matrix.Fig1Example())
	if err := sel.Method.Validate(); err != nil {
		t.Fatal(err)
	}

	// Re-extension of the same method is rejected.
	if err := w.Extend(extended, method, ml.DefaultTreeConfig()); err == nil {
		t.Error("duplicate extension accepted")
	}
	// Unknown method rejected.
	if err := w.Extend(labels, kernels.Method{Kind: kernels.SegCSRKind, C: 999, Sched: kernels.Dyn}, ml.DefaultTreeConfig()); err == nil {
		t.Error("extension without labels accepted")
	}
	// Empty corpus rejected.
	if err := w.Extend(nil, method, ml.DefaultTreeConfig()); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestExtendedModelSaveLoad(t *testing.T) {
	labels := getLabels(t)
	w, err := Train(labels, ml.DefaultTreeConfig(), features.DefaultConfig(), machine.Scaled())
	if err != nil {
		t.Fatal(err)
	}
	corpus := gen.Corpus(gen.CorpusConfig{
		Seed:      1,
		RowScales: []float64{9, 11, 13},
		Degrees:   []float64{4, 16},
		MaxNNZ:    1 << 21,
		SciCount:  8,
	})
	method := kernels.ExtensionMethods(machine.Scaled().LLCDoubles())[1]
	cfg := perf.LabelConfig{
		Estimator: costmodel.New(machine.Scaled()),
		Space:     kernels.ModelSpace(machine.Scaled()),
		Features:  features.DefaultConfig(),
	}
	extended := perf.ExtendLabels(cfg, corpus, labels, method)
	if err := w.Extend(extended, method, ml.DefaultTreeConfig()); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ext.json"
	if err := w.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path, machine.Scaled())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Models) != 30 {
		t.Fatalf("loaded %d models", len(back.Models))
	}
	if back.Models[29].Method != method {
		t.Error("extension method lost in round trip")
	}
}
