package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wise/internal/costmodel"
	"wise/internal/features"
	"wise/internal/gen"
	"wise/internal/kernels"
	"wise/internal/machine"
	"wise/internal/matrix"
	"wise/internal/ml"
	"wise/internal/perf"
)

// testLabels builds a small labeled corpus shared across tests.
func testLabels(t testing.TB) []perf.MatrixLabels {
	t.Helper()
	corpus := gen.Corpus(gen.CorpusConfig{
		Seed:      1,
		RowScales: []float64{9, 11, 13},
		Degrees:   []float64{4, 16},
		MaxNNZ:    1 << 21,
		SciCount:  8,
	})
	cfg := perf.LabelConfig{
		Estimator: costmodel.New(machine.Scaled()),
		Space:     kernels.ModelSpace(machine.Scaled()),
		Features:  features.DefaultConfig(),
		Workers:   0,
	}
	return perf.LabelCorpus(cfg, corpus)
}

var labelCache []perf.MatrixLabels

func getLabels(t testing.TB) []perf.MatrixLabels {
	if labelCache == nil {
		labelCache = testLabels(t)
	}
	return labelCache
}

func TestTrainProducesOneModelPerMethod(t *testing.T) {
	labels := getLabels(t)
	w, err := Train(labels, ml.DefaultTreeConfig(), features.DefaultConfig(), machine.Scaled())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Models) != 29 {
		t.Fatalf("%d models, want 29", len(w.Models))
	}
	for _, m := range w.Models {
		if m.Tree == nil {
			t.Fatalf("%s: nil tree", m.Method)
		}
	}
}

func TestTrainEmptyCorpusFails(t *testing.T) {
	if _, err := Train(nil, ml.DefaultTreeConfig(), features.DefaultConfig(), machine.Scaled()); err == nil {
		t.Fatal("expected error")
	}
}

func TestSelectFromClassesHeuristic(t *testing.T) {
	space := []kernels.Method{
		{Kind: kernels.CSR, Sched: kernels.Dyn},
		{Kind: kernels.SELLPACK, C: 8, Sched: kernels.Dyn},
		{Kind: kernels.LAV, C: 8, T: 0.7, Sched: kernels.Dyn},
	}
	// Clear winner.
	if idx := SelectFromClasses(space, []int{1, 4, 2}); idx != 1 {
		t.Errorf("picked %d, want 1", idx)
	}
	// Tie: cheaper preprocessing wins (CSR over LAV).
	if idx := SelectFromClasses(space, []int{3, 1, 3}); idx != 0 {
		t.Errorf("tie picked %d, want 0 (CSR)", idx)
	}
	// Tie between SELLPACK and LAV: SELLPACK cheaper.
	if idx := SelectFromClasses(space, []int{0, 5, 5}); idx != 1 {
		t.Errorf("tie picked %d, want 1 (SELLPACK)", idx)
	}
}

func TestSelectFromClassesParameterTieBreak(t *testing.T) {
	space := []kernels.Method{
		{Kind: kernels.LAV, C: 8, T: 0.9, Sched: kernels.Dyn},
		{Kind: kernels.LAV, C: 8, T: 0.7, Sched: kernels.Dyn},
		{Kind: kernels.LAV, C: 8, T: 0.8, Sched: kernels.Dyn},
	}
	// All tied: smallest T wins (paper: "the order is T = 70%, 80%, 90%").
	if idx := SelectFromClasses(space, []int{4, 4, 4}); idx != 1 {
		t.Errorf("picked %d, want 1 (T=0.7)", idx)
	}
}

func TestPredictAndSelectEndToEnd(t *testing.T) {
	labels := getLabels(t)
	w, err := Train(labels, ml.DefaultTreeConfig(), features.DefaultConfig(), machine.Scaled())
	if err != nil {
		t.Fatal(err)
	}
	m := matrix.Fig1Example()
	sel := w.Select(m)
	if sel.Index < 0 || sel.Index >= len(w.Models) {
		t.Fatalf("bad selection index %d", sel.Index)
	}
	if sel.Method != w.Models[sel.Index].Method {
		t.Error("selection method/index mismatch")
	}
	if len(sel.Classes) != 29 {
		t.Error("per-method classes missing")
	}
	for _, c := range sel.Classes {
		if c < 0 || c >= perf.NumClasses {
			t.Fatalf("class %d out of range", c)
		}
	}
}

// SelectCtx must agree with Select under a live context and surface the
// context error when cancelled — the degradation trigger wise-serve relies
// on.
func TestSelectCtx(t *testing.T) {
	labels := getLabels(t)
	w, err := Train(labels, ml.DefaultTreeConfig(), features.DefaultConfig(), machine.Scaled())
	if err != nil {
		t.Fatal(err)
	}
	m := matrix.Fig1Example()
	sel, err := w.SelectCtx(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if want := w.Select(m); sel.Index != want.Index || sel.Method != want.Method {
		t.Errorf("SelectCtx picked %v, Select picked %v", sel.Method, want.Method)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.SelectCtx(ctx, m); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled SelectCtx err = %v, want context.Canceled", err)
	}
}

// Every Load failure branch must name the offending path (exit-code
// contract, RESILIENCE.md): the CLI and server print these errors verbatim
// and the operator needs to know which file is bad.
func TestLoadErrorsNamePath(t *testing.T) {
	tmp := t.TempDir()
	cases := []struct {
		name string
		data string
	}{
		{"not json", "this is not a model file"},
		{"methods vs trees", `{"machine":"x","feature_k":64,"methods":[{"kind":0}],"trees":[]}`},
		{"no models", `{"machine":"x","feature_k":64,"methods":[],"trees":[]}`},
		{"bad tree", `{"machine":"x","feature_k":64,"methods":[{"kind":0}],"trees":[{"bogus":1}]}`},
		{"bad method", `{"machine":"x","feature_k":64,"methods":[{"kind":99}],"trees":[{"root":{"feature":0,"class":0},"num_classes":7}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(tmp, strings.ReplaceAll(tc.name, " ", "-")+".json")
			if err := os.WriteFile(path, []byte(tc.data), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := Load(path, machine.Scaled())
			if err == nil {
				t.Fatal("corrupt model file accepted")
			}
			if !strings.Contains(err.Error(), path) {
				t.Errorf("error does not name %s: %v", path, err)
			}
		})
	}
	// The enveloped-but-corrupt branch too.
	path := filepath.Join(tmp, "torn.json")
	if err := os.WriteFile(path, []byte("#wise-artifact v1 kind=wise-models payload-version=1 sha256=00 bytes=5\nxxxxx"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, machine.Scaled()); err == nil || !strings.Contains(err.Error(), path) {
		t.Errorf("envelope failure does not name path: %v", err)
	}
}

func TestMultiplyMatchesReference(t *testing.T) {
	labels := getLabels(t)
	w, err := Train(labels, ml.DefaultTreeConfig(), features.DefaultConfig(), machine.Scaled())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*matrix.CSR{
		matrix.Fig1Example(),
		gen.Stencil2D(16, 16, false),
	} {
		x := matrix.Iota(m.Cols)
		want := make([]float64, m.Rows)
		m.SpMV(want, x)
		got := make([]float64, m.Rows)
		w.Multiply(got, x, m)
		if matrix.MaxAbsDiff(want, got) > 1e-9 {
			t.Errorf("WISE Multiply wrong on %v", m)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	labels := getLabels(t)
	w, err := Train(labels, ml.DefaultTreeConfig(), features.DefaultConfig(), machine.Scaled())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "models.json")
	if err := w.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path, machine.Scaled())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Models) != len(w.Models) {
		t.Fatal("model count changed")
	}
	f := features.Extract(matrix.Fig1Example(), features.DefaultConfig())
	a, b := w.PredictClasses(f), back.PredictClasses(f)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("model %d predicts differently after reload", i)
		}
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json"), machine.Scaled()); err == nil {
		t.Error("missing file accepted")
	}
}

func TestEvaluateEndToEnd(t *testing.T) {
	labels := getLabels(t)
	res, err := Evaluate(labels, ml.DefaultTreeConfig(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerMatrix) != len(labels) {
		t.Fatal("per-matrix results missing")
	}
	// Structural relations the paper reports:
	// oracle >= WISE (oracle picks the true best).
	if res.MeanOracleSpeedup < res.MeanWISESpeedup-1e-9 {
		t.Errorf("oracle %v < WISE %v", res.MeanOracleSpeedup, res.MeanWISESpeedup)
	}
	// WISE must recover most of the oracle's speedup (paper: 2.4 vs 2.5).
	if res.MeanWISESpeedup < 0.75*res.MeanOracleSpeedup {
		t.Errorf("WISE %v recovers < 75%% of oracle %v", res.MeanWISESpeedup, res.MeanOracleSpeedup)
	}
	// Speedup over the baseline must exist at all.
	if res.MeanWISESpeedup < 1.05 {
		t.Errorf("mean WISE speedup %v barely above baseline", res.MeanWISESpeedup)
	}
	// WISE preprocessing < IE preprocessing (paper: < 50%).
	if res.MeanWISEPrepIters >= res.MeanIEPrepIters {
		t.Errorf("WISE prep %v >= IE prep %v iterations", res.MeanWISEPrepIters, res.MeanIEPrepIters)
	}
	for _, pm := range res.PerMatrix {
		if pm.OracleSpeedup+1e-9 < pm.WISESpeedup {
			t.Fatalf("%s: WISE %v beat oracle %v", pm.Name, pm.WISESpeedup, pm.OracleSpeedup)
		}
	}
}

func TestEvaluateTooFewMatrices(t *testing.T) {
	if _, err := Evaluate(nil, ml.DefaultTreeConfig(), 5, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestConfusionForMethod(t *testing.T) {
	labels := getLabels(t)
	// Index of SELLPACK c=8 StCont in the model space.
	space := labels[0].Methods
	idx := -1
	for i, m := range space {
		if m.Kind == kernels.SELLPACK && m.C == 8 && m.Sched == kernels.StCont {
			idx = i
		}
	}
	if idx == -1 {
		t.Fatal("method not found")
	}
	cm, err := ConfusionForMethod(labels, idx, ml.DefaultTreeConfig(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Total() != int64(len(labels)) {
		t.Errorf("confusion total %d != corpus size %d", cm.Total(), len(labels))
	}
}
