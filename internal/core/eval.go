package core

import (
	"context"
	"fmt"

	"wise/internal/gen"
	"wise/internal/ml"
	"wise/internal/obs"
	"wise/internal/perf"
	"wise/internal/stats"
)

// Observability instruments (documented in OBSERVABILITY.md).
var evaluations = obs.NewCounter("core.evaluations")

// MatrixEval is the end-to-end outcome of WISE on one matrix, evaluated
// out-of-fold (the matrix's models never saw it during training).
type MatrixEval struct {
	Name  string
	Class gen.Class

	ChosenIdx int // method WISE selected
	OracleIdx int // truly fastest method

	WISESpeedup   float64 // MKL cycles / chosen method cycles
	OracleSpeedup float64 // MKL cycles / oracle method cycles
	IESpeedup     float64 // MKL cycles / inspector-executor choice cycles

	WISEPrepIters float64 // WISE preprocessing in MKL SpMV iterations
	IEPrepIters   float64 // IE preprocessing in MKL SpMV iterations
}

// EvalResult aggregates an end-to-end evaluation over a corpus.
type EvalResult struct {
	PerMatrix []MatrixEval

	MeanWISESpeedup   float64
	MeanOracleSpeedup float64
	MeanIESpeedup     float64
	MeanWISEPrepIters float64
	MeanIEPrepIters   float64
}

// Evaluate reproduces the paper's end-to-end protocol (Sections 6.3-6.4):
// for every method, train and predict speedup classes with k-fold
// cross-validation; per matrix, apply the selection heuristic to the
// out-of-fold predictions; report speedups over the MKL-like baseline for
// WISE, the oracle, and the inspector-executor, plus preprocessing overheads
// in baseline-iteration units.
func Evaluate(labels []perf.MatrixLabels, treeCfg ml.TreeConfig, k int, seed int64) (EvalResult, error) {
	return EvaluateCtx(context.Background(), labels, treeCfg, k, seed)
}

// EvaluateCtx is Evaluate with cancellation threaded into the per-method
// cross-validation, so SIGINT/SIGTERM (resilience.SignalContext) unwinds the
// evaluation between folds instead of abandoning the process mid-write.
func EvaluateCtx(ctx context.Context, labels []perf.MatrixLabels, treeCfg ml.TreeConfig, k int, seed int64) (EvalResult, error) {
	return EvaluateWith(labels, func(d ml.Dataset) ([]int, error) {
		return ml.CrossValPredictCtx(ctx, d, treeCfg, k, seed, 0)
	})
}

// EvaluateForest is Evaluate with a random-forest predictor per method — the
// model-family ablation (the paper uses single trees).
func EvaluateForest(labels []perf.MatrixLabels, cfg ml.ForestConfig, k int, seed int64) (EvalResult, error) {
	return EvaluateWith(labels, func(d ml.Dataset) ([]int, error) {
		return ml.CrossValPredictForest(d, cfg, k, seed)
	})
}

// OutOfFoldPredictor produces out-of-fold class predictions for a dataset.
type OutOfFoldPredictor func(d ml.Dataset) ([]int, error)

// EvaluateWith runs the end-to-end protocol with any out-of-fold predictor.
func EvaluateWith(labels []perf.MatrixLabels, predict OutOfFoldPredictor) (EvalResult, error) {
	var res EvalResult
	if len(labels) < 2 {
		return res, fmt.Errorf("core: need >= 2 labeled matrices, have %d", len(labels))
	}
	space := labels[0].Methods
	X := make([][]float64, len(labels))
	for i, l := range labels {
		X[i] = l.Features.Values
	}

	// Out-of-fold class predictions, per method.
	evaluations.Inc()
	progress := obs.StartProgress("evaluate", len(space))
	predicted := make([][]int, len(space)) // [method][matrix]
	for mi := range space {
		y := make([]int, len(labels))
		for i, l := range labels {
			y[i] = l.Classes[mi]
		}
		preds, err := predict(ml.Dataset{X: X, Y: y, NumClasses: perf.NumClasses})
		if err != nil {
			return res, fmt.Errorf("core: cross-validating %s: %w", space[mi], err)
		}
		predicted[mi] = preds
		progress.Add(1)
	}
	progress.Finish()

	res.PerMatrix = make([]MatrixEval, len(labels))
	var wise, oracle, ie, wisePrep, iePrep []float64
	for i, l := range labels {
		classes := make([]int, len(space))
		for mi := range space {
			classes[mi] = predicted[mi][i]
		}
		chosen := SelectFromClasses(space, classes)
		oracleIdx := l.OracleIndex()
		me := MatrixEval{
			Name:          l.Name,
			Class:         l.Class,
			ChosenIdx:     chosen,
			OracleIdx:     oracleIdx,
			WISESpeedup:   safeDiv(l.MKLCycles, l.Cycles[chosen]),
			OracleSpeedup: safeDiv(l.MKLCycles, l.Cycles[oracleIdx]),
			IESpeedup:     safeDiv(l.MKLCycles, l.IECycles),
			WISEPrepIters: safeDiv(l.FeatureCycles+l.PrepCost[chosen], l.MKLCycles),
			IEPrepIters:   safeDiv(l.IEPrepCycles, l.MKLCycles),
		}
		res.PerMatrix[i] = me
		wise = append(wise, me.WISESpeedup)
		oracle = append(oracle, me.OracleSpeedup)
		ie = append(ie, me.IESpeedup)
		wisePrep = append(wisePrep, me.WISEPrepIters)
		iePrep = append(iePrep, me.IEPrepIters)
	}
	res.MeanWISESpeedup = stats.Mean(wise)
	res.MeanOracleSpeedup = stats.Mean(oracle)
	res.MeanIESpeedup = stats.Mean(ie)
	res.MeanWISEPrepIters = stats.Mean(wisePrep)
	res.MeanIEPrepIters = stats.Mean(iePrep)
	return res, nil
}

// ConfusionForMethod computes the k-fold confusion matrix of one method's
// performance model (the paper's Figure 10 panels).
func ConfusionForMethod(labels []perf.MatrixLabels, methodIdx int, treeCfg ml.TreeConfig, k int, seed int64) (*ml.ConfusionMatrix, error) {
	X := make([][]float64, len(labels))
	y := make([]int, len(labels))
	for i, l := range labels {
		X[i] = l.Features.Values
		y[i] = l.Classes[methodIdx]
	}
	return ml.CrossValidate(ml.Dataset{X: X, Y: y, NumClasses: perf.NumClasses}, treeCfg, k, seed)
}

func safeDiv(a, b float64) float64 {
	if b == 0 { //lint:ignore floateq guards division by exactly zero; any nonzero divisor is valid
		return 0
	}
	return a / b
}
