package matrix

import (
	"fmt"
	"sort"
)

// Permutation maps new positions to old positions: perm[new] = old. Applying
// it to rows produces a matrix whose row new is the original row perm[new].
type Permutation []int32

// Identity returns the identity permutation of length n.
func Identity(n int) Permutation {
	p := make(Permutation, n)
	for i := range p {
		p[i] = int32(i)
	}
	return p
}

// Valid reports whether p is a bijection on [0, len(p)).
func (p Permutation) Valid() bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if int(v) < 0 || int(v) >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Inverse returns the inverse permutation: inv[old] = new.
func (p Permutation) Inverse() Permutation {
	inv := make(Permutation, len(p))
	for newPos, oldPos := range p {
		//lint:ignore numsafety newPos < len(p), and a Permutation longer than MaxInt32 cannot exist: its own int32 elements could not index it
		inv[oldPos] = int32(newPos)
	}
	return inv
}

// SortByCountsDesc returns the permutation that orders buckets by descending
// count, breaking ties by ascending original index so the result is
// deterministic. perm[new] = old. This is the building block of both Row
// Frequency Sorting (RFS) and Column Frequency Sorting (CFS) from LAV.
func SortByCountsDesc(counts []int64) Permutation {
	p := Identity(len(counts))
	sort.SliceStable(p, func(i, j int) bool {
		return counts[p[i]] > counts[p[j]]
	})
	return p
}

// PermuteRows returns a new matrix whose row i is the original row perm[i].
func (m *CSR) PermuteRows(perm Permutation) *CSR {
	if len(perm) != m.Rows {
		panic(fmt.Sprintf("matrix: row permutation len %d for %d rows", len(perm), m.Rows))
	}
	out := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int64, m.Rows+1),
		ColIdx: make([]int32, m.NNZ()),
		Vals:   make([]float64, m.NNZ()),
	}
	pos := int64(0)
	for newRow, oldRow := range perm {
		cols, vals := m.Row(int(oldRow))
		copy(out.ColIdx[pos:], cols)
		copy(out.Vals[pos:], vals)
		pos += int64(len(cols))
		out.RowPtr[newRow+1] = pos
	}
	return out
}

// PermuteCols returns a new matrix whose column inv[j] holds the original
// column j, where inv is the inverse of perm (perm[new] = old). Column
// indices are re-sorted within each row.
func (m *CSR) PermuteCols(perm Permutation) *CSR {
	if len(perm) != m.Cols {
		panic(fmt.Sprintf("matrix: col permutation len %d for %d cols", len(perm), m.Cols))
	}
	inv := perm.Inverse()
	out := m.Clone()
	for i := 0; i < out.Rows; i++ {
		lo, hi := out.RowPtr[i], out.RowPtr[i+1]
		cols := out.ColIdx[lo:hi]
		vals := out.Vals[lo:hi]
		for k := range cols {
			cols[k] = inv[cols[k]]
		}
		sortRow(cols, vals)
	}
	return out
}

// sortRow sorts a row's (col, val) pairs by column ascending.
func sortRow(cols []int32, vals []float64) {
	type pair struct {
		c int32
		v float64
	}
	pairs := make([]pair, len(cols))
	for k := range cols {
		pairs[k] = pair{cols[k], vals[k]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].c < pairs[j].c })
	for k := range pairs {
		cols[k] = pairs[k].c
		vals[k] = pairs[k].v
	}
}

// GatherVec permutes a dense vector: out[i] = x[perm[i]]. out may be
// preallocated with len(perm); if nil a new slice is allocated.
func GatherVec(out []float64, x []float64, perm Permutation) []float64 {
	if out == nil {
		out = make([]float64, len(perm))
	}
	for i, old := range perm {
		out[i] = x[old]
	}
	return out
}

// ScatterVec inverts GatherVec: out[perm[i]] = x[i].
func ScatterVec(out []float64, x []float64, perm Permutation) []float64 {
	if out == nil {
		out = make([]float64, len(perm))
	}
	for i, old := range perm {
		out[old] = x[i]
	}
	return out
}
