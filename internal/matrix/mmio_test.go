package matrix

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := randomCSR(t, rng, 20, 30, 0.1)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back) {
		t.Error("MatrixMarket round trip changed matrix")
	}
}

func TestMatrixMarketFileRoundTrip(t *testing.T) {
	m := Fig1Example()
	path := filepath.Join(t.TempDir(), "fig1.mtx")
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back) {
		t.Error("file round trip changed matrix")
	}
}

func TestReadSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 3
1 1 2.0
2 1 5.0
3 3 1.0
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 4 { // off-diagonal mirrored
		t.Fatalf("nnz = %d, want 4", m.NNZ())
	}
	d := m.ToDense()
	if d[0*3+1] != 5 || d[1*3+0] != 5 {
		t.Error("symmetric entry not mirrored")
	}
}

func TestReadSkewSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3.0
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	d := m.ToDense()
	if d[1*2+0] != 3 || d[0*2+1] != -3 {
		t.Errorf("skew mirror wrong: %v", d)
	}
}

func TestReadPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 1
2 2
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.Vals[0] != 1 || m.Vals[1] != 1 {
		t.Error("pattern values should be 1")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "%%NotMatrixMarket\n1 1 1\n1 1 1\n",
		"array format": "%%MatrixMarket matrix array real general\n1 1\n1.0\n",
		"bad type":     "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"bad symmetry": "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
		"short":        "%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1.0\n",
		"out of range": "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
		"bad value":    "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 xyz\n",
		"bad index":    "%%MatrixMarket matrix coordinate real general\n2 2 1\nx 1 1.0\n",
		"no value":     "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
	}
	for name, src := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real general
% comment 1

% comment 2
2 2 2
% inline comment
1 1 1.0

2 2 2.0
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 2 {
		t.Fatalf("nnz = %d", m.NNZ())
	}
}
