package matrix

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"wise/internal/resilience"
)

// MatrixMarket I/O. The coordinate real/integer/pattern general/symmetric
// subset is supported — enough to interchange with SuiteSparse-format files.

// WriteMatrixMarket writes the matrix in MatrixMarket coordinate real
// general format (1-based indices).
func WriteMatrixMarket(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k := range cols {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, cols[k]+1, vals[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadLimits bounds what the MatrixMarket reader accepts. The header of an
// untrusted stream declares dimensions and entry counts that drive
// allocations, so defensive callers (and the fuzz harness) cap them.
type ReadLimits struct {
	MaxRows int
	MaxCols int
	MaxNNZ  int
}

// DefaultReadLimits admits anything addressable by the int32 index space
// CSR uses; only the entry count stays effectively unbounded.
func DefaultReadLimits() ReadLimits {
	return ReadLimits{MaxRows: math.MaxInt32, MaxCols: math.MaxInt32, MaxNNZ: math.MaxInt}
}

// maxEntryPrealloc caps the entry capacity reserved from the declared nnz
// before any entry has been read — a tiny header must not reserve gigabytes.
const maxEntryPrealloc = 1 << 16

// ReadMatrixMarket parses a MatrixMarket coordinate file into CSR form.
// Symmetric and skew-symmetric matrices are expanded; pattern matrices get
// value 1 for every entry.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	return ReadMatrixMarketLimited(r, DefaultReadLimits())
}

// ReadMatrixMarketLimited is ReadMatrixMarket with explicit header limits,
// for parsing untrusted input with bounded memory.
func ReadMatrixMarketLimited(r io.Reader, lim ReadLimits) (*CSR, error) {
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 1<<20), 1<<20)
	if !br.Scan() {
		return nil, fmt.Errorf("matrix: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(br.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("matrix: bad MatrixMarket header %q", br.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("matrix: only coordinate format supported, got %q", header[2])
	}
	valueType := header[3]
	symmetry := "general"
	if len(header) >= 5 {
		symmetry = header[4]
	}
	switch valueType {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("matrix: unsupported value type %q", valueType)
	}
	switch symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return nil, fmt.Errorf("matrix: unsupported symmetry %q", symmetry)
	}

	// Skip comments, read the size line.
	var rows, cols, nnz int
	for {
		if !br.Scan() {
			return nil, fmt.Errorf("matrix: missing size line")
		}
		line := strings.TrimSpace(br.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("matrix: bad size line %q: %w", line, err)
		}
		break
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, ErrDimension
	}
	if rows > lim.MaxRows || cols > lim.MaxCols || nnz > lim.MaxNNZ {
		return nil, fmt.Errorf("%w: %dx%d with %d entries exceeds read limits %dx%d/%d",
			ErrDimension, rows, cols, nnz, lim.MaxRows, lim.MaxCols, lim.MaxNNZ)
	}
	// Entry coordinates are stored as int32 (COO entries, CSR ColIdx), so a
	// caller-supplied limit above the int32 index space must not let the
	// int32 conversions below truncate silently on a huge-but-admitted file.
	if rows > math.MaxInt32 || cols > math.MaxInt32 {
		return nil, fmt.Errorf("%w: %dx%d exceeds the int32 index space", ErrDimension, rows, cols)
	}
	// The MatrixMarket spec defines symmetry only for square matrices; the
	// mirrored entry of a rectangular "symmetric" file could land outside
	// the matrix.
	if symmetry != "general" && rows != cols {
		return nil, fmt.Errorf("%w: %s matrix must be square, got %dx%d",
			ErrDimension, symmetry, rows, cols)
	}

	coo := NewCOO(rows, cols)
	coo.Entries = make([]Entry, 0, min(nnz, maxEntryPrealloc))
	read := 0
	for read < nnz && br.Scan() {
		line := strings.TrimSpace(br.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("matrix: bad entry line %q", line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("matrix: bad row index %q: %w", fields[0], err)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("matrix: bad col index %q: %w", fields[1], err)
		}
		val := 1.0
		if valueType != "pattern" {
			if len(fields) < 3 {
				return nil, fmt.Errorf("matrix: missing value in %q", line)
			}
			val, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("matrix: bad value %q: %w", fields[2], err)
			}
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("%w: entry (%d,%d) outside %dx%d", ErrIndexRange, i, j, rows, cols)
		}
		coo.Add(int32(i-1), int32(j-1), val)
		switch symmetry {
		case "symmetric":
			if i != j {
				coo.Add(int32(j-1), int32(i-1), val)
			}
		case "skew-symmetric":
			if i != j {
				coo.Add(int32(j-1), int32(i-1), -val)
			}
		}
		read++
	}
	if err := br.Err(); err != nil {
		return nil, err
	}
	if read != nnz {
		return nil, fmt.Errorf("matrix: expected %d entries, got %d", nnz, read)
	}
	return coo.ToCSR(), nil
}

// WriteFile writes the matrix to path in MatrixMarket format, atomically:
// readers never observe a partially written matrix.
func WriteFile(path string, m *CSR) error {
	f, err := resilience.CreateAtomic(path)
	if err != nil {
		return err
	}
	defer f.Abort()
	if err := WriteMatrixMarket(f, m); err != nil {
		return err
	}
	return f.Commit()
}

// ReadFile reads a MatrixMarket file from path.
func ReadFile(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadMatrixMarket(f)
}
