package matrix

// Fig1Example returns an 8x8 worked-example matrix in the spirit of Figure 1
// of the WISE paper: row lengths vary from 1 to 3 so SELLPACK with c=2 pads,
// and column nonzero counts are skewed so CFS moves a few hot columns to the
// front and LAV with T=0.7 splits into a dense and a sparse segment.
//
// Layout (letters encode values 1..17 in order of appearance):
//
//	     c0 c1 c2 c3 c4 c5 c6 c7
//	r0 [  a  .  .  b  .  .  .  . ]
//	r1 [  c  .  d  e  .  .  .  . ]
//	r2 [  .  f  .  g  .  .  .  . ]
//	r3 [  .  .  j  k  .  .  .  . ]
//	r4 [  .  .  .  .  l  .  .  . ]
//	r5 [  m  .  n  .  .  .  .  . ]
//	r6 [  p  .  .  q  .  .  r  . ]
//	r7 [  .  .  .  .  .  y  .  u ]
func Fig1Example() *CSR {
	c := NewCOO(8, 8)
	add := func(r, col int32, v float64) { c.Add(r, col, v) }
	add(0, 0, 1)  // a
	add(0, 3, 2)  // b
	add(1, 0, 3)  // c
	add(1, 2, 4)  // d
	add(1, 3, 5)  // e
	add(2, 1, 6)  // f
	add(2, 3, 7)  // g
	add(3, 2, 8)  // j
	add(3, 3, 9)  // k
	add(4, 4, 10) // l
	add(5, 0, 11) // m
	add(5, 2, 12) // n
	add(6, 0, 13) // p
	add(6, 3, 14) // q
	add(6, 6, 15) // r
	add(7, 5, 16) // y
	add(7, 7, 17) // u
	return c.ToCSR()
}
