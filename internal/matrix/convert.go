package matrix

import "sort"

// Dedup sorts the COO entries by (row, col) and merges duplicates by summing
// their values. Entries that sum to exactly zero are kept (explicit zeros are
// legal nonzero slots in sparse formats).
func (c *COO) Dedup() {
	if len(c.Entries) == 0 {
		return
	}
	sort.Slice(c.Entries, func(i, j int) bool {
		a, b := c.Entries[i], c.Entries[j]
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		return a.Col < b.Col
	})
	out := c.Entries[:1]
	for _, e := range c.Entries[1:] {
		last := &out[len(out)-1]
		if e.Row == last.Row && e.Col == last.Col {
			last.Val += e.Val
		} else {
			out = append(out, e)
		}
	}
	c.Entries = out
}

// ToCSR converts the COO matrix to CSR. Entries are deduplicated (duplicate
// coordinates summed) and column indices end up sorted within each row. The
// COO is left in deduplicated, sorted state.
func (c *COO) ToCSR() *CSR {
	c.Dedup()
	m := &CSR{
		Rows:   c.Rows,
		Cols:   c.Cols,
		RowPtr: make([]int64, c.Rows+1),
		ColIdx: make([]int32, len(c.Entries)),
		Vals:   make([]float64, len(c.Entries)),
	}
	for _, e := range c.Entries {
		m.RowPtr[e.Row+1]++
	}
	for i := 0; i < c.Rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	for k, e := range c.Entries {
		m.ColIdx[k] = e.Col
		m.Vals[k] = e.Val
	}
	return m
}

// ToCOO converts the CSR matrix back to coordinate form.
func (m *CSR) ToCOO() *COO {
	c := NewCOO(m.Rows, m.Cols)
	c.Entries = make([]Entry, 0, m.NNZ())
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k := range cols {
			c.Entries = append(c.Entries, Entry{Row: int32(i), Col: cols[k], Val: vals[k]})
		}
	}
	return c
}

// FromDense builds a CSR matrix from a dense row-major slice, storing every
// element with a nonzero value.
func FromDense(rows, cols int, dense []float64) *CSR {
	c := NewCOO(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if v := dense[i*cols+j]; v != 0 { //lint:ignore floateq sparsity is defined by bit-exact zero
				c.Add(int32(i), int32(j), v)
			}
		}
	}
	return c.ToCSR()
}

// ToDense expands the matrix into a dense row-major slice. Intended for
// small matrices in tests.
func (m *CSR) ToDense() []float64 {
	dense := make([]float64, m.Rows*m.Cols)
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k := range cols {
			dense[i*m.Cols+int(cols[k])] = vals[k]
		}
	}
	return dense
}

// Transpose returns the transpose of the matrix in CSR form.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: make([]int64, m.Cols+1),
		ColIdx: make([]int32, m.NNZ()),
		Vals:   make([]float64, m.NNZ()),
	}
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for i := 0; i < t.Rows; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := append([]int64(nil), t.RowPtr[:t.Rows]...)
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k := range cols {
			pos := next[cols[k]]
			next[cols[k]]++
			t.ColIdx[pos] = int32(i)
			t.Vals[pos] = vals[k]
		}
	}
	return t
}
