package matrix

import (
	"math/rand"
	"testing"
)

// randomCSR builds a random rows x cols matrix with roughly density*rows*cols
// nonzeros, deterministic in seed.
func randomCSR(t testing.TB, rng *rand.Rand, rows, cols int, density float64) *CSR {
	t.Helper()
	c := NewCOO(rows, cols)
	n := int(density * float64(rows) * float64(cols))
	for k := 0; k < n; k++ {
		c.Add(int32(rng.Intn(rows)), int32(rng.Intn(cols)), rng.NormFloat64())
	}
	m := c.ToCSR()
	if err := m.Validate(); err != nil {
		t.Fatalf("randomCSR invalid: %v", err)
	}
	return m
}

func TestCOOAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range Add")
		}
	}()
	NewCOO(2, 2).Add(2, 0, 1)
}

func TestCOODedupSums(t *testing.T) {
	c := NewCOO(3, 3)
	c.Add(1, 1, 2)
	c.Add(0, 0, 1)
	c.Add(1, 1, 3)
	c.Dedup()
	if len(c.Entries) != 2 {
		t.Fatalf("dedup left %d entries, want 2", len(c.Entries))
	}
	if c.Entries[1].Val != 5 {
		t.Errorf("duplicate not summed: %v", c.Entries[1])
	}
	if c.Entries[0].Row != 0 || c.Entries[0].Col != 0 {
		t.Errorf("entries not sorted: %v", c.Entries[0])
	}
}

func TestToCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomCSR(t, rng, 50, 40, 0.1)
	back := m.ToCOO().ToCSR()
	if !m.Equal(back) {
		t.Error("COO->CSR->COO->CSR round trip changed matrix")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := Fig1Example()
	if err := m.Validate(); err != nil {
		t.Fatalf("example invalid: %v", err)
	}
	bad := m.Clone()
	bad.ColIdx[0] = 100
	if bad.Validate() == nil {
		t.Error("out-of-range column not caught")
	}
	bad = m.Clone()
	bad.RowPtr[1] = bad.RowPtr[2] + 1
	if bad.Validate() == nil {
		t.Error("non-monotone RowPtr not caught")
	}
	bad = m.Clone()
	bad.ColIdx[1], bad.ColIdx[2] = bad.ColIdx[2], bad.ColIdx[1]
	if bad.Validate() == nil {
		t.Error("unsorted columns not caught")
	}
	bad = m.Clone()
	bad.Vals = bad.Vals[:len(bad.Vals)-1]
	if bad.Validate() == nil {
		t.Error("length mismatch not caught")
	}
}

func TestRowColCounts(t *testing.T) {
	m := Fig1Example()
	rc := m.RowCounts()
	wantRows := []int64{2, 3, 2, 2, 1, 2, 3, 2}
	for i, w := range wantRows {
		if rc[i] != w {
			t.Errorf("row %d count = %d, want %d", i, rc[i], w)
		}
	}
	cc := m.ColCounts()
	wantCols := []int64{4, 1, 3, 5, 1, 1, 1, 1}
	for j, w := range wantCols {
		if cc[j] != w {
			t.Errorf("col %d count = %d, want %d", j, cc[j], w)
		}
	}
	var total int64
	for _, c := range cc {
		total += c
	}
	if total != int64(m.NNZ()) {
		t.Errorf("col counts sum %d != nnz %d", total, m.NNZ())
	}
}

func TestDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomCSR(t, rng, 17, 23, 0.2)
	back := FromDense(m.Rows, m.Cols, m.ToDense())
	if !m.Equal(back) {
		t.Error("dense round trip changed matrix")
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomCSR(t, rng, 30, 20, 0.15)
	tr := m.Transpose()
	if err := tr.Validate(); err != nil {
		t.Fatalf("transpose invalid: %v", err)
	}
	if tr.Rows != m.Cols || tr.Cols != m.Rows {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	if !m.Transpose().Transpose().Equal(m) {
		t.Error("double transpose changed matrix")
	}
	// (A^T)ij == Aji on the dense expansion.
	d, dt := m.ToDense(), tr.ToDense()
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if d[i*m.Cols+j] != dt[j*tr.Cols+i] {
				t.Fatalf("transpose value mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestSpMVAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomCSR(t, rng, 25, 35, 0.2)
	x := Iota(m.Cols)
	y := make([]float64, m.Rows)
	m.SpMV(y, x)
	d := m.ToDense()
	for i := 0; i < m.Rows; i++ {
		var want float64
		for j := 0; j < m.Cols; j++ {
			want += d[i*m.Cols+j] * x[j]
		}
		if diff := y[i] - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("SpMV row %d = %v, want %v", i, y[i], want)
		}
	}
}

func TestSpMVPanicsOnBadDims(t *testing.T) {
	m := Fig1Example()
	defer func() {
		if recover() == nil {
			t.Fatal("expected dimension panic")
		}
	}()
	m.SpMV(make([]float64, 3), make([]float64, m.Cols))
}

func TestVectorHelpers(t *testing.T) {
	if v := Ones(3); v[0] != 1 || v[2] != 1 {
		t.Error("Ones wrong")
	}
	if v := Iota(3); v[2] != 2 {
		t.Error("Iota wrong")
	}
	if d := MaxAbsDiff([]float64{1, 5}, []float64{2, 3}); d != 2 {
		t.Errorf("MaxAbsDiff = %v", d)
	}
	if n := Norm2([]float64{3, 4}); n != 5 {
		t.Errorf("Norm2 = %v", n)
	}
}

func TestMaxAbsDiffPanicsOnLenMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MaxAbsDiff([]float64{1}, []float64{1, 2})
}

func TestFig1ExampleShape(t *testing.T) {
	m := Fig1Example()
	if m.Rows != 8 || m.Cols != 8 || m.NNZ() != 17 {
		t.Fatalf("example shape %v nnz %d", m, m.NNZ())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Values are 1..17 in row-major order of appearance.
	for k, v := range m.Vals {
		if v != float64(k+1) {
			t.Fatalf("val[%d] = %v, want %d", k, v, k+1)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := Fig1Example()
	c := m.Clone()
	c.Vals[0] = -999
	if m.Vals[0] == -999 {
		t.Error("Clone shares storage")
	}
}

func TestStringer(t *testing.T) {
	if s := Fig1Example().String(); s != "CSR{8x8, nnz=17}" {
		t.Errorf("String() = %q", s)
	}
}

func TestAddToDiagonal(t *testing.T) {
	m := FromDense(3, 3, []float64{
		1, 0, 0,
		0, 0, 2,
		0, 0, 0, // no diagonal entry in rows 1, 2
	})
	shifted := m.AddToDiagonal(5)
	d := shifted.ToDense()
	if d[0] != 6 || d[4] != 5 || d[8] != 5 {
		t.Errorf("diagonal wrong: %v", d)
	}
	if d[5] != 2 {
		t.Error("off-diagonal lost")
	}
	if err := shifted.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rectangular: only the main diagonal up to min(rows, cols).
	r := FromDense(2, 3, make([]float64, 6)).AddToDiagonal(1)
	if r.NNZ() != 2 {
		t.Errorf("rect diagonal nnz = %d", r.NNZ())
	}
}

func TestScale(t *testing.T) {
	m := Fig1Example()
	s := m.Scale(2)
	for k := range s.Vals {
		if s.Vals[k] != 2*m.Vals[k] {
			t.Fatal("scale wrong")
		}
	}
	if m.Vals[0] != 1 {
		t.Error("Scale mutated original")
	}
}
