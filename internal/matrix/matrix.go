// Package matrix provides the sparse matrix substrate of the WISE
// reproduction: COO and CSR representations, conversions, row/column
// permutations, MatrixMarket I/O, and a reference sequential SpMV used as the
// correctness oracle for every optimized kernel.
package matrix

import (
	"errors"
	"fmt"
)

// Common validation errors.
var (
	ErrDimension  = errors.New("matrix: invalid dimension")
	ErrIndexRange = errors.New("matrix: index out of range")
	ErrUnsorted   = errors.New("matrix: column indices not sorted within row")
	ErrShape      = errors.New("matrix: mismatched array lengths")
)

// Entry is a single nonzero in coordinate form.
type Entry struct {
	Row, Col int32
	Val      float64
}

// COO is a coordinate-format sparse matrix. Entries may be in any order and
// may contain duplicates until Dedup is called.
type COO struct {
	Rows, Cols int
	Entries    []Entry
}

// NewCOO returns an empty COO with the given dimensions.
func NewCOO(rows, cols int) *COO {
	return &COO{Rows: rows, Cols: cols}
}

// Add appends a nonzero entry. It panics if the coordinates are out of range,
// since out-of-range writes indicate a generator bug, not a recoverable
// condition.
func (c *COO) Add(row, col int32, val float64) {
	if int(row) < 0 || int(row) >= c.Rows || int(col) < 0 || int(col) >= c.Cols {
		panic(fmt.Sprintf("matrix: COO.Add (%d,%d) outside %dx%d", row, col, c.Rows, c.Cols))
	}
	c.Entries = append(c.Entries, Entry{Row: row, Col: col, Val: val})
}

// NNZ returns the number of stored entries (including any duplicates).
func (c *COO) NNZ() int { return len(c.Entries) }

// CSR is a compressed-sparse-row matrix: RowPtr has Rows+1 entries; the
// nonzeros of row i occupy ColIdx/Vals[RowPtr[i]:RowPtr[i+1]], with column
// indices sorted ascending within each row.
type CSR struct {
	Rows, Cols int
	RowPtr     []int64
	ColIdx     []int32
	Vals       []float64
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// RowNNZ returns the number of nonzeros in row i.
func (m *CSR) RowNNZ(i int) int { return int(m.RowPtr[i+1] - m.RowPtr[i]) }

// Row returns the column indices and values of row i as sub-slices of the
// matrix storage; callers must not modify them.
func (m *CSR) Row(i int) ([]int32, []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Vals[lo:hi]
}

// Validate checks structural invariants: monotone row pointers, in-range
// sorted column indices, and consistent array lengths.
func (m *CSR) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return ErrDimension
	}
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("%w: RowPtr len %d, want %d", ErrShape, len(m.RowPtr), m.Rows+1)
	}
	if len(m.ColIdx) != len(m.Vals) {
		return fmt.Errorf("%w: ColIdx len %d vs Vals len %d", ErrShape, len(m.ColIdx), len(m.Vals))
	}
	if m.RowPtr[0] != 0 || m.RowPtr[m.Rows] != int64(len(m.ColIdx)) {
		return fmt.Errorf("%w: RowPtr endpoints [%d,%d], want [0,%d]",
			ErrShape, m.RowPtr[0], m.RowPtr[m.Rows], len(m.ColIdx))
	}
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		if lo > hi {
			return fmt.Errorf("%w: row %d has negative extent", ErrShape, i)
		}
		prev := int32(-1)
		for k := lo; k < hi; k++ {
			c := m.ColIdx[k]
			if int(c) < 0 || int(c) >= m.Cols {
				return fmt.Errorf("%w: row %d col %d outside %d cols", ErrIndexRange, i, c, m.Cols)
			}
			if c <= prev {
				return fmt.Errorf("%w: row %d at position %d", ErrUnsorted, i, k)
			}
			prev = c
		}
	}
	return nil
}

// RowCounts returns the number of nonzeros in each row.
func (m *CSR) RowCounts() []int64 {
	counts := make([]int64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		counts[i] = m.RowPtr[i+1] - m.RowPtr[i]
	}
	return counts
}

// ColCounts returns the number of nonzeros in each column.
func (m *CSR) ColCounts() []int64 {
	counts := make([]int64, m.Cols)
	for _, c := range m.ColIdx {
		counts[c]++
	}
	return counts
}

// Clone returns a deep copy of the matrix.
func (m *CSR) Clone() *CSR {
	out := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: append([]int64(nil), m.RowPtr...),
		ColIdx: append([]int32(nil), m.ColIdx...),
		Vals:   append([]float64(nil), m.Vals...),
	}
	return out
}

// Equal reports whether two CSR matrices have identical structure and values.
func (m *CSR) Equal(o *CSR) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols || len(m.ColIdx) != len(o.ColIdx) {
		return false
	}
	for i := range m.RowPtr {
		if m.RowPtr[i] != o.RowPtr[i] {
			return false
		}
	}
	for i := range m.ColIdx {
		if m.ColIdx[i] != o.ColIdx[i] || m.Vals[i] != o.Vals[i] { //lint:ignore floateq Equal is a deliberate bit-exact structural comparison
			return false
		}
	}
	return true
}

// String returns a short human-readable description.
func (m *CSR) String() string {
	return fmt.Sprintf("CSR{%dx%d, nnz=%d}", m.Rows, m.Cols, m.NNZ())
}

// AddToDiagonal returns a copy of the matrix with delta added to every
// diagonal element; diagonal entries missing from the sparsity pattern are
// created. Useful for shifting stencil operators to strict positive
// definiteness in the solver examples and tests.
func (m *CSR) AddToDiagonal(delta float64) *CSR {
	coo := m.ToCOO()
	present := make([]bool, m.Rows)
	for i := range coo.Entries {
		e := &coo.Entries[i]
		if e.Row == e.Col {
			e.Val += delta
			present[e.Row] = true
		}
	}
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		if !present[i] {
			coo.Add(int32(i), int32(i), delta)
		}
	}
	return coo.ToCSR()
}

// Scale returns a copy of the matrix with every value multiplied by s.
func (m *CSR) Scale(s float64) *CSR {
	out := m.Clone()
	for i := range out.Vals {
		out.Vals[i] *= s
	}
	return out
}
