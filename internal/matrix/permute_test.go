package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomPerm(rng *rand.Rand, n int) Permutation {
	p := Identity(n)
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

func TestIdentityValid(t *testing.T) {
	p := Identity(10)
	if !p.Valid() {
		t.Error("identity invalid")
	}
	for i, v := range p.Inverse() {
		if int(v) != i {
			t.Fatal("identity inverse not identity")
		}
	}
}

func TestValidRejects(t *testing.T) {
	if (Permutation{0, 0}).Valid() {
		t.Error("duplicate accepted")
	}
	if (Permutation{0, 2}).Valid() {
		t.Error("out of range accepted")
	}
	if (Permutation{-1, 0}).Valid() {
		t.Error("negative accepted")
	}
	if !(Permutation{}).Valid() {
		t.Error("empty should be valid")
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		p := randomPerm(rng, 1+rng.Intn(100))
		inv := p.Inverse()
		for newPos, oldPos := range p {
			if inv[oldPos] != int32(newPos) {
				t.Fatal("inverse wrong")
			}
		}
		if !inv.Valid() {
			t.Fatal("inverse invalid")
		}
	}
}

func TestSortByCountsDesc(t *testing.T) {
	counts := []int64{3, 9, 1, 9, 5}
	p := SortByCountsDesc(counts)
	if !p.Valid() {
		t.Fatal("perm invalid")
	}
	// Descending counts with stable tie-break by original index.
	want := Permutation{1, 3, 4, 0, 2}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("perm = %v, want %v", p, want)
		}
	}
}

func TestSortByCountsDescProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := make([]int64, len(raw))
		for i, v := range raw {
			counts[i] = int64(v)
		}
		p := SortByCountsDesc(counts)
		if !p.Valid() {
			return false
		}
		for i := 1; i < len(p); i++ {
			if counts[p[i-1]] < counts[p[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermuteRowsPreservesSpMVUpToPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := randomCSR(t, rng, 40, 30, 0.1)
	perm := randomPerm(rng, m.Rows)
	pm := m.PermuteRows(perm)
	if err := pm.Validate(); err != nil {
		t.Fatal(err)
	}
	x := Iota(m.Cols)
	y := make([]float64, m.Rows)
	py := make([]float64, m.Rows)
	m.SpMV(y, x)
	pm.SpMV(py, x)
	for newRow, oldRow := range perm {
		if py[newRow] != y[oldRow] {
			t.Fatalf("row %d: permuted %v != original %v", newRow, py[newRow], y[oldRow])
		}
	}
}

func TestPermuteColsPreservesSpMVWithGatheredX(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := randomCSR(t, rng, 30, 40, 0.1)
	perm := randomPerm(rng, m.Cols)
	pm := m.PermuteCols(perm)
	if err := pm.Validate(); err != nil {
		t.Fatal(err)
	}
	x := Iota(m.Cols)
	px := GatherVec(nil, x, perm) // px[new] = x[perm[new]]
	y := make([]float64, m.Rows)
	py := make([]float64, m.Rows)
	m.SpMV(y, x)
	pm.SpMV(py, px)
	if MaxAbsDiff(y, py) > 1e-12 {
		t.Fatalf("column permutation broke SpMV: diff %v", MaxAbsDiff(y, py))
	}
}

func TestGatherScatterInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := 64
	perm := randomPerm(rng, n)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
	}
	g := GatherVec(nil, x, perm)
	s := ScatterVec(nil, g, perm)
	if MaxAbsDiff(x, s) != 0 {
		t.Error("scatter(gather(x)) != x")
	}
}

func TestPermutePanicsOnBadLength(t *testing.T) {
	m := Fig1Example()
	for name, fn := range map[string]func(){
		"rows": func() { m.PermuteRows(Identity(3)) },
		"cols": func() { m.PermuteCols(Identity(3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPermuteRowsIdentityNoop(t *testing.T) {
	m := Fig1Example()
	if !m.PermuteRows(Identity(m.Rows)).Equal(m) {
		t.Error("identity row permutation changed matrix")
	}
	if !m.PermuteCols(Identity(m.Cols)).Equal(m) {
		t.Error("identity col permutation changed matrix")
	}
}
