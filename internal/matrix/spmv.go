package matrix

import (
	"fmt"
	"math"
)

// SpMV computes y = A*x sequentially with the textbook CSR loop. It is the
// correctness reference for every optimized kernel in internal/kernels.
// y is overwritten. It panics on mismatched dimensions.
func (m *CSR) SpMV(y, x []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("matrix: SpMV dims y[%d]=A[%dx%d]*x[%d]", len(y), m.Rows, m.Cols, len(x)))
	}
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		var sum float64
		for k := lo; k < hi; k++ {
			sum += m.Vals[k] * x[m.ColIdx[k]]
		}
		y[i] = sum
	}
}

// Vector helpers used throughout examples and tests.

// Ones returns a length-n vector of ones.
func Ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Iota returns [0, 1, ..., n-1] as float64, a convenient deterministic
// input vector for correctness tests.
func Iota(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i)
	}
	return v
}

// MaxAbsDiff returns the maximum absolute elementwise difference between two
// equal-length vectors.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("matrix: MaxAbsDiff length mismatch")
	}
	var max float64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
