package matrix

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// fuzzSeeds is the seed corpus for the MatrixMarket parser: valid files in
// every supported value-type/symmetry combination plus the malformed shapes
// the parser must reject cleanly. The seeds also run as plain subtests under
// go test (TestFuzzSeedsParse), so CI exercises them without -fuzz.
var fuzzSeeds = []string{
	// Valid: real general with comments and blank lines.
	"%%MatrixMarket matrix coordinate real general\n% comment\n\n2 3 3\n1 1 1.5\n1 3 -2\n2 2 4e-3\n",
	// Valid: symmetric with a diagonal entry (not mirrored twice).
	"%%MatrixMarket matrix coordinate real symmetric\n3 3 3\n1 1 2\n2 1 -1\n3 2 0.5\n",
	// Valid: skew-symmetric (diagonal-free mirror with negation).
	"%%MatrixMarket matrix coordinate real skew-symmetric\n3 3 2\n2 1 1\n3 1 7\n",
	// Valid: pattern entries take value 1.
	"%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n",
	// Valid: integer values parse as floats.
	"%%MatrixMarket matrix coordinate integer general\n2 2 1\n2 1 -3\n",
	// Valid: duplicate coordinates are summed by canonicalization.
	"%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1\n1 1 2\n2 2 5\n",
	// Valid: empty matrix.
	"%%MatrixMarket matrix coordinate real general\n4 4 0\n",
	// Invalid: bad header.
	"%%NotMatrixMarket nonsense\n1 1 0\n",
	// Invalid: array format unsupported.
	"%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
	// Invalid: truncated entry list.
	"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n",
	// Invalid: index out of declared range.
	"%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
	// Invalid: unparsable value.
	"%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 zebra\n",
	// Invalid: negative size line.
	"%%MatrixMarket matrix coordinate real general\n-1 2 0\n",
	// Invalid: rectangular symmetric (mirror would land out of range).
	"%%MatrixMarket matrix coordinate real symmetric\n2 3 1\n1 3 5\n",
	// Invalid: header dimensions exceed the fuzz read limits.
	"%%MatrixMarket matrix coordinate real general\n999999999 1 0\n",
}

// fuzzLimits bounds allocations so mutated headers cannot OOM the harness.
var fuzzLimits = ReadLimits{MaxRows: 1 << 12, MaxCols: 1 << 12, MaxNNZ: 1 << 14}

// checkParsed asserts the invariants every successfully parsed matrix must
// satisfy, whatever the input bytes were.
func checkParsed(t *testing.T, m *CSR) {
	t.Helper()
	if m == nil {
		t.Fatal("nil matrix with nil error")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("parsed matrix fails Validate: %v", err)
	}
	if m.Rows > fuzzLimits.MaxRows || m.Cols > fuzzLimits.MaxCols {
		t.Fatalf("parsed %dx%d exceeds read limits", m.Rows, m.Cols)
	}
}

// roundtrip writes m and parses it back, asserting the result is
// structurally identical with bit-equal (or both-NaN) values.
func roundtrip(t *testing.T, m *CSR) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatalf("writing parsed matrix: %v", err)
	}
	// The write-out of a symmetric input is the expanded general form and
	// may hold up to 2x the entries, so reread without the fuzz caps.
	m2, err := ReadMatrixMarket(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("rereading written matrix: %v\n%s", err, buf.String())
	}
	if m2.Rows != m.Rows || m2.Cols != m.Cols || m2.NNZ() != m.NNZ() {
		t.Fatalf("roundtrip shape drift: %dx%d/%d -> %dx%d/%d",
			m.Rows, m.Cols, m.NNZ(), m2.Rows, m2.Cols, m2.NNZ())
	}
	for i := range m.RowPtr {
		if m.RowPtr[i] != m2.RowPtr[i] {
			t.Fatalf("roundtrip RowPtr drift at %d", i)
		}
	}
	for i := range m.ColIdx {
		if m.ColIdx[i] != m2.ColIdx[i] {
			t.Fatalf("roundtrip ColIdx drift at %d", i)
		}
		a, b := m.Vals[i], m2.Vals[i]
		// Bit-exact on purpose: %.17g output must reparse to the same
		// float64 (NaN compares unequal to itself, hence the special case).
		if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			t.Fatalf("roundtrip value drift at %d: %v -> %v", i, a, b)
		}
	}
}

// FuzzReadMatrixMarket asserts the parser never panics, that every accepted
// input yields a valid CSR within the read limits, and that write/reread is
// lossless.
func FuzzReadMatrixMarket(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<18 {
			t.Skip("oversized input")
		}
		m, err := ReadMatrixMarketLimited(bytes.NewReader(data), fuzzLimits)
		if err != nil {
			return // rejected cleanly
		}
		checkParsed(t, m)
		roundtrip(t, m)
	})
}

// FuzzReadMatrixMarketEntries fuzzes the entry-list tail behind a fixed
// valid header, steering mutations at index/value parsing instead of the
// header grammar.
func FuzzReadMatrixMarketEntries(f *testing.F) {
	f.Add("1 1 1.5\n2 3 -2e4\n3 2 0.25\n")
	f.Add("1 1 1\n1 1 2\n1 1 3\n")
	f.Add("3 3 nan\n1 2 1\n2 1 1\n")
	f.Fuzz(func(t *testing.T, entries string) {
		if len(entries) > 1<<16 {
			t.Skip("oversized input")
		}
		input := "%%MatrixMarket matrix coordinate real general\n4 4 3\n" + entries
		m, err := ReadMatrixMarketLimited(strings.NewReader(input), fuzzLimits)
		if err != nil {
			return
		}
		checkParsed(t, m)
		roundtrip(t, m)
	})
}

// TestFuzzSeedsParse runs the full seed corpus as ordinary subtests so the
// seeds are exercised by plain go test (and CI) without the fuzz engine.
func TestFuzzSeedsParse(t *testing.T) {
	for _, s := range fuzzSeeds {
		m, err := ReadMatrixMarketLimited(strings.NewReader(s), fuzzLimits)
		if err != nil {
			continue // invalid seeds are rejected cleanly by construction
		}
		checkParsed(t, m)
		roundtrip(t, m)
	}
}

// TestReadLimits pins the defensive-parsing behavior the fuzz harness
// relies on.
func TestReadLimits(t *testing.T) {
	big := "%%MatrixMarket matrix coordinate real general\n10000000 1 0\n"
	if _, err := ReadMatrixMarketLimited(strings.NewReader(big), fuzzLimits); err == nil {
		t.Fatal("header beyond MaxRows must be rejected")
	}
	if m, err := ReadMatrixMarket(strings.NewReader(big)); err != nil || m.Rows != 10000000 {
		t.Fatalf("default limits must admit large-but-addressable sizes: %v", err)
	}
	rect := "%%MatrixMarket matrix coordinate real symmetric\n2 3 1\n1 3 5\n"
	if _, err := ReadMatrixMarket(strings.NewReader(rect)); err == nil {
		t.Fatal("rectangular symmetric matrix must be rejected, not mirrored out of range")
	}
}
