package machine

import "testing"

func TestSkylakeSigmaMatchesPaper(t *testing.T) {
	m := Skylake24()
	sigmas := m.SigmaValues()
	want := []int{512, 4096, 16384} // paper: {2^9, 2^12, 2^14}
	if len(sigmas) != 3 {
		t.Fatalf("got %d sigma values", len(sigmas))
	}
	for i := range want {
		if sigmas[i] != want[i] {
			t.Errorf("sigma[%d] = %d, want %d", i, sigmas[i], want[i])
		}
	}
}

func TestChunkSizesMatchPaper(t *testing.T) {
	m := Skylake24()
	cs := m.ChunkSizes()
	if len(cs) != 2 || cs[0] != 4 || cs[1] != 8 {
		t.Errorf("chunk sizes = %v, want [4 8]", cs)
	}
	scalar := Machine{VectorWidth: 1}
	if cs := scalar.ChunkSizes(); len(cs) != 1 || cs[0] != 1 {
		t.Errorf("scalar chunk sizes = %v", cs)
	}
}

func TestCacheHierarchyMonotone(t *testing.T) {
	for _, m := range []Machine{Skylake24(), Scaled()} {
		if !(m.L1.SizeBytes < m.L2.SizeBytes && m.L2.SizeBytes < m.LLC.SizeBytes) {
			t.Errorf("%s: cache sizes not monotone", m.Name)
		}
		if !(m.L1.HitCycles < m.L2.HitCycles && m.L2.HitCycles < m.LLC.HitCycles && m.LLC.HitCycles < m.MissCycles) {
			t.Errorf("%s: latencies not monotone", m.Name)
		}
		if m.Cores <= 0 || m.VectorWidth <= 0 || m.RowBlock <= 0 {
			t.Errorf("%s: bad execution params", m.Name)
		}
	}
}

func TestCacheSets(t *testing.T) {
	c := Cache{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8}
	if got := c.Sets(); got != 64 {
		t.Errorf("Sets() = %d, want 64", got)
	}
}

func TestScaledPreservesCrossover(t *testing.T) {
	// The scaled machine must keep LLC capacity near 2^13 doubles so that the
	// paper's "rows > 2^22" LAV crossover appears inside the scaled corpus
	// range (2^10..2^16 rows).
	m := Scaled()
	d := m.LLCDoubles()
	if d < 1<<12 || d > 1<<14 {
		t.Errorf("scaled LLC = %d doubles, want around 2^13", d)
	}
}

func TestSigmaValuesAlwaysIncreasing(t *testing.T) {
	for _, m := range []Machine{Skylake24(), Scaled(), {L1: Cache{SizeBytes: 64}, L2: Cache{SizeBytes: 128}}} {
		s := m.SigmaValues()
		if !(s[0] < s[1] && s[1] < s[2]) {
			t.Errorf("%s: sigma values not increasing: %v", m.Name, s)
		}
		if s[0] < 2 {
			t.Errorf("%s: sigma too small: %v", m.Name, s)
		}
	}
}
