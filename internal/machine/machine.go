// Package machine defines the parameterized machine model the WISE
// reproduction targets. The paper evaluates on a 2.6 GHz Intel Gold 6126
// (Skylake) server: 2 sockets x 12 cores, 32KB L1D + 1MB L2 per core, 19MB
// shared LLC per socket, AVX-512 (8 doubles per vector op).
//
// Because this reproduction scales matrices down to laptop sizes, the default
// experiment machine Scaled() shrinks the cache hierarchy by the same factor,
// keeping every capacity crossover (x fits in L1/L2/LLC) at the same
// normalized matrix size as on the paper's server. The Skylake24() model
// carries the paper's true constants for full-scale runs.
package machine

// Cache describes one cache level for the cost model's simulator.
type Cache struct {
	SizeBytes int
	LineBytes int
	Assoc     int
	// HitCycles is the effective per-access cost when the access hits at
	// this level, already discounted for memory-level parallelism.
	HitCycles float64
}

// Sets returns the number of sets of the cache.
func (c Cache) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

// Machine is a full machine description used by both the SpMV kernels
// (vector width, scheduling granularity) and the cost model (caches,
// latencies, bandwidth).
type Machine struct {
	Name        string
	Cores       int
	VectorWidth int // doubles per vector operation (8 for AVX-512)

	L1, L2, LLC Cache
	MissCycles  float64 // effective DRAM access cost (cycles, MLP-discounted)

	// StreamBytesPerCycle models the sequential-streaming bandwidth of one
	// core: format arrays (vals, colids, row pointers) are read sequentially
	// and cost bytes/StreamBytesPerCycle cycles.
	StreamBytesPerCycle float64

	VecOpCycles float64 // cycles per vector FMA position
	// ScalarOpCycles is the effective per-element compute cost of the scalar
	// CSR loop: out-of-order execution overlaps most of the FMA latency with
	// the memory traffic, so it is well below one cycle per element.
	ScalarOpCycles   float64
	DynChunkOverhead float64 // cycles per dynamically claimed work unit
	RowBlock         int     // K, rows per CSR scheduling unit (Dyn/St)
}

// Skylake24 returns the paper's evaluation machine.
func Skylake24() Machine {
	return Machine{
		Name:                "skylake24",
		Cores:               24,
		VectorWidth:         8,
		L1:                  Cache{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, HitCycles: 1},
		L2:                  Cache{SizeBytes: 1 << 20, LineBytes: 64, Assoc: 16, HitCycles: 4},
		LLC:                 Cache{SizeBytes: 38 << 20, LineBytes: 64, Assoc: 11, HitCycles: 14},
		MissCycles:          70,
		StreamBytesPerCycle: 8,
		VecOpCycles:         1,
		ScalarOpCycles:      0.35,
		DynChunkOverhead:    40,
		RowBlock:            1024,
	}
}

// Scaled returns the experiment machine: the Skylake hierarchy shrunk ~512x
// so that the paper's "x exceeds the LLC" crossover (rows > 2^22 on 19MB
// LLC) lands near rows 2^13 on the scaled-down corpus (2^10-2^16 rows).
func Scaled() Machine {
	return Machine{
		Name:                "scaled-skylake",
		Cores:               24,
		VectorWidth:         8,
		L1:                  Cache{SizeBytes: 2 << 10, LineBytes: 64, Assoc: 8, HitCycles: 1},
		L2:                  Cache{SizeBytes: 16 << 10, LineBytes: 64, Assoc: 16, HitCycles: 4},
		LLC:                 Cache{SizeBytes: 64 << 10, LineBytes: 64, Assoc: 16, HitCycles: 14},
		MissCycles:          70,
		StreamBytesPerCycle: 8,
		VecOpCycles:         1,
		ScalarOpCycles:      0.35,
		DynChunkOverhead:    40,
		RowBlock:            64,
	}
}

// L1Doubles, L2Doubles, LLCDoubles return each cache's capacity in float64
// elements; the input vector x "fits amply" in a level when its footprint is
// a modest fraction of that capacity.
func (m Machine) L1Doubles() int  { return m.L1.SizeBytes / 8 }
func (m Machine) L2Doubles() int  { return m.L2.SizeBytes / 8 }
func (m Machine) LLCDoubles() int { return m.LLC.SizeBytes / 8 }

// SigmaValues returns the Sell-c-sigma sort-window sizes for this machine,
// derived the way the paper derives {2^9, 2^12, 2^14} from its 32KB L1 and
// 1MB L2: sigma_small = L1/8 doubles, sigma_mid = L2/32, sigma_large = L2/8.
// On Skylake24 this reproduces the paper's exact values.
func (m Machine) SigmaValues() []int {
	s1 := m.L1Doubles() / 8
	s2 := m.L2Doubles() / 32
	s3 := m.L2Doubles() / 8
	if s1 < 2 {
		s1 = 2
	}
	if s2 <= s1 {
		s2 = s1 * 2
	}
	if s3 <= s2 {
		s3 = s2 * 2
	}
	return []int{s1, s2, s3}
}

// ChunkSizes returns the SELLPACK/Sell-c-sigma chunk sizes to model: the
// machine's half-width and full-width vector lanes ({4, 8} on AVX-512),
// exactly the paper's c = {4, 8}.
func (m Machine) ChunkSizes() []int {
	if m.VectorWidth <= 1 {
		return []int{1}
	}
	return []int{m.VectorWidth / 2, m.VectorWidth}
}
