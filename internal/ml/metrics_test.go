package ml

import (
	"math"
	"math/rand"
	"testing"
)

func TestPrecisionRecall(t *testing.T) {
	cm := NewConfusionMatrix(3)
	// class 0: 2 correct, 1 predicted as 1.
	cm.Add(0, 0)
	cm.Add(0, 0)
	cm.Add(0, 1)
	// class 1: 1 correct.
	cm.Add(1, 1)
	// class 2: never occurs, never predicted.
	p, r := cm.PrecisionRecall()
	if p[0] != 1 { // predictions of class 0: 2, both correct
		t.Errorf("precision[0] = %v", p[0])
	}
	if math.Abs(r[0]-2.0/3.0) > 1e-12 {
		t.Errorf("recall[0] = %v", r[0])
	}
	if math.Abs(p[1]-0.5) > 1e-12 { // predicted 1 twice, once correct
		t.Errorf("precision[1] = %v", p[1])
	}
	if r[1] != 1 {
		t.Errorf("recall[1] = %v", r[1])
	}
	if p[2] != 0 || r[2] != 0 {
		t.Errorf("empty class metrics = %v/%v", p[2], r[2])
	}
}

func TestMacroF1(t *testing.T) {
	// Perfect classifier: F1 = 1.
	cm := NewConfusionMatrix(2)
	cm.Add(0, 0)
	cm.Add(1, 1)
	if f := cm.MacroF1(); math.Abs(f-1) > 1e-12 {
		t.Errorf("perfect F1 = %v", f)
	}
	// All wrong: F1 = 0.
	cm = NewConfusionMatrix(2)
	cm.Add(0, 1)
	cm.Add(1, 0)
	if f := cm.MacroF1(); f != 0 {
		t.Errorf("all-wrong F1 = %v", f)
	}
	// Absent classes excluded, not zero-averaged.
	cm = NewConfusionMatrix(5)
	cm.Add(0, 0)
	if f := cm.MacroF1(); math.Abs(f-1) > 1e-12 {
		t.Errorf("single-class F1 = %v", f)
	}
	if f := NewConfusionMatrix(3).MacroF1(); f != 0 {
		t.Errorf("empty F1 = %v", f)
	}
}

func TestFeatureImportanceIdentifiesSignal(t *testing.T) {
	// Labels depend only on feature 1; feature 0 is noise.
	rng := rand.New(rand.NewSource(1))
	d := Dataset{NumClasses: 2}
	for i := 0; i < 400; i++ {
		signal := rng.Float64()
		label := 0
		if signal > 0.5 {
			label = 1
		}
		d.X = append(d.X, []float64{rng.Float64(), signal})
		d.Y = append(d.Y, label)
	}
	tree, err := Fit(d, TreeConfig{MaxDepth: 8, CCPAlpha: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	imp := tree.FeatureImportance(2)
	if len(imp) != 2 {
		t.Fatal("wrong length")
	}
	if imp[1] < 0.9 {
		t.Errorf("signal feature importance %v, want >= 0.9 (noise got %v)", imp[1], imp[0])
	}
	var sum float64
	for _, v := range imp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %v", sum)
	}
}

func TestFeatureImportanceStump(t *testing.T) {
	d := Dataset{
		X:          [][]float64{{1}, {1}},
		Y:          []int{0, 0},
		NumClasses: 2,
	}
	tree, err := Fit(d, TreeConfig{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	imp := tree.FeatureImportance(1)
	if imp[0] != 0 {
		t.Errorf("pure-leaf tree importance = %v", imp)
	}
}

func TestDecisionPathConsistentWithPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := blobDataset(rng, 30, 3)
	tree, err := Fit(d, TreeConfig{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range d.X {
		path := tree.DecisionPath(x)
		// Replay the path manually and confirm it reaches the prediction.
		n := tree.Root
		for _, step := range path {
			if n.Feature != step.Feature || n.Threshold != step.Threshold {
				t.Fatal("path disagrees with tree structure")
			}
			if step.WentLeft != (x[n.Feature] <= n.Threshold) {
				t.Fatal("direction recorded wrongly")
			}
			if step.WentLeft {
				n = n.Left
			} else {
				n = n.Right
			}
		}
		if !n.IsLeaf() || n.Class != tree.Predict(x) {
			t.Fatal("path does not end at predicted leaf")
		}
	}
}

func TestDecisionPathStump(t *testing.T) {
	d := Dataset{X: [][]float64{{1}}, Y: []int{0}, NumClasses: 1}
	tree, err := Fit(d, TreeConfig{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if path := tree.DecisionPath([]float64{5}); len(path) != 0 {
		t.Errorf("stump path = %v", path)
	}
}
