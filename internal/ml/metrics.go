package ml

// Classification quality metrics beyond plain accuracy, plus decision-tree
// feature importance — used by the Fig. 10 driver and the training CLI to
// introspect which of the Table 2 features carry the signal.

// PrecisionRecall returns the per-class precision and recall of the
// confusion matrix. Classes with no predictions (precision) or no
// occurrences (recall) get 0.
func (c *ConfusionMatrix) PrecisionRecall() (precision, recall []float64) {
	n := len(c.Counts)
	precision = make([]float64, n)
	recall = make([]float64, n)
	for k := 0; k < n; k++ {
		var predicted, actual int64
		for i := 0; i < n; i++ {
			predicted += c.Counts[i][k]
			actual += c.Counts[k][i]
		}
		if predicted > 0 {
			precision[k] = float64(c.Counts[k][k]) / float64(predicted)
		}
		if actual > 0 {
			recall[k] = float64(c.Counts[k][k]) / float64(actual)
		}
	}
	return precision, recall
}

// MacroF1 returns the macro-averaged F1 score over classes that actually
// occur (classes absent from the data are excluded, not counted as zero).
func (c *ConfusionMatrix) MacroF1() float64 {
	precision, recall := c.PrecisionRecall()
	var sum float64
	var present int
	for k := range precision {
		var actual int64
		for i := range c.Counts[k] {
			actual += c.Counts[k][i]
		}
		if actual == 0 {
			continue
		}
		present++
		if precision[k]+recall[k] > 0 {
			sum += 2 * precision[k] * recall[k] / (precision[k] + recall[k])
		}
	}
	if present == 0 {
		return 0
	}
	return sum / float64(present)
}

// FeatureImportance returns the Gini importance of each feature: the total
// impurity decrease contributed by splits on that feature, weighted by the
// fraction of training samples reaching the split, normalized to sum to 1.
// The slice length is the feature-vector width used at training; it is nil
// for deserialized trees (training counts are not persisted).
func (t *Tree) FeatureImportance(nFeatures int) []float64 {
	if t.Root == nil || t.Root.Samples == 0 {
		return nil
	}
	imp := make([]float64, nFeatures)
	total := float64(t.Root.Samples)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			return
		}
		if n.Feature >= 0 && n.Feature < nFeatures {
			childImp := (float64(n.Left.Samples)*n.Left.Impurity +
				float64(n.Right.Samples)*n.Right.Impurity) / float64(n.Samples)
			decrease := n.Impurity - childImp
			if decrease > 0 {
				imp[n.Feature] += float64(n.Samples) / total * decrease
			}
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
	var sum float64
	for _, v := range imp {
		sum += v
	}
	if sum > 0 {
		for i := range imp {
			imp[i] /= sum
		}
	}
	return imp
}
