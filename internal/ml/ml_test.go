package ml

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// xorDataset is linearly inseparable but tree-separable. The quadrant counts
// are deliberately unbalanced: a perfectly balanced XOR has zero Gini gain
// for every single-feature split, so greedy CART (like scikit-learn's)
// cannot start on it.
func xorDataset() Dataset {
	var d Dataset
	d.NumClasses = 2
	quadCounts := map[[2]int]int{{0, 0}: 12, {1, 0}: 9, {0, 1}: 9, {1, 1}: 12}
	for quad, n := range quadCounts {
		for i := 0; i < n; i++ {
			a, b := float64(quad[0]), float64(quad[1])
			label := 0
			if quad[0] != quad[1] {
				label = 1
			}
			d.X = append(d.X, []float64{a + float64(i)*0.001, b})
			d.Y = append(d.Y, label)
		}
	}
	return d
}

// blobDataset makes NumClasses well-separated 2D clusters.
func blobDataset(rng *rand.Rand, perClass, classes int) Dataset {
	d := Dataset{NumClasses: classes}
	for c := 0; c < classes; c++ {
		cx := float64(c * 10)
		for i := 0; i < perClass; i++ {
			d.X = append(d.X, []float64{cx + rng.NormFloat64(), rng.NormFloat64()})
			d.Y = append(d.Y, c)
		}
	}
	return d
}

func TestDatasetValidate(t *testing.T) {
	ok := Dataset{X: [][]float64{{1}, {2}}, Y: []int{0, 1}, NumClasses: 2}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Dataset{
		{X: [][]float64{{1}}, Y: []int{0, 1}, NumClasses: 2},
		{X: [][]float64{{1}, {2}}, Y: []int{0, 2}, NumClasses: 2},
		{X: [][]float64{{1}, {2, 3}}, Y: []int{0, 1}, NumClasses: 2},
		{X: [][]float64{{1}}, Y: []int{0}, NumClasses: 0},
	}
	for i, d := range bad {
		if d.Validate() == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestFitPerfectSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := blobDataset(rng, 30, 3)
	tree, err := Fit(d, TreeConfig{MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for i, x := range d.X {
		if tree.Predict(x) != d.Y[i] {
			wrong++
		}
	}
	if wrong > 0 {
		t.Errorf("separable blobs misclassified %d times", wrong)
	}
}

func TestFitXOR(t *testing.T) {
	d := xorDataset()
	tree, err := Fit(d, TreeConfig{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range d.X {
		if got := tree.Predict(x); got != d.Y[i] {
			t.Fatalf("xor sample %d: predicted %d, want %d", i, got, d.Y[i])
		}
	}
	if tree.Depth() < 2 {
		t.Error("xor needs depth >= 2")
	}
}

func TestMaxDepthRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := Dataset{NumClasses: 2}
	for i := 0; i < 300; i++ {
		d.X = append(d.X, []float64{rng.Float64(), rng.Float64(), rng.Float64()})
		d.Y = append(d.Y, rng.Intn(2))
	}
	for _, depth := range []int{1, 2, 3, 5} {
		tree, err := Fit(d, TreeConfig{MaxDepth: depth})
		if err != nil {
			t.Fatal(err)
		}
		if tree.Depth() > depth {
			t.Errorf("depth %d exceeds max %d", tree.Depth(), depth)
		}
	}
}

func TestMinSamplesLeaf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := blobDataset(rng, 20, 2)
	tree, err := Fit(d, TreeConfig{MaxDepth: 10, MinSamplesLeaf: 5})
	if err != nil {
		t.Fatal(err)
	}
	var check func(n *Node)
	check = func(n *Node) {
		if n.IsLeaf() {
			if n.Samples < 5 {
				t.Errorf("leaf with %d samples < MinSamplesLeaf", n.Samples)
			}
			return
		}
		check(n.Left)
		check(n.Right)
	}
	check(tree.Root)
}

func TestPruningShrinksTree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Noisy labels force an overfit tree that pruning should shrink.
	d := Dataset{NumClasses: 2}
	for i := 0; i < 400; i++ {
		x := rng.Float64()
		label := 0
		if x > 0.5 {
			label = 1
		}
		if rng.Float64() < 0.15 {
			label = 1 - label
		}
		d.X = append(d.X, []float64{x, rng.Float64()})
		d.Y = append(d.Y, label)
	}
	unpruned, err := Fit(d, TreeConfig{MaxDepth: 20})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Fit(d, TreeConfig{MaxDepth: 20, CCPAlpha: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Leaves() >= unpruned.Leaves() {
		t.Errorf("pruned leaves %d >= unpruned %d", pruned.Leaves(), unpruned.Leaves())
	}
	// The pruned tree must still get the main signal right.
	if pruned.Predict([]float64{0.1, 0}) != 0 || pruned.Predict([]float64{0.9, 0}) != 1 {
		t.Error("pruning destroyed the dominant split")
	}
}

func TestPruningMonotoneInAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := Dataset{NumClasses: 3}
	for i := 0; i < 300; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		d.X = append(d.X, x)
		d.Y = append(d.Y, rng.Intn(3))
	}
	prev := 1 << 30
	for _, alpha := range []float64{0, 0.001, 0.005, 0.01, 0.05, 0.1} {
		tree, err := Fit(d, TreeConfig{MaxDepth: 20, CCPAlpha: alpha})
		if err != nil {
			t.Fatal(err)
		}
		if tree.Leaves() > prev {
			t.Errorf("alpha %v grew the tree: %d > %d leaves", alpha, tree.Leaves(), prev)
		}
		prev = tree.Leaves()
	}
}

func TestHugeAlphaCollapsesToRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := blobDataset(rng, 20, 2)
	tree, err := Fit(d, TreeConfig{MaxDepth: 10, CCPAlpha: 10})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Leaves() != 1 {
		t.Errorf("alpha=10 should collapse to a stump, got %d leaves", tree.Leaves())
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(Dataset{NumClasses: 2}, TreeConfig{MaxDepth: 3}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := Fit(Dataset{X: [][]float64{{1}}, Y: []int{5}, NumClasses: 2}, TreeConfig{MaxDepth: 3}); err == nil {
		t.Error("bad labels accepted")
	}
}

func TestTreeSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := blobDataset(rng, 25, 4)
	d.FeatureNames = []string{"f0", "f1"}
	tree, err := Fit(d, TreeConfig{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	data, err := tree.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalTree(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range d.X {
		if tree.Predict(x) != back.Predict(x) {
			t.Fatal("serialized tree predicts differently")
		}
	}
	if back.FeatureNames[1] != "f1" {
		t.Error("feature names lost")
	}
	if _, err := UnmarshalTree([]byte(`{"num_classes":2}`)); err == nil {
		t.Error("rootless tree accepted")
	}
	if _, err := UnmarshalTree([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestPredictionsInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := blobDataset(rng, 15, 5)
	tree, err := Fit(d, TreeConfig{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		c := tree.Predict([]float64{a, b})
		return c >= 0 && c < 5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKFoldSplitPartition(t *testing.T) {
	for _, n := range []int{10, 37, 100} {
		for _, k := range []int{2, 5, 10} {
			folds := KFoldSplit(n, k, 1)
			seen := map[int]int{}
			for _, fold := range folds {
				for _, i := range fold {
					seen[i]++
				}
			}
			if len(seen) != n {
				t.Fatalf("n=%d k=%d: %d distinct indices", n, k, len(seen))
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("index %d appears %d times", i, c)
				}
			}
			for _, fold := range folds {
				if len(fold) < n/k || len(fold) > n/k+1 {
					t.Fatalf("fold size %d unbalanced for n=%d k=%d", len(fold), n, k)
				}
			}
		}
	}
}

func TestKFoldDeterministic(t *testing.T) {
	a := KFoldSplit(50, 10, 7)
	b := KFoldSplit(50, 10, 7)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("nondeterministic folds")
			}
		}
	}
}

func TestCrossValidateAccuracyOnSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := blobDataset(rng, 40, 3)
	cm, err := CrossValidate(d, TreeConfig{MaxDepth: 6}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Total() != int64(len(d.X)) {
		t.Errorf("confusion total %d != samples %d", cm.Total(), len(d.X))
	}
	if acc := cm.Accuracy(); acc < 0.95 {
		t.Errorf("CV accuracy %v on separable blobs", acc)
	}
}

func TestCrossValPredictCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := blobDataset(rng, 20, 2)
	preds, err := CrossValPredict(d, TreeConfig{MaxDepth: 5}, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(d.X) {
		t.Fatal("missing predictions")
	}
	correct := 0
	for i := range preds {
		if preds[i] == d.Y[i] {
			correct++
		}
	}
	if float64(correct)/float64(len(preds)) < 0.9 {
		t.Errorf("out-of-fold accuracy %v", float64(correct)/float64(len(preds)))
	}
}

func TestConfusionMatrixMetrics(t *testing.T) {
	cm := NewConfusionMatrix(4)
	cm.Add(0, 0)
	cm.Add(1, 1)
	cm.Add(2, 3) // off by one, overestimate
	cm.Add(3, 1) // off by two, underestimate
	if cm.Total() != 4 {
		t.Errorf("total %d", cm.Total())
	}
	if acc := cm.Accuracy(); acc != 0.5 {
		t.Errorf("accuracy %v", acc)
	}
	if ob1 := cm.OffByOneOfMisclassified(); ob1 != 0.5 {
		t.Errorf("off-by-one %v", ob1)
	}
	over, under := cm.OverUnder()
	if over != 1 || under != 1 {
		t.Errorf("over/under = %d/%d", over, under)
	}
	other := NewConfusionMatrix(4)
	other.Add(0, 0)
	cm.Merge(other)
	if cm.Total() != 5 || cm.Counts[0][0] != 2 {
		t.Error("merge failed")
	}
	if s := cm.String(); len(s) == 0 {
		t.Error("empty string rendering")
	}
}

func TestConfusionEdgeCases(t *testing.T) {
	cm := NewConfusionMatrix(3)
	if cm.Accuracy() != 0 {
		t.Error("empty accuracy should be 0")
	}
	if cm.OffByOneOfMisclassified() != 1 {
		t.Error("no misclassifications: off-by-one should be 1 (vacuous)")
	}
}

func TestGridSearch(t *testing.T) {
	points, best := GridSearch(
		[]int{5, 10},
		[]float64{0, 0.01},
		func(cfg TreeConfig) float64 { return float64(cfg.MaxDepth) - cfg.CCPAlpha },
	)
	if len(points) != 4 {
		t.Fatalf("%d grid points", len(points))
	}
	if best.MaxDepth != 10 || best.CCPAlpha != 0 {
		t.Errorf("best = %+v", best)
	}
}

func TestDefaultTreeConfigMatchesPaper(t *testing.T) {
	cfg := DefaultTreeConfig()
	if cfg.MaxDepth != 15 || cfg.CCPAlpha != 0.005 {
		t.Errorf("default config %+v, paper uses D=15, ccp=0.005", cfg)
	}
}

func TestGiniImpurity(t *testing.T) {
	if g := giniImpurity([]int{5, 5}, 10); g != 0.5 {
		t.Errorf("balanced binary gini %v", g)
	}
	if g := giniImpurity([]int{10, 0}, 10); g != 0 {
		t.Errorf("pure gini %v", g)
	}
	if g := giniImpurity([]int{0, 0}, 0); g != 0 {
		t.Errorf("empty gini %v", g)
	}
}

func TestSubsetIndependence(t *testing.T) {
	d := Dataset{X: [][]float64{{1}, {2}, {3}}, Y: []int{0, 1, 0}, NumClasses: 2}
	s := d.Subset([]int{2, 0})
	if len(s.X) != 2 || s.X[0][0] != 3 || s.Y[1] != 0 {
		t.Errorf("subset wrong: %+v", s)
	}
}
