package ml

import (
	"context"
	"fmt"
	"math/rand"
)

// Random forest: a bagging ensemble over the CART trees. The paper uses
// single decision trees; the forest exists as the natural future-work
// extension and powers the model-family ablation (does ensembling close any
// of the WISE-vs-oracle gap?).

// ForestConfig controls ensemble training.
type ForestConfig struct {
	Trees          int // ensemble size
	Tree           TreeConfig
	SampleFraction float64 // bootstrap sample size as a fraction of the dataset
}

// DefaultForestConfig returns a modest ensemble around the paper's tree
// configuration.
func DefaultForestConfig() ForestConfig {
	return ForestConfig{Trees: 15, Tree: DefaultTreeConfig(), SampleFraction: 0.8}
}

// Forest is a fitted bagging ensemble.
type Forest struct {
	Trees      []*Tree
	NumClasses int
}

// FitForest trains cfg.Trees CART trees on bootstrap resamples of the
// dataset (sampling with replacement, deterministic in seed).
func FitForest(d Dataset, cfg ForestConfig, seed int64) (*Forest, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(d.X) == 0 {
		return nil, fmt.Errorf("ml: empty dataset")
	}
	if cfg.Trees < 1 {
		cfg.Trees = 1
	}
	if cfg.SampleFraction <= 0 || cfg.SampleFraction > 1 {
		cfg.SampleFraction = 1
	}
	rng := rand.New(rand.NewSource(seed))
	n := len(d.X)
	sampleSize := int(cfg.SampleFraction * float64(n))
	if sampleSize < 1 {
		sampleSize = 1
	}
	f := &Forest{NumClasses: d.NumClasses}
	for t := 0; t < cfg.Trees; t++ {
		idx := make([]int, sampleSize)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		tree, err := Fit(d.Subset(idx), cfg.Tree)
		if err != nil {
			return nil, fmt.Errorf("ml: forest tree %d: %w", t, err)
		}
		f.Trees = append(f.Trees, tree)
	}
	return f, nil
}

// Predict returns the majority-vote class; ties break toward the lower
// class id (the more conservative, slower-speedup prediction).
func (f *Forest) Predict(x []float64) int {
	votes := make([]int, f.NumClasses)
	for _, tree := range f.Trees {
		votes[tree.Predict(x)]++
	}
	best := 0
	for c, v := range votes {
		if v > votes[best] {
			best = c
		}
	}
	return best
}

// CrossValPredictForest mirrors CrossValPredict for forests. Folds train
// concurrently; each fold's bootstrap RNG is seeded with seed+fold, so the
// parallel schedule reproduces the serial results exactly.
func CrossValPredictForest(d Dataset, cfg ForestConfig, k int, seed int64) ([]int, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := len(d.X)
	if n < 2 {
		return nil, fmt.Errorf("ml: need >= 2 samples, have %d", n)
	}
	preds := make([]int, n)
	folds := KFoldSplit(n, k, seed)
	err := forEachFold(context.Background(), folds, n, 0, func(fi int, trainIdx []int) error {
		forest, err := FitForest(d.Subset(trainIdx), cfg, seed+int64(fi))
		if err != nil {
			return err
		}
		for _, i := range folds[fi] {
			preds[i] = forest.Predict(d.X[i])
		}
		cvFolds.Inc()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return preds, nil
}
