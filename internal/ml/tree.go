// Package ml implements the machine-learning substrate of WISE from
// scratch: CART decision-tree classifiers with the Gini split criterion,
// maximum-depth limiting and minimal cost-complexity pruning (the two knobs
// the paper tunes in Table 4), plus k-fold cross-validation, confusion
// matrices, and grid search.
package ml

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"wise/internal/obs"
)

// Observability instruments (documented in OBSERVABILITY.md).
var (
	treesTrained   = obs.NewCounter("ml.trees_trained")
	treeFitSeconds = obs.NewHistogram("ml.tree_fit_seconds", nil)
	cvFolds        = obs.NewCounter("ml.cv_folds")
)

// Dataset is a design matrix with integer class labels in [0, NumClasses).
type Dataset struct {
	X            [][]float64
	Y            []int
	NumClasses   int
	FeatureNames []string // optional, used for model introspection
}

// Validate checks shape consistency, label ranges, and feature finiteness.
// Non-finite features are rejected here rather than tolerated downstream: a
// NaN compares false with everything, so it silently falls to one side of
// every split threshold and corrupts the learned tree with no error anywhere.
func (d Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("ml: %d samples vs %d labels", len(d.X), len(d.Y))
	}
	if d.NumClasses < 1 {
		return fmt.Errorf("ml: NumClasses = %d", d.NumClasses)
	}
	width := -1
	for i, x := range d.X {
		if width == -1 {
			width = len(x)
		}
		if len(x) != width {
			return fmt.Errorf("ml: sample %d has %d features, want %d", i, len(x), width)
		}
		if d.Y[i] < 0 || d.Y[i] >= d.NumClasses {
			return fmt.Errorf("ml: label %d out of range at sample %d", d.Y[i], i)
		}
		for j, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("ml: non-finite feature %g at sample %d, feature %d", v, i, j)
			}
		}
	}
	return nil
}

// Subset returns the dataset restricted to the given sample indices.
func (d Dataset) Subset(idx []int) Dataset {
	out := Dataset{NumClasses: d.NumClasses, FeatureNames: d.FeatureNames}
	out.X = make([][]float64, len(idx))
	out.Y = make([]int, len(idx))
	for i, j := range idx {
		out.X[i] = d.X[j]
		out.Y[i] = d.Y[j]
	}
	return out
}

// TreeConfig controls tree induction. The paper selects MaxDepth 15 and
// CCPAlpha 0.005 by grid search (Section 6.5).
type TreeConfig struct {
	MaxDepth       int
	MinSamplesLeaf int
	CCPAlpha       float64
}

// DefaultTreeConfig returns the paper's chosen configuration.
func DefaultTreeConfig() TreeConfig {
	return TreeConfig{MaxDepth: 15, MinSamplesLeaf: 1, CCPAlpha: 0.005}
}

// Node is one tree node; leaves have Left == nil.
type Node struct {
	Feature   int     `json:"feature"`
	Threshold float64 `json:"threshold"`
	Left      *Node   `json:"left,omitempty"`
	Right     *Node   `json:"right,omitempty"`
	Class     int     `json:"class"`
	Samples   int     `json:"samples"`
	Impurity  float64 `json:"impurity"`
	// counts holds per-class sample counts at this node (training only).
	counts []int
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Left == nil }

// Tree is a fitted CART classifier.
type Tree struct {
	Root         *Node    `json:"root"`
	NumClasses   int      `json:"num_classes"`
	FeatureNames []string `json:"feature_names,omitempty"`
}

// Fit grows a CART tree on the dataset with Gini splitting, then applies
// minimal cost-complexity pruning at cfg.CCPAlpha.
func Fit(d Dataset, cfg TreeConfig) (*Tree, error) {
	t0 := time.Now()
	defer func() {
		treesTrained.Inc()
		treeFitSeconds.ObserveDuration(time.Since(t0))
	}()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(d.X) == 0 {
		return nil, fmt.Errorf("ml: empty dataset")
	}
	if cfg.MaxDepth < 1 {
		cfg.MaxDepth = 1
	}
	if cfg.MinSamplesLeaf < 1 {
		cfg.MinSamplesLeaf = 1
	}
	idx := make([]int, len(d.X))
	for i := range idx {
		idx[i] = i
	}
	root := grow(d, idx, cfg, 0)
	tree := &Tree{Root: root, NumClasses: d.NumClasses, FeatureNames: d.FeatureNames}
	if cfg.CCPAlpha > 0 {
		tree.pruneCCP(cfg.CCPAlpha, len(d.X))
	}
	return tree, nil
}

// giniImpurity computes 1 - sum(p_k^2) from class counts.
func giniImpurity(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range counts {
		p := float64(c) / float64(total)
		sum += p * p
	}
	return 1 - sum
}

func classCounts(d Dataset, idx []int) []int {
	counts := make([]int, d.NumClasses)
	for _, i := range idx {
		counts[d.Y[i]]++
	}
	return counts
}

func argmax(counts []int) int {
	best := 0
	for i, c := range counts {
		if c > counts[best] {
			best = i
		}
	}
	return best
}

// grow recursively induces the tree on the samples in idx.
func grow(d Dataset, idx []int, cfg TreeConfig, depth int) *Node {
	counts := classCounts(d, idx)
	node := &Node{
		Class:    argmax(counts),
		Samples:  len(idx),
		Impurity: giniImpurity(counts, len(idx)),
		counts:   counts,
		Feature:  -1,
	}
	//lint:ignore floateq Gini impurity of a pure node is exactly 0 by construction
	if node.Impurity == 0 || depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinSamplesLeaf {
		return node
	}
	feature, threshold, gain := bestSplit(d, idx, counts, cfg)
	if gain <= 0 {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if d.X[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < cfg.MinSamplesLeaf || len(right) < cfg.MinSamplesLeaf {
		return node
	}
	node.Feature = feature
	node.Threshold = threshold
	node.Left = grow(d, left, cfg, depth+1)
	node.Right = grow(d, right, cfg, depth+1)
	return node
}

// bestSplit scans every feature and threshold, returning the split with the
// largest Gini impurity decrease. Thresholds are midpoints between adjacent
// distinct feature values in sorted order.
func bestSplit(d Dataset, idx []int, parentCounts []int, cfg TreeConfig) (feature int, threshold, gain float64) {
	n := len(idx)
	parentImp := giniImpurity(parentCounts, n)
	bestGain := 0.0
	bestFeature, bestThreshold := -1, 0.0
	if len(d.X) == 0 {
		return -1, 0, 0
	}
	nFeatures := len(d.X[0])
	order := make([]int, n)
	leftCounts := make([]int, d.NumClasses)
	for f := 0; f < nFeatures; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return d.X[order[a]][f] < d.X[order[b]][f] })
		for i := range leftCounts {
			leftCounts[i] = 0
		}
		nLeft := 0
		for k := 0; k < n-1; k++ {
			i := order[k]
			leftCounts[d.Y[i]]++
			nLeft++
			v, next := d.X[i][f], d.X[order[k+1]][f]
			if v == next { //lint:ignore floateq duplicate sorted feature values are bit-identical
				continue // not a valid threshold position
			}
			if nLeft < cfg.MinSamplesLeaf || n-nLeft < cfg.MinSamplesLeaf {
				continue
			}
			impL := giniImpurityLeft(leftCounts, nLeft)
			impR := giniImpurityRight(parentCounts, leftCounts, n-nLeft)
			weighted := (float64(nLeft)*impL + float64(n-nLeft)*impR) / float64(n)
			if g := parentImp - weighted; g > bestGain+1e-15 {
				bestGain = g
				bestFeature = f
				bestThreshold = v + (next-v)/2
				//lint:ignore floateq detects midpoint rounding collapse, which is bit-exact by nature
				if math.IsInf(bestThreshold, 0) || bestThreshold == next {
					bestThreshold = v
				}
			}
		}
	}
	return bestFeature, bestThreshold, bestGain
}

func giniImpurityLeft(left []int, n int) float64 { return giniImpurity(left, n) }

func giniImpurityRight(parent, left []int, n int) float64 {
	if n == 0 {
		return 0
	}
	sum := 0.0
	for k := range parent {
		p := float64(parent[k]-left[k]) / float64(n)
		sum += p * p
	}
	return 1 - sum
}

// Predict returns the predicted class for a feature vector.
func (t *Tree) Predict(x []float64) int {
	n := t.Root
	for !n.IsLeaf() {
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Class
}

// PredictBatch predicts classes for many samples.
func (t *Tree) PredictBatch(X [][]float64) []int {
	out := make([]int, len(X))
	for i, x := range X {
		out[i] = t.Predict(x)
	}
	return out
}

// Depth returns the maximum depth of the tree (a lone root has depth 0).
func (t *Tree) Depth() int { return nodeDepth(t.Root) }

func nodeDepth(n *Node) int {
	if n.IsLeaf() {
		return 0
	}
	l, r := nodeDepth(n.Left), nodeDepth(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Leaves returns the number of leaves.
func (t *Tree) Leaves() int { return countLeaves(t.Root) }

func countLeaves(n *Node) int {
	if n.IsLeaf() {
		return 1
	}
	return countLeaves(n.Left) + countLeaves(n.Right)
}

// Nodes returns the total node count.
func (t *Tree) Nodes() int { return countNodes(t.Root) }

func countNodes(n *Node) int {
	if n.IsLeaf() {
		return 1
	}
	return 1 + countNodes(n.Left) + countNodes(n.Right)
}

// MarshalJSON / UnmarshalJSON give trees a stable persistence format.
func (t *Tree) Marshal() ([]byte, error) { return json.Marshal(t) }

// UnmarshalTree parses a tree persisted with Marshal.
func UnmarshalTree(data []byte) (*Tree, error) {
	var t Tree
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, err
	}
	if t.Root == nil {
		return nil, fmt.Errorf("ml: tree without root")
	}
	return &t, nil
}

// PathStep is one decision on a root-to-leaf path.
type PathStep struct {
	Feature   int
	Threshold float64
	Value     float64 // the sample's feature value
	WentLeft  bool    // true when Value <= Threshold
}

// DecisionPath returns the sequence of decisions the tree takes for x,
// ending at the predicted leaf. Useful for explaining why a method was
// predicted into its speedup class.
func (t *Tree) DecisionPath(x []float64) []PathStep {
	var path []PathStep
	n := t.Root
	for !n.IsLeaf() {
		step := PathStep{
			Feature:   n.Feature,
			Threshold: n.Threshold,
			Value:     x[n.Feature],
			WentLeft:  x[n.Feature] <= n.Threshold,
		}
		path = append(path, step)
		if step.WentLeft {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return path
}
