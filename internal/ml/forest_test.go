package ml

import (
	"math/rand"
	"testing"
)

func TestForestBeatsChanceOnNoisyData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Dataset{NumClasses: 2}
	for i := 0; i < 500; i++ {
		x := rng.Float64()
		label := 0
		if x > 0.5 {
			label = 1
		}
		if rng.Float64() < 0.2 {
			label = 1 - label
		}
		d.X = append(d.X, []float64{x, rng.Float64(), rng.Float64()})
		d.Y = append(d.Y, label)
	}
	forest, err := FitForest(d, DefaultForestConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if forest.Predict([]float64{0.05, 0.5, 0.5}) != 0 {
		t.Error("clear class-0 sample misclassified")
	}
	if forest.Predict([]float64{0.95, 0.5, 0.5}) != 1 {
		t.Error("clear class-1 sample misclassified")
	}
}

func TestForestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := blobDataset(rng, 30, 3)
	a, err := FitForest(d, DefaultForestConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitForest(d, DefaultForestConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range d.X {
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("same seed, different forest")
		}
	}
}

func TestForestConfigClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := blobDataset(rng, 10, 2)
	f, err := FitForest(d, ForestConfig{Trees: 0, Tree: TreeConfig{MaxDepth: 3}, SampleFraction: -1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Trees) != 1 {
		t.Errorf("tree count = %d, want clamp to 1", len(f.Trees))
	}
}

func TestForestErrors(t *testing.T) {
	if _, err := FitForest(Dataset{NumClasses: 2}, DefaultForestConfig(), 1); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := CrossValPredictForest(Dataset{X: [][]float64{{1}}, Y: []int{0}, NumClasses: 1}, DefaultForestConfig(), 2, 1); err == nil {
		t.Error("single sample accepted")
	}
}

func TestCrossValPredictForest(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := blobDataset(rng, 30, 3)
	cfg := ForestConfig{Trees: 5, Tree: TreeConfig{MaxDepth: 6}, SampleFraction: 0.8}
	preds, err := CrossValPredictForest(d, cfg, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range preds {
		if preds[i] == d.Y[i] {
			correct++
		}
	}
	if float64(correct)/float64(len(preds)) < 0.9 {
		t.Errorf("forest out-of-fold accuracy %v on separable blobs", float64(correct)/float64(len(preds)))
	}
}
