package ml

import (
	"fmt"
	"math/rand"
)

// KFoldSplit partitions sample indices [0, n) into k disjoint folds after a
// deterministic shuffle with the given seed. Every index appears in exactly
// one fold; fold sizes differ by at most one.
func KFoldSplit(n, k int, seed int64) [][]int {
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	folds := make([][]int, k)
	for i, v := range idx {
		folds[i%k] = append(folds[i%k], v)
	}
	return folds
}

// CrossValidate runs k-fold cross-validation of a tree configuration on the
// dataset (the paper's evaluation protocol, k = 10) and returns the combined
// confusion matrix across all folds.
func CrossValidate(d Dataset, cfg TreeConfig, k int, seed int64) (*ConfusionMatrix, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := len(d.X)
	if n < 2 {
		return nil, fmt.Errorf("ml: need >= 2 samples for cross-validation, have %d", n)
	}
	folds := KFoldSplit(n, k, seed)
	cm := NewConfusionMatrix(d.NumClasses)
	inFold := make([]bool, n)
	for _, fold := range folds {
		for i := range inFold {
			inFold[i] = false
		}
		for _, i := range fold {
			inFold[i] = true
		}
		var trainIdx []int
		for i := 0; i < n; i++ {
			if !inFold[i] {
				trainIdx = append(trainIdx, i)
			}
		}
		tree, err := Fit(d.Subset(trainIdx), cfg)
		if err != nil {
			return nil, err
		}
		for _, i := range fold {
			cm.Add(d.Y[i], tree.Predict(d.X[i]))
		}
	}
	return cm, nil
}

// CrossValPredict returns out-of-fold predictions for every sample: sample i
// is predicted by the tree trained on the folds not containing i. This is
// how WISE's end-to-end speedup is evaluated without training-set leakage.
func CrossValPredict(d Dataset, cfg TreeConfig, k int, seed int64) ([]int, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := len(d.X)
	if n < 2 {
		return nil, fmt.Errorf("ml: need >= 2 samples, have %d", n)
	}
	preds := make([]int, n)
	folds := KFoldSplit(n, k, seed)
	inFold := make([]bool, n)
	for _, fold := range folds {
		for i := range inFold {
			inFold[i] = false
		}
		for _, i := range fold {
			inFold[i] = true
		}
		var trainIdx []int
		for i := 0; i < n; i++ {
			if !inFold[i] {
				trainIdx = append(trainIdx, i)
			}
		}
		tree, err := Fit(d.Subset(trainIdx), cfg)
		if err != nil {
			return nil, err
		}
		for _, i := range fold {
			preds[i] = tree.Predict(d.X[i])
		}
	}
	return preds, nil
}

// GridPoint is one (MaxDepth, CCPAlpha) combination with its metric value.
type GridPoint struct {
	MaxDepth float64
	CCPAlpha float64
	Metric   float64
}

// GridSearch evaluates metric over the cross product of depths and alphas
// (the paper's Table 4 protocol) and returns all points plus the best one by
// maximum metric.
func GridSearch(depths []int, alphas []float64, metric func(cfg TreeConfig) float64) (points []GridPoint, best GridPoint) {
	first := true
	for _, d := range depths {
		for _, a := range alphas {
			cfg := TreeConfig{MaxDepth: d, MinSamplesLeaf: 1, CCPAlpha: a}
			p := GridPoint{MaxDepth: float64(d), CCPAlpha: a, Metric: metric(cfg)}
			points = append(points, p)
			if first || p.Metric > best.Metric {
				best = p
				first = false
			}
		}
	}
	return points, best
}
