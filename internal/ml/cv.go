package ml

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// KFoldSplit partitions sample indices [0, n) into k disjoint folds after a
// deterministic shuffle with the given seed. Every index appears in exactly
// one fold; fold sizes differ by at most one.
func KFoldSplit(n, k int, seed int64) [][]int {
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	folds := make([][]int, k)
	for i, v := range idx {
		folds[i%k] = append(folds[i%k], v)
	}
	return folds
}

// trainComplement returns the sample indices outside fold fi, in ascending
// order — the training set for that fold.
func trainComplement(n int, folds [][]int, fi int) []int {
	inFold := make([]bool, n)
	for _, i := range folds[fi] {
		inFold[i] = true
	}
	trainIdx := make([]int, 0, n-len(folds[fi]))
	for i := 0; i < n; i++ {
		if !inFold[i] {
			trainIdx = append(trainIdx, i)
		}
	}
	return trainIdx
}

// forEachFold runs body(fi, trainIdx) for every fold on a pool of workers
// (0 = GOMAXPROCS, 1 = serial). Each fold's work is independent and each
// fold index is processed exactly once, so the parallel schedule produces
// results bit-for-bit identical to the serial loop as long as body writes
// only fold-local state. On error, the error of the lowest-indexed failing
// fold is returned — the same one the serial loop would have surfaced first.
// Cancelling ctx stops scheduling new folds; in-flight folds finish and the
// context error is returned (graceful-shutdown path for the CLIs).
func forEachFold(ctx context.Context, folds [][]int, n, workers int, body func(fi int, trainIdx []int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(folds) {
		workers = len(folds)
	}
	errs := make([]error, len(folds))
	if workers <= 1 {
		for fi := range folds {
			if ctx.Err() != nil {
				break
			}
			if errs[fi] = body(fi, trainComplement(n, folds, fi)); errs[fi] != nil {
				break
			}
		}
	} else {
		var next int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					if ctx.Err() != nil {
						return
					}
					fi := int(atomic.AddInt64(&next, 1)) - 1
					if fi >= len(folds) {
						return
					}
					errs[fi] = body(fi, trainComplement(n, folds, fi))
				}
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("ml: cross-validation interrupted: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CrossValidate runs k-fold cross-validation of a tree configuration on the
// dataset (the paper's evaluation protocol, k = 10) and returns the combined
// confusion matrix across all folds. Folds train concurrently on a worker
// pool; the result is bit-for-bit identical to a serial run (see
// CrossValidateWorkers).
func CrossValidate(d Dataset, cfg TreeConfig, k int, seed int64) (*ConfusionMatrix, error) {
	return CrossValidateWorkers(d, cfg, k, seed, 0)
}

// CrossValidateWorkers is CrossValidate with an explicit fold-level worker
// count (0 = GOMAXPROCS, 1 = serial). The fold split is deterministic in
// seed, each fold's tree induction touches only that fold's data, and the
// per-fold confusion matrices are merged in fold order, so every worker
// count yields the identical confusion matrix — enforced by a regression
// test.
func CrossValidateWorkers(d Dataset, cfg TreeConfig, k int, seed int64, workers int) (*ConfusionMatrix, error) {
	return CrossValidateCtx(context.Background(), d, cfg, k, seed, workers)
}

// CrossValidateCtx is CrossValidateWorkers with cancellation: when ctx is
// cancelled mid-validation, scheduling stops and the context error is
// returned (no partial confusion matrix).
func CrossValidateCtx(ctx context.Context, d Dataset, cfg TreeConfig, k int, seed int64, workers int) (*ConfusionMatrix, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := len(d.X)
	if n < 2 {
		return nil, fmt.Errorf("ml: need >= 2 samples for cross-validation, have %d", n)
	}
	folds := KFoldSplit(n, k, seed)
	perFold := make([]*ConfusionMatrix, len(folds))
	err := forEachFold(ctx, folds, n, workers, func(fi int, trainIdx []int) error {
		tree, err := Fit(d.Subset(trainIdx), cfg)
		if err != nil {
			return err
		}
		cm := NewConfusionMatrix(d.NumClasses)
		for _, i := range folds[fi] {
			cm.Add(d.Y[i], tree.Predict(d.X[i]))
		}
		perFold[fi] = cm
		cvFolds.Inc()
		return nil
	})
	if err != nil {
		return nil, err
	}
	cm := NewConfusionMatrix(d.NumClasses)
	// Merging k small matrices is microseconds of work; cancellation is
	// handled inside forEachFold, where the expensive per-fold fits run.
	//lint:ignore ctxpropagate merge loop is trivially short; forEachFold already honors ctx
	for _, f := range perFold {
		cm.Merge(f)
	}
	return cm, nil
}

// CrossValPredict returns out-of-fold predictions for every sample: sample i
// is predicted by the tree trained on the folds not containing i. This is
// how WISE's end-to-end speedup is evaluated without training-set leakage.
// Folds train concurrently; results are identical to a serial run.
func CrossValPredict(d Dataset, cfg TreeConfig, k int, seed int64) ([]int, error) {
	return CrossValPredictWorkers(d, cfg, k, seed, 0)
}

// CrossValPredictWorkers is CrossValPredict with an explicit fold-level
// worker count (0 = GOMAXPROCS, 1 = serial). Each fold writes a disjoint
// set of prediction slots, so every worker count yields identical output.
func CrossValPredictWorkers(d Dataset, cfg TreeConfig, k int, seed int64, workers int) ([]int, error) {
	return CrossValPredictCtx(context.Background(), d, cfg, k, seed, workers)
}

// CrossValPredictCtx is CrossValPredictWorkers with cancellation: when ctx
// is cancelled mid-run, scheduling stops and the context error is returned
// (no partial prediction vector).
func CrossValPredictCtx(ctx context.Context, d Dataset, cfg TreeConfig, k int, seed int64, workers int) ([]int, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := len(d.X)
	if n < 2 {
		return nil, fmt.Errorf("ml: need >= 2 samples, have %d", n)
	}
	preds := make([]int, n)
	folds := KFoldSplit(n, k, seed)
	err := forEachFold(ctx, folds, n, workers, func(fi int, trainIdx []int) error {
		tree, err := Fit(d.Subset(trainIdx), cfg)
		if err != nil {
			return err
		}
		for _, i := range folds[fi] {
			preds[i] = tree.Predict(d.X[i])
		}
		cvFolds.Inc()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return preds, nil
}

// GridPoint is one (MaxDepth, CCPAlpha) combination with its metric value.
type GridPoint struct {
	MaxDepth float64
	CCPAlpha float64
	Metric   float64
}

// GridSearch evaluates metric over the cross product of depths and alphas
// (the paper's Table 4 protocol) and returns all points plus the best one by
// maximum metric.
func GridSearch(depths []int, alphas []float64, metric func(cfg TreeConfig) float64) (points []GridPoint, best GridPoint) {
	first := true
	for _, d := range depths {
		for _, a := range alphas {
			cfg := TreeConfig{MaxDepth: d, MinSamplesLeaf: 1, CCPAlpha: a}
			p := GridPoint{MaxDepth: float64(d), CCPAlpha: a, Metric: metric(cfg)}
			points = append(points, p)
			if first || p.Metric > best.Metric {
				best = p
				first = false
			}
		}
	}
	return points, best
}
