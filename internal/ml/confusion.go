package ml

import (
	"fmt"
	"strings"
)

// ConfusionMatrix accumulates (actual, predicted) counts for a classifier
// with a fixed class count. Rows are actual classes, columns predicted —
// the layout of the paper's Figure 10.
type ConfusionMatrix struct {
	Counts [][]int64
}

// NewConfusionMatrix returns an empty n x n confusion matrix.
func NewConfusionMatrix(n int) *ConfusionMatrix {
	c := &ConfusionMatrix{Counts: make([][]int64, n)}
	for i := range c.Counts {
		c.Counts[i] = make([]int64, n)
	}
	return c
}

// Add records one observation.
func (c *ConfusionMatrix) Add(actual, predicted int) {
	c.Counts[actual][predicted]++
}

// Merge accumulates another matrix of the same shape (used to combine the
// per-fold matrices of cross-validation).
func (c *ConfusionMatrix) Merge(o *ConfusionMatrix) {
	for i := range c.Counts {
		for j := range c.Counts[i] {
			c.Counts[i][j] += o.Counts[i][j]
		}
	}
}

// Total returns the number of recorded observations.
func (c *ConfusionMatrix) Total() int64 {
	var t int64
	for i := range c.Counts {
		for _, v := range c.Counts[i] {
			t += v
		}
	}
	return t
}

// Accuracy is the fraction of observations on the diagonal.
func (c *ConfusionMatrix) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	var diag int64
	for i := range c.Counts {
		diag += c.Counts[i][i]
	}
	return float64(diag) / float64(t)
}

// OffByOneOfMisclassified is the fraction of misclassified observations
// whose predicted class is adjacent to the actual one — the paper's
// "distance of only one from the correct class" statistic.
func (c *ConfusionMatrix) OffByOneOfMisclassified() float64 {
	var wrong, near int64
	for i := range c.Counts {
		for j, v := range c.Counts[i] {
			if i == j {
				continue
			}
			wrong += v
			if j == i-1 || j == i+1 {
				near += v
			}
		}
	}
	if wrong == 0 {
		return 1
	}
	return float64(near) / float64(wrong)
}

// OverUnder returns the observation counts in the upper triangle (speedup
// overestimated) and lower triangle (underestimated). Classes are ordered
// slow-to-fast, so predicted > actual means the model promised more speedup
// than was delivered.
func (c *ConfusionMatrix) OverUnder() (over, under int64) {
	for i := range c.Counts {
		for j, v := range c.Counts[i] {
			switch {
			case j > i:
				over += v
			case j < i:
				under += v
			}
		}
	}
	return over, under
}

// String renders the matrix with row/column headers.
func (c *ConfusionMatrix) String() string {
	var b strings.Builder
	n := len(c.Counts)
	fmt.Fprintf(&b, "actual\\pred")
	for j := 0; j < n; j++ {
		fmt.Fprintf(&b, "%8d", j)
	}
	b.WriteByte('\n')
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%11d", i)
		for j := 0; j < n; j++ {
			fmt.Fprintf(&b, "%8d", c.Counts[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
