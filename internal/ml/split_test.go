package ml

import (
	"reflect"
	"testing"
)

func TestHoldoutSplitDeterministicAndDisjoint(t *testing.T) {
	t1, v1 := HoldoutSplit(20, 0.25, 7)
	t2, v2 := HoldoutSplit(20, 0.25, 7)
	if !reflect.DeepEqual(t1, t2) || !reflect.DeepEqual(v1, v2) {
		t.Fatalf("same inputs gave different splits: %v/%v vs %v/%v", t1, v1, t2, v2)
	}
	if len(v1) != 5 || len(t1) != 15 {
		t.Fatalf("split sizes = %d train / %d val, want 15/5", len(t1), len(v1))
	}
	seen := make(map[int]bool)
	for _, i := range append(append([]int(nil), t1...), v1...) {
		if i < 0 || i >= 20 || seen[i] {
			t.Fatalf("index %d out of range or duplicated", i)
		}
		seen[i] = true
	}
	if len(seen) != 20 {
		t.Fatalf("split covers %d of 20 indices", len(seen))
	}

	t3, v3 := HoldoutSplit(20, 0.25, 8)
	if reflect.DeepEqual(v1, v3) && reflect.DeepEqual(t1, t3) {
		t.Fatal("different seeds gave the identical split (possible but astronomically unlikely)")
	}
}

func TestHoldoutSplitEdgeCases(t *testing.T) {
	if tr, v := HoldoutSplit(0, 0.5, 1); tr != nil || v != nil {
		t.Fatalf("n=0: got %v/%v, want nil/nil", tr, v)
	}
	if tr, v := HoldoutSplit(1, 0.5, 1); len(tr)+len(v) != 1 {
		t.Fatalf("n=1: got %v/%v", tr, v)
	}
	// Both sides stay non-empty for n >= 2 at the extremes.
	for _, frac := range []float64{-1, 0, 0.001, 0.999, 1, 2} {
		tr, v := HoldoutSplit(2, frac, 3)
		if len(tr) != 1 || len(v) != 1 {
			t.Fatalf("n=2 frac=%v: got %d/%d, want 1/1", frac, len(tr), len(v))
		}
	}
}
