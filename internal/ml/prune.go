package ml

// Minimal cost-complexity pruning (Breiman et al.), matching scikit-learn's
// ccp_alpha semantics: repeatedly collapse the internal node with the
// smallest effective alpha
//
//	g(t) = (R(t) - R(T_t)) / (|leaves(T_t)| - 1)
//
// while that alpha does not exceed the configured threshold, where R is the
// resubstitution misclassification cost weighted by sample fraction.

// pruneCCP prunes the tree in place with threshold alpha; total is the
// training-set size used to weight node error rates.
func (t *Tree) pruneCCP(alpha float64, total int) {
	if total <= 0 {
		return
	}
	for {
		node, g := weakestLink(t.Root, total)
		if node == nil || g > alpha {
			return
		}
		// Collapse the subtree into a leaf.
		node.Left = nil
		node.Right = nil
		node.Feature = -1
		node.Threshold = 0
	}
}

// nodeError is the weighted resubstitution error R(t) of the node acting as
// a leaf: fraction of all training samples that pass through t and would be
// misclassified by its majority class.
func nodeError(n *Node, total int) float64 {
	if len(n.counts) == 0 {
		// Deserialized trees lack counts; treat as unprunable.
		return 0
	}
	wrong := n.Samples - n.counts[n.Class]
	return float64(wrong) / float64(total)
}

// subtreeError computes R(T_t): the summed weighted error of the subtree's
// leaves; leaves also reports the leaf count.
func subtreeError(n *Node, total int) (err float64, leaves int) {
	if n.IsLeaf() {
		return nodeError(n, total), 1
	}
	le, ll := subtreeError(n.Left, total)
	re, rl := subtreeError(n.Right, total)
	return le + re, ll + rl
}

// weakestLink finds the internal node with minimal effective alpha.
func weakestLink(root *Node, total int) (*Node, float64) {
	var best *Node
	bestG := 0.0
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			return
		}
		subErr, leaves := subtreeError(n, total)
		if leaves > 1 {
			g := (nodeError(n, total) - subErr) / float64(leaves-1)
			if best == nil || g < bestG {
				best = n
				bestG = g
			}
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(root)
	return best, bestG
}
