package ml

import (
	"math/rand"
	"reflect"
	"testing"
)

// The parallel fold scheduler must be invisible in the results: any worker
// count has to reproduce the serial (workers=1) confusion matrix and
// out-of-fold predictions bit for bit. This is the regression guard for
// forEachFold's ordering guarantees.

func TestCrossValidateParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d := blobDataset(rng, 60, 4)
	cfg := TreeConfig{MaxDepth: 8, MinSamplesLeaf: 1, CCPAlpha: 0.001}

	serial, err := CrossValidateWorkers(d, cfg, 10, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 0} {
		par, err := CrossValidateWorkers(d, cfg, 10, 3, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(par.Counts, serial.Counts) {
			t.Errorf("workers=%d confusion matrix differs from serial:\nserial:\n%s\nparallel:\n%s",
				workers, serial, par)
		}
	}
}

func TestCrossValPredictParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	d := blobDataset(rng, 45, 3)
	cfg := TreeConfig{MaxDepth: 6, MinSamplesLeaf: 1}

	serial, err := CrossValPredictWorkers(d, cfg, 9, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		par, err := CrossValPredictWorkers(d, cfg, 9, 5, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(par, serial) {
			t.Errorf("workers=%d predictions differ from serial\nserial:   %v\nparallel: %v",
				workers, serial, par)
		}
	}
}

func TestCrossValidateWorkersRepeatable(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d := blobDataset(rng, 40, 3)
	cfg := TreeConfig{MaxDepth: 6}
	a, err := CrossValidateWorkers(d, cfg, 8, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidateWorkers(d, cfg, 8, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Counts, b.Counts) {
		t.Error("two parallel runs with the same seed disagree")
	}
}
