package ml

import "math/rand"

// HoldoutSplit partitions the indices 0..n-1 into a training set and a
// held-out validation set, deterministically in (n, valFrac, seed). The
// validation set gets round(n*valFrac) indices, clamped so that — whenever
// n >= 2 — both sides are non-empty. Both slices are returned in ascending
// order, so downstream dataset assembly is order-stable.
//
// The canary gate of the serving feedback loop (internal/serve) scores a
// candidate model against the serving one on exactly this split of the
// accumulated shadow labels; determinism here is what makes a promotion
// decision reproducible from the label set alone.
func HoldoutSplit(n int, valFrac float64, seed int64) (train, val []int) {
	if n <= 0 {
		return nil, nil
	}
	if valFrac < 0 {
		valFrac = 0
	}
	if valFrac > 1 {
		valFrac = 1
	}
	nVal := int(float64(n)*valFrac + 0.5)
	if n >= 2 {
		if nVal == 0 {
			nVal = 1
		}
		if nVal == n {
			nVal = n - 1
		}
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	inVal := make([]bool, n)
	for _, i := range perm[:nVal] {
		inVal[i] = true
	}
	train = make([]int, 0, n-nVal)
	val = make([]int, 0, nVal)
	for i := 0; i < n; i++ {
		if inVal[i] {
			val = append(val, i)
		} else {
			train = append(train, i)
		}
	}
	return train, val
}
