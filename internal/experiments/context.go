// Package experiments contains one driver per table and figure of the WISE
// paper's evaluation (Fig. 1-13, Table 4, the Section 6.4 inspector-executor
// comparison), plus the DESIGN.md ablations and the feature-importance
// report. Every driver emits a Table with the same rows or series the paper
// reports, computed on the scaled corpus and machine model (see DESIGN.md
// for the per-experiment index and the expected reproduction quality:
// shapes and orderings rather than absolute Skylake numbers). A shared
// Context carries the labeled corpus so the expensive labeling pass runs
// once per harness invocation; corpus generation and labeling are
// instrumented with internal/obs spans ("corpus" with children "gen" and
// "label") so wise-bench -metrics can account for where the time goes.
package experiments

import (
	"context"
	"sort"

	"wise/internal/costmodel"
	"wise/internal/features"
	"wise/internal/gen"
	"wise/internal/kernels"
	"wise/internal/machine"
	"wise/internal/ml"
	"wise/internal/obs"
	"wise/internal/perf"
)

// Context carries the labeled corpus shared by most experiments, so the
// expensive labeling pass (cache simulation of 29 methods per matrix) runs
// once per invocation of the harness.
type Context struct {
	Mach      machine.Machine
	Estimator *costmodel.Estimator
	Space     []kernels.Method
	CorpusCfg gen.CorpusConfig
	TreeCfg   ml.TreeConfig
	Folds     int
	Seed      int64

	Labels []perf.MatrixLabels // full corpus: science-like first, then random

	// Quarantined lists matrices excluded from Labels because their labeling
	// attempt panicked or overran its deadline (see perf.LabelCorpusRun);
	// empty on a healthy run.
	Quarantined []perf.QuarantinedMatrix

	// Resumed counts matrices restored from the labeling checkpoint rather
	// than relabeled.
	Resumed int
}

// ContextConfig selects the corpus scale, labeling parallelism, and
// fault-tolerance knobs.
type ContextConfig struct {
	Corpus  gen.CorpusConfig
	Workers int

	// Checkpoint enables labeling checkpoint/resume through
	// perf.LabelCorpusRun: completed labels are flushed to this path and a
	// rerun resumes from it. Empty disables checkpointing.
	Checkpoint string
}

// DefaultContextConfig labels the default scaled corpus.
func DefaultContextConfig() ContextConfig {
	return ContextConfig{Corpus: gen.DefaultCorpusConfig()}
}

// SmokeContextConfig is a minimal corpus for tests: small matrices, every
// class represented.
func SmokeContextConfig() ContextConfig {
	return ContextConfig{
		Corpus: gen.CorpusConfig{
			Seed:      1,
			RowScales: []float64{9, 11, 13},
			Degrees:   []float64{4, 16},
			MaxNNZ:    1 << 21,
			SciCount:  10,
		},
		Workers: 0,
	}
}

// NewContextFromLabels wraps an already-labeled corpus (e.g. loaded from a
// perf.SaveLabels file) in a Context, skipping the expensive labeling pass.
func NewContextFromLabels(labels []perf.MatrixLabels) *Context {
	mach := machine.Scaled()
	return &Context{
		Mach:      mach,
		Estimator: costmodel.New(mach),
		Space:     kernels.ModelSpace(mach),
		TreeCfg:   ml.DefaultTreeConfig(),
		Folds:     10,
		Seed:      1,
		Labels:    labels,
	}
}

// NewContext generates and labels the corpus, recording a "corpus" obs span
// with "gen" and "label" children so metrics snapshots attribute the setup
// cost per stage.
func NewContext(cfg ContextConfig) *Context {
	c, err := NewContextCtx(context.Background(), cfg)
	if err != nil {
		// Impossible without cancellation or a checkpoint (cfg.Checkpoint
		// I/O is the only other error source, and the caller opted into it).
		panic("experiments: " + err.Error())
	}
	return c
}

// NewContextCtx is NewContext with cancellation and fault tolerance: ctx
// cancellation (SIGINT/SIGTERM) interrupts labeling after a checkpoint
// flush and surfaces perf.ErrInterrupted; quarantined matrices are dropped
// from Labels and reported on the Context.
func NewContextCtx(ctx context.Context, cfg ContextConfig) (*Context, error) {
	mach := machine.Scaled()
	c := &Context{
		Mach:      mach,
		Estimator: costmodel.New(mach),
		Space:     kernels.ModelSpace(mach),
		CorpusCfg: cfg.Corpus,
		TreeCfg:   ml.DefaultTreeConfig(),
		Folds:     10,
		Seed:      1,
	}
	span := obs.Begin("corpus")
	defer span.End()
	genSpan := span.Child("gen")
	corpus := gen.Corpus(cfg.Corpus)
	genSpan.End()
	labelSpan := span.Child("label")
	defer labelSpan.End()
	run, err := perf.LabelCorpusRun(ctx, perf.LabelConfig{
		Estimator:  c.Estimator,
		Space:      c.Space,
		Features:   features.DefaultConfig(),
		Workers:    cfg.Workers,
		Checkpoint: cfg.Checkpoint,
	}, corpus)
	c.Labels = run.Labels
	c.Quarantined = run.Quarantined
	c.Resumed = run.Resumed
	if err != nil {
		return c, err
	}
	return c, nil
}

// Science returns the science-like (SuiteSparse stand-in) subset.
func (c *Context) Science() []perf.MatrixLabels {
	var out []perf.MatrixLabels
	for _, l := range c.Labels {
		if l.Class == gen.ClassSci {
			out = append(out, l)
		}
	}
	return out
}

// Random returns the RMAT/RGG subset.
func (c *Context) Random() []perf.MatrixLabels {
	var out []perf.MatrixLabels
	for _, l := range c.Labels {
		if l.Class != gen.ClassSci {
			out = append(out, l)
		}
	}
	return out
}

// methodIndex finds a method in the space, panicking if absent (the space is
// a fixed grid; a miss is a programming error).
func (c *Context) methodIndex(m kernels.Method) int {
	for i, s := range c.Space {
		if s == m {
			return i
		}
	}
	panic("experiments: method not in space: " + m.String())
}

// fastestVectorized returns, for one matrix, the index of its fastest
// non-CSR method and of its fastest method overall.
func fastestIndices(l perf.MatrixLabels) (bestAny, bestVec int) {
	bestAny, bestVec = 0, -1
	for i := range l.Cycles {
		if l.Cycles[i] < l.Cycles[bestAny] {
			bestAny = i
		}
		if l.Methods[i].Kind != kernels.CSR {
			if bestVec == -1 || l.Cycles[i] < l.Cycles[bestVec] {
				bestVec = i
			}
		}
	}
	return bestAny, bestVec
}

// sortByFastestKind orders matrices by the family of their fastest method
// (the grouping of the paper's Figure 2 x-axis), then by name.
func sortByFastestKind(labels []perf.MatrixLabels) []perf.MatrixLabels {
	out := append([]perf.MatrixLabels(nil), labels...)
	sort.SliceStable(out, func(a, b int) bool {
		ba, _ := fastestIndices(out[a])
		bb, _ := fastestIndices(out[b])
		ka, kb := out[a].Methods[ba].Kind, out[b].Methods[bb].Kind
		if ka != kb {
			return ka < kb
		}
		return out[a].Name < out[b].Name
	})
	return out
}
