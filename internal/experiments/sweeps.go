package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"wise/internal/features"
	"wise/internal/gen"
	"wise/internal/perf"
)

// SweepConfig controls the Figure 5/6 grids: the cross product of row scales
// and average degrees, for a pair of generator classes.
type SweepConfig struct {
	RowScales []float64
	Degrees   []float64
	MaxNNZ    int64
	Seed      int64
}

// DefaultSweepConfig mirrors the paper's grid at scaled size: the LLC
// crossover (paper rows 2^22) sits in the middle of the row range.
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{
		RowScales: []float64{10, 11, 12, 13, 14, 15},
		Degrees:   []float64{4, 8, 16, 32, 64, 128},
		MaxNNZ:    1 << 22,
		Seed:      7,
	}
}

// SmokeSweepConfig is a minimal grid for tests.
func SmokeSweepConfig() SweepConfig {
	return SweepConfig{
		RowScales: []float64{9, 12},
		Degrees:   []float64{4, 16},
		MaxNNZ:    1 << 20,
		Seed:      7,
	}
}

// sweep labels the grid for one class and emits (fastest method, speedup
// over best CSR) per point.
func sweep(ctx *Context, t *Table, class gen.Class, cfg SweepConfig) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, deg := range cfg.Degrees {
		for _, rs := range cfg.RowScales {
			rows := int(math.Round(math.Pow(2, rs)))
			if int64(deg*float64(rows)) > cfg.MaxNNZ {
				continue
			}
			var m = gen.RMATRows(rng, rows, deg, gen.RMATClassParams[class])
			m = gen.CapRowDegree(rng, m, hubCapFor(m.NNZ()))
			labels := perf.LabelMatrix(perf.LabelConfig{
				Estimator: ctx.Estimator,
				Space:     ctx.Space,
				Features:  features.DefaultConfig(),
			}, gen.Labeled{Name: fmt.Sprintf("%s_r%g_d%g", class, rs, deg), Class: class, M: m})
			bestAny, _ := fastestIndices(labels)
			t.AddRow(
				string(class),
				fmt.Sprintf("2^%g", rs),
				fmt.Sprintf("%g", deg),
				labels.Methods[bestAny].Kind.String(),
				fmt.Sprintf("%.3f", labels.BestCSRCycles/labels.Cycles[bestAny]),
			)
		}
	}
}

func hubCapFor(nnz int) int {
	cap := nnz / 500
	if cap < 32 {
		cap = 32
	}
	return cap
}

// Fig5 reproduces Figure 5: fastest method and its speedup over best CSR
// across (#rows x avg nonzeros/row) grids for the LowSkew and HighSkew RMAT
// classes.
func Fig5(ctx *Context, cfg SweepConfig) *Table {
	t := &Table{
		ID:     "fig5",
		Title:  "Fastest method and speedup by matrix size, LowSkew vs HighSkew",
		Header: []string{"class", "rows", "nnz/row", "fastest", "speedup_vs_bestCSR"},
	}
	sweep(ctx, t, gen.ClassLS, cfg)
	sweep(ctx, t, gen.ClassHS, cfg)
	renderSweepGrids(t)
	t.Note("paper: LAV family and Sell-c-R dominate; LAV wins when rows exceed the LLC (scaled: rows > 2^13) and nnz/row >= 16; Sell-c-R wins small low-skew matrices")
	return t
}

// Fig6 reproduces Figure 6: the same grids for the LowLoc and HighLoc
// classes.
func Fig6(ctx *Context, cfg SweepConfig) *Table {
	t := &Table{
		ID:     "fig6",
		Title:  "Fastest method and speedup by matrix size, LowLoc vs HighLoc",
		Header: []string{"class", "rows", "nnz/row", "fastest", "speedup_vs_bestCSR"},
	}
	sweep(ctx, t, gen.ClassLL, cfg)
	sweep(ctx, t, gen.ClassHL, cfg)
	renderSweepGrids(t)
	t.Note("paper: Sell-c-sigma fastest for HighLoc everywhere; for LowLoc it yields to LAV at high nnz/row; speedups larger for HighLoc")
	return t
}
