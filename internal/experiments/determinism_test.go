package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"wise/internal/core"
	"wise/internal/features"
)

// TestEndToEndDeterminism is the regression gate behind the determinism
// lint analyzer: two full pipeline runs — corpus generation, parallel
// labeling, training, k-fold cross-validation — from the same seed must
// produce byte-identical saved models and identical confusion matrices.
// Any unseeded randomness or order-dependent parallel reduction introduced
// anywhere in the pipeline shows up here as a diff.
func TestEndToEndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full double pipeline run")
	}
	ctxA := getCtx(t)
	// Second, completely independent run of the same config (including the
	// parallel labeling pass with default worker count).
	ctxB := NewContext(SmokeContextConfig())
	ctxB.Folds = ctxA.Folds

	if len(ctxA.Labels) != len(ctxB.Labels) {
		t.Fatalf("corpus size drift: %d vs %d matrices", len(ctxA.Labels), len(ctxB.Labels))
	}
	for i := range ctxA.Labels {
		if !reflect.DeepEqual(ctxA.Labels[i].Classes, ctxB.Labels[i].Classes) {
			t.Errorf("matrix %d: speedup classes differ between runs", i)
		}
		if !reflect.DeepEqual(ctxA.Labels[i].Features.Values, ctxB.Labels[i].Features.Values) {
			t.Errorf("matrix %d: feature vectors differ between runs", i)
		}
	}

	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.json")
	pathB := filepath.Join(dir, "b.json")
	for _, run := range []struct {
		ctx  *Context
		path string
	}{{ctxA, pathA}, {ctxB, pathB}} {
		w, err := core.Train(run.ctx.Labels, run.ctx.TreeCfg, features.DefaultConfig(), run.ctx.Mach)
		if err != nil {
			t.Fatalf("training: %v", err)
		}
		if err := w.Save(run.path); err != nil {
			t.Fatalf("saving: %v", err)
		}
	}
	bytesA, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	bytesB, err := os.ReadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytesA, bytesB) {
		t.Errorf("saved models are not byte-identical (%d vs %d bytes)", len(bytesA), len(bytesB))
	}

	// Cross-validation uses a parallel fold runner; its confusion matrix
	// must not depend on worker scheduling.
	for _, mi := range []int{0, len(ctxA.Labels[0].Methods) / 2} {
		cmA, err := core.ConfusionForMethod(ctxA.Labels, mi, ctxA.TreeCfg, ctxA.Folds, ctxA.Seed)
		if err != nil {
			t.Fatalf("CV run A method %d: %v", mi, err)
		}
		cmB, err := core.ConfusionForMethod(ctxB.Labels, mi, ctxB.TreeCfg, ctxB.Folds, ctxB.Seed)
		if err != nil {
			t.Fatalf("CV run B method %d: %v", mi, err)
		}
		if !reflect.DeepEqual(cmA.Counts, cmB.Counts) {
			t.Errorf("method %d: CV confusion matrices differ between runs:\n%v\nvs\n%v",
				mi, cmA.Counts, cmB.Counts)
		}
	}
}
