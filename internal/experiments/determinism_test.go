package experiments

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"wise/internal/core"
	"wise/internal/features"
	"wise/internal/perf"
	"wise/internal/resilience/faultinject"
)

// TestEndToEndDeterminism is the regression gate behind the determinism
// lint analyzer: two full pipeline runs — corpus generation, parallel
// labeling, training, k-fold cross-validation — from the same seed must
// produce byte-identical saved models and identical confusion matrices.
// Any unseeded randomness or order-dependent parallel reduction introduced
// anywhere in the pipeline shows up here as a diff.
func TestEndToEndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full double pipeline run")
	}
	ctxA := getCtx(t)
	// Second, completely independent run of the same config (including the
	// parallel labeling pass with default worker count).
	ctxB := NewContext(SmokeContextConfig())
	ctxB.Folds = ctxA.Folds

	if len(ctxA.Labels) != len(ctxB.Labels) {
		t.Fatalf("corpus size drift: %d vs %d matrices", len(ctxA.Labels), len(ctxB.Labels))
	}
	for i := range ctxA.Labels {
		if !reflect.DeepEqual(ctxA.Labels[i].Classes, ctxB.Labels[i].Classes) {
			t.Errorf("matrix %d: speedup classes differ between runs", i)
		}
		if !reflect.DeepEqual(ctxA.Labels[i].Features.Values, ctxB.Labels[i].Features.Values) {
			t.Errorf("matrix %d: feature vectors differ between runs", i)
		}
	}

	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.json")
	pathB := filepath.Join(dir, "b.json")
	for _, run := range []struct {
		ctx  *Context
		path string
	}{{ctxA, pathA}, {ctxB, pathB}} {
		w, err := core.Train(run.ctx.Labels, run.ctx.TreeCfg, features.DefaultConfig(), run.ctx.Mach)
		if err != nil {
			t.Fatalf("training: %v", err)
		}
		if err := w.Save(run.path); err != nil {
			t.Fatalf("saving: %v", err)
		}
	}
	bytesA, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	bytesB, err := os.ReadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytesA, bytesB) {
		t.Errorf("saved models are not byte-identical (%d vs %d bytes)", len(bytesA), len(bytesB))
	}

	// Cross-validation uses a parallel fold runner; its confusion matrix
	// must not depend on worker scheduling.
	for _, mi := range []int{0, len(ctxA.Labels[0].Methods) / 2} {
		cmA, err := core.ConfusionForMethod(ctxA.Labels, mi, ctxA.TreeCfg, ctxA.Folds, ctxA.Seed)
		if err != nil {
			t.Fatalf("CV run A method %d: %v", mi, err)
		}
		cmB, err := core.ConfusionForMethod(ctxB.Labels, mi, ctxB.TreeCfg, ctxB.Folds, ctxB.Seed)
		if err != nil {
			t.Fatalf("CV run B method %d: %v", mi, err)
		}
		if !reflect.DeepEqual(cmA.Counts, cmB.Counts) {
			t.Errorf("method %d: CV confusion matrices differ between runs:\n%v\nvs\n%v",
				mi, cmA.Counts, cmB.Counts)
		}
	}
}

// TestCheckpointResumeDeterminism extends the end-to-end determinism gate
// across a fault boundary (RESILIENCE.md): a pipeline run interrupted
// mid-labeling and resumed from its checkpoint must train byte-identical
// models to the uninterrupted run above. Checkpoint/resume must be
// invisible to every downstream artifact.
func TestCheckpointResumeDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	ref := getCtx(t)

	ckpt := filepath.Join(t.TempDir(), "labels.ckpt")
	cfg := SmokeContextConfig()
	cfg.Checkpoint = ckpt

	if err := faultinject.Configure("perf.label.interrupt:error:after=3", 1); err != nil {
		t.Fatal(err)
	}
	interrupted, err := NewContextCtx(context.Background(), cfg)
	faultinject.Disable()
	if !errors.Is(err, perf.ErrInterrupted) {
		t.Fatalf("interrupted run error = %v, want perf.ErrInterrupted", err)
	}
	if len(interrupted.Labels) >= len(ref.Labels) {
		t.Fatalf("interrupt was not partial: %d of %d labels", len(interrupted.Labels), len(ref.Labels))
	}

	resumed, err := NewContextCtx(context.Background(), cfg)
	if err != nil {
		t.Fatalf("resume run: %v", err)
	}
	if resumed.Resumed == 0 {
		t.Error("resume run did not report resumed matrices")
	}

	dir := t.TempDir()
	paths := make([]string, 2)
	for i, c := range []*Context{ref, resumed} {
		w, err := core.Train(c.Labels, c.TreeCfg, features.DefaultConfig(), c.Mach)
		if err != nil {
			t.Fatalf("training: %v", err)
		}
		paths[i] = filepath.Join(dir, []string{"ref.json", "resumed.json"}[i])
		if err := w.Save(paths[i]); err != nil {
			t.Fatalf("saving: %v", err)
		}
	}
	refBytes, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refBytes, gotBytes) {
		t.Errorf("models after checkpoint-resume are not byte-identical to the uninterrupted run (%d vs %d bytes)",
			len(gotBytes), len(refBytes))
	}
}
