package experiments

import (
	"fmt"
	"sort"

	"wise/internal/core"
	"wise/internal/features"
)

// FeatureImportance trains the full model set and reports which Table 2
// features the trees actually split on, averaged across all 29 models and
// broken down for the five representative ones. This is companion evidence
// for the paper's Section 4.2 design: skew features should dominate the
// padding-sensitive models and locality features the LAV family.
func FeatureImportance(ctx *Context) *Table {
	t := &Table{
		ID:     "feature-importance",
		Title:  "Decision-tree Gini importance of the Table 2 features",
		Header: []string{"rank", "feature", "mean importance (all 29 models)"},
	}
	w, err := core.Train(ctx.Labels, ctx.TreeCfg, features.DefaultConfig(), ctx.Mach)
	if err != nil {
		t.Note("ERROR: %v", err)
		return t
	}
	names := ctx.Labels[0].Features.Names
	mean := make([]float64, len(names))
	for _, model := range w.Models {
		imp := model.Tree.FeatureImportance(len(names))
		for i, v := range imp {
			mean[i] += v / float64(len(w.Models))
		}
	}
	order := make([]int, len(names))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return mean[order[a]] > mean[order[b]] })
	for rank, i := range order[:15] {
		t.AddRow(fmt.Sprintf("%d", rank+1), names[i], fmt.Sprintf("%.4f", mean[i]))
	}
	// Per-representative-model top feature.
	for _, method := range ctx.representativeModels() {
		for _, model := range w.Models {
			if model.Method != method {
				continue
			}
			imp := model.Tree.FeatureImportance(len(names))
			best, second := topTwo(imp)
			t.Note("%s splits mostly on %s (%.3f) then %s (%.3f)",
				method, names[best], imp[best], names[second], imp[second])
		}
	}
	return t
}

func topTwo(v []float64) (best, second int) {
	for i := range v {
		if v[i] > v[best] {
			second = best
			best = i
		} else if i != best && v[i] > v[second] {
			second = i
		}
	}
	if second == best && len(v) > 1 {
		second = (best + 1) % len(v)
	}
	return best, second
}
