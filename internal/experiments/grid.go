package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Figure 5/6 in the paper are symbol grids: the fastest method at each
// (#rows, nnz/row) point, plus a heatmap of its speedup. renderSweepGrids
// rebuilds those views from the sweep table rows so the harness output
// reads like the paper's figures.

// methodSymbols maps method families to the paper's plot markers.
var methodSymbols = map[string]string{
	"CSR":          "o",
	"SELLPACK":     "A",
	"Sell-c-sigma": "*",
	"Sell-c-R":     "x",
	"LAV-1Seg":     "+",
	"LAV":          "v",
	"SegCSR":       "#",
}

type sweepPoint struct {
	rows, deg        string
	fastest, speedup string
}

// renderSweepGrids appends, per class in the sweep table, a fastest-method
// symbol grid and a speedup grid to the table notes. Rows of the table must
// be (class, rows, nnz/row, fastest, speedup).
func renderSweepGrids(t *Table) {
	byClass := map[string][]sweepPoint{}
	var classOrder []string
	for _, row := range t.Rows {
		if len(row) != 5 {
			continue
		}
		c := row[0]
		if _, ok := byClass[c]; !ok {
			classOrder = append(classOrder, c)
		}
		byClass[c] = append(byClass[c], sweepPoint{row[1], row[2], row[3], row[4]})
	}
	for _, class := range classOrder {
		pts := byClass[class]
		rowsAxis := uniqueOrdered(pts, func(p sweepPoint) string { return p.rows })
		degAxis := uniqueOrdered(pts, func(p sweepPoint) string { return p.deg })
		sort.Slice(degAxis, func(a, b int) bool { return atofSafe(degAxis[a]) > atofSafe(degAxis[b]) })

		lookup := map[[2]string]sweepPoint{}
		for _, p := range pts {
			lookup[[2]string{p.rows, p.deg}] = p
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%s fastest-method grid (x: rows %s; y: nnz/row):\n",
			class, strings.Join(rowsAxis, " "))
		for _, deg := range degAxis {
			fmt.Fprintf(&b, "  %6s |", deg)
			for _, r := range rowsAxis {
				if p, ok := lookup[[2]string{r, deg}]; ok {
					sym := methodSymbols[p.fastest]
					if sym == "" {
						sym = "?"
					}
					fmt.Fprintf(&b, " %s", sym)
				} else {
					b.WriteString("  ")
				}
			}
			b.WriteByte('\n')
		}
		b.WriteString("  legend: o=CSR A=SELLPACK *=Sell-c-sigma x=Sell-c-R +=LAV-1Seg v=LAV\n")
		fmt.Fprintf(&b, "%s speedup grid:\n", class)
		for _, deg := range degAxis {
			fmt.Fprintf(&b, "  %6s |", deg)
			for _, r := range rowsAxis {
				if p, ok := lookup[[2]string{r, deg}]; ok {
					fmt.Fprintf(&b, " %5s", trimTo(p.speedup, 5))
				} else {
					b.WriteString("      ")
				}
			}
			b.WriteByte('\n')
		}
		t.Note("%s", b.String())
	}
}

func uniqueOrdered(pts []sweepPoint, key func(sweepPoint) string) []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range pts {
		k := key(p)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// atofSafe parses a float prefix, returning 0 on failure; axis labels are
// "2^13"-style for rows and plain numbers for degrees.
func atofSafe(s string) float64 {
	var v float64
	_, _ = fmt.Sscanf(strings.TrimPrefix(s, "2^"), "%g", &v) // parse failure intentionally yields 0
	return v
}

func trimTo(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
