package experiments

import (
	"strings"
	"testing"

	"wise/internal/gen"
	"wise/internal/kernels"
)

var smokeCtx *Context

func getCtx(t testing.TB) *Context {
	t.Helper()
	if smokeCtx == nil {
		smokeCtx = NewContext(SmokeContextConfig())
		// Smaller folds for the tiny smoke corpus.
		smokeCtx.Folds = 5
	}
	return smokeCtx
}

func TestContextSubsets(t *testing.T) {
	ctx := getCtx(t)
	sci, random := ctx.Science(), ctx.Random()
	if len(sci) == 0 || len(random) == 0 {
		t.Fatal("corpus subsets empty")
	}
	if len(sci)+len(random) != len(ctx.Labels) {
		t.Error("subsets do not partition corpus")
	}
	for _, l := range sci {
		if l.Class != gen.ClassSci {
			t.Error("science subset polluted")
		}
	}
}

func TestMethodIndexPanicsOnUnknown(t *testing.T) {
	ctx := getCtx(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ctx.methodIndex(kernels.Method{Kind: kernels.SELLPACK, C: 99, Sched: kernels.Dyn})
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Header: []string{"a", "longer"}}
	tab.AddRow("1", "2")
	tab.AddRowf("v", 3.14159)
	tab.Note("note %d", 7)
	s := tab.String()
	for _, want := range []string{"== x: demo ==", "longer", "3.142", "note: note 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func checkTable(t *testing.T, tab *Table, wantRows bool) {
	t.Helper()
	if tab.ID == "" || tab.Title == "" || len(tab.Header) == 0 {
		t.Fatalf("table metadata incomplete: %+v", tab)
	}
	if wantRows && len(tab.Rows) == 0 {
		t.Fatalf("%s: no rows", tab.ID)
	}
	for _, n := range tab.Notes {
		if strings.Contains(n, "ERROR") {
			t.Fatalf("%s: driver error: %s", tab.ID, n)
		}
	}
	if s := tab.String(); len(s) < 10 {
		t.Fatalf("%s: trivial rendering", tab.ID)
	}
}

func TestFig2(t *testing.T)  { checkTable(t, Fig2(getCtx(t)), true) }
func TestFig3(t *testing.T)  { checkTable(t, Fig3(getCtx(t)), true) }
func TestFig4(t *testing.T)  { checkTable(t, Fig4(getCtx(t)), true) }
func TestFig7(t *testing.T)  { checkTable(t, Fig7(getCtx(t)), true) }
func TestFig11(t *testing.T) { checkTable(t, Fig11(getCtx(t)), true) }
func TestFig12(t *testing.T) { checkTable(t, Fig12(getCtx(t)), true) }
func TestFig10(t *testing.T) { checkTable(t, Fig10(getCtx(t)), true) }
func TestFig13(t *testing.T) { checkTable(t, Fig13(getCtx(t)), true) }
func TestSec64(t *testing.T) { checkTable(t, Sec64(getCtx(t)), true) }

func TestFig1Formats(t *testing.T) {
	tab := Fig1Formats(getCtx(t))
	checkTable(t, tab, true)
	if len(tab.Rows) != 5 {
		t.Errorf("%d format rows, want 5", len(tab.Rows))
	}
}

func TestFig5And6Smoke(t *testing.T) {
	ctx := getCtx(t)
	cfg := SmokeSweepConfig()
	f5 := Fig5(ctx, cfg)
	checkTable(t, f5, true)
	if len(f5.Rows) != 2*len(cfg.RowScales)*len(cfg.Degrees) {
		t.Errorf("fig5 rows = %d", len(f5.Rows))
	}
	f6 := Fig6(ctx, cfg)
	checkTable(t, f6, true)
}

func TestTable4Smoke(t *testing.T) {
	tab := Table4(getCtx(t))
	checkTable(t, tab, true)
	if len(tab.Rows) != 4 {
		t.Errorf("table4 rows = %d, want 4 depths", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != 7 {
			t.Errorf("table4 row width = %d, want 7", len(row))
		}
	}
}

func TestAblations(t *testing.T) {
	ctx := getCtx(t)
	checkTable(t, AblationFeatureSets(ctx), true)
	checkTable(t, AblationClasses(ctx), true)
	checkTable(t, AblationTieBreak(ctx), true)
	checkTable(t, AblationModelFamily(ctx), true)
	probe := gen.CorpusConfig{
		Seed:      2,
		RowScales: []float64{9, 12},
		Degrees:   []float64{8},
		MaxNNZ:    1 << 20,
		SciCount:  4,
	}
	checkTable(t, AblationFlatMemory(ctx, probe), true)
}

func TestAllStandardRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables := AllStandard(getCtx(t))
	if len(tables) != 12 {
		t.Fatalf("%d standard tables, want 12", len(tables))
	}
	seen := map[string]bool{}
	for _, tab := range tables {
		if seen[tab.ID] {
			t.Errorf("duplicate table id %s", tab.ID)
		}
		seen[tab.ID] = true
	}
}

func TestFeatureImportance(t *testing.T) {
	tab := FeatureImportance(getCtx(t))
	checkTable(t, tab, true)
	if len(tab.Rows) != 15 {
		t.Errorf("importance rows = %d, want top 15", len(tab.Rows))
	}
}

func TestNewContextFromLabels(t *testing.T) {
	ctx := getCtx(t)
	wrapped := NewContextFromLabels(ctx.Labels)
	if len(wrapped.Labels) != len(ctx.Labels) {
		t.Fatal("labels lost")
	}
	// Figure drivers must work identically on the wrapped context.
	a, b := Fig4(ctx), Fig4(wrapped)
	if len(a.Rows) != len(b.Rows) {
		t.Fatal("row count differs")
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("fig4 differs at %d/%d", i, j)
			}
		}
	}
}

func TestGridRendering(t *testing.T) {
	tab := &Table{ID: "g", Title: "grid", Header: []string{"class", "rows", "nnz/row", "fastest", "speedup_vs_bestCSR"}}
	tab.AddRow("HS", "2^10", "4", "SELLPACK", "1.500")
	tab.AddRow("HS", "2^12", "4", "LAV", "2.000")
	tab.AddRow("HS", "2^10", "16", "Sell-c-R", "1.200")
	tab.AddRow("HS", "2^12", "16", "LAV", "2.500")
	renderSweepGrids(tab)
	if len(tab.Notes) != 1 {
		t.Fatalf("notes = %d", len(tab.Notes))
	}
	note := tab.Notes[0]
	for _, want := range []string{"fastest-method grid", "legend", "speedup grid", " A", " v", " x", "2.500"} {
		if !strings.Contains(note, want) {
			t.Errorf("grid note missing %q:\n%s", want, note)
		}
	}
	// Degrees must render descending (16 above 4), mirroring the paper axes.
	if strings.Index(note, "16 |") > strings.Index(note, " 4 |") {
		t.Error("degree axis not descending")
	}
}

func TestGridRenderingUnknownMethod(t *testing.T) {
	tab := &Table{ID: "g", Title: "grid", Header: []string{"class", "rows", "nnz/row", "fastest", "speedup_vs_bestCSR"}}
	tab.AddRow("X", "2^10", "4", "SomethingNew", "1.0")
	renderSweepGrids(tab)
	if !strings.Contains(tab.Notes[0], "?") {
		t.Error("unknown method should render as ?")
	}
}
