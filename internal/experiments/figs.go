package experiments

import (
	"fmt"
	"math"

	"wise/internal/gen"
	"wise/internal/kernels"
	"wise/internal/perf"
	"wise/internal/stats"
)

// Fig2 reproduces Figure 2: the speedup of each vectorized SpMV family and
// MKL over the best CSR implementation, per science-like matrix, with the
// matrices grouped by their fastest method. The paper plots one point per
// matrix; the table reports the per-group speedup ranges plus every matrix
// row (series form).
func Fig2(ctx *Context) *Table {
	t := &Table{
		ID:     "fig2",
		Title:  "Speedup of vectorized methods and MKL over best CSR (science-like corpus, grouped by fastest method)",
		Header: []string{"matrix", "fastest", "SELLPACK", "Sell-c-sigma", "Sell-c-R", "LAV-1Seg", "LAV", "MKL"},
	}
	sci := sortByFastestKind(ctx.Science())
	type group struct {
		count    int
		min, max float64
		sum      float64
	}
	groups := map[kernels.Kind]*group{}
	for _, l := range sci {
		bestAny, _ := fastestIndices(l)
		fastKind := l.Methods[bestAny].Kind
		// Best speedup within each family for this matrix.
		bestOf := func(kind kernels.Kind) float64 {
			best := math.Inf(1)
			for i, m := range l.Methods {
				if m.Kind == kind && l.Cycles[i] < best {
					best = l.Cycles[i]
				}
			}
			return l.BestCSRCycles / best
		}
		row := []string{
			l.Name, fastKind.String(),
			fmt.Sprintf("%.3f", bestOf(kernels.SELLPACK)),
			fmt.Sprintf("%.3f", bestOf(kernels.SellCSigma)),
			fmt.Sprintf("%.3f", bestOf(kernels.SellCR)),
			fmt.Sprintf("%.3f", bestOf(kernels.LAV1Seg)),
			fmt.Sprintf("%.3f", bestOf(kernels.LAV)),
			fmt.Sprintf("%.3f", l.BestCSRCycles/l.MKLCycles),
		}
		t.Rows = append(t.Rows, row)
		g := groups[fastKind]
		if g == nil {
			g = &group{min: math.Inf(1)}
			groups[fastKind] = g
		}
		sp := l.BestCSRCycles / l.Cycles[bestAny]
		g.count++
		g.sum += sp
		if sp < g.min {
			g.min = sp
		}
		if sp > g.max {
			g.max = sp
		}
	}
	for kind := kernels.CSR; kind <= kernels.LAV; kind++ {
		if g := groups[kind]; g != nil {
			t.Note("%s fastest for %d matrices; winner speedup over best CSR: min %.2f, mean %.2f, max %.2f",
				kind, g.count, g.min, g.sum/float64(g.count), g.max)
		}
	}
	t.Note("paper: SELLPACK wins span 1.05-1.31x, Sell-c-sigma wins span 1.00-1.76x; MKL never above 1.0")
	return t
}

// Fig3 reproduces Figure 3: per science-like matrix, the slowdown of each
// CSR scheduling policy and MKL relative to the best CSR scheduling.
func Fig3(ctx *Context) *Table {
	t := &Table{
		ID:     "fig3",
		Title:  "CSR scheduling policies and MKL vs best CSR (science-like corpus)",
		Header: []string{"matrix", "Dyn", "St", "StCont", "MKL", "best"},
	}
	counts := map[kernels.Sched]int{}
	worst := 1.0
	for _, l := range ctx.Science() {
		row := []string{l.Name}
		bestSched := kernels.Dyn
		bestCycles := math.Inf(1)
		for _, sched := range []kernels.Sched{kernels.Dyn, kernels.St, kernels.StCont} {
			i := ctx.methodIndex(kernels.Method{Kind: kernels.CSR, Sched: sched})
			sp := l.BestCSRCycles / l.Cycles[i]
			row = append(row, fmt.Sprintf("%.3f", sp))
			if sp < worst {
				worst = sp
			}
			if l.Cycles[i] < bestCycles {
				bestCycles = l.Cycles[i]
				bestSched = sched
			}
		}
		row = append(row, fmt.Sprintf("%.3f", l.BestCSRCycles/l.MKLCycles))
		row = append(row, bestSched.String())
		counts[bestSched]++
		t.Rows = append(t.Rows, row)
	}
	t.Note("best scheduling counts: Dyn %d, St %d, StCont %d (paper on SuiteSparse: 28, 16, 92)",
		counts[kernels.Dyn], counts[kernels.St], counts[kernels.StCont])
	t.Note("worst observed scheduling slowdown factor: %.2fx (paper: up to ~10x)", 1/worst)
	return t
}

// Fig4 reproduces Figure 4: how often each method family is the fastest on
// the science-like corpus.
func Fig4(ctx *Context) *Table {
	t := &Table{
		ID:     "fig4",
		Title:  "Fastest method distribution (science-like corpus)",
		Header: []string{"method", "matrices"},
	}
	counts := map[kernels.Kind]int{}
	for _, l := range ctx.Science() {
		bestAny, _ := fastestIndices(l)
		counts[l.Methods[bestAny].Kind]++
	}
	for kind := kernels.CSR; kind <= kernels.LAV; kind++ {
		t.AddRowf(kind.String(), counts[kind])
	}
	t.Note("paper (SuiteSparse, 136 matrices): CSR 34, Sell-c-sigma 66 dominant, MKL never best")
	return t
}

// prHistogram renders a p-ratio histogram with the paper's bin layout.
func prHistogram(t *Table, values []float64, label string) {
	counts, edges := stats.Histogram(values, 0, 0.5, 10)
	for i, c := range counts {
		t.AddRow(label, fmt.Sprintf("%.2f-%.2f", edges[i], edges[i+1]), fmt.Sprintf("%d", c))
	}
}

// Fig7 reproduces Figure 7: the histogram of the nonzeros-per-row p-ratio
// over the science-like corpus, demonstrating its balanced bias.
func Fig7(ctx *Context) *Table {
	t := &Table{
		ID:     "fig7",
		Title:  "P-ratio of nonzeros per row (science-like corpus)",
		Header: []string{"corpus", "P_R bin", "matrices"},
	}
	var values []float64
	above := 0
	for _, l := range ctx.Science() {
		pr := l.Features.Get("p_R")
		values = append(values, pr)
		if pr > 0.4 {
			above++
		}
	}
	prHistogram(t, values, "sci")
	t.Note("%d of %d science-like matrices have P_R > 0.4 (paper: 'most of the SuiteSparse matrices')",
		above, len(values))
	return t
}

// Fig11 reproduces Figure 11: the P_R distribution of the random corpus,
// broken down by generator class, demonstrating the widened coverage.
func Fig11(ctx *Context) *Table {
	t := &Table{
		ID:     "fig11",
		Title:  "P-ratio of nonzeros per row (random corpus, by class)",
		Header: []string{"class", "min P_R", "mean P_R", "max P_R", "matrices"},
	}
	perClass := map[gen.Class][]float64{}
	for _, l := range ctx.Random() {
		perClass[l.Class] = append(perClass[l.Class], l.Features.Get("p_R"))
	}
	for _, class := range []gen.Class{gen.ClassHS, gen.ClassMS, gen.ClassLS, gen.ClassLL, gen.ClassML, gen.ClassHL, gen.ClassRGG} {
		vs := perClass[class]
		if len(vs) == 0 {
			continue
		}
		min, max := vs[0], vs[0]
		for _, v := range vs {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		t.AddRowf(string(class), min, stats.Mean(vs), max, len(vs))
	}
	t.Note("paper: HS/MS/LS center at P_R ~0.1/0.2/0.3; LL/ML/HL/rgg at ~0.4-0.5")
	return t
}

// Fig12 reproduces Figure 12: the distribution of the average nonzeros per
// row (mu_R) for the random corpus vs the science-like corpus.
func Fig12(ctx *Context) *Table {
	t := &Table{
		ID:     "fig12",
		Title:  "Average nonzeros per row (mu_R) distribution",
		Header: []string{"corpus", "mu_R bin", "matrices"},
	}
	bins := []float64{0, 8, 16, 32, 64, 128, 1 << 30}
	emit := func(label string, labels []perf.MatrixLabels) (maxMu float64) {
		counts := make([]int, len(bins)-1)
		for _, l := range labels {
			mu := l.Features.Get("mu_R")
			if mu > maxMu {
				maxMu = mu
			}
			for b := 0; b < len(bins)-1; b++ {
				if mu >= bins[b] && mu < bins[b+1] {
					counts[b]++
					break
				}
			}
		}
		for b, c := range counts {
			hi := fmt.Sprintf("%g", bins[b+1])
			if b == len(counts)-1 {
				hi = "inf"
			}
			t.AddRow(label, fmt.Sprintf("[%g, %s)", bins[b], hi), fmt.Sprintf("%d", c))
		}
		return maxMu
	}
	maxRandom := emit("random", ctx.Random())
	maxSci := emit("sci", ctx.Science())
	t.Note("random corpus max mu_R %.1f vs science-like %.1f (paper: random set covers a more extensive range)",
		maxRandom, maxSci)
	return t
}
