package experiments

import (
	"fmt"
	"strings"

	"wise/internal/core"
	"wise/internal/costmodel"
	"wise/internal/features"
	"wise/internal/gen"
	"wise/internal/ml"
	"wise/internal/perf"
)

// AblationFeatureSets quantifies the paper's core claim that size features
// alone are insufficient (Section 1: simple analytical models "often fail"):
// it retrains WISE with size-only, size+skew, and full feature sets and
// compares the end-to-end mean speedup.
func AblationFeatureSets(ctx *Context) *Table {
	t := &Table{
		ID:     "ablation-features",
		Title:  "Feature-set ablation: mean WISE speedup over MKL",
		Header: []string{"feature set", "features", "mean speedup", "% of oracle"},
	}
	sets := []struct {
		name string
		keep func(name string) bool
	}{
		{"size only", func(n string) bool {
			return n == "n_rows" || n == "n_cols" || n == "nnz"
		}},
		{"size+skew", func(n string) bool {
			return n == "n_rows" || n == "n_cols" || n == "nnz" ||
				strings.HasSuffix(n, "_R") || strings.HasSuffix(n, "_C")
		}},
		{"full (size+skew+locality)", func(string) bool { return true }},
	}
	var oracle float64
	for _, set := range sets {
		sub := filterFeatures(ctx.Labels, set.keep)
		res, err := core.Evaluate(sub, ctx.TreeCfg, ctx.Folds, ctx.Seed)
		if err != nil {
			t.Note("ERROR %s: %v", set.name, err)
			continue
		}
		oracle = res.MeanOracleSpeedup
		t.AddRow(set.name,
			fmt.Sprintf("%d", len(sub[0].Features.Names)),
			fmt.Sprintf("%.3f", res.MeanWISESpeedup),
			fmt.Sprintf("%.1f%%", 100*res.MeanWISESpeedup/res.MeanOracleSpeedup))
	}
	t.Note("oracle mean speedup: %.3f; the locality features must close part of the size-only gap", oracle)
	return t
}

// filterFeatures projects every label's feature vector onto the kept names.
func filterFeatures(labels []perf.MatrixLabels, keep func(string) bool) []perf.MatrixLabels {
	out := make([]perf.MatrixLabels, len(labels))
	copy(out, labels)
	if len(labels) == 0 {
		return out
	}
	var idx []int
	var names []string
	for i, n := range labels[0].Features.Names {
		if keep(n) {
			idx = append(idx, i)
			names = append(names, n)
		}
	}
	for li := range out {
		vals := make([]float64, len(idx))
		for k, i := range idx {
			vals[k] = labels[li].Features.Values[i]
		}
		out[li].Features = features.Features{Names: names, Values: vals}
	}
	return out
}

// AblationFlatMemory relabels a small probe corpus with the cache model
// disabled and reports how many label classes change — measuring how much
// of the ground truth the locality model carries.
func AblationFlatMemory(ctx *Context, corpusCfg gen.CorpusConfig) *Table {
	t := &Table{
		ID:     "ablation-flatmem",
		Title:  "Cache-model ablation: label changes with a flat memory model",
		Header: []string{"corpus", "labels", "changed", "% changed"},
	}
	corpus := gen.Corpus(corpusCfg)
	full := perf.LabelCorpus(perf.LabelConfig{
		Estimator: costmodel.New(ctx.Mach),
		Space:     ctx.Space,
		Features:  features.DefaultConfig(),
	}, corpus)
	flatEst := costmodel.New(ctx.Mach)
	flatEst.FlatMemory = true
	flat := perf.LabelCorpus(perf.LabelConfig{
		Estimator: flatEst,
		Space:     ctx.Space,
		Features:  features.DefaultConfig(),
	}, corpus)
	total, changed := 0, 0
	oracleChanged := 0
	for i := range full {
		for j := range full[i].Classes {
			total++
			if full[i].Classes[j] != flat[i].Classes[j] {
				changed++
			}
		}
		if full[i].OracleIndex() != flat[i].OracleIndex() {
			oracleChanged++
		}
	}
	t.AddRow("probe", fmt.Sprintf("%d", total), fmt.Sprintf("%d", changed),
		fmt.Sprintf("%.1f%%", 100*float64(changed)/float64(total)))
	t.Note("oracle method changes on %d of %d matrices without the cache model", oracleChanged, len(full))
	return t
}

// AblationClasses compares the paper's 7 speedup classes against a coarse
// 3-class variant (slowdown / parity / speedup) to justify the granularity.
func AblationClasses(ctx *Context) *Table {
	t := &Table{
		ID:     "ablation-classes",
		Title:  "Class-granularity ablation: mean WISE speedup over MKL",
		Header: []string{"classes", "mean speedup", "% of oracle"},
	}
	// 7-class baseline.
	res7, err := core.Evaluate(ctx.Labels, ctx.TreeCfg, ctx.Folds, ctx.Seed)
	if err != nil {
		t.Note("ERROR: %v", err)
		return t
	}
	t.AddRow("7 (paper)", fmt.Sprintf("%.3f", res7.MeanWISESpeedup),
		fmt.Sprintf("%.1f%%", 100*res7.MeanWISESpeedup/res7.MeanOracleSpeedup))

	// 3-class variant: collapse C0 -> 0, C1 -> 1, C2..C6 -> 2.
	coarse := make([]perf.MatrixLabels, len(ctx.Labels))
	copy(coarse, ctx.Labels)
	for i := range coarse {
		classes := make([]int, len(coarse[i].Classes))
		for j, c := range coarse[i].Classes {
			switch {
			case c <= 0:
				classes[j] = 0
			case c == 1:
				classes[j] = 1
			default:
				classes[j] = 2
			}
		}
		coarse[i].Classes = classes
	}
	res3, err := core.Evaluate(coarse, ctx.TreeCfg, ctx.Folds, ctx.Seed)
	if err != nil {
		t.Note("ERROR: %v", err)
		return t
	}
	t.AddRow("3 (coarse)", fmt.Sprintf("%.3f", res3.MeanWISESpeedup),
		fmt.Sprintf("%.1f%%", 100*res3.MeanWISESpeedup/res3.MeanOracleSpeedup))
	t.Note("coarse classes hide the magnitude information Section 1 argues for; expect the 7-class setup to match or beat it")
	return t
}

// AblationTieBreak compares the paper's preprocessing-aware tie-breaking
// (Section 4.4) against naive first-index tie-breaking, reporting mean
// preprocessing overhead of the selections.
func AblationTieBreak(ctx *Context) *Table {
	t := &Table{
		ID:     "ablation-tiebreak",
		Title:  "Tie-break ablation: preprocessing cost of selected methods",
		Header: []string{"policy", "mean speedup", "mean prep iters"},
	}
	res, err := core.Evaluate(ctx.Labels, ctx.TreeCfg, ctx.Folds, ctx.Seed)
	if err != nil {
		t.Note("ERROR: %v", err)
		return t
	}
	t.AddRow("prep-aware (paper)", fmt.Sprintf("%.3f", res.MeanWISESpeedup),
		fmt.Sprintf("%.2f", res.MeanWISEPrepIters))

	// Naive: among max-class methods pick the LAST in space order (most
	// expensive preprocessing end of the grid).
	var speed, prep float64
	w := 0
	for _, l := range ctx.Labels {
		// Recompute out-of-fold selection with naive policy using true
		// classes as a stand-in: the point is the preprocessing delta.
		best := 0
		for i := range l.Classes {
			if l.Classes[i] >= l.Classes[best] {
				best = i
			}
		}
		speed += l.MKLCycles / l.Cycles[best]
		prep += (l.FeatureCycles + l.PrepCost[best]) / l.MKLCycles
		w++
	}
	t.AddRow("naive (last max)", fmt.Sprintf("%.3f", speed/float64(w)),
		fmt.Sprintf("%.2f", prep/float64(w)))
	t.Note("the prep-aware heuristic should pay materially fewer preprocessing iterations at similar speedup")
	return t
}

// AblationModelFamily compares the paper's single decision trees against a
// bagging random-forest ensemble — the natural future-work model upgrade.
func AblationModelFamily(ctx *Context) *Table {
	t := &Table{
		ID:     "ablation-model",
		Title:  "Model-family ablation: tree vs random forest",
		Header: []string{"model", "mean speedup", "% of oracle"},
	}
	tree, err := core.Evaluate(ctx.Labels, ctx.TreeCfg, ctx.Folds, ctx.Seed)
	if err != nil {
		t.Note("ERROR: %v", err)
		return t
	}
	t.AddRow("decision tree (paper)",
		fmt.Sprintf("%.3f", tree.MeanWISESpeedup),
		fmt.Sprintf("%.1f%%", 100*tree.MeanWISESpeedup/tree.MeanOracleSpeedup))
	fcfg := ml.ForestConfig{Trees: 15, Tree: ctx.TreeCfg, SampleFraction: 0.8}
	forest, err := core.EvaluateForest(ctx.Labels, fcfg, ctx.Folds, ctx.Seed)
	if err != nil {
		t.Note("ERROR: %v", err)
		return t
	}
	t.AddRow("random forest (15 trees)",
		fmt.Sprintf("%.3f", forest.MeanWISESpeedup),
		fmt.Sprintf("%.1f%%", 100*forest.MeanWISESpeedup/forest.MeanOracleSpeedup))
	t.Note("ensembling may close part of the WISE-vs-oracle gap at ~15x training cost")
	return t
}
