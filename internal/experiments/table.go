package experiments

import (
	"fmt"
	"strings"
)

// Table is the uniform output of every experiment driver: a titled,
// column-aligned text table plus free-form notes (paper-vs-measured
// commentary, caveats).
type Table struct {
	ID     string // experiment id, e.g. "fig13"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row formatting each value with %v (floats with %.3g).
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a commentary line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	writeRow(dashes(widths))
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}
