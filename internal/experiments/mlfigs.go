package experiments

import (
	"fmt"

	"wise/internal/core"
	"wise/internal/kernels"
	"wise/internal/matrix"
	"wise/internal/ml"
	"wise/internal/stats"
)

// representativeModels returns the five models of Figure 10: SELLPACK,
// Sell-c-sigma with the L2-resident sigma, Sell-c-R, LAV-1Seg and LAV with
// T=80% — StCont scheduling for the first two, Dyn for the rest, c=8.
func (c *Context) representativeModels() []kernels.Method {
	sigmaMid := c.Mach.SigmaValues()[1]
	return []kernels.Method{
		{Kind: kernels.SELLPACK, C: 8, Sched: kernels.StCont},
		{Kind: kernels.SellCSigma, C: 8, Sigma: sigmaMid, Sched: kernels.StCont},
		{Kind: kernels.SellCR, C: 8, Sched: kernels.Dyn},
		{Kind: kernels.LAV1Seg, C: 8, Sched: kernels.Dyn},
		{Kind: kernels.LAV, C: 8, T: 0.8, Sched: kernels.Dyn},
	}
}

// Fig10 reproduces Figure 10: 10-fold cross-validated confusion matrices
// for the five representative models, with accuracy and the off-by-one
// share of misclassifications.
func Fig10(ctx *Context) *Table {
	t := &Table{
		ID:     "fig10",
		Title:  "Classification accuracy of WISE (10-fold CV, representative models)",
		Header: []string{"model", "accuracy", "off-by-one among misses", "macro-F1", "overestimates", "underestimates"},
	}
	for _, method := range ctx.representativeModels() {
		idx := ctx.methodIndex(method)
		cm, err := core.ConfusionForMethod(ctx.Labels, idx, ctx.TreeCfg, ctx.Folds, ctx.Seed)
		if err != nil {
			t.Note("ERROR %s: %v", method, err)
			continue
		}
		over, under := cm.OverUnder()
		t.AddRow(method.String(),
			fmt.Sprintf("%.3f", cm.Accuracy()),
			fmt.Sprintf("%.3f", cm.OffByOneOfMisclassified()),
			fmt.Sprintf("%.3f", cm.MacroF1()),
			fmt.Sprintf("%d", over),
			fmt.Sprintf("%d", under))
		t.Note("confusion matrix for %s:\n%s", method, cm.String())
	}
	t.Note("paper accuracies: SELLPACK 87%%, Sell-c-sigma 92%%, Sell-c-R 87%%, LAV-1Seg 84%%, LAV 83%%; 89-94%% of misses off by one")
	return t
}

// Fig13 reproduces Figure 13: the distribution of WISE and oracle speedups
// over the MKL-like baseline, and the WISE preprocessing overhead in
// baseline-iteration units. Section 6.4's inspector-executor comparison is
// reported in the notes.
func Fig13(ctx *Context) *Table {
	t := &Table{
		ID:     "fig13",
		Title:  "WISE and oracle speedup over MKL baseline; preprocessing overhead",
		Header: []string{"series", "bin", "matrices"},
	}
	res, err := core.Evaluate(ctx.Labels, ctx.TreeCfg, ctx.Folds, ctx.Seed)
	if err != nil {
		t.Note("ERROR: %v", err)
		return t
	}
	var wise, oracle, prep, ie, iePrep []float64
	for _, pm := range res.PerMatrix {
		wise = append(wise, pm.WISESpeedup)
		oracle = append(oracle, pm.OracleSpeedup)
		prep = append(prep, pm.WISEPrepIters)
		ie = append(ie, pm.IESpeedup)
		iePrep = append(iePrep, pm.IEPrepIters)
	}
	emitHist := func(series string, values []float64, lo, hi float64, bins int) {
		counts, edges := stats.Histogram(values, lo, hi, bins)
		for i, c := range counts {
			t.AddRow(series, fmt.Sprintf("%.1f-%.1f", edges[i], edges[i+1]), fmt.Sprintf("%d", c))
		}
	}
	emitHist("wise_speedup", wise, 0, 8, 16)
	emitHist("oracle_speedup", oracle, 0, 8, 16)
	emitHist("ie_speedup", ie, 0, 8, 16)
	emitHist("wise_prep_iters", prep, 0, 50, 10)
	emitHist("ie_prep_iters", iePrep, 0, 50, 10)
	t.Note("mean WISE speedup over MKL: %.2fx (paper: 2.4x)", res.MeanWISESpeedup)
	t.Note("mean oracle speedup over MKL: %.2fx (paper: 2.5x)", res.MeanOracleSpeedup)
	t.Note("mean WISE preprocessing: %.2f MKL iterations (paper: 8.33)", res.MeanWISEPrepIters)
	t.Note("sec6.4: mean MKL-IE speedup %.2fx (paper: 2.11x); WISE/IE = %.2fx (paper: 1.14x)",
		res.MeanIESpeedup, res.MeanWISESpeedup/res.MeanIESpeedup)
	t.Note("sec6.4: mean IE preprocessing %.2f iterations; WISE is %.0f%% of IE (paper: <50%%)",
		res.MeanIEPrepIters, 100*res.MeanWISEPrepIters/res.MeanIEPrepIters)
	return t
}

// Sec64 reports the inspector-executor comparison as its own table.
func Sec64(ctx *Context) *Table {
	t := &Table{
		ID:     "sec6.4",
		Title:  "WISE vs MKL inspector-executor",
		Header: []string{"metric", "WISE", "MKL IE", "paper WISE", "paper IE"},
	}
	res, err := core.Evaluate(ctx.Labels, ctx.TreeCfg, ctx.Folds, ctx.Seed)
	if err != nil {
		t.Note("ERROR: %v", err)
		return t
	}
	t.AddRow("mean speedup over MKL",
		fmt.Sprintf("%.2fx", res.MeanWISESpeedup),
		fmt.Sprintf("%.2fx", res.MeanIESpeedup),
		"2.4x", "2.11x")
	t.AddRow("mean preprocessing (MKL iters)",
		fmt.Sprintf("%.2f", res.MeanWISEPrepIters),
		fmt.Sprintf("%.2f", res.MeanIEPrepIters),
		"8.33", "17.43")
	t.Note("WISE/IE speedup ratio: %.2fx (paper: 1.14x); prep ratio %.0f%% (paper: <50%%)",
		res.MeanWISESpeedup/res.MeanIESpeedup,
		100*res.MeanWISEPrepIters/res.MeanIEPrepIters)
	return t
}

// Table4 reproduces Table 4: the mean WISE speedup over the MKL baseline for
// every (max depth D, pruning ccp_alpha) combination of the decision trees.
func Table4(ctx *Context) *Table {
	depths := []int{5, 10, 15, 20}
	alphas := []float64{0, 0.001, 0.005, 0.01, 0.05, 0.1}
	t := &Table{
		ID:     "table4",
		Title:  "Mean WISE speedup by decision-tree max depth (D) and pruning (ccp)",
		Header: []string{"D \\ ccp", "0", "0.001", "0.005", "0.01", "0.05", "0.1"},
	}
	for _, d := range depths {
		row := []string{fmt.Sprintf("D=%d", d)}
		for _, a := range alphas {
			cfg := ml.TreeConfig{MaxDepth: d, MinSamplesLeaf: 1, CCPAlpha: a}
			res, err := core.Evaluate(ctx.Labels, cfg, ctx.Folds, ctx.Seed)
			if err != nil {
				row = append(row, "ERR")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f", res.MeanWISESpeedup))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Note("paper: speedups 2.21-2.41; best with low ccp (< 0.05) and D >= 10; chosen D=15, ccp=0.005")
	return t
}

// Fig1Formats is the worked-example driver (Figures 1 and 14): it renders
// the SRVPack layouts of every method on the paper-style example matrix via
// the formats example; here it reports the layout statistics.
func Fig1Formats(ctx *Context) *Table {
	t := &Table{
		ID:     "fig1",
		Title:  "Worked-example formats (8x8 matrix of Figure 1)",
		Header: []string{"method", "segments", "chunks", "stored slots", "padding"},
	}
	m := matrix.Fig1Example()
	for _, method := range []kernels.Method{
		{Kind: kernels.SELLPACK, C: 2, Sched: kernels.Dyn},
		{Kind: kernels.SellCSigma, C: 2, Sigma: 4, Sched: kernels.Dyn},
		{Kind: kernels.SellCR, C: 2, Sched: kernels.Dyn},
		{Kind: kernels.LAV1Seg, C: 2, Sched: kernels.Dyn},
		{Kind: kernels.LAV, C: 2, T: 0.7, Sched: kernels.Dyn},
	} {
		p := kernels.BuildSRVPack(m, method)
		st := p.Stats()
		t.AddRowf(method.String(), st.Segments, st.Chunks, st.StoredSlots, st.Padding)
	}
	t.Note("run examples/formats for the full rendered layouts")
	return t
}

// AllStandard runs every corpus-based experiment (the sweeps of Figures 5-6
// take their own config; see Fig5/Fig6).
func AllStandard(ctx *Context) []*Table {
	return []*Table{
		Fig1Formats(ctx),
		Fig2(ctx),
		Fig3(ctx),
		Fig4(ctx),
		Fig7(ctx),
		Fig10(ctx),
		Fig11(ctx),
		Fig12(ctx),
		Fig13(ctx),
		Sec64(ctx),
		Table4(ctx),
		FeatureImportance(ctx),
	}
}
