// Package features extracts the WISE sparse-matrix feature set (paper
// Table 2): matrix size, nonzero skew of the row and column distributions,
// and nonzero locality statistics over a K x K logical tiling — including the
// per-tile unique-row/column and potential-reuse metrics with adjacency
// group sizes X in {4, 8, 16, 32, 64}.
package features

import (
	"context"
	"fmt"

	"wise/internal/matrix"
	"wise/internal/stats"
)

// GroupSizes are the adjacency group widths X used for GrX_uniq and
// GrX_potReuse features (paper Section 4.2).
var GroupSizes = []int{4, 8, 16, 32, 64}

// groupNames holds the per-group feature names, formatted once at package
// init so Extract's loops stay allocation-free on the hot path.
var groupNames = func() map[int][4]string {
	m := make(map[int][4]string, len(GroupSizes))
	for _, x := range GroupSizes {
		m[x] = [4]string{
			fmt.Sprintf("gr%d_uniqR", x),
			fmt.Sprintf("gr%d_uniqC", x),
			fmt.Sprintf("gr%d_potReuseR", x),
			fmt.Sprintf("gr%d_potReuseC", x),
		}
	}
	return m
}()

// Config controls feature extraction.
type Config struct {
	// K is the logical tiling factor: the matrix is split into up to K x K
	// tiles of ceil(nR/K) x ceil(nC/K) elements. The paper uses K = 2048 for
	// 1-67M-row matrices; the scaled default is 64 so tiles keep the same
	// relationship to the scaled cache hierarchy.
	K int
}

// DefaultConfig returns the scaled tiling configuration.
func DefaultConfig() Config { return Config{K: 64} }

// PaperConfig returns the paper's tiling configuration (K = 2048).
func PaperConfig() Config { return Config{K: 2048} }

// Features is a named feature vector. Values and Names align by index; the
// layout is fixed for a given Config, so vectors from different matrices are
// directly comparable.
type Features struct {
	Names  []string
	Values []float64
}

// Get returns the value of the named feature, panicking if absent (a typo'd
// feature name is a programming error).
func (f Features) Get(name string) float64 {
	for i, n := range f.Names {
		if n == name {
			return f.Values[i]
		}
	}
	panic(fmt.Sprintf("features: unknown feature %q", name))
}

// FeatureCount returns the number of features extracted per matrix:
// 3 size + 2 x 8 skew + 3 x 8 locality-distribution + 4 uniq/potReuse +
// 4 x len(GroupSizes) grouped variants.
func FeatureCount() int { return 3 + 5*8 + 4 + 4*len(GroupSizes) }

// ctxCheckRows is the cancellation-check stride of the extraction loops: a
// ctx.Err() poll every 2^12 rows keeps deadline overruns bounded to one
// stride of work without measurable cost on the hot path.
const ctxCheckRows = 1 << 12

// Extract computes the full WISE feature vector of a matrix.
func Extract(m *matrix.CSR, cfg Config) Features {
	f, err := ExtractCtx(context.Background(), m, cfg)
	if err != nil {
		// Unreachable: ExtractCtx fails only on ctx cancellation, and the
		// background context is never cancelled.
		panic(err)
	}
	return f
}

// ExtractCtx is Extract with cancellation threaded through the row-scan
// loops, for callers with deadlines (wise-serve requests, wise-predict
// -timeout). On cancellation it returns ctx's error; the partial vector is
// discarded.
func ExtractCtx(ctx context.Context, m *matrix.CSR, cfg Config) (Features, error) {
	if cfg.K < 1 {
		cfg.K = 1
	}
	f := Features{
		Names:  make([]string, 0, FeatureCount()),
		Values: make([]float64, 0, FeatureCount()),
	}
	add := func(name string, v float64) {
		f.Names = append(f.Names, name)
		f.Values = append(f.Values, v)
	}
	addSummary := func(dist string, s stats.Summary) {
		add("mu_"+dist, s.Mean)
		add("sigma_"+dist, s.Std)
		add("var_"+dist, s.Variance)
		add("gini_"+dist, s.Gini)
		add("p_"+dist, s.PRatio)
		add("min_"+dist, s.Min)
		add("max_"+dist, s.Max)
		add("ne_"+dist, float64(s.NonEmpty))
	}

	// (1) Size properties.
	nnz := int64(m.NNZ())
	add("n_rows", float64(m.Rows))
	add("n_cols", float64(m.Cols))
	add("nnz", float64(nnz))

	// (2) Skew: R and C distributions.
	if err := ctx.Err(); err != nil {
		return Features{}, fmt.Errorf("features: extract: %w", err)
	}
	rowCounts := m.RowCounts()
	colCounts := m.ColCounts()
	addSummary("R", stats.Summarize(rowCounts))
	addSummary("C", stats.Summarize(colCounts))

	// (3) Locality: tiling and T/RB/CB distributions.
	t := newTiling(m.Rows, m.Cols, cfg.K)
	tileCounts := make([]int64, t.kr*t.kc)
	rbCounts := make([]int64, t.kr)
	cbCounts := make([]int64, t.kc)
	for i := 0; i < m.Rows; i++ {
		if i%ctxCheckRows == 0 && ctx.Err() != nil {
			return Features{}, fmt.Errorf("features: extract: %w", ctx.Err())
		}
		tr := i / t.tileRows
		cols, _ := m.Row(i)
		rbCounts[tr] += int64(len(cols))
		for _, c := range cols {
			tc := int(c) / t.tileCols
			tileCounts[tr*t.kc+tc]++
			cbCounts[tc]++
		}
	}
	addSummary("T", stats.Summarize(tileCounts))
	addSummary("RB", stats.Summarize(rbCounts))
	addSummary("CB", stats.Summarize(cbCounts))

	// Tile-layout features: unique rows/cols and reuse potential.
	rowSide, err := rowSideCounts(ctx, m, t)
	if err != nil {
		return Features{}, err
	}
	colSide, err := colSideCounts(ctx, m, t)
	if err != nil {
		return Features{}, err
	}
	denomNNZ := float64(nnz)
	if nnz == 0 {
		denomNNZ = 1
	}
	add("uniqR", float64(rowSide[1])/denomNNZ)
	add("uniqC", float64(colSide[1])/denomNNZ)
	for _, x := range GroupSizes {
		names := groupNames[x]
		add(names[0], float64(rowSide[x])/denomNNZ)
		add(names[1], float64(colSide[x])/denomNNZ)
	}
	add("potReuseR", float64(rowSide[1])/float64(maxInt(m.Rows, 1)))
	add("potReuseC", float64(colSide[1])/float64(maxInt(m.Cols, 1)))
	for _, x := range GroupSizes {
		nGroupsR := (m.Rows + x - 1) / x
		nGroupsC := (m.Cols + x - 1) / x
		names := groupNames[x]
		add(names[2], float64(rowSide[x])/float64(maxInt(nGroupsR, 1)))
		add(names[3], float64(colSide[x])/float64(maxInt(nGroupsC, 1)))
	}
	return f, nil
}

// tiling describes the logical K x K grid over a matrix.
type tiling struct {
	tileRows, tileCols int // elements per tile in each dimension
	kr, kc             int // number of tile rows / columns
}

func newTiling(rows, cols, k int) tiling {
	tr := (rows + k - 1) / k
	if tr < 1 {
		tr = 1
	}
	tc := (cols + k - 1) / k
	if tc < 1 {
		tc = 1
	}
	kr := (rows + tr - 1) / tr
	if kr < 1 {
		kr = 1
	}
	kc := (cols + tc - 1) / tc
	if kc < 1 {
		kc = 1
	}
	return tiling{tileRows: tr, tileCols: tc, kr: kr, kc: kc}
}

// rowSideCounts returns, for every group size X in {1} + GroupSizes, the
// number of distinct (tile, row-group) pairs with at least one nonzero.
// With X = 1 this is the sum over tiles of uniqR_i; for larger X it is the
// sum of GrX_uniqR_i, and divided by the group count it equals the mean
// GrX_potReuseR. The computation streams rows in ascending order, so the
// "last row-group seen per tile" dedupe is exact.
func rowSideCounts(ctx context.Context, m *matrix.CSR, t tiling) (map[int]int64, error) {
	xs := append([]int{1}, GroupSizes...)
	counts := make(map[int]int64, len(xs))
	lastRow := make([]int64, t.kr*t.kc)
	for i := range lastRow {
		lastRow[i] = -1
	}
	for i := 0; i < m.Rows; i++ {
		if i%ctxCheckRows == 0 && ctx.Err() != nil {
			return nil, fmt.Errorf("features: extract: %w", ctx.Err())
		}
		tr := i / t.tileRows
		cols, _ := m.Row(i)
		prevTC := -1
		for _, c := range cols {
			tc := int(c) / t.tileCols
			if tc == prevTC {
				continue // same tile as previous nonzero of this row
			}
			prevTC = tc
			tile := tr*t.kc + tc
			last := lastRow[tile]
			for _, x := range xs {
				if last < 0 || last/int64(x) != int64(i)/int64(x) {
					counts[x]++
				}
			}
			lastRow[tile] = int64(i)
		}
	}
	return counts, nil
}

// colSideCounts mirrors rowSideCounts for columns: distinct (tile,
// col-group) pairs. Columns are not globally sorted, so it processes one
// tile row at a time with epoch-stamped dedupe. For X = 1 the tile column is
// a function of the column, so a per-column epoch suffices; for larger X a
// group can straddle tile-column boundaries, so the epoch array is keyed by
// the exact (group, tileCol) pair.
func colSideCounts(ctx context.Context, m *matrix.CSR, t tiling) (map[int]int64, error) {
	counts := make(map[int]int64, 1+len(GroupSizes))
	colEpoch := make([]int32, m.Cols)
	pairEpochs := make([][]int32, len(GroupSizes))
	for xi, x := range GroupSizes {
		nGroups := (m.Cols+x-1)/x + 1
		pairEpochs[xi] = make([]int32, nGroups*t.kc)
	}
	epoch := int32(0)
	for trLo := 0; trLo < m.Rows; trLo += t.tileRows {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("features: extract: %w", ctx.Err())
		}
		epoch++
		trHi := trLo + t.tileRows
		if trHi > m.Rows {
			trHi = m.Rows
		}
		for i := trLo; i < trHi; i++ {
			cols, _ := m.Row(i)
			for _, c := range cols {
				tc := int(c) / t.tileCols
				if colEpoch[c] != epoch {
					colEpoch[c] = epoch
					counts[1]++
				}
				for xi, x := range GroupSizes {
					pair := (int(c)/x)*t.kc + tc
					if pairEpochs[xi][pair] != epoch {
						pairEpochs[xi][pair] = epoch
						counts[x]++
					}
				}
			}
		}
	}
	return counts, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
