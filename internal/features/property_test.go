package features

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"wise/internal/matrix"
)

type specRandom struct {
	Rows, Cols uint8
	Seed       int64
	Density    uint8
	K          uint8
}

func (s specRandom) build() (*matrix.CSR, Config) {
	rows := int(s.Rows%100) + 1
	cols := int(s.Cols%100) + 1
	rng := rand.New(rand.NewSource(s.Seed))
	nnz := int(s.Density%50) * rows * cols / 100
	coo := matrix.NewCOO(rows, cols)
	for k := 0; k < nnz; k++ {
		coo.Add(int32(rng.Intn(rows)), int32(rng.Intn(cols)), 1)
	}
	return coo.ToCSR(), Config{K: int(s.K%100) + 1}
}

// TestQuickFeaturesFinite: the feature vector is finite (no NaN/Inf) and has
// the fixed layout for arbitrary matrices and tiling factors.
func TestQuickFeaturesFinite(t *testing.T) {
	f := func(s specRandom) bool {
		m, cfg := s.build()
		feats := Extract(m, cfg)
		if len(feats.Values) != FeatureCount() {
			return false
		}
		for _, v := range feats.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickFeatureBounds: the normalized locality features stay in sane
// ranges for arbitrary inputs.
func TestQuickFeatureBounds(t *testing.T) {
	f := func(s specRandom) bool {
		m, cfg := s.build()
		feats := Extract(m, cfg)
		for i, name := range feats.Names {
			v := feats.Values[i]
			switch {
			case name == "gini_R" || name == "gini_C" || name == "gini_T" ||
				name == "gini_RB" || name == "gini_CB":
				if v < 0 || v >= 1 {
					return false
				}
			case name == "p_R" || name == "p_C" || name == "p_T" ||
				name == "p_RB" || name == "p_CB":
				if v <= 0 || v > 0.5+1e-9 {
					return false
				}
			case name == "uniqR" || name == "uniqC":
				if m.NNZ() > 0 && (v <= 0 || v > 1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickTilingInvariant: the K x K tiling never produces more tile rows
// or columns than matrix rows/columns, and always covers the matrix.
func TestQuickTilingInvariant(t *testing.T) {
	f := func(rows, cols, k uint16) bool {
		r := int(rows%5000) + 1
		c := int(cols%5000) + 1
		kk := int(k%4096) + 1
		tl := newTiling(r, c, kk)
		if tl.kr > r || tl.kc > c {
			return false
		}
		// Coverage: the last row/col must fall inside the grid.
		if (r-1)/tl.tileRows >= tl.kr || (c-1)/tl.tileCols >= tl.kc {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
