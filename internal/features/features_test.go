package features

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"wise/internal/gen"
	"wise/internal/matrix"
	"wise/internal/stats"
)

// TestExtractCtxCancelled pins the deadline-aware path: a pre-cancelled
// context aborts extraction with the context's error, and the background
// context reproduces Extract bit for bit.
func TestExtractCtxCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := gen.Uniform(rng, 2048, 8)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExtractCtx(ctx, m, DefaultConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled extract err = %v, want context.Canceled", err)
	}

	got, err := ExtractCtx(context.Background(), m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := Extract(m, DefaultConfig())
	if len(got.Values) != len(want.Values) {
		t.Fatalf("value count %d != %d", len(got.Values), len(want.Values))
	}
	for i := range got.Values {
		if got.Values[i] != want.Values[i] {
			t.Fatalf("feature %s differs: %v vs %v", want.Names[i], got.Values[i], want.Values[i])
		}
	}
}

func TestFeatureCountAndNames(t *testing.T) {
	m := matrix.Fig1Example()
	f := Extract(m, DefaultConfig())
	if len(f.Names) != len(f.Values) {
		t.Fatalf("names %d != values %d", len(f.Names), len(f.Values))
	}
	if len(f.Values) != FeatureCount() {
		t.Fatalf("got %d features, want %d", len(f.Values), FeatureCount())
	}
	seen := map[string]bool{}
	for _, n := range f.Names {
		if seen[n] {
			t.Errorf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
	// Table 2 spot checks.
	for _, want := range []string{
		"n_rows", "n_cols", "nnz",
		"mu_R", "sigma_R", "var_R", "gini_R", "p_R", "min_R", "max_R", "ne_R",
		"mu_C", "gini_C", "p_C",
		"mu_T", "gini_T", "p_T", "ne_T",
		"mu_RB", "mu_CB",
		"uniqR", "uniqC", "gr4_uniqR", "gr64_uniqC",
		"potReuseR", "potReuseC", "gr8_potReuseR", "gr32_potReuseC",
	} {
		if !seen[want] {
			t.Errorf("missing feature %q", want)
		}
	}
}

func TestSizeAndSkewFeatures(t *testing.T) {
	m := matrix.Fig1Example()
	f := Extract(m, DefaultConfig())
	if f.Get("n_rows") != 8 || f.Get("n_cols") != 8 || f.Get("nnz") != 17 {
		t.Errorf("size features wrong")
	}
	if got, want := f.Get("mu_R"), 17.0/8.0; got != want {
		t.Errorf("mu_R = %v, want %v", got, want)
	}
	if got := f.Get("max_R"); got != 3 {
		t.Errorf("max_R = %v", got)
	}
	if got := f.Get("max_C"); got != 5 {
		t.Errorf("max_C = %v (c3 has 5 nonzeros)", got)
	}
	if got := f.Get("ne_R"); got != 8 {
		t.Errorf("ne_R = %v", got)
	}
	wantGini := stats.Gini(m.RowCounts())
	if got := f.Get("gini_R"); got != wantGini {
		t.Errorf("gini_R = %v, want %v", got, wantGini)
	}
}

func TestGetPanicsOnUnknown(t *testing.T) {
	f := Extract(matrix.Fig1Example(), DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Get("no_such_feature")
}

func TestTilingGeometry(t *testing.T) {
	tl := newTiling(1000, 500, 64)
	if tl.tileRows != 16 || tl.tileCols != 8 {
		t.Errorf("tile dims %dx%d", tl.tileRows, tl.tileCols)
	}
	if tl.kr != 63 || tl.kc != 63 {
		t.Errorf("grid %dx%d, want 63x63 (ceil(1000/16), ceil(500/8))", tl.kr, tl.kc)
	}
	// Tiny matrix: tiles clamp to 1x1 elements.
	tl = newTiling(3, 3, 64)
	if tl.tileRows != 1 || tl.kr != 3 {
		t.Errorf("tiny tiling %+v", tl)
	}
}

// bruteForceCounts computes distinct (tile, row-group) and (tile, col-group)
// pairs naively for cross-checking the streaming implementations.
func bruteForceCounts(m *matrix.CSR, tl tiling, x int) (rowPairs, colPairs int64) {
	rseen := map[[2]int]bool{}
	cseen := map[[2]int]bool{}
	for i := 0; i < m.Rows; i++ {
		cols, _ := m.Row(i)
		for _, c := range cols {
			tile := (i/tl.tileRows)*tl.kc + int(c)/tl.tileCols
			rseen[[2]int{tile, i / x}] = true
			cseen[[2]int{tile, int(c) / x}] = true
		}
	}
	return int64(len(rseen)), int64(len(cseen))
}

func TestUniqCountsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mats := []*matrix.CSR{
		matrix.Fig1Example(),
		gen.RMAT(rng, 8, 6, gen.HighSkew),
		gen.RGG(rng, 300, 5),
		gen.Banded(rng, 100, []int{-3, 0, 3}),
		gen.PowerLawRows(rng, 200, 2.0, 64),
	}
	for mi, m := range mats {
		for _, k := range []int{4, 16, 64} {
			tl := newTiling(m.Rows, m.Cols, k)
			rowSide, err := rowSideCounts(context.Background(), m, tl)
			if err != nil {
				t.Fatal(err)
			}
			colSide, err := colSideCounts(context.Background(), m, tl)
			if err != nil {
				t.Fatal(err)
			}
			for _, x := range append([]int{1}, GroupSizes...) {
				wantR, wantC := bruteForceCounts(m, tl, x)
				if rowSide[x] != wantR {
					t.Errorf("matrix %d K=%d X=%d: rowSide %d, want %d", mi, k, x, rowSide[x], wantR)
				}
				if colSide[x] != wantC {
					t.Errorf("matrix %d K=%d X=%d: colSide %d, want %d", mi, k, x, colSide[x], wantC)
				}
			}
		}
	}
}

func TestLocalityFeatureDiscriminates(t *testing.T) {
	// The T-distribution p-ratio must separate high-locality (diagonal)
	// matrices from uniform ones: diagonal concentration means fewer tiles
	// hold all nonzeros (lower p_T).
	rng := rand.New(rand.NewSource(6))
	n := 2048
	banded := gen.Banded(rng, n, []int{-2, -1, 0, 1, 2})
	uniform := gen.Uniform(rng, n, 5)
	cfg := Config{K: 32}
	fb := Extract(banded, cfg)
	fu := Extract(uniform, cfg)
	if fb.Get("p_T") >= fu.Get("p_T") {
		t.Errorf("p_T banded %v >= uniform %v; locality not captured",
			fb.Get("p_T"), fu.Get("p_T"))
	}
	if fb.Get("ne_T") >= fu.Get("ne_T") {
		t.Errorf("ne_T banded %v >= uniform %v", fb.Get("ne_T"), fu.Get("ne_T"))
	}
}

func TestSkewFeatureDiscriminates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	hs := gen.RMAT(rng, 10, 8, gen.HighSkew)
	ls := gen.RMAT(rng, 10, 8, gen.LowSkew)
	cfg := DefaultConfig()
	fh := Extract(hs, cfg)
	fl := Extract(ls, cfg)
	if fh.Get("p_R") >= fl.Get("p_R") {
		t.Errorf("p_R: HS %v >= LS %v", fh.Get("p_R"), fl.Get("p_R"))
	}
	if fh.Get("gini_R") <= fl.Get("gini_R") {
		t.Errorf("gini_R: HS %v <= LS %v", fh.Get("gini_R"), fl.Get("gini_R"))
	}
}

func TestReuseFeatureDiscriminates(t *testing.T) {
	// A matrix whose columns repeat across many row blocks (dense column)
	// has higher potReuseC than a block-diagonal one.
	n := 512
	coo := matrix.NewCOO(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 8; j++ { // everyone touches the hot column block
			coo.Add(int32(i), int32(j), 1)
		}
		coo.Add(int32(i), int32(i), 1)
	}
	reuse := coo.ToCSR()
	coo2 := matrix.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo2.Add(int32(i), int32(i), 1)
		coo2.Add(int32(i), int32((i+1)%n), 1)
	}
	diag := coo2.ToCSR()
	cfg := Config{K: 16}
	fr := Extract(reuse, cfg)
	fd := Extract(diag, cfg)
	if fr.Get("potReuseC") <= fd.Get("potReuseC") {
		t.Errorf("potReuseC: reuse %v <= diag %v", fr.Get("potReuseC"), fd.Get("potReuseC"))
	}
}

func TestUniqRBounds(t *testing.T) {
	// uniqR sums distinct (tile,row) pairs over nnz: each nonzero creates at
	// most one pair, so the ratio lies in (0, 1] for nonempty matrices.
	rng := rand.New(rand.NewSource(8))
	for _, m := range []*matrix.CSR{
		matrix.Fig1Example(),
		gen.RMAT(rng, 9, 4, gen.MedSkew),
		gen.Banded(rng, 257, []int{0}),
	} {
		f := Extract(m, DefaultConfig())
		for _, name := range []string{"uniqR", "uniqC", "gr4_uniqR", "gr64_uniqC"} {
			v := f.Get(name)
			if v <= 0 || v > 1 {
				t.Errorf("%s = %v, want in (0,1]", name, v)
			}
		}
	}
}

func TestEmptyMatrix(t *testing.T) {
	m := matrix.NewCOO(4, 4).ToCSR()
	f := Extract(m, DefaultConfig())
	if f.Get("nnz") != 0 {
		t.Error("nnz should be 0")
	}
	for i, v := range f.Values {
		if v != v { // NaN check
			t.Errorf("feature %s is NaN on empty matrix", f.Names[i])
		}
	}
}

func TestExtractDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := gen.RMAT(rng, 9, 8, gen.HighSkew)
	a := Extract(m, DefaultConfig())
	b := Extract(m, DefaultConfig())
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("feature %s nondeterministic", a.Names[i])
		}
	}
}

func TestPaperConfigK(t *testing.T) {
	if PaperConfig().K != 2048 {
		t.Error("paper K must be 2048")
	}
	// Extraction with K far above the matrix size must still work (1x1 tiles).
	f := Extract(matrix.Fig1Example(), PaperConfig())
	if f.Get("ne_T") != 17 {
		t.Errorf("with 1x1 tiles ne_T = %v, want nnz = 17", f.Get("ne_T"))
	}
}

func TestConfigKClamped(t *testing.T) {
	f := Extract(matrix.Fig1Example(), Config{K: 0})
	if len(f.Values) != FeatureCount() {
		t.Error("K=0 should clamp, not break")
	}
}
