// Package graph implements the SpMV-driven graph analytics the WISE paper
// motivates with (Section 1 cites PageRank [7] and HITS [20] as canonical
// iterative SpMV consumers): PageRank with damping and dangling-mass
// handling, HITS hub/authority scoring, and SpMV-based BFS level counting.
// Every algorithm takes its SpMV as an operator, so a WISE-selected format
// plugs in directly.
package graph

import (
	"errors"
	"math"

	"wise/internal/matrix"
	"wise/internal/solvers"
)

// Graph wraps a directed adjacency matrix (adj[u][v] != 0 means an edge
// u -> v) with the derived structures the algorithms need.
type Graph struct {
	Adj    *matrix.CSR
	AdjT   *matrix.CSR // transpose, built lazily
	OutDeg []int64
}

// New builds a Graph from an adjacency matrix. The matrix must be square.
func New(adj *matrix.CSR) (*Graph, error) {
	if adj.Rows != adj.Cols {
		return nil, errors.New("graph: adjacency matrix must be square")
	}
	return &Graph{Adj: adj, OutDeg: adj.RowCounts()}, nil
}

// Transpose returns (building once) the reverse adjacency matrix.
func (g *Graph) Transpose() *matrix.CSR {
	if g.AdjT == nil {
		g.AdjT = g.Adj.Transpose()
	}
	return g.AdjT
}

// N returns the vertex count.
func (g *Graph) N() int { return g.Adj.Rows }

// TransitionOperator returns the column-stochastic PageRank operator
// y = M^T x with M[u][v] = 1/outdeg(u) for each edge u -> v, as a CSR
// matrix, so callers can hand it to WISE for format selection.
func (g *Graph) TransitionOperator() *matrix.CSR {
	n := g.N()
	coo := matrix.NewCOO(n, n)
	for u := 0; u < n; u++ {
		cols, _ := g.Adj.Row(u)
		if len(cols) == 0 {
			continue
		}
		w := 1 / float64(len(cols))
		for _, v := range cols {
			coo.Add(v, int32(u), w)
		}
	}
	return coo.ToCSR()
}

// PageRankResult reports the ranking outcome.
type PageRankResult struct {
	Ranks      []float64
	Iterations int
	Delta      float64 // final L1 change
	Converged  bool
}

// PageRank computes damped PageRank with uniform teleport and uniform
// redistribution of dangling mass. op must apply the transition operator
// (y = M^T x, see TransitionOperator); outDeg identifies dangling vertices.
func PageRank(op solvers.Operator, outDeg []int64, damping, tol float64, maxIter int) PageRankResult {
	n := len(outDeg)
	r := make([]float64, n)
	next := make([]float64, n)
	for i := range r {
		r[i] = 1 / float64(n)
	}
	res := PageRankResult{}
	for iter := 0; iter < maxIter; iter++ {
		var dangling float64
		for i := range r {
			if outDeg[i] == 0 {
				dangling += r[i]
			}
		}
		op(next, r)
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		var delta float64
		for i := range next {
			v := damping*next[i] + base
			delta += math.Abs(v - r[i])
			next[i] = v
		}
		r, next = next, r
		res.Iterations = iter + 1
		res.Delta = delta
		if delta < tol {
			res.Converged = true
			break
		}
	}
	res.Ranks = r
	return res
}

// HITSResult reports hub and authority scores.
type HITSResult struct {
	Hubs, Authorities []float64
	Iterations        int
	Converged         bool
}

// HITS computes Kleinberg's hubs-and-authorities scores by alternating
// a = A^T h and h = A a with L2 normalization, using the two operators so a
// WISE-selected format can back each direction.
func HITS(forward, backward solvers.Operator, n int, tol float64, maxIter int) HITSResult {
	hubs := make([]float64, n)
	auths := make([]float64, n)
	prevAuth := make([]float64, n)
	for i := range hubs {
		hubs[i] = 1 / math.Sqrt(float64(n))
	}
	res := HITSResult{}
	for iter := 0; iter < maxIter; iter++ {
		copy(prevAuth, auths)
		backward(auths, hubs) // a = A^T h
		normalizeL2(auths)
		forward(hubs, auths) // h = A a
		normalizeL2(hubs)
		res.Iterations = iter + 1
		var delta float64
		for i := range auths {
			delta += math.Abs(auths[i] - prevAuth[i])
		}
		if delta < tol {
			res.Converged = true
			break
		}
	}
	res.Hubs = hubs
	res.Authorities = auths
	return res
}

func normalizeL2(v []float64) {
	var s float64
	for _, x := range v {
		s += x * x
	}
	if s == 0 { //lint:ignore floateq sum of squares is exactly 0 only for the all-zero vector
		return
	}
	inv := 1 / math.Sqrt(s)
	for i := range v {
		v[i] *= inv
	}
}

// BFSLevels computes the BFS level of every vertex from source using the
// linear-algebra formulation: the frontier indicator is multiplied by A^T
// each step (y[v] > 0 iff some frontier vertex points to v). Unreached
// vertices get level -1.
func BFSLevels(g *Graph, source int) []int {
	n := g.N()
	levels := make([]int, n)
	for i := range levels {
		levels[i] = -1
	}
	if source < 0 || source >= n {
		return levels
	}
	at := g.Transpose()
	frontier := make([]float64, n)
	next := make([]float64, n)
	frontier[source] = 1
	levels[source] = 0
	for level := 1; level <= n; level++ {
		at.SpMV(next, frontier)
		advanced := false
		for v := range next {
			if next[v] > 0 && levels[v] == -1 {
				levels[v] = level
				advanced = true
			}
		}
		if !advanced {
			break
		}
		for v := range frontier {
			if levels[v] == level {
				frontier[v] = 1
			} else {
				frontier[v] = 0
			}
		}
	}
	return levels
}
