package graph

import (
	"math"
	"math/rand"
	"testing"

	"wise/internal/gen"
	"wise/internal/kernels"
	"wise/internal/matrix"
	"wise/internal/solvers"
)

// chain builds the directed path 0 -> 1 -> 2 -> ... -> n-1.
func chain(n int) *Graph {
	coo := matrix.NewCOO(n, n)
	for i := 0; i < n-1; i++ {
		coo.Add(int32(i), int32(i+1), 1)
	}
	g, _ := New(coo.ToCSR())
	return g
}

func TestNewRejectsRectangular(t *testing.T) {
	if _, err := New(matrix.FromDense(2, 3, make([]float64, 6))); err == nil {
		t.Fatal("rectangular adjacency accepted")
	}
}

func TestTransitionOperatorColumnStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := New(gen.RMAT(rng, 8, 4, gen.MedSkew))
	if err != nil {
		t.Fatal(err)
	}
	mt := g.TransitionOperator()
	// Columns of M^T (rows of M) sum to 1 for non-dangling vertices: apply
	// to the all-ones vector from the left by checking column sums directly.
	colSums := make([]float64, mt.Cols)
	for i := 0; i < mt.Rows; i++ {
		cols, vals := mt.Row(i)
		for k := range cols {
			colSums[cols[k]] += vals[k]
		}
	}
	for u := 0; u < g.N(); u++ {
		want := 1.0
		if g.OutDeg[u] == 0 {
			want = 0
		}
		if math.Abs(colSums[u]-want) > 1e-9 {
			t.Fatalf("column %d sums to %v, want %v", u, colSums[u], want)
		}
	}
}

func TestPageRankUniformOnCycle(t *testing.T) {
	// On a directed cycle every vertex has identical rank 1/n.
	n := 64
	coo := matrix.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(int32(i), int32((i+1)%n), 1)
	}
	g, _ := New(coo.ToCSR())
	mt := g.TransitionOperator()
	res := PageRank(solvers.FromCSR(mt), g.OutDeg, 0.85, 1e-12, 500)
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	for i, r := range res.Ranks {
		if math.Abs(r-1.0/float64(n)) > 1e-9 {
			t.Fatalf("rank[%d] = %v, want uniform", i, r)
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, _ := New(gen.RMAT(rng, 9, 6, gen.HighSkew))
	mt := g.TransitionOperator()
	res := PageRank(solvers.FromCSR(mt), g.OutDeg, 0.85, 1e-10, 500)
	var sum float64
	for _, r := range res.Ranks {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("ranks sum to %v", sum)
	}
	if !res.Converged {
		t.Error("did not converge")
	}
}

func TestPageRankHubGetsHighRank(t *testing.T) {
	// A star pointing into vertex 0: vertex 0 must have the top rank.
	n := 50
	coo := matrix.NewCOO(n, n)
	for i := 1; i < n; i++ {
		coo.Add(int32(i), 0, 1)
	}
	g, _ := New(coo.ToCSR())
	mt := g.TransitionOperator()
	res := PageRank(solvers.FromCSR(mt), g.OutDeg, 0.85, 1e-12, 500)
	for i := 1; i < n; i++ {
		if res.Ranks[0] <= res.Ranks[i] {
			t.Fatalf("hub rank %v not above leaf rank %v", res.Ranks[0], res.Ranks[i])
		}
	}
}

func TestPageRankThroughWISEFormat(t *testing.T) {
	// PageRank must give identical results through any built format.
	rng := rand.New(rand.NewSource(3))
	g, _ := New(gen.RMAT(rng, 9, 8, gen.HighSkew))
	mt := g.TransitionOperator()
	ref := PageRank(solvers.FromCSR(mt), g.OutDeg, 0.85, 1e-12, 300)
	pack := kernels.BuildSRVPack(mt, kernels.Method{Kind: kernels.LAV, C: 8, T: 0.8, Sched: kernels.Dyn})
	got := PageRank(solvers.FromFormat(pack, 2), g.OutDeg, 0.85, 1e-12, 300)
	if got.Iterations != ref.Iterations {
		t.Errorf("iterations differ: %d vs %d", got.Iterations, ref.Iterations)
	}
	if matrix.MaxAbsDiff(ref.Ranks, got.Ranks) > 1e-9 {
		t.Error("ranks differ across formats")
	}
}

func TestHITSBipartiteStar(t *testing.T) {
	// Vertices 1..4 all point to vertex 0: vertex 0 is the pure authority,
	// the pointers are the hubs.
	n := 5
	coo := matrix.NewCOO(n, n)
	for i := 1; i < n; i++ {
		coo.Add(int32(i), 0, 1)
	}
	g, _ := New(coo.ToCSR())
	adj, adjT := g.Adj, g.Transpose()
	res := HITS(solvers.FromCSR(adj), solvers.FromCSR(adjT), n, 1e-12, 200)
	if !res.Converged {
		t.Fatalf("HITS did not converge")
	}
	if math.Abs(res.Authorities[0]-1) > 1e-6 {
		t.Errorf("authority[0] = %v, want 1", res.Authorities[0])
	}
	for i := 1; i < n; i++ {
		if math.Abs(res.Hubs[i]-0.5) > 1e-6 { // 4 equal hubs, L2-normalized
			t.Errorf("hub[%d] = %v, want 0.5", i, res.Hubs[i])
		}
	}
	if res.Hubs[0] > 1e-9 {
		t.Errorf("authority vertex has hub score %v", res.Hubs[0])
	}
}

func TestBFSLevelsChain(t *testing.T) {
	g := chain(6)
	levels := BFSLevels(g, 0)
	for i, l := range levels {
		if l != i {
			t.Fatalf("level[%d] = %d, want %d", i, l, i)
		}
	}
	// From the middle: everything before is unreachable.
	levels = BFSLevels(g, 3)
	want := []int{-1, -1, -1, 0, 1, 2}
	for i := range want {
		if levels[i] != want[i] {
			t.Fatalf("levels from 3 = %v", levels)
		}
	}
}

func TestBFSLevelsDisconnected(t *testing.T) {
	coo := matrix.NewCOO(4, 4)
	coo.Add(0, 1, 1)
	g, _ := New(coo.ToCSR())
	levels := BFSLevels(g, 0)
	if levels[0] != 0 || levels[1] != 1 || levels[2] != -1 || levels[3] != -1 {
		t.Errorf("levels = %v", levels)
	}
	if l := BFSLevels(g, -1); l[0] != -1 {
		t.Error("invalid source should reach nothing")
	}
}

func TestBFSMatchesQueueBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, _ := New(gen.RMAT(rng, 8, 4, gen.LowLoc))
	got := BFSLevels(g, 0)
	want := queueBFS(g.Adj, 0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vertex %d: SpMV BFS %d vs queue BFS %d", i, got[i], want[i])
		}
	}
}

func queueBFS(adj *matrix.CSR, source int) []int {
	levels := make([]int, adj.Rows)
	for i := range levels {
		levels[i] = -1
	}
	levels[source] = 0
	queue := []int{source}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		cols, _ := adj.Row(u)
		for _, v := range cols {
			if levels[v] == -1 {
				levels[v] = levels[u] + 1
				queue = append(queue, int(v))
			}
		}
	}
	return levels
}
