package resilience

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context cancelled on SIGINT or SIGTERM, for
// checkpoint-then-exit shutdown: long stages (labeling, cross-validation)
// watch ctx.Done(), flush their checkpoint, and unwind with
// context.Canceled. A second signal kills the process immediately via the
// restored default handler, so a wedged drain never traps the operator.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}
