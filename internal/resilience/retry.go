package resilience

import (
	"context"
	"fmt"
	"time"
)

// RetryConfig bounds a retry loop. The zero value retries nothing; use
// DefaultRetry for the pipeline's standard policy.
type RetryConfig struct {
	Attempts int           // total attempts, including the first; <= 1 means no retry
	Backoff  time.Duration // sleep before the second attempt, doubling each retry
	Max      time.Duration // backoff ceiling; 0 means uncapped
	Sleep    func(time.Duration)
}

// DefaultRetry is the standard bounded policy: three attempts with 10ms
// exponential backoff capped at 100ms — enough to step over a transient
// hiccup (scheduler preemption during wall-clock measurement, a slow NFS
// write) without hiding persistent failure.
func DefaultRetry() RetryConfig {
	return RetryConfig{Attempts: 3, Backoff: 10 * time.Millisecond, Max: 100 * time.Millisecond}
}

// Retry runs op up to cfg.Attempts times, sleeping with exponential backoff
// between attempts, until op returns nil. It stops early when ctx is
// cancelled and returns the last error wrapped with the attempt count.
func Retry(ctx context.Context, cfg RetryConfig, op func() error) error {
	attempts := cfg.Attempts
	if attempts < 1 {
		attempts = 1
	}
	sleep := cfg.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	backoff := cfg.Backoff
	var err error
	for i := 0; i < attempts; i++ {
		if e := ctx.Err(); e != nil {
			if err != nil {
				return fmt.Errorf("resilience: retry cancelled after %d attempt(s): %w", i, err)
			}
			return e
		}
		if err = op(); err == nil {
			return nil
		}
		if i < attempts-1 && backoff > 0 {
			sleep(backoff)
			backoff *= 2
			if cfg.Max > 0 && backoff > cfg.Max {
				backoff = cfg.Max
			}
		}
	}
	if attempts == 1 {
		return err
	}
	return fmt.Errorf("resilience: failed after %d attempts: %w", attempts, err)
}
