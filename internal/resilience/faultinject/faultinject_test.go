package faultinject

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDisabledIsNil(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled after Disable")
	}
	if err := Hit("any.site"); err != nil {
		t.Fatalf("Hit while disabled: %v", err)
	}
	var buf bytes.Buffer
	if w := Writer("any.site", &buf); w != &buf {
		t.Fatal("Writer while disabled should return the underlying writer")
	}
}

func TestErrorClauseAfterAndTimes(t *testing.T) {
	if err := Configure("s:error:after=2:times=2", 1); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	var got []bool
	for i := 0; i < 6; i++ {
		got = append(got, Hit("s") != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d fired=%v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestInjectedErrorIsSentinel(t *testing.T) {
	if err := Configure("s:error", 1); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	err := Hit("s")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "s") {
		t.Fatalf("err = %v, want site name", err)
	}
}

func TestPanicClause(t *testing.T) {
	if err := Configure("boom:panic", 1); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("no panic injected")
		}
	}()
	_ = Hit("boom")
}

func TestDelayClause(t *testing.T) {
	if err := Configure("slow:delay:d=30ms", 1); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	start := time.Now()
	if err := Hit("slow"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay = %v, want >= ~30ms", d)
	}
}

func TestShortWrite(t *testing.T) {
	if err := Configure("w:shortwrite:n=4", 1); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	var buf bytes.Buffer
	w := Writer("w", &buf)
	n, err := w.Write([]byte("abcdefgh"))
	if n != 4 || !errors.Is(err, ErrInjected) {
		t.Fatalf("n=%d err=%v, want 4 bytes then ErrInjected", n, err)
	}
	if buf.String() != "abcd" {
		t.Fatalf("buf = %q, want abcd", buf.String())
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second write err = %v, want ErrInjected", err)
	}
	// The clause defaults to times=1, so the next Writer call passes through.
	var buf2 bytes.Buffer
	if w2 := Writer("w", &buf2); w2 != &buf2 {
		t.Fatal("second Writer should be pass-through after times=1 exhausted")
	}
}

func TestProbabilityDeterministic(t *testing.T) {
	fires := func(seed int64) []bool {
		if err := Configure("p.site:error:p=0.5:times=all", seed); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 32)
		for i := range out {
			out[i] = Hit("p.site") != nil
		}
		return out
	}
	defer Disable()
	a, b := fires(7), fires(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d: %v vs %v", i, a, b)
		}
	}
	c := fires(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical firing patterns (suspicious)")
	}
	anyTrue, anyFalse := false, false
	for _, v := range a {
		anyTrue = anyTrue || v
		anyFalse = anyFalse || !v
	}
	if !anyTrue || !anyFalse {
		t.Fatalf("p=0.5 over 32 hits fired all-or-nothing: %v", a)
	}
}

func TestMultipleClauses(t *testing.T) {
	if err := Configure("a:error, b:error:after=1", 3); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	if Hit("a") == nil {
		t.Fatal("site a should fire immediately")
	}
	if Hit("b") != nil {
		t.Fatal("site b should skip the first hit")
	}
	if Hit("b") == nil {
		t.Fatal("site b should fire on the second hit")
	}
	if Hit("unarmed") != nil {
		t.Fatal("unarmed site fired")
	}
}

func TestConfigureErrors(t *testing.T) {
	defer Disable()
	for _, spec := range []string{
		"nosite",
		"s:badkind",
		"s:error:times",
		"s:error:bogus=1",
		"s:delay",         // missing d=
		"s:shortwrite",    // missing n=
		"s:error:after=x", // non-integer
	} {
		if err := Configure(spec, 1); err == nil {
			t.Errorf("Configure(%q) succeeded, want error", spec)
		}
	}
}

func TestConfigureFromEnv(t *testing.T) {
	defer Disable()
	env := map[string]string{}
	getenv := func(k string) string { return env[k] }

	if err := ConfigureFromEnv(getenv); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Fatal("empty WISE_FAULTS armed injection")
	}

	env["WISE_FAULTS"] = "s:error"
	env["WISE_FAULT_SEED"] = "42"
	if err := ConfigureFromEnv(getenv); err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("WISE_FAULTS did not arm injection")
	}

	env["WISE_FAULT_SEED"] = "notanumber"
	if err := ConfigureFromEnv(getenv); err == nil {
		t.Fatal("bad WISE_FAULT_SEED accepted")
	}
}
