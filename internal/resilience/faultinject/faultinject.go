// Package faultinject is a deterministic fault-injection harness for the
// pipeline's recovery paths. Production code marks named sites with
// faultinject.Hit("pkg.site") (or wraps writers with faultinject.Writer);
// tests and operators arm those sites with a seedable spec that injects
// panics, I/O errors, short writes, or delays at precise points. Injection
// is off by default and costs one atomic pointer load per site when
// disarmed, so the hooks stay in production builds.
//
// A spec is a comma-separated list of clauses:
//
//	site:kind[:key=value...]
//
// where kind is one of panic, error, delay, shortwrite, and the optional
// keys are
//
//	after=N    skip the first N hits of the site (default 0)
//	times=N    trigger at most N times (default 1; times=all means every hit)
//	p=F        trigger each eligible hit with probability F, derived
//	           deterministically from the configured seed and the hit index
//	d=DUR      sleep duration for kind delay (e.g. d=50ms)
//	n=N        byte cap for kind shortwrite (write fails after N bytes)
//
// Example: interrupt labeling after the third matrix and make every
// checkpoint rename fail once:
//
//	perf.label.interrupt:error:after=3,resilience.atomic.rename:error
//
// The CLIs arm the harness from the environment: WISE_FAULTS holds the spec
// and WISE_FAULT_SEED the seed (default 1). See RESILIENCE.md.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected error, so recovery
// tests can assert the failure came from the harness.
var ErrInjected = errors.New("faultinject: injected fault")

type kindT int

const (
	kindPanic kindT = iota
	kindError
	kindDelay
	kindShortWrite
)

var kindNames = map[string]kindT{
	"panic": kindPanic, "error": kindError,
	"delay": kindDelay, "shortwrite": kindShortWrite,
}

// clause is one armed fault at one site.
type clause struct {
	site  string
	kind  kindT
	after int64         // skip the first `after` hits
	times int64         // max triggers; <= 0 means unlimited
	prob  float64       // per-hit trigger probability; 0 or 1 means always
	delay time.Duration // kind delay
	n     int64         // kind shortwrite: bytes allowed before failing

	hits  atomic.Int64
	fired atomic.Int64
}

// plan is one parsed, armed spec.
type plan struct {
	seed    int64
	bySites map[string][]*clause
}

var active atomic.Pointer[plan]

// Enabled reports whether any faults are armed.
func Enabled() bool { return active.Load() != nil }

// Disable disarms all faults.
func Disable() { active.Store(nil) }

// Configure parses and arms a fault spec. An empty spec disarms everything.
// Counters start at zero on every Configure call.
func Configure(spec string, seed int64) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		Disable()
		return nil
	}
	p := &plan{seed: seed, bySites: make(map[string][]*clause)}
	for _, raw := range strings.Split(spec, ",") {
		c, err := parseClause(strings.TrimSpace(raw))
		if err != nil {
			return err
		}
		p.bySites[c.site] = append(p.bySites[c.site], c)
	}
	active.Store(p)
	return nil
}

// ConfigureFromEnv arms the harness from WISE_FAULTS / WISE_FAULT_SEED.
// With WISE_FAULTS unset or empty it leaves injection disabled.
func ConfigureFromEnv(getenv func(string) string) error {
	spec := getenv("WISE_FAULTS")
	if strings.TrimSpace(spec) == "" {
		return nil
	}
	seed := int64(1)
	if s := strings.TrimSpace(getenv("WISE_FAULT_SEED")); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("faultinject: WISE_FAULT_SEED %q: %w", s, err)
		}
		seed = v
	}
	if err := Configure(spec, seed); err != nil {
		return fmt.Errorf("WISE_FAULTS: %w", err)
	}
	return nil
}

func parseClause(raw string) (*clause, error) {
	fields := strings.Split(raw, ":")
	if len(fields) < 2 {
		return nil, fmt.Errorf("faultinject: clause %q: want site:kind[:key=value...]", raw)
	}
	kind, ok := kindNames[fields[1]]
	if !ok {
		return nil, fmt.Errorf("faultinject: clause %q: unknown kind %q (want panic, error, delay, shortwrite)", raw, fields[1])
	}
	c := &clause{site: fields[0], kind: kind, times: 1, n: -1}
	for _, kv := range fields[2:] {
		key, val, found := strings.Cut(kv, "=")
		if !found {
			return nil, fmt.Errorf("faultinject: clause %q: option %q is not key=value", raw, kv)
		}
		var err error
		switch key {
		case "after":
			c.after, err = strconv.ParseInt(val, 10, 64)
		case "times":
			if val == "all" {
				c.times = 0
			} else {
				c.times, err = strconv.ParseInt(val, 10, 64)
			}
		case "p":
			c.prob, err = strconv.ParseFloat(val, 64)
		case "d":
			c.delay, err = time.ParseDuration(val)
		case "n":
			c.n, err = strconv.ParseInt(val, 10, 64)
		default:
			return nil, fmt.Errorf("faultinject: clause %q: unknown option %q", raw, key)
		}
		if err != nil {
			return nil, fmt.Errorf("faultinject: clause %q: option %q: %w", raw, kv, err)
		}
	}
	if c.kind == kindDelay && c.delay <= 0 {
		return nil, fmt.Errorf("faultinject: clause %q: kind delay needs d=<duration>", raw)
	}
	if c.kind == kindShortWrite && c.n < 0 {
		return nil, fmt.Errorf("faultinject: clause %q: kind shortwrite needs n=<bytes>", raw)
	}
	return c, nil
}

// trigger advances the clause's hit counter and reports whether this hit
// fires, deterministically in (seed, hit index).
func (c *clause) trigger(seed int64) bool {
	h := c.hits.Add(1) - 1 // 0-based index of this hit
	if h < c.after {
		return false
	}
	if c.prob > 0 && c.prob < 1 {
		if u01(seed, c.site, h) >= c.prob {
			return false
		}
	}
	for {
		fired := c.fired.Load()
		if c.times > 0 && fired >= c.times {
			return false
		}
		if c.fired.CompareAndSwap(fired, fired+1) {
			return true
		}
	}
}

// u01 maps (seed, site, hit) to a uniform [0, 1) value via splitmix64 — no
// shared generator state, so concurrent sites stay deterministic.
func u01(seed int64, site string, hit int64) float64 {
	x := uint64(seed) ^ uint64(hit)*0x9e3779b97f4a7c15
	for _, b := range []byte(site) {
		x = (x ^ uint64(b)) * 0xbf58476d1ce4e5b9
	}
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// Hit marks one execution of a named site. With a matching armed clause it
// panics (kind panic), returns an injected error (kind error), or sleeps
// (kind delay); otherwise — and always when injection is disabled — it
// returns nil after a single atomic load.
func Hit(site string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	for _, c := range p.bySites[site] {
		if c.kind == kindShortWrite || !c.trigger(p.seed) {
			continue
		}
		switch c.kind {
		case kindPanic:
			panic(fmt.Sprintf("faultinject: injected panic at %s", site))
		case kindError:
			return fmt.Errorf("%w: injected I/O error at %s", ErrInjected, site)
		case kindDelay:
			time.Sleep(c.delay)
		}
	}
	return nil
}

// Writer wraps w with any armed shortwrite clause for the site: once the
// clause triggers (counted per Writer call), writes succeed for the first n
// bytes and then fail with ErrInjected — a deterministic torn write. With no
// armed clause, w is returned unchanged.
func Writer(site string, w io.Writer) io.Writer {
	p := active.Load()
	if p == nil {
		return w
	}
	for _, c := range p.bySites[site] {
		if c.kind == kindShortWrite && c.trigger(p.seed) {
			return &shortWriter{w: w, site: site, remaining: c.n}
		}
	}
	return w
}

type shortWriter struct {
	w         io.Writer
	site      string
	remaining int64
}

func (s *shortWriter) Write(p []byte) (int, error) {
	if s.remaining <= 0 {
		return 0, fmt.Errorf("%w: short write at %s", ErrInjected, s.site)
	}
	if int64(len(p)) <= s.remaining {
		n, err := s.w.Write(p)
		s.remaining -= int64(n)
		return n, err
	}
	n, err := s.w.Write(p[:s.remaining])
	s.remaining -= int64(n)
	if err != nil {
		return n, err
	}
	return n, fmt.Errorf("%w: short write at %s", ErrInjected, s.site)
}
