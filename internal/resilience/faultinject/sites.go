package faultinject

// Registry is the catalogue of every named injection site in the module,
// mapping the site string to a one-line description of what failing there
// exercises. The faultsite analyzer (internal/lint) enforces that every
// faultinject.Hit/Writer call uses a site registered here, that each site is
// marked at exactly one production call site, and that at least one test in
// the site's package arms it — so the registry, the code, and the recovery
// tests cannot drift apart. Add the entry in the same change that adds the
// Hit/Writer call.
var Registry = map[string]string{
	"perf.label.interrupt":            "fail the labeling loop between matrices; exercises checkpoint flush + resume",
	"perf.label.matrix":               "panic/fail inside one matrix's measurement; exercises per-matrix quarantine",
	"resilience.atomic.write":         "truncate or fail the atomic-file data stream; exercises torn-write recovery",
	"resilience.atomic.rename":        "fail the final rename of an atomic write; exercises leftover-temp cleanup",
	"serve.handler.panic":             "panic inside the /predict handler; exercises per-request recovery (500, process survives)",
	"serve.predict.error":             "fail the predictor; exercises CSR-fallback degradation and breaker trips",
	"serve.predict.delay":             "stall the predictor (d=...); exercises deadline-overrun degradation",
	"serve.reload.corrupt":            "fail model-reload validation; exercises rollback to the serving generation",
	"shadow.exec.panic":               "panic inside a shadow-measurement worker; exercises the worker-pool panic quarantine",
	"retrain.fail":                    "fail the drift-triggered retrain; exercises retrain quarantine and retry on the next trip",
	"registry.publish.crash":          "crash between writing a generation file and the manifest swap; exercises last-good recovery on restart",
	"promote.reject":                  "force the canary gate to reject a candidate generation; exercises promotion refusal without a manifest change",
	"session.spill.corrupt":           "corrupt (error) or crash (panic) a session spill write; exercises quarantine-and-rebuild on restart",
	"session.evict.race":              "fail (skip victim) or crash eviction between victim choice and removal; exercises pinned-eviction refusal and crash-mid-eviction recovery",
	"session.singleflight.leaderfail": "fail the singleflight leader's build; exercises leader-error propagation to every waiter",
	"session.exec.panic":              "panic inside cached-kernel execution; exercises per-request recovery with a session pin held",
}

// Registered reports whether site is a known injection site.
func Registered(site string) bool {
	_, ok := Registry[site]
	return ok
}
