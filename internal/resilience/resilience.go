// Package resilience is the fault-tolerance runtime of the pipeline: atomic
// artifact writes (temp + fsync + rename), checksummed and versioned artifact
// envelopes so corrupt or truncated files fail loudly at load, bounded
// retry-with-backoff for transiently failing operations, and signal-aware
// contexts for checkpoint-then-exit shutdown. The companion subpackage
// faultinject provides deterministic fault injection at named sites so every
// recovery path in this package and its callers is exercisable from tests.
//
// RESILIENCE.md documents the failure modes these primitives cover and how
// the CLIs surface them (exit codes, -checkpoint, quarantine reporting).
package resilience

import (
	"fmt"
	"os"
	"path/filepath"

	"wise/internal/resilience/faultinject"
)

// AtomicWriteFile writes data to path atomically: the bytes go to a temp
// file in the same directory, are fsynced, and the temp file is renamed over
// path. Readers never observe a partially written file — after a crash the
// destination holds either the old content or the new content, nothing in
// between. The temp file is removed on any failure.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	af, err := CreateAtomic(path)
	if err != nil {
		return err
	}
	af.perm = perm
	if _, err := af.Write(data); err != nil {
		af.Abort()
		return err
	}
	return af.Commit()
}

// AtomicFile is a streaming destination that becomes visible at path only
// when Commit succeeds. Use CreateAtomic / Write / Commit, with Abort
// deferred for the error paths (Abort after Commit is a no-op, so
// `defer af.Abort()` is always safe).
type AtomicFile struct {
	f    *os.File
	path string
	perm os.FileMode
	done bool
}

// CreateAtomic opens a temp file next to path for writing. Nothing is
// visible at path until Commit.
func CreateAtomic(path string) (*AtomicFile, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("resilience: creating temp file for %s: %w", path, err)
	}
	return &AtomicFile{f: f, path: path, perm: 0o644}, nil
}

// Write appends to the pending temp file. A fault-injection clause at site
// "resilience.atomic.write" can truncate or fail the stream in tests.
func (a *AtomicFile) Write(p []byte) (int, error) {
	if a.done {
		return 0, fmt.Errorf("resilience: write to committed/aborted atomic file %s", a.path)
	}
	return faultinject.Writer("resilience.atomic.write", a.f).Write(p)
}

// Commit fsyncs the temp file and renames it over the destination path. On
// any failure the temp file is removed and the destination is untouched.
func (a *AtomicFile) Commit() error {
	if a.done {
		return fmt.Errorf("resilience: double commit of %s", a.path)
	}
	a.done = true
	name := a.f.Name()
	fail := func(stage string, err error) error {
		_ = a.f.Close()
		_ = os.Remove(name)
		return fmt.Errorf("resilience: %s for %s: %w", stage, a.path, err)
	}
	if err := a.f.Sync(); err != nil {
		return fail("fsync", err)
	}
	if err := a.f.Close(); err != nil {
		_ = os.Remove(name)
		return fmt.Errorf("resilience: closing temp file for %s: %w", a.path, err)
	}
	if err := os.Chmod(name, a.perm); err != nil {
		_ = os.Remove(name)
		return fmt.Errorf("resilience: chmod temp file for %s: %w", a.path, err)
	}
	if err := faultinject.Hit("resilience.atomic.rename"); err != nil {
		_ = os.Remove(name)
		return fmt.Errorf("resilience: renaming onto %s: %w", a.path, err)
	}
	if err := os.Rename(name, a.path); err != nil {
		_ = os.Remove(name)
		return fmt.Errorf("resilience: renaming onto %s: %w", a.path, err)
	}
	syncDir(filepath.Dir(a.path))
	return nil
}

// Abort discards the pending temp file. No-op after Commit or a previous
// Abort.
func (a *AtomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	name := a.f.Name()
	_ = a.f.Close()
	_ = os.Remove(name)
}

// syncDir fsyncs a directory so the rename itself is durable. Best-effort:
// some filesystems reject directory fsync, and the rename is already atomic
// with respect to readers.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	defer d.Close()
	//lint:ignore errdrop directory fsync is best-effort durability; unsupported on some filesystems
	d.Sync()
}
