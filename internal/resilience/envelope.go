package resilience

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Artifact envelopes give every on-disk artifact (models, labels,
// checkpoints) a self-describing header with a payload checksum, so a
// truncated or bit-flipped file fails at load with a precise error instead
// of JSON garbage or a gzip panic. The format is one ASCII header line
// followed by the raw payload bytes:
//
//	#wise-artifact v1 kind=<kind> payload-version=<n> sha256=<hex> bytes=<n>\n
//	<payload>
//
// The header is deterministic in the payload, so enveloping preserves the
// pipeline's byte-identical reproducibility guarantees.

const envelopeMagic = "#wise-artifact v1 "

// ErrNotEnveloped reports that a file does not carry an artifact envelope.
// Loaders use it to fall back to legacy (pre-envelope) formats.
var ErrNotEnveloped = errors.New("resilience: not a wise artifact envelope")

// Envelope describes a sealed artifact.
type Envelope struct {
	Kind           string // artifact family, e.g. "wise-models", "wise-labels"
	PayloadVersion int    // schema version of the payload, owned by the caller
	Payload        []byte
}

// Seal prepends the envelope header to the payload.
func Seal(kind string, payloadVersion int, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%skind=%s payload-version=%d sha256=%s bytes=%d\n",
		envelopeMagic, kind, payloadVersion, hex.EncodeToString(sum[:]), len(payload))
	out := make([]byte, 0, len(header)+len(payload))
	out = append(out, header...)
	return append(out, payload...)
}

// Open validates an enveloped artifact and returns its payload. It checks
// the magic (ErrNotEnveloped when absent), the kind, the declared length
// (catching truncation), and the sha256 checksum (catching corruption).
func Open(kind string, data []byte) (Envelope, error) {
	if !bytes.HasPrefix(data, []byte(envelopeMagic)) {
		return Envelope{}, ErrNotEnveloped
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return Envelope{}, fmt.Errorf("resilience: artifact truncated inside the envelope header")
	}
	fields := strings.Fields(string(data[len(envelopeMagic):nl]))
	env := Envelope{PayloadVersion: -1}
	declaredSum, declaredBytes := "", -1
	for _, f := range fields {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return Envelope{}, fmt.Errorf("resilience: malformed envelope header field %q", f)
		}
		var err error
		switch key {
		case "kind":
			env.Kind = val
		case "payload-version":
			env.PayloadVersion, err = strconv.Atoi(val)
		case "sha256":
			declaredSum = val
		case "bytes":
			declaredBytes, err = strconv.Atoi(val)
		}
		if err != nil {
			return Envelope{}, fmt.Errorf("resilience: malformed envelope header field %q: %w", f, err)
		}
	}
	if env.Kind == "" || env.PayloadVersion < 0 || declaredSum == "" || declaredBytes < 0 {
		return Envelope{}, fmt.Errorf("resilience: envelope header missing required fields (kind, payload-version, sha256, bytes)")
	}
	if kind != "" && env.Kind != kind {
		return Envelope{}, fmt.Errorf("resilience: artifact kind is %q, want %q", env.Kind, kind)
	}
	payload := data[nl+1:]
	if len(payload) != declaredBytes {
		return Envelope{}, fmt.Errorf("resilience: artifact truncated or padded: payload is %d bytes, header declares %d", len(payload), declaredBytes)
	}
	sum := sha256.Sum256(payload)
	if got := hex.EncodeToString(sum[:]); got != declaredSum {
		return Envelope{}, fmt.Errorf("resilience: artifact checksum mismatch: payload sha256 %s, header declares %s", got, declaredSum)
	}
	env.Payload = payload
	return env, nil
}

// PeekHeaderChecksum reads only the envelope header line of path and returns
// its declared payload sha256. It never reads the payload, so change
// detectors (the serve reload poller) can compare file identity cheaply even
// for large model files. Returns ErrNotEnveloped for legacy files without an
// envelope and an error when the header is malformed or unreadable.
func PeekHeaderChecksum(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("resilience: reading artifact header: %w", err)
	}
	defer f.Close()
	// The header is one short ASCII line: magic + four key=value fields.
	buf := make([]byte, 256)
	n, err := io.ReadFull(f, buf)
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		return "", fmt.Errorf("resilience: reading artifact header of %s: %w", path, err)
	}
	buf = buf[:n]
	if !bytes.HasPrefix(buf, []byte(envelopeMagic)) {
		return "", fmt.Errorf("%w: %s", ErrNotEnveloped, path)
	}
	nl := bytes.IndexByte(buf, '\n')
	if nl < 0 {
		return "", fmt.Errorf("resilience: %s: envelope header longer than %d bytes or truncated", path, len(buf))
	}
	for _, field := range strings.Fields(string(buf[len(envelopeMagic):nl])) {
		if sum, ok := strings.CutPrefix(field, "sha256="); ok {
			return sum, nil
		}
	}
	return "", fmt.Errorf("resilience: %s: envelope header has no sha256 field", path)
}

// WriteArtifact atomically writes payload to path inside a sealed envelope.
func WriteArtifact(path, kind string, payloadVersion int, payload []byte) error {
	return AtomicWriteFile(path, Seal(kind, payloadVersion, payload), 0o644)
}

// ReadArtifact reads and validates an enveloped artifact. The returned error
// is ErrNotEnveloped (possibly wrapped) when the file exists but predates
// the envelope format, so callers can fall back to legacy decoding of the
// raw bytes, which are returned alongside the error in that case.
func ReadArtifact(path, kind string) (Envelope, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Envelope{}, nil, fmt.Errorf("resilience: reading artifact: %w", err)
	}
	env, err := Open(kind, data)
	if err != nil {
		if errors.Is(err, ErrNotEnveloped) {
			return Envelope{}, data, fmt.Errorf("%w: %s", ErrNotEnveloped, path)
		}
		return Envelope{}, nil, fmt.Errorf("%s: %w", path, err)
	}
	return env, nil, nil
}
