package resilience

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wise/internal/resilience/faultinject"
)

func TestAtomicWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	want := []byte("hello world")
	if err := AtomicWriteFile(path, want, 0o600); err != nil {
		t.Fatalf("AtomicWriteFile: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("content = %q, want %q", got, want)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode().Perm() != 0o600 {
		t.Fatalf("perm = %v, want 0600", st.Mode().Perm())
	}
}

func TestAtomicWriteOverwriteLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := AtomicWriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(path, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("content = %q, want v2", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want only the destination: %v", len(entries), entries)
	}
}

// A short write injected into the temp-file stream must leave the old
// destination untouched and clean up the temp file.
func TestAtomicWriteShortWritePreservesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := AtomicWriteFile(path, []byte("old content"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Configure("resilience.atomic.write:shortwrite:n=3", 1); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disable()
	err := AtomicWriteFile(path, []byte("new content that is longer"), 0o644)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != "old content" {
		t.Fatalf("destination = %q, want untouched old content", got)
	}
	entries, err2 := os.ReadDir(dir)
	if err2 != nil {
		t.Fatal(err2)
	}
	if len(entries) != 1 {
		t.Fatalf("temp file leaked: %v", entries)
	}
}

// A rename failure must also leave the destination untouched.
func TestAtomicWriteRenameFaultPreservesOldContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := AtomicWriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Configure("resilience.atomic.rename:error", 1); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disable()
	if err := AtomicWriteFile(path, []byte("new"), 0o644); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old" {
		t.Fatalf("destination = %q, want old", got)
	}
}

func TestAtomicFileAbortAfterCommitIsNoOp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	af, err := CreateAtomic(path)
	if err != nil {
		t.Fatal(err)
	}
	defer af.Abort()
	if _, err := af.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := af.Commit(); err != nil {
		t.Fatal(err)
	}
	af.Abort() // must not remove the committed file
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("committed file missing after Abort: %v", err)
	}
	if err := af.Commit(); err == nil {
		t.Fatal("double commit succeeded, want error")
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	payload := []byte(`{"models":[1,2,3]}`)
	sealed := Seal("wise-models", 4, payload)
	env, err := Open("wise-models", sealed)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if env.Kind != "wise-models" || env.PayloadVersion != 4 {
		t.Fatalf("env = %+v", env)
	}
	if !bytes.Equal(env.Payload, payload) {
		t.Fatalf("payload = %q, want %q", env.Payload, payload)
	}
}

func TestEnvelopeDeterministic(t *testing.T) {
	a := Seal("wise-labels", 1, []byte("payload"))
	b := Seal("wise-labels", 1, []byte("payload"))
	if !bytes.Equal(a, b) {
		t.Fatal("Seal is not deterministic for identical payloads")
	}
}

func TestEnvelopeOpenErrors(t *testing.T) {
	sealed := Seal("wise-models", 1, []byte("the payload bytes"))
	cases := []struct {
		name    string
		data    []byte
		kind    string
		wantErr string
		notEnv  bool
	}{
		{name: "raw JSON", data: []byte(`{"version":1}`), kind: "wise-models", notEnv: true},
		{name: "empty", data: nil, kind: "wise-models", notEnv: true},
		{name: "truncated header", data: sealed[:len(envelopeMagic)+4], kind: "wise-models", wantErr: "truncated inside the envelope header"},
		{name: "truncated payload", data: sealed[:len(sealed)-5], kind: "wise-models", wantErr: "truncated"},
		{name: "corrupt payload", data: flipLastByte(sealed), kind: "wise-models", wantErr: "checksum mismatch"},
		{name: "wrong kind", data: sealed, kind: "wise-labels", wantErr: `kind is "wise-models", want "wise-labels"`},
		{name: "missing fields", data: []byte(envelopeMagic + "kind=x\npayload"), kind: "", wantErr: "missing required fields"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Open(tc.kind, tc.data)
			if tc.notEnv {
				if !errors.Is(err, ErrNotEnveloped) {
					t.Fatalf("err = %v, want ErrNotEnveloped", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func flipLastByte(b []byte) []byte {
	out := append([]byte(nil), b...)
	out[len(out)-1] ^= 0xff
	return out
}

func TestReadArtifactLegacyFallback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "models.json")
	legacy := []byte(`{"version":1}`)
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	_, raw, err := ReadArtifact(path, "wise-models")
	if !errors.Is(err, ErrNotEnveloped) {
		t.Fatalf("err = %v, want ErrNotEnveloped", err)
	}
	if !bytes.Equal(raw, legacy) {
		t.Fatalf("raw = %q, want legacy bytes for fallback decoding", raw)
	}
}

func TestWriteReadArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.bin")
	payload := []byte("gzip bytes here")
	if err := WriteArtifact(path, "wise-labels", 2, payload); err != nil {
		t.Fatal(err)
	}
	env, raw, err := ReadArtifact(path, "wise-labels")
	if err != nil {
		t.Fatal(err)
	}
	if raw != nil {
		t.Fatal("raw should be nil for enveloped artifacts")
	}
	if env.PayloadVersion != 2 || !bytes.Equal(env.Payload, payload) {
		t.Fatalf("env = %+v", env)
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	var slept []time.Duration
	cfg := RetryConfig{Attempts: 4, Backoff: 10 * time.Millisecond, Max: 15 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) }}
	calls := 0
	err := Retry(context.Background(), cfg, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	want := []time.Duration{10 * time.Millisecond, 15 * time.Millisecond} // doubled then capped
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("backoffs = %v, want %v", slept, want)
	}
}

func TestRetryExhaustion(t *testing.T) {
	base := errors.New("persistent")
	cfg := RetryConfig{Attempts: 3, Sleep: func(time.Duration) {}}
	err := Retry(context.Background(), cfg, func() error { return base })
	if !errors.Is(err, base) {
		t.Fatalf("err = %v, want wrapped base error", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("err = %v, want attempt count", err)
	}
}

func TestRetryStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	cfg := RetryConfig{Attempts: 10, Backoff: time.Millisecond, Sleep: func(time.Duration) { cancel() }}
	err := Retry(ctx, cfg, func() error { calls++; return errors.New("x") })
	if err == nil {
		t.Fatal("want error after cancellation")
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (cancelled during first backoff)", calls)
	}
}

// TestPeekHeaderChecksum covers the cheap change-detection path the serve
// reload poller uses: the header checksum matches the sealed payload's
// declared sum, differs when the payload differs, and non-enveloped or
// missing files answer with the right errors.
func TestPeekHeaderChecksum(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.wise")
	if err := WriteArtifact(path, "peek-test", 1, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	sum, err := PeekHeaderChecksum(path)
	if err != nil {
		t.Fatalf("PeekHeaderChecksum: %v", err)
	}
	env, _, err := ReadArtifact(path, "peek-test")
	if err != nil {
		t.Fatal(err)
	}
	want := sha256.Sum256(env.Payload)
	if sum != hex.EncodeToString(want[:]) {
		t.Fatalf("peeked sum %s != payload sha256 %x", sum, want)
	}

	if err := WriteArtifact(path, "peek-test", 1, []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	sum2, err := PeekHeaderChecksum(path)
	if err != nil {
		t.Fatal(err)
	}
	if sum2 == sum {
		t.Fatal("different payloads peeked the same checksum")
	}

	legacy := filepath.Join(dir, "legacy.json")
	if err := os.WriteFile(legacy, []byte(`{"raw":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := PeekHeaderChecksum(legacy); !errors.Is(err, ErrNotEnveloped) {
		t.Fatalf("legacy file: err = %v, want ErrNotEnveloped", err)
	}
	if _, err := PeekHeaderChecksum(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file peeked without error")
	}
}
