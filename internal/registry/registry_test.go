package registry

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wise/internal/core"
	"wise/internal/features"
	"wise/internal/gen"
	"wise/internal/kernels"
	"wise/internal/machine"
	"wise/internal/ml"
	"wise/internal/perf"
	"wise/internal/resilience/faultinject"
)

// testModel trains a tiny two-method framework whose class labels are a
// function of variant, so different variants produce byte-distinct
// generations and identical variants produce byte-identical ones.
func testModel(t *testing.T, variant int) *core.WISE {
	t.Helper()
	space := []kernels.Method{
		{Kind: kernels.CSR, Sched: kernels.Dyn},
		{Kind: kernels.SELLPACK, Sched: kernels.Dyn, C: 8},
	}
	rng := rand.New(rand.NewSource(1))
	var labels []perf.MatrixLabels
	for i := 0; i < 6; i++ {
		m := gen.Uniform(rng, 150+20*i, 4)
		labels = append(labels, perf.MatrixLabels{
			Name: fmt.Sprintf("train-%d", i),
			Rows: m.Rows, Cols: m.Cols, NNZ: int64(m.NNZ()),
			Features: features.Extract(m, features.DefaultConfig()),
			Methods:  space,
			Classes:  []int{(1 + variant) % perf.NumClasses, variant % perf.NumClasses},
		})
	}
	w, err := core.Train(labels, ml.DefaultTreeConfig(), features.DefaultConfig(), machine.Scaled())
	if err != nil {
		t.Fatalf("training test model: %v", err)
	}
	return w
}

func openTestRegistry(t *testing.T) *Registry {
	t.Helper()
	r, err := Open(t.TempDir(), machine.Scaled())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return r
}

func armFaults(t *testing.T, spec string) {
	t.Helper()
	if err := faultinject.Configure(spec, 1); err != nil {
		t.Fatalf("Configure(%q): %v", spec, err)
	}
	t.Cleanup(faultinject.Disable)
}

func TestEmptyRegistry(t *testing.T) {
	r := openTestRegistry(t)
	if got := r.Current(); got != nil {
		t.Fatalf("empty registry Current() = %v, want nil", got)
	}
	if _, err := r.Rollback(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Rollback on empty registry: err = %v, want ErrEmpty", err)
	}
}

func TestPublishPromoteReopen(t *testing.T) {
	r := openTestRegistry(t)
	genA, err := r.Publish(testModel(t, 0))
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if r.Current() != nil {
		t.Fatal("Publish alone must not start serving")
	}
	if err := r.Promote(genA.ID); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if got := r.Current(); got == nil || got.ID != genA.ID {
		t.Fatalf("Current = %v, want %s", got, genA.ID)
	}

	// A fresh Open (the restart path) must serve the same generation with
	// byte-identical content.
	before, err := os.ReadFile(genA.Path)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Open(r.Dir(), machine.Scaled())
	if err != nil {
		t.Fatalf("re-Open: %v", err)
	}
	cur := r2.Current()
	if cur == nil || cur.ID != genA.ID {
		t.Fatalf("reopened Current = %v, want %s", cur, genA.ID)
	}
	after, err := os.ReadFile(cur.Path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("generation file changed bytes across reopen")
	}
}

func TestPublishContentAddressed(t *testing.T) {
	r := openTestRegistry(t)
	a1, err := r.Publish(testModel(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	fi1, err := os.Stat(a1.Path)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := r.Publish(testModel(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	if a1.ID != a2.ID {
		t.Fatalf("identical models published as %s and %s", a1.ID, a2.ID)
	}
	fi2, err := os.Stat(a2.Path)
	if err != nil {
		t.Fatal(err)
	}
	if !fi1.ModTime().Equal(fi2.ModTime()) || fi1.Size() != fi2.Size() {
		t.Fatal("re-publishing identical bytes rewrote the generation file")
	}
	b, err := r.Publish(testModel(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if b.ID == a1.ID {
		t.Fatal("distinct models share a generation ID")
	}
}

// TestPromoteCrashLeavesLastGood is the crash-recovery acceptance test: a
// process killed mid-promotion — after the candidate generation file is
// durable but before the manifest swap (the registry.publish.crash site) —
// must restart serving the previous generation, byte-identically.
func TestPromoteCrashLeavesLastGood(t *testing.T) {
	r := openTestRegistry(t)
	genA, err := r.Publish(testModel(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Promote(genA.ID); err != nil {
		t.Fatal(err)
	}
	servedBefore, err := os.ReadFile(genA.Path)
	if err != nil {
		t.Fatal(err)
	}
	genB, err := r.Publish(testModel(t, 2))
	if err != nil {
		t.Fatal(err)
	}

	// "Kill" the process mid-promotion: the injected panic stands in for
	// SIGKILL between the durable candidate file and the manifest rename.
	armFaults(t, "registry.publish.crash:panic")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("injected crash did not fire")
			}
		}()
		_ = r.Promote(genB.ID)
	}()

	// Restart: a fresh Open must resolve to the last durable generation.
	r2, err := Open(r.Dir(), machine.Scaled())
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	cur := r2.Current()
	if cur == nil || cur.ID != genA.ID {
		t.Fatalf("after crash restart Current = %v, want last-good %s", cur, genA.ID)
	}
	servedAfter, err := os.ReadFile(cur.Path)
	if err != nil {
		t.Fatal(err)
	}
	if string(servedBefore) != string(servedAfter) {
		t.Fatal("last-good generation is not byte-identical after the crash")
	}

	// The candidate file survived the crash, so the retried promotion (the
	// restart's retrain loop) needs no re-publish.
	if err := r2.Promote(genB.ID); err != nil {
		t.Fatalf("retrying promotion after restart: %v", err)
	}
	if got := r2.Current(); got.ID != genB.ID {
		t.Fatalf("after retried promotion Current = %s, want %s", got.ID, genB.ID)
	}
}

func TestGatedPromote(t *testing.T) {
	r := openTestRegistry(t)
	genA, err := r.Publish(testModel(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Promote(genA.ID); err != nil {
		t.Fatal(err)
	}
	genB, err := r.Publish(testModel(t, 2))
	if err != nil {
		t.Fatal(err)
	}

	// The candidate must strictly beat the serving generation.
	if err := r.GatedPromote(genB.ID, 0.5, 0.5); !errors.Is(err, ErrRejected) {
		t.Fatalf("tie promotion: err = %v, want ErrRejected", err)
	}
	if err := r.GatedPromote(genB.ID, 0.5, 0.9); !errors.Is(err, ErrRejected) {
		t.Fatalf("worse candidate: err = %v, want ErrRejected", err)
	}
	if got := r.Current(); got.ID != genA.ID {
		t.Fatalf("rejected promotions moved the manifest to %s", got.ID)
	}

	// The promote.reject fault site forces the rejection path even for a
	// winning candidate.
	armFaults(t, "promote.reject:error")
	if err := r.GatedPromote(genB.ID, 0.5, 0.1); !errors.Is(err, ErrRejected) {
		t.Fatalf("injected rejection: err = %v, want ErrRejected", err)
	}
	faultinject.Disable()

	if err := r.GatedPromote(genB.ID, 0.5, 0.1); err != nil {
		t.Fatalf("winning candidate rejected: %v", err)
	}
	if got := r.Current(); got.ID != genB.ID {
		t.Fatalf("after gated promotion Current = %s, want %s", got.ID, genB.ID)
	}
}

func TestRollback(t *testing.T) {
	r := openTestRegistry(t)
	genA, _ := r.Publish(testModel(t, 0))
	if err := r.Promote(genA.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Rollback(); err == nil {
		t.Fatal("rollback with no previous generation succeeded")
	}
	genB, _ := r.Publish(testModel(t, 2))
	if err := r.Promote(genB.ID); err != nil {
		t.Fatal(err)
	}
	back, err := r.Rollback()
	if err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	if back.ID != genA.ID || r.Current().ID != genA.ID {
		t.Fatalf("rollback served %s, want %s", back.ID, genA.ID)
	}
	// The generations traded places: rolling back again restores B.
	again, err := r.Rollback()
	if err != nil {
		t.Fatalf("second Rollback: %v", err)
	}
	if again.ID != genB.ID {
		t.Fatalf("rollback of rollback served %s, want %s", again.ID, genB.ID)
	}
	// The swap survives a restart.
	r2, err := Open(r.Dir(), machine.Scaled())
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Current(); got.ID != genB.ID {
		t.Fatalf("reopened Current = %s, want %s", got.ID, genB.ID)
	}
}

// TestOpenRecoversFromCorruptServing corrupts the serving generation file on
// disk: Open must fall back to the previous generation and persist that
// recovery, instead of refusing to start.
func TestOpenRecoversFromCorruptServing(t *testing.T) {
	r := openTestRegistry(t)
	genA, _ := r.Publish(testModel(t, 0))
	if err := r.Promote(genA.ID); err != nil {
		t.Fatal(err)
	}
	genB, _ := r.Publish(testModel(t, 2))
	if err := r.Promote(genB.ID); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(genB.Path, []byte("#wise-artifact v1 torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(r.Dir(), machine.Scaled())
	if err != nil {
		t.Fatalf("Open with corrupt serving generation: %v", err)
	}
	if got := r2.Current(); got == nil || got.ID != genA.ID {
		t.Fatalf("recovered Current = %v, want previous %s", got, genA.ID)
	}
	// The recovery was persisted: a third open needs no fallback logic.
	r3, err := Open(r.Dir(), machine.Scaled())
	if err != nil {
		t.Fatal(err)
	}
	if got := r3.Current(); got.ID != genA.ID {
		t.Fatalf("post-recovery Current = %s, want %s", got.ID, genA.ID)
	}
}

func TestImportFile(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "models.json")
	w := testModel(t, 0)
	if err := w.Save(modelPath); err != nil {
		t.Fatal(err)
	}
	r := openTestRegistry(t)
	g, err := r.ImportFile(modelPath)
	if err != nil {
		t.Fatalf("ImportFile: %v", err)
	}
	if err := r.Promote(g.ID); err != nil {
		t.Fatal(err)
	}
	// Importing the same file again is idempotent (content addressing).
	g2, err := r.ImportFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if g2.ID != g.ID {
		t.Fatalf("re-import produced %s, want %s", g2.ID, g.ID)
	}
	if _, err := r.ImportFile(filepath.Join(dir, "missing.json")); err == nil ||
		!strings.Contains(err.Error(), "missing.json") {
		t.Fatalf("importing missing file: err = %v, want path in message", err)
	}
}

func TestRefreshSeesExternalPromotion(t *testing.T) {
	r1 := openTestRegistry(t)
	genA, _ := r1.Publish(testModel(t, 0))
	if err := r1.Promote(genA.ID); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(r1.Dir(), machine.Scaled())
	if err != nil {
		t.Fatal(err)
	}
	genB, _ := r2.Publish(testModel(t, 2))
	if err := r2.Promote(genB.ID); err != nil {
		t.Fatal(err)
	}
	gen, changed, err := r1.Refresh()
	if err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if !changed || gen.ID != genB.ID {
		t.Fatalf("Refresh = (%v, %v), want external generation %s", gen, changed, genB.ID)
	}
	if _, changed, _ := r1.Refresh(); changed {
		t.Fatal("second Refresh reported a change")
	}
}

func TestPrune(t *testing.T) {
	r := openTestRegistry(t)
	var last *Generation
	for v := 0; v < keepGenerations+4; v++ {
		g, err := r.Publish(testModel(t, v))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Promote(g.ID); err != nil {
			t.Fatal(err)
		}
		last = g
	}
	entries, err := os.ReadDir(r.Dir())
	if err != nil {
		t.Fatal(err)
	}
	var genFiles int
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), genPrefix) {
			genFiles++
		}
	}
	if genFiles > keepGenerations+2 {
		t.Fatalf("prune left %d generation files, want <= %d", genFiles, keepGenerations+2)
	}
	if got := r.Current(); got.ID != last.ID {
		t.Fatalf("after pruning Current = %s, want %s", got.ID, last.ID)
	}
	if _, err := r.Rollback(); err != nil {
		t.Fatalf("rollback target pruned away: %v", err)
	}
}

// TestChaosRegistryFromEnv is the nightly chaos entry point (ci.yml): armed
// purely from WISE_FAULTS, it hammers the publish/promote/rollback protocol
// under the injected fault mix — panics included — and asserts the crash-
// safety invariant: however the run was interrupted, reopening the registry
// yields a valid, loadable serving generation.
func TestChaosRegistryFromEnv(t *testing.T) {
	if os.Getenv("WISE_FAULTS") == "" {
		t.Skip("set WISE_FAULTS to run chaos (see the ci.yml chaos-nightly matrix for specs)")
	}
	if err := faultinject.ConfigureFromEnv(os.Getenv); err != nil {
		t.Fatalf("ConfigureFromEnv: %v", err)
	}
	t.Cleanup(faultinject.Disable)

	dir := t.TempDir()
	r, err := Open(dir, machine.Scaled())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 8; i++ {
		chaosStep(t, r, i)
	}
	// The invariant: whatever the faults interrupted, a restart finds a
	// valid last-good generation (or a still-empty registry).
	r2, err := Open(dir, machine.Scaled())
	if err != nil {
		t.Fatalf("reopen after chaos: %v", err)
	}
	if cur := r2.Current(); cur != nil {
		if _, err := r2.loadGeneration(cur.ID); err != nil {
			t.Fatalf("serving generation %s does not load after chaos: %v", cur.ID, err)
		}
	}
}

// chaosStep runs one publish/gated-promote/rollback round, absorbing
// injected panics the way a process death would — by abandoning the step.
func chaosStep(t *testing.T, r *Registry, i int) {
	t.Helper()
	defer func() {
		if rec := recover(); rec != nil {
			t.Logf("step %d: injected crash absorbed: %v", i, rec)
		}
	}()
	gen, err := r.Publish(testModel(t, i%3))
	if err != nil {
		t.Logf("step %d: publish: %v", i, err)
		return
	}
	if err := r.GatedPromote(gen.ID, 1.0, 0.5); err != nil {
		t.Logf("step %d: gated promote: %v", i, err)
	}
	if i%3 == 2 {
		if _, err := r.Rollback(); err != nil {
			t.Logf("step %d: rollback: %v", i, err)
		}
	}
}
