// Package registry is the crash-safe model store behind wise-serve's
// feedback loop: trained model generations live as immutable,
// content-addressed artifact files, and the single mutable piece of state —
// which generation is serving — is an atomically-swapped manifest written
// through internal/resilience. A process killed at any instant between
// publishing a candidate and advancing the manifest leaves a valid last-good
// generation on disk: the generation files are written (and fsynced) before
// the manifest ever references them, the manifest rename is atomic, and a
// serving generation that fails validation at open time falls back to the
// previous one recorded in the manifest.
//
// The promotion protocol is canary-gated: GatedPromote advances the manifest
// only when the candidate beat the serving generation on a held-out
// validation slice (scored by the caller), and Rollback swaps the manifest
// back to the previous generation when a promoted model regresses in
// production (the drift detector's post-promotion probation, RESILIENCE.md
// "Self-healing serving").
package registry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"wise/internal/core"
	"wise/internal/machine"
	"wise/internal/obs"
	"wise/internal/resilience"
	"wise/internal/resilience/faultinject"
)

const (
	manifestKind = "wise-manifest"
	manifestName = "manifest.wise"
	genPrefix    = "gen-"
	genSuffix    = ".wise"

	// keepGenerations bounds how many retired generation files prune keeps
	// (the serving and previous generations are always kept on top).
	keepGenerations = 8

	// idLen is the hex length of a generation ID: the first 16 hex chars
	// (64 bits) of the payload sha256 — far beyond collision risk for the
	// handful of generations a registry ever holds, and short enough to read
	// in logs and manifests.
	idLen = 16
)

// ErrRejected reports a candidate that did not pass the canary gate; the
// manifest is untouched.
var ErrRejected = errors.New("registry: candidate rejected by canary gate")

// ErrEmpty reports an operation that needs a serving generation on a
// registry whose manifest does not exist yet.
var ErrEmpty = errors.New("registry: no serving generation")

// Observability instruments (documented in OBSERVABILITY.md).
var (
	publishes   = obs.NewCounter("registry.publishes")
	promotions  = obs.NewCounter("registry.promotions")
	rejections  = obs.NewCounter("registry.promotions_rejected")
	rollbacks   = obs.NewCounter("registry.rollbacks")
	recoveries  = obs.NewCounter("registry.recoveries")
	generations = obs.NewGauge("registry.generations")
)

// Generation is one immutable, validated model generation.
type Generation struct {
	ID   string     // content address: first 16 hex chars of the payload sha256
	Path string     // generation file (sealed wise-models artifact)
	W    *core.WISE // parsed, validated models
}

// manifest is the single mutable record of the registry: which generation
// serves, which one served before it (the rollback target), and the ordered
// publication history that pruning trims. It is persisted as a sealed
// artifact and only ever replaced atomically.
type manifest struct {
	Serving  string   `json:"serving"`
	Previous string   `json:"previous,omitempty"`
	Seq      int      `json:"seq"`
	History  []string `json:"history,omitempty"`
}

// Registry is one on-disk model registry. All methods are safe for
// concurrent use.
type Registry struct {
	dir  string
	mach machine.Machine

	mu  sync.Mutex
	man manifest    // guarded by mu
	cur *Generation // guarded by mu; nil while the registry is empty
}

// Open loads (or initializes) the registry in dir. A missing manifest means
// an empty registry — Current returns nil until the first Promote. When the
// manifest exists, the serving generation is loaded and validated; if its
// file is corrupt or missing, Open falls back to the previous generation
// (counting registry.recoveries) and re-points the manifest at it, so a
// damaged promotion can never brick a restart while a last-good generation
// survives on disk.
func Open(dir string, mach machine.Machine) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: creating %s: %w", dir, err)
	}
	r := &Registry{dir: dir, mach: mach}
	man, err := r.readManifest()
	if errors.Is(err, os.ErrNotExist) {
		return r, nil // empty registry
	}
	if err != nil {
		return nil, err
	}
	cur, curErr := r.loadGeneration(man.Serving)
	if curErr != nil {
		if man.Previous == "" {
			return nil, fmt.Errorf("registry: serving generation unusable and no previous to fall back to: %w", curErr)
		}
		prev, prevErr := r.loadGeneration(man.Previous)
		if prevErr != nil {
			return nil, fmt.Errorf("registry: serving generation unusable (%v); previous also unusable: %w", curErr, prevErr)
		}
		obs.Verbosef("registry: serving generation %s unusable (%v); recovering to previous %s", man.Serving, curErr, prev.ID)
		recoveries.Inc()
		man.Serving, man.Previous = man.Previous, ""
		man.Seq++
		if err := r.writeManifest(man); err != nil {
			return nil, fmt.Errorf("registry: persisting recovery to %s: %w", prev.ID, err)
		}
		cur = prev
	}
	r.mu.Lock()
	r.man, r.cur = man, cur
	r.mu.Unlock()
	generations.Set(float64(len(man.History)))
	return r, nil
}

// Dir returns the registry directory.
func (r *Registry) Dir() string { return r.dir }

// Current returns the serving generation, or nil while the registry is
// empty.
func (r *Registry) Current() *Generation {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur
}

// ManifestPath returns the path of the manifest artifact; change detectors
// (the serve reload poller) compare its envelope checksum cheaply via
// resilience.PeekHeaderChecksum.
func (r *Registry) ManifestPath() string { return filepath.Join(r.dir, manifestName) }

// genPath returns the content-addressed file of a generation ID.
func (r *Registry) genPath(id string) string {
	return filepath.Join(r.dir, genPrefix+id+genSuffix)
}

// idOf content-addresses a models payload.
func idOf(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])[:idLen]
}

// Publish writes w as a new generation file and returns it — durable on
// disk, but not serving until Promote advances the manifest. Publishing the
// byte-identical model twice is a no-op that returns the same ID, so a
// retrain that converges to the current model costs nothing.
func (r *Registry) Publish(w *core.WISE) (*Generation, error) {
	payload, err := w.MarshalPayload()
	if err != nil {
		return nil, fmt.Errorf("registry: marshaling candidate: %w", err)
	}
	return r.publishPayload(payload)
}

// ImportFile publishes the models file at path (a wise-train output, sealed
// or legacy raw JSON) as a generation. Used to seed a registry from the
// -models flag on first boot.
func (r *Registry) ImportFile(path string) (*Generation, error) {
	env, raw, err := resilience.ReadArtifact(path, core.ModelsArtifactKind)
	payload := env.Payload
	if err != nil {
		if !errors.Is(err, resilience.ErrNotEnveloped) {
			return nil, fmt.Errorf("registry: importing %s: %w", path, err)
		}
		payload = raw // legacy pre-envelope models.json
	}
	return r.publishPayload(payload)
}

// publishPayload validates a models payload and writes its generation file
// if it is not already present and intact.
func (r *Registry) publishPayload(payload []byte) (*Generation, error) {
	w, err := core.LoadPayload(payload, r.mach)
	if err != nil {
		return nil, fmt.Errorf("registry: candidate payload: %w", err)
	}
	id := idOf(payload)
	path := r.genPath(id)
	if existing, err := r.loadGeneration(id); err == nil {
		return existing, nil // content-addressed: identical bytes, file intact
	}
	if err := resilience.WriteArtifact(path, core.ModelsArtifactKind, 1, payload); err != nil {
		return nil, fmt.Errorf("registry: writing generation %s: %w", id, err)
	}
	publishes.Inc()
	obs.Verbosef("registry: published generation %s (%d models)", id, len(w.Models))
	return &Generation{ID: id, Path: path, W: w}, nil
}

// loadGeneration reads, checksum-verifies, and parses one generation file.
func (r *Registry) loadGeneration(id string) (*Generation, error) {
	path := r.genPath(id)
	env, _, err := resilience.ReadArtifact(path, core.ModelsArtifactKind)
	if err != nil {
		return nil, fmt.Errorf("registry: generation %s: %w", id, err)
	}
	if got := idOf(env.Payload); got != id {
		return nil, fmt.Errorf("registry: generation file %s holds payload %s (renamed or tampered)", path, got)
	}
	w, err := core.LoadPayload(env.Payload, r.mach)
	if err != nil {
		return nil, fmt.Errorf("registry: generation %s: %w", id, err)
	}
	return &Generation{ID: id, Path: path, W: w}, nil
}

// Promote makes generation id the serving one by atomically swapping the
// manifest; the displaced generation becomes the rollback target. The
// candidate file is re-validated first, so a manifest can never point at a
// generation that does not load. The registry.publish.crash fault site sits
// between validation and the manifest write — exactly where a process kill
// leaves a durable candidate file but an unadvanced manifest, which a
// restart must resolve to the last-good generation.
func (r *Registry) Promote(id string) error {
	gen, err := r.loadGeneration(id)
	if err != nil {
		return fmt.Errorf("registry: refusing to promote: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.man.Serving == id {
		return nil // already serving; keep the manifest untouched
	}
	if err := faultinject.Hit("registry.publish.crash"); err != nil {
		return fmt.Errorf("registry: promoting %s: %w", id, err)
	}
	man := r.man
	man.Previous = man.Serving
	man.Serving = id
	man.Seq++
	man.History = appendHistory(man.History, id)
	if err := r.writeManifest(man); err != nil {
		return fmt.Errorf("registry: promoting %s: %w", id, err)
	}
	r.man, r.cur = man, gen
	promotions.Inc()
	generations.Set(float64(len(man.History)))
	r.pruneLocked()
	obs.Verbosef("registry: promoted generation %s (seq %d, previous %s)", id, man.Seq, man.Previous)
	return nil
}

// GatedPromote is the canary gate in front of Promote: the candidate is
// promoted only when its held-out validation error improved on the serving
// generation's (scored by the caller over the same slice — see the serve
// feedback loop). A rejection leaves the manifest untouched and returns
// ErrRejected; the promote.reject fault site forces that path in tests and
// chaos runs.
func (r *Registry) GatedPromote(id string, servingErr, candErr float64) error {
	if err := faultinject.Hit("promote.reject"); err != nil {
		rejections.Inc()
		return fmt.Errorf("%w: %s: %v", ErrRejected, id, err)
	}
	if !(candErr < servingErr) {
		rejections.Inc()
		return fmt.Errorf("%w: %s: candidate validation error %.4f did not beat serving %.4f",
			ErrRejected, id, candErr, servingErr)
	}
	return r.Promote(id)
}

// Rollback swaps the manifest back to the previous generation — the
// automatic response to a post-promotion regression. The generations trade
// places, so a mistaken rollback is itself rollback-able.
func (r *Registry) Rollback() (*Generation, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur == nil {
		return nil, ErrEmpty
	}
	if r.man.Previous == "" {
		return nil, fmt.Errorf("registry: no previous generation to roll back to")
	}
	gen, err := r.loadGeneration(r.man.Previous)
	if err != nil {
		return nil, fmt.Errorf("registry: rollback target unusable: %w", err)
	}
	man := r.man
	man.Serving, man.Previous = man.Previous, man.Serving
	man.Seq++
	if err := r.writeManifest(man); err != nil {
		return nil, fmt.Errorf("registry: rolling back to %s: %w", gen.ID, err)
	}
	r.man, r.cur = man, gen
	rollbacks.Inc()
	obs.Verbosef("registry: rolled back to generation %s (seq %d)", gen.ID, man.Seq)
	return gen, nil
}

// Refresh re-reads the manifest from disk and swaps in its serving
// generation when another process advanced it. Returns the serving
// generation and whether it changed.
func (r *Registry) Refresh() (*Generation, bool, error) {
	man, err := r.readManifest()
	if errors.Is(err, os.ErrNotExist) {
		return r.Current(), false, nil
	}
	if err != nil {
		return nil, false, err
	}
	r.mu.Lock()
	unchanged := r.cur != nil && r.cur.ID == man.Serving
	r.mu.Unlock()
	if unchanged {
		return r.Current(), false, nil
	}
	gen, err := r.loadGeneration(man.Serving)
	if err != nil {
		return nil, false, fmt.Errorf("registry: refresh: %w", err)
	}
	r.mu.Lock()
	r.man, r.cur = man, gen
	r.mu.Unlock()
	return gen, true, nil
}

// readManifest reads and validates the manifest artifact. os.ErrNotExist
// (wrapped) means the registry is empty.
func (r *Registry) readManifest() (manifest, error) {
	path := r.ManifestPath()
	env, _, err := resilience.ReadArtifact(path, manifestKind)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return manifest{}, fmt.Errorf("registry: %s: %w", path, os.ErrNotExist)
		}
		return manifest{}, fmt.Errorf("registry: manifest: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(env.Payload, &man); err != nil {
		return manifest{}, fmt.Errorf("registry: parsing manifest %s: %w", path, err)
	}
	if man.Serving == "" {
		return manifest{}, fmt.Errorf("registry: manifest %s has no serving generation", path)
	}
	return man, nil
}

// writeManifest atomically replaces the manifest artifact.
func (r *Registry) writeManifest(man manifest) error {
	payload, err := json.MarshalIndent(man, "", " ")
	if err != nil {
		return err
	}
	return resilience.WriteArtifact(r.ManifestPath(), manifestKind, 1, payload)
}

// appendHistory appends id to the publication history, dropping an earlier
// occurrence so re-promotions (rollback, re-publish of identical bytes)
// don't grow the list.
func appendHistory(history []string, id string) []string {
	out := make([]string, 0, len(history)+1)
	for _, h := range history {
		if h != id {
			out = append(out, h)
		}
	}
	return append(out, id)
}

// pruneLocked removes retired generation files beyond the retention window.
// The serving and previous generations are always kept regardless of
// history position. Best-effort: a prune failure is narrated, never fatal —
// an extra file on disk is not a correctness problem. Callers hold mu.
func (r *Registry) pruneLocked() {
	keep := make(map[string]bool, keepGenerations+2)
	keep[r.man.Serving] = true
	if r.man.Previous != "" {
		keep[r.man.Previous] = true
	}
	tail := r.man.History
	if len(tail) > keepGenerations {
		tail = tail[len(tail)-keepGenerations:]
	}
	for _, id := range tail {
		keep[id] = true
	}
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		obs.Verbosef("registry: prune: %v", err)
		return
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, genPrefix) || !strings.HasSuffix(name, genSuffix) {
			continue
		}
		id := strings.TrimSuffix(strings.TrimPrefix(name, genPrefix), genSuffix)
		if keep[id] {
			continue
		}
		if err := os.Remove(filepath.Join(r.dir, name)); err != nil {
			obs.Verbosef("registry: pruning %s: %v", name, err)
		}
	}
}
