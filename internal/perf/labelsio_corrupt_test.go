package perf

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// gzipBytes compresses b in memory.
func gzipBytes(t *testing.T, b []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if _, err := gz.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// LoadLabels must return a descriptive error — never panic, never hand back
// JSON garbage — for every corruption mode: truncated gzip, bad JSON, wrong
// payload version, and envelope checksum mismatch.
func TestLoadLabelsCorruptedInputs(t *testing.T) {
	// A small valid enveloped labels file to mutilate.
	corpus := checkpointCorpus(t)
	labels := LabelCorpus(smallLabelConfig(), corpus[:2])
	dir := t.TempDir()
	valid := filepath.Join(dir, "valid.labels")
	if err := SaveLabels(valid, labels); err != nil {
		t.Fatal(err)
	}
	validBytes, err := os.ReadFile(valid)
	if err != nil {
		t.Fatal(err)
	}

	legacyGzip := gzipBytes(t, mustJSON(t, persistedLabels{Version: 1}))
	wrongVersion := gzipBytes(t, mustJSON(t, persistedLabels{Version: 99}))
	badJSON := gzipBytes(t, []byte("this is not json"))

	checksumFlipped := append([]byte(nil), validBytes...)
	checksumFlipped[len(checksumFlipped)-1] ^= 0xff

	cases := []struct {
		name    string
		data    []byte
		wantAny []string // error must contain at least one of these
	}{
		{"empty file", nil, []string{"neither a wise-labels artifact nor a legacy gzipped label file"}},
		{"plain text", []byte("not gzip, not an envelope"), []string{"neither a wise-labels artifact"}},
		{"truncated legacy gzip", legacyGzip[:len(legacyGzip)-6], []string{"corrupt or truncated", "parsing"}},
		{"truncated gzip header", legacyGzip[:3], []string{"opening gzipped label payload"}},
		{"bad JSON inside gzip", badJSON, []string{"parsing"}},
		{"wrong payload version", wrongVersion, []string{"unsupported label file version 99"}},
		{"envelope checksum mismatch", checksumFlipped, []string{"checksum mismatch"}},
		{"envelope truncated", validBytes[:len(validBytes)-10], []string{"truncated"}},
		{"wrong envelope kind", []byte("#wise-artifact v1 kind=wise-models payload-version=1 sha256=ab bytes=0\n"), []string{"kind"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, strings.ReplaceAll(tc.name, " ", "-"))
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := LoadLabels(path)
			if err == nil {
				t.Fatal("corrupted file loaded without error")
			}
			matched := false
			for _, want := range tc.wantAny {
				matched = matched || strings.Contains(err.Error(), want)
			}
			if !matched {
				t.Fatalf("err = %v, want one of %q", err, tc.wantAny)
			}
		})
	}
}

// Legacy (pre-envelope) raw-gzip label files still load.
func TestLoadLabelsLegacyGzip(t *testing.T) {
	corpus := checkpointCorpus(t)
	labels := LabelCorpus(smallLabelConfig(), corpus[:2])
	payload, err := encodeLabels(labels)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "legacy.json.gz")
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := LoadLabels(path)
	if err != nil {
		t.Fatalf("legacy gzip file rejected: %v", err)
	}
	if len(back) != 2 || back[0].Name != labels[0].Name {
		t.Fatalf("legacy load mismatch: %d labels", len(back))
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
