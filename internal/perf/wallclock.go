package perf

import (
	"context"
	"errors"
	"math"
	"sort"
	"time"

	"wise/internal/kernels"
	"wise/internal/matrix"
	"wise/internal/resilience"
)

// Wall-clock measurement: the paper's original protocol (time real kernels
// on real hardware). The cost model is the default labeler in this
// reproduction because it is deterministic and host-independent, but the
// real path exists for anyone running on a serious multicore machine —
// and for validating that the model's method rankings correlate with real
// executions on this host.

// WallClockConfig controls real-kernel timing.
type WallClockConfig struct {
	Workers    int           // SpMV workers (0 = GOMAXPROCS)
	WarmupRuns int           // untimed executions before measurement
	MinRuns    int           // at least this many timed executions
	MinTime    time.Duration // and at least this much accumulated time
	MaxTime    time.Duration // hard wall-clock budget per format; 0 = DefaultMeasureBudget
	RowBlock   int           // CSR scheduling granularity

	// NoiseFactor bounds an acceptable median/best spread for one
	// measurement pass; a noisier pass (scheduler preemption, thermal
	// throttling) is retried with bounded backoff. 0 disables the check.
	NoiseFactor float64
}

// DefaultMeasureBudget caps one MeasureFormat call when MaxTime is unset:
// a deadline, unlike the old fixed run-count breakout, bounds the cost of
// pathologically fast kernels (sub-microsecond iterations could previously
// spin through 10k timer reads) and slow ones alike.
const DefaultMeasureBudget = 250 * time.Millisecond

// DefaultWallClockConfig returns a measurement setup balancing cost and
// stability.
func DefaultWallClockConfig() WallClockConfig {
	return WallClockConfig{
		Workers:     0,
		WarmupRuns:  1,
		MinRuns:     3,
		MinTime:     2 * time.Millisecond,
		MaxTime:     DefaultMeasureBudget,
		RowBlock:    64,
		NoiseFactor: 5,
	}
}

// MeasureFormat times y = A*x on a built format and returns the best
// (minimum) per-iteration wall time observed — minimum, not mean, because
// SpMV noise is one-sided (interference only slows it down). A pass whose
// median is more than NoiseFactor times its best is judged hopelessly noisy
// and retried (bounded, with backoff); the last pass wins regardless so a
// noisy host still produces a measurement.
func MeasureFormat(f kernels.Format, rows, cols int, cfg WallClockConfig) time.Duration {
	x := matrix.Ones(cols)
	y := make([]float64, rows)
	for i := 0; i < cfg.WarmupRuns; i++ {
		f.SpMVParallel(y, x, cfg.Workers)
	}
	var best time.Duration
	retry := resilience.DefaultRetry()
	errNoisy := errors.New("noisy pass")
	//lint:ignore errdrop the last pass's measurement is used even when every retry was noisy
	resilience.Retry(context.Background(), retry, func() error {
		var median time.Duration
		best, median = measurePass(f, y, x, cfg)
		if cfg.NoiseFactor > 0 && median > time.Duration(cfg.NoiseFactor*float64(best)) {
			return errNoisy
		}
		return nil
	})
	return best
}

// measurePass runs one bounded measurement loop and returns the best and
// median per-iteration times. The loop runs until MinRuns and MinTime are
// both satisfied or the MaxTime budget is spent, and always completes at
// least one timed run. Zero-duration samples (timer granularity on very
// fast kernels) are clamped to 1ns so accumulated time always advances and
// the loop cannot spin.
func measurePass(f kernels.Format, y, x []float64, cfg WallClockConfig) (best, median time.Duration) {
	budget := cfg.MaxTime
	if budget <= 0 {
		budget = DefaultMeasureBudget
	}
	capHint := cfg.MinRuns
	if capHint < 16 {
		capHint = 16
	}
	samples := make([]time.Duration, 0, capHint)
	var accumulated time.Duration
	for {
		t0 := time.Now()
		f.SpMVParallel(y, x, cfg.Workers)
		d := time.Since(t0)
		if d <= 0 {
			d = time.Nanosecond
		}
		samples = append(samples, d)
		accumulated += d
		if len(samples) >= cfg.MinRuns && accumulated >= cfg.MinTime {
			break
		}
		if accumulated >= budget {
			break
		}
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[0], sorted[len(sorted)/2]
}

// MeasureMethods times every method of the space on the matrix (building
// each format, untimed) and returns per-method best iteration times aligned
// with space.
func MeasureMethods(m *matrix.CSR, space []kernels.Method, cfg WallClockConfig) []time.Duration {
	out := make([]time.Duration, len(space))
	for i, method := range space {
		f := kernels.Build(m, method, cfg.RowBlock)
		out[i] = MeasureFormat(f, m.Rows, m.Cols, cfg)
	}
	return out
}

// MeasureBestCSR times the three CSR scheduling variants and returns the
// fastest — the wall-clock analogue of Estimator.BestCSR.
func MeasureBestCSR(m *matrix.CSR, cfg WallClockConfig) (kernels.Method, time.Duration) {
	best := kernels.Method{Kind: kernels.CSR, Sched: kernels.Dyn}
	bestTime := time.Duration(1<<63 - 1)
	for _, method := range kernels.CSRMethods() {
		f := kernels.Build(m, method, cfg.RowBlock)
		if d := MeasureFormat(f, m.Rows, m.Cols, cfg); d < bestTime {
			bestTime = d
			best = method
		}
	}
	return best, bestTime
}

// RankCorrelation computes Spearman's rank correlation between two
// equal-length slices (e.g. model-estimated cycles vs measured wall times
// over the method space). Returns a value in [-1, 1]; 1 means identical
// ranking. Ties get fractional ranks.
func RankCorrelation(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ra := ranks(a)
	rb := ranks(b)
	n := float64(len(a))
	var meanA, meanB float64
	for i := range ra {
		meanA += ra[i]
		meanB += rb[i]
	}
	meanA /= n
	meanB /= n
	var cov, varA, varB float64
	for i := range ra {
		da, db := ra[i]-meanA, rb[i]-meanB
		cov += da * db
		varA += da * da
		varB += db * db
	}
	if varA == 0 || varB == 0 { //lint:ignore floateq zero-variance guard before dividing; exact by intent
		return 0
	}
	return cov / (math.Sqrt(varA) * math.Sqrt(varB))
}

func ranks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort by value: n is the method-space size (~30).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && v[idx[j]] < v[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	out := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && v[idx[j+1]] == v[idx[i]] { //lint:ignore floateq rank ties are defined by bit-equal values
			j++
		}
		avg := (float64(i) + float64(j)) / 2
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}
