package perf

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"wise/internal/gen"
	"wise/internal/obs"
	"wise/internal/resilience/faultinject"
)

// Fault-tolerant corpus labeling: labeling dominates harness cost (the
// paper-shaped corpus is ~1,500 matrices with 29 cache-simulated methods
// each), so a single panic, deadline overrun, or SIGTERM must not lose the
// run. LabelCorpusRun adds three layers on top of LabelMatrix:
//
//   - per-matrix isolation: each matrix is labeled in its own goroutine with
//     a recover barrier and an optional deadline; a panicking or overdue
//     matrix is quarantined (name, class, error) and the run continues;
//   - checkpoint/resume: completed labels are periodically flushed to an
//     atomic sidecar file that is itself a valid labels file; a later run
//     with the same checkpoint path skips the finished matrices and the
//     final output is byte-identical to an uninterrupted run;
//   - cancellation: ctx cancellation (SIGINT/SIGTERM via
//     resilience.SignalContext, or an injected fault at site
//     "perf.label.interrupt") flushes the checkpoint and returns
//     ErrInterrupted instead of dying mid-write.

var (
	matricesQuarantined = obs.NewCounter("perf.matrices_quarantined")
	matricesResumed     = obs.NewCounter("perf.matrices_resumed")
	checkpointFlushes   = obs.NewCounter("perf.checkpoint_flushes")
)

// ErrInterrupted reports that labeling stopped early on context cancellation
// (or an injected interrupt); completed work is in the checkpoint file.
var ErrInterrupted = errors.New("perf: labeling interrupted")

// DefaultCheckpointEvery is the checkpoint flush cadence in completed
// matrices when LabelConfig.CheckpointEvery is zero.
const DefaultCheckpointEvery = 16

// QuarantinedMatrix records one matrix withheld from the labeled corpus
// because its labeling attempt panicked, overran the deadline, or failed.
type QuarantinedMatrix struct {
	Name  string
	Class gen.Class
	Err   string
}

// LabelRun is the full result of a fault-tolerant labeling run.
type LabelRun struct {
	Labels      []MatrixLabels      // successfully labeled, in corpus order
	Quarantined []QuarantinedMatrix // failed matrices, in corpus order
	Resumed     int                 // matrices restored from the checkpoint
}

// LabelCorpusRun labels every matrix in parallel with per-matrix panic
// isolation, optional deadlines, and checkpoint/resume; see the package
// comments above. On ctx cancellation it flushes the checkpoint (when
// configured) and returns the partial run with ErrInterrupted. The only
// other errors are checkpoint I/O failures.
func LabelCorpusRun(ctx context.Context, cfg LabelConfig, corpus []gen.Labeled) (LabelRun, error) {
	var run LabelRun
	out := make([]MatrixLabels, len(corpus))
	done := make([]bool, len(corpus))

	if cfg.Checkpoint != "" {
		prior, err := LoadLabels(cfg.Checkpoint)
		switch {
		case err == nil:
			byName := make(map[string]int, len(corpus))
			for i, lm := range corpus {
				byName[lm.Name] = i
			}
			for _, l := range prior {
				if i, ok := byName[l.Name]; ok && !done[i] {
					out[i] = l
					done[i] = true
					run.Resumed++
				}
			}
			matricesResumed.Add(int64(run.Resumed))
		case errors.Is(err, os.ErrNotExist):
			// First run: the checkpoint appears at the first flush.
		default:
			return run, fmt.Errorf("perf: resuming from checkpoint: %w", err)
		}
	}

	pending := make([]int, 0, len(corpus))
	for i := range corpus {
		if !done[i] {
			pending = append(pending, i)
		}
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	corpusSize.Set(float64(len(corpus)))
	labelWorkers.Set(float64(workers))
	progress := obs.StartProgress("label", len(corpus))
	defer progress.Finish()
	progress.Add(run.Resumed)

	flush := func() error {
		if cfg.Checkpoint == "" {
			return nil
		}
		completed := make([]MatrixLabels, 0, len(corpus))
		for i := range corpus {
			if done[i] {
				completed = append(completed, out[i])
			}
		}
		if err := SaveLabels(cfg.Checkpoint, completed); err != nil {
			return fmt.Errorf("perf: writing checkpoint: %w", err)
		}
		checkpointFlushes.Inc()
		return nil
	}

	type labelResult struct {
		i      int
		labels MatrixLabels
		err    error
	}

	ictx, cancel := context.WithCancel(ctx)
	defer cancel()

	var mu sync.Mutex
	next := 0
	results := make(chan labelResult)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ictx.Err() != nil {
					return
				}
				mu.Lock()
				k := next
				next++
				mu.Unlock()
				if k >= len(pending) {
					return
				}
				i := pending[k]
				l, err := labelOne(ictx, cfg, corpus[i])
				select {
				case results <- labelResult{i: i, labels: l, err: err}:
				case <-ictx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	every := cfg.CheckpointEvery
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	sinceFlush := 0
	quarantined := make([]labelResult, 0, len(pending))
	interrupted := false
	var flushErr error
	for r := range results {
		if r.err != nil {
			if errors.Is(r.err, context.Canceled) || errors.Is(r.err, context.DeadlineExceeded) {
				continue // attempt abandoned by cancellation, not a matrix failure
			}
			quarantined = append(quarantined, r)
			matricesQuarantined.Inc()
			progress.Add(1)
			continue
		}
		out[r.i] = r.labels
		done[r.i] = true
		progress.Add(1)
		sinceFlush++
		if cfg.Checkpoint != "" && sinceFlush >= every && flushErr == nil {
			if flushErr = flush(); flushErr == nil {
				sinceFlush = 0
			}
		}
		// Test hook: an injected fault here cancels labeling through the
		// same path SIGINT/SIGTERM uses, for kill-and-resume tests.
		if err := faultinject.Hit("perf.label.interrupt"); err != nil {
			interrupted = true
			cancel()
		}
	}

	sort.Slice(quarantined, func(a, b int) bool { return quarantined[a].i < quarantined[b].i })
	run.Quarantined = make([]QuarantinedMatrix, 0, len(quarantined))
	for _, r := range quarantined {
		run.Quarantined = append(run.Quarantined, QuarantinedMatrix{
			Name:  corpus[r.i].Name,
			Class: corpus[r.i].Class,
			Err:   r.err.Error(),
		})
	}
	run.Labels = make([]MatrixLabels, 0, len(corpus))
	for i := range corpus {
		if done[i] {
			run.Labels = append(run.Labels, out[i])
		}
	}

	if interrupted || ctx.Err() != nil {
		if err := flush(); err != nil {
			return run, fmt.Errorf("%w; checkpoint flush also failed: %v", ErrInterrupted, err)
		}
		if cfg.Checkpoint != "" {
			return run, fmt.Errorf("%w: %d/%d matrices labeled; checkpoint saved to %s",
				ErrInterrupted, len(run.Labels), len(corpus), cfg.Checkpoint)
		}
		return run, fmt.Errorf("%w: %d/%d matrices labeled", ErrInterrupted, len(run.Labels), len(corpus))
	}
	if flushErr != nil {
		return run, flushErr
	}
	return run, flush()
}

// labelOne labels a single matrix in its own goroutine so a panic or
// deadline overrun is contained to that matrix. The attempt gets a private
// Estimator copy (the cache simulator is stateful), so an abandoned overdue
// attempt cannot race with later work.
func labelOne(ctx context.Context, cfg LabelConfig, lm gen.Labeled) (MatrixLabels, error) {
	type attempt struct {
		labels MatrixLabels
		err    error
	}
	ch := make(chan attempt, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- attempt{err: fmt.Errorf("perf: labeling %s panicked: %v", lm.Name, r)}
			}
		}()
		if err := faultinject.Hit("perf.label.matrix"); err != nil {
			ch <- attempt{err: fmt.Errorf("perf: labeling %s: %w", lm.Name, err)}
			return
		}
		ecopy := *cfg.Estimator
		local := cfg
		local.Estimator = &ecopy
		ch <- attempt{labels: LabelMatrix(local, lm)}
	}()
	var deadline <-chan time.Time
	if cfg.MatrixDeadline > 0 {
		t := time.NewTimer(cfg.MatrixDeadline)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case a := <-ch:
		return a.labels, a.err
	case <-deadline:
		return MatrixLabels{}, fmt.Errorf("perf: labeling %s exceeded the per-matrix deadline %v", lm.Name, cfg.MatrixDeadline)
	case <-ctx.Done():
		return MatrixLabels{}, ctx.Err()
	}
}
