package perf

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"wise/internal/features"
	"wise/internal/gen"
	"wise/internal/kernels"
	"wise/internal/resilience"
)

// Label persistence: corpus labeling is the dominant cost of the experiment
// harness (cache-simulating 29 methods per matrix), so wise-bench can save
// the labels once and reload them for iterating on figures and models. The
// same format backs LabelCorpusRun checkpoints. Files are written atomically
// inside a checksummed resilience envelope (kind "wise-labels") wrapping the
// gzipped JSON, so truncation and corruption fail loudly at load; files
// saved before the envelope era (raw gzip) still load.

// labelsArtifactKind tags label files and checkpoints in their envelope.
const labelsArtifactKind = "wise-labels"

type persistedLabels struct {
	Version int              `json:"version"`
	Labels  []persistedLabel `json:"labels"`
}

type persistedLabel struct {
	Name          string    `json:"name"`
	Class         string    `json:"class"`
	Rows          int       `json:"rows"`
	Cols          int       `json:"cols"`
	NNZ           int64     `json:"nnz"`
	FeatureNames  []string  `json:"feature_names"`
	FeatureValues []float64 `json:"feature_values"`

	Methods  []persistedLabelMethod `json:"methods"`
	BestCSR  persistedLabelMethod   `json:"best_csr"`
	BestCyc  float64                `json:"best_csr_cycles"`
	FeatCyc  float64                `json:"feature_cycles"`
	MKLCyc   float64                `json:"mkl_cycles"`
	IECyc    float64                `json:"ie_cycles"`
	IEPrep   float64                `json:"ie_prep_cycles"`
	IEMethod persistedLabelMethod   `json:"ie_method"`
}

type persistedLabelMethod struct {
	Kind  int     `json:"kind"`
	Sched int     `json:"sched"`
	C     int     `json:"c"`
	Sigma int     `json:"sigma"`
	T     float64 `json:"t"`

	Cycles   float64 `json:"cycles,omitempty"`
	RelTime  float64 `json:"rel,omitempty"`
	Class    int     `json:"class,omitempty"`
	PrepCost float64 `json:"prep,omitempty"`
}

func toPersistedMethod(m kernels.Method) persistedLabelMethod {
	return persistedLabelMethod{Kind: int(m.Kind), Sched: int(m.Sched), C: m.C, Sigma: m.Sigma, T: m.T}
}

func (p persistedLabelMethod) method() kernels.Method {
	return kernels.Method{Kind: kernels.Kind(p.Kind), Sched: kernels.Sched(p.Sched), C: p.C, Sigma: p.Sigma, T: p.T}
}

// SaveLabels atomically writes a labeled corpus to path as an enveloped,
// checksummed, gzipped JSON artifact. The output is deterministic in the
// labels, so identical corpora produce byte-identical files.
func SaveLabels(path string, labels []MatrixLabels) error {
	payload, err := encodeLabels(labels)
	if err != nil {
		return fmt.Errorf("perf: encoding labels for %s: %w", path, err)
	}
	if err := resilience.WriteArtifact(path, labelsArtifactKind, 1, payload); err != nil {
		return fmt.Errorf("perf: saving labels to %s: %w", path, err)
	}
	return nil
}

// encodeLabels renders the gzipped-JSON payload of a labels artifact.
func encodeLabels(labels []MatrixLabels) ([]byte, error) {
	out := persistedLabels{Version: 1}
	out.Labels = make([]persistedLabel, 0, len(labels))
	for _, l := range labels {
		pl := persistedLabel{
			Name: l.Name, Class: string(l.Class),
			Rows: l.Rows, Cols: l.Cols, NNZ: l.NNZ,
			FeatureNames:  l.Features.Names,
			FeatureValues: l.Features.Values,
			BestCSR:       toPersistedMethod(l.BestCSRMethod),
			BestCyc:       l.BestCSRCycles,
			FeatCyc:       l.FeatureCycles,
			MKLCyc:        l.MKLCycles,
			IECyc:         l.IECycles,
			IEPrep:        l.IEPrepCycles,
			IEMethod:      toPersistedMethod(l.IEMethod),
		}
		pl.Methods = make([]persistedLabelMethod, 0, len(l.Methods))
		for i, m := range l.Methods {
			pm := toPersistedMethod(m)
			pm.Cycles = l.Cycles[i]
			pm.RelTime = l.RelTime[i]
			pm.Class = l.Classes[i]
			pm.PrepCost = l.PrepCost[i]
			pl.Methods = append(pl.Methods, pm)
		}
		out.Labels = append(out.Labels, pl)
	}
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if err := json.NewEncoder(gz).Encode(out); err != nil {
		return nil, err
	}
	if err := gz.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// LoadLabels reads a labeled corpus saved with SaveLabels. Enveloped files
// are checksum-verified; raw gzip files from before the envelope era load
// through the legacy path. Corrupt or truncated files of either era return
// descriptive errors, never panics or JSON garbage.
func LoadLabels(path string) ([]MatrixLabels, error) {
	env, raw, err := resilience.ReadArtifact(path, labelsArtifactKind)
	payload := env.Payload
	if err != nil {
		if !errors.Is(err, resilience.ErrNotEnveloped) {
			return nil, fmt.Errorf("perf: loading labels: %w", err)
		}
		// Pre-envelope files are raw gzip streams; anything else is junk.
		if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
			return nil, fmt.Errorf("perf: %s is neither a wise-labels artifact nor a legacy gzipped label file", path)
		}
		payload = raw
	}
	gz, err := gzip.NewReader(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("perf: %s: opening gzipped label payload: %w", path, err)
	}
	var in persistedLabels
	if err := json.NewDecoder(gz).Decode(&in); err != nil {
		return nil, fmt.Errorf("perf: parsing %s: %w", path, err)
	}
	// Drain to EOF so the gzip checksum is verified: a truncated stream
	// whose JSON value happened to decode must still fail loudly.
	if _, err := io.Copy(io.Discard, gz); err != nil {
		return nil, fmt.Errorf("perf: %s: gzipped label payload is corrupt or truncated: %w", path, err)
	}
	if err := gz.Close(); err != nil {
		return nil, fmt.Errorf("perf: %s: gzipped label payload is corrupt or truncated: %w", path, err)
	}
	if in.Version != 1 {
		return nil, fmt.Errorf("perf: %s: unsupported label file version %d", path, in.Version)
	}
	out := make([]MatrixLabels, 0, len(in.Labels))
	for _, pl := range in.Labels {
		l := MatrixLabels{
			Name: pl.Name, Class: gen.Class(pl.Class),
			Rows: pl.Rows, Cols: pl.Cols, NNZ: pl.NNZ,
			Features: features.Features{
				Names:  pl.FeatureNames,
				Values: pl.FeatureValues,
			},
			BestCSRMethod: pl.BestCSR.method(),
			BestCSRCycles: pl.BestCyc,
			FeatureCycles: pl.FeatCyc,
			MKLCycles:     pl.MKLCyc,
			IECycles:      pl.IECyc,
			IEPrepCycles:  pl.IEPrep,
			IEMethod:      pl.IEMethod.method(),
		}
		n := len(pl.Methods)
		l.Methods = make([]kernels.Method, 0, n)
		l.Cycles = make([]float64, 0, n)
		l.RelTime = make([]float64, 0, n)
		l.Classes = make([]int, 0, n)
		l.PrepCost = make([]float64, 0, n)
		for _, pm := range pl.Methods {
			l.Methods = append(l.Methods, pm.method())
			l.Cycles = append(l.Cycles, pm.Cycles)
			l.RelTime = append(l.RelTime, pm.RelTime)
			l.Classes = append(l.Classes, pm.Class)
			l.PrepCost = append(l.PrepCost, pm.PrepCost)
		}
		out = append(out, l)
	}
	return out, nil
}
