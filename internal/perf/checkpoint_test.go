package perf

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wise/internal/gen"
	"wise/internal/obs"
	"wise/internal/resilience/faultinject"
)

func checkpointCorpus(t *testing.T) []gen.Labeled {
	t.Helper()
	corpus := gen.Corpus(gen.CorpusConfig{
		Seed:      7,
		RowScales: []float64{8},
		Degrees:   []float64{4, 8},
		MaxNNZ:    1 << 20,
		SciCount:  3,
	})
	if len(corpus) < 5 {
		t.Fatalf("test corpus too small: %d matrices", len(corpus))
	}
	return corpus
}

// Kill-and-resume determinism: a run interrupted mid-labeling (via fault
// injection, the same cancellation path SIGINT takes) and resumed from its
// checkpoint must produce a byte-identical labels file to an uninterrupted
// run.
func TestLabelCorpusRunCheckpointResumeIdentical(t *testing.T) {
	corpus := checkpointCorpus(t)
	dir := t.TempDir()

	reference := filepath.Join(dir, "reference.labels")
	refCfg := smallLabelConfig()
	refRun, err := LabelCorpusRun(context.Background(), refCfg, corpus)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	if len(refRun.Labels) != len(corpus) || len(refRun.Quarantined) != 0 {
		t.Fatalf("uninterrupted run: %d labels, %d quarantined", len(refRun.Labels), len(refRun.Quarantined))
	}
	if err := SaveLabels(reference, refRun.Labels); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel after the third completed matrix. Flush every
	// completion so the checkpoint holds everything completed so far.
	checkpoint := filepath.Join(dir, "run.checkpoint")
	cfg := smallLabelConfig()
	cfg.Checkpoint = checkpoint
	cfg.CheckpointEvery = 1
	if err := faultinject.Configure("perf.label.interrupt:error:after=2", 1); err != nil {
		t.Fatal(err)
	}
	run, err := LabelCorpusRun(context.Background(), cfg, corpus)
	faultinject.Disable()
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run err = %v, want ErrInterrupted", err)
	}
	if len(run.Labels) == 0 || len(run.Labels) >= len(corpus) {
		t.Fatalf("interrupted run labeled %d of %d, want a strict partial", len(run.Labels), len(corpus))
	}
	if _, err := os.Stat(checkpoint); err != nil {
		t.Fatalf("no checkpoint after interrupt: %v", err)
	}

	// Resume: same checkpoint, no faults.
	resumeCfg := smallLabelConfig()
	resumeCfg.Checkpoint = checkpoint
	resumed, err := LabelCorpusRun(context.Background(), resumeCfg, corpus)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if resumed.Resumed == 0 {
		t.Fatal("resumed run restored nothing from the checkpoint")
	}
	if len(resumed.Labels) != len(corpus) {
		t.Fatalf("resumed run labeled %d of %d", len(resumed.Labels), len(corpus))
	}

	final := filepath.Join(dir, "final.labels")
	if err := SaveLabels(final, resumed.Labels); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(reference)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(final)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed labels file differs from uninterrupted run")
	}
}

// A labeling panic on one matrix must quarantine that matrix — with its
// name, class, and error — and leave the rest of the corpus labeled.
func TestLabelCorpusRunQuarantinesPanic(t *testing.T) {
	corpus := checkpointCorpus(t)
	cfg := smallLabelConfig() // Workers: 1, so fault hit order is corpus order
	before := obs.NewCounter("perf.matrices_quarantined").Value()
	if err := faultinject.Configure("perf.label.matrix:panic:after=1", 1); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disable()
	run, err := LabelCorpusRun(context.Background(), cfg, corpus)
	if err != nil {
		t.Fatalf("run failed instead of quarantining: %v", err)
	}
	if len(run.Quarantined) != 1 {
		t.Fatalf("quarantined %d matrices, want 1: %+v", len(run.Quarantined), run.Quarantined)
	}
	q := run.Quarantined[0]
	if q.Name != corpus[1].Name || q.Class != corpus[1].Class {
		t.Fatalf("quarantined %q/%s, want %q/%s", q.Name, q.Class, corpus[1].Name, corpus[1].Class)
	}
	if !strings.Contains(q.Err, "panicked") {
		t.Fatalf("quarantine error %q does not mention the panic", q.Err)
	}
	if len(run.Labels) != len(corpus)-1 {
		t.Fatalf("labeled %d, want %d (all but the quarantined one)", len(run.Labels), len(corpus)-1)
	}
	for _, l := range run.Labels {
		if l.Name == q.Name {
			t.Fatal("quarantined matrix leaked into the labeled output")
		}
	}
	if got := obs.NewCounter("perf.matrices_quarantined").Value(); got != before+1 {
		t.Fatalf("quarantine counter moved %d, want +1", got-before)
	}
}

// An overdue matrix (injected delay beyond the per-matrix deadline) is
// quarantined with a deadline error; the run completes.
func TestLabelCorpusRunDeadline(t *testing.T) {
	corpus := checkpointCorpus(t)
	cfg := smallLabelConfig()
	cfg.MatrixDeadline = 50 * time.Millisecond
	if err := faultinject.Configure("perf.label.matrix:delay:d=2s:after=2", 1); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disable()
	start := time.Now()
	run, err := LabelCorpusRun(context.Background(), cfg, corpus)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Quarantined) != 1 {
		t.Fatalf("quarantined %d, want 1: %+v", len(run.Quarantined), run.Quarantined)
	}
	if !strings.Contains(run.Quarantined[0].Err, "deadline") {
		t.Fatalf("quarantine error %q does not mention the deadline", run.Quarantined[0].Err)
	}
	if elapsed := time.Since(start); elapsed > 1500*time.Millisecond {
		t.Fatalf("run waited %v for the overdue matrix instead of abandoning it", elapsed)
	}
	if len(run.Labels) != len(corpus)-1 {
		t.Fatalf("labeled %d, want %d", len(run.Labels), len(corpus)-1)
	}
}

// External context cancellation interrupts the run and flushes the
// checkpoint, mirroring SIGINT/SIGTERM handling in the CLIs.
func TestLabelCorpusRunExternalCancel(t *testing.T) {
	corpus := checkpointCorpus(t)
	cfg := smallLabelConfig()
	cfg.Checkpoint = filepath.Join(t.TempDir(), "cancel.checkpoint")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	run, err := LabelCorpusRun(ctx, cfg, corpus)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if len(run.Labels) == len(corpus) {
		t.Fatal("pre-cancelled run still labeled everything")
	}
	if _, err := os.Stat(cfg.Checkpoint); err != nil {
		t.Fatalf("no checkpoint flushed on cancellation: %v", err)
	}
}

// A checkpoint from a partially overlapping corpus resumes the overlap and
// labels the rest.
func TestLabelCorpusRunResumeSubset(t *testing.T) {
	corpus := checkpointCorpus(t)
	cfg := smallLabelConfig()
	full, err := LabelCorpusRun(context.Background(), cfg, corpus)
	if err != nil {
		t.Fatal(err)
	}
	checkpoint := filepath.Join(t.TempDir(), "subset.checkpoint")
	if err := SaveLabels(checkpoint, full.Labels[:2]); err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = checkpoint
	run, err := LabelCorpusRun(context.Background(), cfg, corpus)
	if err != nil {
		t.Fatal(err)
	}
	if run.Resumed != 2 {
		t.Fatalf("resumed %d, want 2", run.Resumed)
	}
	if len(run.Labels) != len(corpus) {
		t.Fatalf("labeled %d, want %d", len(run.Labels), len(corpus))
	}
	for i := range run.Labels {
		if run.Labels[i].Name != full.Labels[i].Name {
			t.Fatal("resumed labels out of corpus order")
		}
	}
}
