package perf

import (
	"math"
	"math/rand"
	"os"
	"testing"
	"testing/quick"

	"wise/internal/costmodel"
	"wise/internal/features"
	"wise/internal/gen"
	"wise/internal/kernels"
	"wise/internal/machine"
)

func TestClassOfBoundaries(t *testing.T) {
	cases := []struct {
		rel  float64
		want int
	}{
		{5.0, 0},   // big slowdown
		{1.06, 0},  //
		{1.05, 1},  // boundary belongs to C1: (1.05, 0.95] wait — C1 = (1.05-0.95]
		{1.0, 1},   // parity
		{0.95, 2},  // boundary
		{0.9, 2},   //
		{0.85, 3},  //
		{0.8, 3},   //
		{0.75, 4},  //
		{0.7, 4},   //
		{0.65, 5},  //
		{0.6, 5},   //
		{0.55, 6},  //
		{0.3, 6},   // >2x speedup
		{0.001, 6}, //
	}
	for _, c := range cases {
		if got := ClassOf(c.rel); got != c.want {
			t.Errorf("ClassOf(%v) = C%d, want C%d", c.rel, got, c.want)
		}
	}
}

func TestClassOfMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if a > b {
			a, b = b, a
		}
		// Slower (larger rel time) must never get a faster class (higher C).
		return ClassOf(b) <= ClassOf(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassBoundsCoverPositiveAxis(t *testing.T) {
	for c := 0; c < NumClasses; c++ {
		hi, lo := ClassBounds(c)
		if hi <= lo {
			t.Errorf("class %d bounds inverted: (%v, %v]", c, hi, lo)
		}
		if c > 0 {
			prevHi, prevLo := ClassBounds(c - 1)
			if prevLo != hi {
				t.Errorf("gap between class %d and %d: %v vs %v", c-1, c, prevLo, hi)
			}
			_ = prevHi
		}
		mid := ClassMidpoint(c)
		if ClassOf(mid) != c {
			t.Errorf("midpoint %v of class %d classifies as %d", mid, c, ClassOf(mid))
		}
	}
}

func smallLabelConfig() LabelConfig {
	return LabelConfig{
		Estimator: costmodel.New(machine.Scaled()),
		Space:     kernels.ModelSpace(machine.Scaled()),
		Features:  features.DefaultConfig(),
		Workers:   1,
	}
}

func TestLabelMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lm := gen.Labeled{Name: "t", Class: gen.ClassHS, M: gen.RMAT(rng, 9, 8, gen.HighSkew)}
	cfg := smallLabelConfig()
	labels := LabelMatrix(cfg, lm)
	if labels.Name != "t" || labels.Rows != 512 {
		t.Fatalf("metadata wrong: %+v", labels)
	}
	if len(labels.Cycles) != len(cfg.Space) || len(labels.Classes) != len(cfg.Space) {
		t.Fatal("per-method arrays wrong length")
	}
	// The best CSR method's rel time must be 1 and class C1.
	foundBaseline := false
	for i, m := range labels.Methods {
		if m == labels.BestCSRMethod {
			if math.Abs(labels.RelTime[i]-1) > 1e-9 {
				t.Errorf("best CSR rel time = %v", labels.RelTime[i])
			}
			if labels.Classes[i] != 1 {
				t.Errorf("best CSR class = C%d", labels.Classes[i])
			}
			foundBaseline = true
		}
		if labels.Cycles[i] <= 0 {
			t.Errorf("%s: non-positive cycles", m)
		}
		if labels.Classes[i] != ClassOf(labels.RelTime[i]) {
			t.Errorf("%s: class inconsistent", m)
		}
	}
	if !foundBaseline {
		t.Error("best CSR method not in space")
	}
	if labels.FeatureCycles <= 0 {
		t.Error("feature cycles missing")
	}
	oracle := labels.OracleIndex()
	for i := range labels.Cycles {
		if labels.Cycles[i] < labels.Cycles[oracle] {
			t.Fatal("OracleIndex not minimal")
		}
	}
}

func TestLabelCorpusParallelMatchesSerial(t *testing.T) {
	cfg := gen.CorpusConfig{
		Seed:      3,
		RowScales: []float64{8},
		Degrees:   []float64{4},
		MaxNNZ:    1 << 20,
		SciCount:  2,
	}
	corpus := gen.Corpus(cfg)
	serialCfg := smallLabelConfig()
	serial := LabelCorpus(serialCfg, corpus)
	parallelCfg := smallLabelConfig()
	parallelCfg.Workers = 4
	parallel := LabelCorpus(parallelCfg, corpus)
	if len(serial) != len(parallel) {
		t.Fatal("length mismatch")
	}
	for i := range serial {
		if serial[i].Name != parallel[i].Name {
			t.Fatal("order not preserved")
		}
		for j := range serial[i].Cycles {
			if serial[i].Cycles[j] != parallel[i].Cycles[j] {
				t.Fatalf("%s method %d: serial %v != parallel %v",
					serial[i].Name, j, serial[i].Cycles[j], parallel[i].Cycles[j])
			}
		}
	}
}

func TestLabelsProduceMultipleClasses(t *testing.T) {
	// Across a diverse mini-corpus the labels must not collapse into a
	// single class (otherwise there is nothing for the models to learn).
	cfg := gen.CorpusConfig{
		Seed:      4,
		RowScales: []float64{9, 11},
		Degrees:   []float64{4, 16},
		MaxNNZ:    1 << 21,
		SciCount:  4,
	}
	corpus := gen.Corpus(cfg)
	labels := LabelCorpus(smallLabelConfig(), corpus)
	seen := map[int]bool{}
	for _, l := range labels {
		for _, c := range l.Classes {
			seen[c] = true
		}
	}
	if len(seen) < 3 {
		t.Errorf("only %d distinct classes across corpus: %v", len(seen), seen)
	}
}

func TestLabelsSaveLoadRoundTrip(t *testing.T) {
	cfg := gen.CorpusConfig{
		Seed:      5,
		RowScales: []float64{8},
		Degrees:   []float64{4},
		MaxNNZ:    1 << 20,
		SciCount:  3,
	}
	corpus := gen.Corpus(cfg)
	labels := LabelCorpus(smallLabelConfig(), corpus)
	path := t.TempDir() + "/labels.json.gz"
	if err := SaveLabels(path, labels); err != nil {
		t.Fatal(err)
	}
	back, err := LoadLabels(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(labels) {
		t.Fatalf("got %d labels, want %d", len(back), len(labels))
	}
	for i := range labels {
		a, b := labels[i], back[i]
		if a.Name != b.Name || a.Class != b.Class || a.NNZ != b.NNZ {
			t.Fatalf("metadata mismatch at %d", i)
		}
		if a.BestCSRMethod != b.BestCSRMethod || a.BestCSRCycles != b.BestCSRCycles {
			t.Fatal("best CSR mismatch")
		}
		if a.MKLCycles != b.MKLCycles || a.IECycles != b.IECycles || a.IEPrepCycles != b.IEPrepCycles {
			t.Fatal("baseline fields mismatch")
		}
		for j := range a.Methods {
			if a.Methods[j] != b.Methods[j] || a.Cycles[j] != b.Cycles[j] ||
				a.Classes[j] != b.Classes[j] || a.RelTime[j] != b.RelTime[j] ||
				a.PrepCost[j] != b.PrepCost[j] {
				t.Fatalf("method %d mismatch at matrix %d", j, i)
			}
		}
		for k := range a.Features.Values {
			if a.Features.Values[k] != b.Features.Values[k] {
				t.Fatal("features mismatch")
			}
		}
	}
}

func TestLoadLabelsErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadLabels(dir + "/missing.gz"); err == nil {
		t.Error("missing file accepted")
	}
	bad := dir + "/bad.gz"
	if err := os.WriteFile(bad, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLabels(bad); err == nil {
		t.Error("non-gzip accepted")
	}
}
