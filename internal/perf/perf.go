// Package perf turns cost-model estimates into the paper's training labels:
// the speedup classes C0-C6 of normalized execution time relative to the
// best CSR implementation (Section 4.3), plus per-matrix label bundles for
// the whole corpus and the whole method space.
package perf

import (
	"context"
	"time"

	"wise/internal/costmodel"
	"wise/internal/features"
	"wise/internal/gen"
	"wise/internal/kernels"
	"wise/internal/mkl"
	"wise/internal/obs"
)

// Observability instruments (documented in OBSERVABILITY.md).
var (
	matricesLabeled = obs.NewCounter("perf.matrices_labeled")
	labelSeconds    = obs.NewHistogram("perf.label_seconds", nil)
	corpusSize      = obs.NewGauge("perf.corpus_size")
	labelWorkers    = obs.NewGauge("perf.label_workers")
)

// NumClasses is the number of speedup classes (C0-C6).
const NumClasses = 7

// classUpper[i] is the exclusive upper bound of class i's normalized
// execution time range; class i covers (classUpper[i+1], classUpper[i]].
// C0 = (1.05, inf), C1 = (0.95, 1.05], ..., C6 = (0, 0.55].
var classUpper = [NumClasses + 1]float64{1e300, 1.05, 0.95, 0.85, 0.75, 0.65, 0.55, 0}

// ClassOf maps a normalized execution time (method cycles / best-CSR cycles;
// lower is faster) to its speedup class. Values above 1.05 (slowdowns) are
// C0; values at or below 0.55 (speedup beyond ~2x) are C6.
func ClassOf(relTime float64) int {
	for c := 1; c <= NumClasses-1; c++ {
		if relTime > classUpper[c] {
			return c - 1
		}
	}
	return NumClasses - 1
}

// ClassBounds returns the (upper, lower] normalized-time bounds of a class.
func ClassBounds(c int) (hi, lo float64) {
	return classUpper[c], classUpper[c+1]
}

// ClassMidpoint returns a representative normalized time for a class, used
// when the selection heuristic compares predicted classes numerically. For
// the open-ended classes it returns a value just inside the boundary.
func ClassMidpoint(c int) float64 {
	switch c {
	case 0:
		return 1.25
	case NumClasses - 1:
		return 0.45
	default:
		hi, lo := ClassBounds(c)
		return (hi + lo) / 2
	}
}

// MatrixLabels bundles everything the training and evaluation pipelines
// need about one matrix: its features, the estimated cycles of every method,
// normalized times, speedup classes, and preprocessing costs.
type MatrixLabels struct {
	Name  string
	Class gen.Class

	Rows, Cols int
	NNZ        int64

	Features features.Features

	Methods  []kernels.Method
	Cycles   []float64 // estimated parallel SpMV cycles per method
	RelTime  []float64 // Cycles / BestCSRCycles
	Classes  []int     // ClassOf(RelTime)
	PrepCost []float64 // format-conversion cycles per method

	BestCSRMethod kernels.Method
	BestCSRCycles float64

	FeatureCycles float64 // WISE feature-extraction cost

	// Baseline-library comparisons (see internal/mkl).
	MKLCycles    float64
	IEMethod     kernels.Method
	IECycles     float64
	IEPrepCycles float64
}

// OracleIndex returns the index of the truly fastest method.
func (l *MatrixLabels) OracleIndex() int {
	best := 0
	for i := range l.Cycles {
		if l.Cycles[i] < l.Cycles[best] {
			best = i
		}
	}
	return best
}

// LabelConfig configures corpus labeling.
type LabelConfig struct {
	Estimator *costmodel.Estimator
	Space     []kernels.Method
	Features  features.Config
	Workers   int // parallel labeling workers; 0 = GOMAXPROCS

	// Fault-tolerance knobs, consumed by LabelCorpusRun (see checkpoint.go).
	Checkpoint      string        // sidecar labels file for checkpoint/resume; "" disables
	CheckpointEvery int           // flush cadence in completed matrices; 0 = DefaultCheckpointEvery
	MatrixDeadline  time.Duration // per-matrix labeling deadline; 0 = none
}

// LabelMatrix computes the full label bundle for one matrix.
func LabelMatrix(cfg LabelConfig, lm gen.Labeled) MatrixLabels {
	t0 := time.Now()
	defer func() {
		matricesLabeled.Inc()
		labelSeconds.ObserveDuration(time.Since(t0))
	}()
	e := cfg.Estimator
	m := lm.M
	out := MatrixLabels{
		Name:  lm.Name,
		Class: lm.Class,
		Rows:  m.Rows,
		Cols:  m.Cols,
		NNZ:   int64(m.NNZ()),
	}
	out.Features = features.Extract(m, cfg.Features)
	out.BestCSRMethod, out.BestCSRCycles = e.BestCSR(m)
	out.Methods = cfg.Space
	out.Cycles = make([]float64, len(cfg.Space))
	out.RelTime = make([]float64, len(cfg.Space))
	out.Classes = make([]int, len(cfg.Space))
	out.PrepCost = make([]float64, len(cfg.Space))
	tiles := cfg.Features.K * cfg.Features.K
	out.FeatureCycles = e.FeatureExtractionCycles(m.Rows, m.Cols, out.NNZ, tiles)
	for i, method := range cfg.Space {
		out.Cycles[i] = e.MethodCycles(m, method)
		if out.BestCSRCycles > 0 {
			out.RelTime[i] = out.Cycles[i] / out.BestCSRCycles
		} else {
			out.RelTime[i] = 1
		}
		out.Classes[i] = ClassOf(out.RelTime[i])
		out.PrepCost[i] = e.PreprocessCycles(m.Rows, m.Cols, out.NNZ, method)
	}

	// Baseline library comparisons, derived from the estimates above.
	for i, method := range cfg.Space {
		if method.Kind == kernels.CSR && method.Sched == kernels.StCont {
			out.MKLCycles = mkl.BaselineFromCycles(out.Cycles[i])
		}
	}
	ie := mkl.IEFromEstimates(e.Mach.SigmaValues()[1], cfg.Space, out.Cycles, out.PrepCost)
	out.IEMethod = ie.Chosen
	out.IECycles = ie.Cycles
	out.IEPrepCycles = ie.PrepCycles
	return out
}

// ExtendLabels appends per-matrix labels for one additional method — the
// paper's extensibility workflow (Section 7: "we can add new methods without
// changing already existing models"). corpus must be the same matrices, in
// the same order, that produced labels. The input slice is not modified.
func ExtendLabels(cfg LabelConfig, corpus []gen.Labeled, labels []MatrixLabels, method kernels.Method) []MatrixLabels {
	out := make([]MatrixLabels, len(labels))
	copy(out, labels)
	e := cfg.Estimator
	for i := range out {
		m := corpus[i].M
		cycles := e.MethodCycles(m, method)
		rel := 1.0
		if out[i].BestCSRCycles > 0 {
			rel = cycles / out[i].BestCSRCycles
		}
		out[i].Methods = append(append([]kernels.Method(nil), out[i].Methods...), method)
		out[i].Cycles = append(append([]float64(nil), out[i].Cycles...), cycles)
		out[i].RelTime = append(append([]float64(nil), out[i].RelTime...), rel)
		out[i].Classes = append(append([]int(nil), out[i].Classes...), ClassOf(rel))
		out[i].PrepCost = append(append([]float64(nil), out[i].PrepCost...),
			e.PreprocessCycles(m.Rows, m.Cols, out[i].NNZ, method))
	}
	return out
}

// LabelCorpus labels every matrix, in parallel across matrices, with
// per-matrix panic isolation (see LabelCorpusRun). Each attempt gets its own
// Estimator copy (the cache simulator is stateful). In verbose mode
// (obs.SetVerbose) it reports live progress with ETA. Quarantined matrices
// are silently omitted; callers that need the quarantine report, deadlines,
// or checkpoint/resume use LabelCorpusRun directly.
func LabelCorpus(cfg LabelConfig, corpus []gen.Labeled) []MatrixLabels {
	cfg.Checkpoint = ""
	run, _ := LabelCorpusRun(context.Background(), cfg, corpus)
	return run.Labels
}
