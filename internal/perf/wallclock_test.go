package perf

import (
	"math/rand"
	"testing"
	"time"

	"wise/internal/costmodel"
	"wise/internal/gen"
	"wise/internal/kernels"
	"wise/internal/machine"
)

func fastWallClock() WallClockConfig {
	return WallClockConfig{Workers: 1, WarmupRuns: 1, MinRuns: 2, MinTime: 0, RowBlock: 32}
}

func TestMeasureFormatPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := gen.Banded(rng, 1024, []int{-1, 0, 1})
	f := kernels.BuildCSRFormat(m, kernels.Dyn, 32)
	d := MeasureFormat(f, m.Rows, m.Cols, fastWallClock())
	if d <= 0 {
		t.Errorf("measured %v", d)
	}
}

func TestMeasureMethodsCoversSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := gen.RMAT(rng, 8, 6, gen.MedSkew)
	space := []kernels.Method{
		{Kind: kernels.CSR, Sched: kernels.StCont},
		{Kind: kernels.SELLPACK, C: 4, Sched: kernels.Dyn},
		{Kind: kernels.SellCR, C: 4, Sched: kernels.Dyn},
	}
	times := MeasureMethods(m, space, fastWallClock())
	if len(times) != len(space) {
		t.Fatal("length mismatch")
	}
	for i, d := range times {
		if d <= 0 {
			t.Errorf("%s: %v", space[i], d)
		}
	}
}

func TestMeasureBestCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := gen.Banded(rng, 2048, []int{-1, 0, 1})
	method, d := MeasureBestCSR(m, fastWallClock())
	if method.Kind != kernels.CSR || d <= 0 {
		t.Errorf("best = %s in %v", method, d)
	}
}

// noopFormat is an instant "kernel": the degenerate fast case that used to
// spin the measurement loop through its fixed 10k-run breakout.
type noopFormat struct{ calls int }

func (n *noopFormat) SpMV(y, x []float64)                      { n.calls++ }
func (n *noopFormat) SpMVParallel(y, x []float64, workers int) { n.calls++ }

// A sub-timer-granularity kernel must terminate quickly under the MaxTime
// budget instead of chasing MinTime run by run, and must still return a
// positive duration (zero samples are clamped to 1ns).
func TestMeasureFormatBudgetBoundsFastKernels(t *testing.T) {
	cfg := fastWallClock()
	cfg.MinRuns = 1
	cfg.MinTime = time.Hour // unreachable: only the budget can stop the loop
	cfg.MaxTime = 5 * time.Millisecond
	f := &noopFormat{}
	start := time.Now()
	d := MeasureFormat(f, 1, 1, cfg)
	if d <= 0 {
		t.Errorf("measured %v, want positive (zero-duration clamp)", d)
	}
	// The budget counts accumulated (clamped) sample time, so wall time
	// stays within a small multiple of it even with per-run overhead.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("measurement ran %v under a %v budget", elapsed, cfg.MaxTime)
	}
	if f.calls == 0 {
		t.Error("kernel never ran")
	}
}

func TestMeasureFormatAlwaysRunsOnce(t *testing.T) {
	cfg := WallClockConfig{Workers: 1, MinRuns: 0, MinTime: 0, MaxTime: time.Nanosecond}
	f := &noopFormat{}
	if d := MeasureFormat(f, 1, 1, cfg); d <= 0 {
		t.Errorf("measured %v", d)
	}
	if f.calls == 0 {
		t.Error("kernel never ran despite an exhausted budget")
	}
}

func TestMeasurementScalesWithWork(t *testing.T) {
	// 16x more nonzeros should take clearly longer. Generous factor to
	// tolerate noisy CI machines.
	rng := rand.New(rand.NewSource(4))
	small := gen.Banded(rng, 1<<10, []int{-1, 0, 1})
	large := gen.Banded(rng, 1<<14, []int{-1, 0, 1})
	cfg := fastWallClock()
	cfg.MinRuns = 5
	ds := MeasureFormat(kernels.BuildCSRFormat(small, kernels.StCont, 64), small.Rows, small.Cols, cfg)
	dl := MeasureFormat(kernels.BuildCSRFormat(large, kernels.StCont, 64), large.Rows, large.Cols, cfg)
	if dl < 2*ds {
		t.Errorf("16x work only took %v vs %v", dl, ds)
	}
}

func TestRankCorrelation(t *testing.T) {
	perfect := RankCorrelation([]float64{1, 2, 3, 4}, []float64{10, 20, 30, 40})
	if perfect < 0.999 {
		t.Errorf("identical ranking corr = %v", perfect)
	}
	inverted := RankCorrelation([]float64{1, 2, 3, 4}, []float64{40, 30, 20, 10})
	if inverted > -0.999 {
		t.Errorf("inverted ranking corr = %v", inverted)
	}
	if c := RankCorrelation([]float64{1, 2}, []float64{1}); c != 0 {
		t.Errorf("mismatched lengths corr = %v", c)
	}
	if c := RankCorrelation([]float64{5, 5, 5}, []float64{1, 2, 3}); c != 0 {
		t.Errorf("constant series corr = %v", c)
	}
	// Ties get fractional ranks: {1,1,2} vs {3,3,9} is a perfect match.
	tied := RankCorrelation([]float64{1, 1, 2}, []float64{3, 3, 9})
	if tied < 0.999 {
		t.Errorf("tied ranking corr = %v", tied)
	}
}

func TestModelRankingCorrelatesWithWallClockDirectionally(t *testing.T) {
	// The cost model targets a 24-core AVX-512 machine, not this host, so we
	// only require weak positive correlation between modeled cycles and
	// measured single-thread times across the method space on a strongly
	// differentiated matrix. Skipped in -short mode: wall-clock assertions
	// are inherently noisy.
	if testing.Short() {
		t.Skip("wall-clock correlation is noisy; skipped in short mode")
	}
	rng := rand.New(rand.NewSource(5))
	m := gen.RMAT(rng, 11, 16, gen.HighSkew)
	m = gen.CapRowDegree(rng, m, m.NNZ()/500)
	cfg := fastWallClock()
	cfg.MinRuns = 5
	cfg.MinTime = 5 * time.Millisecond
	space := []kernels.Method{
		{Kind: kernels.CSR, Sched: kernels.StCont},
		{Kind: kernels.SELLPACK, C: 8, Sched: kernels.Dyn},
		{Kind: kernels.SellCR, C: 8, Sched: kernels.Dyn},
		{Kind: kernels.LAV, C: 8, T: 0.7, Sched: kernels.Dyn},
	}
	measured := MeasureMethods(m, space, cfg)
	mf := make([]float64, len(measured))
	for i, d := range measured {
		mf[i] = float64(d)
	}
	// Single-thread model to match the single-worker measurement.
	est := newSingleThreadEstimator()
	modeled := make([]float64, len(space))
	for i, method := range space {
		modeled[i] = est.MethodCycles(m, method)
	}
	if corr := RankCorrelation(modeled, mf); corr < -0.5 {
		t.Errorf("model vs wall-clock rank correlation strongly negative: %v", corr)
	}
}

// newSingleThreadEstimator builds a 1-thread scaled-machine estimator.
func newSingleThreadEstimator() *costmodel.Estimator {
	e := costmodel.New(machine.Scaled())
	e.Threads = 1
	return e
}
