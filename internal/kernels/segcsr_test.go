package kernels

import (
	"math/rand"
	"testing"

	"wise/internal/gen"
	"wise/internal/matrix"
)

func TestSegCSRMatchesReference(t *testing.T) {
	for name, m := range testMatrices(t) {
		x := matrix.Iota(m.Cols)
		want := make([]float64, m.Rows)
		m.SpMV(want, x)
		for _, segCols := range []int{0, 1, 3, 16, 1 << 20} {
			for _, sched := range []Sched{Dyn, St, StCont} {
				f := BuildSegCSR(m, segCols, sched, 8)
				got := make([]float64, m.Rows)
				f.SpMVParallel(got, x, 4)
				if d := matrix.MaxAbsDiff(want, got); d > 1e-9 {
					t.Errorf("%s segCols=%d %s: diff %g", name, segCols, sched, d)
				}
			}
		}
	}
}

func TestSegCSRSegmentGeometry(t *testing.T) {
	m := matrix.Fig1Example()
	f := BuildSegCSR(m, 3, Dyn, 4)
	if len(f.Segs) != 3 { // 8 cols in windows of 3: [0,3) [3,6) [6,8)
		t.Fatalf("segments = %d, want 3", len(f.Segs))
	}
	var total int
	for _, seg := range f.Segs {
		total += len(seg.ColIdx)
		for _, c := range seg.ColIdx {
			if c < seg.ColLo || c >= seg.ColHi {
				t.Fatalf("column %d outside segment [%d,%d)", c, seg.ColLo, seg.ColHi)
			}
		}
	}
	if total != m.NNZ() {
		t.Errorf("segments hold %d nonzeros, want %d", total, m.NNZ())
	}
}

func TestSegCSRSingleSegmentEqualsCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := gen.RMAT(rng, 8, 6, gen.MedSkew)
	f := BuildSegCSR(m, 0, Dyn, 16)
	if len(f.Segs) != 1 {
		t.Fatalf("segments = %d", len(f.Segs))
	}
	seg := f.Segs[0]
	if int64(len(seg.ColIdx)) != int64(m.NNZ()) {
		t.Error("single segment should hold everything")
	}
}

func TestSegCSRMethodIntegration(t *testing.T) {
	// The extension method must flow through Validate, String, Build and
	// PreprocessRank like any paper method.
	methods := ExtensionMethods(8192)
	if len(methods) != 2 {
		t.Fatalf("extension methods = %d", len(methods))
	}
	for _, method := range methods {
		if err := method.Validate(); err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if method.String() == "" || method.Kind.String() != "SegCSR" {
			t.Error("naming broken")
		}
		m := matrix.Fig1Example()
		f := Build(m, method, 4)
		x := matrix.Ones(m.Cols)
		want := make([]float64, m.Rows)
		m.SpMV(want, x)
		got := make([]float64, m.Rows)
		f.SpMV(got, x)
		if matrix.MaxAbsDiff(want, got) > 1e-12 {
			t.Errorf("%s wrong through Build", method)
		}
	}
	// Tie-break rank: cheaper than Sell-c-sigma, more than SELLPACK.
	seg := methods[0]
	sell := Method{Kind: SELLPACK, C: 8, Sched: Dyn}
	sigma := Method{Kind: SellCSigma, C: 8, Sigma: 512, Sched: Dyn}
	if !(sell.PreprocessRank() < seg.PreprocessRank() && seg.PreprocessRank() < sigma.PreprocessRank()) {
		t.Error("SegCSR preprocess rank not between SELLPACK and Sell-c-sigma")
	}
}

func TestSegCSRValidate(t *testing.T) {
	bad := []Method{
		{Kind: SegCSRKind, C: 0, Sched: Dyn},
		{Kind: SegCSRKind, C: 64, Sigma: 4, Sched: Dyn},
		{Kind: SegCSRKind, C: 64, T: 0.5, Sched: Dyn},
	}
	for _, m := range bad {
		if m.Validate() == nil {
			t.Errorf("%+v accepted", m)
		}
	}
}

func TestSegCSRBuildOps(t *testing.T) {
	ops := EstimateBuildOps(1000, 1000, 10000, Method{Kind: SegCSRKind, C: 250, Sched: Dyn})
	if ops.ElementsMoved != 10000 {
		t.Errorf("moved = %d", ops.ElementsMoved)
	}
	if ops.ScanOps != 4000 { // rows * 4 segments
		t.Errorf("scans = %d", ops.ScanOps)
	}
}
