package kernels

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the worker count used when callers pass workers <= 0.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// parallelUnits runs body(unit) for every unit in [0, n) across the given
// number of workers under the scheduling policy:
//
//   - Dyn: workers claim units one at a time from a shared atomic counter,
//     the self-scheduling loop OpenMP's schedule(dynamic) uses.
//   - St: unit u is executed by worker u % workers (round-robin).
//   - StCont: worker w executes the contiguous span [w*n/workers, (w+1)*n/workers).
//
// body must be safe to call concurrently for distinct units.
func parallelUnits(workers, n int, sched Sched, body func(unit int)) {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for u := 0; u < n; u++ {
			body(u)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	switch sched {
	case Dyn:
		var next int64
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					u := int(atomic.AddInt64(&next, 1)) - 1
					if u >= n {
						return
					}
					body(u)
				}
			}()
		}
	case St:
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				for u := w; u < n; u += workers {
					body(u)
				}
			}(w)
		}
	case StCont:
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				lo := w * n / workers
				hi := (w + 1) * n / workers
				for u := lo; u < hi; u++ {
					body(u)
				}
			}(w)
		}
	}
	wg.Wait()
}
