// Package kernels implements every SpMV method of the WISE paper (Table 1):
// CSR with three scheduling policies, SELLPACK, Sell-c-sigma, Sell-c-R,
// LAV-1Seg, and LAV — all built on the unified SRVPack representation of the
// paper's Appendix A — together with the RFS and CFS reorderings and
// parallel executors.
package kernels

import (
	"fmt"

	"wise/internal/machine"
)

// Sched is a row-scheduling policy (paper Section 2.1).
type Sched int

// Scheduling policies.
const (
	Dyn    Sched = iota // dynamic: work units claimed via shared counter
	St                  // static: work units assigned round-robin
	StCont              // static contiguous: equal contiguous spans per thread
)

func (s Sched) String() string {
	switch s {
	case Dyn:
		return "Dyn"
	case St:
		return "St"
	case StCont:
		return "StCont"
	default:
		return fmt.Sprintf("Sched(%d)", int(s))
	}
}

// Kind identifies an SpMV method family.
type Kind int

// Method families, ordered by preprocessing cost — the paper's tie-breaking
// order in Section 4.4 (CSR < SELLPACK < Sell-c-sigma < Sell-c-R < LAV-1Seg
// < LAV).
const (
	CSR Kind = iota
	SELLPACK
	SellCSigma
	SellCR
	LAV1Seg
	LAV
)

func (k Kind) String() string {
	switch k {
	case CSR:
		return "CSR"
	case SELLPACK:
		return "SELLPACK"
	case SellCSigma:
		return "Sell-c-sigma"
	case SellCR:
		return "Sell-c-R"
	case LAV1Seg:
		return "LAV-1Seg"
	case LAV:
		return "LAV"
	case SegCSRKind:
		return "SegCSR"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Method is a fully parameterized {method, parameter} pair — one WISE
// performance model exists per Method value.
type Method struct {
	Kind  Kind
	Sched Sched
	C     int     // chunk size (vector lanes); 0 for CSR
	Sigma int     // sort window; Sell-c-sigma only
	T     float64 // dense-segment nonzero fraction; LAV only
}

func (m Method) String() string {
	switch m.Kind {
	case CSR:
		return fmt.Sprintf("CSR[%s]", m.Sched)
	case SELLPACK:
		return fmt.Sprintf("SELLPACK[c=%d,%s]", m.C, m.Sched)
	case SellCSigma:
		return fmt.Sprintf("Sell-c-sigma[c=%d,sigma=%d,%s]", m.C, m.Sigma, m.Sched)
	case SellCR:
		return fmt.Sprintf("Sell-c-R[c=%d]", m.C)
	case LAV1Seg:
		return fmt.Sprintf("LAV-1Seg[c=%d]", m.C)
	case LAV:
		return fmt.Sprintf("LAV[c=%d,T=%.0f%%]", m.C, m.T*100)
	case SegCSRKind:
		return fmt.Sprintf("SegCSR[w=%d,%s]", m.C, m.Sched)
	default:
		return m.Kind.String()
	}
}

// Validate checks parameter consistency for the method family.
func (m Method) Validate() error {
	switch m.Kind {
	case CSR:
		if m.C != 0 || m.Sigma != 0 || m.T != 0 { //lint:ignore floateq T==0 is the explicit parameter-unset sentinel
			return fmt.Errorf("kernels: CSR takes no c/sigma/T, got %+v", m)
		}
	case SELLPACK:
		if m.C < 1 {
			return fmt.Errorf("kernels: SELLPACK needs c >= 1")
		}
		if m.Sched == St {
			return fmt.Errorf("kernels: SELLPACK uses StCont or Dyn scheduling")
		}
	case SellCSigma:
		if m.C < 1 || m.Sigma < m.C {
			return fmt.Errorf("kernels: Sell-c-sigma needs c >= 1 and sigma >= c, got %+v", m)
		}
		if m.Sched == St {
			return fmt.Errorf("kernels: Sell-c-sigma uses StCont or Dyn scheduling")
		}
	case SellCR, LAV1Seg:
		if m.C < 1 {
			return fmt.Errorf("kernels: %s needs c >= 1", m.Kind)
		}
		if m.Sched != Dyn {
			return fmt.Errorf("kernels: %s uses Dyn scheduling only", m.Kind)
		}
	case LAV:
		if m.C < 1 {
			return fmt.Errorf("kernels: LAV needs c >= 1")
		}
		if m.T <= 0 || m.T >= 1 {
			return fmt.Errorf("kernels: LAV needs T in (0,1), got %v", m.T)
		}
		if m.Sched != Dyn {
			return fmt.Errorf("kernels: LAV uses Dyn scheduling only")
		}
	case SegCSRKind:
		if m.C < 1 {
			return fmt.Errorf("kernels: SegCSR needs a column window >= 1 in C")
		}
		if m.Sigma != 0 || m.T != 0 { //lint:ignore floateq T==0 is the explicit parameter-unset sentinel
			return fmt.Errorf("kernels: SegCSR takes no sigma/T")
		}
	default:
		return fmt.Errorf("kernels: unknown method kind %d", m.Kind)
	}
	return nil
}

// PreprocessRank orders methods by preprocessing cost for the paper's
// Section 4.4 tie-breaking. Lower is cheaper. Within a family, smaller
// parameters rank first. The SegCSR extension ranks between SELLPACK and
// Sell-c-sigma: its conversion is a single sort-free pass over the nonzeros.
func (m Method) PreprocessRank() int {
	kindRank := int(m.Kind) * 2
	if m.Kind == SegCSRKind {
		kindRank = int(SELLPACK)*2 + 1
	}
	rank := kindRank * 1_000_000
	param := m.C*10_000 + m.Sigma + int(m.T*100)
	if m.Kind == CSR {
		param += int(m.Sched) // Dyn/St/StCont considered equally cheap; keep deterministic
	}
	if param > 999_999 {
		// Large parameter values (e.g. SegCSR's LLC-sized column window)
		// must not spill into the family component of the rank.
		param = 999_999
	}
	return rank + param
}

// ModelSpace enumerates the full {method, parameter} grid of Section 4.3 for
// a machine: 3 CSR + 4 SELLPACK + 12 Sell-c-sigma + 2 Sell-c-R + 2 LAV-1Seg
// + 6 LAV = 29 methods.
func ModelSpace(mach machine.Machine) []Method {
	cs := mach.ChunkSizes()
	sigmas := mach.SigmaValues()
	// 3 CSR + 2 SELLPACK/c + 2 Sell-c-sigma per (c, sigma) + 1 Sell-c-R/c +
	// 1 LAV-1Seg/c + 3 LAV/c.
	out := make([]Method, 0, 3+len(cs)*(7+2*len(sigmas)))
	for _, s := range []Sched{Dyn, St, StCont} {
		out = append(out, Method{Kind: CSR, Sched: s})
	}
	for _, c := range cs {
		for _, s := range []Sched{StCont, Dyn} {
			out = append(out, Method{Kind: SELLPACK, Sched: s, C: c})
		}
	}
	for _, c := range cs {
		for _, sigma := range sigmas {
			for _, s := range []Sched{StCont, Dyn} {
				out = append(out, Method{Kind: SellCSigma, Sched: s, C: c, Sigma: sigma})
			}
		}
	}
	for _, c := range cs {
		out = append(out, Method{Kind: SellCR, Sched: Dyn, C: c})
	}
	for _, c := range cs {
		out = append(out, Method{Kind: LAV1Seg, Sched: Dyn, C: c})
	}
	for _, c := range cs {
		for _, t := range []float64{0.7, 0.8, 0.9} {
			out = append(out, Method{Kind: LAV, Sched: Dyn, C: c, T: t})
		}
	}
	return out
}

// CSRMethods returns the three CSR scheduling variants, whose fastest member
// is the paper's normalization baseline ("best CSR").
func CSRMethods() []Method {
	return []Method{
		{Kind: CSR, Sched: Dyn},
		{Kind: CSR, Sched: St},
		{Kind: CSR, Sched: StCont},
	}
}
