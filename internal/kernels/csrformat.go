package kernels

import (
	"fmt"
	"time"

	"wise/internal/matrix"
)

// CSRFormat executes SpMV directly on CSR storage with one of the three
// row-scheduling policies of Section 2.1. Work units are blocks of RowBlock
// consecutive rows (the paper's K).
type CSRFormat struct {
	M        *matrix.CSR
	Sched    Sched
	RowBlock int
}

// BuildCSRFormat wraps a CSR matrix for scheduled execution. rowBlock <= 0
// selects a default of 64 rows per unit.
func BuildCSRFormat(m *matrix.CSR, sched Sched, rowBlock int) *CSRFormat {
	if rowBlock <= 0 {
		rowBlock = 64
	}
	return &CSRFormat{M: m, Sched: sched, RowBlock: rowBlock}
}

// SpMV computes y = A*x sequentially.
func (f *CSRFormat) SpMV(y, x []float64) { f.SpMVParallel(y, x, 1) }

// SpMVParallel computes y = A*x with the format's scheduling policy.
//
// For Dyn and St, units are RowBlock-row blocks claimed dynamically or
// round-robin. For StCont, the row range is divided into one contiguous span
// per worker, regardless of RowBlock (the paper's "divides the rows by the
// number of threads").
func (f *CSRFormat) SpMVParallel(y, x []float64, workers int) {
	defer observeSpMV(time.Now())
	m := f.M
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("kernels: SpMV dims y[%d]=A[%dx%d]*x[%d]", len(y), m.Rows, m.Cols, len(x)))
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers == 1 {
		// Closure-free serial path: passing a closure through parallelUnits
		// heap-allocates it (the goroutine branches make it escape), which
		// would break the steady-state zero-allocation guarantee.
		f.rowSpan(y, x, 0, m.Rows)
		return
	}
	if f.Sched == StCont {
		parallelUnits(workers, workers, StCont, func(w int) {
			f.rowSpan(y, x, w*m.Rows/workers, (w+1)*m.Rows/workers)
		})
		return
	}
	blocks := (m.Rows + f.RowBlock - 1) / f.RowBlock
	parallelUnits(workers, blocks, f.Sched, func(b int) {
		lo := b * f.RowBlock
		hi := lo + f.RowBlock
		if hi > m.Rows {
			hi = m.Rows
		}
		f.rowSpan(y, x, lo, hi)
	})
}

// rowSpan computes y[i] = A[i,:]*x for rows [lo, hi).
func (f *CSRFormat) rowSpan(y, x []float64, lo, hi int) {
	m := f.M
	// ColIdx values come from parsed matrix files; re-assert the x bound
	// cheaply here rather than faulting mid-kernel on corrupt input.
	if len(x) < m.Cols {
		panic(fmt.Sprintf("kernels: x[%d] shorter than matrix columns %d", len(x), m.Cols))
	}
	for i := lo; i < hi; i++ {
		rp, rq := m.RowPtr[i], m.RowPtr[i+1]
		var acc float64
		for k := rp; k < rq; k++ {
			acc += m.Vals[k] * x[m.ColIdx[k]]
		}
		y[i] = acc
	}
}
