package kernels

import (
	"math/rand"
	"testing"

	"wise/internal/gen"
	"wise/internal/machine"
	"wise/internal/matrix"
)

// testMatrices returns a diverse set of small matrices exercising every
// structural corner: the worked example, empty rows, dense rows, skew,
// locality, single row/column, and empty matrices.
func testMatrices(t testing.TB) map[string]*matrix.CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	ms := map[string]*matrix.CSR{
		"fig1":      matrix.Fig1Example(),
		"tridiag":   gen.Banded(rng, 64, []int{-1, 0, 1}),
		"stencil":   gen.Stencil2D(8, 8, true),
		"rmat-hs":   gen.RMAT(rng, 8, 8, gen.HighSkew),
		"rmat-ll":   gen.RMAT(rng, 8, 8, gen.LowLoc),
		"rgg":       gen.RGG(rng, 256, 6),
		"powerlaw":  gen.PowerLawRows(rng, 128, 2.0, 64),
		"singlerow": matrix.FromDense(1, 5, []float64{1, 0, 2, 0, 3}),
		"singlecol": matrix.FromDense(5, 1, []float64{1, 0, 2, 0, 3}),
		"arrow":     arrowMatrix(32),
	}
	// A matrix with empty rows interleaved.
	coo := matrix.NewCOO(10, 10)
	coo.Add(0, 0, 1)
	coo.Add(4, 9, 2)
	coo.Add(9, 4, 3)
	ms["sparse-rows"] = coo.ToCSR()
	// Completely empty matrix.
	ms["empty"] = matrix.NewCOO(6, 6).ToCSR()
	return ms
}

// arrowMatrix has one dense row and one dense column — maximal skew in both
// distributions.
func arrowMatrix(n int) *matrix.CSR {
	coo := matrix.NewCOO(n, n)
	for j := 0; j < n; j++ {
		coo.Add(0, int32(j), float64(j+1))
		coo.Add(int32(j), 0, float64(j+2))
	}
	for i := 0; i < n; i++ {
		coo.Add(int32(i), int32(i), 1)
	}
	return coo.ToCSR()
}

func methodsUnderTest() []Method {
	return ModelSpace(machine.Scaled())
}

// TestAllMethodsMatchReference is the central invariant: every method and
// parameter combination computes exactly the same product as the reference
// CSR loop, sequentially and in parallel, on every structural corner case.
func TestAllMethodsMatchReference(t *testing.T) {
	for name, m := range testMatrices(t) {
		want := make([]float64, m.Rows)
		x := matrix.Iota(m.Cols)
		for i := range x {
			x[i] = x[i]*0.25 + 1
		}
		m.SpMV(want, x)
		for _, method := range methodsUnderTest() {
			f := Build(m, method, 8)
			got := make([]float64, m.Rows)
			f.SpMV(got, x)
			if d := matrix.MaxAbsDiff(want, got); d > 1e-9 {
				t.Errorf("%s/%s sequential: max diff %g", name, method, d)
			}
			for i := range got {
				got[i] = -1 // poison
			}
			f.SpMVParallel(got, x, 4)
			if d := matrix.MaxAbsDiff(want, got); d > 1e-9 {
				t.Errorf("%s/%s parallel: max diff %g", name, method, d)
			}
		}
	}
}

func TestModelSpaceSize(t *testing.T) {
	space := ModelSpace(machine.Skylake24())
	if len(space) != 29 {
		t.Fatalf("model space = %d methods, want the paper's 29", len(space))
	}
	counts := map[Kind]int{}
	for _, m := range space {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m, err)
		}
		counts[m.Kind]++
	}
	want := map[Kind]int{CSR: 3, SELLPACK: 4, SellCSigma: 12, SellCR: 2, LAV1Seg: 2, LAV: 6}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("%s: %d models, want %d", k, counts[k], n)
		}
	}
}

func TestModelSpaceUniqueStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range ModelSpace(machine.Skylake24()) {
		s := m.String()
		if seen[s] {
			t.Errorf("duplicate method string %q", s)
		}
		seen[s] = true
	}
}

func TestMethodValidate(t *testing.T) {
	bad := []Method{
		{Kind: CSR, C: 4},
		{Kind: SELLPACK, C: 0, Sched: Dyn},
		{Kind: SELLPACK, C: 4, Sched: St},
		{Kind: SellCSigma, C: 8, Sigma: 4, Sched: Dyn},
		{Kind: SellCSigma, C: 8, Sigma: 64, Sched: St},
		{Kind: SellCR, C: 8, Sched: StCont},
		{Kind: LAV1Seg, C: 0, Sched: Dyn},
		{Kind: LAV, C: 8, T: 0, Sched: Dyn},
		{Kind: LAV, C: 8, T: 1.5, Sched: Dyn},
		{Kind: LAV, C: 8, T: 0.8, Sched: St},
		{Kind: Kind(99)},
	}
	for _, m := range bad {
		if m.Validate() == nil {
			t.Errorf("%+v: expected validation error", m)
		}
	}
}

func TestPreprocessRankOrdering(t *testing.T) {
	// The paper's tie-break order: CSR < SELLPACK < Sell-c-sigma < Sell-c-R
	// < LAV-1Seg < LAV, and smaller parameters first within a family.
	ordered := []Method{
		{Kind: CSR, Sched: Dyn},
		{Kind: SELLPACK, C: 4, Sched: Dyn},
		{Kind: SELLPACK, C: 8, Sched: Dyn},
		{Kind: SellCSigma, C: 4, Sigma: 64, Sched: Dyn},
		{Kind: SellCSigma, C: 4, Sigma: 512, Sched: Dyn},
		{Kind: SellCR, C: 4, Sched: Dyn},
		{Kind: LAV1Seg, C: 4, Sched: Dyn},
		{Kind: LAV, C: 4, T: 0.7, Sched: Dyn},
		{Kind: LAV, C: 4, T: 0.8, Sched: Dyn},
		{Kind: LAV, C: 4, T: 0.9, Sched: Dyn},
	}
	for i := 1; i < len(ordered); i++ {
		if ordered[i-1].PreprocessRank() >= ordered[i].PreprocessRank() {
			t.Errorf("rank(%s) >= rank(%s)", ordered[i-1], ordered[i])
		}
	}
}

func TestSELLPACKPaddingOnSkew(t *testing.T) {
	// Alternating long (32-wide) and short (1-wide) rows: SELLPACK chunks mix
	// both and pad the short lanes to width 32; Sell-c-R groups equal-length
	// rows together and removes nearly all padding.
	coo := matrix.NewCOO(64, 64)
	for i := 0; i < 64; i++ {
		if i%2 == 0 {
			for j := 0; j < 32; j++ {
				coo.Add(int32(i), int32(j), 1)
			}
		} else {
			coo.Add(int32(i), int32(i), 1)
		}
	}
	m := coo.ToCSR()
	sellpack := BuildSRVPack(m, Method{Kind: SELLPACK, C: 8, Sched: Dyn})
	sellcr := BuildSRVPack(m, Method{Kind: SellCR, C: 8, Sched: Dyn})
	sp, sr := sellpack.Stats(), sellcr.Stats()
	if sp.NNZ != int64(m.NNZ()) || sr.NNZ != int64(m.NNZ()) {
		t.Fatalf("stats nnz wrong: %d/%d vs %d", sp.NNZ, sr.NNZ, m.NNZ())
	}
	if sp.Padding <= 2*sr.Padding {
		t.Errorf("SELLPACK padding %d not clearly above Sell-c-R padding %d", sp.Padding, sr.Padding)
	}
}

func TestSellCSigmaPaddingMonotone(t *testing.T) {
	// Larger sigma windows can only reduce (or keep) padding.
	rng := rand.New(rand.NewSource(9))
	m := gen.PowerLawRows(rng, 512, 2.0, 128)
	var prev int64 = -1
	for _, sigma := range []int{8, 32, 128, 512} {
		p := BuildSRVPack(m, Method{Kind: SellCSigma, C: 8, Sigma: sigma, Sched: Dyn})
		pad := p.Stats().Padding
		if prev >= 0 && pad > prev {
			t.Errorf("sigma=%d padding %d > smaller-sigma padding %d", sigma, pad, prev)
		}
		prev = pad
	}
}

func TestSellCRMatchesSigmaEqualsRows(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := gen.RMAT(rng, 7, 6, gen.MedSkew)
	r := BuildSRVPack(m, Method{Kind: SellCR, C: 4, Sched: Dyn})
	s := BuildSRVPack(m, Method{Kind: SellCSigma, C: 4, Sigma: m.Rows, Sched: Dyn})
	rs, ss := r.Stats(), s.Stats()
	if rs.Padding != ss.Padding || rs.StoredSlots != ss.StoredSlots {
		t.Errorf("Sell-c-R stats %+v != Sell-c-sigma(R) stats %+v", rs, ss)
	}
}

func TestLAVSegmentSplit(t *testing.T) {
	counts := []int64{50, 30, 10, 5, 3, 2} // ranked descending, total 100
	cases := []struct {
		t    float64
		want int
	}{
		{0.5, 1},  // 50 >= 50
		{0.7, 2},  // 80 >= 70
		{0.8, 2},  // 80 >= 80
		{0.9, 3},  // 90 >= 90
		{0.95, 4}, // 95 >= 95
	}
	for _, c := range cases {
		if got := segmentSplit(counts, c.t); got != c.want {
			t.Errorf("segmentSplit(T=%v) = %d, want %d", c.t, got, c.want)
		}
	}
	if got := segmentSplit([]int64{0, 0}, 0.7); got != 2 {
		t.Errorf("zero-mass split = %d, want len", got)
	}
}

func TestLAVHasTwoSegmentsOnSkewedColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := gen.RMAT(rng, 9, 8, gen.HighSkew)
	p := BuildSRVPack(m, Method{Kind: LAV, C: 8, T: 0.7, Sched: Dyn})
	if len(p.Segments) != 2 {
		t.Fatalf("LAV segments = %d, want 2", len(p.Segments))
	}
	dense, sparse := p.Segments[0], p.Segments[1]
	if dense.ColHi != sparse.ColLo {
		t.Error("segments not contiguous in rank space")
	}
	// The dense segment must hold at least T of the nonzeros in fewer
	// columns than the sparse one.
	denseCols := int(dense.ColHi - dense.ColLo)
	sparseCols := int(sparse.ColHi - sparse.ColLo)
	if denseCols >= sparseCols {
		t.Errorf("dense segment has %d cols vs sparse %d; power-law should compress", denseCols, sparseCols)
	}
}

func TestLAV1SegSingleSegment(t *testing.T) {
	m := matrix.Fig1Example()
	p := BuildSRVPack(m, Method{Kind: LAV1Seg, C: 2, Sched: Dyn})
	if len(p.Segments) != 1 {
		t.Fatalf("LAV-1Seg segments = %d", len(p.Segments))
	}
	if p.ColPerm == nil {
		t.Fatal("LAV-1Seg must apply CFS")
	}
}

func TestCFSOrdersHotColumnsFirst(t *testing.T) {
	m := matrix.Fig1Example()
	perm := CFS(m)
	counts := m.ColCounts()
	// Figure 1 analog: the two hottest columns are c3 (5 nonzeros) and c0 (4).
	if perm[0] != 3 || perm[1] != 0 {
		t.Errorf("CFS order = %v (counts %v), want c3, c0 first", perm[:4], counts)
	}
}

func TestRFSOrdersHeavyRowsFirst(t *testing.T) {
	m := matrix.Fig1Example()
	perm := RFS(m)
	counts := m.RowCounts()
	if counts[perm[0]] != 3 {
		t.Errorf("RFS first row has %d nonzeros, want 3", counts[perm[0]])
	}
	for i := 1; i < len(perm); i++ {
		if counts[perm[i-1]] < counts[perm[i]] {
			t.Fatal("RFS not descending")
		}
	}
}

func TestWindowSortRows(t *testing.T) {
	counts := []int64{1, 5, 3, 9, 2, 8}
	base := matrix.Identity(6)
	// sigma=3: windows {0,1,2} and {3,4,5} sorted desc independently.
	got := WindowSortRows(base, counts, 3)
	want := matrix.Permutation{1, 2, 0, 3, 5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window sort = %v, want %v", got, want)
		}
	}
	// sigma=1: unchanged.
	if got := WindowSortRows(base, counts, 1); got[0] != 0 || got[5] != 5 {
		t.Error("sigma=1 should not reorder")
	}
	// sigma >= n: full sort.
	full := WindowSortRows(base, counts, 100)
	if counts[full[0]] != 9 || counts[full[5]] != 1 {
		t.Errorf("full sort wrong: %v", full)
	}
	// base must not be mutated.
	if base[0] != 0 || base[5] != 5 {
		t.Error("WindowSortRows mutated its input")
	}
}

func TestSRVPackGoldenFig1SELLPACK(t *testing.T) {
	// SELLPACK with c=2 on the worked example: chunk widths are the max row
	// length of each consecutive row pair: rows have lengths
	// {2,3,2,2,1,2,3,2} so chunks have widths {3,2,2,3}.
	m := matrix.Fig1Example()
	p := BuildSRVPack(m, Method{Kind: SELLPACK, C: 2, Sched: Dyn})
	seg := p.Segments[0]
	wantOff := []int64{0, 3, 5, 7, 10}
	if len(seg.ChunkOff) != len(wantOff) {
		t.Fatalf("chunk offsets %v", seg.ChunkOff)
	}
	for i := range wantOff {
		if seg.ChunkOff[i] != wantOff[i] {
			t.Fatalf("ChunkOff = %v, want %v", seg.ChunkOff, wantOff)
		}
	}
	st := p.Stats()
	if st.StoredSlots != 20 || st.Padding != 3 {
		t.Errorf("stats = %+v, want 20 slots, 3 padding", st)
	}
	// Row order is identity for SELLPACK.
	for i, r := range seg.RowOrder {
		if int(r) != i {
			t.Fatalf("RowOrder = %v, want identity", seg.RowOrder)
		}
	}
	// First chunk, lane 0 = row 0: values 1, 2 then padding 0.
	c := p.C
	if seg.Vals[0*c+0] != 1 || seg.Vals[1*c+0] != 2 || seg.Vals[2*c+0] != 0 {
		t.Errorf("row 0 packing wrong: %v", seg.Vals)
	}
	// Lane 1 = row 1: values 3, 4, 5.
	if seg.Vals[0*c+1] != 3 || seg.Vals[1*c+1] != 4 || seg.Vals[2*c+1] != 5 {
		t.Errorf("row 1 packing wrong")
	}
}

func TestSRVPackGoldenFig1SellCSigma(t *testing.T) {
	// Sell-c-sigma with c=2, sigma=4 on the example: windows {r0..r3} and
	// {r4..r7} sorted by length desc: first window lengths {2,3,2,2} ->
	// order r1,r0,r2,r3; second window lengths {1,2,3,2} -> r6,r5,r7,r4.
	m := matrix.Fig1Example()
	p := BuildSRVPack(m, Method{Kind: SellCSigma, C: 2, Sigma: 4, Sched: Dyn})
	seg := p.Segments[0]
	want := []int32{1, 0, 2, 3, 6, 5, 7, 4}
	for i := range want {
		if seg.RowOrder[i] != want[i] {
			t.Fatalf("RowOrder = %v, want %v", seg.RowOrder, want)
		}
	}
	// Padding shrinks from 3 (SELLPACK) to 2: chunks widths {3,2,3,2} = 10
	// stored per lane pair -> 20 slots; real nnz 17; padding 3? The sorted
	// pairing gives widths {3,2,3,2}: (r1:3,r0:2)->3, (r2:2,r3:2)->2,
	// (r6:3,r5:2)->3, (r7:2,r4:1)->2, total slots 20, padding 3.
	st := p.Stats()
	if st.StoredSlots != 20 || st.Padding != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStatsConsistency(t *testing.T) {
	for name, m := range testMatrices(t) {
		for _, method := range methodsUnderTest() {
			if method.Kind == CSR {
				continue
			}
			p := BuildSRVPack(m, method)
			st := p.Stats()
			if st.NNZ != int64(m.NNZ()) {
				t.Errorf("%s/%s: stats NNZ %d != %d", name, method, st.NNZ, m.NNZ())
			}
			if st.Padding < 0 {
				t.Errorf("%s/%s: negative padding %d", name, method, st.Padding)
			}
			if st.StoredSlots != st.NNZ+st.Padding {
				t.Errorf("%s/%s: slots %d != nnz+padding", name, method, st.StoredSlots)
			}
		}
	}
}

func TestSchedulingPoliciesSameResult(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := gen.RMAT(rng, 9, 8, gen.HighSkew)
	x := matrix.Iota(m.Cols)
	want := make([]float64, m.Rows)
	m.SpMV(want, x)
	for _, sched := range []Sched{Dyn, St, StCont} {
		for _, workers := range []int{1, 2, 3, 8, 100} {
			f := BuildCSRFormat(m, sched, 16)
			got := make([]float64, m.Rows)
			f.SpMVParallel(got, x, workers)
			if d := matrix.MaxAbsDiff(want, got); d > 1e-9 {
				t.Errorf("CSR[%s] workers=%d: diff %g", sched, workers, d)
			}
		}
	}
}

func TestBuildPanicsOnCSRPack(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildSRVPack(matrix.Fig1Example(), Method{Kind: CSR, Sched: Dyn})
}

func TestSpMVDimensionPanics(t *testing.T) {
	m := matrix.Fig1Example()
	pack := BuildSRVPack(m, Method{Kind: SELLPACK, C: 4, Sched: Dyn})
	csr := BuildCSRFormat(m, Dyn, 4)
	for name, fn := range map[string]func(){
		"pack-y": func() { pack.SpMV(make([]float64, 3), matrix.Ones(8)) },
		"pack-x": func() { pack.SpMV(make([]float64, 8), matrix.Ones(3)) },
		"csr-y":  func() { csr.SpMV(make([]float64, 3), matrix.Ones(8)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEstimateBuildOpsOrdering(t *testing.T) {
	rows, cols, nnz := 10000, 10000, int64(100000)
	var prev float64 = -1
	for _, method := range []Method{
		{Kind: CSR, Sched: Dyn},
		{Kind: SELLPACK, C: 8, Sched: Dyn},
		{Kind: SellCSigma, C: 8, Sigma: 512, Sched: Dyn},
		{Kind: SellCR, C: 8, Sched: Dyn},
		{Kind: LAV1Seg, C: 8, Sched: Dyn},
		{Kind: LAV, C: 8, T: 0.7, Sched: Dyn},
	} {
		ops := EstimateBuildOps(rows, cols, nnz, method)
		total := float64(ops.ElementsMoved) + ops.Comparisons + float64(ops.ScanOps)
		if total < prev {
			t.Errorf("%s: build ops %v below cheaper method %v", method, total, prev)
		}
		prev = total
	}
}

func TestFeatureExtractionOpsScaleWithNNZ(t *testing.T) {
	small := FeatureExtractionOps(100, 100, 1000, 16)
	large := FeatureExtractionOps(100, 100, 100000, 16)
	if large.ElementsMoved <= small.ElementsMoved {
		t.Error("feature ops should scale with nnz")
	}
}

func TestSchedStrings(t *testing.T) {
	if Dyn.String() != "Dyn" || St.String() != "St" || StCont.String() != "StCont" {
		t.Error("sched strings wrong")
	}
	if Sched(9).String() == "" || Kind(9).String() == "" {
		t.Error("unknown enum strings empty")
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Error("DefaultWorkers < 1")
	}
}

func TestParallelUnitsCoverage(t *testing.T) {
	for _, sched := range []Sched{Dyn, St, StCont} {
		for _, n := range []int{0, 1, 7, 64} {
			for _, workers := range []int{1, 3, 16} {
				hits := make([]int32, n)
				var mu chan struct{} // no lock needed: distinct units
				_ = mu
				parallelUnits(workers, n, sched, func(u int) { hits[u]++ })
				for u, h := range hits {
					if h != 1 {
						t.Fatalf("sched=%s n=%d workers=%d: unit %d hit %d times", sched, n, workers, u, h)
					}
				}
			}
		}
	}
}

func TestSRVPackGoldenFig1LAV(t *testing.T) {
	// LAV with c=2, T=0.7 on the worked example. Column counts are
	// {c0:4, c1:1, c2:3, c3:5, c4:1, c5:1, c6:1, c7:1}, so CFS ranks columns
	// c3, c0, c2 first. The dense segment needs >= 0.7*17 = 11.9 nonzeros:
	// 5+4+3 = 12 >= 11.9, so it spans ranks [0,3) and the sparse segment
	// holds the remaining 5 columns.
	m := matrix.Fig1Example()
	p := BuildSRVPack(m, Method{Kind: LAV, C: 2, T: 0.7, Sched: Dyn})
	if len(p.Segments) != 2 {
		t.Fatalf("segments = %d", len(p.Segments))
	}
	if p.ColPerm[0] != 3 || p.ColPerm[1] != 0 || p.ColPerm[2] != 2 {
		t.Fatalf("CFS order = %v, want c3, c0, c2 first", p.ColPerm[:3])
	}
	dense, sparse := &p.Segments[0], &p.Segments[1]
	if dense.ColLo != 0 || dense.ColHi != 3 || sparse.ColLo != 3 || sparse.ColHi != 8 {
		t.Fatalf("segment ranges dense[%d,%d) sparse[%d,%d)",
			dense.ColLo, dense.ColHi, sparse.ColLo, sparse.ColHi)
	}
	// Dense segment row order: per-segment nonzero counts over (c3,c0,c2):
	// r1 has 3 (c0,c2,c3), r0/r2/r3/r6 have 2, r5 has 2, r4/r7 have 0.
	counts := map[int32]int{}
	st := p.Stats()
	if st.NNZ != 17 {
		t.Fatalf("stats nnz = %d", st.NNZ)
	}
	if dense.RowOrder[0] != 1 {
		t.Errorf("dense RFS should put r1 (3 in-segment nonzeros) first, got %v", dense.RowOrder)
	}
	// Count real slots per segment: dense must hold exactly 12.
	denseReal := 0
	for k := 0; k < dense.Chunks(); k++ {
		lo, hi := dense.ChunkOff[k], dense.ChunkOff[k+1]
		base := k * p.C
		lanes := len(dense.RowOrder) - base
		if lanes > p.C {
			lanes = p.C
		}
		for l := 0; l < lanes; l++ {
			for pos := lo; pos < hi; pos++ {
				if dense.Vals[pos*int64(p.C)+int64(l)] != 0 {
					denseReal++
				}
			}
		}
	}
	if denseReal != 12 {
		t.Errorf("dense segment holds %d nonzeros, want 12", denseReal)
	}
	_ = counts
}
