package kernels

import (
	"sort"

	"wise/internal/matrix"
)

// RFS (Row Frequency Sorting) returns the permutation ordering all rows by
// descending nonzero count (stable on ties). Sell-c-R applies RFS globally;
// LAV applies it per segment.
func RFS(m *matrix.CSR) matrix.Permutation {
	return matrix.SortByCountsDesc(m.RowCounts())
}

// CFS (Column Frequency Sorting) returns the permutation ordering all
// columns by descending nonzero count: perm[rank] = original column. LAV and
// LAV-1Seg use it to pack frequently accessed input-vector elements together.
func CFS(m *matrix.CSR) matrix.Permutation {
	return matrix.SortByCountsDesc(m.ColCounts())
}

// WindowSortRows returns the permutation that, within each window of sigma
// consecutive positions of base, reorders rows by descending count (stable).
// With sigma >= len(base) this degenerates to a full RFS of base; with
// sigma <= 1 it returns base unchanged. counts[row] gives the sort key.
func WindowSortRows(base matrix.Permutation, counts []int64, sigma int) matrix.Permutation {
	out := append(matrix.Permutation(nil), base...)
	if sigma <= 1 {
		return out
	}
	// The less predicate closes over a reassigned window slice so a single
	// closure serves every window.
	var window matrix.Permutation
	less := func(i, j int) bool { return counts[window[i]] > counts[window[j]] }
	for lo := 0; lo < len(out); lo += sigma {
		hi := lo + sigma
		if hi > len(out) {
			hi = len(out)
		}
		window = out[lo:hi]
		sort.SliceStable(window, less)
	}
	return out
}

// segmentSplit computes the LAV dense/sparse segment boundary: given column
// nonzero counts already ordered by descending frequency (counts[rank]), it
// returns the smallest rank s such that the columns with rank < s hold at
// least a T fraction of all nonzeros. Both segments are guaranteed nonempty
// when the matrix has at least two ranked columns with nonzeros; otherwise
// the boundary may equal the column count (single-segment degenerate case).
func segmentSplit(rankedCounts []int64, t float64) int {
	var total int64
	for _, c := range rankedCounts {
		total += c
	}
	if total == 0 {
		return len(rankedCounts)
	}
	target := t * float64(total)
	var cum int64
	for s, c := range rankedCounts {
		cum += c
		if float64(cum) >= target {
			return s + 1
		}
	}
	return len(rankedCounts)
}
