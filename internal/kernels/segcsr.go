package kernels

import (
	"fmt"
	"time"

	"wise/internal/matrix"
)

// SegCSR is a cache-blocked CSR format in the style of Cagra (Zhang et al.,
// "Making caches work for graph analytics"), which the paper's Section 7
// names as a natural extension target for WISE: the columns are partitioned
// into LLC-sized ranges and the matrix is processed one column segment at a
// time, so the input-vector slice of each segment stays cache-resident. No
// row reordering and no vectorized packing — this is the scalar
// locality-only counterpart to LAV's segmentation.
//
// SegCSR exists to exercise WISE's extensibility claim: it is *not* part of
// the paper's 29-model space; ExtensionMethods() exposes it and
// core.WISE.Extend trains its model without touching the existing ones.
type SegCSR struct {
	Rows, Cols int
	Sched      Sched
	RowBlock   int
	// Segs hold, per column segment, a full CSR substructure over the same
	// row set (rows with no nonzeros in a segment have empty spans).
	Segs []SegCSRSegment
}

// SegCSRSegment is one column range of SegCSR with its own CSR arrays.
type SegCSRSegment struct {
	ColLo, ColHi int32
	RowPtr       []int64
	ColIdx       []int32
	Vals         []float64
}

// BuildSegCSR partitions the matrix into column segments of at most
// segCols columns each and builds one CSR substructure per segment.
// segCols <= 0 selects a single segment (degenerating to plain CSR).
func BuildSegCSR(m *matrix.CSR, segCols int, sched Sched, rowBlock int) *SegCSR {
	if segCols <= 0 || segCols > m.Cols {
		segCols = m.Cols
	}
	if segCols < 1 {
		segCols = 1
	}
	if rowBlock <= 0 {
		rowBlock = 64
	}
	out := &SegCSR{Rows: m.Rows, Cols: m.Cols, Sched: sched, RowBlock: rowBlock}
	nSegs := (m.Cols + segCols - 1) / segCols
	if nSegs < 1 {
		nSegs = 1
	}
	out.Segs = make([]SegCSRSegment, 0, nSegs)
	for lo := 0; lo < m.Cols || lo == 0; lo += segCols {
		hi := lo + segCols
		if hi > m.Cols {
			hi = m.Cols
		}
		seg := SegCSRSegment{
			ColLo:  int32(lo),
			ColHi:  int32(hi),
			RowPtr: make([]int64, m.Rows+1),
		}
		// First pass counts the segment's nonzeros per row so the element
		// arrays are allocated exactly once at their final size.
		for i := 0; i < m.Rows; i++ {
			cols, _ := m.Row(i)
			n := seg.RowPtr[i]
			for _, c := range cols {
				if int(c) >= lo && int(c) < hi {
					n++
				}
			}
			seg.RowPtr[i+1] = n
		}
		nnz := seg.RowPtr[m.Rows]
		seg.ColIdx = make([]int32, 0, nnz)
		seg.Vals = make([]float64, 0, nnz)
		for i := 0; i < m.Rows; i++ {
			cols, vals := m.Row(i)
			for k, c := range cols {
				if int(c) >= lo && int(c) < hi {
					seg.ColIdx = append(seg.ColIdx, c)
					seg.Vals = append(seg.Vals, vals[k])
				}
			}
		}
		out.Segs = append(out.Segs, seg)
		if m.Cols == 0 {
			break
		}
	}
	return out
}

// SpMV computes y = A*x sequentially.
func (f *SegCSR) SpMV(y, x []float64) { f.SpMVParallel(y, x, 1) }

// SpMVParallel computes y = A*x, processing column segments one after
// another (the cache-blocking discipline) and parallelizing over row blocks
// within each segment.
func (f *SegCSR) SpMVParallel(y, x []float64, workers int) {
	defer observeSpMV(time.Now())
	if len(x) != f.Cols || len(y) != f.Rows {
		panic(fmt.Sprintf("kernels: SpMV dims y[%d]=A[%dx%d]*x[%d]", len(y), f.Rows, f.Cols, len(x)))
	}
	for i := range y {
		y[i] = 0
	}
	if workers == 1 {
		// Closure-free serial path: passing a closure through parallelUnits
		// heap-allocates it (the goroutine branches make it escape), which
		// would break the steady-state zero-allocation guarantee.
		for si := range f.Segs {
			f.Segs[si].addRows(y, x, 0, f.Rows)
		}
		return
	}
	blocks := (f.Rows + f.RowBlock - 1) / f.RowBlock
	// One closure serves every segment: it reads the segment through a
	// variable reassigned per iteration (parallelUnits is a barrier, so the
	// reassignment never races with the workers).
	var seg *SegCSRSegment
	body := func(b int) {
		lo := b * f.RowBlock
		hi := lo + f.RowBlock
		if hi > f.Rows {
			hi = f.Rows
		}
		seg.addRows(y, x, lo, hi)
	}
	for si := range f.Segs {
		seg = &f.Segs[si]
		parallelUnits(workers, blocks, f.Sched, body)
	}
}

// addRows accumulates y[lo:hi] += A_seg * x for one column segment.
func (s *SegCSRSegment) addRows(y, x []float64, lo, hi int) {
	// ColIdx values lie in [ColLo, ColHi) by construction, but they originate
	// in parsed matrix files; assert the segment's column range fits x before
	// the inner loop rather than faulting mid-kernel.
	if int(s.ColHi) > len(x) {
		panic(fmt.Sprintf("kernels: segment columns [%d,%d) out of range for x[%d]", s.ColLo, s.ColHi, len(x)))
	}
	for i := lo; i < hi; i++ {
		var acc float64
		for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
			acc += s.Vals[k] * x[s.ColIdx[k]]
		}
		y[i] += acc
	}
}

// SegCSRKind is the extension method family id. It deliberately lives
// outside the paper's Kind range (CSR..LAV) so the 29-model space is
// untouched; String(), Validate() and Build() all understand it.
const SegCSRKind Kind = 100

// ExtensionMethods returns the extra {method, parameter} combinations
// available beyond the paper's grid: SegCSR with an LLC-sized column window.
func ExtensionMethods(llcDoubles int) []Method {
	window := llcDoubles / 2
	if window < 1 {
		window = 1
	}
	return []Method{
		{Kind: SegCSRKind, Sched: Dyn, C: window},
		{Kind: SegCSRKind, Sched: StCont, C: window},
	}
}
