package kernels

import (
	"math"

	"wise/internal/matrix"
)

// Format is a built, executable SpMV representation.
type Format interface {
	// SpMV computes y = A*x sequentially; y is overwritten.
	SpMV(y, x []float64)
	// SpMVParallel computes y = A*x using the format's scheduling policy.
	SpMVParallel(y, x []float64, workers int)
}

var (
	_ Format = (*CSRFormat)(nil)
	_ Format = (*SRVPack)(nil)
)

// Build constructs the executable format for any method of the model space.
// rowBlock is the CSR scheduling granularity (K); pass 0 for the default.
func Build(m *matrix.CSR, method Method, rowBlock int) Format {
	formatsBuilt.Inc()
	switch method.Kind {
	case CSR:
		return BuildCSRFormat(m, method.Sched, rowBlock)
	case SegCSRKind:
		return BuildSegCSR(m, method.C, method.Sched, rowBlock)
	default:
		return BuildSRVPack(m, method)
	}
}

// BuildOps counts the dominant operations of a format conversion, used by the
// cost model to charge preprocessing time (the paper reports preprocessing
// in units of baseline SpMV iterations, Figure 13c).
type BuildOps struct {
	ElementsMoved int64   // nonzeros written into the new layout
	Comparisons   float64 // sorting comparisons (row/column frequency sorts)
	ScanOps       int64   // auxiliary passes over row/column metadata
}

// EstimateBuildOps analytically derives the conversion work for a method on
// a matrix of the given shape, without building it.
func EstimateBuildOps(rows, cols int, nnz int64, method Method) BuildOps {
	log2 := func(n float64) float64 {
		if n < 2 {
			return 1
		}
		return math.Log2(n)
	}
	var ops BuildOps
	switch method.Kind {
	case CSR:
		// No conversion: CSR is the input representation.
	case SELLPACK:
		ops.ElementsMoved = nnz
		ops.ScanOps = int64(rows)
	case SellCSigma:
		ops.ElementsMoved = nnz
		ops.ScanOps = int64(rows)
		ops.Comparisons = float64(rows) * log2(float64(method.Sigma))
	case SellCR:
		ops.ElementsMoved = nnz
		ops.ScanOps = int64(rows)
		ops.Comparisons = float64(rows) * log2(float64(rows))
	case LAV1Seg:
		// CFS: column count pass + column sort + per-row remap-and-resort,
		// then global RFS.
		ops.ElementsMoved = 2 * nnz // remap pass + final packing
		ops.ScanOps = int64(rows + cols)
		avgRow := float64(nnz) / math.Max(float64(rows), 1)
		ops.Comparisons = float64(cols)*log2(float64(cols)) +
			float64(rows)*log2(float64(rows)) +
			float64(nnz)*log2(avgRow)
	case LAV:
		avgRow := float64(nnz) / math.Max(float64(rows), 1)
		ops.ElementsMoved = 2 * nnz
		ops.ScanOps = int64(rows+cols) + int64(rows) // + segment split scan
		ops.Comparisons = float64(cols)*log2(float64(cols)) +
			2*float64(rows)*log2(float64(rows)) + // RFS per segment
			float64(nnz)*log2(avgRow)
	case SegCSRKind:
		// One pass distributing nonzeros into column segments.
		ops.ElementsMoved = nnz
		ops.ScanOps = int64(rows) * int64((cols+method.C-1)/maxIntBuild(method.C, 1))
	}
	return ops
}

func maxIntBuild(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FeatureExtractionOps estimates the work of WISE's feature pass: one sweep
// over the nonzeros (tile/row/column tallies) plus per-bucket statistics
// (sorting for Gini and p-ratio over five distributions).
func FeatureExtractionOps(rows, cols int, nnz int64, tiles int) BuildOps {
	log2 := func(n float64) float64 {
		if n < 2 {
			return 1
		}
		return math.Log2(n)
	}
	buckets := float64(rows+cols) + 3*float64(tiles)
	return BuildOps{
		ElementsMoved: nnz, // one streaming pass over the nonzeros
		ScanOps:       int64(rows + cols + tiles),
		Comparisons:   buckets * log2(buckets),
	}
}
