package kernels

import (
	"fmt"
	"time"

	"wise/internal/matrix"
)

// SRVPack is the paper's unified Segmented Reordered Vector Packing format
// (Appendix A). One or two column segments hold the nonzeros; within a
// segment, rows are placed in chunks of C lanes following RowOrder, each
// chunk padded to the width of its longest row. A single SpMV kernel
// executes every vectorized method of Table 1 from this representation.
type SRVPack struct {
	Rows, Cols int
	C          int
	Method     Method

	// ColPerm is the CFS column permutation (perm[rank] = original column)
	// for LAV-1Seg and LAV; nil for the other methods. When set, ColIdx
	// values index the gathered vector x~[rank] = x[ColPerm[rank]].
	ColPerm matrix.Permutation

	Segments []Segment

	nnz  int64     // real nonzeros stored (excludes padding), set at build
	xbuf []float64 // gathered-x scratch; makes SpMV non-reentrant per pack
}

// Segment is one column range of the SRVPack format.
type Segment struct {
	// RowOrder maps packed position to original row id (the paper's
	// row_order array).
	RowOrder []int32
	// ChunkOff[k] is the position (in chunk-width units) of chunk k's first
	// column; chunk k spans positions [ChunkOff[k], ChunkOff[k+1]).
	ChunkOff []int64
	// Vals and ColIdx store the packed elements position-major: the element
	// of chunk k, lane l at local position p lives at index
	// (ChunkOff[k]+p)*C + l. Padded slots hold Val 0 and ColIdx 0.
	Vals   []float64
	ColIdx []int32
	// ColLo, ColHi delimit the segment's column-rank range [ColLo, ColHi).
	ColLo, ColHi int32

	// maxIdx is the largest ColIdx value, recorded at build time so the
	// kernel can bounds-check the gathered vector in O(1) per chunk.
	maxIdx int32
}

// Chunks returns the number of chunks in the segment.
func (s *Segment) Chunks() int { return len(s.ChunkOff) - 1 }

// BuildSRVPack converts a CSR matrix into SRVPack form for any vectorized
// method (every Kind except CSR). It panics on invalid methods; structural
// problems in the input surface via matrix validation in the caller.
func BuildSRVPack(m *matrix.CSR, method Method) *SRVPack {
	if err := method.Validate(); err != nil {
		panic(err)
	}
	if method.Kind == CSR {
		panic("kernels: BuildSRVPack does not handle CSR; use BuildCSRFormat")
	}
	p := &SRVPack{Rows: m.Rows, Cols: m.Cols, C: method.C, Method: method}

	work := m
	if method.Kind == LAV1Seg || method.Kind == LAV {
		p.ColPerm = CFS(m)
		work = m.PermuteCols(p.ColPerm) // columns now in rank space
	}

	// Determine segment column ranges in rank space.
	type colRange struct{ lo, hi int32 }
	ranges := []colRange{{0, int32(m.Cols)}}
	if method.Kind == LAV {
		counts := work.ColCounts()
		s := segmentSplit(counts, method.T)
		if s < m.Cols {
			ranges = []colRange{{0, int32(s)}, {int32(s), int32(m.Cols)}}
		}
	}

	p.Segments = make([]Segment, 0, len(ranges))
	for _, r := range ranges {
		p.Segments = append(p.Segments, buildSegment(work, method, r.lo, r.hi))
	}
	p.nnz = int64(m.NNZ())
	return p
}

// searchGE returns the first index k in the ascending slice cols with
// cols[k] >= target. Plain binary search: a sort.Search call here would mint
// a closure per row of the build loop.
func searchGE(cols []int32, target int32) int {
	lo, hi := 0, len(cols)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cols[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// buildSegment packs the nonzeros of work whose column lies in [cLo, cHi)
// into one Segment, applying the method's row ordering.
func buildSegment(work *matrix.CSR, method Method, cLo, cHi int32) Segment {
	rows := work.Rows
	c := method.C

	// Per-row span of columns within [cLo, cHi): rows are column-sorted, so
	// the segment's entries form a contiguous range found by binary search.
	spanLo := make([]int64, rows)
	counts := make([]int64, rows)
	for i := 0; i < rows; i++ {
		cols, _ := work.Row(i)
		lo := searchGE(cols, cLo)
		hi := searchGE(cols, cHi)
		spanLo[i] = work.RowPtr[i] + int64(lo)
		counts[i] = int64(hi - lo)
	}

	// Row ordering per method.
	var order matrix.Permutation
	switch method.Kind {
	case SELLPACK:
		order = matrix.Identity(rows)
	case SellCSigma:
		order = WindowSortRows(matrix.Identity(rows), counts, method.Sigma)
	case SellCR, LAV1Seg, LAV:
		order = WindowSortRows(matrix.Identity(rows), counts, rows)
	}

	// Chunk widths and offsets.
	nChunks := (rows + c - 1) / c
	off := make([]int64, nChunks+1)
	for k := 0; k < nChunks; k++ {
		var width int64
		for l := 0; l < c; l++ {
			pos := k*c + l
			if pos >= rows {
				break
			}
			if w := counts[order[pos]]; w > width {
				width = w
			}
		}
		off[k+1] = off[k] + width
	}
	totalWidth := off[nChunks]

	seg := Segment{
		RowOrder: append([]int32(nil), order...),
		ChunkOff: off,
		Vals:     make([]float64, totalWidth*int64(c)),
		ColIdx:   make([]int32, totalWidth*int64(c)),
		ColLo:    cLo,
		ColHi:    cHi,
	}
	for k := 0; k < nChunks; k++ {
		base := k * c
		for l := 0; l < c; l++ {
			pos := base + l
			if pos >= rows {
				break
			}
			row := int(order[pos])
			src := spanLo[row]
			for e := int64(0); e < counts[row]; e++ {
				idx := (off[k]+e)*int64(c) + int64(l)
				seg.Vals[idx] = work.Vals[src+e]
				seg.ColIdx[idx] = work.ColIdx[src+e]
			}
			// Remaining positions up to the chunk width stay zero-padded
			// (Val 0, ColIdx 0), a safe read for any Cols >= 1.
		}
	}
	for _, ci := range seg.ColIdx {
		if ci > seg.maxIdx {
			seg.maxIdx = ci
		}
	}
	return seg
}

// SpMV computes y = A*x sequentially. y is overwritten.
func (p *SRVPack) SpMV(y, x []float64) { p.SpMVParallel(y, x, 1) }

// SpMVParallel computes y = A*x with the given number of workers under the
// method's scheduling policy. Work units are chunks; segments execute one
// after another (the LAV discipline: each segment's slice of x is made
// LLC-resident, then consumed). A pack must not be used from concurrent
// SpMV calls: the gathered-x scratch buffer is per-pack state.
func (p *SRVPack) SpMVParallel(y, x []float64, workers int) {
	defer observeSpMV(time.Now())
	if len(x) != p.Cols || len(y) != p.Rows {
		panic(fmt.Sprintf("kernels: SpMV dims y[%d]=A[%dx%d]*x[%d]", len(y), p.Rows, p.Cols, len(x)))
	}
	xs := x
	if p.ColPerm != nil {
		p.xbuf = matrix.GatherVec(p.xbuf, x, p.ColPerm)
		xs = p.xbuf
	}
	for i := range y {
		y[i] = 0
	}
	if workers == 1 {
		// Closure-free serial path: passing a closure through parallelUnits
		// heap-allocates it (the goroutine branches make it escape), which
		// would break the steady-state zero-allocation guarantee.
		for si := range p.Segments {
			p.Segments[si].segSpMV(p.C, y, xs)
		}
		return
	}
	// One closure serves every segment: it reads the segment through a
	// variable reassigned per iteration (parallelUnits is a barrier, so the
	// reassignment never races with the workers).
	var seg *Segment
	body := func(k int) { seg.chunkSpMV(k, p.C, y, xs) }
	for si := range p.Segments {
		seg = &p.Segments[si]
		parallelUnits(workers, seg.Chunks(), p.Method.Sched, body)
	}
}

// segSpMV accumulates the whole segment's contribution into y sequentially.
func (s *Segment) segSpMV(c int, y, xs []float64) {
	for k := 0; k < s.Chunks(); k++ {
		s.chunkSpMV(k, c, y, xs)
	}
}

// chunkSpMV accumulates chunk k's contribution into y.
func (s *Segment) chunkSpMV(k, c int, y, xs []float64) {
	// ColIdx values come from parsed matrix files via the build; the recorded
	// maximum makes the access range checkable before the inner loop instead
	// of faulting mid-kernel on corrupt input.
	if len(s.ColIdx) > 0 && int(s.maxIdx) >= len(xs) {
		panic(fmt.Sprintf("kernels: packed column index %d out of range for x[%d]", s.maxIdx, len(xs)))
	}
	lo, hi := s.ChunkOff[k], s.ChunkOff[k+1]
	base := k * c
	lanes := len(s.RowOrder) - base
	if lanes > c {
		lanes = c
	}
	for l := 0; l < lanes; l++ {
		var acc float64
		for pos := lo; pos < hi; pos++ {
			idx := pos*int64(c) + int64(l)
			acc += s.Vals[idx] * xs[s.ColIdx[idx]]
		}
		y[s.RowOrder[base+l]] += acc
	}
}

// PackStats summarizes the built format for the cost model and tests.
type PackStats struct {
	NNZ         int64 // real nonzeros stored
	StoredSlots int64 // slots including padding
	Padding     int64 // StoredSlots - NNZ
	Chunks      int
	Segments    int
	MatrixBytes int64 // footprint of Vals+ColIdx+RowOrder+ChunkOff
}

// Stats computes the PackStats of the built format.
func (p *SRVPack) Stats() PackStats {
	st := PackStats{NNZ: p.nnz, Segments: len(p.Segments)}
	for si := range p.Segments {
		seg := &p.Segments[si]
		st.StoredSlots += int64(len(seg.Vals))
		st.Chunks += seg.Chunks()
		st.MatrixBytes += int64(len(seg.Vals))*8 + int64(len(seg.ColIdx))*4 +
			int64(len(seg.RowOrder))*4 + int64(len(seg.ChunkOff))*8
	}
	st.Padding = st.StoredSlots - st.NNZ
	return st
}
