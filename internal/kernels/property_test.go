package kernels

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wise/internal/machine"
	"wise/internal/matrix"
)

// randomSpec drives quick-check generation of small random matrices.
type randomSpec struct {
	Rows, Cols uint8
	Seed       int64
	Density    uint8
}

func (s randomSpec) build() *matrix.CSR {
	rows := int(s.Rows%60) + 1
	cols := int(s.Cols%60) + 1
	rng := rand.New(rand.NewSource(s.Seed))
	nnz := int(s.Density%100) * rows * cols / 200
	coo := matrix.NewCOO(rows, cols)
	for k := 0; k < nnz; k++ {
		coo.Add(int32(rng.Intn(rows)), int32(rng.Intn(cols)), rng.NormFloat64())
	}
	return coo.ToCSR()
}

// TestQuickAllFormatsEquivalent is the quick-check form of the central
// invariant: for arbitrary random matrices, every format computes the
// reference product.
func TestQuickAllFormatsEquivalent(t *testing.T) {
	space := ModelSpace(machine.Scaled())
	space = append(space, ExtensionMethods(64)...)
	f := func(spec randomSpec) bool {
		m := spec.build()
		x := matrix.Iota(m.Cols)
		want := make([]float64, m.Rows)
		m.SpMV(want, x)
		got := make([]float64, m.Rows)
		for _, method := range space {
			format := Build(m, method, 4)
			format.SpMVParallel(got, x, 3)
			if matrix.MaxAbsDiff(want, got) > 1e-9 {
				t.Logf("method %s disagrees on %v", method, m)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickPackStatsInvariants checks structural invariants of every built
// pack on random matrices: stored = nnz + padding, padding >= 0, chunk
// offsets monotone, row orders are permutations.
func TestQuickPackStatsInvariants(t *testing.T) {
	methods := []Method{
		{Kind: SELLPACK, C: 4, Sched: Dyn},
		{Kind: SellCSigma, C: 4, Sigma: 8, Sched: Dyn},
		{Kind: SellCR, C: 8, Sched: Dyn},
		{Kind: LAV1Seg, C: 4, Sched: Dyn},
		{Kind: LAV, C: 4, T: 0.7, Sched: Dyn},
	}
	f := func(spec randomSpec) bool {
		m := spec.build()
		for _, method := range methods {
			p := BuildSRVPack(m, method)
			st := p.Stats()
			if st.NNZ != int64(m.NNZ()) || st.Padding < 0 ||
				st.StoredSlots != st.NNZ+st.Padding {
				return false
			}
			for _, seg := range p.Segments {
				if !matrix.Permutation(seg.RowOrder).Valid() {
					return false
				}
				for k := 1; k < len(seg.ChunkOff); k++ {
					if seg.ChunkOff[k] < seg.ChunkOff[k-1] {
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickLAVSegmentsPartitionColumns: for any matrix, LAV's segments
// cover the full column-rank space without overlap.
func TestQuickLAVSegmentsPartitionColumns(t *testing.T) {
	f := func(spec randomSpec) bool {
		m := spec.build()
		p := BuildSRVPack(m, Method{Kind: LAV, C: 4, T: 0.8, Sched: Dyn})
		expect := int32(0)
		for _, seg := range p.Segments {
			if seg.ColLo != expect {
				return false
			}
			expect = seg.ColHi
		}
		return int(expect) == m.Cols
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickWindowSortPermutation: window sorting any base permutation with
// any sigma yields a valid permutation with non-increasing counts inside
// each window.
func TestQuickWindowSortPermutation(t *testing.T) {
	f := func(rawCounts []uint8, sigmaRaw uint8) bool {
		if len(rawCounts) == 0 {
			return true
		}
		counts := make([]int64, len(rawCounts))
		for i, v := range rawCounts {
			counts[i] = int64(v)
		}
		sigma := int(sigmaRaw%16) + 1
		out := WindowSortRows(matrix.Identity(len(counts)), counts, sigma)
		if !out.Valid() {
			return false
		}
		if sigma <= 1 {
			return true
		}
		for lo := 0; lo < len(out); lo += sigma {
			hi := lo + sigma
			if hi > len(out) {
				hi = len(out)
			}
			for i := lo + 1; i < hi; i++ {
				if counts[out[i-1]] < counts[out[i]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRaceParallelSpMV runs concurrent SpMV on distinct packs to give the
// race detector something to chew on (run with -race in CI).
func TestRaceParallelSpMV(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	coo := matrix.NewCOO(512, 512)
	for k := 0; k < 4096; k++ {
		coo.Add(int32(rng.Intn(512)), int32(rng.Intn(512)), 1)
	}
	m := coo.ToCSR()
	x := matrix.Iota(m.Cols)
	want := make([]float64, m.Rows)
	m.SpMV(want, x)
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			pack := BuildSRVPack(m, Method{Kind: LAV, C: 8, T: 0.7, Sched: Dyn})
			y := make([]float64, m.Rows)
			for iter := 0; iter < 5; iter++ {
				pack.SpMVParallel(y, x, 4)
			}
			if matrix.MaxAbsDiff(want, y) > 1e-9 {
				done <- errMismatch
				return
			}
			done <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "parallel SpMV mismatch" }
