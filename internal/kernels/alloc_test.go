package kernels

import (
	"math/rand"
	"testing"

	"wise/internal/gen"
)

// TestSerialSpMVZeroAllocs pins the steady-state allocation behavior of the
// serial SpMV paths: after a warm-up call (which may size per-pack scratch),
// repeated products must not touch the heap. This is what the hotalloc
// analyzer enforces statically; the runtime guard catches anything the
// analyzer cannot see, such as closures escaping through parallelUnits or
// fmt boxing on a panic-free path.
func TestSerialSpMVZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := gen.Banded(rng, 256, []int{-4, -1, 0, 1, 4})
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = float64(i%13) - 6
	}
	y := make([]float64, m.Rows)

	cases := []struct {
		name string
		spmv func(y, x []float64)
	}{
		{"CSR", BuildCSRFormat(m, Dyn, 8).SpMV},
		{"SELLPACK", BuildSRVPack(m, Method{Kind: SELLPACK, C: 8, Sched: Dyn}).SpMV},
		{"SegCSR", BuildSegCSR(m, 64, Dyn, 8).SpMV},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.spmv(y, x) // warm-up: scratch buffers reach steady state
			allocs := testing.AllocsPerRun(100, func() {
				tc.spmv(y, x)
			})
			if allocs != 0 {
				t.Errorf("%s serial SpMV allocates %.1f objects/op in steady state, want 0", tc.name, allocs)
			}
		})
	}
}

// TestSerialSpMVZeroAllocsPermuted covers the LAV gather path: with a column
// permutation the pack gathers x into a reused scratch vector, which must not
// reallocate once warmed.
func TestSerialSpMVZeroAllocsPermuted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := gen.RMAT(rng, 8, 8, gen.LowLoc)
	p := BuildSRVPack(m, Method{Kind: LAV, C: 8, T: 0.7, Sched: Dyn})
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = float64(i % 7)
	}
	y := make([]float64, m.Rows)
	p.SpMV(y, x)
	allocs := testing.AllocsPerRun(100, func() {
		p.SpMV(y, x)
	})
	if allocs != 0 {
		t.Errorf("LAV serial SpMV allocates %.1f objects/op in steady state, want 0", allocs)
	}
}
