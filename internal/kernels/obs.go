package kernels

import (
	"time"

	"wise/internal/obs"
)

// Observability instruments (documented in OBSERVABILITY.md).
var (
	spmvCalls    = obs.NewCounter("kernels.spmv_calls")
	spmvSeconds  = obs.NewHistogram("kernels.spmv_seconds", nil)
	formatsBuilt = obs.NewCounter("kernels.formats_built")
)

// observeSpMV records one SpMV execution; deferred with the call's start
// time from every SpMVParallel implementation.
func observeSpMV(start time.Time) {
	spmvCalls.Inc()
	spmvSeconds.ObserveDuration(time.Since(start))
}
