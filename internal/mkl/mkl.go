// Package mkl is the stand-in for Intel's closed-source Math Kernel Library
// in the WISE reproduction (see DESIGN.md).
//
// The baseline plays MKL's role exactly as the paper observes it: a CSR
// kernel with library-style static row partitioning that tracks plain CSR
// performance and is never the fastest method for any matrix (Figures 2-3).
// The inspector-executor mirrors the paper's description of MKL IE — "this
// approach explores different methods before picking the best one" — by
// converting the matrix to a fixed menu of candidate formats, timing a trial
// of each, and keeping the winner; its preprocessing cost is the sum of all
// conversions and trials.
package mkl

import (
	"wise/internal/costmodel"
	"wise/internal/kernels"
	"wise/internal/matrix"
)

// dispatchOverhead models library call overhead: the baseline is never
// quite as fast as the equivalent hand-scheduled CSR kernel.
const dispatchOverhead = 1.03

// trialsPerCandidate is how many timing iterations the inspector-executor
// runs per explored format before trusting the measurement.
const trialsPerCandidate = 2

// BaselineCycles estimates one parallel SpMV of the MKL-like baseline: CSR
// with static contiguous row partitioning, plus dispatch overhead.
func BaselineCycles(e *costmodel.Estimator, m *matrix.CSR) float64 {
	return dispatchOverhead * e.CSRCycles(m, kernels.StCont)
}

// Baseline returns an executable MKL-like SpMV format (for the real-kernel
// benchmarks and examples).
func Baseline(m *matrix.CSR) kernels.Format {
	return kernels.BuildCSRFormat(m, kernels.StCont, 0)
}

// IEResult is the outcome of the inspector-executor's exploration.
type IEResult struct {
	Chosen     kernels.Method
	Cycles     float64 // per-iteration cycles of the chosen method
	PrepCycles float64 // total inspection cost: conversions + trial runs
}

// ieCandidates returns the fixed method menu the inspector explores. It
// covers scheduling and moderate vectorized formats but nothing with column
// reordering or segmentation — which is why, like the paper's MKL IE
// (average 2.11x vs the oracle's 2.5x), it is good but not optimal.
func ieCandidates(sigma int) []kernels.Method {
	return []kernels.Method{
		{Kind: kernels.CSR, Sched: kernels.Dyn},
		{Kind: kernels.CSR, Sched: kernels.St},
		{Kind: kernels.CSR, Sched: kernels.StCont},
		{Kind: kernels.SELLPACK, C: 8, Sched: kernels.StCont},
		{Kind: kernels.SELLPACK, C: 8, Sched: kernels.Dyn},
		{Kind: kernels.SellCSigma, C: 8, Sigma: sigma, Sched: kernels.StCont},
		{Kind: kernels.SellCSigma, C: 8, Sigma: sigma, Sched: kernels.Dyn},
	}
}

// BaselineFromCycles derives the baseline estimate from an already-computed
// CSR-StCont estimate (avoids re-simulating during corpus labeling).
func BaselineFromCycles(csrStContCycles float64) float64 {
	return dispatchOverhead * csrStContCycles
}

// IEFromEstimates derives the inspector-executor result from per-method
// estimates already computed for the full model space. Every IE candidate is
// a member of the paper's 29-method space, so no re-simulation is needed.
// methods, cycles and prepCosts must align by index.
func IEFromEstimates(sigma int, methods []kernels.Method, cycles, prepCosts []float64) IEResult {
	var res IEResult
	first := true
	for _, cand := range ieCandidates(sigma) {
		for i, m := range methods {
			if m != cand {
				continue
			}
			res.PrepCycles += prepCosts[i] + trialsPerCandidate*cycles[i]
			if first || cycles[i] < res.Cycles {
				res.Chosen = cand
				res.Cycles = cycles[i]
				first = false
			}
			break
		}
	}
	return res
}

// InspectorExecutor runs the MKL IE stand-in on a matrix: every candidate is
// converted and trial-executed (both charged to preprocessing), and the
// fastest becomes the chosen executor.
func InspectorExecutor(e *costmodel.Estimator, m *matrix.CSR) IEResult {
	sigma := e.Mach.SigmaValues()[1]
	var res IEResult
	first := true
	nnz := int64(m.NNZ())
	for _, cand := range ieCandidates(sigma) {
		cycles := e.MethodCycles(m, cand)
		res.PrepCycles += e.PreprocessCycles(m.Rows, m.Cols, nnz, cand)
		res.PrepCycles += trialsPerCandidate * cycles // trial executions per candidate
		if first || cycles < res.Cycles {
			res.Chosen = cand
			res.Cycles = cycles
			first = false
		}
	}
	return res
}
