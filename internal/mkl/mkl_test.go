package mkl

import (
	"math/rand"
	"testing"

	"wise/internal/costmodel"
	"wise/internal/gen"
	"wise/internal/kernels"
	"wise/internal/machine"
	"wise/internal/matrix"
)

func TestBaselineNeverBest(t *testing.T) {
	// The paper observes MKL never yields the best performance for any
	// matrix; our stand-in must always trail the best CSR variant.
	rng := rand.New(rand.NewSource(1))
	e := costmodel.New(machine.Scaled())
	for _, m := range []*matrix.CSR{
		gen.RMAT(rng, 10, 8, gen.HighSkew),
		gen.Banded(rng, 2048, []int{-1, 0, 1}),
		gen.RGG(rng, 1024, 6),
	} {
		_, best := e.BestCSR(m)
		if BaselineCycles(e, m) <= best {
			t.Error("baseline matched or beat the best CSR")
		}
	}
}

func TestBaselineExecutableCorrect(t *testing.T) {
	m := matrix.Fig1Example()
	f := Baseline(m)
	x := matrix.Iota(m.Cols)
	want := make([]float64, m.Rows)
	m.SpMV(want, x)
	got := make([]float64, m.Rows)
	f.SpMVParallel(got, x, 4)
	if matrix.MaxAbsDiff(want, got) > 1e-12 {
		t.Error("baseline kernel wrong")
	}
}

func TestInspectorExecutorPicksGoodMethod(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := costmodel.New(machine.Scaled())
	m := gen.Banded(rng, 4096, []int{-2, -1, 0, 1, 2, 3})
	res := InspectorExecutor(e, m)
	// IE must beat the baseline on a vectorization-friendly matrix.
	if res.Cycles >= BaselineCycles(e, m) {
		t.Errorf("IE %v not faster than baseline %v", res.Cycles, BaselineCycles(e, m))
	}
	if res.Chosen.Kind == kernels.CSR {
		t.Errorf("IE chose %s on a vectorization-friendly matrix", res.Chosen)
	}
}

func TestInspectorExecutorPrepCostly(t *testing.T) {
	// IE preprocessing includes one conversion + one trial per candidate, so
	// it must exceed several baseline iterations.
	rng := rand.New(rand.NewSource(3))
	e := costmodel.New(machine.Scaled())
	m := gen.RMAT(rng, 11, 8, gen.MedSkew)
	res := InspectorExecutor(e, m)
	iters := res.PrepCycles / BaselineCycles(e, m)
	if iters < 5 {
		t.Errorf("IE preprocessing only %v baseline iterations", iters)
	}
}

func TestInspectorExecutorMissesLAV(t *testing.T) {
	// On a large high-skew matrix where LAV is the oracle choice, IE's menu
	// (no CFS, no segmentation) must leave speedup on the table.
	rng := rand.New(rand.NewSource(4))
	mach := machine.Scaled()
	e := costmodel.New(mach)
	m := gen.RMATRows(rng, mach.LLCDoubles()*4, 16, gen.HighSkew)
	m = gen.CapRowDegree(rng, m, m.NNZ()/500)
	res := InspectorExecutor(e, m)
	lav := e.MethodCycles(m, kernels.Method{Kind: kernels.LAV, C: 8, T: 0.7, Sched: kernels.Dyn})
	if lav >= res.Cycles {
		t.Errorf("LAV %v should beat IE's choice %v (%s) here", lav, res.Cycles, res.Chosen)
	}
}

func TestBaselineFromCyclesConsistent(t *testing.T) {
	e := costmodel.New(machine.Scaled())
	m := matrix.Fig1Example()
	direct := BaselineCycles(e, m)
	derived := BaselineFromCycles(e.CSRCycles(m, kernels.StCont))
	if direct != derived {
		t.Errorf("BaselineFromCycles %v != BaselineCycles %v", derived, direct)
	}
}

func TestIEFromEstimatesMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	e := costmodel.New(machine.Scaled())
	m := gen.RMAT(rng, 9, 8, gen.MedSkew)
	direct := InspectorExecutor(e, m)

	// Derive from precomputed estimates over the full model space.
	space := kernels.ModelSpace(machine.Scaled())
	cycles := make([]float64, len(space))
	preps := make([]float64, len(space))
	for i, method := range space {
		cycles[i] = e.MethodCycles(m, method)
		preps[i] = e.PreprocessCycles(m.Rows, m.Cols, int64(m.NNZ()), method)
	}
	derived := IEFromEstimates(e.Mach.SigmaValues()[1], space, cycles, preps)
	if direct.Chosen != derived.Chosen {
		t.Errorf("chosen: direct %s vs derived %s", direct.Chosen, derived.Chosen)
	}
	if diff := direct.Cycles - derived.Cycles; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("cycles: %v vs %v", direct.Cycles, derived.Cycles)
	}
	if diff := direct.PrepCycles - derived.PrepCycles; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("prep: %v vs %v", direct.PrepCycles, derived.PrepCycles)
	}
}

func TestIEFromEstimatesSkipsMissingCandidates(t *testing.T) {
	// Only one candidate present in the provided slice: IE must use it.
	space := []kernels.Method{{Kind: kernels.CSR, Sched: kernels.StCont}}
	res := IEFromEstimates(64, space, []float64{100}, []float64{5})
	if res.Chosen != space[0] || res.Cycles != 100 {
		t.Errorf("degenerate IE = %+v", res)
	}
	if res.PrepCycles != 5+trialsPerCandidate*100 {
		t.Errorf("prep = %v", res.PrepCycles)
	}
}
