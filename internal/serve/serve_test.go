package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"wise/internal/core"
	"wise/internal/features"
	"wise/internal/gen"
	"wise/internal/kernels"
	"wise/internal/machine"
	"wise/internal/matrix"
	"wise/internal/ml"
	"wise/internal/perf"
	"wise/internal/resilience/faultinject"
)

// Fault-injection state is process-global, so the whole package runs its
// HTTP tests against a shared tiny model trained once in TestMain.
var sharedModelPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "wise-serve-test-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sharedModelPath = filepath.Join(dir, "models.json")
	if err := buildTestModel(sharedModelPath); err != nil {
		fmt.Fprintln(os.Stderr, "building test model:", err)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// buildTestModel trains a deliberately tiny two-method framework: every
// matrix labels CSR with the higher speedup class, so prediction always
// selects CSR and the tests stay fast and deterministic.
func buildTestModel(path string) error {
	space := []kernels.Method{
		{Kind: kernels.CSR, Sched: kernels.Dyn},
		{Kind: kernels.SELLPACK, Sched: kernels.Dyn, C: 8},
	}
	rng := rand.New(rand.NewSource(1))
	var labels []perf.MatrixLabels
	for i := 0; i < 6; i++ {
		m := gen.Uniform(rng, 150+20*i, 4)
		labels = append(labels, perf.MatrixLabels{
			Name: fmt.Sprintf("train-%d", i),
			Rows: m.Rows, Cols: m.Cols, NNZ: int64(m.NNZ()),
			Features: features.Extract(m, features.DefaultConfig()),
			Methods:  space,
			Classes:  []int{1, 0},
		})
	}
	w, err := core.Train(labels, ml.DefaultTreeConfig(), features.DefaultConfig(), machine.Scaled())
	if err != nil {
		return err
	}
	return w.Save(path)
}

func newTestServer(t *testing.T, mut func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{ModelPath: sharedModelPath, Mach: machine.Scaled(), ReloadPoll: -1}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.SetReady(true)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func testMatrix(t *testing.T) *matrix.CSR {
	t.Helper()
	return gen.Uniform(rand.New(rand.NewSource(7)), 200, 4)
}

func mmBytes(t *testing.T, m *matrix.CSR) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := matrix.WriteMatrixMarket(&buf, m); err != nil {
		t.Fatalf("WriteMatrixMarket: %v", err)
	}
	return buf.Bytes()
}

func postPredict(t *testing.T, url string, body []byte) (int, predictResponse, http.Header) {
	t.Helper()
	resp, err := http.Post(url+"/predict", "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /predict: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	var pr predictResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &pr); err != nil {
			t.Fatalf("decoding %q: %v", data, err)
		}
	}
	return resp.StatusCode, pr, resp.Header
}

func armFaults(t *testing.T, spec string) {
	t.Helper()
	if err := faultinject.Configure(spec, 1); err != nil {
		t.Fatalf("Configure(%q): %v", spec, err)
	}
	t.Cleanup(faultinject.Disable)
}

func TestPredictOK(t *testing.T) {
	_, ts := newTestServer(t, nil)
	m := testMatrix(t)
	status, pr, _ := postPredict(t, ts.URL, mmBytes(t, m))
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if pr.Degraded {
		t.Fatalf("healthy predict marked degraded: %+v", pr)
	}
	if !strings.Contains(pr.Method, "CSR") {
		t.Errorf("method = %q, want the CSR selection of the test model", pr.Method)
	}
	if pr.Rows != m.Rows || pr.Cols != m.Cols || pr.NNZ != m.NNZ() {
		t.Errorf("echoed shape %dx%d/%d, want %dx%d/%d", pr.Rows, pr.Cols, pr.NNZ, m.Rows, m.Cols, m.NNZ())
	}
}

func TestPredictRejectsBadInput(t *testing.T) {
	_, ts := newTestServer(t, nil)

	status, _, _ := postPredict(t, ts.URL, []byte("this is not a matrix"))
	if status != http.StatusBadRequest {
		t.Errorf("garbage body: status = %d, want 400", status)
	}

	resp, err := http.Get(ts.URL + "/predict")
	if err != nil {
		t.Fatalf("GET /predict: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /predict: status = %d, want 405", resp.StatusCode)
	}
}

func TestPredictBodyCap(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxBodyBytes = 200 })
	body := mmBytes(t, testMatrix(t))
	if len(body) <= 200 {
		t.Fatalf("test matrix serializes to %d bytes, need > 200", len(body))
	}
	status, _, _ := postPredict(t, ts.URL, body)
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status = %d, want 413", status)
	}
}

func TestPredictReadLimits(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.Limits = matrix.ReadLimits{MaxRows: 100, MaxCols: 100, MaxNNZ: 1000}
	})
	status, _, _ := postPredict(t, ts.URL, mmBytes(t, testMatrix(t))) // 200x200
	if status != http.StatusBadRequest {
		t.Errorf("over-limit matrix: status = %d, want 400", status)
	}
}

// TestLoadShed drives a slow predictor (serve.predict.delay) with more
// concurrency than MaxInFlight+MaxQueue admits: the overflow must shed with
// 429 + Retry-After while admitted requests still answer 200.
func TestLoadShed(t *testing.T) {
	armFaults(t, "serve.predict.delay:delay:d=250ms:times=all")
	_, ts := newTestServer(t, func(c *Config) {
		c.MaxInFlight = 1
		c.MaxQueue = 1
		c.QueueWait = 30 * time.Millisecond
	})
	body := mmBytes(t, testMatrix(t))

	const n = 6
	statuses := make([]int, n)
	headers := make([]http.Header, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _, headers[i] = postPredict(t, ts.URL, body)
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if headers[i].Get("Retry-After") == "" {
				t.Errorf("429 without Retry-After header")
			}
		default:
			t.Errorf("request %d: status = %d, want 200 or 429", i, st)
		}
	}
	if ok == 0 || shed == 0 {
		t.Errorf("ok=%d shed=%d; want both admitted and shed requests under overload", ok, shed)
	}
}

// TestDegradedOnPredictError is the acceptance scenario: with
// serve.predict.error:times=all, every well-formed request still gets a 200
// with the CSR fallback, marked degraded.
func TestDegradedOnPredictError(t *testing.T) {
	armFaults(t, "serve.predict.error:error:times=all")
	_, ts := newTestServer(t, nil)
	body := mmBytes(t, testMatrix(t))
	for i := 0; i < 3; i++ {
		status, pr, _ := postPredict(t, ts.URL, body)
		if status != http.StatusOK {
			t.Fatalf("request %d: status = %d, want 200 (degraded, never failed)", i, status)
		}
		if !pr.Degraded {
			t.Fatalf("request %d: degraded = false under injected predictor failure", i)
		}
		if pr.Reason != reasonPredictError && pr.Reason != reasonBreakerOpen {
			t.Errorf("request %d: reason = %q", i, pr.Reason)
		}
		if !strings.Contains(pr.Method, "CSR") {
			t.Errorf("request %d: fallback method = %q, want CSR", i, pr.Method)
		}
	}
}

// TestDegradedOnDeadline stalls the predictor past the request timeout; the
// response must degrade with reason "deadline" rather than hang or fail.
func TestDegradedOnDeadline(t *testing.T) {
	armFaults(t, "serve.predict.delay:delay:d=200ms")
	_, ts := newTestServer(t, func(c *Config) { c.RequestTimeout = 40 * time.Millisecond })
	status, pr, _ := postPredict(t, ts.URL, mmBytes(t, testMatrix(t)))
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if !pr.Degraded || pr.Reason != reasonDeadline {
		t.Fatalf("got degraded=%v reason=%q, want deadline degradation", pr.Degraded, pr.Reason)
	}
}

// TestBreakerTripAndRecover walks the full automaton over HTTP: consecutive
// predictor failures trip the breaker (fallback-only), the cooldown half-
// opens it, and a successful probe closes it again.
func TestBreakerTripAndRecover(t *testing.T) {
	armFaults(t, "serve.predict.error:error:times=2")
	s, ts := newTestServer(t, func(c *Config) {
		c.BreakerThreshold = 2
		c.BreakerCooldown = 50 * time.Millisecond
	})
	body := mmBytes(t, testMatrix(t))

	for i := 0; i < 2; i++ {
		_, pr, _ := postPredict(t, ts.URL, body)
		if !pr.Degraded || pr.Reason != reasonPredictError {
			t.Fatalf("failure %d: degraded=%v reason=%q", i, pr.Degraded, pr.Reason)
		}
	}
	if st := s.breaker.currentState(); st != breakerOpen {
		t.Fatalf("after %d failures breaker is %s, want open", 2, st)
	}
	// Open circuit: the fault is exhausted, but the predictor must not run.
	_, pr, _ := postPredict(t, ts.URL, body)
	if !pr.Degraded || pr.Reason != reasonBreakerOpen {
		t.Fatalf("open circuit: degraded=%v reason=%q, want breaker-open", pr.Degraded, pr.Reason)
	}
	time.Sleep(60 * time.Millisecond)
	// Cooldown elapsed: this request is the half-open probe and succeeds.
	_, pr, _ = postPredict(t, ts.URL, body)
	if pr.Degraded {
		t.Fatalf("probe after cooldown degraded: %+v", pr)
	}
	if st := s.breaker.currentState(); st != breakerClosed {
		t.Fatalf("after successful probe breaker is %s, want closed", st)
	}
}

// TestHandlerPanicRecovered injects a panic into the handler: that request
// gets a 500, and the server keeps answering afterwards.
func TestHandlerPanicRecovered(t *testing.T) {
	armFaults(t, "serve.handler.panic:panic")
	_, ts := newTestServer(t, nil)
	body := mmBytes(t, testMatrix(t))

	status, _, _ := postPredict(t, ts.URL, body)
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking request: status = %d, want 500", status)
	}
	status, pr, _ := postPredict(t, ts.URL, body)
	if status != http.StatusOK || pr.Degraded {
		t.Fatalf("request after panic: status=%d degraded=%v, want healthy 200", status, pr.Degraded)
	}
}

// TestReloadRollback corrupts the model file on disk and forces a reload:
// the swap must be rejected, the previous generation must keep serving, and
// restoring a good file must make reload succeed again.
func TestReloadRollback(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "models.json")
	good, err := os.ReadFile(sharedModelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, func(c *Config) { c.ModelPath = path })
	want := s.ModelCount()
	body := mmBytes(t, testMatrix(t))

	if err := os.WriteFile(path, []byte("{ torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(); err == nil || !strings.Contains(err.Error(), "reload rejected") {
		t.Fatalf("Reload on corrupt file: err = %v, want rejection", err)
	}
	if got := s.ModelCount(); got != want {
		t.Fatalf("after rejected reload: %d models, want %d (rollback)", got, want)
	}
	if status, pr, _ := postPredict(t, ts.URL, body); status != http.StatusOK || pr.Degraded {
		t.Fatalf("serving after rejected reload: status=%d degraded=%v", status, pr.Degraded)
	}

	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(); err != nil {
		t.Fatalf("Reload on restored file: %v", err)
	}
	if got := s.ModelCount(); got != want {
		t.Fatalf("after good reload: %d models, want %d", got, want)
	}
}

// TestReloadInjectedCorruption exercises the serve.reload.corrupt site: the
// validation failure is injected, so even a pristine file is rejected and
// the serving generation survives.
func TestReloadInjectedCorruption(t *testing.T) {
	armFaults(t, "serve.reload.corrupt:error")
	s, ts := newTestServer(t, nil)
	if err := s.Reload(); err == nil || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Reload under injection: err = %v, want ErrInjected", err)
	}
	// The clause fired once; the next reload sees the real (valid) file.
	if err := s.Reload(); err != nil {
		t.Fatalf("Reload after injection: %v", err)
	}
	if status, _, _ := postPredict(t, ts.URL, mmBytes(t, testMatrix(t))); status != http.StatusOK {
		t.Fatalf("serving after reload cycle: status = %d", status)
	}
}

func TestHealthEndpoints(t *testing.T) {
	s, ts := newTestServer(t, nil)

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(data)
	}

	if st, body := get("/healthz"); st != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz: %d %q", st, body)
	}
	if st, body := get("/readyz"); st != http.StatusOK || !strings.Contains(body, "ready") {
		t.Errorf("/readyz: %d %q", st, body)
	}
	s.SetReady(false)
	if st, _ := get("/readyz"); st != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining: %d, want 503", st)
	}
	s.SetReady(true)

	postPredict(t, ts.URL, mmBytes(t, testMatrix(t)))
	if st, body := get("/metricz"); st != http.StatusOK ||
		!strings.Contains(body, "serve.requests_total") ||
		!strings.Contains(body, "serve.request_seconds") {
		t.Errorf("/metricz: %d, missing serve counters in %q", st, body)
	}
}

// TestServeDrain runs the full lifecycle: Serve on a real listener, a live
// request, then cancellation — Serve must return ctx.Err() (the CLI's exit
// 130) and leave no goroutines behind.
func TestServeDrain(t *testing.T) {
	s, err := New(Config{
		ModelPath:    sharedModelPath,
		Mach:         machine.Scaled(),
		DrainTimeout: time.Second,
		ReloadPoll:   10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// The runtime starts a permanent os/signal.loop goroutine on the first
	// Notify; prime it so the leak check below counts only our goroutines.
	sigWarm := make(chan os.Signal, 1)
	signal.Notify(sigWarm, syscall.SIGHUP)
	signal.Stop(sigWarm)
	before := runtime.NumGoroutine()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	client := &http.Client{Transport: &http.Transport{}}
	url := "http://" + ln.Addr().String()
	resp, err := client.Post(url+"/predict", "text/plain", bytes.NewReader(mmBytes(t, testMatrix(t))))
	if err != nil {
		t.Fatalf("predict against live listener: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	client.CloseIdleConnections()

	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Serve returned %v, want context.Canceled after drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancellation")
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak after drain: %d > %d\n%s", n, before, buf[:runtime.Stack(buf, true)])
	}
}

func TestAdmissionControl(t *testing.T) {
	a := newAdmission(1, 1, 25*time.Millisecond)
	ctx := context.Background()
	if err := a.acquire(ctx); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	// Queue has room: this waiter times out after maxWait.
	start := time.Now()
	if err := a.acquire(ctx); !errors.Is(err, errSaturated) {
		t.Fatalf("queued acquire: err = %v, want errSaturated", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Errorf("queued acquire returned in %v, want ~25ms wait", time.Since(start))
	}

	// Fill the queue with a real waiter, then the next acquire sheds fast.
	release := make(chan struct{})
	go func() {
		<-release
		a.release()
	}()
	waiting := make(chan error, 1)
	go func() { waiting <- a.acquire(ctx) }()
	for a.waiters.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := a.acquire(ctx); !errors.Is(err, errSaturated) {
		t.Fatalf("acquire with full queue: err = %v, want immediate errSaturated", err)
	}
	close(release)
	if err := <-waiting; err != nil {
		t.Fatalf("queued waiter after release: %v", err)
	}
	a.release()

	// A cancelled caller gets ctx.Err, not a shed.
	if err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := a.acquire(cctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire: err = %v, want context.Canceled", err)
	}
	a.release()
}

func TestBreakerAutomaton(t *testing.T) {
	b := newBreaker(2, time.Minute)
	now := time.Unix(0, 0)
	b.now = func() time.Time { return now }

	if use, probe := b.allow(); !use || probe {
		t.Fatalf("closed allow = (%v, %v), want (true, false)", use, probe)
	}
	b.report(false, false)
	b.report(false, false)
	if st := b.currentState(); st != breakerOpen {
		t.Fatalf("after threshold failures: %s, want open", st)
	}
	if use, _ := b.allow(); use {
		t.Fatal("open circuit within cooldown allowed the predictor")
	}

	now = now.Add(time.Minute)
	use, probe := b.allow()
	if !use || !probe {
		t.Fatalf("post-cooldown allow = (%v, %v), want probe (true, true)", use, probe)
	}
	if use, _ := b.allow(); use {
		t.Fatal("second request ran the predictor while a probe was in flight")
	}
	b.report(false, true)
	if st := b.currentState(); st != breakerOpen {
		t.Fatalf("after failed probe: %s, want open again", st)
	}

	now = now.Add(time.Minute)
	if use, probe := b.allow(); !use || !probe {
		t.Fatal("no second probe after another cooldown")
	}
	b.report(true, true)
	if st := b.currentState(); st != breakerClosed {
		t.Fatalf("after successful probe: %s, want closed", st)
	}
	if use, probe := b.allow(); !use || probe {
		t.Fatalf("closed-again allow = (%v, %v), want (true, false)", use, probe)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MaxInFlight <= 0 || c.MaxQueue <= 0 || c.QueueWait <= 0 ||
		c.RequestTimeout <= 0 || c.MaxBodyBytes <= 0 || c.BreakerThreshold <= 0 ||
		c.BreakerCooldown <= 0 || c.ReloadPoll <= 0 || c.DrainTimeout <= 0 {
		t.Fatalf("zero config did not fill defaults: %+v", c)
	}
	if c.Limits == (matrix.ReadLimits{}) {
		t.Fatal("zero config did not fill read limits")
	}
}

func TestNewRejectsBadModelPath(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope.json")
	_, err := New(Config{ModelPath: missing, Mach: machine.Scaled()})
	if err == nil || !strings.Contains(err.Error(), missing) {
		t.Fatalf("New with missing model: err = %v, want path in message", err)
	}
}
