package serve

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"wise/internal/core"
	"wise/internal/features"
	"wise/internal/gen"
	"wise/internal/kernels"
	"wise/internal/machine"
	"wise/internal/ml"
	"wise/internal/perf"
	"wise/internal/registry"
	"wise/internal/resilience"
	"wise/internal/resilience/faultinject"
)

// buildShadowModel trains a two-method framework that predicts SELLPACK as a
// big win (class 2 vs CSR's class 0) — the opposite of what the fake shadow
// measurements will report, so drift is guaranteed.
func buildShadowModel(path string) error {
	space := []kernels.Method{
		{Kind: kernels.CSR, Sched: kernels.Dyn},
		{Kind: kernels.SELLPACK, Sched: kernels.Dyn, C: 8},
	}
	rng := rand.New(rand.NewSource(2))
	var labels []perf.MatrixLabels
	for i := 0; i < 6; i++ {
		m := gen.Uniform(rng, 150+20*i, 4)
		labels = append(labels, perf.MatrixLabels{
			Name: fmt.Sprintf("shadow-train-%d", i),
			Rows: m.Rows, Cols: m.Cols, NNZ: int64(m.NNZ()),
			Features: features.Extract(m, features.DefaultConfig()),
			Methods:  space,
			Classes:  []int{0, 2},
		})
	}
	w, err := core.Train(labels, ml.DefaultTreeConfig(), features.DefaultConfig(), machine.Scaled())
	if err != nil {
		return err
	}
	return w.Save(path)
}

// feedbackConfig is the deterministic small-window loop configuration shared
// by the feedback tests: every request sampled, trip after 4 of 8 mismatch,
// retrain from 4 labels, probation of 8 samples.
func feedbackConfig(t *testing.T, measure measureFunc) Config {
	t.Helper()
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "models.json")
	if err := buildShadowModel(modelPath); err != nil {
		t.Fatalf("building shadow model: %v", err)
	}
	return Config{
		ModelPath:   modelPath,
		RegistryDir: filepath.Join(dir, "registry"),
		Mach:        machine.Scaled(),
		ReloadPoll:  -1,

		ShadowRate:    1,
		ShadowWorkers: 1,
		ShadowQueue:   64,
		ShadowMeasure: measure,

		DriftWindow:     8,
		DriftMinSamples: 4,
		DriftTrip:       0.5,
		DriftClear:      0.1,
		DriftProbation:  8,

		RetrainMinSamples: 4,
		CanaryHoldout:     0.25,
		CanarySeed:        1,
	}
}

// startFeedbackServer runs the server's feedback loop for the test's
// lifetime and returns the server plus its HTTP front.
func startFeedbackServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.SetReady(true)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.RunFeedback(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// driveUntil posts /predict requests until cond holds or the deadline
// passes, reporting whether cond held.
func driveUntil(t *testing.T, url string, body []byte, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		if status, _, _ := postPredict(t, url, body); status != 200 {
			t.Fatalf("/predict status = %d during feedback drive", status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

// TestFeedbackLoopEndToEnd is the acceptance scenario for the self-healing
// loop, fully deterministic via the injected measurer: (1) the serving model
// predicts SELLPACK but shadow measurements report a 2x slowdown, so
// mismatches accumulate and the drift detector trips; (2) the loop retrains
// over the accumulated labels, the candidate (which has learned CSR wins)
// beats the serving generation on the held-out slice, and the canary gate
// promotes it; (3) the measurer then reports a regression against the
// promoted generation, drift trips inside the probation window, and the loop
// rolls the registry back to the original generation.
func TestFeedbackLoopEndToEnd(t *testing.T) {
	var phase atomic.Int32
	measure := func(job shadowJob, deadline time.Time) (float64, float64, error) {
		if phase.Load() == 0 {
			return 2e-3, 1e-3, nil // rel 2.0 -> class 0: the predicted win is a slowdown
		}
		return 3e-3, 1e-3, nil // rel 3.0 -> class 0: the promoted model regresses too
	}
	s, ts := startFeedbackServer(t, feedbackConfig(t, measure))
	body := mmBytes(t, testMatrix(t))

	origGen := s.GenerationID()
	if origGen == "" {
		t.Fatal("registry-backed server has no generation ID")
	}

	// Phase 1+2: mismatches -> drift trip -> retrain -> canary promotion.
	promoted := driveUntil(t, ts.URL, body, 20*time.Second, func() bool {
		return s.GenerationID() != origGen
	})
	if !promoted {
		t.Fatalf("no promotion: still serving %s (drift rate %.2f, %d retrains, %d failed)",
			s.GenerationID(), driftRate.Value(), retrains.Value(), retrainsFailed.Value())
	}
	promotedGen := s.GenerationID()

	// Phase 3: regression against the promoted generation during probation
	// must roll back to the original generation.
	phase.Store(1)
	rolledBack := driveUntil(t, ts.URL, body, 20*time.Second, func() bool {
		return s.GenerationID() == origGen
	})
	if !rolledBack {
		t.Fatalf("no rollback: still serving %s, want %s restored", s.GenerationID(), origGen)
	}
	if cur := s.Registry().Current(); cur == nil || cur.ID != origGen {
		t.Fatalf("registry serves %+v after rollback, want %s", cur, origGen)
	}
	if promotedGen == origGen {
		t.Fatal("promotion did not change the generation ID")
	}

	// The loop keeps running after the rollback, and the regressed
	// generation is remembered: serving must stay on the original.
	time.Sleep(50 * time.Millisecond)
	if status, pr, _ := postPredict(t, ts.URL, body); status != 200 || pr.Degraded {
		t.Fatalf("serving unhealthy after rollback: status=%d degraded=%v", status, pr.Degraded)
	}
	if got := s.GenerationID(); got != origGen {
		t.Fatalf("re-promoted a rolled-back generation: serving %s, want %s", got, origGen)
	}
}

// TestShadowPanicQuarantined arms shadow.exec.panic: the injected panic in
// the shadow worker is recovered and counted, later samples still measure,
// and the request path never notices.
func TestShadowPanicQuarantined(t *testing.T) {
	armFaults(t, "shadow.exec.panic:panic")
	var measured atomic.Int64
	measure := func(job shadowJob, deadline time.Time) (float64, float64, error) {
		measured.Add(1)
		return 1e-3, 1e-3, nil
	}
	panicsBefore := shadowPanics.Value()
	_, ts := startFeedbackServer(t, feedbackConfig(t, measure))
	body := mmBytes(t, testMatrix(t))

	ok := driveUntil(t, ts.URL, body, 10*time.Second, func() bool {
		return shadowPanics.Value() > panicsBefore && measured.Load() > 0
	})
	if !ok {
		t.Fatalf("panics=%d (was %d), measured=%d; want the injected panic quarantined and later samples measured",
			shadowPanics.Value(), panicsBefore, measured.Load())
	}
	if status, pr, _ := postPredict(t, ts.URL, body); status != 200 || pr.Degraded {
		t.Fatalf("request path affected by shadow panic: status=%d degraded=%v", status, pr.Degraded)
	}
}

// TestRetrainFailureRetried arms retrain.fail for the first attempt: the
// failure is contained (serving untouched, serve.retrains_failed counted)
// and the still-tripped detector drives a second attempt that succeeds and
// promotes.
func TestRetrainFailureRetried(t *testing.T) {
	armFaults(t, "retrain.fail:error")
	measure := func(job shadowJob, deadline time.Time) (float64, float64, error) {
		return 2e-3, 1e-3, nil
	}
	failedBefore := retrainsFailed.Value()
	s, ts := startFeedbackServer(t, feedbackConfig(t, measure))
	body := mmBytes(t, testMatrix(t))

	origGen := s.GenerationID()
	promoted := driveUntil(t, ts.URL, body, 20*time.Second, func() bool {
		return s.GenerationID() != origGen
	})
	if retrainsFailed.Value() <= failedBefore {
		t.Fatalf("injected retrain failure never fired (failed=%d)", retrainsFailed.Value())
	}
	if !promoted {
		t.Fatal("retrain was not retried after the injected failure")
	}
}

// TestServePromoteCrashRestart is the serve-level crash-recovery scenario:
// a crash injected between generation publication and the manifest swap
// (registry.publish.crash) leaves the old generation serving; a fresh server
// on the same registry comes up on the last durable generation with an
// identical answer, and the retried promotion then succeeds.
func TestServePromoteCrashRestart(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "models.json")
	if err := buildShadowModel(modelPath); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		ModelPath:   modelPath,
		RegistryDir: filepath.Join(dir, "registry"),
		Mach:        machine.Scaled(),
		ReloadPoll:  -1,
	}
	s1, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s1.SetReady(true)
	ts1 := httptest.NewServer(s1.Handler())
	body := mmBytes(t, testMatrix(t))
	gen0 := s1.GenerationID()
	_, before, _ := postPredict(t, ts1.URL, body)
	ts1.Close()

	// A distinct candidate, durable on disk but not yet serving.
	cand, err := core.Load(sharedModelPath, machine.Scaled())
	if err != nil {
		t.Fatal(err)
	}
	genB, err := s1.Registry().Publish(cand)
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}

	armFaults(t, "registry.publish.crash:panic")
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("injected crash did not fire during promotion")
			}
		}()
		_ = s1.Registry().Promote(genB.ID)
	}()

	// "Restart": a fresh server over the same registry directory must serve
	// the last durable generation and answer identically.
	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("New after crash: %v", err)
	}
	s2.SetReady(true)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if got := s2.GenerationID(); got != gen0 {
		t.Fatalf("after crash restart serving %s, want last-good %s", got, gen0)
	}
	_, after, _ := postPredict(t, ts2.URL, body)
	if after.Method != before.Method || after.Index != before.Index ||
		after.PredictedClass != before.PredictedClass {
		t.Fatalf("post-crash answer %+v differs from pre-crash %+v", after, before)
	}

	// The crash clause is exhausted; retrying the interrupted promotion
	// succeeds without re-publishing.
	if err := s2.Registry().Promote(genB.ID); err != nil {
		t.Fatalf("retried promotion: %v", err)
	}
	if err := s2.Reload(); err != nil {
		t.Fatalf("Reload after promotion: %v", err)
	}
	if got := s2.GenerationID(); got != genB.ID {
		t.Fatalf("after retried promotion serving %s, want %s", got, genB.ID)
	}
}

// TestFileSourceChecksumChange is the reload-trigger fix: a model file
// rewritten with different bytes but identical mtime and size (coarse
// timestamps, same-length payload) must still read as changed via the
// envelope checksum.
func TestFileSourceChecksumChange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "models.json")
	payloadA := []byte(`{"payload":"aaaa"}`)
	payloadB := []byte(`{"payload":"bbbb"}`)
	if err := resilience.WriteArtifact(path, core.ModelsArtifactKind, 1, payloadA); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	src := &fileSource{path: path, mach: machine.Scaled()}
	cur := &loadedModel{mtime: fi.ModTime(), size: fi.Size(), sum: peekSum(path)}
	if cur.sum == "" {
		t.Fatal("enveloped artifact yielded no header checksum")
	}
	if src.changed(cur) {
		t.Fatal("unchanged file reported as changed")
	}

	// Same-length payload -> byte-identical file size; restore mtime to
	// simulate a rewrite within one timestamp granule.
	if err := resilience.WriteArtifact(path, core.ModelsArtifactKind, 1, payloadB); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, fi.ModTime(), fi.ModTime()); err != nil {
		t.Fatal(err)
	}
	fiB, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fiB.Size() != fi.Size() || !fiB.ModTime().Equal(fi.ModTime()) {
		t.Fatalf("test setup failed to keep identity: size %d->%d mtime %v->%v",
			fi.Size(), fiB.Size(), fi.ModTime(), fiB.ModTime())
	}
	if !src.changed(cur) {
		t.Fatal("same-mtime same-size rewrite not detected by checksum compare")
	}

	// Legacy files without an envelope keep the mtime+size-only contract.
	legacy := &loadedModel{mtime: fiB.ModTime(), size: fiB.Size(), sum: ""}
	if src.changed(legacy) {
		t.Fatal("legacy (no-checksum) generation flagged changed on identical identity")
	}
}

// TestChaosFeedbackFromEnv is the nightly chaos entry point (ci.yml): armed
// purely from WISE_FAULTS, it drives the full feedback loop under whatever
// fault mix the matrix chose and asserts the one invariant every mix must
// preserve — the request path keeps answering 200 and the process survives.
func TestChaosFeedbackFromEnv(t *testing.T) {
	if os.Getenv("WISE_FAULTS") == "" {
		t.Skip("set WISE_FAULTS to run chaos (see the ci.yml chaos-nightly matrix for specs)")
	}
	if err := faultinject.ConfigureFromEnv(os.Getenv); err != nil {
		t.Fatalf("ConfigureFromEnv: %v", err)
	}
	t.Cleanup(faultinject.Disable)

	measure := func(job shadowJob, deadline time.Time) (float64, float64, error) {
		return 2e-3, 1e-3, nil // constant mismatch pressure keeps the loop busy
	}
	// Supervised startup: a crash injected into the registry seeding (the
	// process-kill site registry.publish.crash) is what a restart absorbs in
	// production, so retry New like a supervisor would.
	cfg := feedbackConfig(t, measure)
	var s *Server
	for attempt := 0; attempt < 10 && s == nil; attempt++ {
		s = tryNewServer(t, cfg)
	}
	if s == nil {
		// A fault mix that crashes every promotion can keep the registry
		// empty forever; the surviving invariant is that the directory
		// still opens cleanly as a registry.
		if _, err := registry.Open(cfg.RegistryDir, cfg.Mach); err != nil {
			t.Fatalf("registry unusable after repeated startup crashes: %v", err)
		}
		t.Skipf("fault mix %q blocks startup deterministically; registry stayed valid", os.Getenv("WISE_FAULTS"))
	}
	s.SetReady(true)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.RunFeedback(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	body := mmBytes(t, testMatrix(t))
	stop := time.Now().Add(3 * time.Second)
	for time.Now().Before(stop) {
		if status, _, _ := postPredict(t, ts.URL, body); status != 200 {
			t.Fatalf("/predict = %d under chaos", status)
		}
	}
}

// tryNewServer is one supervised startup attempt: injected startup crashes
// (panics) and errors both read as "the process died, restart it".
func tryNewServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	defer func() {
		if rec := recover(); rec != nil {
			t.Logf("startup crash absorbed: %v", rec)
		}
	}()
	s, err := New(cfg)
	if err != nil {
		t.Logf("startup error absorbed: %v", err)
		return nil
	}
	return s
}
