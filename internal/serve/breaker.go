package serve

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker automaton
// (RESILIENCE.md "Serving"): closed (predictor in use), open (fallback-only
// after consecutive failures), half-open (one probe request tests recovery
// after the cooldown).
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerHalfOpen
	breakerOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	case breakerOpen:
		return "open"
	default:
		return "unknown"
	}
}

// breaker trips the predict path to fallback-only mode after threshold
// consecutive failures, and half-opens after cooldown: exactly one probe
// request runs the real predictor; its outcome closes or re-opens the
// circuit. now is injectable for tests.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu        sync.Mutex
	state     breakerState // guarded by mu
	failures  int          // consecutive failures while closed; guarded by mu
	probing   bool         // a half-open probe is in flight; guarded by mu
	trippedAt time.Time    // guarded by mu
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether this request may use the predictor, and whether it
// is the half-open probe (the caller must pass probe back to report).
func (b *breaker) allow() (usePredictor, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if b.now().Sub(b.trippedAt) < b.cooldown {
			return false, false
		}
		b.setState(breakerHalfOpen)
		b.probing = true
		return true, true
	case breakerHalfOpen:
		if b.probing {
			return false, false // one probe at a time; the rest stay on fallback
		}
		b.probing = true
		return true, true
	}
	return false, false
}

// report records a predictor outcome. Failures while closed count toward
// the trip threshold; a failed probe re-opens the circuit and restarts the
// cooldown; any success closes it.
func (b *breaker) report(success, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	if success {
		b.setState(breakerClosed)
		b.failures = 0
		return
	}
	if probe || b.state == breakerHalfOpen {
		b.setState(breakerOpen)
		b.trippedAt = b.now()
		return
	}
	b.failures++
	if b.state == breakerClosed && b.failures >= b.threshold {
		b.setState(breakerOpen)
		b.trippedAt = b.now()
		breakerTrips.Inc()
	}
}

// setState transitions the automaton and mirrors the state into the
// serve.breaker_state gauge (0 closed, 1 half-open, 2 open). Callers hold mu.
func (b *breaker) setState(s breakerState) {
	b.state = s
	breakerGauge.Set(float64(s))
}

// currentState returns the state for /readyz reporting.
func (b *breaker) currentState() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
