package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"wise/internal/core"
	"wise/internal/matrix"
	"wise/internal/resilience/faultinject"
)

// predictResponse is the JSON body of a /predict answer. Degraded is true
// when the predictor could not run (breaker open, deadline overrun, or
// prediction error) and the server answered with the CSR fallback instead —
// a well-formed request is never turned away empty-handed.
type predictResponse struct {
	Method         string  `json:"method"`
	Index          int     `json:"index"`
	PredictedClass int     `json:"predicted_class"`
	Classes        []int   `json:"classes,omitempty"`
	Degraded       bool    `json:"degraded"`
	Reason         string  `json:"reason,omitempty"`
	Rows           int     `json:"rows"`
	Cols           int     `json:"cols"`
	NNZ            int     `json:"nnz"`
	Fingerprint    string  `json:"fingerprint,omitempty"` // session handle (stateful requests)
	Cached         bool    `json:"cached,omitempty"`      // answered from a prepared session
	ElapsedMS      float64 `json:"elapsed_ms"`
}

// errorResponse is the JSON body of every non-200 answer.
type errorResponse struct {
	Error string `json:"error"`
}

// Degradation reasons reported in predictResponse.Reason.
const (
	reasonBreakerOpen  = "breaker-open"
	reasonDeadline     = "deadline"
	reasonPredictError = "predict-error"
)

// handlePredict runs the full hardened request path: panic recovery,
// admission, per-request deadline, bounded ingest, then the
// breaker-guarded predictor with CSR degradation. See the package comment
// for the ladder.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	requestsTotal.Inc()
	defer func() {
		if rec := recover(); rec != nil {
			requestsPanicked.Inc()
			writeJSON(w, http.StatusInternalServerError,
				errorResponse{Error: fmt.Sprintf("serve: internal error: %v", rec)})
		}
		requestSeconds.Observe(time.Since(start).Seconds())
	}()
	if err := faultinject.Hit("serve.handler.panic"); err != nil {
		panic(err)
	}

	if err := s.admit.acquire(r.Context()); err != nil {
		if errors.Is(err, errSaturated) {
			requestsShed.Inc()
			w.Header().Set("Retry-After", fmt.Sprintf("%d", s.admit.retryAfterSeconds()))
			writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
			return
		}
		// Client went away while queued; nobody is reading the response.
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	}
	defer s.admit.release()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	// A fingerprint (query param or header) answers warm from the session
	// store: cached features re-predicted only on a model-generation change,
	// no parse, no extraction (RESILIENCE.md "Stateful serving").
	if fp := fingerprintOf(r); fp != "" {
		s.answerPredictSession(w, fp, start)
		return
	}

	m, err := matrix.ReadMatrixMarketLimited(
		http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), s.cfg.Limits)
	if err != nil {
		requestsRejected.Inc()
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}

	lm := s.models.current()
	resp, sel, predicted := s.selectMethod(ctx, lm, m)
	resp.Rows, resp.Cols, resp.NNZ = m.Rows, m.Cols, m.NNZ()
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	if resp.Degraded {
		requestsDegraded.Inc()
	}
	if predicted && s.feedback != nil {
		// Off-path shadow measurement of a sampled fraction of healthy
		// predictions; never blocks or fails the request.
		s.feedback.pool.offer(m, sel, lm)
	}
	writeJSON(w, http.StatusOK, resp)
}

// fingerprintOf extracts the session handle of a warm request: the fp query
// parameter or the X-Wise-Fingerprint header.
func fingerprintOf(r *http.Request) string {
	if fp := r.URL.Query().Get("fp"); fp != "" {
		return fp
	}
	return r.Header.Get("X-Wise-Fingerprint")
}

// answerPredictSession serves /predict from a prepared session. An unknown
// fingerprint is 404 — the client uploads via /matrix first.
func (s *Server) answerPredictSession(w http.ResponseWriter, fp string, start time.Time) {
	ent, ok := s.sessions.Acquire(fp)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("serve: unknown fingerprint %s; upload via POST /matrix first", fp)})
		return
	}
	defer s.sessions.Release(ent)
	lm := s.models.current()
	sel := s.sessions.Refresh(ent, lm.genID, lm.w.SelectFromFeatures)
	m := ent.Matrix()
	writeJSON(w, http.StatusOK, predictResponse{
		Method:         sel.Method.String(),
		Index:          sel.Index,
		PredictedClass: sel.PredictedClass,
		Classes:        sel.Classes,
		Rows:           m.Rows,
		Cols:           m.Cols,
		NNZ:            m.NNZ(),
		Fingerprint:    fp,
		Cached:         true,
		ElapsedMS:      float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// selectMethod is the degradation ladder around the predictor. The breaker
// decides whether the predictor may run at all; if it runs and fails (error
// or deadline overrun), the outcome feeds back into the breaker and the
// response degrades to the fallback method of the serving generation. The
// returned predicted flag is true only when the model actually ran — the
// shadow sampler measures real predictions, not fallback answers.
func (s *Server) selectMethod(ctx context.Context, lm *loadedModel, m *matrix.CSR) (predictResponse, core.Selection, bool) {
	usePredictor, probe := s.breaker.allow()
	if !usePredictor {
		return fallbackResponse(lm, reasonBreakerOpen), core.Selection{}, false
	}
	sel, err := predict(ctx, lm, m)
	s.breaker.report(err == nil, probe)
	if err != nil {
		reason := reasonPredictError
		if ctx.Err() != nil {
			reason = reasonDeadline
		}
		return fallbackResponse(lm, reason), core.Selection{}, false
	}
	return predictResponse{
		Method:         sel.Method.String(),
		Index:          sel.Index,
		PredictedClass: sel.PredictedClass,
		Classes:        sel.Classes,
	}, sel, true
}

// predict runs the ctx-aware feature-extraction + tree-inference path, with
// the two predictor fault sites in front: serve.predict.delay (armed with
// d=... to simulate a slow predictor overrunning the deadline) and
// serve.predict.error (a failing predictor, the breaker-trip trigger).
func predict(ctx context.Context, lm *loadedModel, m *matrix.CSR) (core.Selection, error) {
	if err := faultinject.Hit("serve.predict.delay"); err != nil {
		return core.Selection{}, err
	}
	if err := faultinject.Hit("serve.predict.error"); err != nil {
		return core.Selection{}, err
	}
	if err := ctx.Err(); err != nil {
		return core.Selection{}, fmt.Errorf("serve: predict: %w", err)
	}
	return lm.w.SelectCtx(ctx, m)
}

// fallbackResponse answers with the serving generation's lowest-
// preprocessing-cost method (CSR in any paper-shaped model space), marked
// degraded so clients and dashboards can see the ladder at work.
func fallbackResponse(lm *loadedModel, reason string) predictResponse {
	fb := lm.w.Models[lm.fallback]
	return predictResponse{
		Method:   fb.Method.String(),
		Index:    lm.fallback,
		Degraded: true,
		Reason:   reason,
	}
}
