package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// errSaturated is returned by acquire when the server is at its in-flight
// limit and the wait queue is full (or the queue wait elapsed); the handler
// converts it into 429 + Retry-After.
var errSaturated = errors.New("serve: saturated: in-flight limit and wait queue full")

// admission is the server's load gate: at most cap(slots) requests run
// concurrently, at most maxQueue more wait up to maxWait for a slot, and
// everything beyond that is shed immediately. Waiters are the goroutines
// blocked on the slots send, so the queue needs no separate structure — the
// waiters counter only bounds it.
type admission struct {
	slots    chan struct{}
	maxQueue int64
	maxWait  time.Duration
	waiters  atomic.Int64
}

func newAdmission(maxInFlight, maxQueue int, maxWait time.Duration) *admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	return &admission{
		slots:    make(chan struct{}, maxInFlight),
		maxQueue: int64(maxQueue),
		maxWait:  maxWait,
	}
}

// acquire claims an in-flight slot, waiting in the bounded queue if the
// server is busy. It fails fast with errSaturated when the queue is full or
// the wait budget elapses, and with ctx.Err() when the caller gives up.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		inFlight.Set(float64(len(a.slots)))
		return nil
	default:
	}
	if a.maxWait <= 0 || a.waiters.Load() >= a.maxQueue {
		return errSaturated
	}
	a.waiters.Add(1)
	defer a.waiters.Add(-1)
	t := time.NewTimer(a.maxWait)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		inFlight.Set(float64(len(a.slots)))
		return nil
	case <-t.C:
		return errSaturated
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a slot claimed by acquire.
func (a *admission) release() {
	<-a.slots
	inFlight.Set(float64(len(a.slots)))
}

// retryAfterSeconds is the Retry-After hint sent with 429 responses,
// derived from live queue state rather than the static wait flag: a shed
// request would line up behind every current waiter, each of which may hold
// a slot wait of up to maxWait, so the hint scales with the observed depth
// — ceil(maxWait * (waiters + 1)) seconds, clamped to [1, 60] so a deep
// queue never tells clients to go away for minutes.
func (a *admission) retryAfterSeconds() int {
	est := a.maxWait * time.Duration(a.waiters.Load()+1)
	s := int((est + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	if s > 60 {
		s = 60
	}
	return s
}
