package serve

import "wise/internal/obs"

// Observability instruments of the serving path (OBSERVABILITY.md). All are
// in the default registry, so -metrics snapshots and the /metricz endpoint
// expose them without extra wiring.
var (
	requestsTotal    = obs.NewCounter("serve.requests_total")
	requestsShed     = obs.NewCounter("serve.requests_shed")
	requestsDegraded = obs.NewCounter("serve.requests_degraded")
	requestsPanicked = obs.NewCounter("serve.requests_panicked")
	requestsRejected = obs.NewCounter("serve.requests_rejected")

	breakerTrips = obs.NewCounter("serve.breaker_trips")
	breakerGauge = obs.NewGauge("serve.breaker_state")

	modelReloads         = obs.NewCounter("serve.model_reloads")
	modelReloadsRejected = obs.NewCounter("serve.model_reloads_rejected")

	inFlight = obs.NewGauge("serve.in_flight")

	requestSeconds = obs.NewHistogram("serve.request_seconds", nil)
)
