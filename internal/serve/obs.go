package serve

import "wise/internal/obs"

// Observability instruments of the serving path (OBSERVABILITY.md). All are
// in the default registry, so -metrics snapshots and the /metricz endpoint
// expose them without extra wiring.
var (
	requestsTotal    = obs.NewCounter("serve.requests_total")
	requestsShed     = obs.NewCounter("serve.requests_shed")
	requestsDegraded = obs.NewCounter("serve.requests_degraded")
	requestsPanicked = obs.NewCounter("serve.requests_panicked")
	requestsRejected = obs.NewCounter("serve.requests_rejected")

	// Stateful serving (internal/session, RESILIENCE.md "Stateful serving").
	requestsMatrix   = obs.NewCounter("serve.requests_matrix")
	requestsSpMV     = obs.NewCounter("serve.requests_spmv")
	spmvWarm         = obs.NewCounter("serve.spmv_warm")
	spmvCold         = obs.NewCounter("serve.spmv_cold")
	sessionsDegraded = obs.NewCounter("serve.sessions_degraded")

	// Sessions still pinned by in-flight executions at the SIGTERM instant,
	// recorded by the drain path for the final metrics snapshot.
	drainPinnedSessions = obs.NewGauge("serve.drain_pinned_sessions")

	breakerTrips = obs.NewCounter("serve.breaker_trips")
	breakerGauge = obs.NewGauge("serve.breaker_state")

	modelReloads         = obs.NewCounter("serve.model_reloads")
	modelReloadsRejected = obs.NewCounter("serve.model_reloads_rejected")

	inFlight = obs.NewGauge("serve.in_flight")

	requestSeconds = obs.NewHistogram("serve.request_seconds", nil)

	// Feedback loop: shadow measurement, drift detection, retrain (see
	// RESILIENCE.md "Self-healing serving").
	shadowSampled  = obs.NewCounter("serve.shadow_sampled")
	shadowDropped  = obs.NewCounter("serve.shadow_dropped")
	shadowSkipped  = obs.NewCounter("serve.shadow_skipped")
	shadowMeasured = obs.NewCounter("serve.shadow_measured")
	shadowMismatch = obs.NewCounter("serve.shadow_mismatches")
	shadowPanics   = obs.NewCounter("serve.shadow_panics")
	shadowDeadline = obs.NewCounter("serve.shadow_deadline")
	shadowSeconds  = obs.NewHistogram("serve.shadow_seconds", nil)

	driftRate      = obs.NewGauge("serve.drift_rate")
	driftTrippedG  = obs.NewGauge("serve.drift_tripped")
	driftTrips     = obs.NewCounter("serve.drift_trips")
	driftRollbacks = obs.NewCounter("serve.drift_rollbacks")

	retrains       = obs.NewCounter("serve.retrains")
	retrainsFailed = obs.NewCounter("serve.retrains_failed")
)
