package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"wise/internal/core"
	"wise/internal/features"
	"wise/internal/ml"
	"wise/internal/obs"
	"wise/internal/perf"
	"wise/internal/registry"
	"wise/internal/resilience/faultinject"
)

// feedback is the self-healing loop around the serving model (RESILIENCE.md
// "Self-healing serving"): shadow measurements accumulate as labels, the
// drift detector watches their mismatch rate, and when it trips the
// controller retrains over the accumulated labels, publishes the candidate
// to the crash-safe registry, and promotes it only through the canary gate.
// A promotion opens a probation window; drift tripping inside it rolls the
// registry back to the previous generation instead of retraining — the
// automatic response to a promoted model that regresses in production.
type feedback struct {
	cfg    Config
	reg    *registry.Registry // nil: shadow+drift metrics only, no retrain
	models *modelHolder
	drift  *driftDetector
	pool   *shadowPool
	kick   chan struct{}

	mu            sync.Mutex
	labels        []perf.MatrixLabels // guarded by mu; bounded shadow-label store
	probationLeft int                 // guarded by mu; samples left in post-promotion probation
	skip          map[string]bool     // guarded by mu; generation IDs rolled back, never re-promoted
}

func newFeedback(cfg Config, reg *registry.Registry, models *modelHolder) *feedback {
	f := &feedback{
		cfg:    cfg,
		reg:    reg,
		models: models,
		drift:  newDriftDetector(cfg.DriftWindow, cfg.DriftMinSamples, cfg.DriftTrip, cfg.DriftClear),
		kick:   make(chan struct{}, 1),
		skip:   make(map[string]bool),
	}
	measure := cfg.ShadowMeasure
	if measure == nil {
		measure = measureKernels
	}
	f.pool = newShadowPool(cfg.ShadowRate, cfg.ShadowQueue, cfg.ShadowMaxNNZ,
		cfg.ShadowDeadline, measure, f.onResult)
	return f
}

// run drives the loop until ctx cancels: the shadow workers and the single
// control goroutine that reacts to drift trips. All goroutines are joined
// before returning, so Serve's drain contract holds.
func (f *feedback) run(ctx context.Context) {
	var wg sync.WaitGroup
	for i := 0; i < f.cfg.ShadowWorkers; i++ {
		wg.Add(1)
		go f.runWorker(ctx, &wg)
	}
	defer wg.Wait()
	for {
		select {
		case <-ctx.Done():
			return
		case <-f.kick:
			f.onTrip(ctx)
		}
	}
}

func (f *feedback) runWorker(ctx context.Context, wg *sync.WaitGroup) {
	defer wg.Done()
	f.pool.run(ctx)
}

// onResult folds one completed shadow measurement into the loop: classify
// the measured relative time, compare against the prediction the server
// answered with, store the corrected label, and feed the drift detector.
// Runs on shadow workers; everything shared is under mu or the detector's
// own lock.
func (f *feedback) onResult(job shadowJob, tSel, tBase float64) {
	if tBase <= 0 || job.lm != f.models.current() {
		return // measurement attributed to a generation no longer serving
	}
	measured := perf.ClassOf(tSel / tBase)
	shadowMeasured.Inc()
	mismatch := measured != job.sel.PredictedClass
	if mismatch {
		shadowMismatch.Inc()
	}
	f.storeLabel(job, measured)
	_, tripped := f.drift.record(mismatch)
	if tripped {
		select {
		case f.kick <- struct{}{}:
		default:
		}
	}
}

// storeLabel converts a measurement into a training label: the served
// prediction vector with the selected method's class replaced by the
// measured one and the CSR baseline pinned to its by-definition class
// (relative time 1.0). The store is bounded at ShadowMaxSamples, dropping
// the oldest label — the retrain should learn the recent workload.
func (f *feedback) storeLabel(job shadowJob, measured int) {
	feat := features.Extract(job.m, job.lm.w.FeatureCfg)
	classes := make([]int, len(job.sel.Classes))
	copy(classes, job.sel.Classes)
	classes[job.lm.fallback] = perf.ClassOf(1.0)
	classes[job.sel.Index] = measured
	label := perf.MatrixLabels{
		Rows: job.m.Rows, Cols: job.m.Cols, NNZ: int64(job.m.NNZ()),
		Features: feat,
		Methods:  job.lm.w.Space(),
		Classes:  classes,
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.labels = append(f.labels, label)
	if len(f.labels) > f.cfg.ShadowMaxSamples {
		f.labels = f.labels[len(f.labels)-f.cfg.ShadowMaxSamples:]
	}
	if f.probationLeft > 0 {
		f.probationLeft--
	}
}

// onTrip is the control reaction to a drift trip: inside the post-promotion
// probation window the promoted generation is presumed bad and rolled back;
// outside it the loop retrains from the accumulated labels. The whole
// reaction runs quarantined — a panic anywhere in the retrain/promote/
// rollback machinery (including an injected registry.publish.crash) must
// cost at most one reaction, never the control loop or the server; the
// still-tripped detector re-kicks and the registry's crash-safety makes the
// interrupted step resumable.
func (f *feedback) onTrip(ctx context.Context) {
	defer func() {
		if rec := recover(); rec != nil {
			retrainsFailed.Inc()
			obs.Verbosef("serve: feedback control crashed (quarantined): %v", rec)
		}
	}()
	if !f.drift.isTripped() || f.reg == nil {
		return
	}
	f.mu.Lock()
	probation := f.probationLeft > 0
	f.mu.Unlock()
	if probation {
		f.rollback()
		return
	}
	f.retrain(ctx)
}

// rollback reverts the registry to the previous generation, remembers the
// regressed generation so a later retrain cannot re-promote the same bytes,
// and resets the loop state for the restored model.
func (f *feedback) rollback() {
	badID := f.models.current().genID
	gen, err := f.reg.Rollback()
	if err != nil {
		obs.Verbosef("serve: drift during probation but rollback failed: %v", err)
		return
	}
	f.mu.Lock()
	if badID != "" {
		f.skip[badID] = true
	}
	f.labels = nil
	f.probationLeft = 0
	f.mu.Unlock()
	if err := f.models.Reload(); err != nil {
		obs.Verbosef("serve: %v", err)
	}
	f.drift.reset()
	driftRollbacks.Inc()
	obs.Verbosef("serve: drift during probation; rolled back regressed generation %s to %s", badID, gen.ID)
}

// retrain runs the quarantined retrain-publish-canary sequence. Every
// failure path is contained: an injected or real training failure, a
// deadline overrun, or a canary rejection leaves the serving generation
// untouched and is retried on a later trip (the kick re-fires while the
// detector stays tripped).
func (f *feedback) retrain(ctx context.Context) {
	retrains.Inc()
	if err := faultinject.Hit("retrain.fail"); err != nil {
		retrainsFailed.Inc()
		obs.Verbosef("serve: retrain failed: %v", err)
		return
	}
	labels := f.snapshotLabels()
	if len(labels) < f.cfg.RetrainMinSamples {
		obs.Verbosef("serve: drift tripped with %d labels (< %d); waiting for more samples",
			len(labels), f.cfg.RetrainMinSamples)
		return
	}
	trainIdx, valIdx := ml.HoldoutSplit(len(labels), f.cfg.CanaryHoldout, f.cfg.CanarySeed)
	if len(trainIdx) == 0 || len(valIdx) == 0 {
		return
	}
	serving := f.models.current()
	cand, err := f.trainQuarantined(ctx, pickLabels(labels, trainIdx))
	if err != nil {
		retrainsFailed.Inc()
		obs.Verbosef("serve: retrain failed: %v", err)
		return
	}
	gen, err := f.reg.Publish(cand)
	if err != nil {
		retrainsFailed.Inc()
		obs.Verbosef("serve: publishing retrained candidate: %v", err)
		return
	}
	f.mu.Lock()
	skipped := f.skip[gen.ID]
	f.mu.Unlock()
	if skipped {
		obs.Verbosef("serve: candidate %s was rolled back before; not re-promoting", gen.ID)
		return
	}
	val := pickLabels(labels, valIdx)
	servingErr := selectionError(serving.w, val)
	candErr := selectionError(cand, val)
	err = f.reg.GatedPromote(gen.ID, servingErr, candErr)
	switch {
	case errors.Is(err, registry.ErrRejected):
		obs.Verbosef("serve: %v", err)
		return
	case err != nil:
		retrainsFailed.Inc()
		obs.Verbosef("serve: promoting retrained candidate: %v", err)
		return
	}
	if err := f.models.Reload(); err != nil {
		obs.Verbosef("serve: %v", err)
	}
	f.mu.Lock()
	f.labels = nil
	f.probationLeft = f.cfg.DriftProbation
	f.mu.Unlock()
	f.drift.reset()
	obs.Verbosef("serve: promoted retrained generation %s (val error %.3f beat serving %.3f); probation %d samples",
		gen.ID, candErr, servingErr, f.cfg.DriftProbation)
}

func (f *feedback) snapshotLabels() []perf.MatrixLabels {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]perf.MatrixLabels, len(f.labels))
	copy(out, f.labels)
	return out
}

func pickLabels(labels []perf.MatrixLabels, idx []int) []perf.MatrixLabels {
	out := make([]perf.MatrixLabels, len(idx))
	for i, j := range idx {
		out[i] = labels[j]
	}
	return out
}

// trainOutcome carries the quarantined training result across the goroutine
// boundary.
type trainOutcome struct {
	w   *core.WISE
	err error
}

// trainQuarantined fits the candidate in its own goroutine under the
// retrain deadline, with panic recovery — a training crash or hang must
// never take the control loop (or the server) with it. The goroutine always
// finishes into the buffered channel, so an abandoned deadline path leaks
// nothing past the training call itself.
func (f *feedback) trainQuarantined(ctx context.Context, labels []perf.MatrixLabels) (*core.WISE, error) {
	ch := make(chan trainOutcome, 1)
	go f.trainCandidate(labels, ch)
	timer := time.NewTimer(f.cfg.RetrainDeadline)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out.w, out.err
	case <-timer.C:
		return nil, fmt.Errorf("serve: retrain exceeded deadline %s", f.cfg.RetrainDeadline)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (f *feedback) trainCandidate(labels []perf.MatrixLabels, ch chan<- trainOutcome) {
	defer func() {
		if rec := recover(); rec != nil {
			ch <- trainOutcome{err: fmt.Errorf("serve: retrain panicked: %v", rec)}
		}
	}()
	serving := f.models.current()
	w, err := core.Train(labels, ml.DefaultTreeConfig(), serving.w.FeatureCfg, serving.w.Mach)
	ch <- trainOutcome{w: w, err: err}
}

// selectionError scores a model over held-out labels: the fraction of
// matrices where the model's method choice differs from the choice the
// measured classes dictate. This is the canary-gate metric — cheap, and
// directly the quantity serving quality depends on.
func selectionError(w *core.WISE, val []perf.MatrixLabels) float64 {
	if len(val) == 0 {
		return 0
	}
	wrong := 0
	for i := range val {
		sel := w.SelectFromFeatures(val[i].Features)
		if sel.Index != core.SelectFromClasses(val[i].Methods, val[i].Classes) {
			wrong++
		}
	}
	return float64(wrong) / float64(len(val))
}
