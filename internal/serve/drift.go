package serve

import "sync"

// driftDetector watches the stream of shadow-measurement outcomes for model
// drift: the fraction of recent samples whose measured speedup class
// disagreed with the serving model's prediction. It is a windowed rate with
// hysteresis — tripping at trip, clearing only back below clear — and a
// minimum-sample floor so a couple of unlucky first measurements cannot
// trigger a retrain.
type driftDetector struct {
	window     int
	minSamples int
	trip       float64
	clear      float64

	mu      sync.Mutex
	ring    []bool // guarded by mu; last window mismatch outcomes
	next    int    // guarded by mu; ring write cursor
	filled  int    // guarded by mu; samples recorded, capped at window
	tripped bool   // guarded by mu
}

func newDriftDetector(window, minSamples int, trip, clear float64) *driftDetector {
	return &driftDetector{
		window:     window,
		minSamples: minSamples,
		trip:       trip,
		clear:      clear,
		ring:       make([]bool, window),
	}
}

// record folds one shadow outcome into the window and returns the current
// mismatch rate and tripped state. The rate is over the filled window; the
// tripped flag latches at rate >= trip (once minSamples are in) and releases
// only at rate <= clear, so a rate hovering at the threshold cannot flap the
// retrain machinery.
func (d *driftDetector) record(mismatch bool) (rate float64, tripped bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ring[d.next] = mismatch
	d.next = (d.next + 1) % d.window
	if d.filled < d.window {
		d.filled++
	}
	n := 0
	for i := 0; i < d.filled; i++ {
		if d.ring[i] {
			n++
		}
	}
	rate = float64(n) / float64(d.filled)
	if d.filled >= d.minSamples {
		switch {
		case !d.tripped && rate >= d.trip:
			d.tripped = true
			driftTrips.Inc()
		case d.tripped && rate <= d.clear:
			d.tripped = false
		}
	}
	d.updateGaugesLocked(rate)
	return rate, d.tripped
}

// isTripped reports the latched drift state.
func (d *driftDetector) isTripped() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tripped
}

// reset clears the window and the latch — called after a promotion or
// rollback, when the serving generation changed and the old window's
// mismatches describe a model that no longer serves.
func (d *driftDetector) reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.ring {
		d.ring[i] = false
	}
	d.next, d.filled = 0, 0
	d.tripped = false
	d.updateGaugesLocked(0)
}

func (d *driftDetector) updateGaugesLocked(rate float64) {
	driftRate.Set(rate)
	if d.tripped {
		driftTrippedG.Set(1)
	} else {
		driftTrippedG.Set(0)
	}
}
