package serve

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"wise/internal/core"
	"wise/internal/machine"
	"wise/internal/obs"
	"wise/internal/resilience/faultinject"
)

// loadedModel is one immutable generation of the serving model: the trained
// framework, the precomputed index of the cheapest (CSR) method used as the
// degradation fallback, and the file identity that mtime polling compares
// against. Generations are swapped atomically; in-flight requests keep the
// pointer they started with.
type loadedModel struct {
	w        *core.WISE
	fallback int // index into w.Space() of the lowest-preprocessing method
	mtime    time.Time
	size     int64
}

// modelHolder owns the current model generation and the reload protocol:
// core.Load validates the candidate file (envelope checksum, method
// validation) into a fresh generation, and only a fully valid file is
// swapped in — a corrupt file on disk leaves the previous generation
// serving and bumps serve.model_reloads_rejected.
type modelHolder struct {
	path string
	mach machine.Machine
	cur  atomic.Pointer[loadedModel]
}

func newModelHolder(path string, mach machine.Machine) (*modelHolder, error) {
	h := &modelHolder{path: path, mach: mach}
	lm, err := h.load()
	if err != nil {
		return nil, err
	}
	h.cur.Store(lm)
	return h, nil
}

// current returns the serving generation.
func (h *modelHolder) current() *loadedModel { return h.cur.Load() }

// load reads and validates the model file into a candidate generation
// without swapping it in.
func (h *modelHolder) load() (*loadedModel, error) {
	fi, err := os.Stat(h.path)
	if err != nil {
		return nil, fmt.Errorf("serve: models %s: %w", h.path, err)
	}
	w, err := core.Load(h.path, h.mach)
	if err != nil {
		return nil, err
	}
	if len(w.Models) == 0 {
		return nil, fmt.Errorf("serve: models %s: empty model space", h.path)
	}
	fallback := 0
	for i, m := range w.Models {
		if m.Method.PreprocessRank() < w.Models[fallback].Method.PreprocessRank() {
			fallback = i
		}
	}
	return &loadedModel{w: w, fallback: fallback, mtime: fi.ModTime(), size: fi.Size()}, nil
}

// Reload validates the model file and swaps it in. On any failure —
// including an injected serve.reload.corrupt fault standing in for a
// half-written or truncated file — the previous generation keeps serving
// and the rejection is counted; the error describes what was wrong.
func (h *modelHolder) Reload() error {
	lm, err := h.reloadCandidate()
	if err != nil {
		modelReloadsRejected.Inc()
		return fmt.Errorf("serve: reload rejected, keeping previous model: %w", err)
	}
	h.cur.Store(lm)
	modelReloads.Inc()
	return nil
}

func (h *modelHolder) reloadCandidate() (*loadedModel, error) {
	if err := faultinject.Hit("serve.reload.corrupt"); err != nil {
		return nil, err
	}
	return h.load()
}

// changedOnDisk reports whether the model file's identity differs from the
// serving generation — the mtime-poll reload trigger. Stat errors read as
// "unchanged": a transient missing file during an external atomic replace
// must not spam rejected reloads.
func (h *modelHolder) changedOnDisk() bool {
	fi, err := os.Stat(h.path)
	if err != nil {
		return false
	}
	lm := h.current()
	return !fi.ModTime().Equal(lm.mtime) || fi.Size() != lm.size
}

// watch drives hot reload until ctx is cancelled: SIGHUP forces a reload,
// and every poll interval the file identity is compared against the serving
// generation. Reload failures are reported through the counter and verbose
// log only — a bad file must never take down a serving process.
func (h *modelHolder) watch(ctx context.Context, poll time.Duration) {
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	if poll <= 0 {
		poll = time.Hour // SIGHUP-only reload; the ticker just parks
	}
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-hup:
			h.logReload(h.Reload())
		case <-tick.C:
			if h.changedOnDisk() {
				h.logReload(h.Reload())
			}
		}
	}
}

func (h *modelHolder) logReload(err error) {
	if err != nil {
		obs.Verbosef("serve: %v", err)
		return
	}
	obs.Verbosef("serve: reloaded models from %s (%d models)", h.path, len(h.current().w.Models))
}
