package serve

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"wise/internal/core"
	"wise/internal/machine"
	"wise/internal/obs"
	"wise/internal/registry"
	"wise/internal/resilience"
	"wise/internal/resilience/faultinject"
)

// loadedModel is one immutable generation of the serving model: the trained
// framework, the precomputed index of the cheapest (CSR) method used as the
// degradation fallback, and the backing-store identity that change polling
// compares against. Generations are swapped atomically; in-flight requests
// keep the pointer they started with.
type loadedModel struct {
	w        *core.WISE
	fallback int    // index into w.Space() of the lowest-preprocessing method
	genID    string // registry generation ID ("" for file-backed models)

	// File identity of the backing store at load time. For file-backed
	// models this is the model file itself; for registry-backed models it is
	// the manifest artifact. sum is the envelope's declared payload sha256
	// ("" for legacy non-enveloped files), the tiebreaker that catches
	// same-mtime rewrites on coarse-timestamp filesystems.
	mtime time.Time
	size  int64
	sum   string
}

// newLoadedModel wraps a validated framework with its fallback index.
func newLoadedModel(w *core.WISE) (*loadedModel, error) {
	if len(w.Models) == 0 {
		return nil, fmt.Errorf("serve: empty model space")
	}
	fallback := 0
	for i, m := range w.Models {
		if m.Method.PreprocessRank() < w.Models[fallback].Method.PreprocessRank() {
			fallback = i
		}
	}
	return &loadedModel{w: w, fallback: fallback}, nil
}

// modelSource is where generations come from: a standalone model file
// (wise-train output) or a crash-safe registry (internal/registry). load
// validates a fresh candidate; changed cheaply reports whether the backing
// store differs from the serving generation, driving the poll-based reload.
type modelSource interface {
	load() (*loadedModel, error)
	changed(cur *loadedModel) bool
	describe() string
}

// fileSource serves a single model file, reloading when its identity on
// disk changes.
type fileSource struct {
	path string
	mach machine.Machine
}

func (f *fileSource) describe() string { return f.path }

func (f *fileSource) load() (*loadedModel, error) {
	fi, err := os.Stat(f.path)
	if err != nil {
		return nil, fmt.Errorf("serve: models %s: %w", f.path, err)
	}
	w, err := core.Load(f.path, f.mach)
	if err != nil {
		return nil, err
	}
	lm, err := newLoadedModel(w)
	if err != nil {
		return nil, fmt.Errorf("serve: models %s: %w", f.path, err)
	}
	lm.mtime, lm.size = fi.ModTime(), fi.Size()
	lm.sum = peekSum(f.path)
	return lm, nil
}

// changed reports whether the model file's identity differs from the
// serving generation — the mtime-poll reload trigger. mtime or size moving
// is a change; when both match, the envelope checksum breaks the tie, so a
// same-size rewrite within one timestamp granule (coarse-timestamp
// filesystems, fast CI) still triggers a reload. Stat errors read as
// "unchanged": a transient missing file during an external atomic replace
// must not spam rejected reloads.
func (f *fileSource) changed(cur *loadedModel) bool {
	fi, err := os.Stat(f.path)
	if err != nil {
		return false
	}
	if !fi.ModTime().Equal(cur.mtime) || fi.Size() != cur.size {
		return true
	}
	if cur.sum == "" {
		return false // legacy non-enveloped file: identity is mtime+size only
	}
	sum := peekSum(f.path)
	return sum != "" && sum != cur.sum
}

// peekSum reads the envelope header checksum, or "" when the file is
// legacy, unreadable, or mid-replace.
func peekSum(path string) string {
	sum, err := resilience.PeekHeaderChecksum(path)
	if err != nil {
		return ""
	}
	return sum
}

// registrySource serves the registry's current generation and reloads when
// the manifest artifact changes on disk (an external promotion; in-process
// promotions swap the holder directly).
type registrySource struct {
	reg *registry.Registry
}

func (r *registrySource) describe() string { return r.reg.Dir() }

func (r *registrySource) load() (*loadedModel, error) {
	gen, _, err := r.reg.Refresh()
	if err != nil {
		return nil, err
	}
	if gen == nil {
		return nil, fmt.Errorf("serve: registry %s is empty", r.reg.Dir())
	}
	lm, err := newLoadedModel(gen.W)
	if err != nil {
		return nil, fmt.Errorf("serve: registry generation %s: %w", gen.ID, err)
	}
	lm.genID = gen.ID
	if fi, err := os.Stat(r.reg.ManifestPath()); err == nil {
		lm.mtime, lm.size = fi.ModTime(), fi.Size()
	}
	lm.sum = peekSum(r.reg.ManifestPath())
	return lm, nil
}

func (r *registrySource) changed(cur *loadedModel) bool {
	fi, err := os.Stat(r.reg.ManifestPath())
	if err != nil {
		return false
	}
	if !fi.ModTime().Equal(cur.mtime) || fi.Size() != cur.size {
		return true
	}
	if cur.sum == "" {
		return false
	}
	sum := peekSum(r.reg.ManifestPath())
	return sum != "" && sum != cur.sum
}

// modelHolder owns the current model generation and the reload protocol:
// the source validates a candidate into a fresh generation, and only a
// fully valid one is swapped in — a corrupt file on disk leaves the
// previous generation serving and bumps serve.model_reloads_rejected.
type modelHolder struct {
	src modelSource
	cur atomic.Pointer[loadedModel]
}

func newModelHolder(src modelSource) (*modelHolder, error) {
	h := &modelHolder{src: src}
	lm, err := src.load()
	if err != nil {
		return nil, err
	}
	h.cur.Store(lm)
	return h, nil
}

// current returns the serving generation.
func (h *modelHolder) current() *loadedModel { return h.cur.Load() }

// Reload validates the backing store and swaps it in. On any failure —
// including an injected serve.reload.corrupt fault standing in for a
// half-written or truncated file — the previous generation keeps serving
// and the rejection is counted; the error describes what was wrong.
func (h *modelHolder) Reload() error {
	lm, err := h.reloadCandidate()
	if err != nil {
		modelReloadsRejected.Inc()
		return fmt.Errorf("serve: reload rejected, keeping previous model: %w", err)
	}
	h.cur.Store(lm)
	modelReloads.Inc()
	return nil
}

func (h *modelHolder) reloadCandidate() (*loadedModel, error) {
	if err := faultinject.Hit("serve.reload.corrupt"); err != nil {
		return nil, err
	}
	return h.src.load()
}

// watch drives hot reload until ctx is cancelled: SIGHUP forces a reload,
// and every poll interval the backing-store identity is compared against
// the serving generation. Reload failures are reported through the counter
// and verbose log only — a bad file must never take down a serving process.
func (h *modelHolder) watch(ctx context.Context, poll time.Duration) {
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	if poll <= 0 {
		poll = time.Hour // SIGHUP-only reload; the ticker just parks
	}
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-hup:
			h.logReload(h.Reload())
		case <-tick.C:
			if h.src.changed(h.current()) {
				h.logReload(h.Reload())
			}
		}
	}
}

func (h *modelHolder) logReload(err error) {
	if err != nil {
		obs.Verbosef("serve: %v", err)
		return
	}
	obs.Verbosef("serve: reloaded models from %s (%d models)", h.src.describe(), len(h.current().w.Models))
}
