package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"wise/internal/matrix"
	"wise/internal/resilience"
)

func postMatrix(t *testing.T, url string, body []byte) (int, matrixResponse) {
	t.Helper()
	resp, err := http.Post(url+"/matrix", "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /matrix: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading /matrix response: %v", err)
	}
	var mr matrixResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &mr); err != nil {
			t.Fatalf("decoding /matrix response %q: %v", data, err)
		}
	}
	return resp.StatusCode, mr
}

func postSpMV(t *testing.T, url string, req spmvRequest) (int, spmvResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("encoding /spmv request: %v", err)
	}
	resp, err := http.Post(url+"/spmv", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /spmv: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading /spmv response: %v", err)
	}
	var sr spmvResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatalf("decoding /spmv response %q: %v", data, err)
		}
	}
	return resp.StatusCode, sr, string(data)
}

// TestMatrixFingerprintWorkflow walks the full stateful quickstart: upload,
// warm predict by fingerprint, and the amortization contract — repeated
// warm calls never rerun the inspector (asserted via per-store counters).
func TestMatrixFingerprintWorkflow(t *testing.T) {
	s, ts := newTestServer(t, nil)
	body := mmBytes(t, testMatrix(t))

	status, mr := postMatrix(t, ts.URL, body)
	if status != http.StatusOK || !mr.Stored || mr.Cached || mr.Fingerprint == "" || mr.Degraded {
		t.Fatalf("first upload: status=%d resp=%+v", status, mr)
	}
	status, mr2 := postMatrix(t, ts.URL, body)
	if status != http.StatusOK || !mr2.Cached || mr2.Fingerprint != mr.Fingerprint {
		t.Fatalf("re-upload: status=%d resp=%+v", status, mr2)
	}

	// Warm predict by fingerprint: query param and header forms.
	for _, via := range []string{"query", "header"} {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/predict", nil)
		if err != nil {
			t.Fatal(err)
		}
		if via == "query" {
			req.URL.RawQuery = "fp=" + mr.Fingerprint
		} else {
			req.Header.Set("X-Wise-Fingerprint", mr.Fingerprint)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var pr predictResponse
		if err := json.Unmarshal(data, &pr); err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("warm predict via %s: status=%d body=%s err=%v", via, resp.StatusCode, data, err)
		}
		if !pr.Cached || pr.Method != mr.Method || pr.Rows == 0 {
			t.Fatalf("warm predict via %s: %+v, want cached answer matching upload %+v", via, pr, mr)
		}
	}

	// Unknown fingerprint: 404, upload first.
	resp, err := http.Post(ts.URL+"/predict?fp=deadbeef", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown fingerprint: status=%d, want 404", resp.StatusCode)
	}

	// Amortization: one upload + three warm calls ran exactly one inspector
	// pass and zero format rebuilds (the artifact was built eagerly once).
	st := s.Sessions().Stats()
	if st.Builds != 1 || st.Converts != 0 {
		t.Fatalf("warm calls reran preprocessing: %+v", st)
	}
	if st.PinnedEntries != 0 {
		t.Fatalf("request pins leaked: %+v", st)
	}
}

// TestSpMVWarmColdCorrectness is the execution half of the amortization
// proof: a cold inline /spmv pays the inspector once, every subsequent call
// (inline or by fingerprint) is warm, skips parse+extract+convert entirely
// per the store counters, and all answers match the reference serial SpMV.
func TestSpMVWarmColdCorrectness(t *testing.T) {
	s, ts := newTestServer(t, nil)
	m := testMatrix(t)
	body := mmBytes(t, m)

	want := make([]float64, m.Rows)
	m.SpMV(want, matrix.Ones(m.Cols))

	status, cold, raw := postSpMV(t, ts.URL, spmvRequest{Matrix: string(body)})
	if status != http.StatusOK || cold.Warm || cold.Degraded || cold.Fingerprint == "" {
		t.Fatalf("cold /spmv: status=%d resp=%+v body=%s", status, cold, raw)
	}
	if d := matrix.MaxAbsDiff(cold.Y, want); d > 1e-9 {
		t.Fatalf("cold /spmv result off by %g", d)
	}

	status, warm1, _ := postSpMV(t, ts.URL, spmvRequest{Matrix: string(body)})
	if status != http.StatusOK || !warm1.Warm {
		t.Fatalf("repeat inline /spmv not warm: %+v", warm1)
	}
	status, warm2, _ := postSpMV(t, ts.URL, spmvRequest{Fingerprint: cold.Fingerprint})
	if status != http.StatusOK || !warm2.Warm {
		t.Fatalf("fingerprint /spmv not warm: %+v", warm2)
	}
	if d := matrix.MaxAbsDiff(warm2.Y, want); d > 1e-9 {
		t.Fatalf("warm /spmv result off by %g", d)
	}

	// Iterated execution: y = A^2 * 1, square matrix.
	status, iter, _ := postSpMV(t, ts.URL, spmvRequest{Fingerprint: cold.Fingerprint, Iterations: 2})
	if status != http.StatusOK || iter.Iterations != 2 {
		t.Fatalf("iterated /spmv: status=%d resp=%+v", status, iter)
	}
	want2 := make([]float64, m.Rows)
	m.SpMV(want2, want)
	if d := matrix.MaxAbsDiff(iter.Y, want2); d > 1e-6 {
		t.Fatalf("A^2 x off by %g", d)
	}

	// The whole sequence ran exactly one inspector pass and zero rebuilds:
	// warm execution skipped parse, extraction, and conversion.
	st := s.Sessions().Stats()
	if st.Builds != 1 || st.Converts != 0 {
		t.Fatalf("warm /spmv reran preprocessing: %+v", st)
	}
	if got := spmvWarm.Value(); got < 3 {
		t.Fatalf("serve.spmv_warm = %d, want >= 3", got)
	}
}

func TestSpMVValidation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	body := string(mmBytes(t, testMatrix(t)))

	cases := []struct {
		name string
		req  spmvRequest
		want int
	}{
		{"neither source", spmvRequest{}, http.StatusBadRequest},
		{"both sources", spmvRequest{Fingerprint: "ab", Matrix: body}, http.StatusBadRequest},
		{"bad vector length", spmvRequest{Matrix: body, X: []float64{1, 2, 3}}, http.StatusBadRequest},
		{"iteration cap", spmvRequest{Matrix: body, Iterations: spmvMaxIterations + 1}, http.StatusBadRequest},
		{"unknown fingerprint", spmvRequest{Fingerprint: "deadbeef"}, http.StatusNotFound},
		{"unparseable matrix", spmvRequest{Matrix: "not a matrix"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if status, _, raw := postSpMV(t, ts.URL, tc.req); status != tc.want {
			t.Errorf("%s: status=%d body=%s, want %d", tc.name, status, raw, tc.want)
		}
	}
}

// TestSpMVExecPanicAnswered500 arms the execution fault site over HTTP: the
// panic is converted to a 500 by the handler's recovery, and the session and
// server keep answering afterwards.
func TestSpMVExecPanicAnswered500(t *testing.T) {
	_, ts := newTestServer(t, nil)
	body := string(mmBytes(t, testMatrix(t)))

	status, cold, _ := postSpMV(t, ts.URL, spmvRequest{Matrix: body})
	if status != http.StatusOK {
		t.Fatalf("cold /spmv: status=%d", status)
	}
	armFaults(t, "session.exec.panic:panic")
	if status, _, raw := postSpMV(t, ts.URL, spmvRequest{Fingerprint: cold.Fingerprint}); status != http.StatusInternalServerError {
		t.Fatalf("armed /spmv: status=%d body=%s, want 500", status, raw)
	}
	status, after, _ := postSpMV(t, ts.URL, spmvRequest{Fingerprint: cold.Fingerprint})
	if status != http.StatusOK || !after.Warm {
		t.Fatalf("post-panic /spmv: status=%d resp=%+v, want warm 200", status, after)
	}
}

// TestSessionSaturationDegrades shrinks the session budget below a single
// entry: every stateful request must still be answered — by the stateless
// path, marked degraded — never refused.
func TestSessionSaturationDegrades(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.SessionBytes = 1024 })
	m := testMatrix(t)
	body := mmBytes(t, m)

	status, mr := postMatrix(t, ts.URL, body)
	if status != http.StatusOK || mr.Stored || !mr.Degraded || mr.Reason != reasonSessionSaturated || mr.Fingerprint == "" {
		t.Fatalf("saturated upload: status=%d resp=%+v", status, mr)
	}

	want := make([]float64, m.Rows)
	m.SpMV(want, matrix.Ones(m.Cols))
	status, sr, raw := postSpMV(t, ts.URL, spmvRequest{Matrix: string(body)})
	if status != http.StatusOK || !sr.Degraded || sr.Warm || sr.Reason != reasonSessionSaturated {
		t.Fatalf("saturated /spmv: status=%d resp=%+v body=%s", status, sr, raw)
	}
	if d := matrix.MaxAbsDiff(sr.Y, want); d > 1e-9 {
		t.Fatalf("degraded /spmv result off by %g", d)
	}
	if st := s.Sessions().Stats(); st.Entries != 0 || st.Saturations < 2 {
		t.Fatalf("saturation stats: %+v", st)
	}
}

// TestSingleflightHTTP fires N concurrent identical uploads at the server
// and asserts the singleflight contract over HTTP: every request answered
// 200 with the same fingerprint, exactly one inspector pass.
func TestSingleflightHTTP(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.MaxInFlight = 32
		c.QueueWait = 2 * time.Second
		c.RequestTimeout = 10 * time.Second
	})
	body := mmBytes(t, testMatrix(t))

	const n = 12
	var wg sync.WaitGroup
	fps := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/matrix", "text/plain", bytes.NewReader(body))
			if err != nil {
				t.Errorf("upload %d: %v", i, err)
				return
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("upload %d: status=%d body=%s", i, resp.StatusCode, data)
				return
			}
			var mr matrixResponse
			if err := json.Unmarshal(data, &mr); err != nil {
				t.Errorf("upload %d: %v", i, err)
				return
			}
			fps[i] = mr.Fingerprint
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if fps[i] != fps[0] {
			t.Fatalf("upload %d got fingerprint %q, want %q", i, fps[i], fps[0])
		}
	}
	st := s.Sessions().Stats()
	if st.Builds != 1 {
		t.Fatalf("%d concurrent identical uploads ran %d inspector passes, want exactly 1: %+v", n, st.Builds, st)
	}
	if st.PinnedEntries != 0 {
		t.Fatalf("pins leaked: %+v", st)
	}
}

// TestServeRestartRehydratesSessions is the server-level crash-safety
// proof: sessions survive a restart via the spill dir, a corrupt spill file
// is quarantined (404 for its fingerprint, clean rebuild on re-upload), and
// rehydrated sessions answer warm with correct results.
func TestServeRestartRehydratesSessions(t *testing.T) {
	dir := t.TempDir()
	mut := func(c *Config) { c.SessionSpillDir = dir }

	_, ts1 := newTestServer(t, mut)
	mA := testMatrix(t)
	bodyA := mmBytes(t, mA)
	mB := matrix.CSR{ // second, distinct session
		Rows: 3, Cols: 3,
		RowPtr: []int64{0, 1, 2, 3},
		ColIdx: []int32{0, 1, 2},
		Vals:   []float64{1, 2, 3},
	}
	bodyB := mmBytes(t, &mB)
	_, ra := postMatrix(t, ts1.URL, bodyA)
	_, rb := postMatrix(t, ts1.URL, bodyB)
	if !ra.Stored || !rb.Stored {
		t.Fatalf("uploads not stored: %+v %+v", ra, rb)
	}
	ts1.Close()

	// Corrupt B's spill file (valid envelope, garbage payload bytes) to
	// simulate on-disk damage between runs.
	if err := resilience.AtomicWriteFile(
		dir+"/"+rb.Fingerprint+".sess",
		append(resilience.Seal("wise-session", 1, []byte("garbage"))[:40], []byte("torn")...), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, mut)
	st := s2.Sessions().Stats()
	if st.Recoveries != 1 || st.Quarantined != 1 {
		t.Fatalf("restart rehydration: %+v", st)
	}

	// A answers warm with a correct product, no new inspector pass.
	want := make([]float64, mA.Rows)
	mA.SpMV(want, matrix.Ones(mA.Cols))
	status, sr, raw := postSpMV(t, ts2.URL, spmvRequest{Fingerprint: ra.Fingerprint})
	if status != http.StatusOK || !sr.Warm {
		t.Fatalf("rehydrated /spmv: status=%d resp=%+v body=%s", status, sr, raw)
	}
	if d := matrix.MaxAbsDiff(sr.Y, want); d > 1e-9 {
		t.Fatalf("rehydrated result off by %g", d)
	}

	// B was quarantined: its fingerprint is unknown until re-uploaded.
	if status, _, _ := postSpMV(t, ts2.URL, spmvRequest{Fingerprint: rb.Fingerprint}); status != http.StatusNotFound {
		t.Fatalf("quarantined fingerprint: status=%d, want 404", status)
	}
	if status, rb2 := postMatrix(t, ts2.URL, bodyB); status != http.StatusOK || !rb2.Stored || rb2.Fingerprint != rb.Fingerprint {
		t.Fatalf("re-upload after quarantine: status=%d resp=%+v", status, rb2)
	}

	st = s2.Sessions().Stats()
	if st.Builds != 1 { // only B's rebuild; A never re-ran the inspector
		t.Fatalf("rehydrated serving reran the inspector: %+v", st)
	}
}

// TestRetryAfterScalesWithQueueDepth is the satellite-1 regression: the 429
// Retry-After hint must track the live queue depth, not echo the flag.
func TestRetryAfterScalesWithQueueDepth(t *testing.T) {
	a := newAdmission(1, 16, 2*time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	defer a.release()

	if got := a.retryAfterSeconds(); got != 2 {
		t.Fatalf("empty queue: Retry-After=%d, want 2 (one maxWait)", got)
	}

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = a.acquire(ctx) // parks as a waiter until cancel
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for a.waiters.Load() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never queued: %d", a.waiters.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if got := a.retryAfterSeconds(); got != 8 {
		t.Fatalf("3 waiters: Retry-After=%d, want 8 (4 x maxWait)", got)
	}
	cancel()
	wg.Wait()

	// The clamp: a pathological depth must not tell clients to vanish.
	b := newAdmission(1, 1024, time.Minute)
	b.waiters.Store(500)
	if got := b.retryAfterSeconds(); got != 60 {
		t.Fatalf("deep queue: Retry-After=%d, want the 60s clamp", got)
	}
}

// TestDrainReportsPinnedSessions is the satellite-2 check: the drain path
// records how many sessions in-flight executions still pinned at SIGTERM.
func TestDrainReportsPinnedSessions(t *testing.T) {
	s, err := New(Config{ModelPath: sharedModelPath, ReloadPoll: -1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	url := fmt.Sprintf("http://%s", ln.Addr())
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	status, mr := postMatrix(t, url, mmBytes(t, testMatrix(t)))
	if status != http.StatusOK || !mr.Stored {
		t.Fatalf("upload: status=%d resp=%+v", status, mr)
	}
	// Hold a pin across the SIGTERM instant, standing in for an in-flight
	// execution.
	ent, ok := s.Sessions().Acquire(mr.Fingerprint)
	if !ok {
		t.Fatal("session vanished")
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve returned %v, want context.Canceled", err)
	}
	if got := drainPinnedSessions.Value(); got != 1 {
		t.Fatalf("serve.drain_pinned_sessions = %v at SIGTERM, want 1", got)
	}
	s.Sessions().Release(ent)
}
