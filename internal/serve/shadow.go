package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"wise/internal/core"
	"wise/internal/kernels"
	"wise/internal/matrix"
	"wise/internal/obs"
	"wise/internal/resilience/faultinject"
)

// shadowJob is one sampled /predict request queued for off-path measurement:
// the parsed matrix, the selection the server answered with, and the
// generation that produced it (so a reload mid-flight cannot attribute a
// measurement to the wrong model).
type shadowJob struct {
	m   *matrix.CSR
	sel core.Selection
	lm  *loadedModel
}

// measureFunc measures the selected method against the CSR baseline for one
// shadow job, honouring the deadline. Returns wall-clock seconds for the
// selected method and the baseline. Injectable so the deterministic
// feedback-loop tests can dictate outcomes without timing real kernels.
type measureFunc func(job shadowJob, deadline time.Time) (tSel, tBase float64, err error)

// errShadowDeadline marks a measurement abandoned at its deadline.
var errShadowDeadline = errors.New("serve: shadow measurement deadline exceeded")

// shadowPool runs sampled shadow measurements in a bounded worker pool off
// the request path. Enqueueing never blocks a request: a full queue drops
// the sample (serve.shadow_dropped), and each worker quarantines panics so
// a kernel bug in shadow execution cannot take down serving.
type shadowPool struct {
	jobs     chan shadowJob
	period   uint64 // sample every period-th eligible request
	maxNNZ   int
	deadline time.Duration
	measure  measureFunc
	onResult func(job shadowJob, tSel, tBase float64)

	seen atomic.Uint64 // eligible requests observed, for period sampling
}

func newShadowPool(rate float64, queue, maxNNZ int, deadline time.Duration,
	measure measureFunc, onResult func(shadowJob, float64, float64)) *shadowPool {
	period := uint64(1)
	if rate < 1 {
		period = uint64(math.Round(1 / rate))
	}
	return &shadowPool{
		jobs:     make(chan shadowJob, queue),
		period:   period,
		maxNNZ:   maxNNZ,
		deadline: deadline,
		measure:  measure,
		onResult: onResult,
	}
}

// offer samples the request stream: every period-th healthy prediction is
// queued for measurement, non-blocking. Deterministic counter-based sampling
// (rather than a coin flip) keeps the feedback-loop tests reproducible and
// spreads load evenly.
func (p *shadowPool) offer(m *matrix.CSR, sel core.Selection, lm *loadedModel) {
	n := p.seen.Add(1)
	if (n-1)%p.period != 0 {
		return
	}
	if p.maxNNZ > 0 && m.NNZ() > p.maxNNZ {
		shadowSkipped.Inc()
		return
	}
	select {
	case p.jobs <- shadowJob{m: m, sel: sel, lm: lm}:
		shadowSampled.Inc()
	default:
		shadowDropped.Inc()
	}
}

// run is one worker: drain jobs until ctx cancels.
func (p *shadowPool) run(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case job := <-p.jobs:
			p.processJob(job)
		}
	}
}

// processJob measures one job inside the quarantine: a panic (including the
// injected shadow.exec.panic fault) is recovered and counted, a deadline
// overrun is counted and abandoned, and only a clean measurement reaches
// onResult. Shadow execution shares a process with serving, so this
// boundary is what keeps a pathological sampled matrix from becoming a
// crashed server.
func (p *shadowPool) processJob(job shadowJob) {
	defer func() {
		if rec := recover(); rec != nil {
			shadowPanics.Inc()
			obs.Verbosef("serve: shadow measurement panicked (quarantined): %v", rec)
		}
	}()
	if err := faultinject.Hit("shadow.exec.panic"); err != nil {
		panic(fmt.Sprintf("injected: %v", err))
	}
	start := time.Now()
	tSel, tBase, err := p.measure(job, start.Add(p.deadline))
	shadowSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		if errors.Is(err, errShadowDeadline) {
			shadowDeadline.Inc()
		} else {
			obs.Verbosef("serve: shadow measurement failed: %v", err)
		}
		return
	}
	p.onResult(job, tSel, tBase)
}

// measureKernels is the production measureFunc: build the selected format
// and the generation's CSR fallback, run each serially (one warmup, then
// minimum over reps), and report wall-clock seconds. Serial execution keeps
// the shadow lane from stealing the parallel workers that serve requests;
// the relative time of two serial runs is what perf.ClassOf classifies.
func measureKernels(job shadowJob, deadline time.Time) (tSel, tBase float64, err error) {
	const reps = 3
	m, lm := job.m, job.lm
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, m.Rows)

	selFmt := kernels.Build(m, job.sel.Method, lm.w.Mach.RowBlock)
	if time.Now().After(deadline) {
		return 0, 0, errShadowDeadline
	}
	baseFmt := kernels.Build(m, lm.w.Models[lm.fallback].Method, lm.w.Mach.RowBlock)
	if time.Now().After(deadline) {
		return 0, 0, errShadowDeadline
	}
	tSel, err = timeSpMV(selFmt, y, x, reps, deadline)
	if err != nil {
		return 0, 0, err
	}
	tBase, err = timeSpMV(baseFmt, y, x, reps, deadline)
	if err != nil {
		return 0, 0, err
	}
	return tSel, tBase, nil
}

// timeSpMV runs one warmup then reps timed serial SpMVs, returning the
// minimum wall-clock seconds, abandoning at the deadline.
func timeSpMV(f kernels.Format, y, x []float64, reps int, deadline time.Time) (float64, error) {
	f.SpMV(y, x) // warmup: page in the format
	best := math.Inf(1)
	for i := 0; i < reps; i++ {
		if time.Now().After(deadline) {
			return 0, errShadowDeadline
		}
		t0 := time.Now()
		f.SpMV(y, x)
		if d := time.Since(t0).Seconds(); d < best {
			best = d
		}
	}
	return best, nil
}
