// Package serve is the long-running inference surface of the WISE
// reproduction: an HTTP/JSON server that wraps the features -> core.WISE ->
// SelectFromClasses path in production robustness machinery. Every layer of
// the request path is failure-isolated (RESILIENCE.md "Serving"):
//
//   - admission control bounds in-flight requests and sheds overload with
//     429 + Retry-After instead of queueing without bound;
//   - per-request deadlines are threaded as context.Context through feature
//     extraction and prediction;
//   - a panic in one request becomes a 500 plus a counter, never a dead
//     process;
//   - ingest is hardened with a request-body cap and matrix.ReadLimits so a
//     pathological upload cannot OOM the server;
//   - prediction failures and deadline overruns degrade to the CSR fallback
//     selection (marked "degraded": true) — a well-formed request always
//     gets a usable answer;
//   - a circuit breaker trips to fallback-only mode after consecutive
//     predictor failures and half-opens on probe requests;
//   - the model hot-reloads on SIGHUP or mtime change with validation and
//     rollback (reload.go);
//   - shutdown drains: stop accepting, finish in-flight within the drain
//     budget, then exit (the CLI maps this to status 130), recording how
//     many sessions were still pinned at the signal.
//
// On top of the stateless path sits the stateful session layer
// (internal/session, RESILIENCE.md "Stateful serving"): POST /matrix
// ingests a MatrixMarket body once and returns its sha256 fingerprint;
// POST /predict and POST /spmv then accept either an inline body or a
// fingerprint, reusing the cached parse + features + prediction +
// converted kernel. A saturated session store degrades those requests to
// the stateless path ("degraded": true) rather than refusing them.
//
// /healthz, /readyz, and /metricz expose liveness, readiness, and an obs
// snapshot to orchestration.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wise/internal/machine"
	"wise/internal/matrix"
	"wise/internal/obs"
	"wise/internal/registry"
	"wise/internal/session"
)

// Config tunes the server. The zero value of any field falls back to the
// listed default, so callers set only what they need.
type Config struct {
	ModelPath string          // trained model file from wise-train (required)
	Mach      machine.Machine // cache geometry for loaded models

	MaxInFlight int           // concurrent predictions; default 2*GOMAXPROCS
	MaxQueue    int           // waiting requests beyond MaxInFlight; default == MaxInFlight
	QueueWait   time.Duration // max time in the wait queue; default 100ms

	RequestTimeout time.Duration // per-request prediction deadline; default 2s
	MaxBodyBytes   int64         // request-body cap; default 64 MiB
	Limits         matrix.ReadLimits

	BreakerThreshold int           // consecutive failures that trip the breaker; default 5
	BreakerCooldown  time.Duration // open -> half-open delay; default 5s

	ReloadPoll   time.Duration // model-file mtime poll; default 2s; < 0 disables polling
	DrainTimeout time.Duration // shutdown budget for in-flight requests; default 5s

	// Stateful serving (RESILIENCE.md "Stateful serving"): POST /matrix
	// prepares a session once, POST /predict and POST /spmv reuse it by
	// fingerprint. SessionBytes is the byte budget of the prepared-matrix
	// LRU (default 256 MiB); SessionSpillDir, when set, spills prepared
	// sessions to disk in checksummed envelopes so a restart rehydrates them.
	SessionBytes    int64
	SessionSpillDir string

	// Self-healing loop (RESILIENCE.md "Self-healing serving"). RegistryDir
	// switches the model source from the single -models file to a crash-safe
	// generation registry (internal/registry); an empty registry is seeded
	// from ModelPath. ShadowRate > 0 enables shadow measurement of sampled
	// requests; with a registry it closes the full loop — drift detection,
	// retrain, canary-gated promotion, probation rollback.
	RegistryDir string

	ShadowRate       float64       // fraction of requests shadow-measured; 0 disables
	ShadowWorkers    int           // measurement workers; default 1
	ShadowQueue      int           // pending measurement bound; default 16
	ShadowDeadline   time.Duration // per-measurement budget; default 2s
	ShadowMaxNNZ     int           // skip matrices larger than this; default 2M
	ShadowMaxSamples int           // shadow-label store bound; default 512

	DriftWindow     int     // mismatch-rate window; default 64
	DriftMinSamples int     // samples before the detector may trip; default 16
	DriftTrip       float64 // mismatch rate that trips; default 0.5
	DriftClear      float64 // rate that releases the trip; default DriftTrip/2
	DriftProbation  int     // post-promotion probation samples; default 2*DriftMinSamples

	RetrainMinSamples int           // labels required to retrain; default 8
	RetrainDeadline   time.Duration // quarantined training budget; default 30s
	CanaryHoldout     float64       // held-out validation fraction; default 0.25
	CanarySeed        int64         // holdout-split seed; default 1

	ShadowMeasure measureFunc // test hook; nil runs the real kernels
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = c.MaxInFlight
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 100 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.Limits == (matrix.ReadLimits{}) {
		c.Limits = matrix.DefaultReadLimits()
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.ReloadPoll == 0 {
		c.ReloadPoll = 2 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.SessionBytes <= 0 {
		c.SessionBytes = 256 << 20
	}
	if c.ShadowRate > 1 {
		c.ShadowRate = 1
	}
	if c.ShadowWorkers <= 0 {
		c.ShadowWorkers = 1
	}
	if c.ShadowQueue <= 0 {
		c.ShadowQueue = 16
	}
	if c.ShadowDeadline <= 0 {
		c.ShadowDeadline = 2 * time.Second
	}
	if c.ShadowMaxNNZ <= 0 {
		c.ShadowMaxNNZ = 2_000_000
	}
	if c.ShadowMaxSamples <= 0 {
		c.ShadowMaxSamples = 512
	}
	if c.DriftWindow <= 0 {
		c.DriftWindow = 64
	}
	if c.DriftMinSamples <= 0 {
		c.DriftMinSamples = 16
	}
	if c.DriftTrip <= 0 || c.DriftTrip > 1 {
		c.DriftTrip = 0.5
	}
	if c.DriftClear <= 0 || c.DriftClear >= c.DriftTrip {
		c.DriftClear = c.DriftTrip / 2
	}
	if c.DriftProbation <= 0 {
		c.DriftProbation = 2 * c.DriftMinSamples
	}
	if c.RetrainMinSamples <= 0 {
		c.RetrainMinSamples = 8
	}
	if c.RetrainDeadline <= 0 {
		c.RetrainDeadline = 30 * time.Second
	}
	if c.CanaryHoldout <= 0 || c.CanaryHoldout >= 1 {
		c.CanaryHoldout = 0.25
	}
	if c.CanarySeed == 0 {
		c.CanarySeed = 1
	}
	return c
}

// Server is one serving instance. Create with New, expose with Handler (for
// tests and embedding) or run with Serve (listener + drain lifecycle).
type Server struct {
	cfg      Config
	models   *modelHolder
	admit    *admission
	breaker  *breaker
	reg      *registry.Registry // nil when serving a plain model file
	feedback *feedback          // nil when ShadowRate is 0
	sessions *session.Store
	ready    atomic.Bool
	mux      *http.ServeMux
}

// New loads and validates the model source and assembles the server. A bad
// model path or registry fails here — startup, not first request — so the
// CLI can exit 1 naming the flag. With RegistryDir set, an empty registry
// is seeded from ModelPath with an ungated initial promotion (there is no
// serving generation to gate against yet).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	var src modelSource
	var reg *registry.Registry
	if cfg.RegistryDir != "" {
		var err error
		reg, err = registry.Open(cfg.RegistryDir, cfg.Mach)
		if err != nil {
			return nil, err
		}
		if reg.Current() == nil {
			if cfg.ModelPath == "" {
				return nil, fmt.Errorf("serve: registry %s is empty and no model file given to seed it", cfg.RegistryDir)
			}
			gen, err := reg.ImportFile(cfg.ModelPath)
			if err != nil {
				return nil, err
			}
			if err := reg.Promote(gen.ID); err != nil {
				return nil, err
			}
		}
		src = &registrySource{reg: reg}
	} else {
		src = &fileSource{path: cfg.ModelPath, mach: cfg.Mach}
	}
	models, err := newModelHolder(src)
	if err != nil {
		return nil, err
	}
	sessions, err := session.Open(session.Config{
		MaxBytes: cfg.SessionBytes,
		SpillDir: cfg.SessionSpillDir,
		RowBlock: models.current().w.Mach.RowBlock,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: opening session store: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		models:   models,
		admit:    newAdmission(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueWait),
		breaker:  newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		reg:      reg,
		sessions: sessions,
	}
	if cfg.ShadowRate > 0 {
		s.feedback = newFeedback(cfg, reg, models)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /predict", s.handlePredict)
	s.mux.HandleFunc("POST /matrix", s.handleMatrix)
	s.mux.HandleFunc("POST /spmv", s.handleSpMV)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metricz", s.handleMetricz)
	return s, nil
}

// Handler returns the server's HTTP handler (all routes).
func (s *Server) Handler() http.Handler { return s.mux }

// ModelCount reports the number of models in the serving generation.
func (s *Server) ModelCount() int { return len(s.models.current().w.Models) }

// GenerationID reports the registry generation currently serving, or "" for
// a file-backed server.
func (s *Server) GenerationID() string { return s.models.current().genID }

// Registry returns the backing model registry, or nil for a file-backed
// server.
func (s *Server) Registry() *registry.Registry { return s.reg }

// Sessions returns the prepared-matrix session store.
func (s *Server) Sessions() *session.Store { return s.sessions }

// RunFeedback runs the self-healing loop (shadow workers + drift/retrain
// controller) until ctx cancels, joining all goroutines before returning.
// Serve calls it automatically; embedders and tests using Handler directly
// run it themselves when they want shadow measurement active. A no-op that
// still blocks on ctx when the loop is disabled, so callers need not branch.
func (s *Server) RunFeedback(ctx context.Context) {
	if s.feedback == nil {
		<-ctx.Done()
		return
	}
	s.feedback.run(ctx)
}

// Reload forces a model reload (the SIGHUP path, callable directly by
// tests and embedders). See modelHolder.Reload for the rollback contract.
func (s *Server) Reload() error { return s.models.Reload() }

// SetReady toggles the /readyz gate; Serve manages it automatically.
func (s *Server) SetReady(v bool) { s.ready.Store(v) }

// Serve accepts connections on ln until ctx is cancelled, then drains:
// readiness flips off, the listener closes, in-flight requests get
// DrainTimeout to finish, and whatever remains is cancelled. It returns
// ctx.Err() after a clean drain (the CLI maps context.Canceled to exit
// 130), or the listener/serve error if the server fails first. The model
// watcher (SIGHUP + mtime poll) runs for the lifetime of the call; all
// goroutines are joined before returning.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	watchCtx, cancelWatch := context.WithCancel(ctx)
	defer cancelWatch()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.models.watch(watchCtx, s.cfg.ReloadPoll)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.RunFeedback(watchCtx)
	}()
	serveErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		serveErr <- srv.Serve(ln)
	}()
	s.ready.Store(true)
	defer s.ready.Store(false)

	var err error
	select {
	case e := <-serveErr:
		err = fmt.Errorf("serve: listener failed: %w", e)
	case <-ctx.Done():
		s.ready.Store(false)
		// Record how many sessions in-flight executions still pin at the
		// SIGTERM instant, so the final metrics snapshot covers stateful
		// work alongside the in-flight request drain.
		pinned := s.sessions.PinnedCount()
		drainPinnedSessions.Set(float64(pinned))
		if pinned > 0 {
			obs.Verbosef("serve: draining with %d pinned sessions", pinned)
		}
		// The drain deadline must outlive the cancelled serve ctx, but keep
		// its values (WithoutCancel) so the lint contract sees the chain.
		drainCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), s.cfg.DrainTimeout)
		if shutdownErr := srv.Shutdown(drainCtx); shutdownErr != nil {
			// Drain budget exhausted: cancel the stragglers.
			_ = srv.Close()
		}
		cancel()
		<-serveErr // always http.ErrServerClosed once Shutdown/Close ran
		err = ctx.Err()
	}
	cancelWatch()
	wg.Wait()
	return err
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = fmt.Fprintln(w, "draining")
		return
	}
	_, _ = fmt.Fprintf(w, "ready: %d models, breaker %s\n", s.ModelCount(), s.breaker.currentState())
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	data, err := obs.TakeSnapshot().MarshalIndent()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(append(data, '\n')); err != nil {
		obs.Verbosef("serve: writing /metricz response: %v", err)
	}
}

// writeJSON writes one JSON response. Encode failures after the header is
// out are connection-level (client gone); they are narrated, not returned.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.Marshal(v)
	if err != nil {
		obs.Verbosef("serve: encoding response: %v", err)
		return
	}
	if _, err := w.Write(append(data, '\n')); err != nil {
		obs.Verbosef("serve: writing response: %v", err)
	}
}
