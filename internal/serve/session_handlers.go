package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"wise/internal/features"
	"wise/internal/kernels"
	"wise/internal/matrix"
	"wise/internal/session"
)

// The stateful endpoints (RESILIENCE.md "Stateful serving"): POST /matrix
// prepares a session — parse, feature extraction, prediction, format
// conversion — exactly once per distinct body and returns its sha256
// fingerprint; POST /spmv executes the selected kernel against the cached
// converted artifact, warm when addressed by fingerprint. Saturation of the
// session store degrades both to the stateless path, marked
// "degraded": true — never a refusal.

// errBadMatrix classifies a session build failure as the client's fault
// (unparseable or over-limit matrix), mapping to 400 instead of 500.
var errBadMatrix = errors.New("serve: bad matrix body")

// reasonSessionSaturated marks answers produced by the stateless path
// because the session store could not admit the entry.
const reasonSessionSaturated = "session-saturated"

// matrixResponse is the JSON body of a /matrix answer: the prediction plus
// the session handle. Stored is false on the degraded stateless path (the
// fingerprint is still reported so the client can retry warm later);
// Cached is true when the upload hit an already-prepared session.
type matrixResponse struct {
	predictResponse
	Stored bool `json:"stored"`
}

// spmvRequest is the JSON body of a /spmv call. Exactly one of Fingerprint
// (a prepared session) or Matrix (an inline MatrixMarket text) must be set.
// X defaults to the all-ones vector; Iterations > 1 chains y = A^k x and
// requires a square matrix.
type spmvRequest struct {
	Fingerprint string    `json:"fingerprint"`
	Matrix      string    `json:"matrix"`
	X           []float64 `json:"x"`
	Iterations  int       `json:"iterations"`
}

// spmvResponse is the JSON body of a /spmv answer. Y is included for small
// results (<= spmvInlineRows rows); YNorm always summarizes it. Warm means
// the execution reused a cached converted artifact end to end.
type spmvResponse struct {
	Fingerprint string    `json:"fingerprint,omitempty"`
	Method      string    `json:"method"`
	Warm        bool      `json:"warm"`
	Degraded    bool      `json:"degraded"`
	Reason      string    `json:"reason,omitempty"`
	Rows        int       `json:"rows"`
	Cols        int       `json:"cols"`
	NNZ         int       `json:"nnz"`
	Iterations  int       `json:"iterations"`
	Y           []float64 `json:"y,omitempty"`
	YNorm       float64   `json:"y_norm"`
	ElapsedMS   float64   `json:"elapsed_ms"`
}

const (
	spmvInlineRows    = 1024  // largest result vector echoed in the response
	spmvMaxIterations = 10000 // request-abuse bound on chained multiplies
)

// prepare is the session BuildFunc: one full inspector pass over an
// uploaded body under the request's deadline. Parse failures are wrapped in
// errBadMatrix so the handler answers 400, not 500.
func (s *Server) prepare(ctx context.Context, lm *loadedModel, body []byte) (*session.Prepared, error) {
	m, err := matrix.ReadMatrixMarketLimited(bytes.NewReader(body), s.cfg.Limits)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errBadMatrix, err)
	}
	feat, err := features.ExtractCtx(ctx, m, lm.w.FeatureCfg)
	if err != nil {
		return nil, err
	}
	sel := lm.w.SelectFromFeatures(feat)
	return &session.Prepared{
		M:      m,
		Feat:   feat,
		Sel:    sel,
		GenID:  lm.genID,
		Format: kernels.Build(m, sel.Method, lm.w.Mach.RowBlock),
	}, nil
}

// readBody drains the capped request body. On failure it writes the error
// response (413 for an over-cap body, 400 otherwise) and reports false.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		requestsRejected.Inc()
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return nil, false
	}
	return body, true
}

// handleMatrix ingests a matrix into the session store: admission, deadline,
// bounded read, then a singleflight-deduplicated inspector pass. The
// response always carries the fingerprint; when the store is saturated the
// answer comes from the stateless path with "degraded": true.
func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	requestsTotal.Inc()
	requestsMatrix.Inc()
	defer func() {
		if rec := recover(); rec != nil {
			requestsPanicked.Inc()
			writeJSON(w, http.StatusInternalServerError,
				errorResponse{Error: fmt.Sprintf("serve: internal error: %v", rec)})
		}
		requestSeconds.Observe(time.Since(start).Seconds())
	}()

	if err := s.admit.acquire(r.Context()); err != nil {
		if errors.Is(err, errSaturated) {
			requestsShed.Inc()
			w.Header().Set("Retry-After", fmt.Sprintf("%d", s.admit.retryAfterSeconds()))
			writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	}
	defer s.admit.release()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	fp := session.Fingerprint(body)
	lm := s.models.current()
	ent, hit, err := s.sessions.GetOrCreate(ctx, fp, func(ctx context.Context) (*session.Prepared, error) {
		return s.prepare(ctx, lm, body)
	})
	if err != nil {
		s.answerMatrixFallback(ctx, w, lm, fp, body, err, start)
		return
	}
	defer s.sessions.Release(ent)

	sel := s.sessions.Refresh(ent, lm.genID, lm.w.SelectFromFeatures)
	m := ent.Matrix()
	resp := matrixResponse{Stored: true}
	resp.Method = sel.Method.String()
	resp.Index = sel.Index
	resp.PredictedClass = sel.PredictedClass
	resp.Classes = sel.Classes
	resp.Fingerprint, resp.Cached = fp, hit
	resp.Rows, resp.Cols, resp.NNZ = m.Rows, m.Cols, m.NNZ()
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, resp)
}

// answerMatrixFallback classifies a failed session build. Client mistakes
// are 4xx; a saturated store degrades to the stateless predict path (the
// fingerprint still reported, Stored false) so the upload is answered, not
// refused; a blown deadline degrades to the CSR fallback like /predict.
func (s *Server) answerMatrixFallback(ctx context.Context, w http.ResponseWriter, lm *loadedModel, fp string, body []byte, err error, start time.Time) {
	switch {
	case errors.Is(err, errBadMatrix):
		requestsRejected.Inc()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	case errors.Is(err, session.ErrSaturated):
		sessionsDegraded.Inc()
		m, parseErr := matrix.ReadMatrixMarketLimited(bytes.NewReader(body), s.cfg.Limits)
		if parseErr != nil {
			requestsRejected.Inc()
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: parseErr.Error()})
			return
		}
		pr, _, _ := s.selectMethod(ctx, lm, m)
		if !pr.Degraded {
			pr.Degraded, pr.Reason = true, reasonSessionSaturated
		}
		requestsDegraded.Inc()
		resp := matrixResponse{predictResponse: pr}
		resp.Fingerprint = fp
		resp.Rows, resp.Cols, resp.NNZ = m.Rows, m.Cols, m.NNZ()
		resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
		writeJSON(w, http.StatusOK, resp)
		return
	case ctx.Err() != nil:
		requestsDegraded.Inc()
		resp := matrixResponse{predictResponse: fallbackResponse(lm, reasonDeadline)}
		resp.Fingerprint = fp
		resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
		writeJSON(w, http.StatusOK, resp)
		return
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

// handleSpMV executes y = A^k x against a prepared session (warm: the
// cached converted artifact, zero preprocessing) or an inline body (cold:
// the full inspector pass, cached for next time). The execution pins the
// session, so eviction cannot free the artifact mid-multiply.
func (s *Server) handleSpMV(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	requestsTotal.Inc()
	requestsSpMV.Inc()
	defer func() {
		if rec := recover(); rec != nil {
			requestsPanicked.Inc()
			writeJSON(w, http.StatusInternalServerError,
				errorResponse{Error: fmt.Sprintf("serve: internal error: %v", rec)})
		}
		requestSeconds.Observe(time.Since(start).Seconds())
	}()

	if err := s.admit.acquire(r.Context()); err != nil {
		if errors.Is(err, errSaturated) {
			requestsShed.Inc()
			w.Header().Set("Retry-After", fmt.Sprintf("%d", s.admit.retryAfterSeconds()))
			writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	}
	defer s.admit.release()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req spmvRequest
	if err := json.Unmarshal(body, &req); err != nil {
		requestsRejected.Inc()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("serve: decoding /spmv request: %v", err)})
		return
	}
	if (req.Fingerprint == "") == (req.Matrix == "") {
		requestsRejected.Inc()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "serve: /spmv needs exactly one of \"fingerprint\" or \"matrix\""})
		return
	}
	if req.Iterations <= 0 {
		req.Iterations = 1
	}
	if req.Iterations > spmvMaxIterations {
		requestsRejected.Inc()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("serve: iterations %d exceeds the %d cap", req.Iterations, spmvMaxIterations)})
		return
	}

	lm := s.models.current()
	if req.Fingerprint != "" {
		ent, ok := s.sessions.Acquire(req.Fingerprint)
		if !ok {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("serve: unknown fingerprint %s; upload via POST /matrix first", req.Fingerprint)})
			return
		}
		defer s.sessions.Release(ent)
		spmvWarm.Inc()
		sel := s.sessions.Refresh(ent, lm.genID, lm.w.SelectFromFeatures)
		s.answerSpMVSession(ctx, w, ent, sel.Method.String(), req, true, start)
		return
	}

	// Inline body: content-address it and prepare (or reuse) the session.
	inline := []byte(req.Matrix)
	fp := session.Fingerprint(inline)
	ent, hit, err := s.sessions.GetOrCreate(ctx, fp, func(ctx context.Context) (*session.Prepared, error) {
		return s.prepare(ctx, lm, inline)
	})
	if err != nil {
		s.answerSpMVFallback(ctx, w, lm, fp, inline, req, err, start)
		return
	}
	defer s.sessions.Release(ent)
	if hit {
		spmvWarm.Inc()
	} else {
		spmvCold.Inc()
	}
	req.Fingerprint = fp
	sel := s.sessions.Refresh(ent, lm.genID, lm.w.SelectFromFeatures)
	s.answerSpMVSession(ctx, w, ent, sel.Method.String(), req, hit, start)
}

// answerSpMVSession validates the vector shape and runs the pinned
// session's cached kernel.
func (s *Server) answerSpMVSession(ctx context.Context, w http.ResponseWriter, ent *session.Entry, method string, req spmvRequest, warm bool, start time.Time) {
	m := ent.Matrix()
	x, errResp := spmvVector(m, req)
	if errResp != "" {
		requestsRejected.Inc()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: errResp})
		return
	}
	y, err := s.sessions.Exec(ctx, ent, x, req.Iterations, kernels.DefaultWorkers())
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, spmvResult(req.Fingerprint, method, warm, false, "", m, req.Iterations, y, start))
}

// answerSpMVFallback handles a failed session build for an inline /spmv:
// 4xx for client mistakes, a stateless one-shot execution marked degraded
// when the store is saturated, 503 when the deadline is already gone (the
// execution itself cannot be faked by a fallback answer).
func (s *Server) answerSpMVFallback(ctx context.Context, w http.ResponseWriter, lm *loadedModel, fp string, inline []byte, req spmvRequest, err error, start time.Time) {
	switch {
	case errors.Is(err, errBadMatrix):
		requestsRejected.Inc()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	case errors.Is(err, session.ErrSaturated):
		sessionsDegraded.Inc()
		spmvCold.Inc()
		m, parseErr := matrix.ReadMatrixMarketLimited(bytes.NewReader(inline), s.cfg.Limits)
		if parseErr != nil {
			requestsRejected.Inc()
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: parseErr.Error()})
			return
		}
		x, errResp := spmvVector(m, req)
		if errResp != "" {
			requestsRejected.Inc()
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: errResp})
			return
		}
		// Stateless: select (with the usual degradation ladder), convert,
		// execute, discard. The format is request-local, so no pinning or
		// execution serialization is needed.
		pr, sel, predicted := s.selectMethod(ctx, lm, m)
		method := sel.Method
		if !predicted {
			method = lm.w.Models[lm.fallback].Method
		}
		f := kernels.Build(m, method, lm.w.Mach.RowBlock)
		y, execErr := runSpMV(ctx, f, m, x, req.Iterations, kernels.DefaultWorkers())
		if execErr != nil {
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: execErr.Error()})
			return
		}
		requestsDegraded.Inc()
		reason := pr.Reason
		if reason == "" {
			reason = reasonSessionSaturated
		}
		writeJSON(w, http.StatusOK, spmvResult(fp, method.String(), false, true, reason, m, req.Iterations, y, start))
		return
	case ctx.Err() != nil:
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

// spmvVector resolves the input vector for a request: the client's x
// (length-checked) or the all-ones default. Multi-iteration runs need a
// square matrix; the error string is empty on success.
func spmvVector(m *matrix.CSR, req spmvRequest) ([]float64, string) {
	if req.Iterations > 1 && m.Rows != m.Cols {
		return nil, fmt.Sprintf("serve: iterations > 1 needs a square matrix, got %dx%d", m.Rows, m.Cols)
	}
	if req.X == nil {
		return matrix.Ones(m.Cols), ""
	}
	if len(req.X) != m.Cols {
		return nil, fmt.Sprintf("serve: x has %d entries, matrix has %d columns", len(req.X), m.Cols)
	}
	return req.X, ""
}

// runSpMV chains iters multiplies on a request-local format (the stateless
// path; the session store runs the cached-format equivalent).
func runSpMV(ctx context.Context, f kernels.Format, m *matrix.CSR, x []float64, iters, workers int) ([]float64, error) {
	y := make([]float64, m.Rows)
	src := x
	var tmp []float64
	if iters > 1 {
		tmp = make([]float64, m.Cols)
	}
	for i := 0; i < iters; i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("serve: spmv: %w", err)
		}
		f.SpMVParallel(y, src, workers)
		if i+1 < iters {
			copy(tmp, y)
			src = tmp
		}
	}
	return y, nil
}

// spmvResult assembles the response, echoing y only for small results.
func spmvResult(fp, method string, warm, degraded bool, reason string, m *matrix.CSR, iters int, y []float64, start time.Time) spmvResponse {
	resp := spmvResponse{
		Fingerprint: fp,
		Method:      method,
		Warm:        warm,
		Degraded:    degraded,
		Reason:      reason,
		Rows:        m.Rows,
		Cols:        m.Cols,
		NNZ:         m.NNZ(),
		Iterations:  iters,
		YNorm:       matrix.Norm2(y),
		ElapsedMS:   float64(time.Since(start)) / float64(time.Millisecond),
	}
	if m.Rows <= spmvInlineRows {
		resp.Y = y
	}
	return resp
}
