package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.PRatio != 0.5 {
		t.Fatalf("empty PRatio = %v, want 0.5", s.PRatio)
	}
	if s.Mean != 0 || s.NonEmpty != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]int64{1, 2, 3, 4})
	if !almostEq(s.Mean, 2.5, 1e-12) {
		t.Errorf("Mean = %v, want 2.5", s.Mean)
	}
	if !almostEq(s.Variance, 1.25, 1e-12) {
		t.Errorf("Variance = %v, want 1.25", s.Variance)
	}
	if !almostEq(s.Std, math.Sqrt(1.25), 1e-12) {
		t.Errorf("Std = %v", s.Std)
	}
	if s.Min != 1 || s.Max != 4 {
		t.Errorf("Min/Max = %v/%v, want 1/4", s.Min, s.Max)
	}
	if s.NonEmpty != 4 {
		t.Errorf("NonEmpty = %d, want 4", s.NonEmpty)
	}
}

func TestSummarizeCountsZeros(t *testing.T) {
	s := Summarize([]int64{0, 5, 0, 5})
	if s.NonEmpty != 2 {
		t.Errorf("NonEmpty = %d, want 2", s.NonEmpty)
	}
	if s.Min != 0 || s.Max != 5 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
}

func TestGiniBalanced(t *testing.T) {
	if g := Gini([]int64{7, 7, 7, 7, 7}); !almostEq(g, 0, 1e-12) {
		t.Errorf("balanced Gini = %v, want 0", g)
	}
}

func TestGiniMaxImbalance(t *testing.T) {
	// All mass in a single bucket of n: G = (n-1)/n.
	n := 1000
	counts := make([]int64, n)
	counts[0] = 12345
	want := float64(n-1) / float64(n)
	if g := Gini(counts); !almostEq(g, want, 1e-9) {
		t.Errorf("single-bucket Gini = %v, want %v", g, want)
	}
}

func TestGiniDegenerate(t *testing.T) {
	if g := Gini(nil); g != 0 {
		t.Errorf("nil Gini = %v", g)
	}
	if g := Gini([]int64{42}); g != 0 {
		t.Errorf("singleton Gini = %v", g)
	}
	if g := Gini([]int64{0, 0, 0}); g != 0 {
		t.Errorf("zero-mass Gini = %v", g)
	}
}

func TestGiniKnownValue(t *testing.T) {
	// {0, 1}: G = 0.5 for two buckets.
	if g := Gini([]int64{0, 1}); !almostEq(g, 0.5, 1e-12) {
		t.Errorf("Gini({0,1}) = %v, want 0.5", g)
	}
}

func TestGiniOrderInvariant(t *testing.T) {
	a := []int64{9, 1, 4, 0, 7, 3}
	b := []int64{0, 1, 3, 4, 7, 9}
	if ga, gb := Gini(a), Gini(b); !almostEq(ga, gb, 1e-12) {
		t.Errorf("Gini order-dependent: %v vs %v", ga, gb)
	}
}

func TestGiniRange(t *testing.T) {
	f := func(raw []uint16) bool {
		counts := make([]int64, len(raw))
		for i, v := range raw {
			counts[i] = int64(v)
		}
		g := Gini(counts)
		return g >= 0 && g < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPRatioBalanced(t *testing.T) {
	if p := PRatio([]int64{3, 3, 3, 3}); !almostEq(p, 0.5, 1e-9) {
		t.Errorf("balanced PRatio = %v, want 0.5", p)
	}
}

func TestPRatioImbalanced(t *testing.T) {
	// One bucket with everything out of n: p-ratio ~ 1/n (tiny).
	n := 1000
	counts := make([]int64, n)
	counts[0] = 1 << 20
	p := PRatio(counts)
	if p > 0.01 {
		t.Errorf("maximally imbalanced PRatio = %v, want near 0", p)
	}
}

func TestPRatioDegenerate(t *testing.T) {
	if p := PRatio(nil); p != 0.5 {
		t.Errorf("nil PRatio = %v, want 0.5", p)
	}
	if p := PRatio([]int64{0, 0}); p != 0.5 {
		t.Errorf("zero-mass PRatio = %v, want 0.5", p)
	}
}

func TestPRatioPowerLaw(t *testing.T) {
	// An 80/20-style distribution should land near p = 0.2.
	counts := make([]int64, 100)
	for i := 0; i < 20; i++ {
		counts[i] = 40 // top 20% hold 800 of 1120 total = 71%
	}
	for i := 20; i < 100; i++ {
		counts[i] = 4
	}
	p := PRatio(counts)
	if p < 0.15 || p > 0.3 {
		t.Errorf("power-law PRatio = %v, want in [0.15,0.3]", p)
	}
}

func TestPRatioRange(t *testing.T) {
	f := func(raw []uint16) bool {
		counts := make([]int64, len(raw))
		for i, v := range raw {
			counts[i] = int64(v)
		}
		p := PRatio(counts)
		return p > 0 && p <= 0.5+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPRatioMonotoneUnderSkew(t *testing.T) {
	// Increasing skew must not increase the p-ratio.
	base := []int64{10, 10, 10, 10, 10, 10, 10, 10}
	prev := PRatio(base)
	for shift := 0; shift < 6; shift++ {
		skewed := make([]int64, len(base))
		copy(skewed, base)
		// Move mass from the tail to the head.
		for i := 0; i <= shift; i++ {
			skewed[0] += base[len(base)-1-i] - 1
			skewed[len(base)-1-i] = 1
		}
		p := PRatio(skewed)
		if p > prev+1e-9 {
			t.Errorf("PRatio increased under skew at shift %d: %v > %v", shift, p, prev)
		}
		prev = p
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); !almostEq(m, 2, 1e-12) {
		t.Errorf("Mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v", m)
	}
	if g := GeoMean([]float64{1, 4}); !almostEq(g, 2, 1e-12) {
		t.Errorf("GeoMean = %v", g)
	}
	if g := GeoMean([]float64{0, -1}); g != 0 {
		t.Errorf("GeoMean of non-positives = %v", g)
	}
	if g := GeoMean([]float64{2, 0, 8}); !almostEq(g, 4, 1e-12) {
		t.Errorf("GeoMean ignoring zero = %v", g)
	}
}

func TestHistogram(t *testing.T) {
	counts, edges := Histogram([]float64{0.05, 0.25, 0.95, -5, 99}, 0, 1, 10)
	if len(counts) != 10 || len(edges) != 11 {
		t.Fatalf("shape wrong: %d bins, %d edges", len(counts), len(edges))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 5 {
		t.Errorf("histogram lost values: total = %d", total)
	}
	if counts[0] != 2 { // 0.1 and clamped -5
		t.Errorf("first bin = %d, want 2", counts[0])
	}
	if counts[9] != 2 { // 0.95 and clamped 99
		t.Errorf("last bin = %d, want 2", counts[9])
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if c, e := Histogram([]float64{1}, 0, 0, 10); c != nil || e != nil {
		t.Error("degenerate range should return nil")
	}
	if c, e := Histogram([]float64{1}, 0, 1, 0); c != nil || e != nil {
		t.Error("zero bins should return nil")
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	if p := Percentile(vals, 0); p != 1 {
		t.Errorf("p0 = %v", p)
	}
	if p := Percentile(vals, 100); p != 5 {
		t.Errorf("p100 = %v", p)
	}
	if p := Percentile(vals, 50); p != 3 {
		t.Errorf("p50 = %v", p)
	}
	if p := Percentile(vals, 25); p != 2 {
		t.Errorf("p25 = %v", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Errorf("empty percentile = %v", p)
	}
}

func TestSummarizeMatchesComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		counts := make([]int64, n)
		for i := range counts {
			counts[i] = int64(rng.Intn(100))
		}
		s := Summarize(counts)
		if !almostEq(s.Gini, Gini(counts), 1e-12) {
			t.Fatalf("Summary.Gini mismatch")
		}
		if !almostEq(s.PRatio, PRatio(counts), 1e-12) {
			t.Fatalf("Summary.PRatio mismatch")
		}
		if !almostEq(s.Std*s.Std, s.Variance, 1e-9) {
			t.Fatalf("Std^2 != Variance")
		}
	}
}
