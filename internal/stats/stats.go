// Package stats provides the summary statistics WISE uses to characterize
// nonzero distributions: mean, standard deviation, variance, min, max, the
// Gini coefficient, the p-ratio, and the number of nonempty buckets.
//
// WISE (PPoPP'23, Section 4.2) summarizes five distributions of a sparse
// matrix (nonzeros per row, per column, per tile, per row block, and per
// column block) with exactly these statistics; the resulting scalars are the
// inputs to its decision-tree performance models.
package stats

import (
	"math"
	"sort"
)

// Summary holds the per-distribution statistics of Table 2 in the paper.
//
// Gini and PRatio measure the imbalance of the distribution: a
// maximally-imbalanced distribution (all mass in one bucket) has Gini near 1
// and PRatio near 0, while a perfectly balanced one has Gini 0 and PRatio 0.5.
// NonEmpty counts buckets holding at least one unit of mass.
type Summary struct {
	Mean     float64
	Std      float64
	Variance float64
	Min      float64
	Max      float64
	Gini     float64
	PRatio   float64
	NonEmpty int
}

// Summarize computes the Summary of a bucket-count distribution. The input
// values must be non-negative (they are counts of nonzeros per bucket); it is
// not modified. An empty input yields the zero Summary with PRatio 0.5 (a
// degenerate distribution is treated as balanced).
func Summarize(counts []int64) Summary {
	if len(counts) == 0 {
		return Summary{PRatio: 0.5}
	}
	var (
		sum      float64
		min      = float64(counts[0])
		max      = float64(counts[0])
		nonEmpty int
	)
	for _, c := range counts {
		v := float64(c)
		sum += v
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		if c != 0 {
			nonEmpty++
		}
	}
	n := float64(len(counts))
	mean := sum / n
	var ss float64
	for _, c := range counts {
		d := float64(c) - mean
		ss += d * d
	}
	variance := ss / n
	return Summary{
		Mean:     mean,
		Std:      math.Sqrt(variance),
		Variance: variance,
		Min:      min,
		Max:      max,
		Gini:     Gini(counts),
		PRatio:   PRatio(counts),
		NonEmpty: nonEmpty,
	}
}

// Gini computes the Gini coefficient of a non-negative distribution.
// 0 means perfectly balanced; values approaching 1 mean all mass is
// concentrated in a single bucket. Distributions with zero total mass or a
// single bucket are balanced by definition (Gini 0).
func Gini(counts []int64) float64 {
	n := len(counts)
	if n <= 1 {
		return 0
	}
	sorted := make([]int64, n)
	copy(sorted, counts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total, weighted float64
	for i, c := range sorted {
		v := float64(c)
		total += v
		weighted += float64(i+1) * v
	}
	if total == 0 { //lint:ignore floateq sum of non-negative integer counts is 0 only when all are 0
		return 0
	}
	nf := float64(n)
	// G = (2*sum(i*x_i) / (n*sum(x))) - (n+1)/n with x ascending, i in 1..n.
	g := 2*weighted/(nf*total) - (nf+1)/nf
	if g < 0 {
		g = 0
	}
	return g
}

// PRatio computes the p-ratio of a non-negative distribution: the value p
// such that the top p fraction of the buckets (by mass) holds a (1-p)
// fraction of the total mass. It is the fixed point of the Lorenz-curve
// complement; a perfectly balanced distribution has p = 0.5, and a
// maximally-imbalanced one approaches 0 (one bucket holds everything).
//
// Concretely we sort buckets in descending order and find, by linear
// interpolation along the cumulative-mass curve, the crossing point where
// cumulativeShare(topFraction = p) = 1 - p.
func PRatio(counts []int64) float64 {
	n := len(counts)
	if n == 0 {
		return 0.5
	}
	sorted := make([]int64, n)
	copy(sorted, counts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	var total float64
	for _, c := range sorted {
		total += float64(c)
	}
	if total == 0 { //lint:ignore floateq sum of non-negative integer counts is 0 only when all are 0
		return 0.5
	}
	nf := float64(n)
	var cum float64
	prevFrac, prevShare := 0.0, 0.0
	for i, c := range sorted {
		cum += float64(c)
		frac := float64(i+1) / nf
		share := cum / total
		// Find where share >= 1 - frac, i.e. f(frac) = share + frac - 1 >= 0.
		if share+frac >= 1 {
			// Interpolate between (prevFrac, prevShare) and (frac, share).
			f0 := prevShare + prevFrac - 1
			f1 := share + frac - 1
			if f1 == f0 { //lint:ignore floateq degenerate-interpolation guard before dividing by f1-f0
				return frac
			}
			t := -f0 / (f1 - f0)
			return prevFrac + t*(frac-prevFrac)
		}
		prevFrac, prevShare = frac, share
	}
	return 1.0 // unreachable for valid input: share reaches 1 at frac 1.
}

// Mean returns the arithmetic mean of values, or 0 for empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var s float64
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// GeoMean returns the geometric mean of positive values, ignoring
// non-positive entries. It returns 0 if no positive entry exists.
func GeoMean(values []float64) float64 {
	var logSum float64
	var n int
	for _, v := range values {
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Histogram bins values into nbins equal-width bins over [lo, hi]. Values
// outside the range are clamped into the first or last bin. It returns the
// bin counts and the bin edges (nbins+1 entries).
func Histogram(values []float64, lo, hi float64, nbins int) (counts []int, edges []float64) {
	if nbins <= 0 || hi <= lo {
		return nil, nil
	}
	counts = make([]int, nbins)
	edges = make([]float64, nbins+1)
	width := (hi - lo) / float64(nbins)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	for _, v := range values {
		idx := int((v - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= nbins {
			idx = nbins - 1
		}
		counts[idx]++
	}
	return counts, edges
}

// Percentile returns the q-th percentile (0 <= q <= 100) of values using
// linear interpolation between closest ranks. It returns 0 for empty input.
func Percentile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := q / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
