package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	r := NewRegistry()
	root := r.Begin("train")
	a := root.Child("corpus")
	a.End()
	b := root.Child("label")
	b.Child("worker").End()
	b.End()
	root.End()

	snap := r.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("got %d roots, want 1", len(snap.Spans))
	}
	got := snap.Spans[0]
	if got.Name != "train" || got.Running {
		t.Fatalf("root = %+v", got)
	}
	if len(got.Children) != 2 || got.Children[0].Name != "corpus" || got.Children[1].Name != "label" {
		t.Fatalf("children = %+v", got.Children)
	}
	if len(got.Children[1].Children) != 1 || got.Children[1].Children[0].Name != "worker" {
		t.Fatalf("grandchildren = %+v", got.Children[1].Children)
	}
	for _, sp := range []SpanSnapshot{got, got.Children[0], got.Children[1]} {
		if sp.Seconds < 0 {
			t.Errorf("span %s has negative duration %v", sp.Name, sp.Seconds)
		}
	}
}

func TestSpanRunningAndEndIdempotent(t *testing.T) {
	r := NewRegistry()
	root := r.Begin("live")
	snap := r.Snapshot()
	if !snap.Spans[0].Running {
		t.Fatal("unfinished span not marked Running")
	}

	first := root.End()
	time.Sleep(2 * time.Millisecond)
	if again := root.End(); again != first {
		t.Errorf("second End changed duration: %v != %v", again, first)
	}
	if d := root.Duration(); d != first {
		t.Errorf("Duration %v != recorded %v", d, first)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test.events")
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if r.NewCounter("test.events") != c {
		t.Error("NewCounter with same name returned a different instance")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("test.level")
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Errorf("gauge = %v, want 3.5", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Errorf("gauge = %v, want -1", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test.lat", []float64{1, 10, 100})
	// Bounds are inclusive upper bounds; 4th bucket is overflow.
	for _, v := range []float64{0.5, 1} { // both <= 1
		h.Observe(v)
	}
	h.Observe(10)   // <= 10
	h.Observe(99)   // <= 100
	h.Observe(1000) // overflow
	want := []int64{2, 1, 1, 1}
	if h.NumBuckets() != len(want) {
		t.Fatalf("NumBuckets = %d, want %d", h.NumBuckets(), len(want))
	}
	for i, w := range want {
		if got := h.BucketCount(i); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+10+99+1000; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
	if lo, hi, ok := h.minMax(); !ok || lo != 0.5 || hi != 1000 {
		t.Errorf("minMax = %v, %v, %v", lo, hi, ok)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test.conc", []float64{1, 2, 4})
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vals := []float64{0.5, 1.5, 2.5, 10} // one per bucket incl. overflow
			for i := 0; i < perWorker; i++ {
				h.Observe(vals[w%4])
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	var bucketTotal int64
	for i := 0; i < h.NumBuckets(); i++ {
		bucketTotal += h.BucketCount(i)
	}
	if bucketTotal != h.Count() {
		t.Errorf("bucket total %d != count %d", bucketTotal, h.Count())
	}
	// Each of the 4 observed values lands in a distinct bucket, 2 workers each.
	wantPer := int64(2 * perWorker)
	for i := 0; i < 4; i++ {
		if got := h.BucketCount(i); got != wantPer {
			t.Errorf("bucket %d = %d, want %d", i, got, wantPer)
		}
	}
	wantSum := float64(perWorker) * 2 * (0.5 + 1.5 + 2.5 + 10)
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Errorf("sum = %v, want %v", got, wantSum)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("c.a").Add(7)
	r.NewGauge("g.a").Set(2.25)
	h := r.NewHistogram("h.a", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(100) // overflow bucket
	sp := r.Begin("root")
	sp.Child("kid").End()
	sp.End()

	data, err := r.Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"+Inf"`) {
		t.Error("overflow bucket bound not serialized as \"+Inf\"")
	}

	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round-trip unmarshal: %v\n%s", err, data)
	}
	if back.Counters["c.a"] != 7 {
		t.Errorf("counter round-trip = %d", back.Counters["c.a"])
	}
	if back.Gauges["g.a"] != 2.25 {
		t.Errorf("gauge round-trip = %v", back.Gauges["g.a"])
	}
	hs, ok := back.Histograms["h.a"]
	if !ok || hs.Count != 2 {
		t.Fatalf("histogram round-trip = %+v", hs)
	}
	if len(hs.Buckets) != 3 {
		t.Fatalf("bucket count = %d, want 3", len(hs.Buckets))
	}
	if hs.Buckets[0].Le != 1 || hs.Buckets[0].Count != 1 {
		t.Errorf("bucket 0 = %+v", hs.Buckets[0])
	}
	if hs.Buckets[2].Le < 1e300 || hs.Buckets[2].Count != 1 {
		t.Errorf("overflow bucket = %+v", hs.Buckets[2])
	}
	if len(back.Spans) != 1 || back.Spans[0].Name != "root" ||
		len(back.Spans[0].Children) != 1 || back.Spans[0].Children[0].Name != "kid" {
		t.Errorf("span round-trip = %+v", back.Spans)
	}
}

func TestResetKeepsInstrumentIdentity(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c")
	g := r.NewGauge("g")
	h := r.NewHistogram("h", []float64{1})
	c.Add(5)
	g.Set(9)
	h.Observe(0.5)
	r.Begin("span").End()

	r.Reset()

	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Errorf("values after reset: c=%d g=%v h=%d", c.Value(), g.Value(), h.Count())
	}
	if _, _, ok := h.minMax(); ok {
		t.Error("histogram min/max survived reset")
	}
	if snap := r.Snapshot(); len(snap.Spans) != 0 {
		t.Errorf("%d spans survived reset", len(snap.Spans))
	}
	// The same instrument objects must still be registered.
	if r.NewCounter("c") != c || r.NewGauge("g") != g || r.NewHistogram("h", nil) != h {
		t.Error("reset replaced registered instruments")
	}
	c.Inc()
	if r.Snapshot().Counters["c"] != 1 {
		t.Error("counter disconnected from registry after reset")
	}
}

func TestProgressVerboseOutput(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	r.SetVerbose(&buf)
	p := r.StartProgress("label", 4)
	for i := 0; i < 4; i++ {
		p.Add(1)
	}
	p.Finish()
	out := buf.String()
	if !strings.Contains(out, "label: 4/4 (100%)") {
		t.Errorf("final progress line missing from %q", out)
	}
	if p.Done() != 4 {
		t.Errorf("Done = %d", p.Done())
	}
	// Finish twice must not print twice.
	n := len(buf.String())
	p.Finish()
	if len(buf.String()) != n {
		t.Error("second Finish produced output")
	}
}

func TestProgressDisabledIsSilent(t *testing.T) {
	r := NewRegistry() // no verbose writer
	p := r.StartProgress("quiet", 100)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				p.Add(1)
			}
		}()
	}
	wg.Wait()
	p.Finish()
	if p.Done() != 100 {
		t.Errorf("Done = %d, want 100", p.Done())
	}
}

func TestVerbosef(t *testing.T) {
	r := NewRegistry()
	r.Verbosef("dropped %d", 1) // no writer: must not panic
	var buf bytes.Buffer
	r.SetVerbose(&buf)
	r.Verbosef("stage %s done", "label")
	if got := buf.String(); got != "stage label done\n" {
		t.Errorf("Verbosef output %q", got)
	}
	r.SetVerbose(nil)
	r.Verbosef("after disable")
	if strings.Contains(buf.String(), "after disable") {
		t.Error("Verbosef wrote after SetVerbose(nil)")
	}
}

func TestWriteMetricsFile(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("c").Inc()
	path := t.TempDir() + "/m.json"
	if err := r.WriteMetricsFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["c"] != 1 {
		t.Errorf("counters = %v", snap.Counters)
	}
	if snap.GOMAXPROCS <= 0 || snap.NumCPU <= 0 || snap.GoVersion == "" {
		t.Errorf("environment fields missing: %+v", snap)
	}
}
