package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic event count.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// NewCounter returns the counter registered under name in the registry,
// creating it on first use. Repeated calls with the same name return the
// same counter, so package-level declarations and ad-hoc lookups agree.
func (r *Registry) NewCounter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// NewCounter registers a counter in the default registry.
func NewCounter(name string) *Counter { return Default.NewCounter(name) }

// Gauge is an atomic last-value metric (e.g. corpus size, worker count).
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set stores v as the gauge's current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// NewGauge returns the gauge registered under name, creating it on first use.
func (r *Registry) NewGauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// NewGauge registers a gauge in the default registry.
func NewGauge(name string) *Gauge { return Default.NewGauge(name) }

// Histogram accumulates observations into fixed exponential buckets plus
// count/sum/min/max, all updated atomically so hot paths (per-matrix label
// latency, per-tree fit latency, per-SpMV latency) can record from many
// workers without locks.
type Histogram struct {
	name   string
	bounds []float64      // inclusive upper bounds; one overflow bucket follows
	counts []atomic.Int64 // len(bounds)+1

	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated

	minMu sync.Mutex
	min   float64 // guarded by minMu
	max   float64 // guarded by minMu
}

// DefaultLatencyBuckets spans 1µs to ~100s in powers of ~4 — wide enough
// for both per-SpMV latencies and per-matrix labeling times, in seconds.
func DefaultLatencyBuckets() []float64 {
	return []float64{
		1e-6, 4e-6, 16e-6, 64e-6, 256e-6,
		1e-3, 4e-3, 16e-3, 64e-3, 256e-3,
		1, 4, 16, 64, 100,
	}
}

// NewHistogram returns the histogram registered under name, creating it with
// the given inclusive bucket upper bounds (sorted ascending) on first use;
// nil bounds means DefaultLatencyBuckets. An extra overflow bucket catches
// observations above the last bound.
func (r *Registry) NewHistogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	if bounds == nil {
		bounds = DefaultLatencyBuckets()
	}
	h := &Histogram{
		name:   name,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
	r.hists[name] = h
	return h
}

// NewHistogram registers a histogram in the default registry.
func NewHistogram(name string, bounds []float64) *Histogram {
	return Default.NewHistogram(name, bounds)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	h.minMu.Lock()
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.minMu.Unlock()
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the mean observed value, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// BucketCount returns the count in bucket i, where buckets 0..len(bounds)-1
// hold values <= the corresponding bound and the final bucket overflows.
func (h *Histogram) BucketCount(i int) int64 { return h.counts[i].Load() }

// NumBuckets returns the bucket count including the overflow bucket.
func (h *Histogram) NumBuckets() int { return len(h.counts) }

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
	h.minMu.Lock()
	h.min = math.Inf(1)
	h.max = math.Inf(-1)
	h.minMu.Unlock()
}

func (h *Histogram) minMax() (lo, hi float64, ok bool) {
	h.minMu.Lock()
	defer h.minMu.Unlock()
	if math.IsInf(h.min, 1) {
		return 0, 0, false
	}
	return h.min, h.max, true
}
