package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress reports completion of a long fan-out loop (labeling workers,
// k-fold CV, experiment drivers) with throughput-derived ETA. Output goes to
// the registry's verbose writer; when verbose mode is off every Add is one
// atomic increment and nothing is printed, so call sites stay instrumented
// unconditionally. Updates rewrite a single terminal line via carriage
// return and are rate-limited.
type Progress struct {
	label string
	total int64
	done  atomic.Int64
	start time.Time
	w     io.Writer // nil = disabled

	mu        sync.Mutex
	lastPrint time.Time // guarded by mu
	finished  bool      // guarded by mu
}

// progressInterval rate-limits live progress lines.
const progressInterval = 200 * time.Millisecond

// StartProgress begins reporting a loop of total items under the label.
// The writer is captured once, so flipping verbose mid-loop affects only
// subsequently started reporters.
func (r *Registry) StartProgress(label string, total int) *Progress {
	return &Progress{
		label: label,
		total: int64(total),
		start: time.Now(),
		w:     r.verboseWriter(),
	}
}

// StartProgress begins a progress reporter on the default registry.
func StartProgress(label string, total int) *Progress {
	return Default.StartProgress(label, total)
}

// Add records n completed items and, in verbose mode, refreshes the live
// progress line (at most once per progressInterval). Safe for concurrent
// use by many workers.
func (p *Progress) Add(n int) {
	done := p.done.Add(int64(n))
	if p.w == nil {
		return
	}
	now := time.Now()
	p.mu.Lock()
	if p.finished || now.Sub(p.lastPrint) < progressInterval {
		p.mu.Unlock()
		return
	}
	p.lastPrint = now
	p.mu.Unlock()
	p.print(done, false)
}

// Done returns the number of completed items so far.
func (p *Progress) Done() int64 { return p.done.Load() }

// Finish prints the final summary line (in verbose mode) and stops further
// updates. It is safe to call once from the loop's owner after all workers
// have stopped.
func (p *Progress) Finish() {
	p.mu.Lock()
	if p.finished {
		p.mu.Unlock()
		return
	}
	p.finished = true
	p.mu.Unlock()
	if p.w != nil {
		p.print(p.done.Load(), true)
	}
}

// eta extrapolates the remaining time from current throughput.
func (p *Progress) eta(done int64, elapsed time.Duration) time.Duration {
	if done <= 0 || p.total <= 0 || done >= p.total {
		return 0
	}
	perItem := float64(elapsed) / float64(done)
	return time.Duration(perItem * float64(p.total-done)).Round(time.Second)
}

func (p *Progress) print(done int64, final bool) {
	elapsed := time.Since(p.start)
	pct := 0.0
	if p.total > 0 {
		pct = 100 * float64(done) / float64(p.total)
	}
	if final {
		//lint:ignore errdrop progress output is best-effort; a failing sink must not break the run
		fmt.Fprintf(p.w, "\r%s: %d/%d (%.0f%%) in %v          \n",
			p.label, done, p.total, pct, elapsed.Round(time.Millisecond))
		return
	}
	//lint:ignore errdrop progress output is best-effort; a failing sink must not break the run
	fmt.Fprintf(p.w, "\r%s: %d/%d (%.0f%%) eta %v   ",
		p.label, done, p.total, pct, p.eta(done, elapsed))
}
