// Package obs is the pipeline observability layer: named stage timers with
// hierarchical spans (wall time plus allocation deltas), atomic counters,
// gauges and latency histograms for the hot paths (matrices labeled, trees
// trained, cache-sim accesses, SpMV calls), a progress reporter with ETA for
// long fan-out loops, a JSON metrics snapshot writer, and opt-in pprof
// CPU/heap profile capture. Everything is stdlib-only and safe for
// concurrent use; instrumentation on disabled paths costs one atomic
// operation, so it stays on permanently.
//
// The package keeps a single default registry. Pipeline packages declare
// their instruments as package-level variables
//
//	var matricesLabeled = obs.NewCounter("perf.matrices_labeled")
//
// and bump them inline; CLIs call RegisterFlags to expose -v, -metrics,
// -cpuprofile and -memprofile. OBSERVABILITY.md documents every emitted
// span and metric name and the snapshot schema.
package obs

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Registry holds named instruments and completed spans. The package-level
// functions operate on Default; independent registries exist only so tests
// can isolate state.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu
	roots    []*Span               // guarded by mu

	verboseMu sync.Mutex
	verbose   io.Writer // nil = verbose output disabled; guarded by verboseMu
}

// Default is the process-wide registry used by the package-level helpers.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Reset zeroes every registered instrument and drops all recorded spans.
// Registered instruments keep their identity, so package-level variables
// holding them stay valid. Intended for tests and for CLIs that want a
// clean slate after a warm-up phase.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
	r.roots = nil
}

// Reset resets the default registry.
func Reset() { Default.Reset() }

// SetVerbose directs progress and Verbosef output to w; nil disables it.
func (r *Registry) SetVerbose(w io.Writer) {
	r.verboseMu.Lock()
	r.verbose = w
	r.verboseMu.Unlock()
}

// SetVerbose directs the default registry's progress and Verbosef output.
func SetVerbose(w io.Writer) { Default.SetVerbose(w) }

func (r *Registry) verboseWriter() io.Writer {
	r.verboseMu.Lock()
	defer r.verboseMu.Unlock()
	return r.verbose
}

// Verbosef writes one line of progress narration when verbose output is
// enabled, and is a no-op otherwise.
func (r *Registry) Verbosef(format string, args ...any) {
	if w := r.verboseWriter(); w != nil {
		//lint:ignore errdrop verbose narration is best-effort; a failing sink must not break the pipeline
		fmt.Fprintf(w, format+"\n", args...)
	}
}

// Verbosef writes to the default registry's verbose sink.
func Verbosef(format string, args ...any) { Default.Verbosef(format, args...) }

// Span is one named stage of the pipeline. Spans nest: a root span is
// opened with Begin, children with (*Span).Child. End records the wall-time
// duration and the process-wide allocation delta since the span started
// (approximate when other goroutines allocate concurrently — documented as
// such, still invaluable for stage-level accounting).
type Span struct {
	Name string

	start      time.Time
	startAlloc uint64

	mu       sync.Mutex
	children []*Span       // guarded by mu
	duration time.Duration // guarded by mu
	alloc    uint64        // guarded by mu
	ended    bool          // guarded by mu
}

// Begin opens a root span in the registry. The span is recorded immediately
// so snapshots taken mid-run show in-flight stages.
func (r *Registry) Begin(name string) *Span {
	s := newSpan(name)
	r.mu.Lock()
	r.roots = append(r.roots, s)
	r.mu.Unlock()
	return s
}

// Begin opens a root span in the default registry.
func Begin(name string) *Span { return Default.Begin(name) }

func newSpan(name string) *Span {
	return &Span{Name: name, start: time.Now(), startAlloc: totalAlloc()}
}

// totalAlloc reads the cumulative heap allocation of the process.
// runtime.ReadMemStats is a stop-the-world operation, so spans are meant
// for coarse stages (a handful per run), not per-item loops — those use
// Histograms.
func totalAlloc() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

// Child opens a nested span under s. Safe to call from multiple goroutines;
// children appear in creation order.
func (s *Span) Child(name string) *Span {
	c := newSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span, recording its duration and allocation delta, and
// returns the duration. Ending twice keeps the first measurement.
func (s *Span) End() time.Duration {
	d := time.Since(s.start)
	alloc := totalAlloc() - s.startAlloc
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.duration
	}
	s.ended = true
	s.duration = d
	s.alloc = alloc
	return d
}

// Duration returns the recorded duration for an ended span, or the elapsed
// time so far for a live one.
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.duration
	}
	return time.Since(s.start)
}

// sortedNames returns map keys in lexical order (stable snapshot output).
func sortedNames[M ~map[string]V, V any](m M) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
