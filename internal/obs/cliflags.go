package obs

import (
	"flag"
	"fmt"
	"os"
)

// CLIFlags carries the observability options shared by every wise CLI.
type CLIFlags struct {
	Verbose    bool
	Metrics    string
	CPUProfile string
	MemProfile string
}

// RegisterFlags adds the standard observability flags (-v, -metrics,
// -cpuprofile, -memprofile) to a flag set. Call Start after fs.Parse.
func RegisterFlags(fs *flag.FlagSet) *CLIFlags {
	o := &CLIFlags{}
	fs.BoolVar(&o.Verbose, "v", false, "verbose: live progress with ETA and stage timings on stderr")
	fs.StringVar(&o.Metrics, "metrics", "", "write a JSON metrics snapshot (spans, counters, histograms) to this file on exit")
	fs.StringVar(&o.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&o.MemProfile, "memprofile", "", "write a pprof heap profile to this file on exit")
	return o
}

// Start applies the parsed flags: enables verbose output and begins CPU
// profiling if requested. The returned finish function must run before the
// process exits (defer it in main); it stops the CPU profile and writes the
// heap profile and metrics snapshot.
func (o *CLIFlags) Start() (finish func() error, err error) {
	if o.Verbose {
		SetVerbose(os.Stderr)
	}
	var stopCPU func() error
	if o.CPUProfile != "" {
		stopCPU, err = StartCPUProfile(o.CPUProfile)
		if err != nil {
			return nil, err
		}
	}
	return func() error {
		var firstErr error
		if stopCPU != nil {
			if err := stopCPU(); err != nil {
				firstErr = err
			}
		}
		if o.MemProfile != "" {
			if err := WriteHeapProfile(o.MemProfile); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if o.Metrics != "" {
			if err := WriteMetricsFile(o.Metrics); err != nil && firstErr == nil {
				firstErr = err
			} else if firstErr == nil {
				Verbosef("wrote metrics snapshot to %s", o.Metrics)
			}
		}
		return firstErr
	}, nil
}

// MustStart is Start for CLI mains: it exits the process on setup errors.
func (o *CLIFlags) MustStart() (finish func() error) {
	finish, err := o.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return finish
}
