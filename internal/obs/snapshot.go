package obs

import (
	"encoding/json"
	"runtime"
	"time"

	"wise/internal/resilience"
)

// Snapshot is the JSON form of everything a registry has recorded. The
// schema is documented field by field in OBSERVABILITY.md; it is stable and
// append-only so downstream tooling can rely on it.
type Snapshot struct {
	TakenAt    time.Time `json:"taken_at"`
	GoVersion  string    `json:"go_version"`
	NumCPU     int       `json:"num_cpu"`
	GOMAXPROCS int       `json:"gomaxprocs"`

	Spans      []SpanSnapshot               `json:"spans,omitempty"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// SpanSnapshot is one stage timer in the snapshot's span forest.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	Seconds    float64        `json:"seconds"`
	AllocBytes uint64         `json:"alloc_bytes"`
	Running    bool           `json:"running,omitempty"` // span not yet ended
	Children   []SpanSnapshot `json:"children,omitempty"`
}

// HistogramSnapshot summarizes one histogram.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Mean    float64          `json:"mean"`
	Min     float64          `json:"min"`
	Max     float64          `json:"max"`
	Buckets []BucketSnapshot `json:"buckets"`
}

// BucketSnapshot is one histogram bucket: the count of observations at or
// below the inclusive upper bound Le. The overflow bucket has Le = +Inf,
// serialized as the string "+Inf" by the JSON encoder below.
type BucketSnapshot struct {
	Le    float64 `json:"-"`
	Count int64   `json:"count"`
}

// MarshalJSON encodes the bound explicitly so the +Inf overflow bucket
// survives JSON (which has no infinity literal).
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	type wire struct {
		Le    any   `json:"le"`
		Count int64 `json:"count"`
	}
	w := wire{Le: b.Le, Count: b.Count}
	if b.Le > 1e300 {
		w.Le = "+Inf"
	}
	return json.Marshal(w)
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *BucketSnapshot) UnmarshalJSON(data []byte) error {
	var w struct {
		Le    any   `json:"le"`
		Count int64 `json:"count"`
	}
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	b.Count = w.Count
	switch v := w.Le.(type) {
	case float64:
		b.Le = v
	case string:
		b.Le = 1e308 // "+Inf" marker round-trips as an out-of-band sentinel
	}
	return nil
}

// Snapshot captures the registry's current state. Safe to call at any
// point, including while workers are still recording; live spans are marked
// Running with their elapsed time so far.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		TakenAt:    time.Now(),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	r.mu.Lock()
	roots := append([]*Span(nil), r.roots...)
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for _, root := range roots {
		s.Spans = append(s.Spans, snapshotSpan(root))
	}
	for _, name := range sortedNames(counters) {
		s.Counters[name] = counters[name].Value()
	}
	for _, name := range sortedNames(gauges) {
		s.Gauges[name] = gauges[name].Value()
	}
	for _, name := range sortedNames(hists) {
		s.Histograms[name] = snapshotHistogram(hists[name])
	}
	return s
}

// TakeSnapshot captures the default registry.
func TakeSnapshot() *Snapshot { return Default.Snapshot() }

func snapshotSpan(sp *Span) SpanSnapshot {
	sp.mu.Lock()
	out := SpanSnapshot{Name: sp.Name}
	if sp.ended {
		out.Seconds = sp.duration.Seconds()
		out.AllocBytes = sp.alloc
	} else {
		out.Seconds = time.Since(sp.start).Seconds()
		out.Running = true
	}
	children := append([]*Span(nil), sp.children...)
	sp.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, snapshotSpan(c))
	}
	return out
}

func snapshotHistogram(h *Histogram) HistogramSnapshot {
	out := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
	}
	if lo, hi, ok := h.minMax(); ok {
		out.Min, out.Max = lo, hi
	}
	for i, bound := range h.bounds {
		out.Buckets = append(out.Buckets, BucketSnapshot{Le: bound, Count: h.counts[i].Load()})
	}
	out.Buckets = append(out.Buckets, BucketSnapshot{Le: 1e308, Count: h.counts[len(h.bounds)].Load()})
	return out
}

// MarshalIndent renders the snapshot as indented JSON.
func (s *Snapshot) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// WriteMetricsFile snapshots the registry and atomically writes it to path
// as JSON, so a crash mid-write never leaves a truncated snapshot behind.
func (r *Registry) WriteMetricsFile(path string) error {
	data, err := r.Snapshot().MarshalIndent()
	if err != nil {
		return err
	}
	return resilience.AtomicWriteFile(path, append(data, '\n'), 0o644)
}

// WriteMetricsFile writes the default registry's snapshot to path.
func WriteMetricsFile(path string) error { return Default.WriteMetricsFile(path) }
