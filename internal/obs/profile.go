package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"wise/internal/resilience"
)

// StartCPUProfile begins pprof CPU profiling into path and returns a stop
// function that ends profiling and closes the file. Only one CPU profile
// can run per process (a pprof limitation).
func StartCPUProfile(path string) (stop func() error, err error) {
	//lint:ignore atomicwrite pprof streams into this handle for the whole run; there is no complete artifact to stage-and-rename until stop
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		//lint:ignore errdrop already on a failure path; the pprof error is the one to surface
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile runs a GC (so the profile reflects live objects, the
// pprof-recommended protocol) and writes the heap profile to path,
// atomically: a crash mid-write never leaves a truncated profile.
func WriteHeapProfile(path string) error {
	f, err := resilience.CreateAtomic(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	defer f.Abort()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	if err := f.Commit(); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}
