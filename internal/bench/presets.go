package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"wise/internal/gen"
	"wise/internal/matrix"
)

// MatrixKind names a deterministic corpus-matrix builder. The kinds mirror
// the generator families of internal/gen that span the paper's corpus:
// skewed and local RMAT, road-like RGG, and the science-like stand-ins.
type MatrixKind string

// Matrix kinds available to presets.
const (
	KindRMATMed   MatrixKind = "rmat-ms"   // RMAT medium skew, hub-capped
	KindRMATHigh  MatrixKind = "rmat-hs"   // RMAT high skew (Graph500-like)
	KindRGG       MatrixKind = "rgg"       // random geometric graph
	KindStencil2D MatrixKind = "stencil2d" // 5/9-point grid
	KindBanded    MatrixKind = "banded"    // diagonal band
	KindPowerLaw  MatrixKind = "powerlaw"  // heavy-tailed row degrees
)

// MatrixSpec is one deterministic corpus entry: kind, size, and average
// degree fully determine the matrix given the preset seed, so two runs of
// the same preset measure byte-identical inputs.
type MatrixSpec struct {
	Name   string     `json:"name"`
	Kind   MatrixKind `json:"kind"`
	Rows   int        `json:"rows"`
	Degree float64    `json:"degree"`
}

// Build generates the matrix. Each spec draws from its own seeded source
// (seed + a stable per-spec offset), so reordering or subsetting a preset's
// matrix list never changes the matrices themselves.
func (ms MatrixSpec) Build(seed int64) *matrix.CSR {
	rng := rand.New(rand.NewSource(seed + int64(specOffset(ms.Name))))
	switch ms.Kind {
	case KindRMATMed, KindRMATHigh:
		params := gen.MedSkew
		if ms.Kind == KindRMATHigh {
			params = gen.HighSkew
		}
		m := gen.RMATRows(rng, ms.Rows, ms.Degree, params)
		capDeg := m.NNZ() / 500
		if capDeg < 32 {
			capDeg = 32
		}
		return gen.CapRowDegree(rng, m, capDeg)
	case KindRGG:
		return gen.RGG(rng, ms.Rows, ms.Degree)
	case KindStencil2D:
		g := int(math.Sqrt(float64(ms.Rows)))
		return gen.Stencil2D(g, g, true)
	case KindBanded:
		w := int(ms.Degree / 2)
		if w < 1 {
			w = 1
		}
		offsets := make([]int, 0, 2*w+1)
		for o := -w; o <= w; o++ {
			offsets = append(offsets, o)
		}
		return gen.Banded(rng, ms.Rows, offsets)
	case KindPowerLaw:
		return gen.PowerLawRows(rng, ms.Rows, 2.1, 256)
	default:
		panic(fmt.Sprintf("bench: unknown matrix kind %q", ms.Kind))
	}
}

// specOffset derives a stable per-spec seed offset from the spec name, so
// matrix identity depends on the name, not the list position.
func specOffset(name string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return h % 1_000_003
}

// Preset is one suite size: a fixed matrix corpus plus measurement budgets.
// Everything that determines the benchmark list lives here; nothing in a
// preset depends on measured time.
type Preset struct {
	Name        string
	Description string
	Seed        int64         // corpus seed (overridable with -seed)
	Warmup      int           // untimed runs per benchmark
	MinRuns     int           // timed runs taken regardless of budget
	MaxRuns     int           // repetition cap
	MaxTime     time.Duration // per-benchmark time budget
	Matrices    []MatrixSpec
	Expected    string // human estimate of a full run, for -list
}

// Opts returns the measurement options for ordinary (per-op) benchmarks.
func (p Preset) Opts() Options {
	return Options{Warmup: p.Warmup, MinRuns: p.MinRuns, MaxRuns: p.MaxRuns, MaxTime: p.MaxTime}
}

// HeavyOpts returns the options for one-shot pipeline stages (corpus
// generation, full-space labeling, training): no warmup, a single mandatory
// run, and the same time budget deciding whether more repetitions fit.
func (p Preset) HeavyOpts() Options {
	return Options{Warmup: 0, MinRuns: 1, MaxRuns: p.MaxRuns, MaxTime: p.MaxTime}
}

// BenchmarkCount predicts the number of results a suite run emits — used by
// -list and pinned to the real suite by test, so the two can never drift.
func (p Preset) BenchmarkCount() int {
	perMatrix := 2*len(suiteMethods()) + len(convertMethods()) + 6 // kernels serial+parallel, conversions, features+predict+serve+serve-shadow+session cold/warm
	return len(p.Matrices)*perMatrix + len(pipelineStages)
}

// Presets returns the suite sizes, smallest first. S is the CI smoke preset
// check.sh runs on every gate; paper approximates the paper's matrix scales
// (within this reproduction's scaled machine model).
func Presets() []Preset {
	return []Preset{
		{
			Name:        "S",
			Description: "CI smoke: four small matrices, seconds per run",
			Seed:        1,
			Warmup:      1,
			MinRuns:     3,
			MaxRuns:     100,
			MaxTime:     40 * time.Millisecond,
			Matrices: []MatrixSpec{
				{Name: "ms_r11_d8", Kind: KindRMATMed, Rows: 1 << 11, Degree: 8},
				{Name: "rgg_r11_d6", Kind: KindRGG, Rows: 1 << 11, Degree: 6},
				{Name: "stencil_r11", Kind: KindStencil2D, Rows: 1 << 11},
				{Name: "banded_r11_d5", Kind: KindBanded, Rows: 1 << 11, Degree: 5},
			},
			Expected: "~10 s",
		},
		{
			Name:        "M",
			Description: "developer default: six mid-size matrices",
			Seed:        1,
			Warmup:      2,
			MinRuns:     5,
			MaxRuns:     300,
			MaxTime:     150 * time.Millisecond,
			Matrices: []MatrixSpec{
				{Name: "ms_r13_d16", Kind: KindRMATMed, Rows: 1 << 13, Degree: 16},
				{Name: "hs_r13_d16", Kind: KindRMATHigh, Rows: 1 << 13, Degree: 16},
				{Name: "rgg_r13_d8", Kind: KindRGG, Rows: 1 << 13, Degree: 8},
				{Name: "stencil_r13", Kind: KindStencil2D, Rows: 1 << 13},
				{Name: "banded_r13_d9", Kind: KindBanded, Rows: 1 << 13, Degree: 9},
				{Name: "powerlaw_r13", Kind: KindPowerLaw, Rows: 1 << 13},
			},
			Expected: "~1 min",
		},
		{
			Name:        "L",
			Description: "pre-release: eight larger matrices, cache-capacity crossings",
			Seed:        1,
			Warmup:      3,
			MinRuns:     5,
			MaxRuns:     500,
			MaxTime:     400 * time.Millisecond,
			Matrices: []MatrixSpec{
				{Name: "ms_r14_d16", Kind: KindRMATMed, Rows: 1 << 14, Degree: 16},
				{Name: "ms_r15_d8", Kind: KindRMATMed, Rows: 1 << 15, Degree: 8},
				{Name: "hs_r14_d32", Kind: KindRMATHigh, Rows: 1 << 14, Degree: 32},
				{Name: "rgg_r15_d8", Kind: KindRGG, Rows: 1 << 15, Degree: 8},
				{Name: "stencil_r15", Kind: KindStencil2D, Rows: 1 << 15},
				{Name: "banded_r15_d9", Kind: KindBanded, Rows: 1 << 15, Degree: 9},
				{Name: "powerlaw_r15", Kind: KindPowerLaw, Rows: 1 << 15},
				{Name: "ms_r15_d32", Kind: KindRMATMed, Rows: 1 << 15, Degree: 32},
			},
			Expected: "~4 min",
		},
		{
			Name:        "paper",
			Description: "paper-scale (scaled corpus rows 2^16-2^17, degrees to 64)",
			Seed:        1,
			Warmup:      3,
			MinRuns:     5,
			MaxRuns:     500,
			MaxTime:     time.Second,
			Matrices: []MatrixSpec{
				{Name: "ms_r16_d16", Kind: KindRMATMed, Rows: 1 << 16, Degree: 16},
				{Name: "ms_r17_d16", Kind: KindRMATMed, Rows: 1 << 17, Degree: 16},
				{Name: "hs_r16_d64", Kind: KindRMATHigh, Rows: 1 << 16, Degree: 64},
				{Name: "rgg_r17_d8", Kind: KindRGG, Rows: 1 << 17, Degree: 8},
				{Name: "stencil_r17", Kind: KindStencil2D, Rows: 1 << 17},
				{Name: "banded_r17_d9", Kind: KindBanded, Rows: 1 << 17, Degree: 9},
				{Name: "powerlaw_r16", Kind: KindPowerLaw, Rows: 1 << 16},
				{Name: "ms_r17_d64", Kind: KindRMATMed, Rows: 1 << 17, Degree: 64},
			},
			Expected: "~15 min",
		},
	}
}

// LookupPreset finds a preset by name (case-insensitive).
func LookupPreset(name string) (Preset, bool) {
	for _, p := range Presets() {
		if strings.EqualFold(p.Name, name) {
			return p, true
		}
	}
	return Preset{}, false
}

// PresetNames lists the preset names in size order, for error messages.
func PresetNames() []string {
	ps := Presets()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// ListPresets renders the -list table: name, matrix count, benchmark count,
// per-benchmark budget, and the expected wall-clock of a full run.
func ListPresets() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %9s %11s %10s %10s  %s\n",
		"preset", "matrices", "benchmarks", "budget/bm", "expected", "description")
	for _, p := range Presets() {
		fmt.Fprintf(&b, "%-7s %9d %11d %10s %10s  %s\n",
			p.Name, len(p.Matrices), p.BenchmarkCount(), p.MaxTime, p.Expected, p.Description)
	}
	return b.String()
}

// sortSpecsBySize orders matrix specs smallest-rows-first so the cheapest
// matrices (and their one-shot pipeline stages) run first.
func sortSpecsBySize(specs []MatrixSpec) []MatrixSpec {
	out := make([]MatrixSpec, len(specs))
	copy(out, specs)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Rows < out[j].Rows })
	return out
}
