package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"

	"wise/internal/core"
	"wise/internal/costmodel"
	"wise/internal/features"
	"wise/internal/gen"
	"wise/internal/kernels"
	"wise/internal/machine"
	"wise/internal/matrix"
	"wise/internal/ml"
	"wise/internal/obs"
	"wise/internal/perf"
	"wise/internal/serve"
)

// SuiteConfig selects and scales a suite run.
type SuiteConfig struct {
	Preset    string  // S, M, L, or paper
	Seed      int64   // corpus seed; 0 = the preset's default
	TimeScale float64 // multiplies per-benchmark time budgets; 0 = 1.0
	Workers   int     // parallel-kernel workers; 0 = GOMAXPROCS
}

// pipelineStages are the one-shot stage benchmarks every preset runs once,
// in order: corpus generation, full-model-space labeling of the smallest
// matrix (the dominant cost of wise-train, per EXPERIMENTS.md), and
// decision-tree training.
var pipelineStages = []string{
	"pipeline/gen-corpus",
	"pipeline/label-modelspace",
	"pipeline/train-trees",
}

// suiteMethods is the kernel set every matrix is measured under: one
// representative per method family (CSR, SELLPACK, Sell-c-sigma, LAV, and
// the SegCSR extension), parameterized from the scaled machine model.
func suiteMethods() []kernels.Method {
	mach := machine.Scaled()
	cs := mach.ChunkSizes()
	c := cs[len(cs)-1]
	return []kernels.Method{
		{Kind: kernels.CSR, Sched: kernels.Dyn},
		{Kind: kernels.SELLPACK, Sched: kernels.Dyn, C: c},
		{Kind: kernels.SellCSigma, Sched: kernels.Dyn, C: c, Sigma: mach.SigmaValues()[1]},
		{Kind: kernels.LAV, Sched: kernels.Dyn, C: c, T: 0.7},
		kernels.ExtensionMethods(mach.LLCDoubles())[0],
	}
}

// convertMethods is the subset whose format conversion is benchmarked (CSR
// is the input representation; it has no conversion to time).
func convertMethods() []kernels.Method {
	return suiteMethods()[1:]
}

// suiteRun carries the per-run state through the benchmark helpers.
type suiteRun struct {
	ctx     context.Context
	cfg     SuiteConfig
	preset  Preset
	opts    Options // per-op benchmarks
	heavy   Options // one-shot pipeline stages
	mach    machine.Machine
	rep     *Report
	err     error // first benchmark-body failure; stops the run
	stopped bool  // ctx cancelled
}

// RunSuite executes the preset's full benchmark suite and returns its
// report. On context cancellation it returns the partial report together
// with the context's error so the CLI can exit 130; any benchmark-body
// failure (e.g. a non-200 serve round-trip) aborts the run with an error.
func RunSuite(ctx context.Context, cfg SuiteConfig) (*Report, error) {
	preset, ok := LookupPreset(cfg.Preset)
	if !ok {
		return nil, fmt.Errorf("bench: unknown preset %q (have %v)", cfg.Preset, PresetNames())
	}
	if cfg.Seed == 0 {
		cfg.Seed = preset.Seed
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	sr := &suiteRun{
		ctx:    ctx,
		cfg:    cfg,
		preset: preset,
		opts:   preset.Opts().Scale(cfg.TimeScale),
		heavy:  preset.HeavyOpts().Scale(cfg.TimeScale),
		mach:   machine.Scaled(),
		rep: &Report{
			Schema:    SchemaVersion,
			Preset:    preset.Name,
			Seed:      cfg.Seed,
			TimeScale: cfg.TimeScale,
			Env:       CurrentEnv(),
		},
	}
	sr.rep.stamp()
	sr.rep.Results = make([]Result, 0, preset.BenchmarkCount())

	span := obs.Begin("bench/" + preset.Name)
	defer span.End()

	specs := sortSpecsBySize(preset.Matrices)
	matrices := sr.buildMatrices(span, specs)
	w := sr.trainModel(span)
	if sr.failed() {
		return sr.finish()
	}

	sr.pipelineBenches(span, specs, matrices)
	sr.perMatrixBenches(span, specs, matrices, w)
	return sr.finish()
}

// failed reports whether the run should stop (error or cancellation).
func (sr *suiteRun) failed() bool {
	if sr.err != nil {
		return true
	}
	if sr.ctx.Err() != nil {
		sr.stopped = true
		return true
	}
	return false
}

// finish resolves the run outcome.
func (sr *suiteRun) finish() (*Report, error) {
	if sr.err != nil {
		return nil, sr.err
	}
	if err := sr.ctx.Err(); err != nil {
		return sr.rep, fmt.Errorf("bench: suite interrupted: %w", err)
	}
	return sr.rep, nil
}

// measure runs one benchmark unless the run already failed or was cancelled.
func (sr *suiteRun) measure(name, group string, opts Options, fn func()) {
	if sr.failed() {
		return
	}
	res := Measure(name, group, opts, fn)
	sr.rep.Results = append(sr.rep.Results, res)
	obs.Verbosef("bench: %s median %s over %d runs", name, fmtNs(res.NsMedian), res.Runs)
}

// failf records the first benchmark-body failure; later benchmarks and the
// suite result observe it through failed()/finish().
func (sr *suiteRun) failf(format string, args ...any) {
	if sr.err == nil {
		sr.err = fmt.Errorf(format, args...)
	}
}

// buildMatrices generates the preset corpus (untimed; pipeline/gen-corpus
// times the same work separately).
func (sr *suiteRun) buildMatrices(span *obs.Span, specs []MatrixSpec) []*matrix.CSR {
	sp := span.Child("build-matrices")
	defer sp.End()
	out := make([]*matrix.CSR, 0, len(specs))
	for _, spec := range specs {
		if sr.failed() {
			return out
		}
		out = append(out, spec.Build(sr.cfg.Seed))
	}
	return out
}

// trainModelRows are the sizes of the tiny deterministic training corpus
// behind the predict and serve benchmarks: real feature extraction and a
// full-width model space, with synthetic (but fixed) class labels so
// training never needs the expensive cost-model labeling pass.
var trainModelRows = []int{150, 190, 230, 270, 310, 350, 390, 430}

// trainLabels builds the deterministic training set for the suite's model.
func (sr *suiteRun) trainLabels() []perf.MatrixLabels {
	space := kernels.ModelSpace(sr.mach)
	rng := rand.New(rand.NewSource(sr.cfg.Seed + 7))
	labels := make([]perf.MatrixLabels, 0, len(trainModelRows))
	for i, rows := range trainModelRows {
		if sr.failed() {
			return labels
		}
		m := gen.Uniform(rng, rows, 4)
		labels = append(labels, perf.MatrixLabels{
			Name: labelName(i), Rows: m.Rows, Cols: m.Cols, NNZ: int64(m.NNZ()),
			Features: features.Extract(m, features.DefaultConfig()),
			Methods:  space,
			Classes:  syntheticClasses(i, len(space)),
		})
	}
	return labels
}

// labelName names the i-th synthetic training matrix.
func labelName(i int) string { return fmt.Sprintf("bench-train-%d", i) }

// syntheticClasses assigns a fixed, varied class per (matrix, method) pair
// so every tree sees more than one class and training is deterministic.
func syntheticClasses(i, nMethods int) []int {
	classes := make([]int, nMethods)
	for mi := range classes {
		classes[mi] = (i*3 + mi) % perf.NumClasses
	}
	return classes
}

// trainModel fits the suite's prediction model (shared by the predict and
// serve benchmarks; pipeline/train-trees re-times the same fit).
func (sr *suiteRun) trainModel(span *obs.Span) *core.WISE {
	if sr.failed() {
		return nil
	}
	sp := span.Child("train-model")
	defer sp.End()
	w, err := core.Train(sr.trainLabels(), ml.DefaultTreeConfig(), features.DefaultConfig(), sr.mach)
	if err != nil {
		sr.failf("bench: training suite model: %w", err)
		return nil
	}
	return w
}

// pipelineBenches times the one-shot pipeline stages of pipelineStages.
func (sr *suiteRun) pipelineBenches(span *obs.Span, specs []MatrixSpec, matrices []*matrix.CSR) {
	if sr.failed() || len(matrices) == 0 {
		return
	}
	sp := span.Child("pipeline")
	defer sp.End()

	seed := sr.cfg.Seed
	sr.measure(pipelineStages[0], "pipeline", sr.heavy, func() {
		for _, spec := range specs {
			spec.Build(seed)
		}
	})

	smallest := matrices[0]
	est := costmodel.New(sr.mach)
	space := kernels.ModelSpace(sr.mach)
	sr.measure(pipelineStages[1], "pipeline", sr.heavy, func() {
		for _, method := range space {
			est.MethodCycles(smallest, method)
		}
	})

	labels := sr.trainLabels()
	sr.measure(pipelineStages[2], "pipeline", sr.heavy, func() {
		if _, err := core.Train(labels, ml.DefaultTreeConfig(), features.DefaultConfig(), sr.mach); err != nil {
			sr.failf("bench: pipeline/train-trees: %w", err)
		}
	})
}

// perMatrixBenches runs the kernels / convert / features / predict / serve
// groups for every corpus matrix.
func (sr *suiteRun) perMatrixBenches(span *obs.Span, specs []MatrixSpec, matrices []*matrix.CSR, w *core.WISE) {
	if sr.failed() {
		return
	}
	srv := sr.startServer(span)
	defer srv.close()
	// Helpers no-op once the run has failed or been cancelled, so the group
	// loop can finish cleanly and every span ends.
	for gi, group := range []string{"kernels", "convert", "features", "predict", "serve", "session"} {
		sp := span.Child(group)
		for i, spec := range specs {
			switch gi {
			case 0:
				sr.kernelBenches(spec, matrices[i])
			case 1:
				sr.convertBenches(spec, matrices[i])
			case 2:
				sr.featureBench(spec, matrices[i])
			case 3:
				sr.predictBench(spec, matrices[i], w)
			case 4:
				sr.serveBench(spec, matrices[i], srv)
			case 5:
				sr.sessionBench(spec, matrices[i], srv)
			}
		}
		sp.End()
	}
}

// kernelBenches measures every suite method on one matrix, serial and
// parallel.
func (sr *suiteRun) kernelBenches(spec MatrixSpec, m *matrix.CSR) {
	x := matrix.Iota(m.Cols)
	y := make([]float64, m.Rows)
	for _, method := range suiteMethods() {
		if sr.failed() {
			return
		}
		format := kernels.Build(m, method, sr.mach.RowBlock)
		sr.spmvSerial(spec, method, format, y, x)
		sr.spmvParallel(spec, method, format, y, x)
	}
}

// spmvSerial times the sequential kernel.
func (sr *suiteRun) spmvSerial(spec MatrixSpec, method kernels.Method, f kernels.Format, y, x []float64) {
	name := fmt.Sprintf("kernels/%s/%s/serial", spec.Name, method)
	sr.measure(name, "kernels", sr.opts, func() { f.SpMV(y, x) })
}

// spmvParallel times the parallel kernel under the configured worker count.
func (sr *suiteRun) spmvParallel(spec MatrixSpec, method kernels.Method, f kernels.Format, y, x []float64) {
	workers := sr.cfg.Workers
	name := fmt.Sprintf("kernels/%s/%s/parallel", spec.Name, method)
	sr.measure(name, "kernels", sr.opts, func() { f.SpMVParallel(y, x, workers) })
}

// convertBenches times format conversion (preprocessing) per method family.
func (sr *suiteRun) convertBenches(spec MatrixSpec, m *matrix.CSR) {
	for _, method := range convertMethods() {
		if sr.failed() {
			return
		}
		sr.convertBench(spec, m, method)
	}
}

// convertBench times one format build.
func (sr *suiteRun) convertBench(spec MatrixSpec, m *matrix.CSR, method kernels.Method) {
	rowBlock := sr.mach.RowBlock
	name := fmt.Sprintf("convert/%s/%s", spec.Name, method)
	sr.measure(name, "convert", sr.opts, func() { kernels.Build(m, method, rowBlock) })
}

// featureBench times the Table 2 feature pass (ctx-aware, the serving path).
func (sr *suiteRun) featureBench(spec MatrixSpec, m *matrix.CSR) {
	ctx := sr.ctx
	cfg := features.DefaultConfig()
	name := fmt.Sprintf("features/%s/extract", spec.Name)
	sr.measure(name, "features", sr.opts, func() {
		if _, err := features.ExtractCtx(ctx, m, cfg); err != nil {
			sr.failf("bench: %s: %w", name, err)
		}
	})
}

// predictBench times end-to-end selection: feature extraction, all
// per-method trees, and the tie-breaking selector.
func (sr *suiteRun) predictBench(spec MatrixSpec, m *matrix.CSR, w *core.WISE) {
	if w == nil {
		return
	}
	ctx := sr.ctx
	name := fmt.Sprintf("predict/%s/select", spec.Name)
	sr.measure(name, "predict", sr.opts, func() {
		if _, err := w.SelectCtx(ctx, m); err != nil {
			sr.failf("bench: %s: %w", name, err)
		}
	})
}

// benchServer is the suite's wise-serve instance: a real serve.Server
// behind an httptest listener, with its model file in a temp dir. A second
// shadow-enabled server (registry-backed, every request sampled) quantifies
// the overhead the self-healing loop adds to the request path — by design
// within the comparator's noise threshold, since measurement runs off-path.
type benchServer struct {
	ts       *httptest.Server
	tsShadow *httptest.Server
	dir      string
	stop     func() // cancels + joins the shadow server's feedback loop
}

func (b *benchServer) close() {
	if b == nil {
		return
	}
	if b.stop != nil {
		b.stop()
	}
	if b.ts != nil {
		b.ts.Close()
	}
	if b.tsShadow != nil {
		b.tsShadow.Close()
	}
	if b.dir != "" {
		if err := os.RemoveAll(b.dir); err != nil {
			obs.Verbosef("bench: cleaning up %s: %v", b.dir, err)
		}
	}
}

// startServer saves the suite model and boots the HTTP server the serve
// round-trip benchmarks hit. Failures mark the run failed and return a
// server whose close() is a no-op.
func (sr *suiteRun) startServer(span *obs.Span) *benchServer {
	if sr.failed() {
		return &benchServer{}
	}
	sp := span.Child("start-server")
	defer sp.End()
	dir, err := os.MkdirTemp("", "wise-bench-suite-")
	if err != nil {
		sr.failf("bench: temp dir for serve model: %w", err)
		return &benchServer{}
	}
	b := &benchServer{dir: dir}
	modelPath := filepath.Join(dir, "models.json")
	w, err := core.Train(sr.trainLabels(), ml.DefaultTreeConfig(), features.DefaultConfig(), sr.mach)
	if err != nil {
		sr.failf("bench: training serve model: %w", err)
		return b
	}
	if err := w.Save(modelPath); err != nil {
		sr.failf("bench: saving serve model: %w", err)
		return b
	}
	s, err := serve.New(serve.Config{ModelPath: modelPath, Mach: sr.mach, ReloadPoll: -1})
	if err != nil {
		sr.failf("bench: starting serve: %w", err)
		return b
	}
	s.SetReady(true)
	b.ts = httptest.NewServer(s.Handler())

	// The shadow variant: registry-backed, every request sampled. The
	// retrain floor is set unreachably high so the loop measures and
	// detects but never swaps models mid-benchmark.
	sh, err := serve.New(serve.Config{
		ModelPath:         modelPath,
		RegistryDir:       filepath.Join(dir, "registry"),
		Mach:              sr.mach,
		ReloadPoll:        -1,
		ShadowRate:        1,
		RetrainMinSamples: 1 << 30,
	})
	if err != nil {
		sr.failf("bench: starting shadow serve: %w", err)
		return b
	}
	sh.SetReady(true)
	fbCtx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		sh.RunFeedback(fbCtx)
	}()
	b.stop = func() {
		cancel()
		<-done
	}
	b.tsShadow = httptest.NewServer(sh.Handler())
	return b
}

// serveBench times the full wise-serve round-trip — MatrixMarket body
// upload, server-side parse + feature extraction + prediction, JSON
// response — against both the plain server and the shadow-sampling one, so
// the comparator gates the self-healing loop's on-path overhead.
func (sr *suiteRun) serveBench(spec MatrixSpec, m *matrix.CSR, srv *benchServer) {
	if sr.failed() || srv.ts == nil {
		return
	}
	var body bytes.Buffer
	if err := matrix.WriteMatrixMarket(&body, m); err != nil {
		sr.failf("bench: serializing %s: %w", spec.Name, err)
		return
	}
	payload := body.Bytes()
	sr.serveRoundTrip(fmt.Sprintf("serve/%s/roundtrip", spec.Name), srv.ts, payload)
	if srv.tsShadow != nil {
		sr.serveRoundTrip(fmt.Sprintf("serve/%s/roundtrip-shadow", spec.Name), srv.tsShadow, payload)
	}
}

// sessionBench times the stateful execution endpoint cold vs warm on the
// same matrix. Cold defeats the content-addressed cache by inserting a
// fresh nonce comment into the MatrixMarket body every run, so each request
// pays parse + feature extraction + prediction + format conversion; warm
// uploads once via /matrix and executes by fingerprint, so each request is
// pure kernel execution. The cold/warm gap in BENCH_*.json is the recorded
// amortization win of prepared sessions (RESILIENCE.md "Stateful serving").
func (sr *suiteRun) sessionBench(spec MatrixSpec, m *matrix.CSR, srv *benchServer) {
	if sr.failed() || srv.ts == nil {
		return
	}
	var body bytes.Buffer
	if err := matrix.WriteMatrixMarket(&body, m); err != nil {
		sr.failf("bench: serializing %s: %w", spec.Name, err)
		return
	}
	mm := body.String()
	nl := strings.IndexByte(mm, '\n')
	if nl < 0 {
		sr.failf("bench: session/%s: malformed MatrixMarket body", spec.Name)
		return
	}
	head, rest := mm[:nl+1], mm[nl+1:]

	nonce := 0
	sr.sessionPost(fmt.Sprintf("session/%s/spmv-cold", spec.Name), srv, func() []byte {
		nonce++ // unique body each run -> unique fingerprint -> full cold path
		return sessionPayload("matrix", head+fmt.Sprintf("%% nonce %d\n", nonce)+rest)
	})

	resp, err := srv.ts.Client().Post(srv.ts.URL+"/matrix", "text/plain", bytes.NewReader(body.Bytes()))
	if err != nil {
		sr.failf("bench: session/%s: upload: %w", spec.Name, err)
		return
	}
	var stored struct {
		Fingerprint string `json:"fingerprint"`
		Stored      bool   `json:"stored"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stored)
	if cerr := resp.Body.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil || resp.StatusCode != http.StatusOK || !stored.Stored {
		sr.failf("bench: session/%s: upload: HTTP %d stored=%v err=%v", spec.Name, resp.StatusCode, stored.Stored, err)
		return
	}
	warm := sessionPayload("fingerprint", stored.Fingerprint)
	sr.sessionPost(fmt.Sprintf("session/%s/spmv-warm", spec.Name), srv, func() []byte { return warm })
}

// sessionPayload encodes a one-field /spmv request body.
func sessionPayload(field, value string) []byte {
	data, err := json.Marshal(map[string]string{field: value})
	if err != nil {
		panic(err) // a map[string]string cannot fail to encode
	}
	return data
}

// sessionPost measures POST /spmv round-trips; payload is re-evaluated per
// run so the cold benchmark can vary the body.
func (sr *suiteRun) sessionPost(name string, srv *benchServer, payload func() []byte) {
	ctx := sr.ctx
	client := srv.ts.Client()
	url := srv.ts.URL + "/spmv"
	sr.measure(name, "session", sr.opts, func() {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload()))
		if err != nil {
			sr.failf("bench: %s: %w", name, err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			sr.failf("bench: %s: %w", name, err)
			return
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			sr.failf("bench: %s: reading response: %w", name, err)
		}
		if err := resp.Body.Close(); err != nil {
			sr.failf("bench: %s: closing response: %w", name, err)
		}
		if resp.StatusCode != http.StatusOK {
			sr.failf("bench: %s: HTTP %d", name, resp.StatusCode)
		}
	})
}

// serveRoundTrip measures POST /predict round-trips against one server.
func (sr *suiteRun) serveRoundTrip(name string, ts *httptest.Server, payload []byte) {
	ctx := sr.ctx
	client := ts.Client()
	url := ts.URL + "/predict"
	sr.measure(name, "serve", sr.opts, func() {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
		if err != nil {
			sr.failf("bench: %s: %w", name, err)
			return
		}
		resp, err := client.Do(req)
		if err != nil {
			sr.failf("bench: %s: %w", name, err)
			return
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			sr.failf("bench: %s: reading response: %w", name, err)
		}
		if err := resp.Body.Close(); err != nil {
			sr.failf("bench: %s: closing response: %w", name, err)
		}
		if resp.StatusCode != http.StatusOK {
			sr.failf("bench: %s: HTTP %d", name, resp.StatusCode)
		}
	})
}
