package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"wise/internal/resilience"
)

// SchemaVersion is the BENCH_*.json schema this tool writes and reads. It
// bumps only when the Report shape changes incompatibly; the comparator
// refuses cross-version comparisons (exit 2 in the CLI) instead of
// mis-reading old trajectory points.
const SchemaVersion = 1

// ErrSchema marks a BENCH file whose schema version this tool cannot read.
var ErrSchema = errors.New("unsupported BENCH schema version")

// Env is the environment block of a report: everything about the host that
// legitimately moves the numbers. Two reports are comparable in spirit when
// their Env matches; the comparator prints both either way.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CurrentEnv captures the running process's environment block.
func CurrentEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Report is one suite run: the preset and seed that determine the benchmark
// list, the environment block, and one Result per benchmark. Persisted as
// BENCH_<n>.json (see BENCHMARKS.md for the trajectory contract).
type Report struct {
	Schema    int      `json:"schema"`
	Preset    string   `json:"preset"`
	Seed      int64    `json:"seed"`
	TimeScale float64  `json:"time_scale"`
	TakenAt   string   `json:"taken_at"` // RFC3339; informational, never compared
	Env       Env      `json:"env"`
	Results   []Result `json:"results"`
}

// stamp fills the informational timestamp. Wall-clock never feeds anything
// but this display field.
func (r *Report) stamp() {
	r.TakenAt = time.Now().UTC().Format(time.RFC3339)
}

// Find returns the result with the given benchmark name, or nil.
func (r *Report) Find(name string) *Result {
	for i := range r.Results {
		if r.Results[i].Name == name {
			return &r.Results[i]
		}
	}
	return nil
}

// WriteFile atomically persists the report as indented JSON (temp + fsync +
// rename via internal/resilience, so a crash never leaves a truncated
// trajectory point).
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding report: %w", err)
	}
	if err := resilience.AtomicWriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	return nil
}

// ReadReport loads and validates a BENCH_*.json file. A schema-version
// mismatch returns an error wrapping ErrSchema that names the file, which
// the CLI maps to exit 2.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: reading %s: %w", path, err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("bench: %s: schema version %d: %w (this tool reads version %d)",
			path, r.Schema, ErrSchema, SchemaVersion)
	}
	if len(r.Results) == 0 {
		return nil, fmt.Errorf("bench: %s: no results in report", path)
	}
	return &r, nil
}

// String renders the report as an aligned text table, grouped in result
// order (the suite already emits groups contiguously).
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== bench suite %s (seed %d, schema %d, go %s, %s/%s, %d CPU, GOMAXPROCS %d)\n",
		r.Preset, r.Seed, r.Schema, r.Env.GoVersion, r.Env.GOOS, r.Env.GOARCH, r.Env.NumCPU, r.Env.GOMAXPROCS)
	fmt.Fprintf(&b, "%-58s %6s %12s %12s %12s %10s\n", "benchmark", "runs", "min", "median", "p95", "allocs/op")
	for _, res := range r.Results {
		fmt.Fprintf(&b, "%-58s %6d %12s %12s %12s %10.1f\n",
			res.Name, res.Runs,
			fmtNs(res.NsMin), fmtNs(res.NsMedian), fmtNs(res.NsP95), res.AllocsPerOp)
	}
	return b.String()
}

// fmtNs renders a nanosecond quantity as a rounded duration.
func fmtNs(ns float64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(time.Nanosecond).String()
	}
}

// Groups returns the distinct result groups in first-appearance order.
func (r *Report) Groups() []string {
	seen := make(map[string]bool, 8)
	out := make([]string, 0, 8)
	for _, res := range r.Results {
		if !seen[res.Group] {
			seen[res.Group] = true
			out = append(out, res.Group)
		}
	}
	return out
}

// GroupMedianSeconds sums the median time of every benchmark per group —
// the per-stage cost table EXPERIMENTS.md derives from a suite run.
func (r *Report) GroupMedianSeconds() map[string]float64 {
	out := make(map[string]float64, 8)
	for _, res := range r.Results {
		out[res.Group] += res.NsMedian / 1e9
	}
	return out
}

// sortedResultNames returns all benchmark names, sorted — the shape
// fingerprint used by determinism tests and the comparator's matching.
func sortedResultNames(rs []Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Name
	}
	sort.Strings(out)
	return out
}
