package bench

import (
	"strings"
	"testing"
)

func TestLookupPreset(t *testing.T) {
	for _, name := range []string{"S", "s", "M", "paper", "PAPER"} {
		if _, ok := LookupPreset(name); !ok {
			t.Errorf("LookupPreset(%q) not found", name)
		}
	}
	if _, ok := LookupPreset("XL"); ok {
		t.Error("LookupPreset(XL) found a preset that should not exist")
	}
}

func TestPresetsOrderedAndComplete(t *testing.T) {
	names := PresetNames()
	want := []string{"S", "M", "L", "paper"}
	if len(names) != len(want) {
		t.Fatalf("PresetNames() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("preset %d = %s, want %s", i, names[i], n)
		}
	}
	for _, p := range Presets() {
		if len(p.Matrices) == 0 {
			t.Errorf("preset %s has no matrices", p.Name)
		}
		if p.MaxTime <= 0 || p.MinRuns < 1 || p.MaxRuns < p.MinRuns {
			t.Errorf("preset %s has a degenerate budget: %+v", p.Name, p)
		}
		if p.Expected == "" || p.Description == "" {
			t.Errorf("preset %s missing -list text", p.Name)
		}
	}
}

func TestListPresetsTable(t *testing.T) {
	out := ListPresets()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != len(Presets())+1 {
		t.Fatalf("ListPresets() has %d lines, want header + %d presets:\n%s", len(lines), len(Presets()), out)
	}
	for _, col := range []string{"preset", "matrices", "benchmarks", "expected"} {
		if !strings.Contains(lines[0], col) {
			t.Errorf("header missing %q: %s", col, lines[0])
		}
	}
	for _, p := range Presets() {
		if !strings.Contains(out, p.Name) || !strings.Contains(out, p.Expected) {
			t.Errorf("ListPresets() missing row for %s:\n%s", p.Name, out)
		}
	}
}

func TestMatrixSpecBuildDeterministic(t *testing.T) {
	for _, p := range Presets()[:1] { // S covers four distinct kinds
		for _, spec := range p.Matrices {
			a := spec.Build(p.Seed)
			b := spec.Build(p.Seed)
			if a.Rows != b.Rows || a.NNZ() != b.NNZ() {
				t.Fatalf("%s: two builds differ: %dx%d nnz %d vs %dx%d nnz %d",
					spec.Name, a.Rows, a.Cols, a.NNZ(), b.Rows, b.Cols, b.NNZ())
			}
			for r := 0; r <= a.Rows; r++ {
				if a.RowPtr[r] != b.RowPtr[r] {
					t.Fatalf("%s: row pointers diverge at row %d", spec.Name, r)
				}
			}
		}
	}
}

func TestSpecOffsetVariesByName(t *testing.T) {
	if specOffset("ms_r11_d8") == specOffset("rgg_r11_d6") {
		t.Error("distinct spec names share a seed offset")
	}
	if specOffset("a") != specOffset("a") {
		t.Error("specOffset is not stable")
	}
}

func TestSortSpecsBySize(t *testing.T) {
	specs := []MatrixSpec{{Name: "big", Rows: 100}, {Name: "small", Rows: 10}, {Name: "mid", Rows: 50}}
	got := sortSpecsBySize(specs)
	if got[0].Name != "small" || got[1].Name != "mid" || got[2].Name != "big" {
		t.Errorf("sortSpecsBySize = %v", got)
	}
	if specs[0].Name != "big" {
		t.Error("sortSpecsBySize mutated its input")
	}
}
