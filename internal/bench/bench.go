// Package bench is the preset benchmark harness behind `wise-bench -suite`
// (BENCHMARKS.md): deterministic wall-clock measurement of every hot path of
// the reproduction — SpMV kernels, format conversion, feature extraction,
// end-to-end prediction, and a wise-serve HTTP round-trip — with warmup,
// repetition, per-benchmark time budgets, and noise-aware summary statistics
// (min / median / p95, allocs per op) computed with internal/stats.
//
// One suite run produces a schema-versioned Report that `wise-bench -o`
// persists as a BENCH_<n>.json trajectory point; Compare diffs two reports
// with a noise threshold so `scripts/check.sh -bench-gate` and PR reviews can
// prove a hot path got faster — or catch one getting slower. The suite is
// deterministic in shape: the benchmark list, matrix seeds, and environment
// schema are functions of the preset alone, never of measured time.
package bench

import (
	"runtime"
	"time"

	"wise/internal/obs"
	"wise/internal/stats"
)

// Observability instruments (documented in OBSERVABILITY.md).
var (
	benchmarksRun = obs.NewCounter("bench.benchmarks_run")
	runsTotal     = obs.NewCounter("bench.runs_total")
)

// Options bounds one benchmark's measurement loop. Zero values are clamped to
// the minimum viable loop (no warmup, one run, 1ms budget), so a zero Options
// still measures something rather than spinning forever or not at all.
type Options struct {
	Warmup  int           // untimed runs before measurement starts
	MinRuns int           // timed runs taken even if MaxTime is exceeded
	MaxRuns int           // hard repetition cap
	MaxTime time.Duration // time budget for the timed loop (checked after MinRuns)
}

func (o Options) withDefaults() Options {
	if o.Warmup < 0 {
		o.Warmup = 0
	}
	if o.MinRuns < 1 {
		o.MinRuns = 1
	}
	if o.MaxRuns < o.MinRuns {
		o.MaxRuns = o.MinRuns
	}
	if o.MaxTime < time.Millisecond {
		o.MaxTime = time.Millisecond
	}
	return o
}

// Scale multiplies the time budget by f (the CLI's -time-scale flag: <1
// shrinks a preset for smoke runs, >1 stretches it for quieter statistics).
// Non-positive factors are ignored.
func (o Options) Scale(f float64) Options {
	if f <= 0 {
		return o
	}
	o.MaxTime = time.Duration(float64(o.MaxTime) * f)
	return o
}

// Result is one benchmark's summary: repetition count and noise-aware
// nanosecond statistics over the individual timed runs. Min is the
// least-noisy single run (the classic "best of N"), Median the robust
// central tendency the comparator gates on, and P95 the tail that admission
// budgets care about. AllocsPerOp and BytesPerOp are averaged over the timed
// loop from runtime.MemStats deltas.
type Result struct {
	Name        string  `json:"name"`
	Group       string  `json:"group"`
	Runs        int     `json:"runs"`
	NsMin       float64 `json:"ns_min"`
	NsMedian    float64 `json:"ns_median"`
	NsP95       float64 `json:"ns_p95"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// Measure runs fn under the options and summarizes the timed runs. The
// timing loop records one wall-clock sample per run (duration measurement
// only — no wall-clock value ever feeds a result shape or a seed, keeping
// the package inside the determinism lint contract).
func Measure(name, group string, opts Options, fn func()) Result {
	opts = opts.withDefaults()
	for i := 0; i < opts.Warmup; i++ {
		fn()
	}
	samples := make([]float64, 0, opts.MaxRuns)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	loopStart := time.Now()
	for len(samples) < opts.MaxRuns {
		t0 := time.Now()
		fn()
		samples = append(samples, float64(time.Since(t0)))
		if len(samples) >= opts.MinRuns && time.Since(loopStart) >= opts.MaxTime {
			break
		}
	}
	runtime.ReadMemStats(&after)
	n := float64(len(samples))
	benchmarksRun.Inc()
	runsTotal.Add(int64(len(samples)))
	return Result{
		Name:        name,
		Group:       group,
		Runs:        len(samples),
		NsMin:       stats.Percentile(samples, 0),
		NsMedian:    stats.Percentile(samples, 50),
		NsP95:       stats.Percentile(samples, 95),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / n,
	}
}
