package bench

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// runS runs the smoke preset at a tiny time scale: every benchmark takes its
// MinRuns and stops, so the test exercises the full suite shape in seconds.
func runS(t *testing.T) *Report {
	t.Helper()
	rep, err := RunSuite(context.Background(), SuiteConfig{Preset: "S", TimeScale: 0.02})
	if err != nil {
		t.Fatalf("RunSuite(S): %v", err)
	}
	return rep
}

func TestRunSuiteShapeIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run in -short mode")
	}
	a := runS(t)
	b := runS(t)

	p, _ := LookupPreset("S")
	if len(a.Results) != p.BenchmarkCount() {
		t.Errorf("suite emitted %d results, BenchmarkCount predicts %d — update the formula",
			len(a.Results), p.BenchmarkCount())
	}
	namesA, namesB := sortedResultNames(a.Results), sortedResultNames(b.Results)
	if len(namesA) != len(namesB) {
		t.Fatalf("two runs differ in size: %d vs %d", len(namesA), len(namesB))
	}
	for i := range namesA {
		if namesA[i] != namesB[i] {
			t.Fatalf("benchmark list is not deterministic: %q vs %q at %d", namesA[i], namesB[i], i)
		}
	}
	if a.Schema != SchemaVersion || a.Preset != "S" || a.Seed != p.Seed {
		t.Errorf("report header wrong: %+v", a)
	}
	if a.Env != CurrentEnv() {
		t.Errorf("env block not captured: %+v", a.Env)
	}

	// Every group the suite promises is present.
	groups := make(map[string]bool)
	for _, g := range a.Groups() {
		groups[g] = true
	}
	for _, want := range []string{"pipeline", "kernels", "convert", "features", "predict", "serve", "session"} {
		if !groups[want] {
			t.Errorf("suite missing group %q (have %v)", want, a.Groups())
		}
	}
	for _, res := range a.Results {
		if res.Runs < 1 || res.NsMedian <= 0 {
			t.Errorf("degenerate result: %+v", res)
		}
	}

	// A report written and re-read survives, and self-compares clean.
	c, err := Compare(a, b, DefaultCompareOptions())
	if err != nil {
		t.Fatalf("comparing two runs: %v", err)
	}
	if c.Added != 0 || c.Removed != 0 {
		t.Errorf("same preset, same seed, but shape moved: added=%d removed=%d", c.Added, c.Removed)
	}
}

func TestRunSuiteUnknownPreset(t *testing.T) {
	_, err := RunSuite(context.Background(), SuiteConfig{Preset: "XL"})
	if err == nil {
		t.Fatal("unknown preset accepted")
	}
	if !strings.Contains(err.Error(), "XL") {
		t.Errorf("error does not name the preset: %v", err)
	}
}

func TestRunSuiteCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunSuite(ctx, SuiteConfig{Preset: "S", TimeScale: 0.02})
	if err == nil {
		t.Fatal("cancelled suite returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not wrap context.Canceled: %v", err)
	}
	if rep == nil {
		t.Fatal("cancelled suite should still return its partial report")
	}
	if len(rep.Results) != 0 {
		t.Errorf("pre-cancelled run measured %d benchmarks, want 0", len(rep.Results))
	}
}

func TestSuiteMethodsCoverFamilies(t *testing.T) {
	ms := suiteMethods()
	if len(ms) != 5 {
		t.Fatalf("suiteMethods() = %d methods, want 5 (one per family)", len(ms))
	}
	if len(convertMethods()) != len(ms)-1 {
		t.Errorf("convertMethods() should drop only CSR: %d vs %d", len(convertMethods()), len(ms))
	}
	seen := make(map[string]bool, len(ms))
	for _, m := range ms {
		s := m.String()
		if seen[s] {
			t.Errorf("duplicate suite method %s", s)
		}
		seen[s] = true
	}
}
