package bench

import (
	"testing"
	"time"
)

func TestOptionsWithDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Warmup != 0 || o.MinRuns != 1 || o.MaxRuns != 1 || o.MaxTime != time.Millisecond {
		t.Fatalf("zero options not clamped to minimum viable loop: %+v", o)
	}
	o = Options{Warmup: -3, MinRuns: 5, MaxRuns: 2, MaxTime: -time.Second}.withDefaults()
	if o.Warmup != 0 {
		t.Errorf("negative warmup not clamped: %d", o.Warmup)
	}
	if o.MaxRuns != 5 {
		t.Errorf("MaxRuns < MinRuns not raised to MinRuns: %d", o.MaxRuns)
	}
	if o.MaxTime != time.Millisecond {
		t.Errorf("negative MaxTime not clamped: %v", o.MaxTime)
	}
}

func TestOptionsScale(t *testing.T) {
	o := Options{MaxTime: time.Second}
	if got := o.Scale(0.5).MaxTime; got != 500*time.Millisecond {
		t.Errorf("Scale(0.5) = %v, want 500ms", got)
	}
	if got := o.Scale(2).MaxTime; got != 2*time.Second {
		t.Errorf("Scale(2) = %v, want 2s", got)
	}
	if got := o.Scale(0).MaxTime; got != time.Second {
		t.Errorf("Scale(0) should be ignored, got %v", got)
	}
	if got := o.Scale(-1).MaxTime; got != time.Second {
		t.Errorf("Scale(-1) should be ignored, got %v", got)
	}
}

func TestMeasureHitsMaxRuns(t *testing.T) {
	calls := 0
	res := Measure("t/maxruns", "test", Options{Warmup: 2, MinRuns: 1, MaxRuns: 7, MaxTime: time.Hour}, func() {
		calls++
	})
	if res.Runs != 7 {
		t.Fatalf("Runs = %d, want MaxRuns 7 (fn is trivial, budget is huge)", res.Runs)
	}
	if calls != 2+7 {
		t.Errorf("fn called %d times, want warmup 2 + runs 7", calls)
	}
	if res.Name != "t/maxruns" || res.Group != "test" {
		t.Errorf("name/group not carried: %+v", res)
	}
}

func TestMeasureHonorsMinRunsOverBudget(t *testing.T) {
	res := Measure("t/minruns", "test", Options{MinRuns: 4, MaxRuns: 100, MaxTime: time.Nanosecond}, func() {
		time.Sleep(200 * time.Microsecond)
	})
	if res.Runs < 4 {
		t.Fatalf("Runs = %d, want at least MinRuns 4 even past the budget", res.Runs)
	}
	if res.Runs > 5 {
		t.Errorf("Runs = %d: budget exceeded after MinRuns but loop kept going", res.Runs)
	}
}

func TestMeasureStatsOrdering(t *testing.T) {
	res := Measure("t/stats", "test", Options{MinRuns: 10, MaxRuns: 10, MaxTime: time.Hour}, func() {
		time.Sleep(50 * time.Microsecond)
	})
	if res.NsMin <= 0 {
		t.Fatalf("NsMin = %v, want > 0", res.NsMin)
	}
	if !(res.NsMin <= res.NsMedian && res.NsMedian <= res.NsP95) {
		t.Fatalf("stats out of order: min %v median %v p95 %v", res.NsMin, res.NsMedian, res.NsP95)
	}
	if res.NsMin < float64(50*time.Microsecond) {
		t.Errorf("NsMin %v below the sleep floor of 50µs", time.Duration(res.NsMin))
	}
}

func TestMeasureAllocsPerOp(t *testing.T) {
	var sink []byte
	res := Measure("t/allocs", "test", Options{MinRuns: 20, MaxRuns: 20, MaxTime: time.Hour}, func() {
		sink = make([]byte, 1<<12)
	})
	_ = sink
	if res.AllocsPerOp < 1 {
		t.Errorf("AllocsPerOp = %v, want >= 1 for a 4KiB make per op", res.AllocsPerOp)
	}
	if res.BytesPerOp < 1<<12 {
		t.Errorf("BytesPerOp = %v, want >= 4096", res.BytesPerOp)
	}
}
