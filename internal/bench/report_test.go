package bench

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		Schema: SchemaVersion, Preset: "S", Seed: 1, TimeScale: 1,
		TakenAt: "2026-08-08T00:00:00Z", Env: CurrentEnv(),
		Results: []Result{
			{Name: "kernels/a/serial", Group: "kernels", Runs: 5, NsMin: 100, NsMedian: 200, NsP95: 300},
			{Name: "convert/a", Group: "convert", Runs: 5, NsMin: 1e6, NsMedian: 2e6, NsP95: 3e6, AllocsPerOp: 9},
		},
	}
}

func TestReportWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_rt.json")
	want := sampleReport()
	if err := want.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatalf("ReadReport: %v", err)
	}
	if got.Schema != SchemaVersion || got.Preset != "S" || got.Seed != 1 {
		t.Errorf("header not round-tripped: %+v", got)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("results count %d, want %d", len(got.Results), len(want.Results))
	}
	if got.Results[1].NsMedian != 2e6 || got.Results[1].AllocsPerOp != 9 {
		t.Errorf("result fields not round-tripped: %+v", got.Results[1])
	}
}

func TestReadReportSchemaMismatchNamesFile(t *testing.T) {
	path := filepath.Join("testdata", "BENCH_schema99.json")
	_, err := ReadReport(path)
	if err == nil {
		t.Fatal("ReadReport accepted schema version 99")
	}
	if !errors.Is(err, ErrSchema) {
		t.Errorf("error does not wrap ErrSchema: %v", err)
	}
	if !strings.Contains(err.Error(), path) {
		t.Errorf("error does not name the offending file: %v", err)
	}
	if !strings.Contains(err.Error(), "99") {
		t.Errorf("error does not state the file's version: %v", err)
	}
}

func TestReadReportErrors(t *testing.T) {
	if _, err := ReadReport(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"schema":1,"results":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(empty); err == nil {
		t.Error("report with no results accepted")
	}
}

func TestReportFindAndGroups(t *testing.T) {
	r := sampleReport()
	if res := r.Find("convert/a"); res == nil || res.Group != "convert" {
		t.Errorf("Find(convert/a) = %+v", res)
	}
	if res := r.Find("missing"); res != nil {
		t.Errorf("Find(missing) = %+v, want nil", res)
	}
	groups := r.Groups()
	if len(groups) != 2 || groups[0] != "kernels" || groups[1] != "convert" {
		t.Errorf("Groups() = %v", groups)
	}
	secs := r.GroupMedianSeconds()
	if secs["convert"] != 2e6/1e9 {
		t.Errorf("GroupMedianSeconds[convert] = %v", secs["convert"])
	}
}

func TestReportStringHasHeaderAndRows(t *testing.T) {
	s := sampleReport().String()
	for _, want := range []string{"bench suite S", "kernels/a/serial", "convert/a", "median"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
