package bench

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// readFixture loads a golden report from testdata.
func readFixture(t *testing.T, name string) *Report {
	t.Helper()
	r, err := ReadReport(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("reading fixture %s: %v", name, err)
	}
	return r
}

// deltaByName finds one comparison row.
func deltaByName(t *testing.T, c *Comparison, name string) Delta {
	t.Helper()
	for _, d := range c.Deltas {
		if d.Name == name {
			return d
		}
	}
	t.Fatalf("no delta named %q in %+v", name, c.Deltas)
	return Delta{}
}

func TestCompareGoldenImprovement(t *testing.T) {
	c, err := Compare(readFixture(t, "BENCH_old.json"), readFixture(t, "BENCH_improved.json"), DefaultCompareOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressed != 0 || c.Improved != 1 {
		t.Fatalf("regressed=%d improved=%d, want 0/1", c.Regressed, c.Improved)
	}
	d := deltaByName(t, c, "kernels/a/CSR[Dyn]/serial")
	if d.Status != StatusImproved {
		t.Errorf("kernel delta status = %s, want improved (−40%%)", d.Status)
	}
	// micro/tiny moved +80% but both medians sit under the 1µs noise floor:
	// timer granularity, never a verdict.
	if d := deltaByName(t, c, "micro/tiny"); d.Status != StatusOK {
		t.Errorf("sub-floor benchmark judged %s, want ok", d.Status)
	}
	// convert moved +5%, inside the 20% threshold.
	if d := deltaByName(t, c, "convert/a/SELLPACK[c=8,Dyn]"); d.Status != StatusOK {
		t.Errorf("within-noise benchmark judged %s, want ok", d.Status)
	}
}

func TestCompareGoldenRegression(t *testing.T) {
	c, err := Compare(readFixture(t, "BENCH_old.json"), readFixture(t, "BENCH_regressed.json"), DefaultCompareOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressed != 1 {
		t.Fatalf("Regressed = %d, want 1", c.Regressed)
	}
	d := deltaByName(t, c, "kernels/a/CSR[Dyn]/serial")
	if d.Status != StatusRegressed {
		t.Errorf("status = %s, want regressed (+50%%)", d.Status)
	}
	if d.Change < 0.49 || d.Change > 0.51 {
		t.Errorf("Change = %v, want ~0.50", d.Change)
	}
	if !strings.Contains(c.String(), "regressed") {
		t.Errorf("String() does not surface the regression:\n%s", c.String())
	}
}

func TestCompareGoldenWithinNoise(t *testing.T) {
	c, err := Compare(readFixture(t, "BENCH_old.json"), readFixture(t, "BENCH_noise.json"), DefaultCompareOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressed != 0 || c.Improved != 0 {
		t.Fatalf("noise run judged: regressed=%d improved=%d", c.Regressed, c.Improved)
	}
	if c.Compared != 3 {
		t.Errorf("Compared = %d, want 3", c.Compared)
	}
}

func TestCompareGoldenAddedRemoved(t *testing.T) {
	c, err := Compare(readFixture(t, "BENCH_old.json"), readFixture(t, "BENCH_reshaped.json"), DefaultCompareOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.Added != 1 || c.Removed != 1 {
		t.Fatalf("added=%d removed=%d, want 1/1", c.Added, c.Removed)
	}
	// Shape changes are visible but never fail the gate.
	if c.Regressed != 0 {
		t.Errorf("added/removed counted as regression: %d", c.Regressed)
	}
	if d := deltaByName(t, c, "features/b/extract"); d.Status != StatusAdded {
		t.Errorf("new benchmark status = %s, want added", d.Status)
	}
	if d := deltaByName(t, c, "micro/tiny"); d.Status != StatusRemoved {
		t.Errorf("dropped benchmark status = %s, want removed", d.Status)
	}
}

func TestCompareSchemaMismatch(t *testing.T) {
	old := readFixture(t, "BENCH_old.json")
	other := readFixture(t, "BENCH_noise.json")
	other.Schema = 2
	_, err := Compare(old, other, DefaultCompareOptions())
	if !errors.Is(err, ErrSchema) {
		t.Fatalf("cross-schema compare error = %v, want ErrSchema", err)
	}
}

func TestCompareCustomThreshold(t *testing.T) {
	// At a 4% threshold the +10% kernel move in the noise fixture regresses
	// and the −5% convert move counts as an improvement.
	c, err := Compare(readFixture(t, "BENCH_old.json"), readFixture(t, "BENCH_noise.json"), CompareOptions{Threshold: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressed != 1 || c.Improved != 1 {
		t.Fatalf("at 4%%: regressed=%d improved=%d, want 1/1", c.Regressed, c.Improved)
	}
}
