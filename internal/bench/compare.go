package bench

import (
	"fmt"
	"strings"
)

// CompareOptions tunes the regression gate.
type CompareOptions struct {
	// Threshold is the relative median slowdown that counts as a regression
	// (0.20 = 20% slower). Wall-clock medians on shared CI hosts are noisy;
	// anything inside the threshold is reported as within-noise, not failed.
	Threshold float64
	// FloorNs ignores benchmarks whose medians are both below this many
	// nanoseconds: sub-microsecond timings are dominated by timer
	// granularity and scheduler jitter, not by the code under test.
	FloorNs float64
}

// DefaultCompareOptions returns the gate defaults: 20% threshold, 1µs floor.
func DefaultCompareOptions() CompareOptions {
	return CompareOptions{Threshold: 0.20, FloorNs: 1000}
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.Threshold <= 0 {
		o.Threshold = 0.20
	}
	if o.FloorNs < 0 {
		o.FloorNs = 0
	}
	return o
}

// DeltaStatus classifies one benchmark's old-vs-new movement.
type DeltaStatus string

// Delta statuses.
const (
	StatusOK        DeltaStatus = "ok"        // within noise (or under the floor)
	StatusImproved  DeltaStatus = "improved"  // faster beyond the threshold
	StatusRegressed DeltaStatus = "regressed" // slower beyond the threshold
	StatusAdded     DeltaStatus = "added"     // only in the new report
	StatusRemoved   DeltaStatus = "removed"   // only in the old report
)

// Delta is one benchmark's comparison row.
type Delta struct {
	Name   string
	Group  string
	OldNs  float64 // old median; 0 when added
	NewNs  float64 // new median; 0 when removed
	Change float64 // (new-old)/old; 0 when added/removed
	Status DeltaStatus
}

// Comparison is the outcome of diffing two reports.
type Comparison struct {
	OldEnv, NewEnv       Env
	Threshold            float64
	Deltas               []Delta
	Compared             int // benchmarks present in both reports
	Improved, Regressed  int
	Added, Removed       int
	EnvChanged           bool
	PresetChanged        bool
	OldPreset, NewPreset string
}

// Compare diffs two reports benchmark-by-benchmark on the median. Reports
// must share a schema version (ReadReport already pins files to the tool's
// version; the check here guards programmatic callers). Benchmarks present
// on one side only are reported as added/removed, which never fails the
// gate — shape changes are visible, not fatal.
func Compare(oldR, newR *Report, opts CompareOptions) (*Comparison, error) {
	if oldR.Schema != newR.Schema {
		return nil, fmt.Errorf("bench: %w: comparing schema %d against %d", ErrSchema, oldR.Schema, newR.Schema)
	}
	opts = opts.withDefaults()
	c := &Comparison{
		OldEnv: oldR.Env, NewEnv: newR.Env,
		Threshold:     opts.Threshold,
		EnvChanged:    oldR.Env != newR.Env,
		PresetChanged: oldR.Preset != newR.Preset,
		OldPreset:     oldR.Preset, NewPreset: newR.Preset,
	}
	newByName := make(map[string]*Result, len(newR.Results))
	for i := range newR.Results {
		newByName[newR.Results[i].Name] = &newR.Results[i]
	}
	matched := make(map[string]bool, len(oldR.Results))
	c.Deltas = make([]Delta, 0, len(oldR.Results)+len(newR.Results))
	for i := range oldR.Results {
		o := &oldR.Results[i]
		n, ok := newByName[o.Name]
		if !ok {
			c.Removed++
			c.Deltas = append(c.Deltas, Delta{Name: o.Name, Group: o.Group, OldNs: o.NsMedian, Status: StatusRemoved})
			continue
		}
		matched[o.Name] = true
		c.Compared++
		c.Deltas = append(c.Deltas, classify(o, n, opts))
	}
	for i := range newR.Results {
		n := &newR.Results[i]
		if !matched[n.Name] {
			c.Added++
			c.Deltas = append(c.Deltas, Delta{Name: n.Name, Group: n.Group, NewNs: n.NsMedian, Status: StatusAdded})
		}
	}
	for _, d := range c.Deltas {
		switch d.Status {
		case StatusImproved:
			c.Improved++
		case StatusRegressed:
			c.Regressed++
		}
	}
	return c, nil
}

// classify turns one matched benchmark pair into a Delta.
func classify(o, n *Result, opts CompareOptions) Delta {
	d := Delta{Name: o.Name, Group: o.Group, OldNs: o.NsMedian, NewNs: n.NsMedian, Status: StatusOK}
	if o.NsMedian <= 0 {
		return d
	}
	d.Change = (n.NsMedian - o.NsMedian) / o.NsMedian
	if o.NsMedian < opts.FloorNs && n.NsMedian < opts.FloorNs {
		return d // both under the noise floor: never judged
	}
	switch {
	case d.Change > opts.Threshold:
		d.Status = StatusRegressed
	case d.Change < -opts.Threshold:
		d.Status = StatusImproved
	}
	return d
}

// String renders the comparison: one row per benchmark that moved (or
// appeared/disappeared), then a summary line. Within-noise benchmarks are
// counted, not listed.
func (c *Comparison) String() string {
	var b strings.Builder
	if c.PresetChanged {
		fmt.Fprintf(&b, "note: presets differ (%s vs %s); only shared benchmarks are compared\n", c.OldPreset, c.NewPreset)
	}
	if c.EnvChanged {
		fmt.Fprintf(&b, "note: environments differ (old: %+v; new: %+v); absolute deltas may reflect the host, not the code\n", c.OldEnv, c.NewEnv)
	}
	rows := 0
	for _, d := range c.Deltas {
		if d.Status == StatusOK {
			continue
		}
		if rows == 0 {
			fmt.Fprintf(&b, "%-58s %12s %12s %9s  %s\n", "benchmark", "old", "new", "delta", "status")
		}
		rows++
		fmt.Fprintf(&b, "%-58s %12s %12s %9s  %s\n",
			d.Name, fmtNs(d.OldNs), fmtNs(d.NewNs), fmtChange(d), d.Status)
	}
	fmt.Fprintf(&b, "compared %d benchmarks: %d regressed, %d improved, %d within noise (threshold ±%.0f%%), %d added, %d removed\n",
		c.Compared, c.Regressed, c.Improved, c.Compared-c.Regressed-c.Improved,
		c.Threshold*100, c.Added, c.Removed)
	return b.String()
}

// fmtChange renders a delta's relative change column.
func fmtChange(d Delta) string {
	if d.Status == StatusAdded || d.Status == StatusRemoved {
		return "—"
	}
	return fmt.Sprintf("%+.1f%%", d.Change*100)
}
