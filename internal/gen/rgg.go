package gen

import (
	"math"
	"math/rand"
	"sort"

	"wise/internal/matrix"
)

// RGG generates a random geometric graph: n vertices placed uniformly at
// random in the 2D unit square, with an edge between every pair at Euclidean
// distance below r = sqrt(degree / (n * pi)), the radius that yields the
// requested expected average degree (paper Section 4.5). The adjacency
// matrix is symmetric with unit values and no self loops.
//
// Vertices are sorted by grid cell (a space-filling row-major cell order)
// before ids are assigned, which mirrors the high spatial locality of
// road-network-style matrices: neighbours in space get nearby indices.
func RGG(rng *rand.Rand, n int, degree float64) *matrix.CSR {
	if n <= 0 {
		panic("gen: RGG needs n > 0")
	}
	r := math.Sqrt(degree / (float64(n) * math.Pi))
	if r > 1 {
		r = 1
	}
	type point struct{ x, y float64 }
	pts := make([]point, n)
	for i := range pts {
		pts[i] = point{rng.Float64(), rng.Float64()}
	}

	// Bucket vertices into a grid with cell size >= r so neighbours are in
	// the 3x3 cell neighbourhood.
	cells := int(1 / r)
	if cells < 1 {
		cells = 1
	}
	if cells > 4096 {
		cells = 4096
	}
	cellSize := 1.0 / float64(cells)
	cellOf := func(p point) (int, int) {
		cx := int(p.x / cellSize)
		cy := int(p.y / cellSize)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return cx, cy
	}

	// Assign ids in cell-major order for spatial locality.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	key := func(i int) int {
		cx, cy := cellOf(pts[i])
		return cy*cells + cx
	}
	sortByKey(order, key)
	id := make([]int32, n) // original index -> new id
	for newID, orig := range order {
		id[orig] = int32(newID)
	}

	buckets := make([][]int32, cells*cells)
	for i, p := range pts {
		cx, cy := cellOf(p)
		buckets[cy*cells+cx] = append(buckets[cy*cells+cx], int32(i))
	}

	coo := matrix.NewCOO(n, n)
	r2 := r * r
	for cy := 0; cy < cells; cy++ {
		for cx := 0; cx < cells; cx++ {
			for _, i := range buckets[cy*cells+cx] {
				// Scan the 3x3 neighbourhood; emit each undirected edge once
				// (i < j) and mirror it.
				for dy := -1; dy <= 1; dy++ {
					ny := cy + dy
					if ny < 0 || ny >= cells {
						continue
					}
					for dx := -1; dx <= 1; dx++ {
						nx := cx + dx
						if nx < 0 || nx >= cells {
							continue
						}
						for _, j := range buckets[ny*cells+nx] {
							if j <= i {
								continue
							}
							ddx := pts[i].x - pts[j].x
							ddy := pts[i].y - pts[j].y
							if ddx*ddx+ddy*ddy <= r2 {
								coo.Add(id[i], id[j], 1)
								coo.Add(id[j], id[i], 1)
							}
						}
					}
				}
			}
		}
	}
	return coo.ToCSR()
}

// sortByKey stably sorts order ascending by key(order[i]).
func sortByKey(order []int, key func(int) int) {
	sort.SliceStable(order, func(a, b int) bool { return key(order[a]) < key(order[b]) })
}
