package gen

import (
	"fmt"
	"math"
	"math/rand"

	"wise/internal/matrix"
	"wise/internal/obs"
)

// Class tags a corpus matrix with its generator family, matching the
// paper's legend in Figure 11 plus "sci" for the science-like set.
type Class string

// Corpus classes.
const (
	ClassHS  Class = "HS"  // RMAT high skew (Graph500)
	ClassMS  Class = "MS"  // RMAT medium skew
	ClassLS  Class = "LS"  // RMAT low skew
	ClassLL  Class = "LL"  // RMAT low locality (Erdos-Renyi)
	ClassML  Class = "ML"  // RMAT medium locality
	ClassHL  Class = "HL"  // RMAT high locality
	ClassRGG Class = "rgg" // random geometric graph
	ClassSci Class = "sci" // science-like (SuiteSparse stand-in)
)

// RMATClassParams maps each RMAT class to its Table 3 parameters.
var RMATClassParams = map[Class]RMATParams{
	ClassHS: HighSkew,
	ClassMS: MedSkew,
	ClassLS: LowSkew,
	ClassLL: LowLoc,
	ClassML: MedLoc,
	ClassHL: HighLoc,
}

// Labeled is a corpus matrix with provenance.
type Labeled struct {
	Name  string
	Class Class
	M     *matrix.CSR
}

// CorpusConfig controls corpus generation. The paper uses rows 2^20-2^26 and
// average degrees 4-128 on a 192 GB server; this reproduction scales row
// counts down (default 2^10-2^15) together with the machine model's cache
// sizes so every capacity crossover lands at the same normalized position.
type CorpusConfig struct {
	Seed      int64
	RowScales []float64 // log2 of row counts; fractional scales allowed (paper uses 2^24.58 etc.)
	Degrees   []float64 // average nonzeros per row
	MaxNNZ    int64     // per-matrix nonzero cap (paper: 2e9)
	SciCount  int       // number of science-like matrices (paper: 136)
}

// DefaultCorpusConfig returns the scaled-down default corpus: 7 random
// classes x 6 row scales x 5 degrees = 210 random matrices plus 68
// science-like ones.
func DefaultCorpusConfig() CorpusConfig {
	return CorpusConfig{
		Seed:      1,
		RowScales: []float64{10, 11, 12, 12.58, 13, 14},
		Degrees:   []float64{4, 8, 16, 32, 64},
		MaxNNZ:    1 << 22,
		SciCount:  68,
	}
}

// MediumCorpusConfig sits between the default and full corpora: large enough
// to measurably improve model accuracy (see EXPERIMENTS.md), small enough to
// label in minutes.
func MediumCorpusConfig() CorpusConfig {
	return CorpusConfig{
		Seed:      1,
		RowScales: []float64{10, 11, 12, 12.58, 13, 13.58, 14, 15},
		Degrees:   []float64{4, 8, 16, 24, 32, 48, 64},
		MaxNNZ:    1 << 22,
		SciCount:  100,
	}
}

// FullCorpusConfig approximates the paper's corpus shape (1,326 random + 136
// science-like) at reduced scale: 7 classes x 11 row scales x 9 degrees =
// 693 random matrices, 136 science-like.
func FullCorpusConfig() CorpusConfig {
	return CorpusConfig{
		Seed:      1,
		RowScales: []float64{10, 11, 12, 13, 14, 14.58, 15, 15.3, 15.58, 15.8, 16},
		Degrees:   []float64{4, 6, 8, 12, 16, 24, 32, 64, 128},
		MaxNNZ:    1 << 24,
		SciCount:  136,
	}
}

// RandomCorpus generates the RMAT + RGG matrices of the configuration: every
// class crossed with every row scale and degree, skipping combinations whose
// nonzero budget exceeds MaxNNZ (the paper's 2-billion-nonzero cap, scaled).
func RandomCorpus(cfg CorpusConfig) []Labeled {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []Labeled
	classes := []Class{ClassHS, ClassMS, ClassLS, ClassLL, ClassML, ClassHL, ClassRGG}
	for _, class := range classes {
		for _, rs := range cfg.RowScales {
			rows := int(math.Round(math.Pow(2, rs)))
			for _, deg := range cfg.Degrees {
				if int64(deg*float64(rows)) > cfg.MaxNNZ {
					continue
				}
				name := fmt.Sprintf("%s_r%g_d%g", class, rs, deg)
				var m *matrix.CSR
				if class == ClassRGG {
					m = RGG(rng, rows, deg)
				} else {
					m = RMATRows(rng, rows, deg, RMATClassParams[class])
					// Keep hub rows at paper-scale fractions; see CapRowDegree.
					m = CapRowDegree(rng, m, hubCap(m.NNZ()))
				}
				out = append(out, Labeled{Name: name, Class: class, M: m})
			}
		}
	}
	return out
}

// ScienceCorpus generates the SuiteSparse stand-in: a mix of banded,
// stencil, FEM-like, road-like (RGG) and a small power-law minority, sized
// within the configured row scales. The family mix is chosen so the corpus
// reproduces the paper's two measured SuiteSparse biases: P_R concentrated
// above 0.4 (Figure 7) and mostly modest average degrees (Figure 12b).
func ScienceCorpus(cfg CorpusConfig) []Labeled {
	rng := rand.New(rand.NewSource(cfg.Seed + 1000))
	var out []Labeled
	minScale, maxScale := cfg.RowScales[0], cfg.RowScales[len(cfg.RowScales)-1]
	pick := func(i, n int) int { // spread sizes across the scale range
		frac := float64(i) / float64(n)
		return int(math.Round(math.Pow(2, minScale+frac*(maxScale-minScale))))
	}
	i := 0
	for len(out) < cfg.SciCount {
		kind := i % 7
		n := pick(i%max(cfg.SciCount/2, 1), max(cfg.SciCount/2, 1))
		var (
			m    *matrix.CSR
			name string
		)
		switch kind {
		case 0:
			width := 1 + i%5
			offsets := make([]int, 0, 2*width+1)
			for o := -width; o <= width; o++ {
				offsets = append(offsets, o)
			}
			m = Banded(rng, n, offsets)
			name = fmt.Sprintf("sci_banded%d_n%d", width, n)
		case 1:
			g := int(math.Sqrt(float64(n)))
			m = Stencil2D(g, g, i%2 == 0)
			name = fmt.Sprintf("sci_stencil2d_g%d", g)
		case 2:
			g := int(math.Cbrt(float64(n)))
			m = Stencil3D(g, g, g)
			name = fmt.Sprintf("sci_stencil3d_g%d", g)
		case 3:
			bs := 4 + i%8
			m = FEMLike(rng, n, bs, 2+i%4)
			name = fmt.Sprintf("sci_fem_b%d_n%d", bs, n)
		case 4:
			m = RGG(rng, n, 4+float64(i%8))
			name = fmt.Sprintf("sci_road_n%d", n)
		case 5:
			maxDeg := 4 + 2*(i%3)
			m = IrregularBanded(rng, n, maxDeg, 8+n/64)
			name = fmt.Sprintf("sci_irregular%d_n%d", maxDeg, n)
		default:
			if i%18 == 5 { // small power-law minority, as in SuiteSparse
				m = PowerLawRows(rng, n, 2.1, 256)
				name = fmt.Sprintf("sci_powerlaw_n%d", n)
			} else {
				m = Banded(rng, n, []int{-n / 8, -1, 0, 1, n / 8})
				name = fmt.Sprintf("sci_bandedfar_n%d", n)
			}
		}
		if int64(m.NNZ()) <= cfg.MaxNNZ {
			out = append(out, Labeled{Name: name, Class: ClassSci, M: m})
		}
		i++
	}
	return out
}

// matricesGenerated counts corpus matrices produced (see OBSERVABILITY.md).
var matricesGenerated = obs.NewCounter("gen.matrices_generated")

// Corpus generates the full training/evaluation corpus: science-like plus
// random matrices, as in the paper's Section 5 (136 + 1,326, scaled).
func Corpus(cfg CorpusConfig) []Labeled {
	out := ScienceCorpus(cfg)
	out = append(out, RandomCorpus(cfg)...)
	matricesGenerated.Add(int64(len(out)))
	return out
}

// hubCap is the per-row degree cap for scaled RMAT matrices: 0.2% of the
// nonzeros, the hub fraction of a paper-scale (2^23-row) Graph500 matrix.
func hubCap(nnz int) int {
	cap := nnz / 500
	if cap < 32 {
		cap = 32
	}
	return cap
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
