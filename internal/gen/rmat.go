// Package gen generates the sparse matrix corpora WISE is trained and
// evaluated on: RMAT graphs with the paper's Table 3 parameter sets (skew
// classes HS/MS/LS and locality classes LL/ML/HL), random geometric graphs
// (RGG), and a synthetic "science-like" corpus standing in for the 136 large
// SuiteSparse matrices (banded, stencil, FEM-like structures with the P_R and
// column-count biases the paper measures in Figures 7 and 12b).
package gen

import (
	"fmt"
	"math/rand"

	"wise/internal/matrix"
)

// RMATParams are the four quadrant probabilities of the R-MAT recursive
// generator; they must be non-negative and sum to 1.
type RMATParams struct {
	A, B, C, D float64
}

// The paper's Table 3 parameter sets.
var (
	HighSkew = RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05} // Graph500, power law
	MedSkew  = RMATParams{A: 0.46, B: 0.22, C: 0.22, D: 0.10}
	LowSkew  = RMATParams{A: 0.35, B: 0.25, C: 0.25, D: 0.15}
	LowLoc   = RMATParams{A: 0.25, B: 0.25, C: 0.25, D: 0.25} // Erdos-Renyi
	MedLoc   = RMATParams{A: 0.35, B: 0.15, C: 0.15, D: 0.35}
	HighLoc  = RMATParams{A: 0.45, B: 0.05, C: 0.05, D: 0.45}
)

// Validate checks that the probabilities form a distribution.
func (p RMATParams) Validate() error {
	if p.A < 0 || p.B < 0 || p.C < 0 || p.D < 0 {
		return fmt.Errorf("gen: negative RMAT probability %+v", p)
	}
	sum := p.A + p.B + p.C + p.D
	if sum < 0.999999 || sum > 1.000001 {
		return fmt.Errorf("gen: RMAT probabilities sum to %v, want 1", sum)
	}
	return nil
}

// RMAT generates a directed graph adjacency matrix with 2^scale rows and
// columns and approximately avgDegree nonzeros per row, using the recursive
// quadrant-descent R-MAT procedure. Duplicate edges collapse during CSR
// conversion, so the realized degree is slightly below the target for dense
// or highly-skewed settings — the same behaviour as the reference generator.
// Values are 1.0 (pattern semantics, as for graph workloads).
func RMAT(rng *rand.Rand, scale int, avgDegree float64, p RMATParams) *matrix.CSR {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if scale < 0 || scale > 30 {
		panic(fmt.Sprintf("gen: RMAT scale %d out of range", scale))
	}
	n := 1 << scale
	edges := int64(avgDegree * float64(n))
	coo := matrix.NewCOO(n, n)
	coo.Entries = make([]matrix.Entry, 0, edges)
	// Precompute cumulative probabilities for quadrant selection.
	ab := p.A + p.B
	abc := ab + p.C
	for e := int64(0); e < edges; e++ {
		var row, col int
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < p.A:
				// top-left: nothing to add
			case r < ab:
				col |= 1 << bit
			case r < abc:
				row |= 1 << bit
			default:
				row |= 1 << bit
				col |= 1 << bit
			}
		}
		coo.Add(int32(row), int32(col), 1)
	}
	return coo.ToCSR()
}

// CapRowDegree limits every row to at most cap nonzeros, reassigning the
// excess entries to uniformly random rows (keeping their columns, so the
// column distribution is preserved).
//
// Why this exists: RMAT's heaviest row holds a roughly (a+b)^scale fraction
// of all nonzeros, so scaling matrices down from the paper's 2^20-2^26 rows
// to 2^10-2^16 inflates the relative hub weight by orders of magnitude; a
// single hub chunk would then dominate parallel execution in a way that
// cannot happen at paper scale. Capping the per-row degree at the same
// *fraction* of nonzeros the paper's matrices exhibit restores the scaled
// workload's balance properties while keeping the skew ordering of the
// HS/MS/LS classes intact.
func CapRowDegree(rng *rand.Rand, m *matrix.CSR, cap int) *matrix.CSR {
	if cap < 1 {
		cap = 1
	}
	over := false
	for i := 0; i < m.Rows; i++ {
		if m.RowNNZ(i) > cap {
			over = true
			break
		}
	}
	if !over {
		return m
	}
	coo := matrix.NewCOO(m.Rows, m.Cols)
	coo.Entries = make([]matrix.Entry, 0, m.NNZ())
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k := range cols {
			row := int32(i)
			if k >= cap {
				row = int32(rng.Intn(m.Rows))
			}
			coo.Entries = append(coo.Entries, matrix.Entry{Row: row, Col: cols[k], Val: vals[k]})
		}
	}
	return coo.ToCSR()
}

// RMATRows generates an RMAT matrix with an arbitrary (non power-of-two) row
// count by generating at the next power-of-two scale and keeping only edges
// that land inside the rows x rows prefix, topping up until the edge budget
// is met. This supports the paper's fractional-power row counts
// (2^24.58 etc., scaled down in this reproduction).
func RMATRows(rng *rand.Rand, rows int, avgDegree float64, p RMATParams) *matrix.CSR {
	if rows <= 0 {
		panic("gen: RMATRows needs rows > 0")
	}
	scale := 0
	for (1 << scale) < rows {
		scale++
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	edges := int64(avgDegree * float64(rows))
	coo := matrix.NewCOO(rows, rows)
	coo.Entries = make([]matrix.Entry, 0, edges)
	ab := p.A + p.B
	abc := ab + p.C
	attempts := int64(0)
	maxAttempts := edges * 20
	for int64(len(coo.Entries)) < edges && attempts < maxAttempts {
		attempts++
		var row, col int
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < p.A:
			case r < ab:
				col |= 1 << bit
			case r < abc:
				row |= 1 << bit
			default:
				row |= 1 << bit
				col |= 1 << bit
			}
		}
		if row < rows && col < rows {
			coo.Add(int32(row), int32(col), 1)
		}
	}
	return coo.ToCSR()
}
