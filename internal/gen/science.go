package gen

import (
	"math/rand"

	"wise/internal/matrix"
)

// Science-like generators. These stand in for the SuiteSparse corpus: the
// paper characterizes that corpus as dominated by scientific matrices with a
// balanced nonzero-per-row distribution (P_R mostly > 0.4, Figure 7), small
// column counts, and near-diagonal structure. Each generator below produces
// one such structural family.

// Banded generates an n x n matrix with nonzeros on the diagonals in
// offsets (e.g. {-1, 0, 1} for tridiagonal). Values are deterministic
// pseudo-random in (0, 1].
func Banded(rng *rand.Rand, n int, offsets []int) *matrix.CSR {
	coo := matrix.NewCOO(n, n)
	for i := 0; i < n; i++ {
		for _, off := range offsets {
			j := i + off
			if j >= 0 && j < n {
				coo.Add(int32(i), int32(j), 0.5+0.5*rng.Float64())
			}
		}
	}
	return coo.ToCSR()
}

// Stencil2D generates the adjacency structure of a 5-point (or 9-point, if
// diag is true) finite-difference stencil on a gx x gy grid; the matrix has
// gx*gy rows. This is the canonical "scientific computing" sparsity pattern.
func Stencil2D(gx, gy int, diag bool) *matrix.CSR {
	n := gx * gy
	coo := matrix.NewCOO(n, n)
	idx := func(x, y int) int32 { return int32(y*gx + x) }
	for y := 0; y < gy; y++ {
		for x := 0; x < gx; x++ {
			i := idx(x, y)
			coo.Add(i, i, 4)
			for _, d := range [][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
				nx, ny := x+d[0], y+d[1]
				if nx >= 0 && nx < gx && ny >= 0 && ny < gy {
					coo.Add(i, idx(nx, ny), -1)
				}
			}
			if diag {
				for _, d := range [][2]int{{-1, -1}, {1, -1}, {-1, 1}, {1, 1}} {
					nx, ny := x+d[0], y+d[1]
					if nx >= 0 && nx < gx && ny >= 0 && ny < gy {
						coo.Add(i, idx(nx, ny), -0.5)
					}
				}
			}
		}
	}
	return coo.ToCSR()
}

// Stencil3D generates a 7-point stencil on a gx x gy x gz grid.
func Stencil3D(gx, gy, gz int) *matrix.CSR {
	n := gx * gy * gz
	coo := matrix.NewCOO(n, n)
	idx := func(x, y, z int) int32 { return int32((z*gy+y)*gx + x) }
	for z := 0; z < gz; z++ {
		for y := 0; y < gy; y++ {
			for x := 0; x < gx; x++ {
				i := idx(x, y, z)
				coo.Add(i, i, 6)
				for _, d := range [][3]int{{-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0}, {0, 0, -1}, {0, 0, 1}} {
					nx, ny, nz := x+d[0], y+d[1], z+d[2]
					if nx >= 0 && nx < gx && ny >= 0 && ny < gy && nz >= 0 && nz < gz {
						coo.Add(i, idx(nx, ny, nz), -1)
					}
				}
			}
		}
	}
	return coo.ToCSR()
}

// FEMLike generates an n x n matrix resembling assembled finite-element
// systems: a block of `blockSize` coupled unknowns slides along the diagonal,
// and each row additionally gets a few short-range off-diagonal couplings.
// Row lengths stay tightly clustered (balanced P_R), structure stays near
// the diagonal.
func FEMLike(rng *rand.Rand, n, blockSize, extra int) *matrix.CSR {
	coo := matrix.NewCOO(n, n)
	for i := 0; i < n; i++ {
		base := (i / blockSize) * blockSize
		for j := base; j < base+blockSize && j < n; j++ {
			coo.Add(int32(i), int32(j), 0.1+rng.Float64())
		}
		for e := 0; e < extra; e++ {
			span := 4 * blockSize
			j := i + rng.Intn(2*span+1) - span
			if j >= 0 && j < n {
				coo.Add(int32(i), int32(j), 0.1+rng.Float64())
			}
		}
	}
	return coo.ToCSR()
}

// IrregularBanded generates an n x n matrix with short rows of *irregular*
// length (uniform 1..maxDeg) whose columns stay within a diagonal band —
// the circuit-simulation / optimization-matrix profile where vectorized
// packing pads heavily and well-scheduled scalar CSR stays the fastest
// method (the 34-of-136 CSR wins of the paper's Figure 4).
func IrregularBanded(rng *rand.Rand, n, maxDeg, band int) *matrix.CSR {
	if maxDeg < 1 {
		maxDeg = 1
	}
	if band < 1 {
		band = 1
	}
	coo := matrix.NewCOO(n, n)
	for i := 0; i < n; i++ {
		deg := 1 + rng.Intn(maxDeg)
		coo.Add(int32(i), int32(i), 1) // keep the diagonal
		for k := 1; k < deg; k++ {
			j := i + rng.Intn(2*band+1) - band
			if j >= 0 && j < n {
				coo.Add(int32(i), int32(j), 0.1+rng.Float64())
			}
		}
	}
	return coo.ToCSR()
}

// Uniform generates an n x n matrix with exactly about avgDegree*n nonzeros
// placed uniformly at random (an explicit Erdos-Renyi structure used by
// tests; RMAT with a=b=c=d=0.25 is statistically similar but biased by
// duplicate collapse).
func Uniform(rng *rand.Rand, n int, avgDegree float64) *matrix.CSR {
	coo := matrix.NewCOO(n, n)
	edges := int64(avgDegree * float64(n))
	for e := int64(0); e < edges; e++ {
		coo.Add(int32(rng.Intn(n)), int32(rng.Intn(n)), 1)
	}
	return coo.ToCSR()
}

// PowerLawRows generates an n x n matrix whose row degrees follow a Zipf-like
// power law with the given exponent (>1); columns are chosen uniformly.
// Used to create the small power-law minority of the science-like corpus
// (SuiteSparse contains a few web/social graphs).
func PowerLawRows(rng *rand.Rand, n int, exponent float64, maxDegree int) *matrix.CSR {
	if maxDegree < 1 {
		maxDegree = 1
	}
	zipf := rand.NewZipf(rng, exponent, 1, uint64(maxDegree-1))
	coo := matrix.NewCOO(n, n)
	for i := 0; i < n; i++ {
		deg := int(zipf.Uint64()) + 1
		for k := 0; k < deg; k++ {
			coo.Add(int32(i), int32(rng.Intn(n)), 1)
		}
	}
	return coo.ToCSR()
}
