package gen

import (
	"math"
	"math/rand"
	"testing"

	"wise/internal/stats"
)

func TestRMATParamsValidate(t *testing.T) {
	for name, p := range map[string]RMATParams{
		"HS": HighSkew, "MS": MedSkew, "LS": LowSkew,
		"LL": LowLoc, "ML": MedLoc, "HL": HighLoc,
	} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if err := (RMATParams{A: 0.5, B: 0.5, C: 0.5, D: 0.5}).Validate(); err == nil {
		t.Error("sum>1 accepted")
	}
	if err := (RMATParams{A: -0.1, B: 0.5, C: 0.3, D: 0.3}).Validate(); err == nil {
		t.Error("negative accepted")
	}
}

func TestRMATShapeAndDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := RMAT(rng, 10, 8, LowLoc)
	if m.Rows != 1024 || m.Cols != 1024 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	avg := float64(m.NNZ()) / float64(m.Rows)
	if avg < 6 || avg > 8.01 {
		t.Errorf("avg degree %v, want near 8 (minus duplicate collapse)", avg)
	}
}

func TestRMATSkewOrdering(t *testing.T) {
	// Higher 'a' parameter must yield lower P_R (more skew).
	rng := rand.New(rand.NewSource(2))
	pr := map[string]float64{}
	for name, p := range map[string]RMATParams{"HS": HighSkew, "MS": MedSkew, "LS": LowSkew} {
		m := RMAT(rng, 12, 16, p)
		pr[name] = stats.PRatio(m.RowCounts())
	}
	if !(pr["HS"] < pr["MS"] && pr["MS"] < pr["LS"]) {
		t.Errorf("skew ordering violated: %v", pr)
	}
	// Paper: P_R of HS/MS/LS is ~0.1/0.2/0.3.
	if pr["HS"] > 0.2 {
		t.Errorf("HS P_R = %v, want near 0.1", pr["HS"])
	}
	if pr["LS"] < 0.2 || pr["LS"] > 0.42 {
		t.Errorf("LS P_R = %v, want near 0.3", pr["LS"])
	}
}

func TestRMATLocalityClassesBalanced(t *testing.T) {
	// Paper: LL/ML/HL classes have P_R in 0.4-0.5 (little skew).
	rng := rand.New(rand.NewSource(3))
	for name, p := range map[string]RMATParams{"LL": LowLoc, "ML": MedLoc, "HL": HighLoc} {
		m := RMAT(rng, 12, 16, p)
		pr := stats.PRatio(m.RowCounts())
		if pr < 0.33 || pr > 0.51 {
			t.Errorf("%s P_R = %v, want in [0.35,0.5]", name, pr)
		}
	}
}

func TestRMATLocalityDiagonalConcentration(t *testing.T) {
	// HighLoc must put a larger nonzero fraction near the diagonal than LowLoc.
	rng := rand.New(rand.NewSource(4))
	frac := func(p RMATParams) float64 {
		m := RMAT(rng, 12, 16, p)
		band := m.Rows / 8
		near := 0
		for i := 0; i < m.Rows; i++ {
			cols, _ := m.Row(i)
			for _, c := range cols {
				d := int(c) - i
				if d < 0 {
					d = -d
				}
				if d <= band {
					near++
				}
			}
		}
		return float64(near) / float64(m.NNZ())
	}
	ll, hl := frac(LowLoc), frac(HighLoc)
	if hl <= ll+0.1 {
		t.Errorf("HighLoc diag fraction %v not clearly above LowLoc %v", hl, ll)
	}
}

func TestRMATRowsNonPowerOfTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := 1500
	m := RMATRows(rng, rows, 6, MedSkew)
	if m.Rows != rows || m.Cols != rows {
		t.Fatalf("shape %dx%d, want %d", m.Rows, m.Cols, rows)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() == 0 {
		t.Fatal("no edges generated")
	}
}

func TestRMATPanicsOnBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for name, fn := range map[string]func(){
		"bad params": func() { RMAT(rng, 5, 4, RMATParams{A: 1, B: 1, C: 1, D: 1}) },
		"bad scale":  func() { RMAT(rng, -1, 4, LowLoc) },
		"bad rows":   func() { RMATRows(rng, 0, 4, LowLoc) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRGGDegreeAndSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 4096
	deg := 8.0
	m := RGG(rng, n, deg)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	avg := float64(m.NNZ()) / float64(n)
	// Boundary effects reduce the expected degree somewhat.
	if avg < deg*0.5 || avg > deg*1.3 {
		t.Errorf("RGG avg degree %v, want near %v", avg, deg)
	}
	if !m.Equal(m.Transpose()) {
		t.Error("RGG adjacency not symmetric")
	}
}

func TestRGGLocality(t *testing.T) {
	// Cell-major vertex ordering should concentrate edges near the diagonal.
	rng := rand.New(rand.NewSource(8))
	n := 4096
	m := RGG(rng, n, 8)
	band := n / 4
	near := 0
	for i := 0; i < m.Rows; i++ {
		cols, _ := m.Row(i)
		for _, c := range cols {
			d := int(c) - i
			if d < 0 {
				d = -d
			}
			if d <= band {
				near++
			}
		}
	}
	if frac := float64(near) / float64(m.NNZ()); frac < 0.6 {
		t.Errorf("RGG near-diagonal fraction %v, want >= 0.6", frac)
	}
}

func TestRGGBalancedRows(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := RGG(rng, 2048, 8)
	pr := stats.PRatio(m.RowCounts())
	if pr < 0.35 {
		t.Errorf("RGG P_R = %v, want balanced (>= 0.35)", pr)
	}
}

func TestBanded(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := Banded(rng, 100, []int{-1, 0, 1})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 3*100-2 {
		t.Errorf("tridiagonal nnz = %d, want 298", m.NNZ())
	}
}

func TestStencil2D(t *testing.T) {
	m := Stencil2D(10, 10, false)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Rows != 100 {
		t.Fatalf("rows = %d", m.Rows)
	}
	// Interior rows have 5 nonzeros.
	if got := m.RowNNZ(5*10 + 5); got != 5 {
		t.Errorf("interior row nnz = %d, want 5", got)
	}
	// Corner rows have 3.
	if got := m.RowNNZ(0); got != 3 {
		t.Errorf("corner row nnz = %d, want 3", got)
	}
	m9 := Stencil2D(10, 10, true)
	if got := m9.RowNNZ(5*10 + 5); got != 9 {
		t.Errorf("9-point interior nnz = %d", got)
	}
	if !m.Equal(m.Transpose()) {
		t.Error("stencil not symmetric")
	}
}

func TestStencil3D(t *testing.T) {
	m := Stencil3D(6, 6, 6)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	center := (3*6+3)*6 + 3
	if got := m.RowNNZ(center); got != 7 {
		t.Errorf("3D interior nnz = %d, want 7", got)
	}
}

func TestFEMLike(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := FEMLike(rng, 512, 8, 3)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	pr := stats.PRatio(m.RowCounts())
	if pr < 0.35 {
		t.Errorf("FEM P_R = %v, want balanced", pr)
	}
}

func TestUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := Uniform(rng, 1000, 8)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	avg := float64(m.NNZ()) / 1000
	if avg < 7 || avg > 8.01 {
		t.Errorf("uniform avg degree %v", avg)
	}
}

func TestPowerLawRows(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := PowerLawRows(rng, 2048, 2.0, 512)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	pr := stats.PRatio(m.RowCounts())
	if pr > 0.35 {
		t.Errorf("power-law P_R = %v, want skewed (< 0.35)", pr)
	}
}

func TestRandomCorpusCoverage(t *testing.T) {
	cfg := CorpusConfig{
		Seed:      1,
		RowScales: []float64{8, 9},
		Degrees:   []float64{4, 8},
		MaxNNZ:    1 << 20,
		SciCount:  6,
	}
	random := RandomCorpus(cfg)
	if len(random) != 7*2*2 {
		t.Fatalf("random corpus size = %d, want 28", len(random))
	}
	classes := map[Class]int{}
	for _, l := range random {
		classes[l.Class]++
		if err := l.M.Validate(); err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if l.M.NNZ() == 0 {
			t.Fatalf("%s: empty matrix", l.Name)
		}
	}
	for _, c := range []Class{ClassHS, ClassMS, ClassLS, ClassLL, ClassML, ClassHL, ClassRGG} {
		if classes[c] != 4 {
			t.Errorf("class %s count = %d, want 4", c, classes[c])
		}
	}
}

func TestRandomCorpusRespectsNNZCap(t *testing.T) {
	cfg := CorpusConfig{
		Seed:      1,
		RowScales: []float64{10},
		Degrees:   []float64{4, 1024},
		MaxNNZ:    1 << 13, // only degree 4 fits (1024*4 = 4096)
		SciCount:  0,
	}
	random := RandomCorpus(cfg)
	if len(random) != 7 {
		t.Fatalf("cap not applied: %d matrices", len(random))
	}
	for _, l := range random {
		if int64(l.M.NNZ()) > cfg.MaxNNZ {
			t.Errorf("%s exceeds cap: %d", l.Name, l.M.NNZ())
		}
	}
}

func TestScienceCorpusBias(t *testing.T) {
	cfg := CorpusConfig{
		Seed:      1,
		RowScales: []float64{8, 10},
		Degrees:   []float64{4},
		MaxNNZ:    1 << 22,
		SciCount:  36,
	}
	sci := ScienceCorpus(cfg)
	if len(sci) != 36 {
		t.Fatalf("science corpus size = %d", len(sci))
	}
	// Paper Figure 7: most science matrices have P_R > 0.4.
	balanced := 0
	for _, l := range sci {
		if err := l.M.Validate(); err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if stats.PRatio(l.M.RowCounts()) > 0.4 {
			balanced++
		}
	}
	if frac := float64(balanced) / float64(len(sci)); frac < 0.7 {
		t.Errorf("science corpus balanced fraction = %v, want >= 0.7 (Fig 7 bias)", frac)
	}
}

func TestCorpusCombined(t *testing.T) {
	cfg := CorpusConfig{
		Seed:      2,
		RowScales: []float64{8},
		Degrees:   []float64{4},
		MaxNNZ:    1 << 20,
		SciCount:  6,
	}
	all := Corpus(cfg)
	if len(all) != 6+7 {
		t.Fatalf("combined corpus size = %d", len(all))
	}
	names := map[string]bool{}
	for _, l := range all {
		if names[l.Name] {
			t.Errorf("duplicate corpus name %q", l.Name)
		}
		names[l.Name] = true
	}
}

func TestCorpusDeterministic(t *testing.T) {
	cfg := CorpusConfig{
		Seed:      7,
		RowScales: []float64{8},
		Degrees:   []float64{4},
		MaxNNZ:    1 << 20,
		SciCount:  3,
	}
	a, b := Corpus(cfg), Corpus(cfg)
	if len(a) != len(b) {
		t.Fatal("nondeterministic corpus size")
	}
	for i := range a {
		if a[i].Name != b[i].Name || !a[i].M.Equal(b[i].M) {
			t.Fatalf("corpus nondeterministic at %d (%s)", i, a[i].Name)
		}
	}
}

func TestFractionalRowScale(t *testing.T) {
	cfg := CorpusConfig{
		Seed:      1,
		RowScales: []float64{8.58},
		Degrees:   []float64{4},
		MaxNNZ:    1 << 20,
		SciCount:  0,
	}
	random := RandomCorpus(cfg)
	wantRows := int(math.Round(math.Pow(2, 8.58)))
	for _, l := range random {
		if l.M.Rows != wantRows {
			t.Errorf("%s rows = %d, want %d", l.Name, l.M.Rows, wantRows)
		}
	}
}

func TestDefaultAndFullConfigs(t *testing.T) {
	d, f := DefaultCorpusConfig(), FullCorpusConfig()
	if len(d.RowScales) == 0 || len(d.Degrees) == 0 || d.SciCount == 0 {
		t.Error("default config empty")
	}
	if len(f.RowScales) <= len(d.RowScales) || f.SciCount <= d.SciCount {
		t.Error("full config should be larger than default")
	}
	if f.SciCount != 136 {
		t.Errorf("full science count = %d, want the paper's 136", f.SciCount)
	}
}

func TestIrregularBanded(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	m := IrregularBanded(rng, 1000, 6, 16)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := m.RowCounts()
	var min, max int64 = 1 << 30, 0
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min < 1 {
		t.Error("row without diagonal")
	}
	if max <= min+2 {
		t.Errorf("rows not irregular: min %d max %d", min, max)
	}
	// Stays near the diagonal.
	for i := 0; i < m.Rows; i++ {
		cols, _ := m.Row(i)
		for _, c := range cols {
			d := int(c) - i
			if d < 0 {
				d = -d
			}
			if d > 16 {
				t.Fatalf("entry (%d,%d) outside band", i, c)
			}
		}
	}
}

func TestIrregularBandedClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := IrregularBanded(rng, 10, 0, 0)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() < 10 {
		t.Error("diagonal missing")
	}
}

func TestCapRowDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m := RMAT(rng, 10, 16, HighSkew)
	nnzBefore := m.NNZ()
	cap := 64
	capped := CapRowDegree(rng, m, cap)
	if err := capped.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < capped.Rows; i++ {
		if capped.RowNNZ(i) > cap+capped.Rows/8 {
			// Reassigned entries can land on already-full rows; allow slack
			// but catch gross violations.
			t.Fatalf("row %d still has %d nonzeros after cap %d", i, capped.RowNNZ(i), cap)
		}
	}
	// Nonzeros are conserved up to duplicate collapse.
	if capped.NNZ() > nnzBefore {
		t.Error("cap created nonzeros")
	}
	if capped.NNZ() < nnzBefore*9/10 {
		t.Errorf("cap destroyed too many nonzeros: %d -> %d", nnzBefore, capped.NNZ())
	}
	// Column distribution unchanged in total.
	var colsBefore, colsAfter int64
	for _, c := range m.ColCounts() {
		colsBefore += c
	}
	for _, c := range capped.ColCounts() {
		colsAfter += c
	}
	if colsAfter > colsBefore {
		t.Error("column mass grew")
	}
}

func TestCapRowDegreeNoopWhenUnderCap(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := Banded(rng, 100, []int{-1, 0, 1})
	capped := CapRowDegree(rng, m, 10)
	if !capped.Equal(m) {
		t.Error("cap modified an already-compliant matrix")
	}
}

func TestScienceCorpusIncludesIrregularFamily(t *testing.T) {
	cfg := CorpusConfig{
		Seed:      1,
		RowScales: []float64{8, 10},
		Degrees:   []float64{4},
		MaxNNZ:    1 << 22,
		SciCount:  28,
	}
	sci := ScienceCorpus(cfg)
	found := false
	for _, l := range sci {
		if len(l.Name) >= 13 && l.Name[:13] == "sci_irregular" {
			found = true
		}
	}
	if !found {
		t.Error("irregular family missing from science corpus")
	}
}

func TestMediumCorpusConfig(t *testing.T) {
	m := MediumCorpusConfig()
	d := DefaultCorpusConfig()
	f := FullCorpusConfig()
	if len(m.RowScales)*len(m.Degrees) <= len(d.RowScales)*len(d.Degrees) {
		t.Error("medium not larger than default")
	}
	if len(m.RowScales)*len(m.Degrees) >= len(f.RowScales)*len(f.Degrees) {
		t.Error("medium not smaller than full")
	}
}
