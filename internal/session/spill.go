package session

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"wise/internal/core"
	"wise/internal/features"
	"wise/internal/kernels"
	"wise/internal/matrix"
	"wise/internal/resilience"
	"wise/internal/resilience/faultinject"
)

// Spill format: one file per session, <fingerprint>.sess in SpillDir,
// wrapped in a resilience checksummed envelope so truncation and bit flips
// fail loudly at rehydration. The payload is a uvarint-length-prefixed JSON
// meta block (identity, dims, selection, features) followed by the raw CSR
// arrays little-endian — RowPtr as int64, ColIdx as int32, Vals as float64
// bits. The converted kernel format is not spilled; it is deterministic in
// (matrix, method) and rebuilt lazily on the first post-restart execution.
const (
	spillKind    = "wise-session"
	spillVersion = 1
	spillSuffix  = ".sess"
)

type spillMeta struct {
	Fingerprint string    `json:"fingerprint"`
	Rows        int       `json:"rows"`
	Cols        int       `json:"cols"`
	NNZ         int       `json:"nnz"`
	GenID       string    `json:"gen_id"`
	Selection   spillSel  `json:"selection"`
	FeatNames   []string  `json:"feature_names"`
	FeatValues  []float64 `json:"feature_values"`
}

type spillSel struct {
	Method         kernels.Method `json:"method"`
	Index          int            `json:"index"`
	PredictedClass int            `json:"predicted_class"`
	Classes        []int          `json:"classes"`
}

func (s *Store) spillPath(fp string) string {
	return filepath.Join(s.spillDir, fp+spillSuffix)
}

// spill writes one prepared session to the spill dir. Failures are narrated
// and counted, never returned — spill is an availability optimization, not
// a durability contract. The session.spill.corrupt site covers both halves
// of the crash window: armed as a panic it kills the write before the
// atomic commit (restart finds no file and rebuilds cleanly); armed as an
// error it flips a sealed byte so the committed file fails its checksum
// (restart quarantines and rebuilds).
func (s *Store) spill(e *Entry, p *Prepared) {
	sealed := resilience.Seal(spillKind, spillVersion, encodeSpill(e.fp, p))
	if err := faultinject.Hit("session.spill.corrupt"); err != nil {
		sealed[len(sealed)-1] ^= 0xFF
	}
	if err := resilience.AtomicWriteFile(s.spillPath(e.fp), sealed, 0o644); err != nil {
		sessionSpillFailures.Inc()
		obsVerbosef("session: spilling %s: %v", shortFP(e.fp), err)
		return
	}
	s.mu.Lock()
	s.stats.Spills++
	s.mu.Unlock()
	sessionSpills.Inc()
}

func encodeSpill(fp string, p *Prepared) []byte {
	meta, err := json.Marshal(spillMeta{
		Fingerprint: fp,
		Rows:        p.M.Rows,
		Cols:        p.M.Cols,
		NNZ:         p.M.NNZ(),
		GenID:       p.GenID,
		Selection: spillSel{
			Method:         p.Sel.Method,
			Index:          p.Sel.Index,
			PredictedClass: p.Sel.PredictedClass,
			Classes:        p.Sel.Classes,
		},
		FeatNames:  p.Feat.Names,
		FeatValues: p.Feat.Values,
	})
	if err != nil {
		// spillMeta is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("session: encoding spill meta: %v", err))
	}
	nnz := p.M.NNZ()
	buf := make([]byte, 0, binary.MaxVarintLen64+len(meta)+8*(p.M.Rows+1)+4*nnz+8*nnz)
	buf = binary.AppendUvarint(buf, uint64(len(meta)))
	buf = append(buf, meta...)
	for _, v := range p.M.RowPtr {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	for _, v := range p.M.ColIdx {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	for _, v := range p.M.Vals {
		buf = binary.LittleEndian.AppendUint64(buf, floatBits(v))
	}
	return buf
}

func decodeSpill(fp string, payload []byte) (*Prepared, error) {
	metaLen, n := binary.Uvarint(payload)
	if n <= 0 || metaLen > uint64(len(payload)-n) {
		return nil, fmt.Errorf("session: spill payload truncated in meta header")
	}
	var meta spillMeta
	if err := json.Unmarshal(payload[n:n+int(metaLen)], &meta); err != nil {
		return nil, fmt.Errorf("session: decoding spill meta: %w", err)
	}
	if meta.Fingerprint != fp {
		return nil, fmt.Errorf("session: spill file names %s but records %s", shortFP(fp), shortFP(meta.Fingerprint))
	}
	if meta.Rows < 0 || meta.Cols < 0 || meta.NNZ < 0 {
		return nil, fmt.Errorf("session: spill meta has negative dimensions")
	}
	body := payload[n+int(metaLen):]
	want := 8*(meta.Rows+1) + 4*meta.NNZ + 8*meta.NNZ
	if len(body) != want {
		return nil, fmt.Errorf("session: spill arrays are %d bytes, meta declares %d", len(body), want)
	}
	m := &matrix.CSR{
		Rows:   meta.Rows,
		Cols:   meta.Cols,
		RowPtr: make([]int64, meta.Rows+1),
		ColIdx: make([]int32, meta.NNZ),
		Vals:   make([]float64, meta.NNZ),
	}
	off := 0
	for i := range m.RowPtr {
		m.RowPtr[i] = int64(binary.LittleEndian.Uint64(body[off:]))
		off += 8
	}
	for i := range m.ColIdx {
		m.ColIdx[i] = int32(binary.LittleEndian.Uint32(body[off:]))
		off += 4
	}
	for i := range m.Vals {
		m.Vals[i] = floatFromBits(binary.LittleEndian.Uint64(body[off:]))
		off += 8
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("session: rehydrated matrix invalid: %w", err)
	}
	if len(meta.FeatNames) != len(meta.FeatValues) {
		return nil, fmt.Errorf("session: spill features misaligned: %d names, %d values", len(meta.FeatNames), len(meta.FeatValues))
	}
	return &Prepared{
		M:    m,
		Feat: features.Features{Names: meta.FeatNames, Values: meta.FeatValues},
		Sel: core.Selection{
			Method:         meta.Selection.Method,
			Index:          meta.Selection.Index,
			PredictedClass: meta.Selection.PredictedClass,
			Classes:        meta.Selection.Classes,
		},
		GenID: meta.GenID,
	}, nil
}

// rehydrate loads every valid spilled session at Open. A spill file that
// fails its envelope checksum or structural validation is quarantined —
// renamed aside, counted, narrated — and the session is simply absent, to
// be rebuilt on its next upload. Rehydration failure is never fatal: a
// damaged spill dir costs warm starts, not availability.
func (s *Store) rehydrate() error {
	dirents, err := os.ReadDir(s.spillDir)
	if err != nil {
		return fmt.Errorf("session: reading spill dir: %w", err)
	}
	for _, de := range dirents {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, spillSuffix) {
			continue
		}
		fp := strings.TrimSuffix(name, spillSuffix)
		path := filepath.Join(s.spillDir, name)
		env, _, err := resilience.ReadArtifact(path, spillKind)
		var p *Prepared
		if err == nil {
			p, err = decodeSpill(fp, env.Payload)
		}
		if err != nil {
			s.quarantine(path, err)
			continue
		}
		s.mu.Lock()
		_, err = s.insertLocked(fp, p, 0)
		if err == nil {
			s.stats.Recoveries++
		}
		s.mu.Unlock()
		if err != nil {
			// Does not fit the byte budget even after evicting everything
			// already rehydrated; drop the file so disk stays bounded too.
			obsVerbosef("session: dropping spilled %s: %v", shortFP(fp), err)
			if rmErr := os.Remove(path); rmErr != nil {
				obsVerbosef("session: removing oversized spill %s: %v", shortFP(fp), rmErr)
			}
			continue
		}
		sessionRecoveries.Inc()
	}
	return nil
}

// quarantine moves a corrupt spill file aside so it is preserved for
// inspection but never re-read, and the session rebuilds from scratch.
func (s *Store) quarantine(path string, cause error) {
	obsVerbosef("session: quarantining corrupt spill %s: %v", filepath.Base(path), cause)
	if err := os.Rename(path, path+".quarantined"); err != nil {
		obsVerbosef("session: quarantining %s: %v", filepath.Base(path), err)
	}
	s.mu.Lock()
	s.stats.Quarantined++
	s.mu.Unlock()
	sessionQuarantined.Inc()
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
