package session

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wise/internal/core"
	"wise/internal/features"
	"wise/internal/kernels"
	"wise/internal/matrix"
	"wise/internal/resilience/faultinject"
)

// triMatrix builds a deterministic tridiagonal n x n test matrix.
func triMatrix(n int, scale float64) *matrix.CSR {
	rowptr := make([]int64, n+1)
	var col []int32
	var vals []float64
	for i := 0; i < n; i++ {
		if i > 0 {
			col = append(col, int32(i-1))
			vals = append(vals, scale)
		}
		col = append(col, int32(i))
		vals = append(vals, 2*scale+float64(i%7))
		if i < n-1 {
			col = append(col, int32(i+1))
			vals = append(vals, scale)
		}
		rowptr[i+1] = int64(len(col))
	}
	return &matrix.CSR{Rows: n, Cols: n, RowPtr: rowptr, ColIdx: col, Vals: vals}
}

var csrMethod = kernels.Method{Kind: kernels.CSR, Sched: kernels.Dyn}

// testPrepared runs a real (tiny) inspector pass: matrix, features, a fixed
// CSR selection, and an eagerly built format.
func testPrepared(n int, scale float64) *Prepared {
	m := triMatrix(n, scale)
	f := features.Extract(m, features.DefaultConfig())
	sel := core.Selection{Method: csrMethod, Index: 0, PredictedClass: 1, Classes: []int{1}}
	return &Prepared{M: m, Feat: f, Sel: sel, GenID: "g1", Format: kernels.Build(m, sel.Method, 64)}
}

// buildOf returns a BuildFunc serving p and counting invocations.
func buildOf(p *Prepared, count *atomic.Int32) BuildFunc {
	return func(ctx context.Context) (*Prepared, error) {
		if count != nil {
			count.Add(1)
		}
		return p, nil
	}
}

func mustOpen(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// armFaults arms a fault spec for the test and disarms it at cleanup.
func armFaults(t *testing.T, spec string) {
	t.Helper()
	if err := faultinject.Configure(spec, 1); err != nil {
		t.Fatalf("faultinject.Configure(%q): %v", spec, err)
	}
	t.Cleanup(faultinject.Disable)
}

// checkExec asserts the store's cached execution matches the reference
// serial SpMV over the same matrix.
func checkExec(t *testing.T, s *Store, e *Entry) {
	t.Helper()
	m := e.Matrix()
	x := matrix.Iota(m.Cols)
	y, err := s.Exec(context.Background(), e, x, 1, 1)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	want := make([]float64, m.Rows)
	m.SpMV(want, x)
	if d := matrix.MaxAbsDiff(y, want); d > 1e-9 {
		t.Fatalf("cached execution diverges from reference by %g", d)
	}
}

func TestFingerprintStable(t *testing.T) {
	a, b := Fingerprint([]byte("body")), Fingerprint([]byte("body"))
	if a != b || len(a) != 64 {
		t.Fatalf("Fingerprint not a stable 64-hex digest: %q vs %q", a, b)
	}
	if Fingerprint([]byte("other")) == a {
		t.Fatal("distinct bodies share a fingerprint")
	}
}

func TestOpenValidatesBudget(t *testing.T) {
	if _, err := Open(Config{MaxBytes: 0}); err == nil {
		t.Fatal("Open accepted a zero byte budget")
	}
}

func TestGetOrCreateCachesAndPins(t *testing.T) {
	s := mustOpen(t, Config{MaxBytes: 1 << 20})
	p := testPrepared(32, 1)
	var builds atomic.Int32
	e1, hit, err := s.GetOrCreate(context.Background(), "fp1", buildOf(p, &builds))
	if err != nil || hit {
		t.Fatalf("first GetOrCreate: hit=%v err=%v", hit, err)
	}
	e2, hit, err := s.GetOrCreate(context.Background(), "fp1", buildOf(p, &builds))
	if err != nil || !hit || e2 != e1 {
		t.Fatalf("second GetOrCreate: hit=%v err=%v same=%v", hit, err, e2 == e1)
	}
	if got := builds.Load(); got != 1 {
		t.Fatalf("build ran %d times, want 1", got)
	}
	st := s.Stats()
	if st.Entries != 1 || st.PinnedEntries != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats after hit+miss: %+v", st)
	}
	s.Release(e1)
	if s.PinnedCount() != 1 {
		t.Fatalf("one release should leave the entry pinned once, got %d pinned", s.PinnedCount())
	}
	s.Release(e2)
	if s.PinnedCount() != 0 {
		t.Fatalf("pins leaked: %d", s.PinnedCount())
	}
	checkExec(t, s, e1)
}

func TestEvictionRespectsBudgetAndPins(t *testing.T) {
	one := preparedCost(testPrepared(32, 1).M)
	s := mustOpen(t, Config{MaxBytes: 2*one + one/2})

	ctx := context.Background()
	a, _, err := s.GetOrCreate(ctx, "a", buildOf(testPrepared(32, 1), nil))
	if err != nil {
		t.Fatal(err)
	}
	s.Release(a)
	b, _, err := s.GetOrCreate(ctx, "b", buildOf(testPrepared(32, 2), nil))
	if err != nil {
		t.Fatal(err)
	}
	s.Release(b)
	// Third insert must evict the LRU victim "a".
	c, _, err := s.GetOrCreate(ctx, "c", buildOf(testPrepared(32, 3), nil))
	if err != nil {
		t.Fatal(err)
	}
	s.Release(c)
	if _, ok := s.Acquire("a"); ok {
		t.Fatal("LRU victim 'a' survived over-budget insert")
	}
	if st := s.Stats(); st.Evictions != 1 || st.Bytes > st.MaxBytes {
		t.Fatalf("after eviction: %+v", st)
	}

	// Pin both survivors: the store is now irreducible, a new insert must
	// saturate, and neither pinned entry may be evicted.
	b2, ok := s.Acquire("b")
	if !ok {
		t.Fatal("'b' missing")
	}
	c2, ok := s.Acquire("c")
	if !ok {
		t.Fatal("'c' missing")
	}
	_, _, err = s.GetOrCreate(ctx, "d", buildOf(testPrepared(32, 4), nil))
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("insert into fully pinned store: err=%v, want ErrSaturated", err)
	}
	if _, ok := s.Acquire("b"); !ok {
		t.Fatal("pinned 'b' was evicted")
	}
	if _, ok := s.Acquire("c"); !ok {
		t.Fatal("pinned 'c' was evicted")
	}
	s.Release(b2)
	s.Release(b2)
	s.Release(c2)
	s.Release(c2)
	if s.PinnedCount() != 0 {
		t.Fatalf("pins leaked: %d", s.PinnedCount())
	}

	// An entry larger than the whole budget saturates without disturbing
	// the cache.
	huge := mustOpen(t, Config{MaxBytes: one / 2})
	if _, _, err := huge.GetOrCreate(ctx, "x", buildOf(testPrepared(32, 1), nil)); !errors.Is(err, ErrSaturated) {
		t.Fatalf("oversized insert: err=%v, want ErrSaturated", err)
	}
}

// TestSingleflightOneBuild is half of the amortization proof: N concurrent
// identical uploads run exactly one inspector pass, and everyone shares the
// single pinned entry.
func TestSingleflightOneBuild(t *testing.T) {
	s := mustOpen(t, Config{MaxBytes: 1 << 20})
	p := testPrepared(32, 1)
	release := make(chan struct{})
	var builds atomic.Int32
	build := func(ctx context.Context) (*Prepared, error) {
		builds.Add(1)
		<-release // hold the flight open until every waiter has joined
		return p, nil
	}

	const n = 16
	var wg sync.WaitGroup
	entries := make([]*Entry, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entries[i], _, errs[i] = s.GetOrCreate(context.Background(), "fp", build)
		}(i)
	}
	// Wait until one leader is inside build and the rest are waiters.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if builds.Load() == 1 && s.Stats().SingleflightWaits == n-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("waiters never assembled: builds=%d stats=%+v", builds.Load(), s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Fatalf("%d concurrent uploads ran %d builds, want exactly 1", n, got)
	}
	for i := range entries {
		if errs[i] != nil || entries[i] != entries[0] {
			t.Fatalf("caller %d: err=%v sharedEntry=%v", i, errs[i], entries[i] == entries[0])
		}
	}
	if st := s.Stats(); st.PinnedEntries != 1 || st.Entries != 1 {
		t.Fatalf("after singleflight: %+v", st)
	}
	for range entries {
		s.Release(entries[0])
	}
	if s.PinnedCount() != 0 {
		t.Fatalf("pins leaked after releasing all %d callers", n)
	}
}

// TestSingleflightLeaderFailureFailsWaiters holds a failing build open
// until the waiters have joined, then asserts every caller receives the
// leader's error and nothing is cached or pinned.
func TestSingleflightLeaderFailureFailsWaiters(t *testing.T) {
	s := mustOpen(t, Config{MaxBytes: 1 << 20})
	release := make(chan struct{})
	buildErr := errors.New("inspector exploded")
	build := func(ctx context.Context) (*Prepared, error) {
		<-release
		return nil, buildErr
	}

	const n = 6
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = s.GetOrCreate(context.Background(), "fp", build)
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().SingleflightWaits != n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never assembled: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i, err := range errs {
		if !errors.Is(err, buildErr) {
			t.Fatalf("caller %d got %v, want the leader's error", i, err)
		}
	}
	st := s.Stats()
	if st.Entries != 0 || st.PinnedEntries != 0 || st.LeaderFailures != 1 {
		t.Fatalf("after leader failure: %+v", st)
	}
}

// TestSingleflightLeaderFaultSite arms session.singleflight.leaderfail and
// asserts the injected failure surfaces as the build error and the next
// upload recovers.
func TestSingleflightLeaderFaultSite(t *testing.T) {
	armFaults(t, "session.singleflight.leaderfail:error")
	s := mustOpen(t, Config{MaxBytes: 1 << 20})
	_, _, err := s.GetOrCreate(context.Background(), "fp", buildOf(testPrepared(32, 1), nil))
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("armed leaderfail: err=%v, want ErrInjected", err)
	}
	e, _, err := s.GetOrCreate(context.Background(), "fp", buildOf(testPrepared(32, 1), nil))
	if err != nil {
		t.Fatalf("upload after injected leader failure: %v", err)
	}
	s.Release(e)
}

// TestWaiterDeadline gives up a waiter mid-flight and asserts no pin and no
// goroutine leaks: the leader's later completion grants pins only to the
// callers still present.
func TestWaiterDeadline(t *testing.T) {
	s := mustOpen(t, Config{MaxBytes: 1 << 20})
	p := testPrepared(32, 1)
	release := make(chan struct{})
	build := func(ctx context.Context) (*Prepared, error) {
		<-release
		return p, nil
	}

	leaderDone := make(chan *Entry, 1)
	go func() {
		e, _, err := s.GetOrCreate(context.Background(), "fp", build)
		if err != nil {
			t.Errorf("leader: %v", err)
		}
		leaderDone <- e
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Misses != 1 {
		if time.Now().After(deadline) {
			t.Fatal("leader never started")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, _, err := s.GetOrCreate(ctx, "fp", build)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired waiter: err=%v, want DeadlineExceeded", err)
	}

	close(release)
	e := <-leaderDone
	if st := s.Stats(); st.PinnedEntries != 1 {
		t.Fatalf("abandoned waiter leaked a pin: %+v", st)
	}
	s.Release(e)
	if s.PinnedCount() != 0 {
		t.Fatalf("pins leaked: %d", s.PinnedCount())
	}
}

func TestRefreshRepredictsOnlyOnGenerationChange(t *testing.T) {
	s := mustOpen(t, Config{MaxBytes: 1 << 20, RowBlock: 64})
	e, _, err := s.GetOrCreate(context.Background(), "fp", buildOf(testPrepared(64, 1), nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release(e)

	calls := 0
	predict := func(f features.Features) core.Selection {
		calls++
		return core.Selection{Method: kernels.Method{Kind: kernels.CSR, Sched: kernels.St}, Index: 1, PredictedClass: 2}
	}
	if sel := s.Refresh(e, "g1", predict); calls != 0 || sel.Index != 0 {
		t.Fatalf("same-generation Refresh re-predicted: calls=%d sel=%+v", calls, sel)
	}
	sel := s.Refresh(e, "g2", predict)
	if calls != 1 || sel.Index != 1 {
		t.Fatalf("generation change: calls=%d sel=%+v", calls, sel)
	}
	// The cached format was built for the old method; execution after the
	// method moved must rebuild it (once) and still match the reference.
	before := s.Stats().Converts
	checkExec(t, s, e)
	checkExec(t, s, e)
	if got := s.Stats().Converts - before; got != 1 {
		t.Fatalf("format rebuilt %d times after method change, want 1", got)
	}
}

func TestSpillRehydrate(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, Config{MaxBytes: 1 << 20, SpillDir: dir})
	ctx := context.Background()
	for i, fp := range []string{"aaaa", "bbbb"} {
		e, _, err := s1.GetOrCreate(ctx, fp, buildOf(testPrepared(48, float64(i+1)), nil))
		if err != nil {
			t.Fatal(err)
		}
		s1.Release(e)
	}
	if st := s1.Stats(); st.Spills != 2 {
		t.Fatalf("spills: %+v", st)
	}

	s2 := mustOpen(t, Config{MaxBytes: 1 << 20, SpillDir: dir, RowBlock: 64})
	st := s2.Stats()
	if st.Recoveries != 2 || st.Entries != 2 || st.Quarantined != 0 {
		t.Fatalf("rehydration: %+v", st)
	}
	// Rehydrated sessions answer without any new inspector pass: the format
	// is rebuilt lazily (one convert per entry), parse and extract never rerun.
	for _, fp := range []string{"aaaa", "bbbb"} {
		e, ok := s2.Acquire(fp)
		if !ok {
			t.Fatalf("session %s not rehydrated", fp)
		}
		checkExec(t, s2, e)
		s2.Release(e)
	}
	st = s2.Stats()
	if st.Builds != 0 || st.Converts != 2 {
		t.Fatalf("rehydrated execution reran the inspector: %+v", st)
	}
}

// TestCorruptSpillQuarantined covers the injected-corruption half of the
// crash-safety proof: a spill file whose checksum no longer matches is
// quarantined at restart — renamed aside, counted, the session rebuilt on
// its next upload — and never produces a corrupt answer.
func TestCorruptSpillQuarantined(t *testing.T) {
	dir := t.TempDir()
	armFaults(t, "session.spill.corrupt:error")
	s1 := mustOpen(t, Config{MaxBytes: 1 << 20, SpillDir: dir})
	e, _, err := s1.GetOrCreate(context.Background(), "cafe", buildOf(testPrepared(48, 1), nil))
	if err != nil {
		t.Fatal(err)
	}
	s1.Release(e)
	faultinject.Disable()

	s2 := mustOpen(t, Config{MaxBytes: 1 << 20, SpillDir: dir})
	st := s2.Stats()
	if st.Quarantined != 1 || st.Recoveries != 0 || st.Entries != 0 {
		t.Fatalf("corrupt spill not quarantined: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "cafe"+spillSuffix+".quarantined")); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	// The session rebuilds cleanly and spills a good copy this time.
	e2, _, err := s2.GetOrCreate(context.Background(), "cafe", buildOf(testPrepared(48, 1), nil))
	if err != nil {
		t.Fatalf("rebuild after quarantine: %v", err)
	}
	checkExec(t, s2, e2)
	s2.Release(e2)
	s3 := mustOpen(t, Config{MaxBytes: 1 << 20, SpillDir: dir})
	if st := s3.Stats(); st.Recoveries != 1 {
		t.Fatalf("rebuilt session did not rehydrate: %+v", st)
	}
}

// TestCrashMidSpillRestart covers the kill-mid-spill half of the
// crash-safety proof: the injected panic dies before the atomic commit, so
// the restart finds no file for the session and cleanly rebuilds it.
func TestCrashMidSpillRestart(t *testing.T) {
	dir := t.TempDir()
	armFaults(t, "session.spill.corrupt:panic")
	s1 := mustOpen(t, Config{MaxBytes: 1 << 20, SpillDir: dir})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("armed spill panic did not fire")
			}
		}()
		_, _, _ = s1.GetOrCreate(context.Background(), "dead", buildOf(testPrepared(48, 1), nil))
	}()
	faultinject.Disable()

	// "Restart": a fresh store over the same dir sees a clean (empty) spill
	// dir — no torn file, no quarantine — and the session rebuilds.
	s2 := mustOpen(t, Config{MaxBytes: 1 << 20, SpillDir: dir})
	st := s2.Stats()
	if st.Entries != 0 || st.Quarantined != 0 {
		t.Fatalf("crash mid-spill left debris: %+v", st)
	}
	e, _, err := s2.GetOrCreate(context.Background(), "dead", buildOf(testPrepared(48, 1), nil))
	if err != nil {
		t.Fatalf("rebuild after crash: %v", err)
	}
	checkExec(t, s2, e)
	s2.Release(e)
}

// TestCrashMidEvictionRestart kills the store between victim selection and
// removal and asserts the invariant the site protects: the crash leaves
// both memory and spill consistent, and a restart rehydrates every session
// with correct answers — session.recoveries counts them.
func TestCrashMidEvictionRestart(t *testing.T) {
	dir := t.TempDir()
	one := preparedCost(testPrepared(48, 1).M)
	cfg := Config{MaxBytes: 2*one + one/2, SpillDir: dir, RowBlock: 64}
	s1 := mustOpen(t, cfg)
	ctx := context.Background()
	for i, fp := range []string{"aaaa", "bbbb"} {
		e, _, err := s1.GetOrCreate(ctx, fp, buildOf(testPrepared(48, float64(i+1)), nil))
		if err != nil {
			t.Fatal(err)
		}
		s1.Release(e)
	}

	armFaults(t, "session.evict.race:panic")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("armed eviction panic did not fire")
			}
		}()
		_, _, _ = s1.GetOrCreate(ctx, "cccc", buildOf(testPrepared(48, 3), nil))
	}()
	faultinject.Disable()

	// The panic unwound with the victim still intact: no half-removed entry.
	st := s1.Stats()
	if st.Entries != 2 || st.Evictions != 0 {
		t.Fatalf("crash mid-eviction corrupted the store: %+v", st)
	}

	s2 := mustOpen(t, cfg)
	st = s2.Stats()
	if st.Recoveries != 2 || st.Entries != 2 || st.Quarantined != 0 {
		t.Fatalf("restart after crash mid-eviction: %+v", st)
	}
	for _, fp := range []string{"aaaa", "bbbb"} {
		e, ok := s2.Acquire(fp)
		if !ok {
			t.Fatalf("session %s lost across the crash", fp)
		}
		checkExec(t, s2, e)
		s2.Release(e)
	}
}

// TestEvictRaceErrorDegrades arms the eviction race as an error: the pass
// treats the victim as pinned-under-us and abandons eviction, so the insert
// saturates and the caller degrades — existing sessions are untouched.
func TestEvictRaceErrorDegrades(t *testing.T) {
	one := preparedCost(testPrepared(48, 1).M)
	s := mustOpen(t, Config{MaxBytes: 2*one + one/2})
	ctx := context.Background()
	for i, fp := range []string{"aaaa", "bbbb"} {
		e, _, err := s.GetOrCreate(ctx, fp, buildOf(testPrepared(48, float64(i+1)), nil))
		if err != nil {
			t.Fatal(err)
		}
		s.Release(e)
	}
	armFaults(t, "session.evict.race:error")
	_, _, err := s.GetOrCreate(ctx, "cccc", buildOf(testPrepared(48, 3), nil))
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("raced eviction: err=%v, want ErrSaturated", err)
	}
	st := s.Stats()
	if st.Entries != 2 || st.EvictionsRefused != 1 {
		t.Fatalf("raced eviction disturbed the cache: %+v", st)
	}
}

// TestExecPanicSite arms session.exec.panic and asserts the panic escapes
// Exec (for the handler's per-request recovery to catch) while the store —
// including the pinned entry — stays fully usable afterwards.
func TestExecPanicSite(t *testing.T) {
	s := mustOpen(t, Config{MaxBytes: 1 << 20, RowBlock: 64})
	e, _, err := s.GetOrCreate(context.Background(), "fp", buildOf(testPrepared(48, 1), nil))
	if err != nil {
		t.Fatal(err)
	}
	armFaults(t, "session.exec.panic:panic")
	func() {
		defer func() {
			if rec := recover(); rec == nil || !strings.Contains(fmt.Sprint(rec), "injected") {
				t.Errorf("armed exec panic did not fire: %v", rec)
			}
		}()
		_, _ = s.Exec(context.Background(), e, matrix.Ones(48), 1, 1)
	}()
	faultinject.Disable()
	checkExec(t, s, e)
	s.Release(e)
	if s.PinnedCount() != 0 {
		t.Fatalf("pins leaked: %d", s.PinnedCount())
	}
}

func TestExecIterations(t *testing.T) {
	s := mustOpen(t, Config{MaxBytes: 1 << 20, RowBlock: 64})
	e, _, err := s.GetOrCreate(context.Background(), "fp", buildOf(testPrepared(32, 1), nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release(e)
	m := e.Matrix()
	x := matrix.Ones(m.Cols)
	y, err := s.Exec(context.Background(), e, x, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: y = A^3 * x via the serial kernel.
	cur := x
	want := make([]float64, m.Rows)
	for i := 0; i < 3; i++ {
		m.SpMV(want, cur)
		cur = append([]float64(nil), want...)
	}
	if d := matrix.MaxAbsDiff(y, want); d > 1e-6 {
		t.Fatalf("3-iteration execution diverges from A^3*x by %g", d)
	}
}

// TestStoreTortureConcurrent is the -race torture gate: 64 goroutines mix
// upload, acquire, execute, and release over overlapping fingerprints
// against a budget small enough to force continuous eviction, asserting the
// byte budget is never exceeded, pins never leak, and no goroutines leak.
func TestStoreTortureConcurrent(t *testing.T) {
	baseline := runtime.NumGoroutine()
	one := preparedCost(testPrepared(32, 1).M)
	s := mustOpen(t, Config{MaxBytes: 3 * one, RowBlock: 64})

	const (
		workers = 64
		iters   = 40
		keys    = 8
	)
	var budgetViolations atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < iters; i++ {
				fp := fmt.Sprintf("key-%d", (w+i)%keys)
				scale := float64((w+i)%keys + 1)
				switch i % 3 {
				case 0: // upload (or hit) + execute
					e, _, err := s.GetOrCreate(ctx, fp, buildOf(testPrepared(32, scale), nil))
					if err != nil {
						if !errors.Is(err, ErrSaturated) {
							t.Errorf("GetOrCreate: %v", err)
						}
						continue
					}
					if _, err := s.Exec(ctx, e, matrix.Ones(32), 1, 1); err != nil {
						t.Errorf("Exec: %v", err)
					}
					s.Release(e)
				case 1: // warm predict path
					if e, ok := s.Acquire(fp); ok {
						_, _ = e.Selection()
						s.Release(e)
					}
				case 2: // distinct key to force eviction churn
					e, _, err := s.GetOrCreate(ctx, fmt.Sprintf("churn-%d-%d", w, i), buildOf(testPrepared(32, scale), nil))
					if err == nil {
						s.Release(e)
					} else if !errors.Is(err, ErrSaturated) {
						t.Errorf("churn GetOrCreate: %v", err)
					}
				}
				if st := s.Stats(); st.Bytes > st.MaxBytes {
					budgetViolations.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	if v := budgetViolations.Load(); v != 0 {
		t.Fatalf("byte budget exceeded %d times under torture", v)
	}
	if st := s.Stats(); st.PinnedEntries != 0 {
		t.Fatalf("pins leaked under torture: %+v", st)
	}
	// Goroutine-leak check: everything the store started must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline {
		t.Fatalf("goroutines leaked: %d before, %d after", baseline, g)
	}
}

// TestChaosSessionFromEnv is the nightly chaos entry point (ci.yml): with
// WISE_FAULTS armed over the session.* sites it hammers a spill-backed
// store concurrently and asserts the stateful invariants hold under
// injected corruption, eviction races, leader failures, and exec panics —
// budget never exceeded, no pin leaks, and a final restart over the same
// spill dir comes up clean. Skips when WISE_FAULTS is empty.
func TestChaosSessionFromEnv(t *testing.T) {
	if os.Getenv("WISE_FAULTS") == "" {
		t.Skip("WISE_FAULTS not set; chaos matrix only")
	}
	if err := faultinject.ConfigureFromEnv(os.Getenv); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Disable)

	dir := t.TempDir()
	one := preparedCost(testPrepared(32, 1).M)
	cfg := Config{MaxBytes: 4 * one, SpillDir: dir, RowBlock: 64}
	s := mustOpen(t, cfg)

	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				func() {
					// Injected panics stand in for request-scoped crashes;
					// the handler's recovery is simulated here.
					defer func() { _ = recover() }()
					fp := fmt.Sprintf("key-%d", (w+i)%6)
					e, _, err := s.GetOrCreate(context.Background(), fp, buildOf(testPrepared(32, float64(w%4+1)), nil))
					if err != nil {
						return
					}
					defer s.Release(e)
					_, _ = s.Exec(context.Background(), e, matrix.Ones(32), 1, 1)
				}()
				if st := s.Stats(); st.Bytes > st.MaxBytes {
					t.Errorf("byte budget exceeded under chaos: %+v", st)
				}
			}
		}(w)
	}
	wg.Wait()

	// Disarm and restart over the same spill dir: whatever chaos did to the
	// files, Open must come up clean — every file either rehydrates or is
	// quarantined, never a fatal error or a corrupt answer.
	faultinject.Disable()
	s2 := mustOpen(t, cfg)
	st := s2.Stats()
	if st.Bytes > st.MaxBytes {
		t.Fatalf("restart exceeded budget: %+v", st)
	}
	for _, el := range []string{"key-0", "key-1", "key-2"} {
		if e, ok := s2.Acquire(el); ok {
			checkExec(t, s2, e)
			s2.Release(e)
		}
	}
}
