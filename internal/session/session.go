// Package session is the stateful layer of wise-serve: a content-addressed
// store of prepared matrices that amortizes the inspector cost (parse +
// feature extraction + prediction + format conversion) across repeated
// requests — the inspector-executor argument at the heart of WISE, served
// over HTTP. A matrix uploaded once is addressed thereafter by the sha256
// fingerprint of its bytes; warm predict and SpMV calls skip the entire
// preprocessing pipeline.
//
// State is where the failure modes live, so robustness is designed in
// (RESILIENCE.md "Stateful serving"):
//
//   - memory is bounded by a byte-budgeted LRU whose eviction is cost-aware
//     and refuses to evict entries pinned by in-flight executions; when the
//     budget is fully pinned the store reports ErrSaturated and the caller
//     degrades to its stateless path instead of refusing;
//   - concurrent identical uploads are collapsed by singleflight dedup: one
//     leader runs the build, waiters block with their own deadlines, and a
//     failed leader fails every waiter with the leader's error;
//   - entries optionally spill to disk inside resilience checksummed
//     envelopes, so a restart rehydrates sessions and a corrupt spill file
//     is quarantined and rebuilt, never fatal;
//   - four registered fault sites (session.spill.corrupt, session.evict.race,
//     session.singleflight.leaderfail, session.exec.panic) make the
//     crash/race windows deterministically testable.
//
// Lock ordering: Entry.execMu > Entry.mu > Store.mu. Store.mu guards the
// map, the LRU list, byte accounting, pins, and singleflight flights;
// Entry.mu guards the per-entry mutable prediction state; execMu serializes
// kernel execution because some formats (SRVPack) carry scratch buffers and
// are not reentrant.
package session

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"sync"

	"wise/internal/core"
	"wise/internal/features"
	"wise/internal/kernels"
	"wise/internal/matrix"
	"wise/internal/resilience/faultinject"
)

// ErrSaturated reports that the byte budget cannot admit a new entry even
// after evicting every unpinned session — the store is full of pinned or
// irreducible state. Callers fall back to their stateless path; saturation
// is degradation, never refusal.
var ErrSaturated = errors.New("session: store saturated: byte budget held by pinned sessions")

// Config sizes the store.
type Config struct {
	// MaxBytes is the byte budget for cached sessions (matrix + features +
	// converted format, estimated analytically). Required, > 0.
	MaxBytes int64
	// SpillDir, when non-empty, enables disk spill of prepared sessions in
	// checksummed envelopes; Open rehydrates it.
	SpillDir string
	// RowBlock is the kernels row-block parameter used when a rehydrated or
	// re-predicted entry rebuilds its converted format.
	RowBlock int
}

// Prepared is the product of one full inspector pass over an uploaded
// matrix: everything a warm request needs to skip preprocessing entirely.
type Prepared struct {
	M      *matrix.CSR
	Feat   features.Features
	Sel    core.Selection
	GenID  string         // model generation the selection came from
	Format kernels.Format // may be nil; rebuilt lazily on first execution
}

// Entry is one cached session. Entries are handed out pinned (Acquire /
// GetOrCreate) and must be released; a pinned entry is never evicted.
type Entry struct {
	fp   string
	cost int64

	// LRU bookkeeping, protected by the owning Store's mu.
	elem *list.Element
	pins int

	mu           sync.Mutex
	sel          core.Selection // guarded by mu
	genID        string         // guarded by mu
	format       kernels.Format // guarded by mu
	formatMethod kernels.Method // guarded by mu; the method format was built for

	// execMu serializes kernel execution: SRVPack and friends carry scratch
	// buffers, so one format instance must not run two SpMVs concurrently.
	execMu sync.Mutex

	// Immutable after construction.
	m    *matrix.CSR
	feat features.Features
}

// Fingerprint returns the content address of the session's matrix.
func (e *Entry) Fingerprint() string { return e.fp }

// Matrix returns the cached parsed matrix (immutable; callers must not
// mutate it).
func (e *Entry) Matrix() *matrix.CSR { return e.m }

// Features returns the cached extracted features.
func (e *Entry) Features() features.Features { return e.feat }

// Selection returns the entry's current method selection and the model
// generation it was predicted under.
func (e *Entry) Selection() (core.Selection, string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sel, e.genID
}

// Stats is a point-in-time snapshot of one store's state and lifetime
// counters (per-store, unlike the process-wide obs instruments, so tests
// with several stores can assert deltas precisely).
type Stats struct {
	Entries       int
	PinnedEntries int
	Bytes         int64
	MaxBytes      int64

	Hits              int64 // fingerprint found in cache
	Misses            int64 // fingerprint absent, build started
	Builds            int64 // inspector passes actually run
	Converts          int64 // lazy format rebuilds (rehydration, generation change)
	Evictions         int64
	EvictionsRefused  int64 // eviction passes abandoned (injected race / all pinned)
	Saturations       int64 // inserts refused by the byte budget
	SingleflightWaits int64 // requests that waited on another upload's build
	LeaderFailures    int64 // singleflight leaders whose build failed
	Spills            int64 // sessions written to the spill dir
	Recoveries        int64 // sessions rehydrated from spill on Open
	Quarantined       int64 // corrupt spill files quarantined on Open
}

// Store is the content-addressed session cache. All exported methods are
// safe for concurrent use.
type Store struct {
	maxBytes int64
	spillDir string
	rowBlock int

	mu      sync.Mutex
	entries map[string]*list.Element // guarded by mu; values hold *Entry
	lru     *list.List               // guarded by mu; front = most recent
	flights map[string]*flight       // guarded by mu
	bytes   int64                    // guarded by mu
	pinned  int                      // guarded by mu; entries with pins > 0
	stats   Stats                    // guarded by mu (counter fields)
}

// flight is one in-progress build: the leader closes done exactly once with
// either e or err set; waiters registered before completion have their pin
// pre-granted by the leader.
type flight struct {
	done    chan struct{}
	waiters int // protected by the store's mu
	e       *Entry
	err     error
}

// Fingerprint returns the content address of a request body: the hex sha256
// of its raw bytes.
func Fingerprint(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// Open creates a store and, when cfg.SpillDir is set, rehydrates every
// valid spilled session from it. Corrupt spill files are quarantined (file
// renamed, counter bumped, session rebuilt on next upload) — a damaged
// spill dir never prevents startup.
func Open(cfg Config) (*Store, error) {
	if cfg.MaxBytes <= 0 {
		return nil, fmt.Errorf("session: MaxBytes must be positive, got %d", cfg.MaxBytes)
	}
	if cfg.RowBlock <= 0 {
		cfg.RowBlock = 1024
	}
	s := &Store{
		maxBytes: cfg.MaxBytes,
		spillDir: cfg.SpillDir,
		rowBlock: cfg.RowBlock,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		flights:  make(map[string]*flight),
		stats:    Stats{MaxBytes: cfg.MaxBytes},
	}
	if s.spillDir != "" {
		if err := os.MkdirAll(s.spillDir, 0o755); err != nil {
			return nil, fmt.Errorf("session: creating spill dir: %w", err)
		}
		if err := s.rehydrate(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// BuildFunc runs one inspector pass for a fingerprint that missed the
// cache. It is called outside all store locks.
type BuildFunc func(ctx context.Context) (*Prepared, error)

// GetOrCreate returns the pinned session for fp, building it with build on
// a miss. Concurrent calls for the same fingerprint are collapsed: one
// leader runs build, the rest wait (bounded by their own ctx); a failed
// leader propagates its error to every waiter. hit is true when the call
// did not run build itself (cache hit or singleflight waiter). The caller
// must Release the returned entry.
func (s *Store) GetOrCreate(ctx context.Context, fp string, build BuildFunc) (e *Entry, hit bool, err error) {
	s.mu.Lock()
	if el, ok := s.entries[fp]; ok {
		e := el.Value.(*Entry)
		s.pinLocked(e)
		s.lru.MoveToFront(el)
		s.stats.Hits++
		s.mu.Unlock()
		sessionHits.Inc()
		return e, true, nil
	}
	if fl, ok := s.flights[fp]; ok {
		fl.waiters++
		s.stats.SingleflightWaits++
		s.mu.Unlock()
		singleflightWaits.Inc()
		return s.waitFlight(ctx, fl)
	}
	fl := &flight{done: make(chan struct{})}
	s.flights[fp] = fl
	s.stats.Misses++
	s.mu.Unlock()
	sessionMisses.Inc()
	return s.lead(ctx, fp, fl, build)
}

// lead runs the build as the singleflight leader and completes the flight:
// on success the entry is inserted pinned once for the leader plus once per
// waiter; on failure (including an injected session.singleflight.leaderfail
// or a saturated budget) every waiter receives the leader's error.
func (s *Store) lead(ctx context.Context, fp string, fl *flight, build BuildFunc) (*Entry, bool, error) {
	var p *Prepared
	err := faultinject.Hit("session.singleflight.leaderfail")
	if err == nil {
		s.mu.Lock()
		s.stats.Builds++
		s.mu.Unlock()
		sessionBuilds.Inc()
		p, err = build(ctx)
	} else {
		err = fmt.Errorf("session: build for %s failed: %w", shortFP(fp), err)
	}

	e, insertErr := s.completeFlight(fp, fl, p, err)
	if insertErr != nil {
		return nil, false, insertErr
	}
	// Spill outside the store lock; a panic here (the injected
	// crash-mid-spill) leaves a consistent in-memory store and at worst an
	// uncommitted temp file on disk.
	if s.spillDir != "" {
		s.spill(e, p)
	}
	return e, false, nil
}

// completeFlight finishes the flight under the store lock: insert on
// success (pre-granting one pin per registered waiter), record the leader's
// error otherwise, and wake everyone.
func (s *Store) completeFlight(fp string, fl *flight, p *Prepared, buildErr error) (*Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.flights, fp)
	err := buildErr
	var e *Entry
	if err == nil {
		e, err = s.insertLocked(fp, p, 1+fl.waiters)
	}
	if err != nil {
		if fl.waiters > 0 || buildErr != nil {
			s.stats.LeaderFailures++
			singleflightLeaderFails.Inc()
		}
		fl.err = err
		close(fl.done)
		return nil, err
	}
	fl.e = e
	close(fl.done)
	return e, nil
}

// waitFlight blocks on a flight until the leader completes or ctx expires.
// A waiter that gives up after the leader already completed must return the
// pre-granted pin; one that gives up earlier deregisters so the leader does
// not grant it a pin. Either way no pin and no goroutine leaks.
func (s *Store) waitFlight(ctx context.Context, fl *flight) (*Entry, bool, error) {
	select {
	case <-fl.done:
		if fl.err != nil {
			return nil, false, fl.err
		}
		return fl.e, true, nil
	case <-ctx.Done():
		s.mu.Lock()
		defer s.mu.Unlock()
		select {
		case <-fl.done:
			if fl.err == nil {
				s.unpinLocked(fl.e)
			}
		default:
			fl.waiters--
		}
		return nil, false, fmt.Errorf("session: waiting for concurrent upload: %w", ctx.Err())
	}
}

// Acquire returns the pinned session for fp if cached; the caller must
// Release it. It never builds.
func (s *Store) Acquire(fp string) (*Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[fp]
	if !ok {
		s.stats.Misses++
		sessionMisses.Inc()
		return nil, false
	}
	e := el.Value.(*Entry)
	s.pinLocked(e)
	s.lru.MoveToFront(el)
	s.stats.Hits++
	sessionHits.Inc()
	return e, true
}

// Release returns a pin taken by Acquire or GetOrCreate.
func (s *Store) Release(e *Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.unpinLocked(e)
}

func (s *Store) pinLocked(e *Entry) {
	if e.pins == 0 {
		s.pinned++
	}
	e.pins++
	sessionPinned.Set(float64(s.pinned))
}

func (s *Store) unpinLocked(e *Entry) {
	if e.pins == 0 {
		return // double release; tolerated, never underflows
	}
	e.pins--
	if e.pins == 0 {
		s.pinned--
	}
	sessionPinned.Set(float64(s.pinned))
}

// insertLocked admits a prepared session under the byte budget, evicting
// unpinned LRU victims as needed, and returns the entry pinned pins times.
func (s *Store) insertLocked(fp string, p *Prepared, pins int) (*Entry, error) {
	cost := preparedCost(p.M)
	if !s.makeRoomLocked(cost) {
		s.stats.Saturations++
		sessionSaturations.Inc()
		return nil, fmt.Errorf("%w (need %d bytes, %d of %d in use, %d pinned entries)",
			ErrSaturated, cost, s.bytes, s.maxBytes, s.pinned)
	}
	e := &Entry{
		fp:           fp,
		cost:         cost,
		m:            p.M,
		feat:         p.Feat,
		sel:          p.Sel,
		genID:        p.GenID,
		format:       p.Format,
		formatMethod: p.Sel.Method,
	}
	e.elem = s.lru.PushFront(e)
	s.entries[fp] = e.elem
	s.bytes += cost
	if pins > 0 {
		s.pinned++
		e.pins = pins
	}
	s.updateGaugesLocked()
	return e, nil
}

// makeRoomLocked evicts unpinned sessions, oldest first, until need bytes
// fit in the budget. It reports false when that is impossible — every
// remaining entry is pinned by an in-flight execution, or need alone
// exceeds the budget. The session.evict.race site sits in the window
// between choosing a victim and unlinking it: an injected error stands in
// for the victim being pinned by a racing execution (the pass is abandoned
// and the caller degrades), an injected panic is the crash-mid-eviction
// case the restart tests recover from.
func (s *Store) makeRoomLocked(need int64) bool {
	if need > s.maxBytes {
		return false
	}
	for s.bytes+need > s.maxBytes {
		var victim *Entry
		for el := s.lru.Back(); el != nil; el = el.Prev() {
			if e := el.Value.(*Entry); e.pins == 0 {
				victim = e
				break
			}
		}
		if victim == nil {
			s.stats.EvictionsRefused++
			sessionEvictionsRefused.Inc()
			return false
		}
		if err := faultinject.Hit("session.evict.race"); err != nil {
			s.stats.EvictionsRefused++
			sessionEvictionsRefused.Inc()
			return false
		}
		s.removeLocked(victim)
		s.stats.Evictions++
		sessionEvictions.Inc()
	}
	return true
}

// removeLocked unlinks an entry and deletes its spill file, keeping the
// disk footprint bounded by the same budget as memory. The unlink is a
// fast, non-blocking syscall, acceptable under the store lock.
func (s *Store) removeLocked(e *Entry) {
	delete(s.entries, e.fp)
	s.lru.Remove(e.elem)
	s.bytes -= e.cost
	if s.spillDir != "" {
		if err := os.Remove(s.spillPath(e.fp)); err != nil && !errors.Is(err, os.ErrNotExist) {
			obsVerbosef("session: removing spill file for %s: %v", shortFP(e.fp), err)
		}
	}
	s.updateGaugesLocked()
}

// Refresh re-predicts the entry when the serving model generation changed,
// returning the (possibly updated) selection. The cached features make this
// a pure tree-inference call — no re-extraction. A method change invalidates
// the converted format lazily via the formatMethod tag.
func (s *Store) Refresh(e *Entry, genID string, predict func(features.Features) core.Selection) core.Selection {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.genID == genID {
		return e.sel
	}
	e.sel = predict(e.feat)
	e.genID = genID
	return e.sel
}

// Exec runs y = A*x iters times against the entry's cached converted
// format, rebuilding it first if absent (rehydrated session) or stale (the
// selection moved to a different method). For iters > 1 the matrix must be
// square — callers validate. The entry must be pinned by the caller for the
// duration of the call; session.exec.panic injects a panic here, exercising
// the handler's per-request recovery with a pin held.
func (s *Store) Exec(ctx context.Context, e *Entry, x []float64, iters, workers int) ([]float64, error) {
	e.execMu.Lock()
	defer e.execMu.Unlock()
	if err := faultinject.Hit("session.exec.panic"); err != nil {
		panic(fmt.Sprintf("session: exec: %v", err))
	}
	f := s.ensureFormat(e)
	y := make([]float64, e.m.Rows)
	src := x
	var tmp []float64
	for i := 0; i < iters; i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("session: exec: %w", err)
		}
		f.SpMVParallel(y, src, workers)
		if i+1 < iters {
			if tmp == nil {
				tmp = make([]float64, e.m.Cols)
			}
			copy(tmp, y)
			src = tmp
		}
	}
	sessionExecs.Inc()
	return y, nil
}

// ensureFormat returns a converted format matching the entry's current
// selection, rebuilding it when the cached one is absent or was built for a
// method the selection has since moved away from. Called with execMu held,
// so at most one rebuild runs per entry.
func (s *Store) ensureFormat(e *Entry) kernels.Format {
	e.mu.Lock()
	f, method := e.format, e.sel.Method
	if f != nil && e.formatMethod != method {
		f = nil
	}
	e.mu.Unlock()
	if f != nil {
		return f
	}
	f = kernels.Build(e.m, method, s.rowBlock)
	sessionConverts.Inc()
	s.mu.Lock()
	s.stats.Converts++
	s.mu.Unlock()
	e.mu.Lock()
	if e.sel.Method == method {
		e.format, e.formatMethod = f, method
	}
	e.mu.Unlock()
	return f
}

// Stats returns a snapshot of the store's state and lifetime counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.lru.Len()
	st.PinnedEntries = s.pinned
	st.Bytes = s.bytes
	st.MaxBytes = s.maxBytes
	return st
}

// PinnedCount reports how many sessions are pinned by in-flight work right
// now — the number the serve drain path records at SIGTERM.
func (s *Store) PinnedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pinned
}

func (s *Store) updateGaugesLocked() {
	sessionEntries.Set(float64(s.lru.Len()))
	sessionBytes.Set(float64(s.bytes))
	sessionPinned.Set(float64(s.pinned))
}

// preparedCost estimates the resident bytes of one session: the CSR arrays,
// the feature vector, and a worst-case allowance for the converted format
// (every supported format is O(nnz) values + O(nnz) indices + O(rows)
// scheduling metadata, within a small constant of CSR itself). Charging the
// format allowance up front — whether or not the format is currently
// materialized — keeps the byte-budget invariant exact: lazily rebuilding a
// rehydrated session's format never pushes the store over budget.
func preparedCost(m *matrix.CSR) int64 {
	nnz := int64(m.NNZ())
	rows := int64(m.Rows)
	csr := 12*nnz + 8*(rows+1) // vals + colidx + rowptr
	format := 16*nnz + 16*rows // converted artifact allowance (padding included)
	const fixed = 4096         // entry struct, feature vector, map/list overhead
	return csr + format + fixed
}

func shortFP(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}
