package session

import "wise/internal/obs"

// Observability instruments of the session store (OBSERVABILITY.md). These
// are process-wide (the /metricz view); per-store exact numbers live in
// Stats, which tests use for delta assertions.
var (
	sessionHits             = obs.NewCounter("session.hits")
	sessionMisses           = obs.NewCounter("session.misses")
	sessionBuilds           = obs.NewCounter("session.builds")
	sessionConverts         = obs.NewCounter("session.converts")
	sessionEvictions        = obs.NewCounter("session.evictions")
	sessionEvictionsRefused = obs.NewCounter("session.evictions_refused")
	sessionSaturations      = obs.NewCounter("session.saturations")
	sessionExecs            = obs.NewCounter("session.execs")
	sessionSpills           = obs.NewCounter("session.spills")
	sessionSpillFailures    = obs.NewCounter("session.spill_failures")
	sessionRecoveries       = obs.NewCounter("session.recoveries")
	sessionQuarantined      = obs.NewCounter("session.spill_quarantined")

	singleflightWaits       = obs.NewCounter("session.singleflight_waits")
	singleflightLeaderFails = obs.NewCounter("session.singleflight_leader_failures")

	sessionEntries = obs.NewGauge("session.entries")
	sessionBytes   = obs.NewGauge("session.bytes")
	sessionPinned  = obs.NewGauge("session.pinned")
)

// obsVerbosef narrates non-fatal store events (spill cleanup failures,
// quarantines) through the shared verbose log.
func obsVerbosef(format string, args ...any) { obs.Verbosef(format, args...) }
