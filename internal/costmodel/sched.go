package costmodel

import "wise/internal/kernels"

// scheduleTime resolves parallel execution time from per-unit costs: it
// assigns units to threads under the scheduling policy and returns the
// busiest thread's cycles.
//
//   - StCont: contiguous equal-count unit spans per thread (the paper's
//     "divide the rows by the number of threads").
//   - St: unit u goes to thread u mod P (round-robin).
//   - Dyn: units are claimed in order by whichever thread frees up first —
//     modelled by greedy assignment to the least-loaded thread — plus a
//     per-unit claim overhead.
func scheduleTime(unitCycles []float64, threads int, sched kernels.Sched, dynOverhead float64) float64 {
	if threads < 1 {
		threads = 1
	}
	n := len(unitCycles)
	if n == 0 {
		return 0
	}
	if threads == 1 {
		var sum float64
		for _, c := range unitCycles {
			sum += c
		}
		if sched == kernels.Dyn {
			sum += dynOverhead * float64(n)
		}
		return sum
	}
	load := make([]float64, threads)
	switch sched {
	case kernels.StCont:
		for w := 0; w < threads; w++ {
			lo, hi := w*n/threads, (w+1)*n/threads
			for u := lo; u < hi; u++ {
				load[w] += unitCycles[u]
			}
		}
	case kernels.St:
		for u, c := range unitCycles {
			load[u%threads] += c
		}
	case kernels.Dyn:
		for _, c := range unitCycles {
			best := 0
			for w := 1; w < threads; w++ {
				if load[w] < load[best] {
					best = w
				}
			}
			load[best] += c + dynOverhead
		}
	}
	var max float64
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return max
}
