package costmodel

import (
	"wise/internal/kernels"
	"wise/internal/machine"
	"wise/internal/matrix"
	"wise/internal/obs"
)

// Observability instruments (documented in OBSERVABILITY.md). Each simulated
// access bumps the per-simulator CacheSim.Accesses field (single-goroutine,
// free); the totals are flushed to the shared atomic counter once per
// estimate so the simulator's inner loop stays untouched.
var (
	cacheAccesses   = obs.NewCounter("costmodel.cache_accesses")
	methodEstimates = obs.NewCounter("costmodel.method_estimates")
)

// Virtual address-space bases for the cache simulator. The x vector and the
// CFS-gathered x~ live in disjoint regions so their lines never alias.
const (
	xBase  = int64(0)
	xgBase = int64(1) << 40
)

// Estimator computes deterministic execution-time estimates (in cycles of
// the modelled machine) for SpMV methods, format conversions, and feature
// extraction.
type Estimator struct {
	Mach    machine.Machine
	Threads int // simulated thread count; 0 means Mach.Cores

	// FlatMemory disables the cache hierarchy: every x access costs the L2
	// hit latency regardless of locality. Used by the ablation benchmarks to
	// quantify how much the locality model matters.
	FlatMemory bool
}

// New returns an Estimator for the machine with its full core count.
func New(mach machine.Machine) *Estimator {
	return &Estimator{Mach: mach}
}

func (e *Estimator) threads() int {
	if e.Threads > 0 {
		return e.Threads
	}
	return e.Mach.Cores
}

func (e *Estimator) xAccess(cs *CacheSim, addr int64) float64 {
	if e.FlatMemory {
		return e.Mach.L2.HitCycles
	}
	return cs.Access(addr)
}

// MethodCycles estimates one parallel SpMV execution of the method on the
// matrix, building the format internally.
func (e *Estimator) MethodCycles(m *matrix.CSR, method kernels.Method) float64 {
	methodEstimates.Inc()
	switch method.Kind {
	case kernels.CSR:
		return e.CSRCycles(m, method.Sched)
	case kernels.SegCSRKind:
		return e.SegCSRCycles(kernels.BuildSegCSR(m, method.C, method.Sched, e.Mach.RowBlock))
	default:
		return e.PackCycles(kernels.BuildSRVPack(m, method))
	}
}

// SegCSRCycles estimates the cache-blocked CSR extension method: column
// segments execute sequentially; within a segment, row blocks are the
// scheduling units. Every row-pointer stream is re-read per segment — the
// format's inherent overhead, which the model charges faithfully.
func (e *Estimator) SegCSRCycles(f *kernels.SegCSR) float64 {
	mach := e.Mach
	cs := NewCacheSim(mach)
	invBPC := 1 / mach.StreamBytesPerCycle
	threads := e.threads()
	k := f.RowBlock
	nBlocks := (f.Rows + k - 1) / k
	var total float64
	blocks := make([]float64, nBlocks) // reused across segments; zeroed each pass
	for si := range f.Segs {
		seg := &f.Segs[si]
		clear(blocks)
		for i := 0; i < f.Rows; i++ {
			lo, hi := seg.RowPtr[i], seg.RowPtr[i+1]
			nnz := float64(hi - lo)
			cycles := (8 + nnz*12 + 8) * invBPC
			cycles += nnz * mach.ScalarOpCycles
			for p := lo; p < hi; p++ {
				cycles += e.xAccess(cs, xBase+int64(seg.ColIdx[p])*8)
			}
			blocks[i/k] += cycles
		}
		total += scheduleTime(blocks, threads, f.Sched, mach.DynChunkOverhead)
	}
	cacheAccesses.Add(cs.Accesses)
	return total
}

// CSRCycles estimates a parallel CSR SpMV under the scheduling policy.
func (e *Estimator) CSRCycles(m *matrix.CSR, sched kernels.Sched) float64 {
	mach := e.Mach
	cs := NewCacheSim(mach)
	perRow := make([]float64, m.Rows)
	invBPC := 1 / mach.StreamBytesPerCycle
	for i := 0; i < m.Rows; i++ {
		cols, _ := m.Row(i)
		nnz := float64(len(cols))
		cycles := (8 + nnz*12 + 8) * invBPC // row ptr + (val,colid) stream + y store
		cycles += nnz * mach.ScalarOpCycles // scalar FMA, mostly hidden under memory
		for _, c := range cols {
			cycles += e.xAccess(cs, xBase+int64(c)*8)
		}
		perRow[i] = cycles
	}
	cacheAccesses.Add(cs.Accesses)
	threads := e.threads()
	if sched == kernels.StCont {
		return scheduleTime(perRow, threads, kernels.StCont, 0)
	}
	// Aggregate rows into K-row blocks for Dyn/St units.
	k := mach.RowBlock
	nBlocks := (m.Rows + k - 1) / k
	blocks := make([]float64, nBlocks)
	for i, c := range perRow {
		blocks[i/k] += c
	}
	return scheduleTime(blocks, threads, sched, mach.DynChunkOverhead)
}

// PackCycles estimates a parallel SRVPack SpMV (any vectorized method).
// Segments execute back to back, as in the kernel; the CFS gather of x~ is
// charged once per SpMV and parallelizes across threads.
func (e *Estimator) PackCycles(p *kernels.SRVPack) float64 {
	mach := e.Mach
	cs := NewCacheSim(mach)
	invBPC := 1 / mach.StreamBytesPerCycle
	threads := e.threads()
	var total float64

	if p.ColPerm != nil {
		// x~[rank] = x[perm[rank]]: random reads of x, streaming writes of
		// x~, streaming reads of the permutation array.
		var gather float64
		for _, old := range p.ColPerm {
			gather += e.xAccess(cs, xBase+int64(old)*8)
			gather += (8 + 4) * invBPC
		}
		total += gather / float64(threads)
	}

	vecPositions := float64((p.C + mach.VectorWidth - 1) / mach.VectorWidth)
	maxChunks := 0
	for si := range p.Segments {
		if c := p.Segments[si].Chunks(); c > maxChunks {
			maxChunks = c
		}
	}
	unitBuf := make([]float64, maxChunks) // reused across segments; fully overwritten
	for si := range p.Segments {
		seg := &p.Segments[si]
		unit := unitBuf[:seg.Chunks()]
		for k := range unit {
			lo, hi := seg.ChunkOff[k], seg.ChunkOff[k+1]
			w := float64(hi - lo)
			base := k * p.C
			lanes := len(seg.RowOrder) - base
			if lanes > p.C {
				lanes = p.C
			}
			cycles := w * vecPositions * mach.VecOpCycles
			cycles += (w*float64(p.C)*12 + float64(lanes)*4 + 16 + float64(lanes)*8) * invBPC
			// x accesses in kernel order: lane outer, position inner.
			for l := 0; l < lanes; l++ {
				for pos := lo; pos < hi; pos++ {
					col := seg.ColIdx[pos*int64(p.C)+int64(l)]
					cycles += e.xAccess(cs, xgBase+int64(col)*8)
				}
			}
			unit[k] = cycles
		}
		total += scheduleTime(unit, threads, p.Method.Sched, mach.DynChunkOverhead)
	}
	cacheAccesses.Add(cs.Accesses)
	return total
}

// BestCSR returns the fastest CSR scheduling variant and its cycles — the
// paper's normalization baseline.
func (e *Estimator) BestCSR(m *matrix.CSR) (kernels.Method, float64) {
	best := kernels.Method{Kind: kernels.CSR, Sched: kernels.Dyn}
	bestCycles := e.CSRCycles(m, kernels.Dyn)
	for _, sched := range []kernels.Sched{kernels.St, kernels.StCont} {
		if c := e.CSRCycles(m, sched); c < bestCycles {
			bestCycles = c
			best = kernels.Method{Kind: kernels.CSR, Sched: sched}
		}
	}
	return best, bestCycles
}

// Preprocessing cost weights (cycles per operation). Element moves pay a
// read+write round trip through the memory system; comparisons and scans are
// compute. parallelFraction models that format conversion and feature
// passes parallelize imperfectly (sorts serialize).
const (
	cyclesPerMove       = 2.0
	cyclesPerComparison = 0.5
	cyclesPerScan       = 1.0
	parallelFraction    = 0.85
)

func (e *Estimator) opsCycles(ops kernels.BuildOps) float64 {
	serial := float64(ops.ElementsMoved)*cyclesPerMove +
		ops.Comparisons*cyclesPerComparison +
		float64(ops.ScanOps)*cyclesPerScan
	p := float64(e.threads())
	// Amdahl: a parallelFraction of the work spreads over p threads.
	return serial * ((1 - parallelFraction) + parallelFraction/p)
}

// PreprocessCycles estimates the format-conversion time of a method.
func (e *Estimator) PreprocessCycles(rows, cols int, nnz int64, method kernels.Method) float64 {
	return e.opsCycles(kernels.EstimateBuildOps(rows, cols, nnz, method))
}

// FeatureExtractionCycles estimates WISE's feature pass on a matrix.
func (e *Estimator) FeatureExtractionCycles(rows, cols int, nnz int64, tiles int) float64 {
	return e.opsCycles(kernels.FeatureExtractionOps(rows, cols, nnz, tiles))
}
