package costmodel

import (
	"math/rand"
	"testing"

	"wise/internal/gen"
	"wise/internal/kernels"
	"wise/internal/machine"
	"wise/internal/matrix"
)

func TestCacheSimSequentialHits(t *testing.T) {
	cs := NewCacheSim(machine.Scaled())
	// Stream 64 consecutive doubles: 8 lines, 8 accesses each -> 7/8 hit L1.
	for i := int64(0); i < 64; i++ {
		cs.Access(i * 8)
	}
	if cs.Accesses != 64 {
		t.Fatalf("accesses = %d", cs.Accesses)
	}
	if cs.Misses != 8 {
		t.Errorf("cold misses = %d, want 8 (one per line)", cs.Misses)
	}
	if cs.L1Hits != 56 {
		t.Errorf("L1 hits = %d, want 56", cs.L1Hits)
	}
}

func TestCacheSimReuseInL1(t *testing.T) {
	cs := NewCacheSim(machine.Scaled())
	cs.Access(0)
	if c := cs.Access(0); c != machine.Scaled().L1.HitCycles {
		t.Errorf("immediate reuse cost %v, want L1 hit", c)
	}
}

func TestCacheSimCapacityMiss(t *testing.T) {
	m := machine.Scaled()
	cs := NewCacheSim(m)
	// Touch a working set 4x the LLC, twice: second pass must still miss.
	span := int64(m.LLC.SizeBytes * 4)
	line := int64(m.L1.LineBytes)
	for pass := 0; pass < 2; pass++ {
		for a := int64(0); a < span; a += line {
			cs.Access(a)
		}
	}
	missRate := float64(cs.Misses) / float64(cs.Accesses)
	if missRate < 0.95 {
		t.Errorf("streaming over 4x LLC: miss rate %v, want ~1", missRate)
	}
}

func TestCacheSimLLCResidentWorkingSet(t *testing.T) {
	m := machine.Scaled()
	cs := NewCacheSim(m)
	// A working set at half the LLC, accessed repeatedly, should mostly hit
	// after the first pass.
	span := int64(m.LLC.SizeBytes / 2)
	line := int64(m.L1.LineBytes)
	for pass := 0; pass < 4; pass++ {
		for a := int64(0); a < span; a += line {
			cs.Access(a)
		}
	}
	hitRate := 1 - float64(cs.Misses)/float64(cs.Accesses)
	if hitRate < 0.7 {
		t.Errorf("LLC-resident set: hit rate %v, want >= 0.7", hitRate)
	}
}

func TestCacheSimReset(t *testing.T) {
	cs := NewCacheSim(machine.Scaled())
	cs.Access(0)
	cs.Reset()
	if cs.Accesses != 0 {
		t.Error("counters not cleared")
	}
	if cs.l1.lookup(0) {
		t.Error("tags not cleared")
	}
}

func TestScheduleTime(t *testing.T) {
	units := []float64{4, 1, 1, 1, 1, 4}
	// 1 thread: plain sum.
	if got := scheduleTime(units, 1, kernels.StCont, 0); got != 12 {
		t.Errorf("1 thread = %v", got)
	}
	// StCont with 2 threads: {4,1,1}=6 and {1,1,4}=6.
	if got := scheduleTime(units, 2, kernels.StCont, 0); got != 6 {
		t.Errorf("StCont 2 threads = %v", got)
	}
	// St round robin: {4,1,1}=6, {1,1,4}=6.
	if got := scheduleTime(units, 2, kernels.St, 0); got != 6 {
		t.Errorf("St 2 threads = %v", got)
	}
	// Dyn models first-free claiming: t0 gets u0 (5 with overhead) then u4
	// (7); t1 gets u1,u2,u3 (6) then u5 (11). Max is 11.
	if got := scheduleTime(units, 2, kernels.Dyn, 1); got != 11 {
		t.Errorf("Dyn 2 threads = %v, want 11", got)
	}
	// Imbalanced static: one heavy unit at the end of the first span.
	skewed := []float64{10, 1, 1, 1}
	if got := scheduleTime(skewed, 2, kernels.StCont, 0); got != 11 {
		t.Errorf("StCont skewed = %v, want 11", got)
	}
	if got := scheduleTime(skewed, 2, kernels.Dyn, 0); got != 10 {
		t.Errorf("Dyn skewed = %v, want 10 (balances)", got)
	}
	if got := scheduleTime(nil, 4, kernels.Dyn, 1); got != 0 {
		t.Errorf("empty units = %v", got)
	}
}

// scaledEstimator returns the standard experiment estimator.
func scaledEstimator() *Estimator { return New(machine.Scaled()) }

func TestVectorizationBeatsCSROnBalanced(t *testing.T) {
	// Paper Figure 2/6: on balanced, high-locality scientific matrices the
	// vectorized methods beat CSR.
	rng := rand.New(rand.NewSource(1))
	m := gen.Banded(rng, 4096, []int{-2, -1, 0, 1, 2, 3, 4, 5})
	e := scaledEstimator()
	_, csr := e.BestCSR(m)
	sell := e.MethodCycles(m, kernels.Method{Kind: kernels.SELLPACK, C: 8, Sched: kernels.StCont})
	if sell >= csr {
		t.Errorf("SELLPACK %v not faster than best CSR %v on balanced banded", sell, csr)
	}
}

func TestPaddingKillsSELLPACKOnSkew(t *testing.T) {
	// Paper Figure 5: on high-skew matrices SELLPACK pads heavily and loses
	// to Sell-c-R, which sorts rows globally.
	rng := rand.New(rand.NewSource(2))
	m := gen.RMAT(rng, 12, 16, gen.HighSkew)
	m = gen.CapRowDegree(rng, m, m.NNZ()/500) // paper-scale hub fraction
	e := scaledEstimator()
	sellpack := e.MethodCycles(m, kernels.Method{Kind: kernels.SELLPACK, C: 8, Sched: kernels.Dyn})
	sellcr := e.MethodCycles(m, kernels.Method{Kind: kernels.SellCR, C: 8, Sched: kernels.Dyn})
	if sellcr >= sellpack {
		t.Errorf("Sell-c-R %v not faster than SELLPACK %v on high skew", sellcr, sellpack)
	}
}

func TestLAVWinsOnLargeSkewedMatrices(t *testing.T) {
	// Paper Figure 5: LAV outperforms when rows exceed the LLC and skew is
	// high (the x vector no longer fits; segmentation restores locality).
	rng := rand.New(rand.NewSource(3))
	mach := machine.Scaled()
	rows := mach.LLCDoubles() * 4 // well beyond LLC
	m := gen.RMATRows(rng, rows, 16, gen.HighSkew)
	e := New(mach)
	lav := e.MethodCycles(m, kernels.Method{Kind: kernels.LAV, C: 8, T: 0.7, Sched: kernels.Dyn})
	sellcr := e.MethodCycles(m, kernels.Method{Kind: kernels.SellCR, C: 8, Sched: kernels.Dyn})
	if lav >= sellcr {
		t.Errorf("LAV %v not faster than Sell-c-R %v on large skewed matrix", lav, sellcr)
	}
}

func TestSellCRWinsOnSmallMatrices(t *testing.T) {
	// Paper Figure 5: for small matrices (x fits in LLC), Sell-c-R beats the
	// LAV machinery, whose gather adds overhead without locality benefit.
	rng := rand.New(rand.NewSource(4))
	mach := machine.Scaled()
	rows := mach.LLCDoubles() / 4 // well within LLC
	m := gen.RMATRows(rng, rows, 8, gen.LowSkew)
	e := New(mach)
	lav := e.MethodCycles(m, kernels.Method{Kind: kernels.LAV, C: 8, T: 0.7, Sched: kernels.Dyn})
	sellcr := e.MethodCycles(m, kernels.Method{Kind: kernels.SellCR, C: 8, Sched: kernels.Dyn})
	if sellcr >= lav {
		t.Errorf("Sell-c-R %v not faster than LAV %v on small matrix", sellcr, lav)
	}
}

func TestDynBeatsStContOnSkew(t *testing.T) {
	// Paper Figure 3: dynamic scheduling wins on skewed (web/social)
	// matrices; static contiguous wins on balanced scientific ones.
	rng := rand.New(rand.NewSource(5))
	e := scaledEstimator()
	skewed := gen.RMAT(rng, 12, 16, gen.HighSkew)
	dyn := e.CSRCycles(skewed, kernels.Dyn)
	stcont := e.CSRCycles(skewed, kernels.StCont)
	if dyn >= stcont {
		t.Errorf("Dyn %v not faster than StCont %v on skewed matrix", dyn, stcont)
	}
	balanced := gen.Banded(rng, 4096, []int{-1, 0, 1, 2})
	dyn = e.CSRCycles(balanced, kernels.Dyn)
	stcont = e.CSRCycles(balanced, kernels.StCont)
	if stcont >= dyn {
		t.Errorf("StCont %v not faster than Dyn %v on balanced matrix", stcont, dyn)
	}
}

func TestSigmaTradeoffExists(t *testing.T) {
	// Larger sigma reduces padding but can hurt locality; on a high-locality
	// banded matrix with uniform rows, large sigma must not help.
	rng := rand.New(rand.NewSource(6))
	m := gen.Stencil2D(64, 64, true)
	e := scaledEstimator()
	small := e.MethodCycles(m, kernels.Method{Kind: kernels.SellCSigma, C: 8, Sigma: 32, Sched: kernels.StCont})
	full := e.MethodCycles(m, kernels.Method{Kind: kernels.SellCR, C: 8, Sched: kernels.Dyn})
	if small >= full {
		t.Errorf("small-sigma %v not faster than full sort %v on high-locality matrix", small, full)
	}
	_ = rng
}

func TestEstimatesPositiveAndDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := gen.RMAT(rng, 9, 8, gen.MedSkew)
	e := scaledEstimator()
	for _, method := range kernels.ModelSpace(machine.Scaled()) {
		a := e.MethodCycles(m, method)
		b := e.MethodCycles(m, method)
		if a <= 0 {
			t.Errorf("%s: non-positive estimate %v", method, a)
		}
		if a != b {
			t.Errorf("%s: nondeterministic estimate", method)
		}
	}
}

func TestFlatMemoryAblationChangesRanking(t *testing.T) {
	// Without the cache model, locality-driven methods lose their edge: the
	// estimate for LAV on a large skewed matrix must differ materially.
	rng := rand.New(rand.NewSource(8))
	mach := machine.Scaled()
	m := gen.RMATRows(rng, mach.LLCDoubles()*2, 16, gen.HighSkew)
	full := New(mach)
	flat := New(mach)
	flat.FlatMemory = true
	method := kernels.Method{Kind: kernels.LAV, C: 8, T: 0.7, Sched: kernels.Dyn}
	a, b := full.MethodCycles(m, method), flat.MethodCycles(m, method)
	if a == b {
		t.Error("flat-memory ablation has no effect")
	}
}

func TestPreprocessCyclesOrdering(t *testing.T) {
	e := scaledEstimator()
	rows, cols, nnz := 4096, 4096, int64(65536)
	order := []kernels.Method{
		{Kind: kernels.CSR, Sched: kernels.Dyn},
		{Kind: kernels.SELLPACK, C: 8, Sched: kernels.Dyn},
		{Kind: kernels.SellCSigma, C: 8, Sigma: 512, Sched: kernels.Dyn},
		{Kind: kernels.SellCR, C: 8, Sched: kernels.Dyn},
		{Kind: kernels.LAV1Seg, C: 8, Sched: kernels.Dyn},
		{Kind: kernels.LAV, C: 8, T: 0.7, Sched: kernels.Dyn},
	}
	prev := -1.0
	for _, method := range order {
		c := e.PreprocessCycles(rows, cols, nnz, method)
		if c < prev {
			t.Errorf("%s preprocess %v cheaper than a cheaper-ranked method %v", method, c, prev)
		}
		prev = c
	}
	if e.PreprocessCycles(rows, cols, nnz, order[0]) != 0 {
		t.Error("CSR preprocessing should be free")
	}
}

func TestFeatureExtractionCheaperThanLAVConversion(t *testing.T) {
	e := scaledEstimator()
	rows, cols, nnz := 16384, 16384, int64(1<<20)
	feat := e.FeatureExtractionCycles(rows, cols, nnz, 64*64)
	lav := e.PreprocessCycles(rows, cols, nnz, kernels.Method{Kind: kernels.LAV, C: 8, T: 0.7, Sched: kernels.Dyn})
	if feat >= lav {
		t.Errorf("feature pass %v not cheaper than LAV conversion %v", feat, lav)
	}
}

func TestThreadsOverride(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := gen.RMAT(rng, 10, 8, gen.LowLoc)
	e1 := scaledEstimator()
	e1.Threads = 1
	e24 := scaledEstimator()
	t1 := e1.CSRCycles(m, kernels.StCont)
	t24 := e24.CSRCycles(m, kernels.StCont)
	if t24 >= t1 {
		t.Errorf("24 threads %v not faster than 1 thread %v", t24, t1)
	}
	if t1 > 30*t24 {
		t.Errorf("speedup %v exceeds thread count", t1/t24)
	}
}

func TestEmptyMatrixEstimate(t *testing.T) {
	m := matrix.NewCOO(16, 16).ToCSR()
	e := scaledEstimator()
	for _, method := range kernels.ModelSpace(machine.Scaled()) {
		if c := e.MethodCycles(m, method); c < 0 {
			t.Errorf("%s: negative cycles on empty matrix", method)
		}
	}
}

func TestCacheLRUEvictionOrder(t *testing.T) {
	// A direct probe of LRU within one set: with simulated associativity A,
	// touching A distinct conflicting lines then re-touching the first must
	// hit; touching A+1 then the first must miss.
	m := machine.Scaled()
	cs := NewCacheSim(m)
	// Lines that map to the same L1 set: stride = sets * lineBytes.
	sets := m.L1.SizeBytes / (m.L1.LineBytes * m.L1.Assoc)
	assoc := m.L1.Assoc
	if assoc > maxSimAssoc {
		sets = sets * assoc / maxSimAssoc
		for sets&(sets-1) != 0 {
			sets &= sets - 1
		}
		assoc = maxSimAssoc
	}
	stride := int64(sets * m.L1.LineBytes)
	for w := 0; w < assoc; w++ {
		cs.Access(int64(w) * stride)
	}
	before := cs.L1Hits
	cs.Access(0) // still resident
	if cs.L1Hits != before+1 {
		t.Errorf("LRU way lost prematurely")
	}
	// Fill one more conflicting line; the LRU victim is line 1*stride.
	cs.Access(int64(assoc) * stride)
	before = cs.L1Hits
	cs.Access(1 * stride)
	if cs.L1Hits != before {
		t.Errorf("evicted line still hit in L1")
	}
}

func TestSegCSRCyclesSegmentsCostMore(t *testing.T) {
	// For an LLC-resident matrix, extra segments add row-pointer re-scan
	// overhead without locality benefit: more segments must not be cheaper.
	rng := rand.New(rand.NewSource(21))
	m := gen.Uniform(rng, 2048, 8)
	e := scaledEstimator()
	one := e.SegCSRCycles(kernels.BuildSegCSR(m, 0, kernels.Dyn, 64))
	many := e.SegCSRCycles(kernels.BuildSegCSR(m, 64, kernels.Dyn, 64))
	if many <= one {
		t.Errorf("64-col segments %v cheaper than single segment %v on small matrix", many, one)
	}
}

func TestSegCSRHelpsWhenXExceedsLLC(t *testing.T) {
	// On a matrix whose x far exceeds the LLC, cache blocking must beat the
	// unsegmented scan for a uniformly random column pattern.
	rng := rand.New(rand.NewSource(22))
	mach := machine.Scaled()
	n := mach.LLCDoubles() * 8
	m := gen.Uniform(rng, n, 16)
	e := New(mach)
	plain := e.CSRCycles(m, kernels.Dyn)
	blocked := e.SegCSRCycles(kernels.BuildSegCSR(m, mach.LLCDoubles()/2, kernels.Dyn, mach.RowBlock))
	if blocked >= plain {
		t.Errorf("SegCSR %v not faster than plain CSR %v when x exceeds LLC", blocked, plain)
	}
}
