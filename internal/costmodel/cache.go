// Package costmodel estimates the execution time of every SpMV method on the
// paper's machine model, deterministically and host-independently. It drives
// a set-associative LRU cache simulator with the exact access stream of the
// built format (including padding slots, CFS gathers, and segment phases),
// charges sequential array traffic at stream bandwidth, charges vector
// compute per chunk position, and resolves parallel execution by assigning
// per-unit costs to threads under the method's scheduling policy.
//
// This replaces wall-clock measurement on the authors' 24-core AVX-512
// Skylake (see DESIGN.md): the paper's phenomena — padding waste, input
// vector locality, LLC segmentation, load imbalance — are all architectural
// mechanisms the simulator models explicitly.
package costmodel

import "wise/internal/machine"

// maxSimAssoc caps the simulated associativity; real associativities above
// this add little fidelity at significant simulation cost.
const maxSimAssoc = 4

// cacheLevel is one set-associative LRU cache. Ways of a set are kept in
// MRU-first order within a flat tag array.
type cacheLevel struct {
	tags      []int64 // sets*assoc entries, -1 = invalid
	setMask   int64
	assoc     int
	hitCycles float64
}

func newCacheLevel(c machine.Cache) *cacheLevel {
	sets := c.SizeBytes / (c.LineBytes * c.Assoc)
	if sets < 1 {
		sets = 1
	}
	// Power-of-two set count for mask indexing; round down.
	for sets&(sets-1) != 0 {
		sets &= sets - 1
	}
	assoc := c.Assoc
	if assoc > maxSimAssoc {
		// Preserve capacity: fold extra ways into extra sets.
		sets = sets * assoc / maxSimAssoc
		for sets&(sets-1) != 0 {
			sets &= sets - 1
		}
		assoc = maxSimAssoc
	}
	lv := &cacheLevel{
		tags:      make([]int64, sets*assoc),
		setMask:   int64(sets - 1),
		assoc:     assoc,
		hitCycles: c.HitCycles,
	}
	for i := range lv.tags {
		lv.tags[i] = -1
	}
	return lv
}

// lookup probes the level for line; on hit it refreshes LRU order and
// returns true. On miss it returns false without inserting.
func (lv *cacheLevel) lookup(line int64) bool {
	base := int((line & lv.setMask)) * lv.assoc
	ways := lv.tags[base : base+lv.assoc]
	if ways[0] == line {
		return true
	}
	for w := 1; w < len(ways); w++ {
		if ways[w] == line {
			copy(ways[1:w+1], ways[:w])
			ways[0] = line
			return true
		}
	}
	return false
}

// insert places line as MRU, evicting the LRU way.
func (lv *cacheLevel) insert(line int64) {
	base := int((line & lv.setMask)) * lv.assoc
	ways := lv.tags[base : base+lv.assoc]
	copy(ways[1:], ways[:len(ways)-1])
	ways[0] = line
}

// reset invalidates the level.
func (lv *cacheLevel) reset() {
	for i := range lv.tags {
		lv.tags[i] = -1
	}
}

// CacheSim is the three-level inclusive hierarchy.
type CacheSim struct {
	l1, l2, llc *cacheLevel
	missCycles  float64
	lineShift   uint

	// Counters for tests and diagnostics.
	Accesses, L1Hits, L2Hits, LLCHits, Misses int64
}

// NewCacheSim builds a simulator for the machine's hierarchy.
func NewCacheSim(m machine.Machine) *CacheSim {
	shift := uint(0)
	for (1 << shift) < m.L1.LineBytes {
		shift++
	}
	return &CacheSim{
		l1:         newCacheLevel(m.L1),
		l2:         newCacheLevel(m.L2),
		llc:        newCacheLevel(m.LLC),
		missCycles: m.MissCycles,
		lineShift:  shift,
	}
}

// Access simulates a load of the byte address and returns its cost in
// cycles. Misses fill all levels (inclusive hierarchy).
func (cs *CacheSim) Access(addr int64) float64 {
	line := addr >> cs.lineShift
	cs.Accesses++
	if cs.l1.lookup(line) {
		cs.L1Hits++
		return cs.l1.hitCycles
	}
	if cs.l2.lookup(line) {
		cs.L2Hits++
		cs.l1.insert(line)
		return cs.l2.hitCycles
	}
	if cs.llc.lookup(line) {
		cs.LLCHits++
		cs.l1.insert(line)
		cs.l2.insert(line)
		return cs.llc.hitCycles
	}
	cs.Misses++
	cs.l1.insert(line)
	cs.l2.insert(line)
	cs.llc.insert(line)
	return cs.missCycles
}

// Reset invalidates the hierarchy and clears counters.
func (cs *CacheSim) Reset() {
	cs.l1.reset()
	cs.l2.reset()
	cs.llc.reset()
	cs.Accesses, cs.L1Hits, cs.L2Hits, cs.LLCHits, cs.Misses = 0, 0, 0, 0, 0
}
