// Package solvers implements the iterative methods that motivate WISE
// (paper Section 1: "many applications utilizing the SpMV kernel are
// iterative, executing SpMV many times with the same sparse input matrix"):
// conjugate gradients, BiCGSTAB, Jacobi, and power iteration. Each takes the
// SpMV operator as a function, so any WISE-selected format drives the
// solve and the one-time format-selection cost amortizes across iterations.
package solvers

import (
	"errors"
	"math"

	"wise/internal/kernels"
	"wise/internal/matrix"
)

// Operator applies y = A*x. y and x must not alias.
type Operator func(y, x []float64)

// FromFormat adapts a built SpMV format into an Operator running with the
// given worker count (0 = GOMAXPROCS).
func FromFormat(f kernels.Format, workers int) Operator {
	return func(y, x []float64) { f.SpMVParallel(y, x, workers) }
}

// FromCSR adapts a raw CSR matrix (reference kernel) into an Operator.
func FromCSR(m *matrix.CSR) Operator {
	return func(y, x []float64) { m.SpMV(y, x) }
}

// Result reports the outcome of an iterative solve.
type Result struct {
	Iterations int
	Residual   float64 // final ||b - A*x|| (or method-specific residual norm)
	Converged  bool
}

// ErrBreakdown is returned when a Krylov method hits a zero denominator
// (numerical breakdown), e.g. on an indefinite or inconsistent system.
var ErrBreakdown = errors.New("solvers: numerical breakdown")

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// CG solves A*x = b for symmetric positive-definite A with the conjugate
// gradient method. x holds the initial guess and is updated in place.
// Convergence is ||r|| <= tol*||b||.
func CG(op Operator, b, x []float64, tol float64, maxIter int) (Result, error) {
	n := len(b)
	r := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	op(ap, x)
	for i := range r {
		r[i] = b[i] - ap[i]
	}
	copy(p, r)
	rr := Dot(r, r)
	bNorm := math.Sqrt(Dot(b, b))
	if bNorm == 0 { //lint:ignore floateq zero RHS norm is exact; fall back to absolute tolerance
		bNorm = 1
	}
	target := tol * bNorm
	for k := 0; k < maxIter; k++ {
		if math.Sqrt(rr) <= target {
			return Result{Iterations: k, Residual: math.Sqrt(rr), Converged: true}, nil
		}
		op(ap, p)
		pap := Dot(p, ap)
		if pap == 0 || math.IsNaN(pap) { //lint:ignore floateq Krylov breakdown is defined by an exactly-zero inner product
			return Result{Iterations: k, Residual: math.Sqrt(rr)}, ErrBreakdown
		}
		alpha := rr / pap
		Axpy(alpha, p, x)
		Axpy(-alpha, ap, r)
		rrNew := Dot(r, r)
		beta := rrNew / rr
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rr = rrNew
	}
	return Result{Iterations: maxIter, Residual: math.Sqrt(rr), Converged: math.Sqrt(rr) <= target}, nil
}

// BiCGSTAB solves A*x = b for general nonsymmetric A. x holds the initial
// guess and is updated in place.
func BiCGSTAB(op Operator, b, x []float64, tol float64, maxIter int) (Result, error) {
	n := len(b)
	r := make([]float64, n)
	rHat := make([]float64, n)
	v := make([]float64, n)
	p := make([]float64, n)
	s := make([]float64, n)
	t := make([]float64, n)

	op(v, x)
	for i := range r {
		r[i] = b[i] - v[i]
	}
	copy(rHat, r)
	for i := range v {
		v[i] = 0
	}
	rho, alpha, omega := 1.0, 1.0, 1.0
	bNorm := math.Sqrt(Dot(b, b))
	if bNorm == 0 { //lint:ignore floateq zero RHS norm is exact; fall back to absolute tolerance
		bNorm = 1
	}
	target := tol * bNorm
	for k := 0; k < maxIter; k++ {
		res := math.Sqrt(Dot(r, r))
		if res <= target {
			return Result{Iterations: k, Residual: res, Converged: true}, nil
		}
		rhoNew := Dot(rHat, r)
		if rhoNew == 0 { //lint:ignore floateq Krylov breakdown is defined by an exactly-zero inner product
			return Result{Iterations: k, Residual: res}, ErrBreakdown
		}
		beta := (rhoNew / rho) * (alpha / omega)
		rho = rhoNew
		for i := range p {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
		op(v, p)
		den := Dot(rHat, v)
		if den == 0 { //lint:ignore floateq Krylov breakdown is defined by an exactly-zero inner product
			return Result{Iterations: k, Residual: res}, ErrBreakdown
		}
		alpha = rho / den
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		op(t, s)
		tt := Dot(t, t)
		if tt == 0 { //lint:ignore floateq exactly-zero t means s is the exact remaining residual
			// s is the exact remaining residual direction; x += alpha*p ends it.
			Axpy(alpha, p, x)
			copy(r, s)
			continue
		}
		omega = Dot(t, s) / tt
		for i := range x {
			x[i] += alpha*p[i] + omega*s[i]
		}
		for i := range r {
			r[i] = s[i] - omega*t[i]
		}
		if omega == 0 { //lint:ignore floateq BiCGSTAB breakdown is defined by an exactly-zero omega
			return Result{Iterations: k + 1, Residual: math.Sqrt(Dot(r, r))}, ErrBreakdown
		}
	}
	res := math.Sqrt(Dot(r, r))
	return Result{Iterations: maxIter, Residual: res, Converged: res <= target}, nil
}

// Jacobi solves A*x = b with Jacobi iteration: x' = D^-1 (b - R*x). It needs
// the matrix itself (for the diagonal); convergence requires (weak) diagonal
// dominance. x holds the initial guess and is updated in place.
func Jacobi(m *matrix.CSR, b, x []float64, tol float64, maxIter int) (Result, error) {
	if m.Rows != m.Cols {
		return Result{}, errors.New("solvers: Jacobi needs a square matrix")
	}
	n := m.Rows
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		cols, vals := m.Row(i)
		for k := range cols {
			if int(cols[k]) == i {
				diag[i] = vals[k]
			}
		}
		if diag[i] == 0 { //lint:ignore floateq Jacobi requires a bit-exact nonzero diagonal to divide by
			return Result{}, errors.New("solvers: Jacobi needs a nonzero diagonal")
		}
	}
	next := make([]float64, n)
	ax := make([]float64, n)
	bNorm := math.Sqrt(Dot(b, b))
	if bNorm == 0 { //lint:ignore floateq zero RHS norm is exact; fall back to absolute tolerance
		bNorm = 1
	}
	for k := 0; k < maxIter; k++ {
		m.SpMV(ax, x)
		var res float64
		for i := 0; i < n; i++ {
			r := b[i] - ax[i]
			res += r * r
			next[i] = x[i] + r/diag[i]
		}
		res = math.Sqrt(res)
		if res <= tol*bNorm {
			return Result{Iterations: k, Residual: res, Converged: true}, nil
		}
		copy(x, next)
	}
	m.SpMV(ax, x)
	var res float64
	for i := range ax {
		r := b[i] - ax[i]
		res += r * r
	}
	res = math.Sqrt(res)
	return Result{Iterations: maxIter, Residual: res, Converged: res <= tol*bNorm}, nil
}

// PowerIteration estimates the dominant eigenvalue (by magnitude) and its
// eigenvector. x holds the initial guess (nonzero) and is normalized in
// place to the final eigenvector estimate.
func PowerIteration(op Operator, x []float64, tol float64, maxIter int) (float64, Result) {
	n := len(x)
	y := make([]float64, n)
	normalize(x)
	lambda := 0.0
	for k := 0; k < maxIter; k++ {
		op(y, x)
		newLambda := Dot(x, y)
		nrm := math.Sqrt(Dot(y, y))
		if nrm == 0 { //lint:ignore floateq exactly-zero iterate norm means the operator annihilated x
			return 0, Result{Iterations: k, Converged: true}
		}
		for i := range x {
			x[i] = y[i] / nrm
		}
		if k > 0 && math.Abs(newLambda-lambda) <= tol*math.Abs(newLambda) {
			return newLambda, Result{Iterations: k + 1, Residual: math.Abs(newLambda - lambda), Converged: true}
		}
		lambda = newLambda
	}
	return lambda, Result{Iterations: maxIter, Residual: math.NaN()}
}

func normalize(x []float64) {
	nrm := math.Sqrt(Dot(x, x))
	if nrm == 0 { //lint:ignore floateq zero-vector guard; exact 0 only for the all-zero vector
		return
	}
	for i := range x {
		x[i] /= nrm
	}
}
