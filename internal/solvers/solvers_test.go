package solvers

import (
	"math"
	"math/rand"
	"testing"

	"wise/internal/gen"
	"wise/internal/kernels"
	"wise/internal/matrix"
)

// spdMatrix returns a small symmetric positive-definite system (2D Laplacian
// with strengthened diagonal).
func spdMatrix(g int) *matrix.CSR {
	m := gen.Stencil2D(g, g, false)
	// Strengthen the diagonal to guarantee SPD and diagonal dominance.
	out := m.Clone()
	for i := 0; i < out.Rows; i++ {
		cols, _ := out.Row(i)
		lo := out.RowPtr[i]
		for k := range cols {
			if int(cols[k]) == i {
				out.Vals[lo+int64(k)] += 1
			}
		}
	}
	return out
}

func residual(m *matrix.CSR, b, x []float64) float64 {
	ax := make([]float64, m.Rows)
	m.SpMV(ax, x)
	var s float64
	for i := range ax {
		d := b[i] - ax[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestCGSolvesSPD(t *testing.T) {
	m := spdMatrix(16)
	b := matrix.Ones(m.Rows)
	x := make([]float64, m.Rows)
	res, err := CG(FromCSR(m), b, x, 1e-10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG did not converge: %+v", res)
	}
	if r := residual(m, b, x); r > 1e-7 {
		t.Errorf("true residual %g", r)
	}
}

func TestCGWithWISEFormat(t *testing.T) {
	// CG through a built SRVPack format must converge identically.
	m := spdMatrix(12)
	b := matrix.Iota(m.Rows)
	pack := kernels.BuildSRVPack(m, kernels.Method{Kind: kernels.SellCSigma, C: 4, Sigma: 32, Sched: kernels.StCont})
	x := make([]float64, m.Rows)
	res, err := CG(FromFormat(pack, 2), b, x, 1e-10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG via SRVPack did not converge: %+v", res)
	}
	if r := residual(m, b, x); r > 1e-6 {
		t.Errorf("true residual %g", r)
	}
}

func TestCGZeroRHS(t *testing.T) {
	m := spdMatrix(8)
	b := make([]float64, m.Rows)
	x := make([]float64, m.Rows)
	res, err := CG(FromCSR(m), b, x, 1e-12, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 {
		t.Errorf("zero RHS should converge immediately: %+v", res)
	}
}

func TestBiCGSTABSolvesNonsymmetric(t *testing.T) {
	// A diagonally dominant nonsymmetric system.
	rng := rand.New(rand.NewSource(1))
	n := 300
	coo := matrix.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(int32(i), int32(i), 10)
		for k := 0; k < 3; k++ {
			j := rng.Intn(n)
			if j != i {
				coo.Add(int32(i), int32(j), rng.Float64())
			}
		}
	}
	m := coo.ToCSR()
	b := matrix.Ones(n)
	x := make([]float64, n)
	res, err := BiCGSTAB(FromCSR(m), b, x, 1e-10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("BiCGSTAB did not converge: %+v", res)
	}
	if r := residual(m, b, x); r > 1e-6 {
		t.Errorf("true residual %g", r)
	}
}

func TestJacobiSolvesDiagonallyDominant(t *testing.T) {
	m := spdMatrix(10)
	b := matrix.Ones(m.Rows)
	x := make([]float64, m.Rows)
	res, err := Jacobi(m, b, x, 1e-10, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("Jacobi did not converge: %+v", res)
	}
	if r := residual(m, b, x); r > 1e-6 {
		t.Errorf("true residual %g", r)
	}
}

func TestJacobiErrors(t *testing.T) {
	rect := matrix.FromDense(2, 3, []float64{1, 0, 0, 0, 1, 0})
	if _, err := Jacobi(rect, nil, nil, 1e-6, 10); err == nil {
		t.Error("rectangular matrix accepted")
	}
	zeroDiag := matrix.FromDense(2, 2, []float64{0, 1, 1, 0})
	if _, err := Jacobi(zeroDiag, make([]float64, 2), make([]float64, 2), 1e-6, 10); err == nil {
		t.Error("zero diagonal accepted")
	}
}

func TestPowerIterationDominantEigenvalue(t *testing.T) {
	// diag(5, 2, 1): dominant eigenvalue 5.
	m := matrix.FromDense(3, 3, []float64{5, 0, 0, 0, 2, 0, 0, 0, 1})
	x := []float64{1, 1, 1}
	lambda, res := PowerIteration(FromCSR(m), x, 1e-12, 500)
	if !res.Converged {
		t.Fatalf("power iteration did not converge: %+v", res)
	}
	if math.Abs(lambda-5) > 1e-6 {
		t.Errorf("lambda = %v, want 5", lambda)
	}
	// Eigenvector should align with e0.
	if math.Abs(math.Abs(x[0])-1) > 1e-4 {
		t.Errorf("eigenvector %v, want +-e0", x)
	}
}

func TestCGBreakdownOnIndefinite(t *testing.T) {
	// An indefinite matrix can break CG (p'Ap = 0 directions exist); with
	// b chosen adversarially CG must either converge or report breakdown,
	// never loop with NaNs.
	m := matrix.FromDense(2, 2, []float64{0, 1, 1, 0})
	b := []float64{1, -1}
	x := make([]float64, 2)
	res, err := CG(FromCSR(m), b, x, 1e-12, 50)
	if err == nil && !res.Converged {
		t.Errorf("expected convergence or breakdown, got %+v", res)
	}
	for _, v := range x {
		if math.IsNaN(v) {
			t.Fatal("NaN leaked into solution")
		}
	}
}

func TestDotAxpy(t *testing.T) {
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); d != 32 {
		t.Errorf("Dot = %v", d)
	}
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("Axpy = %v", y)
	}
}

func TestSolversAgreeAcrossFormats(t *testing.T) {
	// The same CG solve through every SpMV format must give the same answer.
	m := spdMatrix(10)
	b := matrix.Iota(m.Rows)
	var ref []float64
	for _, method := range []kernels.Method{
		{Kind: kernels.CSR, Sched: kernels.Dyn},
		{Kind: kernels.SELLPACK, C: 8, Sched: kernels.Dyn},
		{Kind: kernels.SellCR, C: 4, Sched: kernels.Dyn},
		{Kind: kernels.LAV, C: 4, T: 0.8, Sched: kernels.Dyn},
	} {
		f := kernels.Build(m, method, 16)
		x := make([]float64, m.Rows)
		res, err := CG(FromFormat(f, 1), b, x, 1e-12, 2000)
		if err != nil || !res.Converged {
			t.Fatalf("%s: %v %+v", method, err, res)
		}
		if ref == nil {
			ref = append([]float64(nil), x...)
			continue
		}
		if matrix.MaxAbsDiff(ref, x) > 1e-6 {
			t.Errorf("%s: solution differs by %g", method, matrix.MaxAbsDiff(ref, x))
		}
	}
}

func TestBiCGSTABZeroRHS(t *testing.T) {
	m := spdMatrix(6)
	b := make([]float64, m.Rows)
	x := make([]float64, m.Rows)
	res, err := BiCGSTAB(FromCSR(m), b, x, 1e-12, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 {
		t.Errorf("zero RHS: %+v", res)
	}
}

func TestBiCGSTABBreakdownReported(t *testing.T) {
	// Start exactly at the solution of a singular-ish direction: rho becomes
	// 0 when the initial residual is zero after one exact step; engineered
	// via a 1x1 identity and exact initial guess.
	m := matrix.FromDense(2, 2, []float64{1, 0, 0, 1})
	b := []float64{1, 1}
	x := []float64{1, 1} // exact solution: converges at iteration 0
	res, err := BiCGSTAB(FromCSR(m), b, x, 1e-12, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("exact start should converge: %+v", res)
	}
}

func TestPowerIterationZeroMatrix(t *testing.T) {
	m := matrix.NewCOO(3, 3).ToCSR()
	x := []float64{1, 1, 1}
	lambda, res := PowerIteration(FromCSR(m), x, 1e-9, 50)
	if lambda != 0 || !res.Converged {
		t.Errorf("zero operator: lambda %v, %+v", lambda, res)
	}
}

func TestCGMaxIterReported(t *testing.T) {
	m := spdMatrix(16)
	b := matrix.Ones(m.Rows)
	x := make([]float64, m.Rows)
	res, err := CG(FromCSR(m), b, x, 1e-14, 1) // one iteration cannot converge
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Iterations != 1 {
		t.Errorf("expected max-iter stop: %+v", res)
	}
}
