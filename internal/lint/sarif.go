package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// SARIF 2.1.0 output for CI code-scanning upload (the schema subset GitHub's
// upload-sarif action consumes: tool.driver.rules plus results with physical
// locations). Only the fields the consumer reads are modelled; the full
// schema is at
// https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html.

const (
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool       sarifTool      `json:"tool"`
	Results    []sarifResult  `json:"results"`
	Properties map[string]any `json:"properties,omitempty"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string         `json:"id"`
	ShortDescription sarifMessage   `json:"shortDescription"`
	Properties       map[string]any `json:"properties,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log. Finding paths must
// already be module-root-relative; they are emitted slash-separated under the
// %SRCROOT% uriBaseId so the uploader anchors them at the checkout root.
// Every analyzer appears in tool.driver.rules even with zero findings, and a
// finding from outside the analyzer list (the unusedignore meta-check) gets
// a rule entry on demand, so every ruleId/ruleIndex resolves. An analyzer's
// Category, when set, lands in the rule's properties for dashboard grouping;
// runProps (may be nil) lands in runs[0].properties — the CLI records its
// wall-clock time and -budget there so CI can audit lint runtime drift.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, findings []Finding, runProps map[string]any) error {
	driver := sarifDriver{Name: "wise-lint", Rules: []sarifRule{}}
	ruleIndex := make(map[string]int)
	addRule := func(id, doc, category string) int {
		if i, ok := ruleIndex[id]; ok {
			return i
		}
		ruleIndex[id] = len(driver.Rules)
		rule := sarifRule{
			ID:               id,
			ShortDescription: sarifMessage{Text: doc},
		}
		if category != "" {
			rule.Properties = map[string]any{"category": category}
		}
		driver.Rules = append(driver.Rules, rule)
		return ruleIndex[id]
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Doc, a.Category)
	}
	addRule("unusedignore", "flags //lint:ignore directives that no longer suppress any finding", "")

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		line := f.Line
		if line < 1 {
			line = 1 // SARIF requires startLine >= 1
		}
		results = append(results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: addRule(f.Analyzer, f.Analyzer, ""),
			Level:     "warning",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       filepath.ToSlash(f.File),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: line, StartColumn: f.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results, Properties: runProps}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
