package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismAnalyzer guards the reproducibility invariant of the training
// and measurement pipelines: every random draw must come from an explicitly
// seeded *rand.Rand threaded through the call chain, and wall-clock time
// must never feed seeds or results. It fires only inside the deterministic
// packages (gen, ml, features, core, costmodel, experiments, bench); obs/progress
// wall-clock use (time.Now for durations via time.Since) is inherently
// allowed because only numeric conversions of time.Now and seeding contexts
// are flagged.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "flags global math/rand, time-seeded rand sources, and wall-clock values feeding results in deterministic packages",
	Run:  runDeterminism,
}

// deterministicScopes are the package names under internal/ whose outputs
// must be reproducible from explicit seeds.
var deterministicScopes = map[string]bool{
	"gen": true, "ml": true, "features": true,
	"core": true, "costmodel": true, "experiments": true,
	// bench: a suite's benchmark list and matrix corpus must be functions of
	// the preset seed alone (BENCHMARKS.md); wall-clock may only be measured,
	// never fed back into shape or seeds.
	"bench": true,
}

// inDeterministicScope reports whether an import path lies in one of the
// deterministic internal packages (or a sub-package of one).
func inDeterministicScope(path string) bool {
	segs := strings.Split(path, "/")
	for i, s := range segs {
		if s == "internal" && i+1 < len(segs) && deterministicScopes[segs[i+1]] {
			return true
		}
	}
	return false
}

// randConstructors are math/rand functions that build generators from an
// explicit source/seed; everything else at package level draws from the
// shared global source and is flagged.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func runDeterminism(pass *Pass) {
	if !inDeterministicScope(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := resolvedFunc(info, call)
			if fn == nil {
				return true
			}
			pkgPath := ""
			if fn.Pkg() != nil {
				pkgPath = fn.Pkg().Path()
			}
			sig, _ := fn.Type().(*types.Signature)

			// (1) Package-level math/rand calls outside the explicit-source
			// constructors use the shared global generator.
			if isRandPkg(pkgPath) && sig != nil && sig.Recv() == nil && !randConstructors[fn.Name()] {
				pass.Reportf(call.Pos(),
					"global math/rand call rand.%s draws from the shared process-wide source; thread a seeded *rand.Rand instead",
					fn.Name())
			}

			// (2) Wall clock feeding a seed: time.Now anywhere inside the
			// arguments of rand.New/NewSource/... or a Seed method/function.
			if seedingCall(fn, sig, pkgPath) {
				for _, arg := range call.Args {
					reportTimeNowWithin(pass, arg, "time.Now() used to seed a random source makes runs irreproducible; derive seeds from configuration")
				}
			}

			// (3) Wall clock converted to a number feeds results: flag
			// time.Now().UnixNano() and friends. Duration measurement via
			// time.Since(t0) never converts and stays allowed.
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && timeNumericMethods[fn.Name()] {
				if isTimeNowCall(info, sel.X) {
					pass.Reportf(call.Pos(),
						"time.Now().%s() feeds wall-clock values into results; deterministic code must not depend on the clock",
						fn.Name())
				}
			}
			return true
		})
	}
}

// timeNumericMethods are time.Time methods that turn the wall clock into a
// plain number (the only way clock values can leak into data or seeds).
var timeNumericMethods = map[string]bool{
	"Unix": true, "UnixNano": true, "UnixMilli": true, "UnixMicro": true,
	"Nanosecond": true,
}

// seedingCall reports whether fn is a random-source constructor or a Seed
// function/method.
func seedingCall(fn *types.Func, sig *types.Signature, pkgPath string) bool {
	if isRandPkg(pkgPath) && sig != nil && sig.Recv() == nil && randConstructors[fn.Name()] {
		return true
	}
	return fn.Name() == "Seed"
}

// reportTimeNowWithin reports every time.Now() call in the expression tree.
func reportTimeNowWithin(pass *Pass, e ast.Expr, msg string) {
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isTimeNowCall(pass.Pkg.Info, call) {
			pass.Reportf(call.Pos(), "%s", msg)
		}
		return true
	})
}

// isTimeNowCall reports whether e is a call to time.Now.
func isTimeNowCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := resolvedFunc(info, call)
	return fn != nil && fn.Name() == "Now" && fn.Pkg() != nil && fn.Pkg().Path() == "time"
}

// resolvedFunc returns the static *types.Func a call resolves to, or nil for
// dynamic calls, conversions, and builtins.
func resolvedFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	id := calleeFunc(call)
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
