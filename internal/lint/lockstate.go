package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"wise/internal/lint/callgraph"
	"wise/internal/lint/cfg"
)

// This file is the flow-sensitive half of the v3 lock analysis: a per-unit
// (function declaration or function literal) dataflow over the cfg package's
// graphs that tracks which mutexes are held at every program point. The
// interprocedural half — entry-held sets, guarded-by annotations, the
// module-wide acquisition order — lives in interproc.go on top of
// internal/lint/callgraph.
//
// Three lattices run over the same CFG:
//
//   - mustHeld: intersection-meet set of locks held on EVERY path to a
//     point. Used by guardedby ("is the guard provably held here?"),
//     waitblock, double-lock, and the acquisition-order edges.
//   - mayHeld: union-meet set of locks held on SOME path. Used for
//     unlock-without-lock (an Unlock of something not even possibly held).
//   - tokens: a union-meet "unreleased acquisition" token per Lock site,
//     killed by a matching Unlock or a deferred Unlock. A token alive at
//     Exit means some path returns without releasing — the
//     missing-unlock finding, reported at the Lock site.
//
// Lock identity is the rendered root path of the receiver expression
// ("b.mu", "mu", "r.hist.minMu") — a frame-local key. heldLock carries the
// frame-independent type-level key (callgraph.TypeLevelLockKey) alongside,
// for facts that cross function boundaries.

// heldLock describes one held lock.
type heldLock struct {
	Write   bool   // held via Lock (true) or RLock (false)
	TypeKey string // type-level identity, "" for plain locals
	Global  bool   // rooted at a package-level variable
}

type lockOpKind uint8

const (
	opLock lockOpKind = iota
	opUnlock
	opDeferUnlock
)

// lockOp is one mutex operation attached to a CFG node.
type lockOp struct {
	kind    lockOpKind
	key     string // frame-local dotted path of the mutex
	read    bool   // RLock/RUnlock
	typeKey string
	global  bool
	call    *ast.CallExpr
	node    ast.Node // the CFG node the op lives in
	site    int      // token index, for opLock
	inLoop  bool     // opDeferUnlock registered inside a loop
}

// mutexOpCall matches a call of the form <expr>.Lock/RLock/Unlock/RUnlock()
// where <expr> is a sync.Mutex or sync.RWMutex (possibly behind a pointer).
func mutexOpCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, "", false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return nil, "", false
	}
	if !isMutexType(t) {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

func isMutexType(t types.Type) bool {
	for {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// lockKeyOf renders the frame-local key and its cross-frame metadata for a
// mutex receiver expression. ok is false when the expression has no stable
// identity (map element, call result, ...).
func lockKeyOf(info *types.Info, recv ast.Expr) (key string, typeKey string, global bool, ok bool) {
	root, _, flat := callgraph.FlattenSelector(recv)
	if !flat {
		return "", "", false, false
	}
	key = callgraph.RenderPath(recv)
	if key == "" {
		return "", "", false, false
	}
	typeKey = callgraph.TypeLevelLockKey(recv, info)
	if obj, isVar := info.Uses[root].(*types.Var); isVar && obj.Pkg() != nil {
		global = obj.Parent() == obj.Pkg().Scope()
	}
	return key, typeKey, global, true
}

// lockState is the must-analysis value: locks held and deferred releases
// registered on every path to a point. A nil *lockState is ⊤ (unvisited).
type lockState struct {
	held     map[string]heldLock
	deferred map[string]bool
}

func newLockState(entry map[string]heldLock) *lockState {
	s := &lockState{held: make(map[string]heldLock), deferred: make(map[string]bool)}
	for k, v := range entry {
		s.held[k] = v
	}
	return s
}

func (s *lockState) clone() *lockState {
	c := &lockState{held: make(map[string]heldLock, len(s.held)), deferred: make(map[string]bool, len(s.deferred))}
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

// meet intersects two states; nil is the identity (⊤).
func meetLockState(a, b *lockState) *lockState {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := &lockState{held: make(map[string]heldLock), deferred: make(map[string]bool)}
	for k, va := range a.held {
		if vb, ok := b.held[k]; ok {
			v := va
			v.Write = va.Write && vb.Write // weaker mode survives
			out.held[k] = v
		}
	}
	for k := range a.deferred {
		if b.deferred[k] {
			out.deferred[k] = true
		}
	}
	return out
}

func (s *lockState) equal(o *lockState) bool {
	if len(s.held) != len(o.held) || len(s.deferred) != len(o.deferred) {
		return false
	}
	for k, v := range s.held {
		if ov, ok := o.held[k]; !ok || ov != v {
			return false
		}
	}
	for k := range s.deferred {
		if !o.deferred[k] {
			return false
		}
	}
	return true
}

// lockUnit is one analysis unit: a function declaration, or a function
// literal nested inside one (literals are opaque in the enclosing CFG and
// get their own flow, like ctxpropagate's units).
type lockUnit struct {
	decl *ast.FuncDecl
	lit  *ast.FuncLit // nil when the unit is the declaration itself
	fn   *types.Func  // declared function object (also set for lit units: the enclosing decl)
}

func (u *lockUnit) body() *ast.BlockStmt {
	if u.lit != nil {
		return u.lit.Body
	}
	return u.decl.Body
}

func (u *lockUnit) root() ast.Node {
	if u.lit != nil {
		return u.lit
	}
	return u.decl
}

// isDecl reports whether the unit is the declaration body itself (the only
// unit kind whose entry-held set is meaningful).
func (u *lockUnit) isDecl() bool { return u.lit == nil }

// unitsOf lists the analysis units of a file: every FuncDecl with a body and
// every FuncLit inside one.
func unitsOf(info *types.Info, file *ast.File) []*lockUnit {
	var out []*lockUnit
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn, _ := info.Defs[fd.Name].(*types.Func)
		out = append(out, &lockUnit{decl: fd, fn: fn})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, &lockUnit{decl: fd, lit: lit, fn: fn})
			}
			return true
		})
	}
	return out
}

// directOf reports whether pos lies directly in unit's body — not inside a
// nested function literal (which is its own unit).
func directOf(u *lockUnit, pos token.Pos) bool {
	body := u.body()
	if pos < body.Pos() || pos >= body.End() {
		return false
	}
	direct := true
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok || lit == u.lit {
			return true
		}
		if pos >= lit.Pos() && pos < lit.End() {
			direct = false
		}
		return false // deeper literals cannot change the answer
	})
	return direct
}

// unitFlow is the computed dataflow for one unit. g is always present;
// the lock lattices are only populated when the unit performs lock
// operations (hasLocks).
type unitFlow struct {
	g        *cfg.Graph
	hasLocks bool

	blockOps [][]lockOp // per block index, execution order
	sites    []lockOp   // opLock ops by token id
	mustIn   []*lockState
	mayIn    []map[string]bool
	tokIn    []map[int]bool
	leaked   []int // token ids alive at Exit
}

// computeFlow builds the CFG and, when the unit locks anything, runs the
// three dataflows. The entry state is always empty: entry-held locks are a
// caller fact layered on top by modAnalysis.heldAt.
func computeFlow(info *types.Info, u *lockUnit) *unitFlow {
	f := &unitFlow{g: cfg.New(u.body())}
	nested := collectNestedLits(u)
	for _, b := range f.g.Blocks {
		var ops []lockOp
		for _, node := range b.Nodes {
			ops = append(ops, extractLockOps(info, node, u, nested, f)...)
		}
		f.blockOps = append(f.blockOps, ops)
		if len(ops) > 0 {
			f.hasLocks = true
		}
	}
	if !f.hasLocks {
		return f
	}

	n := len(f.g.Blocks)
	f.mustIn = make([]*lockState, n)
	f.mayIn = make([]map[string]bool, n)
	f.tokIn = make([]map[int]bool, n)
	f.mustIn[f.g.Entry.Index] = newLockState(nil)
	f.mayIn[f.g.Entry.Index] = map[string]bool{}
	f.tokIn[f.g.Entry.Index] = map[int]bool{}

	for changed := true; changed; {
		changed = false
		for _, b := range f.g.Blocks {
			if b != f.g.Entry {
				var must *lockState
				may := map[string]bool{}
				tok := map[int]bool{}
				any := false
				for _, p := range b.Preds {
					pm, pmay, ptok := f.transfer(p)
					if pm == nil {
						continue
					}
					any = true
					must = meetLockState(must, pm)
					for k := range pmay {
						may[k] = true
					}
					for k := range ptok {
						tok[k] = true
					}
				}
				if !any {
					continue // unreachable so far
				}
				if f.mustIn[b.Index] == nil || !f.mustIn[b.Index].equal(must) ||
					!sameStringSet(f.mayIn[b.Index], may) || !sameIntSet(f.tokIn[b.Index], tok) {
					f.mustIn[b.Index] = must
					f.mayIn[b.Index] = may
					f.tokIn[b.Index] = tok
					changed = true
				}
			}
		}
	}

	if f.tokIn[f.g.Exit.Index] != nil {
		_, _, tok := f.transfer(f.g.Exit)
		for id := range tok {
			f.leaked = append(f.leaked, id)
		}
		sort.Ints(f.leaked)
	}
	return f
}

// transfer runs a whole block's ops over its in-state and returns the
// out-state. Returns nil must-state for unvisited blocks.
func (f *unitFlow) transfer(b *cfg.Block) (*lockState, map[string]bool, map[int]bool) {
	must := f.mustIn[b.Index]
	if must == nil {
		return nil, nil, nil
	}
	must = must.clone()
	may := cloneStringSet(f.mayIn[b.Index])
	tok := cloneIntSet(f.tokIn[b.Index])
	for _, op := range f.blockOps[b.Index] {
		applyLockOp(must, may, tok, f.sites, op)
	}
	return must, may, tok
}

func applyLockOp(must *lockState, may map[string]bool, tok map[int]bool, sites []lockOp, op lockOp) {
	switch op.kind {
	case opLock:
		must.held[op.key] = heldLock{Write: !op.read, TypeKey: op.typeKey, Global: op.global}
		may[op.key] = true
		tok[op.site] = true
	case opUnlock:
		delete(must.held, op.key)
		delete(may, op.key)
		for id := range tok {
			if sites[id].key == op.key && sites[id].read == op.read {
				delete(tok, id)
			}
		}
	case opDeferUnlock:
		must.deferred[op.key] = true
		for id := range tok {
			if sites[id].key == op.key && sites[id].read == op.read {
				delete(tok, id)
			}
		}
	}
}

// heldAtLocal returns the locks this unit itself provably holds at pos
// (excluding caller-provided entry-held locks). Ops in the same block whose
// node ends at or before pos have taken effect.
func (f *unitFlow) heldAtLocal(pos token.Pos) map[string]heldLock {
	out := make(map[string]heldLock)
	if !f.hasLocks {
		return out
	}
	b := f.g.BlockOf(pos)
	if b == nil || f.mustIn[b.Index] == nil {
		return out
	}
	st := f.mustIn[b.Index].clone()
	may := cloneStringSet(f.mayIn[b.Index])
	tok := cloneIntSet(f.tokIn[b.Index])
	for _, op := range f.blockOps[b.Index] {
		if op.node.End() <= pos {
			applyLockOp(st, may, tok, f.sites, op)
		}
	}
	for k, v := range st.held {
		out[k] = v
	}
	return out
}

// mayHeldAtLocal is heldAtLocal over the may lattice.
func (f *unitFlow) mayHeldAtLocal(pos token.Pos) map[string]bool {
	out := make(map[string]bool)
	if !f.hasLocks {
		return out
	}
	b := f.g.BlockOf(pos)
	if b == nil || f.mustIn[b.Index] == nil {
		return out
	}
	st := f.mustIn[b.Index].clone()
	may := cloneStringSet(f.mayIn[b.Index])
	tok := cloneIntSet(f.tokIn[b.Index])
	for _, op := range f.blockOps[b.Index] {
		if op.node.End() <= pos {
			applyLockOp(st, may, tok, f.sites, op)
		}
	}
	return may
}

// forEachOp replays the dataflow through every reachable block and calls fn
// at each lock op with the must-held and may-held sets immediately before
// it (excluding entry-held locks, which the caller layers on).
func (f *unitFlow) forEachOp(fn func(op lockOp, mustBefore map[string]heldLock, mayBefore map[string]bool)) {
	if !f.hasLocks {
		return
	}
	for _, b := range f.g.Blocks {
		if f.mustIn[b.Index] == nil {
			continue
		}
		st := f.mustIn[b.Index].clone()
		may := cloneStringSet(f.mayIn[b.Index])
		tok := cloneIntSet(f.tokIn[b.Index])
		for _, op := range f.blockOps[b.Index] {
			mustSnap := make(map[string]heldLock, len(st.held))
			for k, v := range st.held {
				mustSnap[k] = v
			}
			fn(op, mustSnap, cloneStringSet(may))
			applyLockOp(st, may, tok, f.sites, op)
		}
	}
}

// collectNestedLits lists the function literals strictly inside u's body
// (they are separate units and opaque here).
func collectNestedLits(u *lockUnit) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(u.body(), func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != u.lit {
			out = append(out, lit)
			return false
		}
		return true
	})
	return out
}

func insideAnyLit(pos token.Pos, lits []*ast.FuncLit) bool {
	for _, l := range lits {
		if pos >= l.Pos() && pos < l.End() {
			return true
		}
	}
	return false
}

// extractLockOps pulls the mutex operations out of one CFG node, in source
// order, skipping nested function literals. A defer of an Unlock — directly
// or through a deferred literal — registers a deferred release.
func extractLockOps(info *types.Info, node ast.Node, u *lockUnit, nested []*ast.FuncLit, f *unitFlow) []lockOp {
	var out []lockOp
	appendOp := func(call *ast.CallExpr, method string, deferred bool) {
		recv, _, ok := mutexOpCall(info, call)
		if !ok {
			return
		}
		key, typeKey, global, ok := lockKeyOf(info, recv)
		if !ok {
			return
		}
		op := lockOp{
			key:     key,
			read:    method == "RLock" || method == "RUnlock",
			typeKey: typeKey,
			global:  global,
			call:    call,
			node:    node,
		}
		switch {
		case deferred && (method == "Unlock" || method == "RUnlock"):
			op.kind = opDeferUnlock
			op.inLoop = f.g.LoopDepthAt(call.Pos()) > 0
		case method == "Lock" || method == "RLock":
			if deferred {
				return // defer mu.Lock() is nonsense; other analyzers' problem
			}
			op.kind = opLock
			op.site = len(f.sites)
			f.sites = append(f.sites, op)
		default:
			op.kind = opUnlock
		}
		out = append(out, op)
	}

	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(sub ast.Node) bool {
			switch x := sub.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
					// defer func() { ... mu.Unlock() ... }() — the releases
					// inside the deferred literal run at return.
					ast.Inspect(lit.Body, func(inner ast.Node) bool {
						if _, ok := inner.(*ast.FuncLit); ok {
							return false
						}
						if call, ok := inner.(*ast.CallExpr); ok {
							if _, method, ok := mutexOpCall(info, call); ok {
								appendOp(call, method, true)
							}
						}
						return true
					})
					return false
				}
				if _, method, ok := mutexOpCall(info, x.Call); ok {
					appendOp(x.Call, method, true)
				}
				return false
			case *ast.CallExpr:
				if _, method, ok := mutexOpCall(info, x); ok {
					appendOp(x, method, deferred)
				}
			}
			return true
		})
	}
	// A RangeStmt is recorded whole in its head block (it carries X and the
	// Key/Value binding) while the body statements get their own blocks —
	// walking the whole statement here would double-count the body's ops.
	if rs, ok := node.(*ast.RangeStmt); ok {
		walk(rs.X, false)
		return out
	}
	walk(node, false)
	return out
}

// --- small set helpers ---

func sameStringSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func sameIntSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func cloneStringSet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func cloneIntSet(m map[int]bool) map[int]bool {
	out := make(map[int]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func sortedHeldKeys(m map[string]heldLock) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
