// Package lint is wise-lint: a stdlib-only static-analysis driver with
// repo-specific analyzers that protect the invariants WISE's measurement and
// training pipelines depend on — deterministic randomness, epsilon-aware
// float comparison, paired obs spans, race-free worker patterns, and no
// silently dropped errors. LINTING.md documents each analyzer, the
// suppression syntax, and how to add a new one; cmd/wise-lint is the CLI
// that scripts/check.sh and CI gate on.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single package and reports
// findings through the Pass. Category, when set, groups the analyzer's SARIF
// rule for code-scanning dashboards (the concurrency suite shares one).
// ModuleFacts marks analyzers whose findings depend on facts outside the
// analyzed package and its import closure (the call graph, the entry-held
// fixpoint, the fault-site registry in _test.go files): the incremental
// engine (engine.go) must key their cached findings on the whole module
// state, not just the package's dependency cone.
type Analyzer struct {
	Name        string
	Doc         string
	Category    string
	ModuleFacts bool
	Run         func(*Pass)
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		FloatEqAnalyzer,
		SpanHygieneAnalyzer,
		GoroutineSafetyAnalyzer,
		ErrDropAnalyzer,
		AtomicWriteAnalyzer,
		HotAllocAnalyzer,
		CtxPropagateAnalyzer,
		FaultSiteAnalyzer,
		IndexGuardAnalyzer,
		LockDisciplineAnalyzer,
		GuardedByAnalyzer,
		GoroutineEscapeAnalyzer,
		WaitBlockAnalyzer,
		ResourceLifecycleAnalyzer,
		NumSafetyAnalyzer,
	}
}

// Select resolves a comma-separated analyzer subset against the full suite,
// preserving suite order. An empty string selects everything; an unknown name
// is an error (a typo'd -analyzers flag must not let CI pass vacuously).
func Select(names string) ([]*Analyzer, error) {
	all := All()
	if strings.TrimSpace(names) == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	want := make(map[string]bool)
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if _, ok := byName[n]; !ok {
			return nil, fmt.Errorf("unknown analyzer %q (run -list for the suite)", n)
		}
		want[n] = true
	}
	var out []*Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

// Finding is one reported violation. Fix, when non-nil, is a
// machine-applicable edit that resolves the finding (applied by
// wise-lint -fix); it is deliberately excluded from the JSON report.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`

	Fix *SuggestedFix `json:"-"`
}

// String renders the finding in the file:line: [analyzer] message form the
// CLI prints.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Pass carries one analyzer's view of one package. Mod is the whole loaded
// module, for analyzers that need cross-package facts (faultsite reads the
// injection-site registry; ctxpropagate resolves module-internal callees).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	Mod      *Module

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportfFix records a finding at pos carrying a machine-applicable fix.
func (p *Pass) ReportfFix(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	p.Reportf(pos, format, args...)
	(*p.findings)[len(*p.findings)-1].Fix = fix
}

// ReportAt records a finding at an explicit file position, for checks whose
// evidence lives outside the parsed file set (faultsite scans raw _test.go
// files, which the loader excludes by design).
func (p *Pass) ReportAt(file string, line, col int, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		File:     file,
		Line:     line,
		Col:      col,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file     string
	line     int // line the directive is written on
	analyzer string
	reason   string
}

const ignorePrefix = "//lint:ignore"

// parseIgnores extracts every //lint:ignore directive from a file. A
// directive without both an analyzer name and a reason is itself reported as
// a finding — suppressions must say why.
func parseIgnores(fset *token.FileSet, f *ast.File, out *[]Finding) []ignoreDirective {
	var dirs []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
			if len(fields) < 2 {
				*out = append(*out, Finding{
					Analyzer: "lint",
					File:     pos.Filename,
					Line:     pos.Line,
					Col:      pos.Column,
					Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\"",
				})
				continue
			}
			dirs = append(dirs, ignoreDirective{
				file:     pos.Filename,
				line:     pos.Line,
				analyzer: fields[0],
				reason:   strings.Join(fields[1:], " "),
			})
		}
	}
	return dirs
}

// suppressed reports whether a finding is covered by a directive on the same
// line (trailing comment) or on the line directly above it.
func suppressed(f Finding, dirs []ignoreDirective) bool {
	for _, d := range dirs {
		if d.file != f.File {
			continue
		}
		if d.analyzer != f.Analyzer && d.analyzer != "*" {
			continue
		}
		if d.line == f.Line || d.line == f.Line-1 {
			return true
		}
	}
	return false
}

// RunPackage runs the given analyzers over one package and returns the
// unsuppressed findings, sorted by position. Directives that suppress
// nothing any of the run analyzers reported are themselves flagged by the
// unusedignore mini-check, so stale suppressions cannot linger.
func RunPackage(m *Module, pkg *Package, analyzers []*Analyzer) []Finding {
	return runPackageTier(m, pkg, analyzers, true, nil)
}

// runPackageTier is RunPackage with two extra controls for the incremental
// engine: includeMeta gates the malformed-//lint:ignore meta findings (the
// engine runs a package's analyzers as two cacheable tiers and must emit the
// directive diagnostics exactly once), and cancelled, when non-nil, aborts
// between analyzers once a wall-clock budget blows (the partial findings are
// returned but must not be cached).
func runPackageTier(m *Module, pkg *Package, analyzers []*Analyzer, includeMeta bool, cancelled func() bool) []Finding {
	var raw []Finding
	for _, a := range analyzers {
		if cancelled != nil && cancelled() {
			break
		}
		pass := &Pass{Analyzer: a, Fset: m.Fset, Pkg: pkg, Mod: m, findings: &raw}
		a.Run(pass)
	}
	var meta []Finding // malformed-directive findings are never suppressible
	var dirs []ignoreDirective
	for _, f := range pkg.Files {
		dirs = append(dirs, parseIgnores(m.Fset, f, &meta)...)
	}
	var out []Finding
	if includeMeta {
		out = meta
	}
	for _, f := range raw {
		if !suppressed(f, dirs) {
			out = append(out, f)
		}
	}
	out = append(out, unusedIgnores(dirs, raw, analyzers)...)
	sortFindings(out)
	return out
}

// unusedIgnores reports //lint:ignore directives that suppressed nothing.
// Only directives naming an analyzer that actually ran are judged (a partial
// run must not flag directives for analyzers it skipped), and wildcard
// directives are exempt — they are rare and carry their own rationale.
func unusedIgnores(dirs []ignoreDirective, raw []Finding, analyzers []*Analyzer) []Finding {
	active := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		active[a.Name] = true
	}
	var out []Finding
	for _, d := range dirs {
		if d.analyzer == "*" || !active[d.analyzer] {
			continue
		}
		used := false
		for _, f := range raw {
			if suppressed(f, []ignoreDirective{d}) {
				used = true
				break
			}
		}
		if !used {
			out = append(out, Finding{
				Analyzer: "unusedignore",
				File:     d.file,
				Line:     d.line,
				Col:      1,
				Message:  fmt.Sprintf("//lint:ignore %s suppresses nothing; remove the stale directive", d.analyzer),
			})
		}
	}
	return out
}

// Run runs the analyzers over every loaded module package.
func Run(m *Module, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, pkg := range m.Packages {
		out = append(out, RunPackage(m, pkg, analyzers)...)
	}
	sortFindings(out)
	return out
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		// Message is the final tiebreaker: sort.Slice is not stable, and the
		// engine promises byte-identical reports across serial, parallel,
		// cold-cache, and warm-cache runs — two findings at the same position
		// from the same analyzer must never flip order between runs.
		return a.Message < b.Message
	})
}

// WriteJSON writes findings as a JSON array (always an array, never null).
func WriteJSON(w io.Writer, fs []Finding) error {
	if fs == nil {
		fs = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(fs)
}

// --- shared AST/type helpers used by several analyzers ---

// calleeFunc returns the identifier a call expression invokes (the function
// name for f(...) or the selected name for x.f(...)), or nil.
func calleeFunc(call *ast.CallExpr) *ast.Ident {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	}
	return nil
}

// isTestFile reports whether the position is in a _test.go file. The loader
// excludes test files, so this is a belt-and-suspenders guard for fixture
// setups.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
