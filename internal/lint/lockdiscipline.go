package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"wise/internal/lint/callgraph"
)

// LockDisciplineAnalyzer runs the lock-held-set dataflow (lockstate.go) over
// every function and function literal and reports the classic mutex misuse
// patterns. The missing-release case carries a machine fix when hoisting the
// unlock to a defer is provably behavior-preserving; the copied-mutex case
// carries a pointer-receiver fix.
var LockDisciplineAnalyzer = &Analyzer{
	Name:        "lockdiscipline",
	Category:    "concurrency",
	ModuleFacts: true,
	Doc: "Lock() without a release on every path to return (with a hoist-to-defer " +
		"fix when safe), double-lock of a mutex already held, Unlock() of a mutex " +
		"not held on any path, defer Unlock inside a loop, mutex-bearing values " +
		"copied by value (with a pointer-receiver fix), and lock-order inversions " +
		"across the module's acquisition graph.",
	Run: runLockDiscipline,
}

func runLockDiscipline(pass *Pass) {
	a := pass.Mod.analysisFor(pass.Pkg)
	for _, u := range a.units[pass.Pkg] {
		checkUnitDiscipline(pass, a, u)
	}
	for _, f := range pass.Pkg.Files {
		checkMutexCopies(pass, f)
	}
	reportInversions(pass, a)
}

func checkUnitDiscipline(pass *Pass, a *modAnalysis, u *lockUnit) {
	flow := a.flowFor(pass.Pkg, u)
	if !flow.hasLocks {
		return
	}
	entry := map[string]heldLock{}
	if u.isDecl() && u.fn != nil {
		entry = a.entryHeld[u.fn]
	}

	// Missing release: a Lock site whose acquisition token survives to Exit
	// means some path returns without releasing.
	for _, id := range flow.leaked {
		op := flow.sites[id]
		fix := hoistToDeferFix(pass, flow, u, op)
		pass.ReportfFix(op.call.Pos(), fix,
			"%s.%s() is not released on every path to return; unlock on all paths or defer the unlock",
			op.key, lockMethodName(op))
	}

	flow.forEachOp(func(op lockOp, mustBefore map[string]heldLock, mayBefore map[string]bool) {
		held := mustBefore
		for k, v := range entry {
			if _, ok := held[k]; !ok {
				held[k] = v
			}
		}
		switch op.kind {
		case opLock:
			h, already := held[op.key]
			if !already {
				return
			}
			switch {
			case !op.read:
				pass.Reportf(op.call.Pos(),
					"%s.Lock() while %s is already held on every path here; double-locking a non-reentrant mutex deadlocks",
					op.key, op.key)
			case h.Write:
				pass.Reportf(op.call.Pos(),
					"%s.RLock() while the write lock is already held; sync.RWMutex is not recursive", op.key)
			}
			// RLock while read-held is legal (shared readers) — not reported.
		case opUnlock:
			if mayBefore[op.key] {
				return
			}
			if _, ok := entry[op.key]; ok {
				return
			}
			pass.Reportf(op.call.Pos(),
				"%s.%s() releases a lock that is not held on any path to this point",
				op.key, lockMethodName(op))
		case opDeferUnlock:
			if op.inLoop {
				pass.Reportf(op.call.Pos(),
					"defer %s.%s() inside a loop runs only at function return; the lock stays held across iterations — unlock explicitly or extract the body into a function",
					op.key, lockMethodName(op))
			}
		}
	})
}

// lockMethodName renders the sync method an op corresponds to.
func lockMethodName(op lockOp) string {
	switch op.kind {
	case opLock:
		if op.read {
			return "RLock"
		}
		return "Lock"
	default:
		if op.read {
			return "RUnlock"
		}
		return "Unlock"
	}
}

// hoistToDeferFix builds the "move the unlock to a defer" fix for a leaked
// Lock site, or nil when the rewrite is not provably behavior-preserving.
// The conditions are deliberately strict:
//
//   - the Lock is an ExprStmt outside any loop whose block dominates Exit
//     (every return passes it, so an unconditional defer never releases an
//     unheld mutex);
//   - it is the only Lock of that mutex in the unit, with no deferred
//     release already registered;
//   - exactly one matching non-deferred Unlock exists, it is a top-level
//     ExprStmt outside any loop, and only bare returns follow it in its
//     enclosing block — so releasing at function return instead is
//     observably the same.
func hoistToDeferFix(pass *Pass, flow *unitFlow, u *lockUnit, op lockOp) *SuggestedFix {
	lockStmt, ok := op.node.(*ast.ExprStmt)
	if !ok || ast.Unparen(lockStmt.X) != ast.Expr(op.call) {
		return nil
	}
	if flow.g.LoopDepthAt(op.call.Pos()) > 0 {
		return nil
	}
	lockBlock := flow.g.BlockOf(op.call.Pos())
	if lockBlock == nil || !flow.g.Dominates(lockBlock, flow.g.Exit) {
		return nil
	}

	var unlocks []lockOp
	for _, ops := range flow.blockOps {
		for _, o := range ops {
			if o.key != op.key || o.read != op.read {
				continue
			}
			switch o.kind {
			case opLock:
				if o.site != op.site {
					return nil // a second Lock site; hoisting would double-release
				}
			case opDeferUnlock:
				return nil // a deferred release already exists on some path
			case opUnlock:
				unlocks = append(unlocks, o)
			}
		}
	}
	if len(unlocks) != 1 {
		return nil
	}
	unlockStmt, ok := unlocks[0].node.(*ast.ExprStmt)
	if !ok || flow.g.LoopDepthAt(unlockStmt.Pos()) > 0 {
		return nil
	}
	if !onlyReturnsFollow(u.body(), unlockStmt) {
		return nil
	}

	fset := pass.Fset
	tf := fset.File(lockStmt.Pos())
	if tf == nil {
		return nil
	}
	lockPos := fset.Position(lockStmt.Pos())
	indent := strings.Repeat("\t", lockPos.Column-1)
	unlockLine := fset.Position(unlockStmt.Pos()).Line
	delStart := tf.LineStart(unlockLine)
	var delEnd token.Pos
	if unlockLine < tf.LineCount() {
		delEnd = tf.LineStart(unlockLine + 1)
	} else {
		delEnd = unlockStmt.End()
	}
	method := "Unlock"
	if op.read {
		method = "RUnlock"
	}
	return &SuggestedFix{
		Message: fmt.Sprintf("defer %s.%s() right after the %s and drop the explicit release", op.key, method, lockMethodName(op)),
		Edits: []TextEdit{
			{Pos: lockStmt.End(), End: lockStmt.End(), NewText: "\n" + indent + "defer " + op.key + "." + method + "()"},
			{Pos: delStart, End: delEnd, NewText: ""},
		},
	}
}

// onlyReturnsFollow reports whether stmt sits in a statement list where every
// following statement is a bare `return` (or there are none).
func onlyReturnsFollow(body *ast.BlockStmt, stmt ast.Stmt) bool {
	found := false
	var check func(list []ast.Stmt) bool
	check = func(list []ast.Stmt) bool {
		for i, s := range list {
			if s == stmt {
				found = true
				for _, rest := range list[i+1:] {
					r, ok := rest.(*ast.ReturnStmt)
					if !ok || len(r.Results) != 0 {
						return false
					}
				}
				return true
			}
			if b, ok := s.(*ast.BlockStmt); ok {
				if !check(b.List) {
					return false
				}
				if found {
					return true
				}
			}
		}
		return true
	}
	ok := check(body.List)
	return ok && found
}

// checkMutexCopies flags values containing a sync.Mutex/RWMutex copied by
// value: value receivers (with a pointer-receiver fix), assignments whose RHS
// is an existing value (not a fresh composite literal), and range values.
// go vet's copylocks overlaps here; this version adds the machine fix and
// runs under the same suppression/report pipeline as the rest of the suite.
func checkMutexCopies(pass *Pass, file *ast.File) {
	info := pass.Pkg.Info

	copiesLockValue := func(e ast.Expr) (types.Type, bool) {
		switch ast.Unparen(e).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			return nil, false // composite literals, calls, conversions are fresh or vetted elsewhere
		}
		t := info.TypeOf(e)
		if t == nil {
			return nil, false
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			return nil, false
		}
		if !callgraph.MutexBearing(t) {
			return nil, false
		}
		return t, true
	}

	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Recv == nil || len(x.Recv.List) != 1 {
				return true
			}
			rt := x.Recv.List[0].Type
			if _, isStar := rt.(*ast.StarExpr); isStar {
				return true
			}
			t := info.TypeOf(rt)
			if t == nil || !callgraph.MutexBearing(t) {
				return true
			}
			fix := &SuggestedFix{
				Message: "make the receiver a pointer so the mutex is shared",
				Edits:   []TextEdit{{Pos: rt.Pos(), End: rt.Pos(), NewText: "*"}},
			}
			pass.ReportfFix(rt.Pos(), fix,
				"method %s has a value receiver of mutex-bearing type %s; every call locks a private copy — use a pointer receiver",
				x.Name.Name, typeShortName(t))
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if len(x.Lhs) == len(x.Rhs) {
					if id, isIdent := x.Lhs[i].(*ast.Ident); isIdent && id.Name == "_" {
						continue // x = _ discards; no copy materializes
					}
				}
				if t, ok := copiesLockValue(rhs); ok {
					pass.Reportf(rhs.Pos(),
						"assignment copies a value of mutex-bearing type %s; the copy shares no lock state — use a pointer", typeShortName(t))
				}
			}
		case *ast.ValueSpec:
			for _, rhs := range x.Values {
				if t, ok := copiesLockValue(rhs); ok {
					pass.Reportf(rhs.Pos(),
						"declaration copies a value of mutex-bearing type %s; the copy shares no lock state — use a pointer", typeShortName(t))
				}
			}
		case *ast.RangeStmt:
			if x.Value == nil {
				return true
			}
			t := info.TypeOf(x.Value)
			if t == nil {
				return true
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				return true
			}
			if callgraph.MutexBearing(t) {
				pass.Reportf(x.Value.Pos(),
					"range copies values of mutex-bearing type %s; iterate by index or store pointers", typeShortName(t))
			}
		}
		return true
	})
}

// reportInversions surfaces lock-order inversions whose acquiring site lives
// in this package (each inversion is reported once, in the package that
// acquires against the established order).
func reportInversions(pass *Pass, a *modAnalysis) {
	for _, inv := range a.lockInversions() {
		if !posInPackage(pass, inv.pos) {
			continue
		}
		counter := pass.Fset.Position(inv.counter)
		pass.Reportf(inv.pos,
			"acquiring %s while %s is held inverts the lock order established at %s:%d (%s before %s); concurrent callers can deadlock",
			shortLockKey(pass.Mod, inv.to), shortLockKey(pass.Mod, inv.from),
			filepath.Base(counter.Filename), counter.Line,
			shortLockKey(pass.Mod, inv.to), shortLockKey(pass.Mod, inv.from))
	}
}

// typeShortName renders a type without its package path qualifier.
func typeShortName(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// posInPackage reports whether pos lies in one of the package's files.
func posInPackage(pass *Pass, pos token.Pos) bool {
	name := pass.Fset.Position(pos).Filename
	for _, f := range pass.Pkg.Filenames {
		if f == name {
			return true
		}
	}
	return false
}

// shortLockKey trims the module-path prefix off a type-level lock key for
// readable messages: "wise/internal/serve.breaker.mu" -> "serve.breaker.mu".
func shortLockKey(m *Module, key string) string {
	rest, ok := strings.CutPrefix(key, m.ModPath+"/")
	if !ok {
		return key
	}
	if i := strings.LastIndex(rest, "/"); i >= 0 {
		rest = rest[i+1:]
	}
	return rest
}
