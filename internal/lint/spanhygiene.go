package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SpanHygieneAnalyzer checks that every obs span opened in a function
// (obs.Begin or (*obs.Span).Child) is ended in that same function — either
// with a defer or an explicit End on every path the code relies on. A span
// that never ends reports a bogus in-flight duration forever and skews every
// metrics snapshot taken after it. Spans that escape the function (returned,
// stored in a field, passed along) are intentionally out of scope: ownership
// moved, and the analyzer only reasons locally.
var SpanHygieneAnalyzer = &Analyzer{
	Name: "spanhygiene",
	Doc:  "every obs span started in a function must be ended in that function",
	Run:  runSpanHygiene,
}

func runSpanHygiene(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpansInFunc(pass, fd)
		}
	}
}

func checkSpansInFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info

	// Pass 1: every span-creating call in the function.
	spanCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isSpanCreator(info, call) {
			spanCalls[call] = true
		}
		return true
	})
	if len(spanCalls) == 0 {
		return
	}

	// Pass 2: classify each creation site. Tracked variables need an End;
	// chained obs.Begin(...).End() is consumed on the spot; results that
	// escape (returns, arguments, fields) are skipped.
	tracked := make(map[types.Object]*ast.CallExpr) // span var -> first creation
	consumed := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, rhs := range st.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !spanCalls[call] {
					continue
				}
				consumed[call] = true
				id, ok := st.Lhs[i].(*ast.Ident)
				if !ok {
					continue // field or index target: span escapes local reasoning
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(), "obs span assigned to _ can never be ended")
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil {
					if _, seen := tracked[obj]; !seen {
						tracked[obj] = call
					}
				}
			}
		case *ast.ValueSpec:
			for i, rhs := range st.Values {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !spanCalls[call] || i >= len(st.Names) {
					continue
				}
				consumed[call] = true
				if obj := info.Defs[st.Names[i]]; obj != nil {
					if _, seen := tracked[obj]; !seen {
						tracked[obj] = call
					}
				}
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok && spanCalls[call] {
				consumed[call] = true
				pass.Reportf(call.Pos(), "obs span started and immediately discarded; assign it and call End")
			}
		case *ast.SelectorExpr:
			// obs.Begin("x").End() chained inline (typically under defer).
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok && spanCalls[call] && st.Sel.Name == "End" {
				consumed[call] = true
			}
		}
		return true
	})

	// Pass 3: End calls on tracked variables (plain or deferred).
	ended := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				ended[obj] = true
			}
		}
		return true
	})

	for obj, call := range tracked {
		if !ended[obj] {
			pass.Reportf(call.Pos(), "obs span %q is never ended in %s; add defer %s.End() or an explicit End on every path",
				obj.Name(), fd.Name.Name, obj.Name())
		}
	}
}

// isSpanCreator reports whether the call statically resolves to obs.Begin,
// (*obs.Registry).Begin, or (*obs.Span).Child.
func isSpanCreator(info *types.Info, call *ast.CallExpr) bool {
	fn := resolvedFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if !strings.HasSuffix(fn.Pkg().Path(), "internal/obs") {
		return false
	}
	return fn.Name() == "Begin" || fn.Name() == "Child"
}
