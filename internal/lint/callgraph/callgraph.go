// Package callgraph builds a module-wide, CHA-style call graph over the
// packages loaded by wise-lint's stdlib-only loader, together with cheap
// flow-insensitive per-function summaries (locks acquired/released,
// goroutines spawned, blocking operations, writes through parameters, ctx
// sensitivity). The lock-discipline, guardedby, goroutineescape, and
// waitblock analyzers consume it for their interprocedural reasoning; the
// flow-sensitive lock-held dataflow itself lives in package lint on top of
// internal/lint/cfg.
//
// The package deliberately does not import package lint: like cfg, it takes
// plain (Files, Info) inputs so the dependency arrow keeps pointing from the
// analyzers to the engines and never back.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Package is one type-checked package to include in the graph. It mirrors
// the fields of lint.Package that the builder needs.
type Package struct {
	Path  string
	Files []*ast.File
	Info  *types.Info
}

// Summary holds the flow-insensitive facts about one function body. FuncLit
// bodies nested in the declaration are folded in, except that operations
// inside go-spawned literals do not count toward BlocksDirect (they run on
// another goroutine).
type Summary struct {
	// Acquires and Releases are the type-level lock keys (see
	// TypeLevelLockKey) this body Lock/RLocks resp. Unlock/RUnlocks
	// directly. Keys are deduplicated and sorted; locks with no type-level
	// identity (locals) are omitted.
	Acquires []string
	Releases []string

	// SpawnsGoroutine reports whether the body contains a go statement.
	SpawnsGoroutine bool

	// BlocksDirect reports whether the body itself performs a blocking
	// synchronization op outside any go-spawned literal: WaitGroup.Wait,
	// Cond.Wait, a bare channel send/receive, ranging over a channel, or a
	// select without a default clause.
	BlocksDirect bool

	// WGAddParams lists the indices of *sync.WaitGroup parameters the body
	// calls Add on. waitblock uses it to catch "wg.Add inside the spawned
	// goroutine" through a call boundary.
	WGAddParams []int

	// WritesParams lists the indices of parameters the body writes through
	// (pointer deref, field of a pointer, or element of a slice/map
	// parameter). Writing the parameter variable itself is local and does
	// not count.
	WritesParams []int

	// WritesRecv reports whether a method body writes through its receiver.
	WritesRecv bool

	// HasCtxParam reports whether the signature takes a context.Context.
	HasCtxParam bool
}

// Node is one function declaration in the graph.
type Node struct {
	Func *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	Out  []*Edge
	In   []*Edge

	// AddressTaken reports that the function is referenced somewhere other
	// than the callee position of a call (stored, passed, returned). Such
	// functions can be invoked from anywhere, so interprocedural
	// assumptions (like entry-held lock sets) must not be made about them.
	AddressTaken bool

	// GoSpawned reports that some module function launches this one with a
	// go statement (directly: go f(...) / go x.m(...)).
	GoSpawned bool

	Summary Summary

	// MayBlock reports BlocksDirect here or in any callee reachable over
	// synchronous (non-Async) edges.
	MayBlock bool
}

// Edge is one resolved call site.
type Edge struct {
	Caller *Node
	Callee *Node
	Site   *ast.CallExpr

	// Interface marks a CHA-resolved edge: the static callee is an
	// interface method and Callee is one of its module implementations.
	Interface bool

	// Async marks a call that does not run on the caller's goroutine: the
	// direct call of a go statement, or any call lexically inside a
	// go-spawned function literal.
	Async bool
}

// Graph is the module call graph.
type Graph struct {
	Fset  *token.FileSet
	Nodes []*Node

	byFunc map[*types.Func]*Node
}

// NodeOf returns the node for fn, or nil if fn has no body in the graph's
// package set.
func (g *Graph) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.byFunc[fn]
}

// Build constructs the graph. Static calls resolve through types.Info; calls
// through an interface method resolve, class-hierarchy-analysis style, to
// every named type in pkgs that implements the interface.
func Build(fset *token.FileSet, pkgs []*Package) *Graph {
	g := &Graph{Fset: fset, byFunc: make(map[*types.Func]*Node)}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Func: obj, Decl: fd, Pkg: p}
				g.byFunc[obj] = n
				g.Nodes = append(g.Nodes, n)
			}
		}
	}
	named := collectNamed(pkgs)
	for _, n := range g.Nodes {
		g.scan(n, named)
	}
	g.propagateMayBlock()
	return g
}

// Reachable returns the set of nodes reachable from roots over Out edges
// (both sync and async), including the roots themselves.
func (g *Graph) Reachable(roots ...*Node) map[*Node]bool {
	seen := make(map[*Node]bool)
	var work []*Node
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			work = append(work, r)
		}
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range n.Out {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				work = append(work, e.Callee)
			}
		}
	}
	return seen
}

// AcquiresClosure returns the union of Summary.Acquires over n and every
// callee reachable from it through synchronous edges — the type-level lock
// keys a call to n may take on the caller's goroutine.
func (g *Graph) AcquiresClosure(n *Node) []string {
	seen := map[*Node]bool{n: true}
	work := []*Node{n}
	keys := make(map[string]bool)
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		for _, k := range cur.Summary.Acquires {
			keys[k] = true
		}
		for _, e := range cur.Out {
			if !e.Async && !seen[e.Callee] {
				seen[e.Callee] = true
				work = append(work, e.Callee)
			}
		}
	}
	return sortedKeys(keys)
}

// propagateMayBlock runs the transitive-blocking fixpoint over sync edges.
func (g *Graph) propagateMayBlock() {
	for _, n := range g.Nodes {
		n.MayBlock = n.Summary.BlocksDirect
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if n.MayBlock {
				continue
			}
			for _, e := range n.Out {
				if !e.Async && e.Callee.MayBlock {
					n.MayBlock = true
					changed = true
					break
				}
			}
		}
	}
}

// collectNamed gathers every package-level named type in pkgs, for CHA
// interface resolution.
func collectNamed(pkgs []*Package) []*types.Named {
	var out []*types.Named
	for _, p := range pkgs {
		if len(p.Files) == 0 {
			continue
		}
		// All files of a package share one *types.Package; take it from
		// Info.Defs via any file-level object by scanning the scope of the
		// first declared object we can reach. Simpler: use the scope of the
		// package object attached to the first file's declarations.
		tp := typesPackage(p)
		if tp == nil {
			continue
		}
		scope := tp.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				out = append(out, named)
			}
		}
	}
	return out
}

// typesPackage digs the *types.Package out of a Package's Info (the builder
// input deliberately omits lint.Package.Types to keep the struct minimal).
func typesPackage(p *Package) *types.Package {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj := p.Info.Defs[fd.Name]; obj != nil {
				return obj.Pkg()
			}
		}
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if obj := p.Info.Defs[s.Name]; obj != nil {
						return obj.Pkg()
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if obj := p.Info.Defs[n]; obj != nil {
							return obj.Pkg()
						}
					}
				}
			}
		}
	}
	return nil
}

// scan walks one declaration body, recording edges and the summary.
func (g *Graph) scan(n *Node, named []*types.Named) {
	info := n.Pkg.Info
	goBodies := spawnedLiteralBodies(n.Decl.Body)
	inGo := func(pos token.Pos) bool {
		for _, b := range goBodies {
			if b.Pos() <= pos && pos < b.End() {
				return true
			}
		}
		return false
	}

	// Channel ops that are a select's communication clauses block (or not)
	// as part of the select itself, not as standalone ops.
	comms := selectCommOps(n.Decl.Body)

	params, recvObj := paramObjects(n.Decl, info)
	wgAdd := make(map[int]bool)
	writesParam := make(map[int]bool)
	acquires := make(map[string]bool)
	releases := make(map[string]bool)
	calleeIdents := make(map[*ast.Ident]bool)

	addEdge := func(call *ast.CallExpr, callee *types.Func, iface, async bool) {
		cn := g.byFunc[callee]
		if cn == nil {
			return
		}
		e := &Edge{Caller: n, Callee: cn, Site: call, Interface: iface, Async: async}
		n.Out = append(n.Out, e)
		cn.In = append(cn.In, e)
	}

	resolveCall := func(call *ast.CallExpr, async bool) {
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			calleeIdents[fun] = true
			if fn, ok := info.Uses[fun].(*types.Func); ok {
				addEdge(call, fn, false, async)
			}
		case *ast.SelectorExpr:
			calleeIdents[fun.Sel] = true
			fn, ok := info.Uses[fun.Sel].(*types.Func)
			if !ok {
				return
			}
			if sel, isSel := info.Selections[fun]; isSel {
				if recvIface, ok := sel.Recv().Underlying().(*types.Interface); ok {
					for _, impl := range implementers(recvIface, fn.Name(), named) {
						addEdge(call, impl, true, async)
					}
					return
				}
			}
			addEdge(call, fn, false, async)
		}
	}

	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.GoStmt:
			n.Summary.SpawnsGoroutine = true
			if _, isLit := ast.Unparen(x.Call.Fun).(*ast.FuncLit); !isLit {
				resolveCall(x.Call, true)
				if fn := staticCallee(x.Call, info); fn != nil {
					if cn := g.byFunc[fn]; cn != nil {
						cn.GoSpawned = true
					}
				}
				// Arguments are still evaluated synchronously; fall through
				// to the default traversal, which revisits x.Call — skip the
				// duplicate by returning false and walking args by hand.
				for _, a := range x.Call.Args {
					ast.Inspect(a, func(sub ast.Node) bool {
						if c, ok := sub.(*ast.CallExpr); ok {
							resolveCall(c, inGo(c.Pos()))
						}
						return true
					})
				}
				return false
			}
			return true
		case *ast.CallExpr:
			async := inGo(x.Pos())
			resolveCall(x, async)
			g.summarizeCall(n, x, info, params, recvObj, wgAdd, acquires, releases, async)
			return true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !comms[x] && !inGo(x.Pos()) {
				n.Summary.BlocksDirect = true
			}
		case *ast.SendStmt:
			if !comms[x] && !inGo(x.Pos()) {
				n.Summary.BlocksDirect = true
			}
		case *ast.RangeStmt:
			if isChan(info.TypeOf(x.X)) && !inGo(x.Pos()) {
				n.Summary.BlocksDirect = true
			}
		case *ast.SelectStmt:
			if !selectHasDefault(x) && !inGo(x.Pos()) {
				n.Summary.BlocksDirect = true
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				recordWrite(lhs, info, params, recvObj, writesParam, n)
			}
		case *ast.IncDecStmt:
			recordWrite(x.X, info, params, recvObj, writesParam, n)
		}
		return true
	})

	// Address-taken and ctx sensitivity.
	sig := n.Func.Type().(*types.Signature)
	tparams := sig.Params()
	for i := 0; i < tparams.Len(); i++ {
		if isContext(tparams.At(i).Type()) {
			n.Summary.HasCtxParam = true
		}
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok || calleeIdents[id] {
			return true
		}
		if fn, isFn := info.Uses[id].(*types.Func); isFn {
			if target := g.byFunc[fn]; target != nil {
				target.AddressTaken = true
			}
		}
		return true
	})

	n.Summary.Acquires = sortedKeys(acquires)
	n.Summary.Releases = sortedKeys(releases)
	n.Summary.WGAddParams = sortedInts(wgAdd)
	n.Summary.WritesParams = sortedInts(writesParam)
}

// summarizeCall records lock and WaitGroup facts for one call site.
func (g *Graph) summarizeCall(n *Node, call *ast.CallExpr, info *types.Info, params map[types.Object]int, recvObj types.Object, wgAdd map[int]bool, acquires, releases map[string]bool, async bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		if isMutex(info.TypeOf(sel.X)) {
			if k := TypeLevelLockKey(sel.X, info); k != "" {
				acquires[k] = true
			}
		}
	case "Unlock", "RUnlock":
		if isMutex(info.TypeOf(sel.X)) {
			if k := TypeLevelLockKey(sel.X, info); k != "" {
				releases[k] = true
			}
		}
	case "Wait":
		t := info.TypeOf(sel.X)
		if isSyncNamed(t, "WaitGroup") && !async {
			n.Summary.BlocksDirect = true
		}
		// sync.Cond.Wait blocks too, but it requires holding the Cond's
		// lock by contract, so waitblock exempts it; still a blocker.
		if isSyncNamed(t, "Cond") && !async {
			n.Summary.BlocksDirect = true
		}
	case "Add":
		if root, _, ok := FlattenSelector(sel.X); ok {
			obj := info.Uses[root]
			if i, isParam := params[obj]; isParam && isSyncNamed(info.TypeOf(sel.X), "WaitGroup") && isPointer(obj.Type()) {
				wgAdd[i] = true
			}
		}
	}
}

// recordWrite marks parameter/receiver writes for the summary. Only writes
// through the parameter (deref, field of pointer, element) count; rebinding
// the parameter variable itself is local.
func recordWrite(lhs ast.Expr, info *types.Info, params map[types.Object]int, recvObj types.Object, writesParam map[int]bool, n *Node) {
	if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
		return
	}
	root, _, ok := FlattenSelector(lhs)
	if !ok {
		return
	}
	obj := info.Uses[root]
	if obj == nil {
		return
	}
	if i, isParam := params[obj]; isParam {
		writesParam[i] = true
	}
	if recvObj != nil && obj == recvObj {
		n.Summary.WritesRecv = true
	}
}

// paramObjects maps each parameter's types.Object to its index, and returns
// the receiver object (nil for plain functions).
func paramObjects(decl *ast.FuncDecl, info *types.Info) (map[types.Object]int, types.Object) {
	params := make(map[types.Object]int)
	i := 0
	if decl.Type.Params != nil {
		for _, field := range decl.Type.Params.List {
			if len(field.Names) == 0 {
				i++
				continue
			}
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					params[obj] = i
				}
				i++
			}
		}
	}
	var recvObj types.Object
	if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
		recvObj = info.Defs[decl.Recv.List[0].Names[0]]
	}
	return params, recvObj
}

// selectCommOps collects the channel operations that appear as select
// communication clauses, so the blocking scan does not double-count them.
func selectCommOps(body *ast.BlockStmt) map[ast.Node]bool {
	out := make(map[ast.Node]bool)
	ast.Inspect(body, func(node ast.Node) bool {
		sel, ok := node.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			switch comm := cc.Comm.(type) {
			case *ast.SendStmt:
				out[comm] = true
			case *ast.ExprStmt:
				out[ast.Unparen(comm.X)] = true
			case *ast.AssignStmt:
				for _, r := range comm.Rhs {
					out[ast.Unparen(r)] = true
				}
			}
		}
		return true
	})
	return out
}

// spawnedLiteralBodies returns the bodies of every function literal that is
// the direct subject of a go statement, anywhere in body.
func spawnedLiteralBodies(body *ast.BlockStmt) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(body, func(node ast.Node) bool {
		if gs, ok := node.(*ast.GoStmt); ok {
			if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				out = append(out, lit.Body)
			}
		}
		return true
	})
	return out
}

// implementers returns the concrete module methods that an interface-method
// call may dispatch to under CHA.
func implementers(iface *types.Interface, method string, named []*types.Named) []*types.Func {
	var out []*types.Func
	for _, t := range named {
		if types.IsInterface(t) {
			continue
		}
		ptr := types.NewPointer(t)
		if !types.Implements(t, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, t.Obj().Pkg(), method)
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, fn)
		}
	}
	return out
}

// staticCallee returns the *types.Func a call statically resolves to, or nil.
func staticCallee(call *ast.CallExpr, info *types.Info) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedInts(m map[int]bool) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
