package callgraph

import (
	"go/ast"
	"go/types"
	"strings"
)

// FlattenSelector decomposes a selector chain (b.state, p.hist.mu, mu) into
// its root identifier and the field path. It refuses anything that is not a
// pure Ident/Selector chain (index expressions, calls, derefs of
// non-identifiers), because those have no stable lock identity.
func FlattenSelector(e ast.Expr) (root *ast.Ident, path []string, ok bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x, path, true
		case *ast.SelectorExpr:
			path = append([]string{x.Sel.Name}, path...)
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, nil, false
		}
	}
}

// RenderPath renders a selector chain as the dotted path the lock-held
// dataflow uses as a frame-local key ("b.mu", "mu"). Returns "" when the
// expression has no stable identity.
func RenderPath(e ast.Expr) string {
	root, path, ok := FlattenSelector(e)
	if !ok {
		return ""
	}
	return strings.Join(append([]string{root.Name}, path...), ".")
}

// TypeLevelLockKey names a lock expression at the type level, for facts that
// must survive crossing a function boundary: "pkgpath.TypeName.fieldpath"
// when the root is a variable of (a pointer to) a named struct type, or
// "pkgpath.varname[.fieldpath]" when the root is a package-level variable.
// Locks rooted in plain locals have no type-level identity and map to "".
func TypeLevelLockKey(e ast.Expr, info *types.Info) string {
	root, path, ok := FlattenSelector(e)
	if !ok {
		return ""
	}
	obj := info.Uses[root]
	if obj == nil {
		obj = info.Defs[root]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return ""
	}
	// Package-level variable: identity is the variable itself.
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		key := v.Pkg().Path() + "." + v.Name()
		if len(path) > 0 {
			key += "." + strings.Join(path, ".")
		}
		return key
	}
	// Local/param/receiver: identity is the named type the path starts from,
	// when there is one and the path actually selects into it.
	if len(path) == 0 {
		return ""
	}
	named := namedOf(v.Type())
	if named == nil || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + strings.Join(path, ".")
}

// namedOf returns the named type of t after stripping one level of pointer,
// or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		if p, ok := t.(*types.Pointer); ok {
			n, _ = p.Elem().(*types.Named)
		}
	}
	return n
}

// isMutex reports whether t is sync.Mutex, sync.RWMutex, or a pointer to
// one.
func isMutex(t types.Type) bool {
	return isSyncNamed(t, "Mutex") || isSyncNamed(t, "RWMutex")
}

// isSyncNamed reports whether t (or *t) is the named type sync.<name>.
func isSyncNamed(t types.Type, name string) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// isChan reports whether t's underlying type is a channel.
func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isPointer reports whether t's underlying type is a pointer.
func isPointer(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// MutexBearing reports whether t contains a sync.Mutex or sync.RWMutex by
// value, directly or through nested (possibly embedded) struct fields.
// Copying such a value copies the lock state — the classic copylocks bug.
func MutexBearing(t types.Type) bool {
	return mutexBearing(t, 0)
}

func mutexBearing(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return false
	}
	if isMutex(t) {
		if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
			return true
		}
		return false
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if _, isPtr := ft.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if mutexBearing(ft, depth+1) {
			return true
		}
	}
	return false
}
