package callgraph

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"testing"
)

const graphSrc = `package cg

import (
	"context"
	"sync"
)

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

type shape interface{ area() int }

type square struct{ s int }
type circle struct{ r int }

func (s square) area() int { return s.s * s.s }
func (c *circle) area() int { return 3 * c.r * c.r }

func dispatch(sh shape) int { return sh.area() }

func waits(wg *sync.WaitGroup) { wg.Wait() }

func callsWaits(wg *sync.WaitGroup) { callsWaitsInner(wg) }

func callsWaitsInner(wg *sync.WaitGroup) { waits(wg) }

func spawnsBlocker(ch chan int) {
	go func() { <-ch }()
}

func spawnsNamed(wg *sync.WaitGroup) {
	go waits(wg)
}

func addsWG(wg *sync.WaitGroup, n int) { wg.Add(n) }

func setp(p *int, v int) { *p = v }

func takesAddress() func(*sync.WaitGroup) {
	f := waits
	return f
}

func nonBlockingSelect(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

func blockingSelect(ch chan int) int {
	select {
	case v := <-ch:
		return v
	}
}

func ctxUser(ctx context.Context) {}
`

func buildSrc(t *testing.T, src string) (*Graph, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cg.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("cg", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	g := Build(fset, []*Package{{Path: "cg", Files: []*ast.File{f}, Info: info}})
	return g, info
}

func nodeNamed(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Func.Name() == name {
			return n
		}
	}
	t.Fatalf("no node named %s", name)
	return nil
}

func TestCHAInterfaceResolution(t *testing.T) {
	g, _ := buildSrc(t, graphSrc)
	d := nodeNamed(t, g, "dispatch")
	var targets []string
	for _, e := range d.Out {
		if !e.Interface {
			t.Errorf("dispatch edge to %s should be an interface edge", e.Callee.Func.Name())
		}
		targets = append(targets, e.Callee.Func.FullName())
	}
	want := 2 // square.area and (*circle).area
	if len(targets) != want {
		t.Fatalf("dispatch should resolve to %d implementations, got %v", want, targets)
	}
}

func TestTransitiveMayBlock(t *testing.T) {
	g, _ := buildSrc(t, graphSrc)
	for name, want := range map[string]bool{
		"waits":             true,
		"callsWaits":        true, // two hops away
		"callsWaitsInner":   true,
		"spawnsBlocker":     false, // blocking op is inside a go literal
		"spawnsNamed":       false, // go waits(wg) is async
		"nonBlockingSelect": false,
		"blockingSelect":    true,
		"dispatch":          false,
	} {
		if got := nodeNamed(t, g, name).MayBlock; got != want {
			t.Errorf("MayBlock(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestSummaries(t *testing.T) {
	g, _ := buildSrc(t, graphSrc)

	inc := nodeNamed(t, g, "inc")
	if want := []string{"cg.counter.mu"}; !reflect.DeepEqual(inc.Summary.Acquires, want) {
		t.Errorf("inc Acquires = %v, want %v", inc.Summary.Acquires, want)
	}
	if !reflect.DeepEqual(inc.Summary.Releases, []string{"cg.counter.mu"}) {
		t.Errorf("inc Releases = %v", inc.Summary.Releases)
	}
	if !inc.Summary.WritesRecv {
		t.Error("inc should be marked WritesRecv")
	}

	if got := nodeNamed(t, g, "addsWG").Summary.WGAddParams; !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("addsWG WGAddParams = %v, want [0]", got)
	}
	if got := nodeNamed(t, g, "setp").Summary.WritesParams; !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("setp WritesParams = %v, want [0]", got)
	}
	sb := nodeNamed(t, g, "spawnsBlocker")
	if !sb.Summary.SpawnsGoroutine || sb.Summary.BlocksDirect {
		t.Errorf("spawnsBlocker: SpawnsGoroutine=%v BlocksDirect=%v, want true/false",
			sb.Summary.SpawnsGoroutine, sb.Summary.BlocksDirect)
	}
	if !nodeNamed(t, g, "ctxUser").Summary.HasCtxParam {
		t.Error("ctxUser should have HasCtxParam")
	}
}

func TestAddressTakenAndGoSpawned(t *testing.T) {
	g, _ := buildSrc(t, graphSrc)
	w := nodeNamed(t, g, "waits")
	if !w.AddressTaken {
		t.Error("waits is stored in takesAddress and should be AddressTaken")
	}
	if !w.GoSpawned {
		t.Error("waits is launched by spawnsNamed and should be GoSpawned")
	}
	if nodeNamed(t, g, "callsWaits").AddressTaken {
		t.Error("callsWaits is only ever called and must not be AddressTaken")
	}
	// The go waits(wg) edge must be async.
	for _, e := range nodeNamed(t, g, "spawnsNamed").Out {
		if e.Callee == w && !e.Async {
			t.Error("go waits(wg) edge should be Async")
		}
	}
}

func TestReachableAndAcquiresClosure(t *testing.T) {
	g, _ := buildSrc(t, graphSrc)
	cw := nodeNamed(t, g, "callsWaits")
	reach := g.Reachable(cw)
	if !reach[nodeNamed(t, g, "waits")] {
		t.Error("waits should be reachable from callsWaits")
	}
	if reach[nodeNamed(t, g, "dispatch")] {
		t.Error("dispatch must not be reachable from callsWaits")
	}

	// AcquiresClosure sees through call chains.
	src := graphSrc + `
func callsInc(c *counter) { c.inc() }
`
	g2, _ := buildSrc(t, src)
	got := g2.AcquiresClosure(nodeNamed(t, g2, "callsInc"))
	if !reflect.DeepEqual(got, []string{"cg.counter.mu"}) {
		t.Errorf("AcquiresClosure(callsInc) = %v, want [cg.counter.mu]", got)
	}
}

func TestMutexBearing(t *testing.T) {
	_, info := buildSrc(t, graphSrc)
	var counterType, squareType types.Type
	for _, obj := range info.Defs {
		tn, ok := obj.(*types.TypeName)
		if !ok {
			continue
		}
		switch tn.Name() {
		case "counter":
			counterType = tn.Type()
		case "square":
			squareType = tn.Type()
		}
	}
	if counterType == nil || squareType == nil {
		t.Fatal("fixture types not found")
	}
	if !MutexBearing(counterType) {
		t.Error("counter embeds a sync.Mutex by value and must be MutexBearing")
	}
	if MutexBearing(squareType) {
		t.Error("square holds no mutex")
	}
}
