package lint

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// FaultSiteAnalyzer keeps the fault-injection surface (RESILIENCE.md) honest:
// every faultinject.Hit/Writer call must use a string-literal site that is
// registered in faultinject.Registry, marked at exactly one injection point
// per package, and armed by at least one test in its package — and test
// files that arm a site which no longer exists in the registry are errors
// too. The test side is checked by scanning the package's raw _test.go files
// (the loader excludes them by design), so findings there are reported with
// explicit positions. The faultinject package itself is exempt from the
// usage checks (its tests exercise the parser with synthetic sites); there
// the analyzer instead verifies that every registered site still has an
// injection point somewhere in the module.
var FaultSiteAnalyzer = &Analyzer{
	Name:        "faultsite",
	ModuleFacts: true,
	Doc:  "verifies faultinject sites are literal, registered, unique, test-armed, and that tests arm only existing sites",
	Run:  runFaultSite,
}

const faultinjectSuffix = "/internal/resilience/faultinject"

func runFaultSite(pass *Pass) {
	registry := faultRegistry(pass)
	if registry == nil {
		return // module has no faultinject package; nothing to validate
	}
	if strings.HasSuffix(pass.Pkg.Path, faultinjectSuffix) {
		checkRegistryMarked(pass, registry)
		return
	}
	sites := siteCalls(pass, pass.Pkg)
	testText := packageTestText(pass.Pkg.Dir)

	seen := make(map[string]token.Pos)
	for _, sc := range sites {
		if sc.site == "" {
			pass.Reportf(sc.pos, "faultinject site must be a string literal so tests and the registry can reference it")
			continue
		}
		if _, ok := registry[sc.site]; !ok {
			pass.Reportf(sc.pos, "fault site %q is not registered in faultinject.Registry; add it with a description", sc.site)
		}
		if first, dup := seen[sc.site]; dup {
			pass.Reportf(sc.pos, "fault site %q is already marked at %s; every site needs exactly one injection point",
				sc.site, pass.Fset.Position(first))
		} else {
			seen[sc.site] = sc.pos
		}
		if !testTextReferences(testText, sc.site) {
			pass.Reportf(sc.pos, "fault site %q is not armed by any test in %s; recovery paths need coverage",
				sc.site, filepath.Base(pass.Pkg.Dir))
		}
	}
	for _, ref := range testSiteRefs(testText) {
		if _, ok := registry[ref.site]; !ok {
			pass.ReportAt(ref.file, ref.line, 1,
				"test arms fault site %q, which is not in faultinject.Registry; the injection point is gone or renamed", ref.site)
		}
	}
}

// siteCall is one faultinject.Hit/Writer call; site is "" when the argument
// is not a string literal.
type siteCall struct {
	pos  token.Pos
	site string
}

// siteCalls collects the Hit/Writer calls of one package.
func siteCalls(pass *Pass, pkg *Package) []siteCall {
	var out []siteCall
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := resolvedFunc(pkg.Info, call)
			if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), faultinjectSuffix) {
				return true
			}
			if fn.Name() != "Hit" && fn.Name() != "Writer" {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			sc := siteCall{pos: call.Pos()}
			if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
				if s, err := strconv.Unquote(lit.Value); err == nil {
					sc.site = s
				}
			}
			out = append(out, sc)
			return true
		})
	}
	return out
}

// faultRegistry parses faultinject.Registry from the loaded module and
// returns site -> key position.
func faultRegistry(pass *Pass) map[string]token.Pos {
	pkg := pass.Mod.Lookup(pass.Mod.ModPath + faultinjectSuffix)
	if pkg == nil {
		return nil
	}
	reg := make(map[string]token.Pos)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, name := range vs.Names {
				if name.Name != "Registry" || i >= len(vs.Values) {
					continue
				}
				cl, ok := vs.Values[i].(*ast.CompositeLit)
				if !ok {
					continue
				}
				for _, elt := range cl.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if lit, ok := kv.Key.(*ast.BasicLit); ok && lit.Kind == token.STRING {
						if s, err := strconv.Unquote(lit.Value); err == nil {
							reg[s] = lit.Pos()
						}
					}
				}
			}
			return true
		})
	}
	return reg
}

// checkRegistryMarked runs only on the faultinject package: every registered
// site must still have a Hit/Writer call somewhere in the module.
func checkRegistryMarked(pass *Pass, registry map[string]token.Pos) {
	marked := make(map[string]bool)
	for _, pkg := range pass.Mod.Packages {
		for _, sc := range siteCalls(pass, pkg) {
			if sc.site != "" {
				marked[sc.site] = true
			}
		}
	}
	for site, pos := range registry {
		if !marked[site] {
			pass.Reportf(pos, "registered fault site %q has no faultinject.Hit/Writer call in the module; remove the entry or restore the injection point", site)
		}
	}
}

// testFileText is the scanned content of one _test.go file.
type testFileText struct {
	path  string
	lines []string
}

// packageTestText reads the raw _test.go files of a package directory.
func packageTestText(dir string) []testFileText {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []testFileText
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		out = append(out, testFileText{
			path:  filepath.Join(dir, e.Name()),
			lines: strings.Split(string(data), "\n"),
		})
	}
	return out
}

func testTextReferences(files []testFileText, site string) bool {
	for _, f := range files {
		for _, line := range f.lines {
			if strings.Contains(line, site) {
				return true
			}
		}
	}
	return false
}

// testSiteRef is one fault-spec clause found in a test file.
type testSiteRef struct {
	file string
	line int
	site string
}

var quotedString = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

var faultKinds = map[string]bool{
	"panic": true, "error": true, "delay": true, "shortwrite": true,
}

// testSiteRefs extracts the sites armed by fault-spec strings in test files:
// any quoted string whose comma-separated clauses parse as site:kind[:...]
// with a known kind, including WISE_FAULTS=spec forms.
func testSiteRefs(files []testFileText) []testSiteRef {
	var out []testSiteRef
	for _, f := range files {
		for i, line := range f.lines {
			for _, m := range quotedString.FindAllStringSubmatch(line, -1) {
				for _, clause := range strings.Split(m[1], ",") {
					fields := strings.Split(strings.TrimSpace(clause), ":")
					if len(fields) < 2 || !faultKinds[fields[1]] {
						continue
					}
					site := strings.TrimPrefix(fields[0], "WISE_FAULTS=")
					if site == "" {
						continue
					}
					out = append(out, testSiteRef{file: f.path, line: i + 1, site: site})
				}
			}
		}
	}
	return out
}
