package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"wise/internal/lint/callgraph"
	"wise/internal/lint/cfg"
)

// ResourceLifecycleAnalyzer checks that every releasable resource acquired
// in a function is released on every path out of it, or provably hands
// ownership elsewhere. The serving stack (internal/serve, internal/registry)
// runs indefinitely: a ticker that never stops, a context whose cancel is
// dropped, or a file handle leaked on one error branch is a slow resource
// exhaustion that no test catches and production does.
//
// Tracked acquisitions and their releases:
//
//	time.NewTicker / time.NewTimer          -> Stop
//	context.WithCancel/Timeout/Deadline     -> calling the CancelFunc
//	os.Open/Create/OpenFile/CreateTemp      -> Close
//	net/http *Response results (Get, Do, …) -> Body.Close
//	resilience.CreateAtomic                 -> Commit or Abort
//
// A release counts when it dominates every function exit reachable from the
// acquisition: a defer (which runs on every exit once registered), or an
// explicit call on every path. Error-guard returns (`if err != nil
// { return … }` for the acquisition's own error) are exempt paths — the
// resource was never acquired there. Ownership transfers are out of scope by
// design: resources that are returned, stored in a field/global/composite,
// captured by a non-deferred closure, or passed to a callee that (for
// module-internal callees, checked through the call graph) releases, stores,
// or forwards them.
//
// The second rule is structural: a Start-shaped method that spawns a
// long-lived goroutine (one with a for or select loop) must have a matching
// Stop/Close/Shutdown/Drain/Wait method on the same type containing a join
// operation (wg.Wait, channel receive/close, or calling a held CancelFunc) —
// otherwise nothing can ever reclaim the goroutine.
var ResourceLifecycleAnalyzer = &Analyzer{
	Name:        "resourcelifecycle",
	Category:    "lifecycle",
	ModuleFacts: true,
	Doc: "Tickers, timers, cancel funcs, files, response bodies, and atomic-write " +
		"handles must be released on every path (defer-aware, interprocedural " +
		"through module callees); Start-shaped methods spawning long-lived " +
		"goroutines need a joining Stop counterpart",
	Run: runResourceLifecycle,
}

func runResourceLifecycle(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, unit := range functionUnits(fd) {
				checkResourceUnit(pass, unit)
			}
			checkStartStop(pass, fd)
		}
	}
}

// resKind describes how one tracked resource is released.
type resKind int

const (
	resStop   resKind = iota // .Stop()
	resCancel                // calling the variable itself (CancelFunc)
	resClose                 // .Close()
	resBody                  // .Body.Close()
	resAtomic                // .Commit() or .Abort()
)

func (k resKind) what() string {
	switch k {
	case resStop:
		return "Stop"
	case resCancel:
		return "calling the cancel func"
	case resClose:
		return "Close"
	case resBody:
		return "Body.Close"
	default:
		return "Commit or Abort"
	}
}

// acquisition is one tracked resource: the variable it was bound to, the
// call that produced it, and (for `v, err :=` forms) the paired error
// object whose guard-returns are exempt paths.
type acquisition struct {
	obj  types.Object
	kind resKind
	call *ast.CallExpr
	err  types.Object // nil when the acquisition returns no error
}

// acquisitionKind classifies a call as a tracked resource constructor.
// hasErr reports whether the tracked value is paired with an error result.
func acquisitionKind(info *types.Info, call *ast.CallExpr) (kind resKind, resIdx int, hasErr bool, ok bool) {
	fn := resolvedFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return 0, 0, false, false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	switch {
	case pkg == "time" && (name == "NewTicker" || name == "NewTimer"):
		return resStop, 0, false, true
	case pkg == "context" && (name == "WithCancel" || name == "WithTimeout" || name == "WithDeadline"):
		return resCancel, 1, false, true
	case pkg == "os" && (name == "Open" || name == "Create" || name == "OpenFile" || name == "CreateTemp"):
		return resClose, 0, true, true
	case pkg == "net/http" && (name == "Get" || name == "Post" || name == "PostForm" || name == "Head" || name == "Do"):
		return resBody, 0, true, true
	case strings.HasSuffix(pkg, "internal/resilience") && name == "CreateAtomic":
		return resAtomic, 0, true, true
	}
	return 0, 0, false, false
}

// checkResourceUnit analyzes one function unit (declaration or literal):
// collect acquisitions bound to local variables, drop the ones whose
// ownership escapes, then require a release on every path to exit.
func checkResourceUnit(pass *Pass, unit ast.Node) {
	body := unitBody(unit)
	if body == nil {
		return
	}
	info := pass.Pkg.Info

	var acqs []acquisition
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != unit {
			return false // nested literals are their own units
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, resIdx, hasErr, ok := acquisitionKind(info, call)
		if !ok || resIdx >= len(as.Lhs) {
			return true
		}
		id, ok := as.Lhs[resIdx].(*ast.Ident)
		if !ok {
			return true // bound to a field/index: ownership escapes immediately
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "%s result discarded: nothing can ever release it (%s)",
				calleeName(call), kind.what())
			return true
		}
		obj := defOrUse(info, id)
		if obj == nil {
			return true
		}
		a := acquisition{obj: obj, kind: kind, call: call}
		if hasErr && len(as.Lhs) > resIdx+1 {
			if errID, ok := as.Lhs[resIdx+1].(*ast.Ident); ok && errID.Name != "_" {
				a.err = defOrUse(info, errID)
			}
		}
		acqs = append(acqs, a)
		return true
	})
	if len(acqs) == 0 {
		return
	}

	for _, a := range acqs {
		checkAcquisition(pass, unit, body, a)
	}
}

func checkAcquisition(pass *Pass, unit ast.Node, body *ast.BlockStmt, a acquisition) {
	info := pass.Pkg.Info

	// Escape pass: ownership leaves this unit — returned, stored, captured
	// by a non-deferred closure, rebound, or handed to a callee that keeps
	// it. Any escape exempts the acquisition (the analyzer reasons locally
	// about local owners only, like spanhygiene).
	escapes := false
	var releasePos []token.Pos // positions of release operations (incl. deferred ones)

	useOf := func(e ast.Expr) bool { return exprUses(info, e, a.obj) }

	ast.Inspect(body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		switch st := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				// `return f.Close()` releases; `return f` transfers ownership.
				if call, ok := ast.Unparen(r).(*ast.CallExpr); ok && isRelease(info, call, a) {
					releasePos = append(releasePos, call.Pos())
					continue
				}
				if useOf(r) {
					escapes = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if !useOf(rhs) {
					continue
				}
				// Calls are judged by the CallExpr case below: a method call
				// on the resource (st, err := f.Stat()) is a use, not a
				// transfer, and argument positions go through
				// calleeTakesOwnership.
				if _, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					continue
				}
				// Re-binding to the same variable (x = acquire() again) is
				// not an escape; anything else (other var, field, slot) is.
				if i < len(st.Lhs) {
					if id, ok := st.Lhs[i].(*ast.Ident); ok && defOrUse(info, id) == a.obj {
						continue
					}
				}
				escapes = true
			}
		case *ast.CompositeLit:
			for _, el := range st.Elts {
				if useOf(el) {
					escapes = true
				}
			}
		case *ast.DeferStmt:
			// A registered defer runs on every exit reachable after it, so
			// the registration point is the kill; a deferred closure that
			// releases is deliberately not treated as a capture-escape.
			if deferredRelease(info, st, a) {
				releasePos = append(releasePos, st.Pos())
				return false
			}
		case *ast.GoStmt:
			if callUsesObj(info, st.Call, a.obj) || funcLitCaptures(info, st.Call.Fun, a.obj) {
				escapes = true // another goroutine owns it now
			}
		case *ast.FuncLit:
			if funcLitCaptures(info, st, a.obj) {
				escapes = true
			}
			return false
		case *ast.CallExpr:
			if isRelease(info, st, a) {
				releasePos = append(releasePos, st.Pos())
				return true
			}
			if calleeTakesOwnership(pass, st, a.obj) {
				escapes = true
			}
		}
		return true
	})
	if escapes {
		return
	}
	if len(releasePos) == 0 {
		pass.Reportf(a.call.Pos(), "%s acquired as %q but never released in this function; add defer %s",
			calleeName(a.call), a.obj.Name(), releaseHint(a))
		return
	}

	// Path analysis: from the acquisition's block, every walk to a function
	// exit must pass a block that releases (explicitly or by registering the
	// deferred release) or an error-guard return for the acquisition's own
	// error.
	g := cfg.FuncGraph(unit)
	if g == nil || len(g.Blocks) == 0 {
		return
	}
	start := g.BlockOf(a.call.Pos())
	if start == nil {
		return
	}
	kills := make(map[int]bool)
	for _, p := range releasePos {
		if b := g.BlockOf(p); b != nil {
			kills[b.Index] = true
		}
	}
	if a.err != nil {
		for _, b := range errGuardBlocks(info, body, g, a.err) {
			kills[b] = true
		}
	}
	// The acquisition's own block kills only if a release (or its own error
	// guard, which can share a block) sits after the call in source order.
	if kills[start.Index] {
		for _, p := range releasePos {
			if b := g.BlockOf(p); b != nil && b.Index == start.Index && p > a.call.Pos() {
				return
			}
		}
		delete(kills, start.Index)
	}
	// BFS over successors avoiding kill blocks; reaching an exit block
	// (no successors) means a leaky path exists.
	seen := map[int]bool{start.Index: true}
	queue := []*cfg.Block{start}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if len(b.Succs) == 0 {
			pass.Reportf(a.call.Pos(), "%s acquired as %q is not released on every path to return; add defer %s or release it on the leaking branch",
				calleeName(a.call), a.obj.Name(), releaseHint(a))
			return
		}
		for _, s := range b.Succs {
			if seen[s.Index] || kills[s.Index] {
				continue
			}
			seen[s.Index] = true
			queue = append(queue, s)
		}
	}
}

// releaseHint renders the suggested release expression for the message.
func releaseHint(a acquisition) string {
	switch a.kind {
	case resCancel:
		return a.obj.Name() + "()"
	case resBody:
		return a.obj.Name() + ".Body.Close()"
	case resAtomic:
		return a.obj.Name() + ".Abort()"
	case resStop:
		return a.obj.Name() + ".Stop()"
	default:
		return a.obj.Name() + ".Close()"
	}
}

// isRelease reports whether call releases acquisition a: the matching method
// on the tracked variable, or — for cancel funcs — calling the variable.
func isRelease(info *types.Info, call *ast.CallExpr, a acquisition) bool {
	switch a.kind {
	case resCancel:
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && defOrUse(info, id) == a.obj
	case resBody:
		// v.Body.Close()
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return false
		}
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || inner.Sel.Name != "Body" {
			return false
		}
		id, ok := ast.Unparen(inner.X).(*ast.Ident)
		return ok && defOrUse(info, id) == a.obj
	default:
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || defOrUse(info, id) != a.obj {
			return false
		}
		switch a.kind {
		case resStop:
			return sel.Sel.Name == "Stop"
		case resClose:
			return sel.Sel.Name == "Close"
		default:
			return sel.Sel.Name == "Commit" || sel.Sel.Name == "Abort"
		}
	}
}

// deferredRelease reports whether a defer statement releases a: either
// `defer v.Close()` directly, or `defer func() { … v.Close() … }()`.
func deferredRelease(info *types.Info, st *ast.DeferStmt, a acquisition) bool {
	if isRelease(info, st.Call, a) {
		return true
	}
	lit, ok := st.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isRelease(info, call, a) {
			found = true
		}
		return !found
	})
	return found
}

// calleeTakesOwnership decides whether passing obj as an argument transfers
// ownership. External callees (stdlib, other modules) are assumed to take
// it — flagging io.Copy(f, …) would drown the signal. Module-internal
// callees are checked through the call graph: ownership transfers only if
// the callee's body releases the parameter, stores it, or forwards it to
// something that does (bounded recursion). A module helper that merely uses
// the resource leaves the caller responsible.
func calleeTakesOwnership(pass *Pass, call *ast.CallExpr, obj types.Object) bool {
	argIdx := -1
	for i, arg := range call.Args {
		if exprUses(pass.Pkg.Info, arg, obj) {
			argIdx = i
			break
		}
	}
	if argIdx < 0 {
		return false
	}
	fn := resolvedFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return true // dynamic call: assume ownership moved
	}
	a := pass.Mod.analysisFor(pass.Pkg)
	node := a.graph.NodeOf(fn)
	if node == nil {
		return true // external callee: assume ownership moved
	}
	return paramConsumed(a, node, argIdx, 0)
}

// paramConsumed reports whether fn's argIdx-th parameter is released,
// stored, or forwarded to a consuming callee within depth 3.
func paramConsumed(a *modAnalysis, node *callgraph.Node, argIdx, depth int) bool {
	decl := node.Decl
	if decl == nil || decl.Body == nil {
		return true // no body to inspect: be conservative, assume consumed
	}
	info := node.Pkg.Info
	obj := paramAt(decl, info, argIdx)
	if obj == nil {
		return true // variadic or mismatched signature: assume consumed
	}
	consumed := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if consumed {
			return false
		}
		switch st := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				if exprUses(info, r, obj) {
					consumed = true
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range st.Rhs {
				if exprUses(info, rhs, obj) {
					consumed = true // stored somewhere: owner changed
				}
			}
		case *ast.CompositeLit:
			for _, el := range st.Elts {
				if exprUses(info, el, obj) {
					consumed = true
				}
			}
		case *ast.CallExpr:
			if releasesObj(info, st, obj) {
				consumed = true
				return false
			}
			fwd := -1
			for i, arg := range st.Args {
				if exprUses(info, arg, obj) {
					fwd = i
					break
				}
			}
			if fwd < 0 {
				return true
			}
			fn := resolvedFunc(info, st)
			if fn == nil || fn.Pkg() == nil {
				consumed = true
				return false
			}
			callee := a.graph.NodeOf(fn)
			if callee == nil {
				consumed = true // external: assume consumed
				return false
			}
			if depth < 3 && paramConsumed(a, callee, fwd, depth+1) {
				consumed = true
			}
		}
		return !consumed
	})
	return consumed
}

// releasesObj reports whether call is any release-shaped operation on obj:
// Stop/Close/Commit/Abort method, obj() invocation, or obj.Body.Close().
func releasesObj(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	for _, k := range []resKind{resStop, resCancel, resClose, resBody, resAtomic} {
		if isRelease(info, call, acquisition{obj: obj, kind: k}) {
			return true
		}
	}
	return false
}

// errGuardBlocks finds the blocks of `return` statements that sit inside an
// `if <cond mentioning errObj> { … }` — the conventional acquisition-failed
// exit, where no resource exists to release.
func errGuardBlocks(info *types.Info, body *ast.BlockStmt, g *cfg.Graph, errObj types.Object) []int {
	var out []int
	ast.Inspect(body, func(n ast.Node) bool {
		ifst, ok := n.(*ast.IfStmt)
		if !ok || !exprUses(info, ifst.Cond, errObj) {
			return true
		}
		ast.Inspect(ifst.Body, func(m ast.Node) bool {
			if ret, ok := m.(*ast.ReturnStmt); ok {
				if b := g.BlockOf(ret.Pos()); b != nil {
					out = append(out, b.Index)
				}
			}
			return true
		})
		return true
	})
	return out
}

// --- Start/Stop pairing ---

// checkStartStop flags Start-shaped methods that spawn a long-lived
// goroutine on a type with no joining Stop-shaped counterpart.
func checkStartStop(pass *Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || !strings.HasPrefix(fd.Name.Name, "Start") {
		return
	}
	longLived := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := g.Call.Fun.(*ast.FuncLit); ok && hasLoop(lit.Body) {
			longLived = true
		}
		return true
	})
	if !longLived {
		return
	}
	recv := recvNamed(pass.Pkg.Info, fd)
	if recv == nil {
		return
	}
	for i := 0; i < recv.NumMethods(); i++ {
		m := recv.Method(i)
		switch {
		case strings.HasPrefix(m.Name(), "Stop"), strings.HasPrefix(m.Name(), "Close"),
			strings.HasPrefix(m.Name(), "Shutdown"), strings.HasPrefix(m.Name(), "Drain"),
			strings.HasPrefix(m.Name(), "Wait"):
			if methodJoins(pass, m) {
				return
			}
		}
	}
	pass.Reportf(fd.Pos(), "%s.%s spawns a long-lived goroutine but the type has no Stop/Close/Shutdown method that joins it",
		recv.Obj().Name(), fd.Name.Name)
}

// methodJoins reports whether the method body contains a join-shaped
// operation: wg.Wait(), close(ch), a channel receive, or calling a func-typed
// field (a held CancelFunc).
func methodJoins(pass *Pass, m *types.Func) bool {
	a := pass.Mod.analysisFor(pass.Pkg)
	node := a.graph.NodeOf(m)
	if node == nil || node.Decl == nil || node.Decl.Body == nil {
		return false
	}
	info := node.Pkg.Info
	joins := false
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if joins {
			return false
		}
		switch st := n.(type) {
		case *ast.UnaryExpr:
			if st.Op == token.ARROW {
				joins = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok && id.Name == "close" {
				joins = true
				return false
			}
			if sel, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Wait" {
					joins = true
					return false
				}
				// calling a func-typed field: s.cancel()
				if t := info.TypeOf(sel); t != nil {
					if _, ok := t.Underlying().(*types.Signature); ok && len(st.Args) == 0 {
						joins = true
						return false
					}
				}
			}
		}
		return !joins
	})
	return joins
}

// --- small shared helpers ---

func defOrUse(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// exprUses reports whether obj's identifier appears anywhere in e.
func exprUses(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && defOrUse(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// funcLitCaptures reports whether any function literal under e references obj.
func funcLitCaptures(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return !found
		}
		if exprUses(info, lit, obj) {
			found = true
		}
		return false
	})
	return found
}

// callUsesObj reports whether obj appears in the call's arguments.
func callUsesObj(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	for _, arg := range call.Args {
		if exprUses(info, arg, obj) {
			return true
		}
	}
	return false
}

// calleeName renders the called function for messages (pkg.Fn or x.M).
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}

// paramAt resolves the object of the i-th (flattened) parameter of decl.
func paramAt(decl *ast.FuncDecl, info *types.Info, i int) types.Object {
	idx := 0
	for _, field := range decl.Type.Params.List {
		names := field.Names
		if len(names) == 0 {
			idx++ // unnamed parameter occupies a slot
			continue
		}
		for _, name := range names {
			if idx == i {
				return info.Defs[name]
			}
			idx++
		}
	}
	return nil
}

// hasLoop reports whether the block contains a for, range, or select
// statement — the long-lived-goroutine signal.
func hasLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt:
			found = true
		}
		return !found
	})
	return found
}

// recvNamed resolves the receiver's named type.
func recvNamed(info *types.Info, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	t := info.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
